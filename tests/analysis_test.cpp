#include <gtest/gtest.h>

#include <algorithm>

#include "netlist/analysis.hpp"
#include "netlist/bench_format.hpp"

namespace diac {
namespace {

Netlist chain3() {
  // a -> n1 -> n2 -> n3 -> y
  Netlist nl("chain");
  const GateId a = nl.add(GateKind::kInput, "a");
  const GateId n1 = nl.add(GateKind::kNot, "n1", {a});
  const GateId n2 = nl.add(GateKind::kNot, "n2", {n1});
  const GateId n3 = nl.add(GateKind::kNot, "n3", {n2});
  nl.add(GateKind::kOutput, "y$out", {n3});
  return nl;
}

TEST(Analysis, TopologicalOrderRespectsDeps) {
  const Netlist nl = chain3();
  const auto order = topological_order(nl);
  ASSERT_EQ(order.size(), nl.size());
  std::vector<std::size_t> pos(nl.size());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (GateId id = 0; id < nl.size(); ++id) {
    const Gate& g = nl.gate(id);
    if (g.kind == GateKind::kDff) continue;
    for (GateId f : g.fanin) {
      EXPECT_LT(pos[f], pos[id]) << nl.gate(id).name;
    }
  }
}

TEST(Analysis, LevelizeChain) {
  const Netlist nl = chain3();
  const auto level = levelize(nl);
  EXPECT_EQ(level[nl.find("a")], 0);
  EXPECT_EQ(level[nl.find("n1")], 1);
  EXPECT_EQ(level[nl.find("n2")], 2);
  EXPECT_EQ(level[nl.find("n3")], 3);
  EXPECT_EQ(depth(nl), 3);
}

TEST(Analysis, DffIsLevelZeroSource) {
  const Netlist nl = parse_bench_string(
      "OUTPUT(y)\nq = DFF(d)\nd = NOT(q)\ny = BUF(q)\n");
  const auto level = levelize(nl);
  EXPECT_EQ(level[nl.find("q")], 0);
  EXPECT_EQ(level[nl.find("d")], 1);
}

TEST(Analysis, CriticalPathAccumulatesDelays) {
  const Netlist nl = chain3();
  const CellLibrary lib = CellLibrary::nominal_45nm();
  const double cpd = critical_path_delay(nl, lib);
  EXPECT_NEAR(cpd, 3 * lib.delay(GateKind::kNot, 1), 1e-15);
}

TEST(Analysis, CriticalPathPicksLongestBranch) {
  Netlist nl;
  const GateId a = nl.add(GateKind::kInput, "a");
  // Short branch: one NOT.  Long branch: three NOTs.
  const GateId s = nl.add(GateKind::kNot, "s", {a});
  GateId l = a;
  for (int i = 0; i < 3; ++i) {
    l = nl.add(GateKind::kNot, "l" + std::to_string(i), {l});
  }
  const GateId j = nl.add(GateKind::kAnd, "j", {s, l});
  nl.add(GateKind::kOutput, "y$out", {j});
  const CellLibrary lib = CellLibrary::nominal_45nm();
  const double expect =
      3 * lib.delay(GateKind::kNot, 1) + lib.delay(GateKind::kAnd, 2);
  EXPECT_NEAR(critical_path_delay(nl, lib), expect, 1e-15);
}

TEST(Analysis, ArrivalTimesCutAtDff) {
  const Netlist nl = parse_bench_string(
      "INPUT(a)\nOUTPUT(y)\nw = NOT(a)\nq = DFF(w)\ny = NOT(q)\n");
  const CellLibrary lib = CellLibrary::nominal_45nm();
  const auto at = arrival_times(nl, lib);
  // q restarts timing: its arrival is 0.
  EXPECT_DOUBLE_EQ(at[nl.find("q")], 0.0);
  EXPECT_NEAR(at[nl.find("y")], lib.delay(GateKind::kNot, 1), 1e-15);
}

TEST(Analysis, FanoutFreeConesPartitionCombGates) {
  const Netlist nl = chain3();
  const auto cones = fanout_free_cones(nl);
  // The three NOTs chain into a single cone rooted at n3.
  ASSERT_EQ(cones.size(), 1u);
  EXPECT_EQ(cones[0].root, nl.find("n3"));
  EXPECT_EQ(cones[0].members.size(), 3u);
}

TEST(Analysis, MultiFanoutSplitsCones) {
  Netlist nl;
  const GateId a = nl.add(GateKind::kInput, "a");
  const GateId b = nl.add(GateKind::kInput, "b");
  const GateId shared = nl.add(GateKind::kAnd, "shared", {a, b});  // fanout 2
  const GateId u = nl.add(GateKind::kNot, "u", {shared});
  const GateId v = nl.add(GateKind::kNot, "v", {shared});
  nl.add(GateKind::kOutput, "y1$out", {u});
  nl.add(GateKind::kOutput, "y2$out", {v});
  const auto cones = fanout_free_cones(nl);
  EXPECT_EQ(cones.size(), 3u);  // shared, u, v
}

TEST(Analysis, EveryCombGateInExactlyOneCone) {
  const Netlist nl = parse_bench_string(R"(
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(x)
OUTPUT(y)
w1 = AND(a, b)
w2 = OR(w1, c)
w3 = XOR(w1, b)
x = NOT(w2)
y = NOT(w3)
)");
  const auto cones = fanout_free_cones(nl);
  std::vector<int> count(nl.size(), 0);
  for (const auto& cone : cones) {
    for (GateId g : cone.members) ++count[g];
  }
  for (GateId id = 0; id < nl.size(); ++id) {
    const int expected = is_combinational(nl.gate(id).kind) ? 1 : 0;
    EXPECT_EQ(count[id], expected) << nl.gate(id).name;
  }
}

TEST(Analysis, ConeRootsHaveExternalFanout) {
  const Netlist nl = parse_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
w1 = AND(a, b)
w2 = NOT(w1)
q = DFF(w2)
y = XOR(q, w1)
)");
  for (const auto& cone : fanout_free_cones(nl)) {
    const Gate& root = nl.gate(cone.root);
    const bool multi = root.fanout.size() != 1;
    const bool feeds_noncomb =
        root.fanout.size() == 1 &&
        !is_combinational(nl.gate(root.fanout[0]).kind);
    EXPECT_TRUE(multi || feeds_noncomb || root.fanout.empty())
        << root.name;
  }
}

TEST(Analysis, StatsAggregate) {
  const Netlist nl = chain3();
  const CellLibrary lib = CellLibrary::nominal_45nm();
  const NetlistStats s = analyze(nl, lib);
  EXPECT_EQ(s.gates, 3u);
  EXPECT_EQ(s.inputs, 1u);
  EXPECT_EQ(s.outputs, 1u);
  EXPECT_EQ(s.depth, 3);
  EXPECT_GT(s.total_area, 0.0);
}

}  // namespace
}  // namespace diac
