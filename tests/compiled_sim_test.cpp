// Differential tests of the compiled SoA kernel against the scalar
// reference simulator (D1-clean: every stimulus is derived from fixed
// seeds, so failures replay exactly).  Covers all 24 suite circuits,
// every gate kind the netlist layer admits, batched-vs-unbatched lane
// identity, and a ~100k-gate synthetic stress circuit.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "netlist/compiled_sim.hpp"
#include "netlist/generators.hpp"
#include "netlist/logic_sim.hpp"
#include "netlist/suite.hpp"
#include "util/rng.hpp"

namespace diac {
namespace {

// Drives `ref` and `cs` (word `word`) with identical per-cycle random
// inputs for `cycles` cycles and requires bit-identical fingerprints,
// outputs, and state after every cycle.
void expect_lockstep(const Netlist& nl, ReferenceSimulator& ref,
                     CompiledSimulator& cs, int word, int cycles,
                     std::uint64_t seed) {
  SplitMix64 rng(seed);
  for (int c = 0; c < cycles; ++c) {
    for (GateId in : nl.inputs()) {
      const Word v = rng.next();
      ref.set_input(in, v);
      cs.set_input(in, v, word);
    }
    ref.step();
    cs.step();
    const std::vector<Word> all = cs.state();  // DFF-major: i * B + w
    std::vector<Word> lane;
    lane.reserve(nl.dffs().size());
    for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
      lane.push_back(all[i * static_cast<std::size_t>(cs.batch_words()) +
                         static_cast<std::size_t>(word)]);
    }
    ASSERT_EQ(ref.state(), lane) << nl.name() << " cycle " << c;
    ref.settle();
    cs.settle();
    ASSERT_EQ(ref.output_values(), cs.output_values(word))
        << nl.name() << " cycle " << c;
    ASSERT_EQ(ref.fingerprint(), cs.fingerprint(word))
        << nl.name() << " cycle " << c;
  }
}

TEST(CompiledSim, DifferentialAllSuiteCircuits) {
  for (const BenchmarkSpec& spec : benchmark_suite()) {
    const Netlist nl = build_benchmark(spec);
    ReferenceSimulator ref(nl);
    CompiledSimulator cs(nl);
    const int cycles = nl.size() > 5000 ? 3 : 8;
    expect_lockstep(nl, ref, cs, 0, cycles, 0x9E3779B97F4A7C15ULL ^ spec.seed);
  }
}

TEST(CompiledSim, DifferentialEveryGateKind) {
  // One hand-built netlist exercising every schedulable kind, including
  // MUX, XNOR, >=3-input reducers, constants, and DFF-to-DFF chains.
  Netlist nl("kinds");
  const GateId a = nl.add(GateKind::kInput, "a");
  const GateId b = nl.add(GateKind::kInput, "b");
  const GateId c = nl.add(GateKind::kInput, "c");
  const GateId d = nl.add(GateKind::kInput, "d");
  const GateId zero = nl.add(GateKind::kConst0, "zero");
  const GateId one = nl.add(GateKind::kConst1, "one");
  const GateId buf = nl.add(GateKind::kBuf, "buf", {a});
  const GateId inv = nl.add(GateKind::kNot, "inv", {b});
  const GateId and2 = nl.add(GateKind::kAnd, "and2", {a, b});
  const GateId nand2 = nl.add(GateKind::kNand, "nand2", {b, c});
  const GateId or2 = nl.add(GateKind::kOr, "or2", {c, d});
  const GateId nor2 = nl.add(GateKind::kNor, "nor2", {d, a});
  const GateId xor2 = nl.add(GateKind::kXor, "xor2", {a, c});
  const GateId xnor2 = nl.add(GateKind::kXnor, "xnor2", {b, d});
  const GateId mux = nl.add(GateKind::kMux, "mux", {inv, and2, or2});
  const GateId and4 = nl.add(GateKind::kAnd, "and4", {a, b, c, d});
  const GateId nand3 = nl.add(GateKind::kNand, "nand3", {buf, inv, one});
  const GateId or3 = nl.add(GateKind::kOr, "or3", {nor2, xor2, zero});
  const GateId nor4 = nl.add(GateKind::kNor, "nor4", {a, b, c, d});
  const GateId xor3 = nl.add(GateKind::kXor, "xor3", {mux, and4, nand3});
  const GateId xnor5 =
      nl.add(GateKind::kXnor, "xnor5", {a, b, c, d, or3});
  const GateId q0 = nl.add(GateKind::kDff, "q0", {xor3});
  const GateId q1 = nl.add(GateKind::kDff, "q1", {q0});  // DFF -> DFF chain
  const GateId feed = nl.add(GateKind::kXor, "feed", {q1, xnor5});
  const GateId q2 = nl.add(GateKind::kDff, "q2", {feed});
  nl.add(GateKind::kOutput, "y0", {mux});
  nl.add(GateKind::kOutput, "y1", {xor3});
  nl.add(GateKind::kOutput, "y2", {q2});
  nl.add(GateKind::kOutput, "y3", {xnor2});
  nl.add(GateKind::kOutput, "y4", {nor4});
  nl.add(GateKind::kOutput, "y5", {nand2});
  nl.add(GateKind::kOutput, "y6", {zero});
  nl.add(GateKind::kOutput, "y7", {one});
  nl.validate();

  ReferenceSimulator ref(nl);
  CompiledSimulator cs(nl);
  expect_lockstep(nl, ref, cs, 0, 64, 0xD1FFC0DEULL);
  // Per-gate value parity after the final settle (not just outputs).
  for (GateId id = 0; id < nl.size(); ++id) {
    EXPECT_EQ(ref.value(id), cs.value(id)) << nl.gate(id).name;
  }
}

TEST(CompiledSim, BatchedLanesMatchUnbatched) {
  const auto compiled = CompiledNetlist::compile(build_benchmark("s1238"));
  const Netlist nl = build_benchmark("s1238");
  for (const int batch : {1, 2, 3, 4, 8}) {  // 3 exercises the generic path
    // Each word of the batched simulator must reproduce, bit for bit, a
    // solo batch-1 run fed the same per-cycle stimulus.
    CompiledSimulator multi(compiled, batch);
    std::vector<CompiledSimulator> solos;
    for (int w = 0; w < batch; ++w) solos.emplace_back(compiled, 1);
    std::vector<SplitMix64> rngs;
    for (int w = 0; w < batch; ++w) {
      rngs.emplace_back(0x5EEDULL * static_cast<std::uint64_t>(w + 1));
    }
    for (int cycle = 0; cycle < 6; ++cycle) {
      for (int w = 0; w < batch; ++w) {
        for (GateId in : compiled->inputs()) {
          const Word v = rngs[static_cast<std::size_t>(w)].next();
          multi.set_input(in, v, w);
          solos[static_cast<std::size_t>(w)].set_input(in, v);
        }
      }
      multi.step();
      for (auto& solo : solos) solo.step();
      multi.settle();
      for (int w = 0; w < batch; ++w) {
        solos[static_cast<std::size_t>(w)].settle();
        ASSERT_EQ(solos[static_cast<std::size_t>(w)].fingerprint(),
                  multi.fingerprint(w))
            << "batch " << batch << " word " << w << " cycle " << cycle;
      }
    }
  }
}

TEST(CompiledSim, WrapperMatchesReference) {
  // The production LogicSimulator (compiled batch-1 wrapper) must keep the
  // classic semantics bit for bit.
  const Netlist nl = build_benchmark("s953");
  ReferenceSimulator ref(nl);
  LogicSimulator sim(nl);
  SplitMix64 rng(0xFACEFEEDULL);
  for (int cycle = 0; cycle < 10; ++cycle) {
    for (GateId in : nl.inputs()) {
      const Word v = rng.next();
      ref.set_input(in, v);
      sim.set_input(in, v);
    }
    ref.step();
    sim.step();
    ref.settle();
    sim.settle();
    ASSERT_EQ(ref.fingerprint(), sim.fingerprint()) << cycle;
    ASSERT_EQ(ref.state(), sim.state()) << cycle;
  }
}

TEST(CompiledSim, SharedCompilationIsEquivalent) {
  const Netlist nl = build_benchmark("s820");
  LogicSimulator priv(nl);
  LogicSimulator shared(nl, priv.compiled());
  EXPECT_EQ(priv.compiled().get(), shared.compiled().get());
  for (GateId in : nl.inputs()) {
    priv.set_input(in, 0x0123456789ABCDEFULL);
    shared.set_input(in, 0x0123456789ABCDEFULL);
  }
  priv.run(5);
  shared.run(5);
  priv.settle();
  shared.settle();
  EXPECT_EQ(priv.fingerprint(), shared.fingerprint());

  const Netlist other = build_benchmark("s27");
  EXPECT_THROW(LogicSimulator(other, priv.compiled()), std::invalid_argument);
}

TEST(CompiledSim, PlanRespectsDependencyOrder) {
  // Structural invariant: every AND step reads only slots defined earlier
  // (constants, inputs, DFF outputs, or previously emitted steps).
  for (const char* name : {"s27", "s1238", "b10"}) {
    const auto cn = CompiledNetlist::compile(build_benchmark(name));
    ASSERT_EQ(cn->slot_count(),
              cn->node_base() + static_cast<std::uint32_t>(cn->plan().size()));
    std::uint32_t next = cn->node_base();
    for (const AndStep& n : cn->plan()) {
      EXPECT_LT(n.a >> 1, next);
      EXPECT_LT(n.b >> 1, next);
      ++next;
    }
    for (GateId id = 0; id < cn->size(); ++id) {
      EXPECT_LT(cn->literal(id) >> 1, cn->slot_count());
    }
  }
}

TEST(CompiledSim, Synthetic100kGateCircuit) {
  const Netlist nl = gen::random_logic("synth100k", 64, 32, 100000, 0xC1ABULL);
  ASSERT_EQ(nl.logic_gate_count(), 100000u);
  ReferenceSimulator ref(nl);
  CompiledSimulator cs(CompiledNetlist::compile(nl), 4);
  expect_lockstep(nl, ref, cs, 2, 2, 0x100000ULL);
}

TEST(CompiledSim, RejectsInvalidConstruction) {
  const Netlist nl = build_benchmark("s27");
  EXPECT_THROW(CompiledSimulator(nl, 0), std::invalid_argument);
  EXPECT_THROW(CompiledSimulator(nl, -3), std::invalid_argument);
  EXPECT_THROW(CompiledSimulator(nullptr, 1), std::invalid_argument);
  CompiledSimulator cs(nl, 2);
  EXPECT_THROW(cs.set_input(nl.inputs()[0], 1, 2), std::invalid_argument);
  EXPECT_THROW(cs.value(nl.inputs()[0], -1), std::invalid_argument);
  EXPECT_THROW(cs.value(static_cast<GateId>(nl.size()), 0), std::out_of_range);
  EXPECT_THROW(cs.set_input(nl.outputs()[0], 1, 0), std::invalid_argument);
}

// The ASan CI smoke target: compile the largest suite circuit and run a
// thousand batched cycles, exercising every hot-path array end to end.
TEST(CompiledSim, S38417BatchedThousandCycles) {
  const Netlist nl = build_benchmark("s38417");
  CompiledSimulator cs(CompiledNetlist::compile(nl), 4);
  SplitMix64 rng(0x5384170ULL);
  for (GateId in : nl.inputs()) {
    for (int w = 0; w < 4; ++w) cs.set_input(in, rng.next(), w);
  }
  cs.run(1000);
  cs.settle();
  std::uint64_t combined = 0;
  for (int w = 0; w < 4; ++w) combined ^= cs.fingerprint(w);
  EXPECT_NE(combined, 0u);  // anti-DCE; exact lanes checked differentially
}

}  // namespace
}  // namespace diac
