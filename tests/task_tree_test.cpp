#include <gtest/gtest.h>

#include "netlist/bench_format.hpp"
#include "netlist/suite.hpp"
#include "tree/task_tree.hpp"
#include "tree/tree_generator.hpp"

namespace diac {
namespace {

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::nominal_45nm();
  return l;
}

Netlist diamond() {
  // a,b -> g1; g1 -> g2, g3; g2,g3 -> g4 -> y  (diamond).
  return parse_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(g4)
g1 = AND(a, b)
g2 = NOT(g1)
g3 = BUF(g1)
g4 = XOR(g2, g3)
)");
}

TEST(TaskTree, PerGatePartition) {
  const Netlist nl = diamond();
  const TaskTree tree = per_gate_tree(nl, lib());
  EXPECT_EQ(tree.size(), nl.logic_gate_count());
  EXPECT_NO_THROW(tree.validate());
}

TEST(TaskTree, EdgesFollowConnectivity) {
  const Netlist nl = diamond();
  const TaskTree tree = per_gate_tree(nl, lib());
  // Find the node holding g1: it must have two successors (g2, g3).
  const int n1 = tree.partition()[nl.find("g1")];
  ASSERT_GE(n1, 0);
  EXPECT_EQ(tree.node(static_cast<TaskId>(n1)).succs.size(), 2u);
}

TEST(TaskTree, LevelsIncreaseAlongEdges) {
  const Netlist nl = diamond();
  const TaskTree tree = per_gate_tree(nl, lib());
  for (const TaskNode& n : tree.nodes()) {
    for (TaskId s : n.succs) {
      EXPECT_GT(tree.node(s).dict.level, n.dict.level);
    }
  }
}

TEST(TaskTree, ScheduleIsTopological) {
  const Netlist nl = build_benchmark("s208");
  const TaskTree tree = initial_tree(nl, lib());
  std::vector<char> done(tree.size(), 0);
  for (TaskId id : tree.schedule()) {
    for (TaskId p : tree.node(id).preds) EXPECT_TRUE(done[p]);
    done[id] = 1;
  }
}

TEST(TaskTree, FeatureDictCountsExternalSignals) {
  const Netlist nl = diamond();
  // Two nodes: {g1} and {g2,g3,g4}.
  std::vector<int> part(nl.size(), kNoNode);
  part[nl.find("g1")] = 0;
  part[nl.find("g2")] = 1;
  part[nl.find("g3")] = 1;
  part[nl.find("g4")] = 1;
  const TaskTree tree = TaskTree::from_partition(nl, lib(), part, 2);
  const TaskNode& n0 = tree.node(0);
  const TaskNode& n1 = tree.node(1);
  EXPECT_EQ(n0.dict.fanin, 2);   // a, b
  EXPECT_EQ(n0.dict.fanout, 1);  // g1 read by node 1
  EXPECT_EQ(n1.dict.fanin, 1);   // g1
  EXPECT_EQ(n1.dict.fanout, 1);  // g4 -> output port
}

TEST(TaskTree, RejectsCyclicPartition) {
  // g2 and g3 in one node, g1 and g4 in another: node A reads g1 (B) and
  // B reads g2/g3 (A) -> cycle.
  const Netlist nl = diamond();
  std::vector<int> part(nl.size(), kNoNode);
  part[nl.find("g1")] = 0;
  part[nl.find("g4")] = 0;
  part[nl.find("g2")] = 1;
  part[nl.find("g3")] = 1;
  EXPECT_THROW(TaskTree::from_partition(nl, lib(), part, 2),
               std::invalid_argument);
}

TEST(TaskTree, RejectsUnassignedLogicGate) {
  const Netlist nl = diamond();
  std::vector<int> part(nl.size(), kNoNode);
  part[nl.find("g1")] = 0;  // others unassigned
  EXPECT_THROW(TaskTree::from_partition(nl, lib(), part, 1),
               std::invalid_argument);
}

TEST(TaskTree, RejectsAssignedPort) {
  const Netlist nl = diamond();
  std::vector<int> part(nl.size(), 0);  // assigns ports too
  EXPECT_THROW(TaskTree::from_partition(nl, lib(), part,1),
               std::invalid_argument);
}

TEST(TaskTree, RejectsEmptyNode) {
  const Netlist nl = diamond();
  std::vector<int> part(nl.size(), kNoNode);
  for (GateId id = 0; id < nl.size(); ++id) {
    if (is_logic(nl.gate(id).kind)) part[id] = 0;
  }
  EXPECT_THROW(TaskTree::from_partition(nl, lib(), part, 2),
               std::invalid_argument);  // node 1 empty
}

TEST(TaskTree, TotalsAggregate) {
  const Netlist nl = diamond();
  const TaskTree tree = per_gate_tree(nl, lib());
  double sum = 0;
  for (const TaskNode& n : tree.nodes()) sum += n.dict.energy();
  EXPECT_NEAR(tree.total_energy(), sum, 1e-18);
  EXPECT_GE(tree.max_node_energy(), tree.avg_node_energy());
  EXPECT_LE(tree.min_node_energy(), tree.avg_node_energy());
}

TEST(TaskTree, InitialTreeGroupsByCone) {
  const Netlist nl = diamond();
  const TaskTree tree = initial_tree(nl, lib());
  // Cones: {g1}, {g2}, {g3}, {g4} (g2/g3 single-fanout feed g4 -> merge).
  // g2 and g3 each have single fanout g4 -> all three in one cone.
  EXPECT_EQ(tree.size(), 2u);
}

TEST(TaskTree, InitialTreeHandlesDffs) {
  const Netlist nl = parse_bench_string(
      "INPUT(a)\nOUTPUT(y)\nw = NOT(a)\nq = DFF(w)\ny = NOT(q)\n");
  const TaskTree tree = initial_tree(nl, lib());
  // DFF is its own node; its D-input edge is sequential (no dep edge).
  bool found_dff_node = false;
  for (const TaskNode& n : tree.nodes()) {
    if (n.gates.size() == 1 && nl.gate(n.gates[0]).kind == GateKind::kDff) {
      found_dff_node = true;
      EXPECT_TRUE(n.preds.empty());  // sequential boundary
    }
  }
  EXPECT_TRUE(found_dff_node);
}

TEST(TaskTree, NodesAtLevelSelects) {
  const Netlist nl = diamond();
  const TaskTree tree = per_gate_tree(nl, lib());
  std::size_t total = 0;
  for (int l = 0; l <= tree.max_level(); ++l) {
    total += tree.nodes_at_level(l).size();
  }
  EXPECT_EQ(total, tree.size());
}

TEST(TaskTree, NvmAccessors) {
  const Netlist nl = diamond();
  TaskTree tree = per_gate_tree(nl, lib());
  EXPECT_TRUE(tree.nvm_points().empty());
  tree.node(0).has_nvm = true;
  tree.node(0).nvm_bits = 12;
  EXPECT_EQ(tree.nvm_points().size(), 1u);
  EXPECT_EQ(tree.total_nvm_bits(), 12);
}

TEST(TreeGenerator, GroupingsProduceValidTrees) {
  const Netlist nl = build_benchmark("s208");
  for (TreeGrouping g :
       {TreeGrouping::kCones, TreeGrouping::kPerGate, TreeGrouping::kLevels}) {
    TreeGeneratorOptions opt;
    opt.grouping = g;
    const TaskTree tree = TreeGenerator(nl, lib(), opt).generate();
    EXPECT_NO_THROW(tree.validate());
    EXPECT_GT(tree.size(), 0u);
  }
}

TEST(TreeGenerator, LevelGroupingIsCoarser) {
  const Netlist nl = build_benchmark("s208");
  TreeGeneratorOptions cones;
  TreeGeneratorOptions levels;
  levels.grouping = TreeGrouping::kLevels;
  levels.level_band = 8;
  const auto t_cones = TreeGenerator(nl, lib(), cones).generate();
  const auto t_levels = TreeGenerator(nl, lib(), levels).generate();
  EXPECT_LT(t_levels.size(), t_cones.size());
}

TEST(TreeGenerator, Fig2NetlistHasPaperStructure) {
  const Netlist nl = fig2_netlist();
  EXPECT_EQ(nl.inputs().size(), 8u);
  EXPECT_EQ(nl.outputs().size(), 1u);
  const TaskTree tree = fig2_tree(nl, lib());
  // F1..F8 plus the output reduction cone = 9 function nodes.
  EXPECT_EQ(tree.size(), 9u);
  // F2 is the heavy node and F5..F8 are light under the fig2 scale.
  const double scale = fig2_energy_scale(tree);
  int heavy = 0, light = 0;
  for (const TaskNode& n : tree.nodes()) {
    const double e = scale * n.dict.energy();
    if (e > 25.0e-3) ++heavy;
    if (e < 20.0e-3) ++light;
  }
  EXPECT_EQ(heavy, 1);
  EXPECT_GE(light, 7);
}

}  // namespace
}  // namespace diac
