#include <gtest/gtest.h>

#include "metrics/pdp.hpp"
#include "metrics/report.hpp"

namespace diac {
namespace {

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::nominal_45nm();
  return l;
}

EvaluationOptions quick_options() {
  EvaluationOptions opt;
  opt.simulator.target_instances = 4;
  opt.simulator.max_time = 8000;
  return opt;
}

const BenchmarkResult& s344_result() {
  static const BenchmarkResult r =
      evaluate_benchmark(benchmark_spec("s344"), lib(), quick_options());
  return r;
}

TEST(Metrics, AllSchemesCompleteTheWorkload) {
  const auto& r = s344_result();
  for (Scheme s : kAllSchemes) {
    EXPECT_TRUE(r.of(s).workload_completed) << to_string(s);
    EXPECT_EQ(r.of(s).instances_completed, 4) << to_string(s);
  }
}

TEST(Metrics, NormalizationAnchorsNvBased) {
  const auto& r = s344_result();
  EXPECT_DOUBLE_EQ(r.normalized_pdp(Scheme::kNvBased), 1.0);
}

TEST(Metrics, SchemeOrderingMatchesPaper) {
  // Fig. 5 shape: NV-Based worst, NV-Clustering better, DIAC better
  // still, DIAC-Optimized best (small tolerance for trace noise on the
  // last pair).
  const auto& r = s344_result();
  EXPECT_LT(r.normalized_pdp(Scheme::kNvClustering), 1.0);
  EXPECT_LT(r.normalized_pdp(Scheme::kDiac),
            r.normalized_pdp(Scheme::kNvClustering));
  EXPECT_LE(r.normalized_pdp(Scheme::kDiacOptimized),
            r.normalized_pdp(Scheme::kDiac) * 1.02);
}

TEST(Metrics, ImprovementIsOneMinusRatio) {
  const auto& r = s344_result();
  const double ratio =
      r.pdp(Scheme::kDiac) / r.pdp(Scheme::kNvBased);
  EXPECT_NEAR(r.improvement(Scheme::kDiac, Scheme::kNvBased), 1.0 - ratio,
              1e-12);
}

TEST(Metrics, IdenticalTraceAcrossSchemes) {
  // Fairness: every scheme executed the same number of instances on the
  // same harvest trace, so active compute time is comparable.
  const auto& r = s344_result();
  const double base = r.of(Scheme::kNvBased).time_active;
  for (Scheme s : kAllSchemes) {
    EXPECT_NEAR(r.of(s).time_active, base, 0.25 * base) << to_string(s);
  }
}

TEST(Metrics, AverageImprovementAggregates) {
  std::vector<BenchmarkResult> results(2);
  results[0].suite = BenchmarkSuite::kIscas89;
  results[1].suite = BenchmarkSuite::kMcnc;
  auto set_pdp = [](BenchmarkResult& r, Scheme s, double e, double t) {
    auto& st = r.stats[static_cast<std::size_t>(s)];
    st.instances_completed = 1;
    st.energy_consumed = e;
    st.makespan = t;
  };
  // result 0: DIAC improves 50%; result 1: 30%.
  set_pdp(results[0], Scheme::kNvBased, 1.0, 1.0);
  set_pdp(results[0], Scheme::kDiac, 0.5, 1.0);
  set_pdp(results[1], Scheme::kNvBased, 1.0, 1.0);
  set_pdp(results[1], Scheme::kDiac, 0.7, 1.0);
  EXPECT_NEAR(average_improvement(results, Scheme::kDiac, Scheme::kNvBased),
              0.4, 1e-12);
  EXPECT_NEAR(average_improvement(results, BenchmarkSuite::kIscas89,
                                  Scheme::kDiac, Scheme::kNvBased),
              0.5, 1e-12);
  EXPECT_NEAR(average_improvement(results, BenchmarkSuite::kMcnc,
                                  Scheme::kDiac, Scheme::kNvBased),
              0.3, 1e-12);
  // No ITC results -> 0.
  EXPECT_DOUBLE_EQ(average_improvement(results, BenchmarkSuite::kItc99,
                                       Scheme::kDiac, Scheme::kNvBased),
                   0.0);
}

TEST(Metrics, EmptyResultsAreZero) {
  std::vector<BenchmarkResult> none;
  EXPECT_DOUBLE_EQ(average_improvement(none, Scheme::kDiac, Scheme::kNvBased),
                   0.0);
}

TEST(Metrics, Fig5TableListsAllSchemes) {
  const std::vector<BenchmarkResult> results = {s344_result()};
  const Table t = fig5_table(results);
  const std::string s = t.str();
  EXPECT_NE(s.find("s344"), std::string::npos);
  EXPECT_NE(s.find("NV-Clustering"), std::string::npos);
  EXPECT_NE(s.find("DIAC-Optimized"), std::string::npos);
}

TEST(Metrics, ImprovementSummaryHasAllComparisons) {
  const std::vector<BenchmarkResult> results = {s344_result()};
  const std::string s = improvement_summary(results).str();
  EXPECT_NE(s.find("DIAC vs NV-Based"), std::string::npos);
  EXPECT_NE(s.find("DIAC-Opt vs DIAC"), std::string::npos);
  EXPECT_NE(s.find("%"), std::string::npos);
}

TEST(Metrics, DetailTableCoversCounters) {
  const std::string s = scheme_detail_table(s344_result()).str();
  EXPECT_NE(s.find("NVM writes"), std::string::npos);
  EXPECT_NE(s.find("safe-zone saves"), std::string::npos);
  EXPECT_NE(s.find("forward progress"), std::string::npos);
}

TEST(Metrics, InventoryTableMatchesSuite) {
  const std::string s = suite_inventory_table().str();
  for (const auto& spec : benchmark_suite()) {
    EXPECT_NE(s.find(spec.name), std::string::npos) << spec.name;
  }
}

TEST(Metrics, RunStatsDerivedMetrics) {
  RunStats s;
  s.instances_completed = 4;
  s.energy_consumed = 0.2;
  s.makespan = 100.0;
  EXPECT_DOUBLE_EQ(s.energy_per_instance(), 0.05);
  EXPECT_DOUBLE_EQ(s.time_per_instance(), 25.0);
  EXPECT_DOUBLE_EQ(s.pdp(), 0.05 * 25.0);
  s.tasks_executed = 100;
  s.tasks_reexecuted = 10;
  EXPECT_DOUBLE_EQ(s.forward_progress(), 0.9);
  RunStats empty;
  EXPECT_DOUBLE_EQ(empty.pdp(), 0.0);
  EXPECT_DOUBLE_EQ(empty.forward_progress(), 0.0);
}

}  // namespace
}  // namespace diac
