// Paper SIV.A: "we validate the robustness and functionalities of a
// DIAC-based design in the presence of power disruptions."
//
// Property: executing a circuit intermittently — arbitrary power failures,
// each rolling the machine back to its last NVM checkpoint, followed by
// re-execution — must produce bit-identical outputs to an uninterrupted
// run.  The gate-level logic simulator is the functional reference; the
// checkpoint discipline mirrors the runtime's semantics (checkpoints
// capture the DFF state and the cycle counter; work past the checkpoint is
// lost and re-executed).
#include <gtest/gtest.h>

#include <list>

#include "netlist/logic_sim.hpp"
#include "netlist/suite.hpp"
#include "util/rng.hpp"

namespace diac {
namespace {

// Deterministic input stimulus: input i at cycle c.
Word stimulus(std::uint64_t seed, std::size_t input_idx, int cycle) {
  SplitMix64 rng(seed ^ (0x9E3779B97F4A7C15ULL * (input_idx + 1)) ^
                 (0xBF58476D1CE4E5B9ULL * static_cast<std::uint64_t>(cycle + 1)));
  return rng.next();
}

void drive(LogicSimulator& sim, const Netlist& nl, std::uint64_t seed,
           int cycle) {
  const auto inputs = nl.inputs();
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    sim.set_input(inputs[i], stimulus(seed, i, cycle));
  }
}

// Golden and intermittent runs build fresh simulators over one shared
// compiled netlist: levelization/layout is paid once per circuit, and
// every simulator sees the identical immutable schedule.
std::shared_ptr<const CompiledNetlist> shared_compiled(const Netlist& nl) {
  return CompiledNetlist::compile(nl);
}

// Golden: run `cycles` cycles without interruption.
std::uint64_t golden_fingerprint(
    const Netlist& nl, const std::shared_ptr<const CompiledNetlist>& cn,
    std::uint64_t seed, int cycles) {
  LogicSimulator sim(nl, cn);
  for (int c = 0; c < cycles; ++c) {
    drive(sim, nl, seed, c);
    sim.step();
  }
  drive(sim, nl, seed, cycles);
  sim.settle();
  return sim.fingerprint();
}

// Intermittent: random failures roll back to the last checkpoint; the
// checkpoint interval models the DIAC commit budget.
std::uint64_t intermittent_fingerprint(
    const Netlist& nl, const std::shared_ptr<const CompiledNetlist>& cn,
    std::uint64_t seed, int cycles, int checkpoint_interval,
    double failure_probability, std::uint64_t failure_seed) {
  LogicSimulator sim(nl, cn);
  SplitMix64 failures(failure_seed);

  struct Checkpoint {
    int cycle = 0;
    std::vector<Word> state;
  };
  Checkpoint nvm{0, sim.state()};  // initial commit

  int c = 0;
  int failures_injected = 0;
  while (c < cycles) {
    // Power failure: volatile state is lost; restore the NVM checkpoint
    // and re-execute from its cycle.
    if (failures.chance(failure_probability) && failures_injected < 200) {
      ++failures_injected;
      sim.set_state(nvm.state);
      c = nvm.cycle;
      continue;
    }
    drive(sim, nl, seed, c);
    sim.step();
    ++c;
    if (c % checkpoint_interval == 0) {
      nvm = {c, sim.state()};  // commit point
    }
  }
  drive(sim, nl, seed, cycles);
  sim.settle();
  return sim.fingerprint();
}

struct Case {
  const char* bench;
  int cycles;
  int interval;
  double p_fail;
};

class Robustness : public ::testing::TestWithParam<Case> {};

TEST_P(Robustness, IntermittentEqualsGolden) {
  const Case& c = GetParam();
  static std::list<Netlist> cache;
  cache.push_back(build_benchmark(c.bench));
  const Netlist& nl = cache.back();
  const auto cn = shared_compiled(nl);
  const std::uint64_t seed = 0xABCDEF;
  const std::uint64_t want = golden_fingerprint(nl, cn, seed, c.cycles);
  for (std::uint64_t fs = 1; fs <= 5; ++fs) {
    const std::uint64_t got = intermittent_fingerprint(
        nl, cn, seed, c.cycles, c.interval, c.p_fail, fs);
    EXPECT_EQ(got, want) << c.bench << " failure-seed " << fs;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Circuits, Robustness,
    ::testing::Values(Case{"s27", 40, 4, 0.15},    //
                      Case{"s208", 30, 5, 0.20},   //
                      Case{"s344", 30, 3, 0.25},   //
                      Case{"b02", 50, 5, 0.15},    //
                      Case{"b09", 30, 6, 0.20},    //
                      Case{"b10", 30, 4, 0.20},    //
                      Case{"sbc", 20, 4, 0.25}),
    [](const auto& inf) { return std::string(inf.param.bench); });

TEST(Robustness, FrequentCheckpointsAlsoConsistent) {
  // Checkpoint every cycle (NV-Based semantics): still exact.
  static std::list<Netlist> cache;
  cache.push_back(build_benchmark("s344"));
  const Netlist& nl = cache.back();
  const auto cn = shared_compiled(nl);
  const auto want = golden_fingerprint(nl, cn, 7, 25);
  const auto got = intermittent_fingerprint(nl, cn, 7, 25, 1, 0.3, 99);
  EXPECT_EQ(got, want);
}

TEST(Robustness, NoFailuresDegenerateCase) {
  static std::list<Netlist> cache;
  cache.push_back(build_benchmark("s208"));
  const Netlist& nl = cache.back();
  const auto cn = shared_compiled(nl);
  const auto want = golden_fingerprint(nl, cn, 11, 30);
  const auto got = intermittent_fingerprint(nl, cn, 11, 30, 5, 0.0, 1);
  EXPECT_EQ(got, want);
}

TEST(Robustness, MissingCheckpointsWouldDiverge) {
  // Sanity check of the harness itself: if a restore skipped re-execution
  // (an external inconsistency a correct checkpoint protocol prevents),
  // the observable behaviour must differ — i.e. the property is not
  // vacuously true.  Because a forgetting FSM can re-converge on its
  // *final* state, we hash the outputs of every cycle, not just the last.
  static std::list<Netlist> cache;
  cache.push_back(build_benchmark("b02"));
  const Netlist& nl = cache.back();
  const auto cn = shared_compiled(nl);
  const std::uint64_t seed = 0x5EED;
  const int cycles = 40;

  auto rolling_hash = [&](bool inject) {
    LogicSimulator sim(nl, cn);
    const std::vector<Word> nvm = sim.state();
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (int c = 0; c < cycles; ++c) {
      if (inject && c == cycles / 2) {
        sim.set_state(nvm);  // restore stale state, keep going (wrong!)
      }
      drive(sim, nl, seed, c);
      sim.settle();
      h = (h ^ sim.fingerprint()) * 0x100000001b3ULL;
      sim.step();
    }
    return h;
  };
  EXPECT_NE(rolling_hash(true), rolling_hash(false));
}

}  // namespace
}  // namespace diac
