#include <gtest/gtest.h>

#include <set>

#include "netlist/logic_sim.hpp"
#include "netlist/suite.hpp"

namespace diac {
namespace {

TEST(Suite, Has24Benchmarks) {
  EXPECT_EQ(benchmark_suite().size(), 24u);
}

TEST(Suite, GateCountsMatchPaperHeaderRow) {
  // The "# Gates" row of Fig. 5, in order.
  const std::vector<std::size_t> iscas = {10,  119, 161, 164,  218,  193,
                                          289, 446, 529, 657, 9772, 19253};
  const std::vector<std::size_t> itc = {22, 861, 129, 155, 437, 904, 266, 4444};
  const std::vector<std::size_t> mcnc = {2383, 5763, 744, 490};

  const auto in = [&](BenchmarkSuite s) {
    std::vector<std::size_t> out;
    for (const auto& spec : benchmarks_in(s)) out.push_back(spec.gate_count);
    return out;
  };
  EXPECT_EQ(in(BenchmarkSuite::kIscas89), iscas);
  EXPECT_EQ(in(BenchmarkSuite::kItc99), itc);
  EXPECT_EQ(in(BenchmarkSuite::kMcnc), mcnc);
}

TEST(Suite, NamesAreUnique) {
  std::set<std::string> names;
  for (const auto& spec : benchmark_suite()) names.insert(spec.name);
  EXPECT_EQ(names.size(), benchmark_suite().size());
}

TEST(Suite, SpecLookup) {
  const auto& spec = benchmark_spec("b14");
  EXPECT_EQ(spec.function_class, "Viper processor");
  EXPECT_EQ(spec.gate_count, 4444u);
  EXPECT_THROW(benchmark_spec("zzz"), std::invalid_argument);
}

TEST(Suite, FunctionClassesMatchPaper) {
  EXPECT_EQ(benchmark_spec("s27").function_class, "Logic");
  EXPECT_EQ(benchmark_spec("s344").function_class, "4-bit Multiplier");
  EXPECT_EQ(benchmark_spec("b02").function_class, "BCD FSM");
  EXPECT_EQ(benchmark_spec("b10").function_class, "Voting System");
  EXPECT_EQ(benchmark_spec("bigkey").function_class, "Key Encryption");
  EXPECT_EQ(benchmark_spec("sbc").function_class, "Bus Controller");
}

// Every benchmark builds at exactly the paper's gate count and validates.
class SuiteBuild : public ::testing::TestWithParam<std::string> {};

TEST_P(SuiteBuild, BuildsAtExactGateCount) {
  const auto& spec = benchmark_spec(GetParam());
  const Netlist nl = build_benchmark(spec);
  EXPECT_EQ(nl.logic_gate_count(), spec.gate_count);
  EXPECT_NO_THROW(nl.validate());
  EXPECT_GT(nl.inputs().size(), 0u);
  EXPECT_GT(nl.outputs().size(), 0u);
}

TEST_P(SuiteBuild, BuildIsDeterministic) {
  const auto& spec = benchmark_spec(GetParam());
  const Netlist a = build_benchmark(spec);
  const Netlist b = build_benchmark(spec);
  ASSERT_EQ(a.size(), b.size());
  for (GateId id = 0; id < a.size(); ++id) {
    ASSERT_EQ(a.gate(id).kind, b.gate(id).kind);
    ASSERT_EQ(a.gate(id).fanin, b.gate(id).fanin);
  }
}

// Small/medium circuits (the large ones are covered once in
// BuildsAllLarge to keep test time bounded).
INSTANTIATE_TEST_SUITE_P(
    SmallAndMedium, SuiteBuild,
    ::testing::Values("s27", "s208", "s344", "s349", "s382", "s386", "s510",
                      "s820", "s953", "s1238", "b02", "b04", "b09", "b10",
                      "b11", "b12", "b13", "des_core", "sbc"),
    [](const auto& inf) { return inf.param; });

TEST(Suite, BuildsAllLarge) {
  for (const char* name : {"s13207", "s38417", "b14", "bigkey", "dsip"}) {
    const auto& spec = benchmark_spec(name);
    const Netlist nl = build_benchmark(spec);
    EXPECT_EQ(nl.logic_gate_count(), spec.gate_count) << name;
  }
}

TEST(Suite, BenchmarksAreSimulatable) {
  // Every circuit must run on the logic simulator (observability sanity).
  for (const char* name : {"s27", "s344", "b02", "b10", "sbc"}) {
    const Netlist nl = build_benchmark(name);
    LogicSimulator sim(nl);
    for (GateId in : nl.inputs()) sim.set_input(in, 0x123456789ABCDEF0ULL);
    sim.run(3);
    sim.settle();
    SUCCEED();
  }
}

TEST(Suite, SuiteToString) {
  EXPECT_STREQ(to_string(BenchmarkSuite::kIscas89), "ISCAS-89");
  EXPECT_STREQ(to_string(BenchmarkSuite::kItc99), "ITC-99");
  EXPECT_STREQ(to_string(BenchmarkSuite::kMcnc), "MCNC");
}

}  // namespace
}  // namespace diac
