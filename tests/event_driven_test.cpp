// Differential validation of the event-driven simulation core against the
// fixed-dt reference engine: on identical designs, sources and seeds the
// two must produce the same event sequence and the same RunStats up to
// integration-error tolerance (the reference loop quantizes time at dt
// and operation durations up to one dt, so bit-equality is not expected).
#include <gtest/gtest.h>

#include <cmath>
#include <list>

#include "diac/synthesizer.hpp"
#include "netlist/suite.hpp"
#include "runtime/simulator.hpp"

namespace diac {
namespace {

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::nominal_45nm();
  return l;
}

SynthesisResult synth(const std::string& name, Scheme scheme) {
  static std::list<Netlist> cache;
  cache.push_back(build_benchmark(name));
  return DiacSynthesizer(cache.back(), lib()).synthesize_scheme(scheme);
}

struct Pair {
  RunStats event, stepped;
  std::vector<SimEvent> event_log, stepped_log;
};

Pair run_both(const IntermittentDesign& design, const HarvestSource& source,
              SimulatorOptions options, FsmConfig config = {}) {
  Pair p;
  options.mode = SimMode::kEventDriven;
  SystemSimulator se(design, source, config, options);
  p.event = se.run();
  p.event_log = se.events();
  options.mode = SimMode::kStepped;
  SystemSimulator ss(design, source, config, options);
  p.stepped = ss.run();
  p.stepped_log = ss.events();
  return p;
}

void expect_equivalent(const Pair& p, const std::string& label) {
  // Event sequence: same kinds in the same order.  Timestamps can drift
  // by a few seconds when a marginal decision (one compute step squeezed
  // in before a dip) shifts the descent to a threshold, so the time check
  // is coarse; the sequence check is the strict one.
  ASSERT_EQ(p.event_log.size(), p.stepped_log.size()) << label;
  for (std::size_t i = 0; i < p.event_log.size(); ++i) {
    EXPECT_EQ(p.event_log[i].kind, p.stepped_log[i].kind)
        << label << " event " << i;
    EXPECT_NEAR(p.event_log[i].t, p.stepped_log[i].t,
                0.1 * p.stepped.makespan + 1.0)
        << label << " event " << i;
  }
  // Structural outcomes must agree exactly.
  EXPECT_EQ(p.event.instances_completed, p.stepped.instances_completed)
      << label;
  EXPECT_EQ(p.event.workload_completed, p.stepped.workload_completed)
      << label;
  EXPECT_EQ(p.event.deep_outages, p.stepped.deep_outages) << label;
  EXPECT_EQ(p.event.restores, p.stepped.restores) << label;
  EXPECT_EQ(p.event.backups, p.stepped.backups) << label;
  EXPECT_EQ(p.event.safe_zone_saves, p.stepped.safe_zone_saves) << label;
  EXPECT_EQ(p.event.power_interrupts, p.stepped.power_interrupts) << label;
  // Work and energy within integration tolerance.
  EXPECT_NEAR(p.event.tasks_executed, p.stepped.tasks_executed,
              0.01 * p.stepped.tasks_executed + 2.0)
      << label;
  EXPECT_NEAR(p.event.makespan, p.stepped.makespan,
              0.01 * p.stepped.makespan + 0.01)
      << label;
  EXPECT_NEAR(p.event.energy_consumed, p.stepped.energy_consumed,
              0.01 * p.stepped.energy_consumed)
      << label;
  EXPECT_NEAR(p.event.energy_harvested, p.stepped.energy_harvested,
              0.01 * p.stepped.energy_harvested)
      << label;
  // The time breakdown covers the makespan in both engines.
  const double accounted = p.event.time_active + p.event.time_sleep +
                           p.event.time_off + p.event.time_backup;
  EXPECT_NEAR(accounted, p.event.makespan, 0.001 * p.event.makespan + 0.001)
      << label;
}

TEST(EventDriven, MatchesSteppedOnRfidAllSchemes) {
  for (Scheme scheme : {Scheme::kNvBased, Scheme::kNvClustering,
                        Scheme::kDiac, Scheme::kDiacOptimized}) {
    const auto r = synth("s820", scheme);
    const RfidBurstSource source(5);
    SimulatorOptions opt;
    opt.target_instances = 4;
    opt.max_time = 20000;
    expect_equivalent(run_both(r.design, source, opt),
                      std::string("rfid/") + to_string(scheme));
  }
}

TEST(EventDriven, MatchesSteppedOnSolarAllSchemes) {
  for (Scheme scheme : {Scheme::kNvBased, Scheme::kNvClustering,
                        Scheme::kDiac, Scheme::kDiacOptimized}) {
    const auto r = synth("s820", scheme);
    const SolarSource source(5);
    SimulatorOptions opt;
    opt.target_instances = 4;
    opt.max_time = 20000;
    expect_equivalent(run_both(r.design, source, opt),
                      std::string("solar/") + to_string(scheme));
  }
}

TEST(EventDriven, SolarClosedFormMatchesQuantumAllSchemes) {
  // Satellite: the closed-form sine-envelope crossing solver replaces the
  // bounded-quantum advance as the default; the quantum path is kept
  // exactly for this differential check.  Same design, source and seed —
  // the two continuous-advance strategies must tell the same story.
  for (Scheme scheme : {Scheme::kNvBased, Scheme::kNvClustering,
                        Scheme::kDiac, Scheme::kDiacOptimized}) {
    const auto r = synth("s820", scheme);
    const SolarSource source(5);
    SimulatorOptions opt;
    opt.target_instances = 4;
    opt.max_time = 20000;
    opt.mode = SimMode::kEventDriven;
    Pair p;
    opt.continuous_advance = ContinuousAdvance::kClosedForm;
    SystemSimulator closed(r.design, source, FsmConfig{}, opt);
    p.event = closed.run();
    p.event_log = closed.events();
    opt.continuous_advance = ContinuousAdvance::kQuantum;
    SystemSimulator quantum(r.design, source, FsmConfig{}, opt);
    p.stepped = quantum.run();
    p.stepped_log = quantum.events();
    expect_equivalent(p, std::string("solar-closed-form/") + to_string(scheme));
  }
}

TEST(EventDriven, SolarClosedFormIsDeterministicAcrossRuns) {
  const auto r = synth("s820", Scheme::kDiacOptimized);
  const SolarSource source(42);
  SimulatorOptions opt;
  opt.target_instances = 3;
  opt.max_time = 20000;
  SystemSimulator a(r.design, source, FsmConfig{}, opt);
  SystemSimulator b(r.design, source, FsmConfig{}, opt);
  const RunStats sa = a.run();
  const RunStats sb = b.run();
  EXPECT_DOUBLE_EQ(sa.makespan, sb.makespan);
  EXPECT_DOUBLE_EQ(sa.energy_consumed, sb.energy_consumed);
  EXPECT_DOUBLE_EQ(sa.energy_harvested, sb.energy_harvested);
  EXPECT_EQ(sa.nvm_writes, sb.nvm_writes);
  EXPECT_EQ(a.events().size(), b.events().size());
}

TEST(EventDriven, MatchesSteppedOnSquareWaveInterrupts) {
  // Long gaps exercise backups/power interrupts on every scheme.
  for (Scheme scheme : {Scheme::kNvBased, Scheme::kDiac,
                        Scheme::kDiacOptimized}) {
    const auto r = synth("s820", scheme);
    const SquareWaveSource source(8.0e-3, 25.0, 0.2);
    SimulatorOptions opt;
    opt.target_instances = 2;
    opt.max_time = 3000;
    expect_equivalent(run_both(r.design, source, opt),
                      std::string("square/") + to_string(scheme));
  }
}

TEST(EventDriven, MatchesSteppedOnFig4WithinMarginalCrossings) {
  // The scripted Fig. 4 trace is deliberately margin-razor-thin (region 5
  // dips that *barely* stay above Th_Bk, a region 6 drought that *barely*
  // stays above Th_Off), so the dt-quantized reference and the exact
  // event engine can resolve individual marginal crossings differently.
  // The behaviour the figure narrates must still agree: every event
  // family within one count, energy within a percent, and the scheme's
  // qualitative story (three safe-zone saves, one shutdown+restore for
  // DIAC-Optimized) intact — the strict per-region assertions live in
  // fsm_validation_test.cpp.
  for (Scheme scheme : {Scheme::kNvBased, Scheme::kDiacOptimized}) {
    const auto r = synth("s344", scheme);
    const PiecewiseTrace trace = fig4_trace();
    SimulatorOptions opt;
    opt.target_instances = 1000;  // run the whole scripted trace
    opt.max_time = 3600;
    const Pair p = run_both(r.design, trace, opt);
    const std::string label = std::string("fig4/") + to_string(scheme);
    // One marginal Th_Off crossing cascades (shutdown -> restore -> a
    // fresh backup on the next descent), so backups get a ±2 band.
    EXPECT_NEAR(p.event.backups, p.stepped.backups, 2) << label;
    EXPECT_NEAR(p.event.deep_outages, p.stepped.deep_outages, 1) << label;
    EXPECT_NEAR(p.event.restores, p.stepped.restores, 1) << label;
    EXPECT_NEAR(p.event.safe_zone_saves, p.stepped.safe_zone_saves, 1)
        << label;
    EXPECT_NEAR(p.event.instances_completed, p.stepped.instances_completed,
                2)
        << label;
    EXPECT_NEAR(p.event.makespan, 3600.0, 1e-6) << label;
    EXPECT_NEAR(p.event.energy_consumed, p.stepped.energy_consumed,
                0.01 * p.stepped.energy_consumed)
        << label;
    EXPECT_NEAR(p.event.energy_harvested, p.stepped.energy_harvested,
                0.01 * p.stepped.energy_harvested)
        << label;
  }
}

TEST(EventDriven, MatchesSteppedThroughDeepOutages) {
  // Aggressive sleep drain forces Th_Off crossings, restores and DIAC
  // rollback re-execution (the Fig. 4 region-4 machinery).
  const auto r = synth("s1238", Scheme::kDiac);
  const SquareWaveSource source(9.0e-3, 40.0, 0.3);
  FsmConfig cfg;
  cfg.sleep_power = 300.0e-6;
  cfg.sleep_power_backed_up = 300.0e-6;
  SimulatorOptions opt;
  opt.target_instances = 2;
  opt.max_time = 4000;
  const Pair p = run_both(r.design, source, opt, cfg);
  ASSERT_GT(p.stepped.deep_outages, 0);
  ASSERT_GT(p.stepped.restores, 0);
  expect_equivalent(p, "outage/DIAC");
  EXPECT_NEAR(p.event.reexec_energy, p.stepped.reexec_energy,
              0.05 * p.stepped.reexec_energy + 1e-6);
}

TEST(EventDriven, MatchesSteppedWithNonIdealStorage) {
  const auto r = synth("s344", Scheme::kDiacOptimized);
  const RfidBurstSource source(5);
  SimulatorOptions opt;
  opt.target_instances = 3;
  opt.max_time = 20000;
  opt.charge_efficiency = 0.8;
  opt.storage_leakage = 20e-6;
  expect_equivalent(run_both(r.design, source, opt), "lossy/DIAC-Optimized");
}

TEST(EventDriven, DeterministicAcrossRuns) {
  const auto r = synth("s820", Scheme::kDiacOptimized);
  const RfidBurstSource source(42);
  SimulatorOptions opt;
  opt.target_instances = 3;
  opt.max_time = 20000;
  SystemSimulator a(r.design, source, FsmConfig{}, opt);
  SystemSimulator b(r.design, source, FsmConfig{}, opt);
  const RunStats sa = a.run();
  const RunStats sb = b.run();
  EXPECT_DOUBLE_EQ(sa.makespan, sb.makespan);
  EXPECT_DOUBLE_EQ(sa.energy_consumed, sb.energy_consumed);
  EXPECT_EQ(sa.nvm_writes, sb.nvm_writes);
  EXPECT_EQ(a.events().size(), b.events().size());
}

TEST(EventDriven, HonorsSubDtOperationDurations) {
  // Satellite fix: the stepped engine stretches sub-dt operations to one
  // full dt (documented quantization); the event engine must honor the
  // true duration.  Crank the operation powers so sense takes 0.5 ms and
  // each transmit packet 33 us — far below the 1 ms step.
  const auto r = synth("s344", Scheme::kDiac);
  const ConstantSource source(10.0e-3);
  FsmConfig cfg;
  cfg.sense_power = 4.0;      // 2 mJ / 4 W = 0.5 ms
  cfg.transmit_power = 30.0;  // 1 mJ / 30 W = 33 us per packet
  SimulatorOptions opt;
  opt.target_instances = 2;
  opt.max_time = 4000;
  const Pair p = run_both(r.design, source, opt, cfg);
  ASSERT_TRUE(p.event.workload_completed);
  ASSERT_TRUE(p.stepped.workload_completed);
  // Per instance: 1 sense (0.5 ms true vs 1 ms quantized) + 9 packets
  // (33 us true vs 1 ms quantized) — the stepped active time must exceed
  // the event-driven active time by roughly those stretches.
  EXPECT_LT(p.event.time_active, p.stepped.time_active);
  const double quantized_floor =
      2 * (1 + 9) * 1.0e-3;  // every sub-dt op costs >= dt in stepped mode
  EXPECT_GE(p.stepped.time_active, quantized_floor);
}

TEST(EventDriven, TraceSamplingMatchesInterval) {
  const auto r = synth("s344", Scheme::kDiac);
  const ConstantSource source(5.0e-3);
  SimulatorOptions opt;
  opt.target_instances = 2;
  opt.max_time = 4000;
  opt.record_trace = true;
  opt.trace_interval = 0.5;
  SystemSimulator sim(r.design, source, FsmConfig{}, opt);
  const RunStats stats = sim.run();
  ASSERT_FALSE(sim.trace().empty());
  EXPECT_NEAR(static_cast<double>(sim.trace().size()) * 0.5,
              stats.makespan, 2.0);
  double last = -1.0;
  for (const TracePoint& p : sim.trace()) {
    EXPECT_GT(p.t, last);
    last = p.t;
    EXPECT_GE(p.energy, 0.0);
    EXPECT_LE(p.energy, sim.e_max() + 1e-12);
  }
}

TEST(EventDriven, EnergyConservationHoldsExactly) {
  const auto r = synth("s820", Scheme::kDiacOptimized);
  const RfidBurstSource source(42);
  SimulatorOptions opt;
  opt.target_instances = 4;
  opt.max_time = 20000;
  SystemSimulator sim(r.design, source, FsmConfig{}, opt);
  const RunStats stats = sim.run();
  const double initial = 0.5 * 25.0e-3;
  EXPECT_LE(stats.energy_consumed,
            initial + stats.energy_harvested + 1e-9);
}

}  // namespace
}  // namespace diac
