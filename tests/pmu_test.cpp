#include <gtest/gtest.h>

#include "power/pmu.hpp"
#include "runtime/fsm.hpp"
#include "util/units.hpp"

namespace diac {
namespace {

Thresholds paper_stack() {
  // E_MAX 25 mJ; backup ~0.5 mJ; sense 2 mJ; compute entry 1 mJ;
  // transmit 9 mJ.
  return make_thresholds(25.0e-3, 0.5e-3, 2.0e-3, 1.0e-3, 9.0e-3);
}

TEST(Pmu, StackOrdering) {
  const Thresholds th = paper_stack();
  EXPECT_LT(th.off, th.backup);
  EXPECT_LT(th.backup, th.safe);
  EXPECT_LT(th.safe, th.sense);
  EXPECT_LE(th.sense, th.compute);
  EXPECT_LE(th.compute, th.transmit);
  EXPECT_NO_THROW(th.validate());
}

TEST(Pmu, SafeZoneIs2mJAboveBackup) {
  // "the Th_SafeZone region exceeds the backup threshold by 2 mJ" (SIV.A).
  const Thresholds th = paper_stack();
  EXPECT_NEAR(th.safe - th.backup, 2.0e-3, 1e-12);
}

TEST(Pmu, BackupReserveScalesWithBackupCost) {
  const Thresholds cheap = make_thresholds(25e-3, 0.2e-3, 2e-3, 1e-3, 9e-3);
  const Thresholds costly = make_thresholds(25e-3, 2.0e-3, 2e-3, 1e-3, 9e-3);
  EXPECT_GT(costly.backup, cheap.backup);
  // A scheme with expensive backups must leave active states earlier.
  EXPECT_GT(costly.safe, cheap.safe);
}

TEST(Pmu, ZoneClassification) {
  const Thresholds th = paper_stack();
  EXPECT_EQ(th.classify(0.5e-3), PowerZone::kOff);
  EXPECT_EQ(th.classify((th.off + th.backup) / 2), PowerZone::kBackup);
  EXPECT_EQ(th.classify((th.backup + th.safe) / 2), PowerZone::kSafeZone);
  EXPECT_EQ(th.classify((th.safe + th.sense) / 2), PowerZone::kLow);
  EXPECT_EQ(th.classify(20.0e-3), PowerZone::kOperate);
}

TEST(Pmu, EntryChecks) {
  const Thresholds th = paper_stack();
  EXPECT_TRUE(th.can_transmit(th.transmit + 1e-6));
  EXPECT_FALSE(th.can_transmit(th.transmit - 1e-6));
  EXPECT_TRUE(th.can_sense(th.sense + 1e-6));
  EXPECT_FALSE(th.can_compute(th.compute));
}

TEST(Pmu, TransmitRequiresMoreThanSense) {
  // Th_Tr > Th_Cp > Th_Se ordering from Fig. 4 (9 mJ > entry > 2 mJ).
  const Thresholds th = make_thresholds(25e-3, 0.5e-3, 2e-3, 3e-3, 9e-3);
  EXPECT_GT(th.transmit, th.compute);
  EXPECT_GT(th.compute, th.sense);
}

TEST(Pmu, OversizedStackRejected) {
  // A backup so expensive the stack exceeds E_MAX must be rejected.
  EXPECT_THROW(make_thresholds(25.0e-3, 15.0e-3, 2e-3, 1e-3, 9e-3),
               std::invalid_argument);
}

TEST(Pmu, ValidateCatchesDisorder) {
  Thresholds th = paper_stack();
  th.backup = th.safe + 1e-3;
  EXPECT_THROW(th.validate(), std::invalid_argument);
}

TEST(Pmu, ThresholdsForUsesMaxTask) {
  FsmConfig cfg;
  const Thresholds small = thresholds_for(cfg, 25e-3, 0.5e-3, 0.5e-3);
  const Thresholds large = thresholds_for(cfg, 25e-3, 0.5e-3, 3.0e-3);
  // A larger atomic task raises the compute entry threshold (atomicity:
  // "should only begin when sufficient power is available").
  EXPECT_GT(large.compute, small.compute);
  EXPECT_DOUBLE_EQ(large.sense, small.sense);
}

TEST(Pmu, ZoneToString) {
  EXPECT_STREQ(to_string(PowerZone::kOff), "Off");
  EXPECT_STREQ(to_string(PowerZone::kSafeZone), "SafeZone");
  EXPECT_STREQ(to_string(PowerZone::kOperate), "Operate");
}

}  // namespace
}  // namespace diac
