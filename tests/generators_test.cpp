#include <gtest/gtest.h>

#include "netlist/analysis.hpp"
#include "netlist/generators.hpp"
#include "netlist/logic_sim.hpp"

namespace diac {
namespace {

TEST(Generators, XorReduceSingle) {
  Netlist nl;
  const GateId a = nl.add(GateKind::kInput, "a");
  EXPECT_EQ(gen::xor_reduce(nl, {a}), a);
}

TEST(Generators, XorReduceBuildsTree) {
  Netlist nl;
  std::vector<GateId> sigs;
  for (int i = 0; i < 5; ++i) {
    sigs.push_back(nl.add(GateKind::kInput, "i" + std::to_string(i)));
  }
  const GateId root = gen::xor_reduce(nl, sigs);
  nl.add(GateKind::kOutput, "y$out", {root});
  EXPECT_EQ(nl.logic_gate_count(), 4u);  // n-1 XORs
  EXPECT_NO_THROW(nl.validate());
}

TEST(Generators, XorReduceRejectsEmpty) {
  Netlist nl;
  EXPECT_THROW(gen::xor_reduce(nl, {}), std::invalid_argument);
}

TEST(Generators, FullAdderTruthTable) {
  Netlist nl;
  const GateId a = nl.add(GateKind::kInput, "a");
  const GateId b = nl.add(GateKind::kInput, "b");
  const GateId c = nl.add(GateKind::kInput, "c");
  auto [sum, carry] = gen::full_adder(nl, a, b, c);
  nl.add(GateKind::kOutput, "s$out", {sum});
  nl.add(GateKind::kOutput, "co$out", {carry});
  LogicSimulator sim(nl);
  Word wa = 0, wb = 0, wc = 0;
  for (int lane = 0; lane < 8; ++lane) {
    if (lane & 1) wa |= Word{1} << lane;
    if (lane & 2) wb |= Word{1} << lane;
    if (lane & 4) wc |= Word{1} << lane;
  }
  sim.set_input(a, wa);
  sim.set_input(b, wb);
  sim.set_input(c, wc);
  sim.settle();
  for (int lane = 0; lane < 8; ++lane) {
    const int total =
        ((lane & 1) != 0) + ((lane & 2) != 0) + ((lane & 4) != 0);
    EXPECT_EQ((sim.value(sum) >> lane) & 1, Word(total & 1));
    EXPECT_EQ((sim.value(carry) >> lane) & 1, Word(total >= 2));
  }
}

TEST(Generators, GrowToHitsExactTarget) {
  for (std::size_t target : {10u, 57u, 200u, 1001u}) {
    SplitMix64 rng(target);
    Netlist nl = gen::random_logic("g" + std::to_string(target), 8, 4, target,
                                   target * 7);
    EXPECT_EQ(nl.logic_gate_count(), target) << target;
    EXPECT_NO_THROW(nl.validate());
  }
}

TEST(Generators, GrowToRejectsOvershoot) {
  Netlist nl = gen::array_multiplier("m", 4);
  SplitMix64 rng(1);
  EXPECT_THROW(gen::grow_to(nl, 3, rng), std::invalid_argument);
}

TEST(Generators, GrownCircuitsHaveNoDanglingLogic) {
  SplitMix64 rng(5);
  Netlist nl = gen::pld("p", 8, 12, 4, 3);
  gen::grow_to(nl, 300, rng, gen::mix_generic());
  EXPECT_EQ(nl.logic_gate_count(), 300u);
  for (GateId id = 0; id < nl.size(); ++id) {
    const Gate& g = nl.gate(id);
    if (is_logic(g.kind)) {
      EXPECT_FALSE(g.fanout.empty()) << g.name;
    }
  }
}

TEST(Generators, DeterministicInSeed) {
  const Netlist a = gen::random_logic("x", 8, 4, 150, 42);
  const Netlist b = gen::random_logic("x", 8, 4, 150, 42);
  ASSERT_EQ(a.size(), b.size());
  for (GateId id = 0; id < a.size(); ++id) {
    EXPECT_EQ(a.gate(id).kind, b.gate(id).kind);
    EXPECT_EQ(a.gate(id).fanin, b.gate(id).fanin);
  }
}

TEST(Generators, SeedsChangeStructure) {
  const Netlist a = gen::random_logic("x", 8, 4, 150, 1);
  const Netlist b = gen::random_logic("x", 8, 4, 150, 2);
  bool differs = a.size() != b.size();
  for (GateId id = 0; !differs && id < a.size(); ++id) {
    differs = a.gate(id).kind != b.gate(id).kind ||
              a.gate(id).fanin != b.gate(id).fanin;
  }
  EXPECT_TRUE(differs);
}

TEST(Generators, MultiplierStructure) {
  const Netlist nl = gen::array_multiplier("m5", 5);
  EXPECT_EQ(nl.inputs().size(), 10u);
  EXPECT_EQ(nl.outputs().size(), 10u);
  EXPECT_NO_THROW(nl.validate());
  EXPECT_THROW(gen::array_multiplier("bad", 1), std::invalid_argument);
}

TEST(Generators, PldIsTwoLevel) {
  const Netlist nl = gen::pld("pld", 10, 16, 6, 7);
  EXPECT_EQ(nl.outputs().size(), 6u);
  EXPECT_LE(depth(nl), 3);  // NOT + AND + OR
  EXPECT_NO_THROW(nl.validate());
}

TEST(Generators, FsmHasStateRegister) {
  const Netlist nl = gen::fsm_circuit("fsm", 5, 3, 4, 11);
  EXPECT_EQ(nl.dffs().size(), 5u);
  EXPECT_NO_THROW(nl.validate());
  // The FSM must actually change state under input stimulation.  Drive
  // each input with a distinct lane pattern and check that the state
  // register leaves reset within a few cycles (XOR-toggle state bits can
  // be periodic, so compare against every visited state).
  LogicSimulator sim(nl);
  const auto inputs = nl.inputs();
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    SplitMix64 rng(0x1234 + i);
    sim.set_input(inputs[i], rng.next());
  }
  sim.settle();
  const auto s0 = sim.state();
  bool changed = false;
  for (int k = 0; k < 5 && !changed; ++k) {
    sim.step();
    changed = sim.state() != s0;
  }
  EXPECT_TRUE(changed);
}

TEST(Generators, VoterRejectsEvenCounts) {
  EXPECT_THROW(gen::majority_voter("v", 4), std::invalid_argument);
  EXPECT_THROW(gen::majority_voter("v", 1), std::invalid_argument);
}

TEST(Generators, SerialConverterShifts) {
  const Netlist nl = gen::serial_converter("ser", 8, 3);
  EXPECT_GE(nl.dffs().size(), 16u);  // shift-in + shift-out registers
  EXPECT_NO_THROW(nl.validate());
}

TEST(Generators, CipherDiffuses) {
  // Flipping one plaintext bit must change the ciphertext.
  const Netlist nl = gen::xor_cipher("ciph", 16, 3, 5);
  LogicSimulator sim(nl);
  for (GateId in : nl.inputs()) sim.set_input(in, 0);
  sim.settle();
  std::vector<Word> base = sim.output_values();
  sim.set_input("pt0", ~Word{0});
  sim.settle();
  EXPECT_NE(sim.output_values(), base);
}

TEST(Generators, ComparatorFindsMinAndMax) {
  const Netlist nl = gen::comparator_tree("cmp", 4, 4);
  LogicSimulator sim(nl);
  SplitMix64 rng(21);
  for (int trial = 0; trial < 30; ++trial) {
    unsigned words[4];
    for (int w = 0; w < 4; ++w) {
      words[w] = static_cast<unsigned>(rng.below(16));
      for (int b = 0; b < 4; ++b) {
        sim.set_input("w" + std::to_string(w) + "_" + std::to_string(b),
                      (words[w] >> b) & 1 ? ~Word{0} : 0);
      }
    }
    sim.settle();
    unsigned got_max = 0, got_min = 0;
    for (int b = 0; b < 4; ++b) {
      if (sim.value("max" + std::to_string(b) + "$out") & 1) got_max |= 1u << b;
      if (sim.value("min" + std::to_string(b) + "$out") & 1) got_min |= 1u << b;
    }
    const unsigned want_max = std::max({words[0], words[1], words[2], words[3]});
    const unsigned want_min = std::min({words[0], words[1], words[2], words[3]});
    EXPECT_EQ(got_max, want_max);
    EXPECT_EQ(got_min, want_min);
  }
}

TEST(Generators, AluAddsAndMasks) {
  const Netlist nl = gen::alu_datapath("alu", 8, 1);
  LogicSimulator sim(nl);
  SplitMix64 rng(33);
  for (int trial = 0; trial < 20; ++trial) {
    const unsigned a = static_cast<unsigned>(rng.below(256));
    const unsigned b = static_cast<unsigned>(rng.below(256));
    for (int i = 0; i < 8; ++i) {
      sim.set_input("ra" + std::to_string(i), (a >> i) & 1 ? ~Word{0} : 0);
      sim.set_input("rb" + std::to_string(i), (b >> i) & 1 ? ~Word{0} : 0);
    }
    // op = 00 -> ADD lane (two register stages).
    sim.set_input("op0", 0);
    sim.set_input("op1", 0);
    sim.run(2);
    sim.settle();
    unsigned sum = 0;
    for (int i = 0; i < 8; ++i) {
      if (sim.value("res" + std::to_string(i) + "$out") & 1) sum |= 1u << i;
    }
    EXPECT_EQ(sum, (a + b) & 0xFF) << a << "+" << b;
  }
}

TEST(Generators, BusControllerGrantsHighestPriority) {
  const Netlist nl = gen::bus_controller("bus", 4, 8, 1);
  LogicSimulator sim(nl);
  // Master 1 and 3 request; master 1 wins (fixed priority).
  for (GateId in : nl.inputs()) sim.set_input(in, 0);
  sim.set_input("req1", ~Word{0});
  sim.set_input("req3", ~Word{0});
  sim.run(1);
  sim.settle();
  EXPECT_EQ(sim.value("gnt1$out"), ~Word{0});
  EXPECT_EQ(sim.value("gnt3$out"), Word{0});
}

}  // namespace
}  // namespace diac
