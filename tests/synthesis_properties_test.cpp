// Suite-wide property tests: invariants that must hold for *every*
// benchmark circuit and every scheme, exercised as parameterized sweeps.
#include <gtest/gtest.h>

#include <list>

#include "diac/codegen.hpp"
#include "diac/synthesizer.hpp"
#include "netlist/suite.hpp"
#include "tree/dot_export.hpp"

namespace diac {
namespace {

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::nominal_45nm();
  return l;
}

const Netlist& circuit(const std::string& name) {
  static std::list<std::pair<std::string, Netlist>> cache;
  for (const auto& [n, nl] : cache) {
    if (n == name) return nl;
  }
  cache.emplace_back(name, build_benchmark(name));
  return cache.back().second;
}

class SynthesisSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(SynthesisSweep, TreeInvariants) {
  const Netlist& nl = circuit(GetParam());
  DiacSynthesizer synth(nl, lib());
  const TaskTree tree = synth.transformed_tree();
  EXPECT_NO_THROW(tree.validate());

  // Every logic gate is in exactly one node.
  std::size_t covered = 0;
  for (const TaskNode& n : tree.nodes()) covered += n.gates.size();
  EXPECT_EQ(covered, nl.logic_gate_count());

  // Multi-gate tasks respect the policy upper bound.
  const double scale =
      synth.options().instance_rho * synth.options().e_max / tree.total_energy();
  const double upper = synth.options().upper_fraction * synth.options().e_max;
  for (const TaskNode& n : tree.nodes()) {
    if (n.gates.size() > 1) {
      EXPECT_LE(scale * n.dict.energy(), upper * 1.02) << n.label;
    }
  }
}

TEST_P(SynthesisSweep, CommitPlanInvariants) {
  const Netlist& nl = circuit(GetParam());
  DiacSynthesizer synth(nl, lib());
  const SynthesisResult r = synth.synthesize();
  ASSERT_FALSE(r.replacement.points.empty());

  // The final scheduled task commits (the instance result must survive).
  EXPECT_TRUE(r.design.tree.node(r.design.tree.schedule().back()).has_nvm);

  // Exposure is bounded by budget + one (possibly oversized) task.
  const double budget =
      synth.options().budget_fraction * synth.options().e_max;
  double max_task = 0;
  for (const TaskNode& n : r.design.tree.nodes()) {
    max_task = std::max(max_task, r.design.scale * n.dict.energy());
  }
  EXPECT_LE(r.replacement.max_exposed_energy, budget + max_task + 1e-12);

  // Commit bits: between control-only and cap+control.
  for (TaskId p : r.replacement.points) {
    const int bits = r.design.tree.node(p).nvm_bits;
    EXPECT_GE(bits, 9);
    EXPECT_LE(bits, kBoundaryBitsCap + 8);
  }
}

TEST_P(SynthesisSweep, SchemeCostOrdering) {
  const Netlist& nl = circuit(GetParam());
  DiacSynthesizer synth(nl, lib());
  const auto nvb = synth.synthesize_scheme(Scheme::kNvBased);
  const auto nvc = synth.synthesize_scheme(Scheme::kNvClustering);
  const auto diac = synth.synthesize_scheme(Scheme::kDiac);
  double e_nvb = 0, e_nvc = 0, e_diac = 0;
  for (std::size_t i = 0; i < nvb.design.tree.size(); ++i) {
    const TaskId id = static_cast<TaskId>(i);
    e_nvb += nvb.design.boundary_write_energy(id);
    e_nvc += nvc.design.boundary_write_energy(id);
    e_diac += diac.design.boundary_write_energy(id);
  }
  // Per-pass NVM write energy: NV-Based >= NV-Clustering > DIAC.
  EXPECT_GE(e_nvb, e_nvc);
  EXPECT_GT(e_nvc, e_diac);
  EXPECT_GT(e_diac, 0.0);
}

TEST_P(SynthesisSweep, ValidationCleanAtNominalConstraints) {
  const Netlist& nl = circuit(GetParam());
  DiacSynthesizer synth(nl, lib());
  const auto r = synth.synthesize();
  // A 1 ms clock and the full storage budget must validate cleanly for
  // multi-gate tasks; oversized single-gate tasks (tiny circuits under
  // assumption-1 scaling) are the only tolerated violations.
  const auto report = validate_design(r.design, 1.0e-3, 25.0e-3);
  for (const auto& v : report.violations) {
    EXPECT_EQ(v.kind, Violation::Kind::kPowerBudget) << v.message;
    EXPECT_EQ(r.design.tree.node(v.task).gates.size(), 1u) << v.message;
  }
}

TEST_P(SynthesisSweep, DotExportWellFormed) {
  const Netlist& nl = circuit(GetParam());
  DiacSynthesizer synth(nl, lib());
  const auto r = synth.synthesize();
  DotOptions opt;
  opt.energy_scale = r.design.scale;
  const std::string dot = to_dot_string(r.design.tree, opt);
  EXPECT_EQ(dot.find("digraph"), 0u);
  EXPECT_NE(dot.find("doubleoctagon"), std::string::npos);  // commit points
  EXPECT_NE(dot.find("}"), std::string::npos);
  // One node statement per task.
  std::size_t count = 0, pos = 0;
  while ((pos = dot.find("[label=", pos)) != std::string::npos) {
    ++count;
    pos += 7;
  }
  EXPECT_EQ(count, r.design.tree.size());
}

INSTANTIATE_TEST_SUITE_P(
    Suite, SynthesisSweep,
    ::testing::Values("s27", "s208", "s344", "s349", "s382", "s386", "s510",
                      "s820", "s953", "s1238", "b02", "b04", "b09", "b10",
                      "b11", "b12", "b13", "bigkey", "des_core", "sbc"),
    [](const auto& inf) { return inf.param; });

// Budget sweep: exposure shrinks monotonically(ish) with the budget.
class BudgetSweep : public ::testing::TestWithParam<double> {};

TEST_P(BudgetSweep, ExposureTracksBudget) {
  const Netlist& nl = circuit("s1238");
  SynthesisOptions so;
  so.budget_fraction = GetParam();
  DiacSynthesizer synth(nl, lib(), so);
  const auto r = synth.synthesize();
  const double budget = so.budget_fraction * so.e_max;
  double max_task = 0;
  for (const TaskNode& n : r.design.tree.nodes()) {
    max_task = std::max(max_task, r.design.scale * n.dict.energy());
  }
  EXPECT_LE(r.replacement.max_exposed_energy, budget + max_task + 1e-12);
  EXPECT_GE(r.replacement.points.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Budgets, BudgetSweep,
                         ::testing::Values(0.05, 0.1, 0.2, 0.3, 0.5),
                         [](const auto& inf) {
                           return "b" + std::to_string(static_cast<int>(
                                            inf.param * 100));
                         });

// Scored insertion: criteria weights pick higher-fan commit points.
TEST(ScoredInsertion, FanWeightRaisesConsolidation) {
  const Netlist& nl = circuit("s1238");
  DiacSynthesizer synth(nl, lib());
  TaskTree a = synth.transformed_tree();
  TaskTree b = synth.transformed_tree();
  const double scale = 40.0e-3 / a.total_energy();

  ReplacementOptions base;
  base.scale = scale;
  base.budget = 6.25e-3;
  base.strategy = InsertionStrategy::kAccumulate;
  const auto ra = insert_nvm(a, base);

  ReplacementOptions scored = base;
  scored.strategy = InsertionStrategy::kScored;
  scored.window = 6;
  scored.w_level = 0.0;
  scored.w_power = 0.0;
  scored.w_fan = 1.0;  // pure criterion III
  const auto rb = insert_nvm(b, scored);

  // Pure fan weighting must not pick lower average fan than the default.
  auto avg_fan = [](const TaskTree& t, const std::vector<TaskId>& pts) {
    double sum = 0;
    for (TaskId p : pts) {
      sum += t.node(p).dict.fanin + t.node(p).dict.fanout;
    }
    return pts.empty() ? 0.0 : sum / static_cast<double>(pts.size());
  };
  EXPECT_GE(avg_fan(b, rb.points) + 1e-9, avg_fan(a, ra.points));
  // Scored insertion may commit earlier, so exposure stays bounded by the
  // same limit.
  EXPECT_LE(rb.max_exposed_energy,
            ra.max_exposed_energy + base.budget + 1e-12);
}

TEST(OptimalDpInsertion, BeatsGreedyOnItsOwnCostModel) {
  const Netlist& nl = circuit("s1238");
  DiacSynthesizer synth(nl, lib());
  TaskTree greedy = synth.transformed_tree();
  TaskTree optimal = synth.transformed_tree();
  const double scale = 40.0e-3 / greedy.total_energy();

  ReplacementOptions opt;
  opt.scale = scale;
  opt.budget = 6.25e-3;
  const auto rg = insert_nvm(greedy, opt);

  ReplacementOptions dp = opt;
  dp.strategy = InsertionStrategy::kOptimalDp;
  const auto rd = insert_nvm(optimal, dp);
  ASSERT_FALSE(rd.points.empty());
  // Final task commits under both.
  EXPECT_TRUE(optimal.node(optimal.schedule().back()).has_nvm);

  // Evaluate both plans under the DP's own cost model: the DP plan must
  // be at least as cheap.
  auto plan_cost = [&](const TaskTree& t) {
    double cost = 0, seg_e = 0;
    for (TaskId id : t.schedule()) {
      const TaskNode& n = t.node(id);
      seg_e += scale * n.dict.energy();
      if (n.has_nvm) {
        cost += dp.controller_event_energy + n.nvm_bits * dp.energy_per_bit;
        cost += dp.failure_rate * (seg_e / dp.active_power) * (seg_e / 2.0);
        seg_e = 0;
      }
    }
    // Trailing uncommitted tail (greedy always commits the last task, so
    // this is zero, but keep the model total).
    cost += dp.failure_rate * (seg_e / dp.active_power) * (seg_e / 2.0);
    return cost;
  };
  EXPECT_LE(plan_cost(optimal), plan_cost(greedy) * 1.0000001);
}

TEST(OptimalDpInsertion, FailureRateControlsDensity) {
  const Netlist& nl = circuit("s953");
  DiacSynthesizer synth(nl, lib());
  TaskTree rare = synth.transformed_tree();
  TaskTree often = synth.transformed_tree();
  const double scale = 40.0e-3 / rare.total_energy();
  ReplacementOptions a;
  a.scale = scale;
  a.strategy = InsertionStrategy::kOptimalDp;
  a.failure_rate = 0.005;
  const auto ra = insert_nvm(rare, a);
  ReplacementOptions b = a;
  b.failure_rate = 1.0;
  const auto rb = insert_nvm(often, b);
  // Frequent failures justify denser commits.
  EXPECT_GT(rb.points.size(), ra.points.size());
  EXPECT_LE(rb.max_exposed_energy, ra.max_exposed_energy + 1e-12);
}

TEST(ScoredInsertion, WindowOneDegeneratesToAccumulate) {
  const Netlist& nl = circuit("s953");
  DiacSynthesizer synth(nl, lib());
  TaskTree a = synth.transformed_tree();
  TaskTree b = synth.transformed_tree();
  const double scale = 40.0e-3 / a.total_energy();
  ReplacementOptions base;
  base.scale = scale;
  base.budget = 5.0e-3;
  const auto ra = insert_nvm(a, base);
  ReplacementOptions scored = base;
  scored.strategy = InsertionStrategy::kScored;
  scored.window = 1;
  const auto rb = insert_nvm(b, scored);
  EXPECT_EQ(ra.points, rb.points);
}

}  // namespace
}  // namespace diac
