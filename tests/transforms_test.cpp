#include <gtest/gtest.h>

#include "netlist/bench_format.hpp"
#include "netlist/generators.hpp"
#include "netlist/logic_sim.hpp"
#include "netlist/transforms.hpp"
#include "util/rng.hpp"

namespace diac {
namespace {

// Functional equivalence on the logic simulator: outputs must match for
// random input sequences (sequential-aware).
void expect_equivalent(const Netlist& a, const Netlist& b,
                       std::uint64_t seed = 0xE0) {
  ASSERT_EQ(a.inputs().size(), b.inputs().size());
  ASSERT_EQ(a.outputs().size(), b.outputs().size());
  LogicSimulator sa(a), sb(b);
  SplitMix64 rng(seed);
  for (int cycle = 0; cycle < 8; ++cycle) {
    for (std::size_t i = 0; i < a.inputs().size(); ++i) {
      const Word w = rng.next();
      sa.set_input(a.inputs()[i], w);
      sb.set_input(b.gate(b.inputs()[i]).name, w);
    }
    sa.step();
    sb.step();
    sa.settle();
    sb.settle();
    for (std::size_t i = 0; i < a.outputs().size(); ++i) {
      ASSERT_EQ(sb.value(b.outputs()[i]), sa.value(a.outputs()[i]))
          << "cycle " << cycle << " output " << i;
    }
  }
}

TEST(Transforms, SweepRemovesDeadLogic) {
  Netlist nl("dead");
  const GateId a = nl.add(GateKind::kInput, "a");
  const GateId live = nl.add(GateKind::kNot, "live", {a});
  nl.add(GateKind::kOutput, "y$out", {live});
  // Dead chain: reads a, feeds nothing.
  const GateId d1 = nl.add(GateKind::kNot, "d1", {a});
  nl.add(GateKind::kAnd, "d2", {d1, a});
  TransformStats stats;
  const Netlist swept = sweep_dead_gates(nl, &stats);
  EXPECT_EQ(stats.removed_dead, 2u);
  EXPECT_EQ(swept.logic_gate_count(), 1u);
  expect_equivalent(nl, swept);
}

TEST(Transforms, SweepKeepsDffCones) {
  const Netlist nl = parse_bench_string(
      "INPUT(a)\nOUTPUT(y)\nw = NOT(a)\nq = DFF(w)\ny = NOT(q)\n");
  TransformStats stats;
  const Netlist swept = sweep_dead_gates(nl, &stats);
  EXPECT_EQ(stats.removed_dead, 0u);
  EXPECT_EQ(swept.logic_gate_count(), nl.logic_gate_count());
}

TEST(Transforms, ConstantFoldingAnd) {
  const Netlist nl = parse_bench_string(
      "INPUT(a)\nOUTPUT(y)\nzero = CONST0()\ny = AND(a, zero)\n");
  TransformStats stats;
  const Netlist folded = propagate_constants(nl, &stats);
  EXPECT_EQ(stats.folded_constants, 1u);
  // y is now constant 0.
  LogicSimulator sim(folded);
  sim.set_input("a", ~Word{0});
  sim.settle();
  EXPECT_EQ(sim.value(folded.outputs()[0]), Word{0});
}

TEST(Transforms, ConstantFoldingDominatedOr) {
  const Netlist nl = parse_bench_string(
      "INPUT(a)\nOUTPUT(y)\none = VDD()\ny = OR(a, one)\n");
  const Netlist folded = propagate_constants(nl);
  LogicSimulator sim(folded);
  sim.set_input("a", 0);
  sim.settle();
  EXPECT_EQ(sim.value(folded.outputs()[0]), ~Word{0});
}

TEST(Transforms, ConstantFoldingXorChain) {
  // XOR(1, 1) = 0; NOT(0) = 1 -> whole cone folds through two levels.
  const Netlist nl = parse_bench_string(
      "INPUT(a)\nOUTPUT(y)\none = VDD()\nw = XOR(one, one)\nx = NOT(w)\n"
      "y = AND(x, a)\n");
  TransformStats stats;
  const Netlist folded = propagate_constants(nl, &stats);
  EXPECT_GE(stats.folded_constants, 2u);
  expect_equivalent(nl, folded);
}

TEST(Transforms, ConstantsNeverFoldDffs) {
  const Netlist nl = parse_bench_string(
      "OUTPUT(q)\none = VDD()\nq = DFF(one)\n");
  const Netlist folded = propagate_constants(nl);
  EXPECT_EQ(folded.dffs().size(), 1u);
}

TEST(Transforms, MuxWithConstantSelect) {
  const Netlist nl = parse_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nzero = GND()\ny = MUX(zero, a, b)\n");
  const Netlist folded = propagate_constants(nl);
  // sel = 0 selects operand a; the mux is not fully constant, so the
  // transform leaves it (only full constants fold), but behaviour holds.
  expect_equivalent(nl, folded);
}

TEST(Transforms, ElideBuffersRewires) {
  const Netlist nl = parse_bench_string(
      "INPUT(a)\nOUTPUT(y)\nb1 = BUF(a)\nb2 = BUF(b1)\nw = NOT(b2)\n"
      "y = BUF(w)\n");
  TransformStats stats;
  const Netlist out = elide_buffers(nl, &stats);
  EXPECT_EQ(stats.elided_buffers, 3u);
  EXPECT_EQ(out.logic_gate_count(), 1u);  // only the NOT remains
  expect_equivalent(nl, out);
}

TEST(Transforms, BufferToOutputPortIsLegal) {
  // OUTPUT port ends up reading the input directly.
  const Netlist nl = parse_bench_string(
      "INPUT(a)\nOUTPUT(y)\ny = BUF(a)\n");
  const Netlist out = elide_buffers(nl);
  EXPECT_NO_THROW(out.validate());
  expect_equivalent(nl, out);
}

TEST(Transforms, CleanupComposesAll) {
  const Netlist nl = parse_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
one = VDD()
dead = NAND(a, b)
buf1 = BUF(a)
masked = AND(buf1, one)
y = XOR(masked, b)
)");
  TransformStats stats;
  const Netlist out = cleanup(nl, &stats);
  EXPECT_GE(stats.removed_dead, 1u);     // dead NAND
  EXPECT_GE(stats.elided_buffers, 1u);   // buf1
  expect_equivalent(nl, out);
  EXPECT_LT(out.logic_gate_count(), nl.logic_gate_count());
}

TEST(Transforms, CleanupPreservesSuiteCircuits) {
  // Property: cleanup on generated benchmark-style circuits is
  // functionality-preserving and never grows the gate count.
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const Netlist nl = gen::random_logic("r", 8, 4, 150, seed);
    const Netlist out = cleanup(nl);
    EXPECT_LE(out.logic_gate_count(), nl.logic_gate_count());
    expect_equivalent(nl, out, seed);
  }
}

TEST(Transforms, CleanupIdempotent) {
  const Netlist nl = gen::random_logic("r", 8, 4, 120, 9);
  TransformStats first, second;
  const Netlist once = cleanup(nl, &first);
  const Netlist twice = cleanup(once, &second);
  EXPECT_EQ(second.removed_dead, 0u);
  EXPECT_EQ(second.elided_buffers, 0u);
  EXPECT_EQ(second.folded_constants, 0u);
  EXPECT_EQ(twice.logic_gate_count(), once.logic_gate_count());
}

}  // namespace
}  // namespace diac
