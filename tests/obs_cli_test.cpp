// End-to-end observability through the real `diac` binary (path injected
// by CMake as DIAC_CLI_PATH): `--trace-out` must yield one merged
// Chrome-format trace with spans from every shard worker, `--metrics-out`
// counters must be bit-identical across `--threads` counts, and the
// side-channel contract — stdout and `--csv` stay byte-identical with the
// obs flags on or off — must hold.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "obs/json.hpp"

#ifndef DIAC_CLI_PATH
#error "DIAC_CLI_PATH must point at the diac CLI binary"
#endif

namespace diac {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

struct CliRun {
  int exit_code = -1;
  std::string out;
};

// Runs `diac <args>`, capturing stdout exactly (stderr carries the obs
// "wrote merged trace" notes and is deliberately not part of the
// byte-identity contract).
CliRun run_cli(const std::string& args, const std::string& tag) {
  const fs::path out = fs::path(::testing::TempDir()) / (tag + ".out");
  const std::string cmd = std::string(DIAC_CLI_PATH) + " " + args + " > " +
                          out.string() + " 2> " + out.string() + ".err";
  const int status = std::system(cmd.c_str());
  CliRun run;
  run.exit_code = status;
  run.out = slurp(out);
  return run;
}

fs::path temp_file(const std::string& name) {
  const fs::path path = fs::path(::testing::TempDir()) / name;
  fs::remove(path);
  return path;
}

// Serializes one member subtree compactly so two exports can be compared
// bit-for-bit.
std::string subtree(const obs::JsonValue& doc, const std::string& key) {
  const obs::JsonValue* v = doc.find(key);
  if (v == nullptr) return "<missing>";
  std::ostringstream out;
  obs::write_json(out, *v);
  return out.str();
}

TEST(ObsCli, ShardedTraceMergesSpansFromEveryWorker) {
  const fs::path trace = temp_file("obscli_trace.json");
  const fs::path metrics = temp_file("obscli_metrics.json");
  const CliRun run =
      run_cli("mc s344 --runs 6 --instances 4 --shards 3 --trace-out " +
                  trace.string() + " --metrics-out " + metrics.string(),
              "obscli_sharded");
  ASSERT_EQ(run.exit_code, 0) << run.out;

  const obs::JsonValue doc = obs::parse_json(slurp(trace));
  EXPECT_EQ(doc.find("diac_trace_version")->as_u64(), 1u);
  ASSERT_NE(doc.find("build"), nullptr);
  const obs::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);

  std::set<std::uint64_t> span_pids;
  for (const obs::JsonValue& ev : events->items) {
    const obs::JsonValue* ph = ev.find("ph");
    const obs::JsonValue* ts = ev.find("ts");
    if (ph != nullptr && ph->text == "X") {
      span_pids.insert(ev.find("pid")->as_u64());
      ASSERT_NE(ts, nullptr);
      EXPECT_GE(ts->number, 0.0);  // merged timeline is re-based to t=0
    }
  }
  const obs::JsonValue m = obs::parse_json(slurp(metrics));
  EXPECT_EQ(m.find("shards_merged")->as_u64(), 3u);
#if defined(DIAC_OBS_DISABLED)
  // Instrumentation compiled out (-DDIAC_OBS=OFF): both documents are
  // still valid, just empty of spans and counters.
  EXPECT_TRUE(span_pids.empty());
#else
  // Workers are pids 0..2; the coordinator's own spans land on pid 3.
  EXPECT_EQ(span_pids, (std::set<std::uint64_t>{0, 1, 2, 3}));
  EXPECT_GE(m.find("counters")->find("sim.runs")->as_u64(), 6u);
  EXPECT_EQ(m.find("counters")->find("shard.workers")->as_u64(), 3u);
#endif
}

TEST(ObsCli, CountersAreBitIdenticalAcrossThreadCounts) {
  const fs::path m1 = temp_file("obscli_m_t1.json");
  const fs::path m8 = temp_file("obscli_m_t8.json");
  const std::string base = "mc s344 --runs 8 --instances 4";
  ASSERT_EQ(run_cli(base + " --threads 1 --metrics-out " + m1.string(),
                    "obscli_t1")
                .exit_code,
            0);
  ASSERT_EQ(run_cli(base + " --threads 8 --metrics-out " + m8.string(),
                    "obscli_t8")
                .exit_code,
            0);
  const obs::JsonValue d1 = obs::parse_json(slurp(m1));
  const obs::JsonValue d8 = obs::parse_json(slurp(m8));
  // Integer counter updates are associative, so every counter — sim
  // events, kernel steps, runner jobs — is invariant to the thread
  // count.  (Gauges like runner.threads legitimately differ.)
  EXPECT_EQ(subtree(d1, "counters"), subtree(d8, "counters"));
  EXPECT_NE(subtree(d1, "counters"), "<missing>");
}

TEST(ObsCli, StdoutIsByteIdenticalWithAndWithoutObsFlags) {
  const std::string base = "mc s344 --runs 6 --instances 4 --threads 2";
  const CliRun plain = run_cli(base, "obscli_plain");
  ASSERT_EQ(plain.exit_code, 0);
  const fs::path trace = temp_file("obscli_id_trace.json");
  const fs::path metrics = temp_file("obscli_id_metrics.json");
  const CliRun instrumented =
      run_cli(base + " --trace-out " + trace.string() + " --metrics-out " +
                  metrics.string(),
              "obscli_instrumented");
  ASSERT_EQ(instrumented.exit_code, 0);
  EXPECT_FALSE(plain.out.empty());
  EXPECT_EQ(plain.out, instrumented.out)
      << "obs flags must not perturb the report";
}

TEST(ObsCli, CsvIsByteIdenticalWithAndWithoutObsFlags) {
  const fs::path csv_plain = temp_file("obscli_plain.csv");
  const fs::path csv_obs = temp_file("obscli_obs.csv");
  const std::string base =
      "search s344 --random 6 --instances 4 --max-time 8000 --threads 2";
  ASSERT_EQ(
      run_cli(base + " --csv " + csv_plain.string(), "obscli_csvp").exit_code,
      0);
  const fs::path trace = temp_file("obscli_csv_trace.json");
  ASSERT_EQ(run_cli(base + " --csv " + csv_obs.string() + " --trace-out " +
                        trace.string(),
                    "obscli_csvo")
                .exit_code,
            0);
  const std::string a = slurp(csv_plain);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, slurp(csv_obs));
}

TEST(ObsCli, VersionPrintsBuildInfo) {
  const CliRun version = run_cli("version", "obscli_version");
  ASSERT_EQ(version.exit_code, 0);
  EXPECT_NE(version.out.find("diac version "), std::string::npos);
  EXPECT_NE(version.out.find("compiler:"), std::string::npos);
  EXPECT_NE(version.out.find("obs:"), std::string::npos);
  const CliRun flag = run_cli("--version", "obscli_version_flag");
  ASSERT_EQ(flag.exit_code, 0);
  EXPECT_EQ(flag.out, version.out);
}

TEST(ObsCli, StatsRendersMetricsFile) {
  const fs::path metrics = temp_file("obscli_stats.json");
  ASSERT_EQ(run_cli("mc s344 --runs 4 --instances 4 --metrics-out " +
                        metrics.string(),
                    "obscli_stats_mc")
                .exit_code,
            0);
  const CliRun stats =
      run_cli("stats " + metrics.string(), "obscli_stats_render");
  ASSERT_EQ(stats.exit_code, 0);
  EXPECT_NE(stats.out.find("command: mc"), std::string::npos);
#if !defined(DIAC_OBS_DISABLED)
  EXPECT_NE(stats.out.find("counters:"), std::string::npos);
  EXPECT_NE(stats.out.find("sim.runs"), std::string::npos);
#endif
}

TEST(ObsCli, ShardWorkerStderrLinesArePrefixed) {
  // Worker failure diagnostics must arrive line-buffered and tagged with
  // the shard index.  With one trace over two workers only the owning
  // worker errors, so exactly that worker's line must carry the tag.
  const fs::path err_capture =
      fs::path(::testing::TempDir()) / "obscli_prefix.out.err";
  const CliRun run = run_cli(
      "replay s344 --trace /nonexistent_diac_traces --shards 2",
      "obscli_prefix");
  EXPECT_NE(run.exit_code, 0);
  const std::string err_text = slurp(err_capture);
  EXPECT_NE(err_text.find("[shard 1/2] error:"), std::string::npos)
      << err_text;
}

}  // namespace
}  // namespace diac
