// Trace libraries and trace-library sweeps: directory enumeration, the
// load-once/share-read-only contract, `trace:<path>` scenarios, and the
// determinism of replay sweeps across thread counts.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "exp/experiment.hpp"
#include "exp/trace_library.hpp"
#include "metrics/trace_sweep.hpp"
#include "netlist/suite.hpp"
#include "power/trace_io.hpp"

namespace diac {
namespace {

namespace fs = std::filesystem;

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::nominal_45nm();
  return l;
}

// Creates a fresh directory of `n` seeded RFID-style trace CSVs and
// returns its path.
std::string make_library_dir(const std::string& name, int n,
                             double horizon = 2500.0) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  RfidBurstSource::Options options;
  options.horizon = horizon;
  for (int i = 0; i < n; ++i) {
    char file[32];
    std::snprintf(file, sizeof(file), "node_%02d.csv", i);
    const RfidBurstSource src(0xACE0 + i, options);
    save_trace_csv((dir / file).string(), src, horizon, 0.5);
  }
  return dir.string();
}

TEST(TraceLibrary, ListsCsvFilesSorted) {
  const fs::path dir = fs::path(::testing::TempDir()) / "diac_lib_list";
  fs::remove_all(dir);
  fs::create_directories(dir);
  for (const char* name : {"b.csv", "a.csv", "notes.txt", "c.csv"}) {
    std::ofstream(dir / name) << "0,0.001\n";
  }
  const std::vector<std::string> files = list_trace_files(dir.string());
  ASSERT_EQ(files.size(), 3u);
  EXPECT_EQ(fs::path(files[0]).filename(), "a.csv");
  EXPECT_EQ(fs::path(files[1]).filename(), "b.csv");
  EXPECT_EQ(fs::path(files[2]).filename(), "c.csv");
  fs::remove_all(dir);
}

TEST(TraceLibrary, RejectsMissingOrEmptyDirectories) {
  EXPECT_THROW(list_trace_files("/nonexistent/traces"), std::runtime_error);
  const fs::path dir = fs::path(::testing::TempDir()) / "diac_lib_empty";
  fs::remove_all(dir);
  fs::create_directories(dir);
  EXPECT_THROW(load_trace_library(dir.string()), std::runtime_error);
  fs::remove_all(dir);
}

TEST(TraceLibrary, ParseErrorsNameTheFile) {
  const fs::path dir = fs::path(::testing::TempDir()) / "diac_lib_bad";
  fs::remove_all(dir);
  fs::create_directories(dir);
  std::ofstream(dir / "broken.csv") << "0,0.001\nxx,yy\n";
  try {
    load_trace_library(dir.string());
    FAIL() << "expected load failure";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("broken.csv"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
  fs::remove_all(dir);
}

TEST(TraceLibrary, LoadsEachTraceOnceAndShares) {
  const std::string dir = make_library_dir("diac_lib_share", 3, 500.0);
  const TraceLibrary library = load_trace_library(dir);
  ASSERT_EQ(library.entries.size(), 3u);
  for (const TraceLibrary::Entry& entry : library.entries) {
    EXPECT_EQ(entry.scenario.kind, SourceKind::kTrace);
    ASSERT_NE(entry.scenario.trace, nullptr);
    EXPECT_EQ(entry.scenario.trace_path, entry.path);
    // Copying the spec (what every SimulationJob does) shares the loaded
    // trace instead of re-reading the file.
    const ScenarioSpec copy = entry.scenario;
    EXPECT_EQ(copy.trace.get(), entry.scenario.trace.get());
  }
  EXPECT_EQ(library.entries[0].name, "node_00");
  fs::remove_all(dir);
}

TEST(TraceLibrary, TraceScenarioIsPreloadedNotReadPerJob) {
  const std::string dir = make_library_dir("diac_lib_preload", 1, 300.0);
  const std::string path = list_trace_files(dir)[0];
  const ScenarioSpec spec = scenario_from_name("trace:" + path);
  EXPECT_EQ(spec.kind, SourceKind::kTrace);
  ASSERT_NE(spec.trace, nullptr);
  const double reference = spec.trace->power_at(10.0);
  // Deleting the file proves make_source serves jobs from the shared
  // in-memory trace — materializing never goes back to disk.
  fs::remove_all(dir);
  const auto source = make_source(spec);
  EXPECT_DOUBLE_EQ(source->power_at(10.0), reference);
  EXPECT_DOUBLE_EQ(source->next_change(0.25), spec.trace->next_change(0.25));
}

TEST(TraceLibrary, ScenarioNameErrorsMentionTrace) {
  EXPECT_THROW(scenario_from_name("trace:"), std::invalid_argument);
  EXPECT_THROW(scenario_from_name("wind"), std::invalid_argument);
  EXPECT_FALSE(is_seeded(SourceKind::kTrace));
  EXPECT_STREQ(to_string(SourceKind::kTrace), "trace");
}

void expect_identical(const RunStats& a, const RunStats& b) {
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.energy_consumed, b.energy_consumed);
  EXPECT_DOUBLE_EQ(a.energy_harvested, b.energy_harvested);
  EXPECT_EQ(a.instances_completed, b.instances_completed);
  EXPECT_EQ(a.backups, b.backups);
  EXPECT_EQ(a.restores, b.restores);
  EXPECT_EQ(a.safe_zone_saves, b.safe_zone_saves);
  EXPECT_EQ(a.deep_outages, b.deep_outages);
  EXPECT_EQ(a.nvm_writes, b.nvm_writes);
  EXPECT_EQ(a.nvm_bits_written, b.nvm_bits_written);
  EXPECT_EQ(a.tasks_executed, b.tasks_executed);
  EXPECT_EQ(a.tasks_reexecuted, b.tasks_reexecuted);
}

TEST(TraceSweep, BitIdenticalAcrossThreadCounts) {
  const std::string dir = make_library_dir("diac_lib_sweep", 12);
  const TraceLibrary library = load_trace_library(dir);
  const Netlist nl = build_benchmark("s344");
  EvaluationOptions opt;
  opt.simulator.target_instances = 2;
  opt.simulator.max_time = 2500;
  ExperimentRunner serial(1);
  ExperimentRunner parallel(8);
  const std::vector<BenchmarkResult> a =
      evaluate_trace_library(nl, lib(), opt, library, serial);
  const std::vector<BenchmarkResult> b =
      evaluate_trace_library(nl, lib(), opt, library, parallel);
  ASSERT_EQ(a.size(), library.entries.size());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, library.entries[i].name);
    EXPECT_EQ(a[i].name, b[i].name);
    for (Scheme s : kAllSchemes) {
      expect_identical(a[i].of(s), b[i].of(s));
    }
  }
  fs::remove_all(dir);
}

TEST(TraceSweep, ReplayStopsAtTheLastLoggedSample) {
  // A trace extrapolates its final power level forever; the sweep must
  // cap each replay at the measurement's end rather than simulating up
  // to max_time (50000 s by default) on fabricated supply.
  const fs::path dir = fs::path(::testing::TempDir()) / "diac_lib_clamp";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const ConstantSource powered(6e-3);  // still powered at the last sample
  save_trace_csv((dir / "short.csv").string(), powered, 300.0, 0.5);
  const TraceLibrary library = load_trace_library(dir.string());
  const Netlist nl = build_benchmark("s27");
  EvaluationOptions opt;
  opt.simulator.target_instances = 1000000;  // can't finish in 300 s
  ExperimentRunner serial(1);
  const std::vector<BenchmarkResult> results =
      evaluate_trace_library(nl, lib(), opt, library, serial);
  for (Scheme s : kAllSchemes) {
    EXPECT_LE(results[0].of(s).makespan, 299.5 + 1e-9);
    EXPECT_GT(results[0].of(s).makespan, 250.0);
  }
  fs::remove_all(dir);
}

TEST(TraceSweep, ClampToMeasurementHandlesEdges) {
  // A single sample at t=0 has no measured duration — replaying it would
  // be 100% extrapolation, so the clamp rejects it outright...
  const ScenarioSpec degenerate = trace_scenario(
      "degenerate.csv", std::make_shared<const PiecewiseTrace>(
                            std::vector<PiecewiseTrace::Segment>{{0, 1e-3}}));
  EXPECT_THROW(clamp_to_measurement(SimulatorOptions{}, degenerate),
               std::invalid_argument);
  // ...while non-trace scenarios pass through untouched.
  SimulatorOptions so;
  so.max_time = 123.0;
  EXPECT_DOUBLE_EQ(clamp_to_measurement(so, ScenarioSpec{}).max_time, 123.0);
}

TEST(TraceSweep, RejectsEmptyAndUnloadedLibraries) {
  const Netlist nl = build_benchmark("s27");
  EvaluationOptions opt;
  ExperimentRunner serial(1);
  TraceLibrary empty;
  EXPECT_THROW(evaluate_trace_library(nl, lib(), opt, empty, serial),
               std::invalid_argument);
  TraceLibrary unloaded;
  unloaded.entries.push_back({"ghost", "ghost.csv", ScenarioSpec{}});
  EXPECT_THROW(evaluate_trace_library(nl, lib(), opt, unloaded, serial),
               std::invalid_argument);
}

}  // namespace
}  // namespace diac
