// Corner-case semantics of the intermittent runtime: packet-level
// transmit recovery, mid-task aborts, backup/rollback bookkeeping, and
// cross-scheme accounting identities.
#include <gtest/gtest.h>

#include <list>

#include "diac/synthesizer.hpp"
#include "netlist/suite.hpp"
#include "runtime/simulator.hpp"

namespace diac {
namespace {

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::nominal_45nm();
  return l;
}

SynthesisResult synth(const std::string& name, Scheme scheme) {
  static std::list<Netlist> cache;
  cache.push_back(build_benchmark(name));
  return DiacSynthesizer(cache.back(), lib()).synthesize_scheme(scheme);
}

TEST(RuntimeSemantics, AtomicityEntryMarginPreventsAborts) {
  // The paper requires that atomic operations "only begin when sufficient
  // power is available".  The 1.2x entry margin above Th_Safe guarantees
  // a started operation finishes before the storage can cross the exit
  // threshold — so even a brutally choppy supply produces ZERO mid-task
  // aborts (work is deferred, never destroyed).
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const auto r = synth("s820", Scheme::kDiacOptimized);
    RfidBurstSource::Options ho;
    ho.mean_on = 0.8;
    ho.mean_off = 1.4;
    const RfidBurstSource source(seed, ho);
    SimulatorOptions opt;
    opt.target_instances = 2;
    opt.max_time = 8000;
    SystemSimulator sim(r.design, source, FsmConfig{}, opt);
    const RunStats stats = sim.run();
    EXPECT_EQ(stats.task_aborts, 0) << seed;
  }
}

TEST(RuntimeSemantics, TransmitProgressSurvivesOutage) {
  // Transmit is packetized with progress in control state: even with deep
  // outages mid-transmission, instances complete without re-sensing (the
  // number of sense operations equals the instance count, which we verify
  // through the energy identity below).
  const auto r = synth("s344", Scheme::kNvBased);
  const SquareWaveSource source(9.0e-3, 40.0, 0.3);
  FsmConfig cfg;
  cfg.sleep_power = 300.0e-6;
  cfg.sleep_power_backed_up = 300.0e-6;
  SimulatorOptions opt;
  opt.target_instances = 3;
  opt.max_time = 4000;
  SystemSimulator sim(r.design, source, cfg, opt);
  const RunStats stats = sim.run();
  ASSERT_TRUE(stats.workload_completed);
  EXPECT_GT(stats.deep_outages, 0);
  // Checkpoint scheme: every executed task is executed exactly once.
  EXPECT_EQ(stats.tasks_executed,
            3 * static_cast<int>(r.design.tree.size()));
}

TEST(RuntimeSemantics, DiacTaskAccountingIdentity) {
  // tasks_executed = instances * |tree| + re-executions (per-step
  // executions counted once each; rollbacks add re-runs).
  const auto r = synth("s1238", Scheme::kDiac);
  const SquareWaveSource source(9.0e-3, 40.0, 0.3);
  FsmConfig cfg;
  cfg.sleep_power = 300.0e-6;
  cfg.sleep_power_backed_up = 300.0e-6;
  SimulatorOptions opt;
  opt.target_instances = 2;
  opt.max_time = 4000;
  SystemSimulator sim(r.design, source, cfg, opt);
  const RunStats stats = sim.run();
  ASSERT_TRUE(stats.workload_completed);
  EXPECT_EQ(stats.tasks_executed,
            2 * static_cast<int>(r.design.tree.size()) +
                stats.tasks_reexecuted);
}

TEST(RuntimeSemantics, BackupsNeverRepeatWithoutProgress) {
  // While parked below Th_Bk with a fresh backup, no further backups
  // fire: writes are bounded by progress, not by time spent starving.
  const auto r = synth("s344", Scheme::kDiac);
  // One early burst, then nothing.
  PiecewiseTrace trace({{0.0, 8.0e-3}, {60.0, 0.0}});
  SimulatorOptions opt;
  opt.target_instances = 100;  // unreachable
  opt.max_time = 2000;
  SystemSimulator sim(r.design, trace, FsmConfig{}, opt);
  const RunStats stats = sim.run();
  EXPECT_FALSE(stats.workload_completed);
  EXPECT_LE(stats.backups, 2);  // at most one per starvation descent
}

TEST(RuntimeSemantics, OptimizedNeverWritesMoreThanPlain) {
  // On the identical trace, the safe-zone runtime's whole point is a
  // write count no larger than plain DIAC's.
  for (std::uint64_t seed : {3u, 17u, 90u}) {
    const auto plain = synth("s953", Scheme::kDiac);
    const auto optim = synth("s953", Scheme::kDiacOptimized);
    const RfidBurstSource source(seed);
    SimulatorOptions opt;
    opt.target_instances = 4;
    opt.max_time = 20000;
    SystemSimulator sp(plain.design, source, FsmConfig{}, opt);
    SystemSimulator so(optim.design, source, FsmConfig{}, opt);
    const RunStats a = sp.run();
    const RunStats b = so.run();
    ASSERT_TRUE(a.workload_completed && b.workload_completed) << seed;
    EXPECT_LE(b.nvm_writes, a.nvm_writes) << seed;
  }
}

TEST(RuntimeSemantics, EnergyBreakdownCoversMakespan) {
  const auto r = synth("s344", Scheme::kDiacOptimized);
  const RfidBurstSource source(11);
  SimulatorOptions opt;
  opt.target_instances = 4;
  opt.max_time = 20000;
  SystemSimulator sim(r.design, source, FsmConfig{}, opt);
  const RunStats s = sim.run();
  ASSERT_TRUE(s.workload_completed);
  const double accounted =
      s.time_active + s.time_sleep + s.time_off + s.time_backup;
  EXPECT_NEAR(accounted, s.makespan, 0.01 * s.makespan + 1.0);
}

TEST(RuntimeSemantics, ColdStartFromEmptyStorage) {
  const auto r = synth("s344", Scheme::kDiacOptimized);
  const ConstantSource source(5.0e-3);
  SimulatorOptions opt;
  opt.initial_energy_fraction = 0.0;  // completely dark start
  opt.target_instances = 2;
  opt.max_time = 3000;
  SystemSimulator sim(r.design, source, FsmConfig{}, opt);
  const RunStats s = sim.run();
  EXPECT_TRUE(s.workload_completed);
}

TEST(RuntimeSemantics, RestoreEnergyIsCharged) {
  const auto r = synth("s1238", Scheme::kDiac);
  const SquareWaveSource source(9.0e-3, 40.0, 0.3);
  FsmConfig cfg;
  cfg.sleep_power = 300.0e-6;
  cfg.sleep_power_backed_up = 300.0e-6;
  SimulatorOptions opt;
  opt.target_instances = 2;
  opt.max_time = 4000;
  SystemSimulator sim(r.design, source, cfg, opt);
  const RunStats s = sim.run();
  ASSERT_GT(s.restores, 0);
  // Consumption must cover at least the useful work plus the restores.
  const double restores_energy = s.restores * r.design.restore_energy();
  EXPECT_GT(s.energy_consumed, restores_energy);
}

}  // namespace
}  // namespace diac
