#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>

#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace diac {
namespace {

// --- units -----------------------------------------------------------------

TEST(Units, ConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(units::as_mJ(25.0 * units::mJ), 25.0);
  EXPECT_DOUBLE_EQ(units::as_uJ(3.0 * units::uJ), 3.0);
  EXPECT_DOUBLE_EQ(units::as_ns(7.5 * units::ns), 7.5);
  EXPECT_DOUBLE_EQ(units::as_us(2.0 * units::us), 2.0);
  EXPECT_DOUBLE_EQ(units::as_mW(4.0 * units::mW), 4.0);
}

TEST(Units, PaperCapacitorStores25mJ) {
  // SIV.A: 2 mF at 5 V -> E_MAX = 25 mJ.
  const double e = units::capacitor_energy(2.0 * units::mF, 5.0 * units::V);
  EXPECT_DOUBLE_EQ(units::as_mJ(e), 25.0);
}

TEST(Units, MagnitudeOrdering) {
  EXPECT_LT(units::fJ, units::pJ);
  EXPECT_LT(units::pJ, units::nJ);
  EXPECT_LT(units::nJ, units::uJ);
  EXPECT_LT(units::uJ, units::mJ);
  EXPECT_LT(units::ps, units::ns);
  EXPECT_LT(units::ns, units::us);
}

// --- rng ---------------------------------------------------------------------

TEST(Rng, Deterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformBoundsRespected) {
  SplitMix64 rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(3.0, 5.0);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  SplitMix64 rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysInRange) {
  SplitMix64 rng(13);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowCoversAllValues) {
  SplitMix64 rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BetweenInclusive) {
  SplitMix64 rng(19);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.between(2, 4);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 4);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Rng, JitterWithinSpread) {
  SplitMix64 rng(23);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.jitter(10.0, 0.10);
    EXPECT_GE(v, 9.0);
    EXPECT_LE(v, 11.0);
  }
}

TEST(Rng, ChanceProbability) {
  SplitMix64 rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.25);
  EXPECT_NEAR(double(hits) / n, 0.25, 0.01);
}

TEST(Rng, ForkIsIndependent) {
  SplitMix64 a(31);
  SplitMix64 b = a.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_EQ(same, 0);
}

// --- table ---------------------------------------------------------------

TEST(Table, FormatsAlignedColumns) {
  Table t({"a", "bb"});
  t.add_row({"x", "y"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| a "), std::string::npos);
  EXPECT_NE(s.find("| bb "), std::string::npos);
  EXPECT_NE(s.find("| x "), std::string::npos);
}

TEST(Table, RejectsWrongCellCount) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(1.0, 0), "1");
}

TEST(Table, PctFormatting) {
  EXPECT_EQ(Table::pct(0.615, 1), "61.5%");
  EXPECT_EQ(Table::pct(0.0, 0), "0%");
}

TEST(Table, RuleSeparatesGroups) {
  Table t({"c"});
  t.add_row({"1"});
  t.add_rule();
  t.add_row({"2"});
  const std::string s = t.str();
  // header rules + the separating rule: at least 4 horizontal rules total.
  std::size_t rules = 0, pos = 0;
  while ((pos = s.find("+-", pos)) != std::string::npos) {
    ++rules;
    pos += 2;
  }
  EXPECT_GE(rules, 4u);
}

// --- csv -------------------------------------------------------------------

TEST(Csv, EscapesSpecials) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WritesFile) {
  const std::string path = ::testing::TempDir() + "diac_csv_test.csv";
  {
    CsvWriter w(path, {"t", "e"});
    w.add_row(std::vector<double>{1.0, 2.5});
    w.add_row(std::vector<std::string>{"x,y", "z"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "t,e");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2.5");
  std::getline(in, line);
  EXPECT_EQ(line, "\"x,y\",z");
  std::remove(path.c_str());
}

TEST(Csv, RejectsWrongColumnCount) {
  const std::string path = ::testing::TempDir() + "diac_csv_test2.csv";
  CsvWriter w(path, {"a", "b"});
  EXPECT_THROW(w.add_row({"one"}), std::invalid_argument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace diac
