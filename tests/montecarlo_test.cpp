#include <gtest/gtest.h>

#include <cmath>

#include "metrics/montecarlo.hpp"

namespace diac {
namespace {

TEST(SampleStats, SummarizeBasics) {
  const SampleStats s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.n, 4);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(SampleStats, EmptyAndSingleton) {
  EXPECT_EQ(summarize({}).n, 0);
  const SampleStats s = summarize({7.0});
  EXPECT_EQ(s.n, 1);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

class MonteCarlo : public ::testing::Test {
 protected:
  static const MonteCarloResult& result() {
    static const MonteCarloResult mc = [] {
      const CellLibrary lib = CellLibrary::nominal_45nm();
      static const Netlist nl = build_benchmark("s820");
      EvaluationOptions opt;
      opt.simulator.target_instances = 3;
      opt.simulator.max_time = 10000;
      return evaluate_monte_carlo(nl, lib, opt, 6);
    }();
    return mc;
  }
};

TEST_F(MonteCarlo, RunsRequestedCount) {
  EXPECT_EQ(result().runs, 6);
  EXPECT_EQ(result().samples.size(), 6u);
  EXPECT_EQ(result().diac_vs_nv_based.n, 6);
}

TEST_F(MonteCarlo, SeedsProduceDistinctTraces) {
  // At least two runs must differ (different harvest seeds).
  const auto& s = result().samples;
  bool distinct = false;
  for (std::size_t i = 1; i < s.size() && !distinct; ++i) {
    distinct = s[i].pdp(Scheme::kNvBased) != s[0].pdp(Scheme::kNvBased);
  }
  EXPECT_TRUE(distinct);
}

TEST_F(MonteCarlo, OrderingHoldsInDistribution) {
  // The paper's scheme ordering must hold for the *means*, not just one
  // lucky trace.
  const auto& mc = result();
  const auto norm = [&](Scheme s) {
    return mc.normalized_pdp[static_cast<std::size_t>(s)].mean;
  };
  EXPECT_DOUBLE_EQ(norm(Scheme::kNvBased), 1.0);
  EXPECT_LT(norm(Scheme::kNvClustering), 1.0);
  EXPECT_LT(norm(Scheme::kDiac), norm(Scheme::kNvClustering));
  EXPECT_LE(norm(Scheme::kDiacOptimized), norm(Scheme::kDiac));
  EXPECT_GT(mc.diac_vs_nv_based.mean, 0.15);
  EXPECT_GT(mc.opt_vs_diac.mean, -0.02);
}

TEST_F(MonteCarlo, BoundsContainMean) {
  for (const auto& s : result().normalized_pdp) {
    EXPECT_LE(s.min, s.mean);
    EXPECT_GE(s.max, s.mean);
  }
}

TEST(MonteCarloValidation, RejectsNonPositiveRuns) {
  const CellLibrary lib = CellLibrary::nominal_45nm();
  const Netlist nl = build_benchmark("s27");
  EXPECT_THROW(evaluate_monte_carlo(nl, lib, EvaluationOptions{}, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace diac
