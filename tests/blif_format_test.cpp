#include <gtest/gtest.h>

#include "netlist/blif_format.hpp"
#include "netlist/generators.hpp"
#include "netlist/logic_sim.hpp"

namespace diac {
namespace {

constexpr const char* kSmall = R"(
# small sequential BLIF
.model small
.inputs a b
.outputs y
.names a b w1
11 1
.names w1 q y
10 1
01 1
.latch w1 q 0
.end
)";

TEST(Blif, ParsesSmallModel) {
  const Netlist nl = parse_blif_string(kSmall);
  EXPECT_EQ(nl.name(), "small");
  EXPECT_EQ(nl.inputs().size(), 2u);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.dffs().size(), 1u);
  EXPECT_NO_THROW(nl.validate());
}

TEST(Blif, CoverSemantics) {
  // y = a AND b through an on-set cover; functional check.
  const Netlist nl = parse_blif_string(
      ".model c\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n");
  LogicSimulator sim(nl);
  sim.set_input("a", 0b1100);
  sim.set_input("b", 0b1010);
  sim.settle();
  const GateId y = nl.outputs()[0];
  EXPECT_EQ(sim.value(y) & 0xF, Word{0b1000});
}

TEST(Blif, DontCareColumns) {
  // y = a (b is don't-care).
  const Netlist nl = parse_blif_string(
      ".model c\n.inputs a b\n.outputs y\n.names a b y\n1- 1\n.end\n");
  LogicSimulator sim(nl);
  sim.set_input("a", 0b10);
  sim.set_input("b", 0b01);
  sim.settle();
  EXPECT_EQ(sim.value(nl.outputs()[0]) & 0x3, Word{0b10});
}

TEST(Blif, OffSetCover) {
  // Cover rows with output 0: y = NOT(a AND b).
  const Netlist nl = parse_blif_string(
      ".model c\n.inputs a b\n.outputs y\n.names a b y\n11 0\n.end\n");
  LogicSimulator sim(nl);
  sim.set_input("a", 0b11);
  sim.set_input("b", 0b01);
  sim.settle();
  EXPECT_EQ(sim.value(nl.outputs()[0]) & 0x3, Word{0b10});
}

TEST(Blif, ConstantCovers) {
  const Netlist nl = parse_blif_string(
      ".model c\n.inputs a\n.outputs x y\n.names x\n1\n.names y\n.end\n");
  LogicSimulator sim(nl);
  sim.set_input("a", 0);
  sim.settle();
  EXPECT_EQ(sim.value(nl.find("x$out")), ~Word{0});
  EXPECT_EQ(sim.value(nl.find("y$out")), Word{0});
}

TEST(Blif, MultiRowOr) {
  // Two single-literal rows OR together: y = a | b.
  const Netlist nl = parse_blif_string(
      ".model c\n.inputs a b\n.outputs y\n.names a b y\n1- 1\n-1 1\n.end\n");
  LogicSimulator sim(nl);
  sim.set_input("a", 0b0110);
  sim.set_input("b", 0b0011);
  sim.settle();
  EXPECT_EQ(sim.value(nl.outputs()[0]) & 0xF, Word{0b0111});
}

TEST(Blif, LatchFeedback) {
  // Toggle bit: q' = NOT q.
  const Netlist nl = parse_blif_string(
      ".model t\n.outputs q\n.names q d\n0 1\n.latch d q 0\n.end\n");
  LogicSimulator sim(nl);
  sim.step();
  sim.settle();
  EXPECT_EQ(sim.value(nl.find("q")), ~Word{0});
}

TEST(Blif, LineContinuations) {
  const Netlist nl = parse_blif_string(
      ".model c\n.inputs a \\\nb\n.outputs y\n.names a b y\n11 1\n.end\n");
  EXPECT_EQ(nl.inputs().size(), 2u);
}

TEST(Blif, RejectsUnsupportedConstructs) {
  EXPECT_THROW(parse_blif_string(".model x\n.subckt foo a=b\n.end\n"),
               std::runtime_error);
  EXPECT_THROW(parse_blif_string(".model x\n.gate nand2 a=x\n.end\n"),
               std::runtime_error);
}

TEST(Blif, RejectsMalformedCovers) {
  EXPECT_THROW(
      parse_blif_string(".model x\n.inputs a\n.outputs y\n.names a y\n111 1\n.end\n"),
      std::runtime_error);  // mask wider than inputs
  EXPECT_THROW(parse_blif_string(".model x\n.inputs a\n11 1\n.end\n"),
               std::runtime_error);  // row outside .names
}

TEST(Blif, RejectsUndefinedAndDuplicate) {
  EXPECT_THROW(
      parse_blif_string(".model x\n.outputs y\n.names ghost y\n1 1\n.end\n"),
      std::runtime_error);
  EXPECT_THROW(parse_blif_string(".model x\n.inputs a\n.outputs y\n"
                                 ".names a y\n1 1\n.names a y\n0 1\n.end\n"),
               std::runtime_error);
}

TEST(Blif, ErrorsCarryLineNumbers) {
  try {
    parse_blif_string(".model x\n\n.subckt bad\n");
    FAIL();
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Blif, WriterRoundTripsFunctionally) {
  // Emit a structurally rich circuit to BLIF, re-parse, and compare
  // behaviour on the logic simulator.
  const Netlist original = gen::alu_datapath("alu", 4, 3);
  const Netlist reparsed = parse_blif_string(to_blif_string(original));
  ASSERT_EQ(reparsed.inputs().size(), original.inputs().size());
  ASSERT_EQ(reparsed.outputs().size(), original.outputs().size());
  ASSERT_EQ(reparsed.dffs().size(), original.dffs().size());

  LogicSimulator a(original), b(reparsed);
  SplitMix64 rng(77);
  for (int cycle = 0; cycle < 6; ++cycle) {
    for (std::size_t i = 0; i < original.inputs().size(); ++i) {
      const Word w = rng.next();
      a.set_input(original.inputs()[i], w);
      // Match by name (writer preserves input names).
      b.set_input(original.gate(original.inputs()[i]).name, w);
    }
    a.step();
    b.step();
  }
  a.settle();
  b.settle();
  // Compare output values pairwise by driver name order.
  for (std::size_t i = 0; i < original.outputs().size(); ++i) {
    EXPECT_EQ(b.value(b.netlist().outputs()[i]),
              a.value(original.outputs()[i]))
        << i;
  }
}

TEST(Blif, WriterRoundTripsBenchSuiteCircuit) {
  const Netlist original = gen::xor_cipher("ciph", 8, 2, 9);
  const Netlist reparsed = parse_blif_string(to_blif_string(original));
  LogicSimulator a(original), b(reparsed);
  SplitMix64 rng(5);
  for (std::size_t i = 0; i < original.inputs().size(); ++i) {
    const Word w = rng.next();
    a.set_input(original.inputs()[i], w);
    b.set_input(original.gate(original.inputs()[i]).name, w);
  }
  a.settle();
  b.settle();
  for (std::size_t i = 0; i < original.outputs().size(); ++i) {
    EXPECT_EQ(b.value(b.netlist().outputs()[i]), a.value(original.outputs()[i]));
  }
}

TEST(Blif, MissingFileThrows) {
  EXPECT_THROW(parse_blif_file("/nonexistent.blif"), std::runtime_error);
}

}  // namespace
}  // namespace diac
