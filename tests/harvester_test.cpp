#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "power/harvester.hpp"
#include "util/units.hpp"

namespace diac {
namespace {

TEST(Harvester, ConstantSource) {
  const ConstantSource src(3.0e-3);
  EXPECT_DOUBLE_EQ(src.power_at(0), 3.0e-3);
  EXPECT_DOUBLE_EQ(src.power_at(1e6), 3.0e-3);
  EXPECT_TRUE(std::isinf(src.next_change(0)));
  EXPECT_THROW(ConstantSource(-1), std::invalid_argument);
}

TEST(Harvester, SquareWavePhases) {
  const SquareWaveSource src(10.0e-3, 4.0, 0.25);  // 1 s on, 3 s off
  EXPECT_DOUBLE_EQ(src.power_at(0.5), 10.0e-3);
  EXPECT_DOUBLE_EQ(src.power_at(1.5), 0.0);
  EXPECT_DOUBLE_EQ(src.power_at(4.5), 10.0e-3);  // periodic
  EXPECT_DOUBLE_EQ(src.next_change(0.5), 1.0);
  EXPECT_DOUBLE_EQ(src.next_change(2.0), 4.0);
}

TEST(Harvester, SquareWaveValidation) {
  EXPECT_THROW(SquareWaveSource(1e-3, 0, 0.5), std::invalid_argument);
  EXPECT_THROW(SquareWaveSource(1e-3, 1, 1.5), std::invalid_argument);
}

TEST(Harvester, PiecewiseLookup) {
  const PiecewiseTrace trace({{0.0, 1e-3}, {10.0, 5e-3}, {20.0, 0.0}});
  EXPECT_DOUBLE_EQ(trace.power_at(-1), 0.0);  // before the trace
  EXPECT_DOUBLE_EQ(trace.power_at(0), 1e-3);
  EXPECT_DOUBLE_EQ(trace.power_at(9.999), 1e-3);
  EXPECT_DOUBLE_EQ(trace.power_at(10.0), 5e-3);
  EXPECT_DOUBLE_EQ(trace.power_at(25.0), 0.0);  // tail
  EXPECT_DOUBLE_EQ(trace.next_change(0.0), 10.0);
  EXPECT_DOUBLE_EQ(trace.next_change(15.0), 20.0);
  EXPECT_TRUE(std::isinf(trace.next_change(30.0)));
}

TEST(Harvester, PiecewiseValidation) {
  EXPECT_THROW(PiecewiseTrace({}), std::invalid_argument);
  EXPECT_THROW(PiecewiseTrace({{5.0, 1e-3}, {1.0, 2e-3}}),
               std::invalid_argument);
  EXPECT_THROW(PiecewiseTrace({{0.0, -1e-3}}), std::invalid_argument);
}

TEST(Harvester, RfidDeterministicInSeed) {
  const RfidBurstSource a(77), b(77);
  for (double t = 0; t < 100; t += 0.37) {
    EXPECT_DOUBLE_EQ(a.power_at(t), b.power_at(t));
  }
}

TEST(Harvester, RfidSeedsDiffer) {
  const RfidBurstSource a(1), b(2);
  bool differ = false;
  for (double t = 0; t < 200 && !differ; t += 0.5) {
    differ = a.power_at(t) != b.power_at(t);
  }
  EXPECT_TRUE(differ);
}

TEST(Harvester, RfidPowerInConfiguredBand) {
  RfidBurstSource::Options opt;
  opt.min_power = 2e-3;
  opt.max_power = 4e-3;
  opt.horizon = 500;
  const RfidBurstSource src(9, opt);
  for (double t = 0; t < 500; t += 0.21) {
    const double p = src.power_at(t);
    EXPECT_TRUE(p == 0.0 || (p >= 2e-3 && p < 4e-3)) << t << " " << p;
  }
}

TEST(Harvester, RfidHasBothBurstsAndGaps) {
  const RfidBurstSource src(5);
  int on = 0, off = 0;
  for (double t = 0; t < 2000; t += 1.0) {
    (src.power_at(t) > 0 ? on : off)++;
  }
  EXPECT_GT(on, 100);
  EXPECT_GT(off, 100);
}

TEST(Harvester, RfidMeanPowerIsScarce) {
  // The default options target the energy-scarce regime: mean harvested
  // power below the ~3 mW active draw.
  const RfidBurstSource src(123);
  double sum = 0;
  int n = 0;
  for (double t = 0; t < 5000; t += 0.5) {
    sum += src.power_at(t);
    ++n;
  }
  const double mean = sum / n;
  EXPECT_GT(mean, 0.5e-3);
  EXPECT_LT(mean, 3.0e-3);
}

TEST(Harvester, RfidZeroBeyondHorizon) {
  RfidBurstSource::Options opt;
  opt.horizon = 50;
  const RfidBurstSource src(3, opt);
  EXPECT_DOUBLE_EQ(src.power_at(51), 0.0);
  EXPECT_DOUBLE_EQ(src.power_at(1e4), 0.0);
}

TEST(Harvester, RfidValidation) {
  RfidBurstSource::Options opt;
  opt.mean_on = -1;
  EXPECT_THROW(RfidBurstSource(1, opt), std::invalid_argument);
  RfidBurstSource::Options opt2;
  opt2.max_power = opt2.min_power / 2;
  EXPECT_THROW(RfidBurstSource(1, opt2), std::invalid_argument);
}

TEST(Solar, DiurnalEnvelope) {
  SolarSource::Options opt;
  opt.peak_power = 10e-3;
  opt.day_length = 100;
  opt.night_length = 50;
  opt.cloud_rate = 0;  // clear sky
  const SolarSource src(1, opt);
  EXPECT_DOUBLE_EQ(src.power_at(-1), 0.0);
  EXPECT_NEAR(src.power_at(50), 10e-3, 1e-9);     // solar noon
  EXPECT_NEAR(src.power_at(25), 10e-3 * std::sqrt(0.5), 1e-6);
  EXPECT_DOUBLE_EQ(src.power_at(120), 0.0);       // night
  EXPECT_NEAR(src.power_at(200), 10e-3, 1e-9);    // next day noon
}

TEST(Solar, CloudsAttenuate) {
  SolarSource::Options opt;
  opt.peak_power = 10e-3;
  opt.day_length = 1000;
  opt.night_length = 0;
  opt.cloud_rate = 0.05;
  opt.cloud_attenuation = 0.2;
  opt.horizon = 1000;
  const SolarSource src(7, opt);
  // Somewhere a cloud must attenuate below the clear-sky envelope.
  bool attenuated = false;
  for (double t = 100; t < 900 && !attenuated; t += 1.0) {
    const double clear =
        10e-3 * std::sin(3.14159265358979323846 * t / 1000.0);
    if (src.power_at(t) < 0.5 * clear) attenuated = true;
  }
  EXPECT_TRUE(attenuated);
  // Power never exceeds the peak.
  for (double t = 0; t < 1000; t += 3.3) {
    EXPECT_LE(src.power_at(t), 10e-3 + 1e-12);
    EXPECT_GE(src.power_at(t), 0.0);
  }
}

TEST(Solar, DeterministicInSeed) {
  const SolarSource a(42), b(42), c(43);
  bool same = true, differ = false;
  for (double t = 0; t < 2000; t += 7.7) {
    same = same && a.power_at(t) == b.power_at(t);
    differ = differ || a.power_at(t) != c.power_at(t);
  }
  EXPECT_TRUE(same);
  EXPECT_TRUE(differ);
}

TEST(Solar, EnergyBetweenMatchesFineRiemannSum) {
  // The closed-form sine-envelope integral must agree with a brute-force
  // quadrature across day/night boundaries and cloud edges.
  SolarSource::Options opt;
  opt.peak_power = 10e-3;
  opt.day_length = 300;
  opt.night_length = 100;
  opt.cloud_rate = 0.02;
  opt.cloud_attenuation = 0.25;
  opt.horizon = 2000;
  const SolarSource src(11, opt);
  for (const auto& [t0, t1] : {std::pair{0.0, 1500.0},
                              std::pair{123.4, 456.7},
                              std::pair{250.0, 350.0},   // spans dusk
                              std::pair{399.0, 401.0},   // spans dawn
                              std::pair{700.0, 700.0}}) {
    const double exact = src.energy_between(t0, t1);
    double riemann = 0;
    const double dt = 1.0e-3;
    for (double t = t0; t < t1; t += dt) {
      riemann += src.power_at(t + 0.5 * dt) * std::min(dt, t1 - t);
    }
    // Midpoint quadrature mis-assigns up to one dt per cloud edge, so the
    // comparison is 0.1%-grade; closed-form defects would be far larger.
    EXPECT_NEAR(exact, riemann, 1e-3 * std::max(1.0, riemann))
        << "[" << t0 << ", " << t1 << "]";
  }
}

TEST(Solar, NextPowerCrossingSolvesTheEnvelope) {
  SolarSource::Options opt;
  opt.peak_power = 10e-3;
  opt.day_length = 300;
  opt.night_length = 100;
  opt.cloud_rate = 0;  // clear sky: pure sine
  const SolarSource src(1, opt);
  const double level = 5e-3;  // crossed at phase 50 and 250 of each day
  const double up = src.next_power_crossing(10.0, level, 1.0e9);
  EXPECT_NEAR(up, 50.0, 1e-9);
  EXPECT_NEAR(src.power_at(up), level, 1e-12);
  const double down = src.next_power_crossing(100.0, level, 1.0e9);
  EXPECT_NEAR(down, 250.0, 1e-9);
  // Beyond the peak there is no crossing (the envelope never reaches it).
  EXPECT_TRUE(std::isinf(src.next_power_crossing(10.0, 20e-3, 1.0e9)));
  // At night the power is constant zero until dawn (a breakpoint).
  EXPECT_TRUE(std::isinf(src.next_power_crossing(350.0, level, 1.0e9)));
  // The horizon bounds the answer.
  EXPECT_TRUE(std::isinf(src.next_power_crossing(10.0, level, 30.0)));
  // Nonpositive levels never cross a nonnegative envelope.
  EXPECT_TRUE(std::isinf(src.next_power_crossing(10.0, 0.0, 1.0e9)));
}

TEST(Harvester, DefaultEnergyBetweenIsExactForPiecewiseSources) {
  const PiecewiseTrace trace(
      {{0.0, 2.0e-3}, {10.0, 0.0}, {20.0, 5.0e-3}, {30.0, 1.0e-3}});
  // 5 s at 2 mW + 5 s at 0 + 10 s at 5 mW + 5 s at 1 mW.
  EXPECT_DOUBLE_EQ(trace.energy_between(5.0, 35.0),
                   5.0 * 2.0e-3 + 10.0 * 5.0e-3 + 5.0 * 1.0e-3);
  EXPECT_DOUBLE_EQ(trace.energy_between(12.0, 18.0), 0.0);
  const SquareWaveSource square(8.0e-3, 4.0, 0.25);  // 1 s on, 3 s off
  EXPECT_DOUBLE_EQ(square.energy_between(0.0, 8.0), 2.0 * 8.0e-3);
  EXPECT_DOUBLE_EQ(square.energy_between(0.5, 4.5), 1.0 * 8.0e-3);
  const ConstantSource constant(3.0e-3);
  EXPECT_DOUBLE_EQ(constant.energy_between(2.0, 7.0), 5.0 * 3.0e-3);
  // Piecewise-constant sources report no continuous crossings.
  EXPECT_TRUE(std::isinf(trace.next_power_crossing(0.0, 1.0e-3, 1.0e9)));
}

TEST(Solar, Validation) {
  SolarSource::Options bad;
  bad.cloud_attenuation = 1.5;
  EXPECT_THROW(SolarSource(1, bad), std::invalid_argument);
  SolarSource::Options bad2;
  bad2.day_length = 0;
  EXPECT_THROW(SolarSource(1, bad2), std::invalid_argument);
}

TEST(Harvester, Fig4TraceCoversAllRegions) {
  const PiecewiseTrace trace = fig4_trace();
  using namespace units;
  // (1) surplus at the start.
  EXPECT_GT(trace.power_at(100), 5.0 * mW);
  // (2) scarce mid-range.
  EXPECT_LT(trace.power_at(900), 2.0 * mW);
  EXPECT_GT(trace.power_at(900), 0.0);
  // (3) collapse.
  EXPECT_LT(trace.power_at(1300), 0.1 * mW);
  // (4) drought then strong recharge.
  EXPECT_DOUBLE_EQ(trace.power_at(1800), 0.0);
  EXPECT_GT(trace.power_at(2200), 5.0 * mW);
  // (5) dips.
  EXPECT_LT(trace.power_at(2540), 1.0 * mW);
  EXPECT_GT(trace.power_at(2600), 5.0 * mW);
  // (6) interruption then recovery.
  EXPECT_DOUBLE_EQ(trace.power_at(3050), 0.0);
  EXPECT_GT(trace.power_at(3400), 5.0 * mW);
}

}  // namespace
}  // namespace diac
