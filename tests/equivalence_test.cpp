// Equivalence checker (src/verify/equivalence) + design-level checks:
// exhaustive and random modes, sequential lockstep, counterexample
// soundness under injected faults, transform-preservation and the
// codegen round trip across the full 24-circuit suite.
#include <gtest/gtest.h>

#include <list>
#include <string>
#include <vector>

#include "cell/cell_library.hpp"
#include "diac/synthesizer.hpp"
#include "netlist/suite.hpp"
#include "netlist/transforms.hpp"
#include "verify/design_check.hpp"
#include "verify/equivalence.hpp"

namespace diac {
namespace {

using verify::check_equivalence;
using verify::EquivalenceOptions;
using verify::EquivalenceResult;
using verify::EquivalenceStatus;

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::nominal_45nm();
  return l;
}

// y = a AND b, spelled directly.
Netlist and_direct() {
  Netlist nl("and_direct");
  const GateId a = nl.add(GateKind::kInput, "a");
  const GateId b = nl.add(GateKind::kInput, "b");
  nl.add(GateKind::kOutput, "y", {nl.add(GateKind::kAnd, "g", {a, b})});
  return nl;
}

// y = a AND b via De Morgan: ~(~a | ~b).
Netlist and_demorgan() {
  Netlist nl("and_demorgan");
  const GateId a = nl.add(GateKind::kInput, "a");
  const GateId b = nl.add(GateKind::kInput, "b");
  const GateId na = nl.add(GateKind::kNot, "na", {a});
  const GateId nb = nl.add(GateKind::kNot, "nb", {b});
  nl.add(GateKind::kOutput, "y",
         {nl.add(GateKind::kNor, "nr", {na, nb})});
  return nl;
}

// y = a OR b (differs from AND on patterns 01 and 10).
Netlist or_direct() {
  Netlist nl("or_direct");
  const GateId a = nl.add(GateKind::kInput, "a");
  const GateId b = nl.add(GateKind::kInput, "b");
  nl.add(GateKind::kOutput, "y", {nl.add(GateKind::kOr, "g", {a, b})});
  return nl;
}

// A 2-stage DFF delay line from input `i` to output `y`; `invert_d`
// feeds ~i into the first stage, which is observable only from cycle 2.
Netlist delay_line(bool invert_d) {
  Netlist nl(invert_d ? "delay_inv" : "delay");
  const GateId i = nl.add(GateKind::kInput, "i");
  const GateId d =
      invert_d ? nl.add(GateKind::kNot, "nd", {i}) : i;
  const GateId q1 = nl.add(GateKind::kDff, "q1", {d});
  const GateId q2 = nl.add(GateKind::kDff, "q2", {q1});
  nl.add(GateKind::kOutput, "y", {q2});
  return nl;
}

TEST(Equivalence, ExhaustiveProvesSmallCombinational) {
  const EquivalenceResult r =
      check_equivalence(and_direct(), and_demorgan());
  EXPECT_TRUE(r.equivalent());
  EXPECT_TRUE(r.exhaustive);
  EXPECT_EQ(r.patterns, 4u) << "2 inputs -> 2^2 patterns exactly";
  EXPECT_FALSE(r.counterexample.has_value());
}

TEST(Equivalence, ExhaustiveFindsCounterexample) {
  const Netlist a = and_direct();
  const Netlist b = or_direct();
  EquivalenceOptions opts;
  const EquivalenceResult r = check_equivalence(a, b, opts);
  EXPECT_EQ(r.status, EquivalenceStatus::kNotEquivalent);
  ASSERT_TRUE(r.counterexample.has_value());
  const verify::Counterexample& cex = *r.counterexample;
  EXPECT_TRUE(cex.replayed);
  EXPECT_EQ(cex.cycle, 0);
  EXPECT_EQ(cex.output, "y");
  ASSERT_EQ(cex.pattern.size(), 1u);
  ASSERT_EQ(cex.pattern[0].size(), 2u);
  // AND != OR exactly when exactly one input is 1.
  EXPECT_EQ(int{cex.pattern[0][0]} + int{cex.pattern[0][1]}, 1);
  EXPECT_NE(cex.value_a, cex.value_b);
  EXPECT_TRUE(verify::replay_counterexample(a, b, opts, cex));
}

TEST(Equivalence, InterfaceMismatchIsReportedNotThrown) {
  Netlist renamed = and_direct();
  // Same function, different input names.
  Netlist other("other");
  const GateId p = other.add(GateKind::kInput, "p");
  const GateId q = other.add(GateKind::kInput, "q");
  other.add(GateKind::kOutput, "y",
            {other.add(GateKind::kAnd, "g", {p, q})});
  const EquivalenceResult r = check_equivalence(renamed, other);
  EXPECT_EQ(r.status, EquivalenceStatus::kInterfaceMismatch);
  EXPECT_FALSE(r.equivalent());
  EXPECT_NE(r.reason.find("'a'"), std::string::npos) << r.reason;
  // Positional matching bridges the renaming.
  EquivalenceOptions by_order;
  by_order.match_ports_by_order = true;
  EXPECT_TRUE(check_equivalence(renamed, other, by_order).equivalent());
}

TEST(Equivalence, SequentialDivergenceCarriesCycleIndex) {
  const Netlist a = delay_line(false);
  const Netlist b = delay_line(true);
  EquivalenceOptions opts;
  const EquivalenceResult r = check_equivalence(a, b, opts);
  ASSERT_EQ(r.status, EquivalenceStatus::kNotEquivalent);
  ASSERT_TRUE(r.counterexample.has_value());
  // The inverted D pin is observable exactly two DFF stages later.
  EXPECT_EQ(r.counterexample->cycle, 2);
  EXPECT_EQ(r.counterexample->pattern.size(), 3u);
  EXPECT_TRUE(r.counterexample->replayed);
  EXPECT_TRUE(verify::replay_counterexample(a, b, opts, *r.counterexample));
}

TEST(Equivalence, BoundedLockstepHonorsSeqCycles) {
  // Within 2 cycles the inverted delay line is indistinguishable: the
  // divergence needs 3 observed cycles (0, 1, 2).
  EquivalenceOptions opts;
  opts.seq_cycles = 2;
  const EquivalenceResult r =
      check_equivalence(delay_line(false), delay_line(true), opts);
  EXPECT_TRUE(r.equivalent());
  EXPECT_EQ(r.patterns,
            static_cast<std::uint64_t>(opts.random_rounds) * 2u * 64u *
                static_cast<std::uint64_t>(opts.batch_words));
}

TEST(Equivalence, ResultIsDeterministic) {
  const Netlist a = build_benchmark("s208");
  const Netlist b = cleanup(a);
  EquivalenceOptions opts;
  opts.random_rounds = 4;
  const EquivalenceResult r1 = check_equivalence(a, b, opts);
  const EquivalenceResult r2 = check_equivalence(a, b, opts);
  EXPECT_EQ(r1.status, r2.status);
  EXPECT_EQ(r1.patterns, r2.patterns);
  EXPECT_EQ(r1.exhaustive, r2.exhaustive);
}

// --- fault injection: checker soundness --------------------------------

enum class Mutation {
  kStuckAtOutput,
  kInvertedPolarity,
  kSwappedMuxArms,
  kDroppedGate,
};

const char* to_string(Mutation m) {
  switch (m) {
    case Mutation::kStuckAtOutput: return "stuck-at-output";
    case Mutation::kInvertedPolarity: return "inverted-polarity";
    case Mutation::kSwappedMuxArms: return "swapped-mux-arms";
    case Mutation::kDroppedGate: return "dropped-gate";
  }
  return "?";
}

GateKind inverted(GateKind k) {
  switch (k) {
    case GateKind::kAnd: return GateKind::kNand;
    case GateKind::kNand: return GateKind::kAnd;
    case GateKind::kOr: return GateKind::kNor;
    case GateKind::kNor: return GateKind::kOr;
    case GateKind::kXor: return GateKind::kXnor;
    case GateKind::kXnor: return GateKind::kXor;
    default: return k;
  }
}

// Applies `m` to a copy of `nl`; returns false when the netlist has no
// applicable site (e.g. no MUX with distinct arms).
bool apply_mutation(Netlist& nl, Mutation m) {
  switch (m) {
    case Mutation::kStuckAtOutput: {
      if (nl.outputs().empty()) return false;
      const GateId out = nl.outputs()[0];
      const GateId c0 = nl.add(GateKind::kConst0, "mut_stuck0");
      nl.set_fanin(out, {c0});
      return true;
    }
    case Mutation::kInvertedPolarity: {
      for (GateId id = 0; id < nl.size(); ++id) {
        const GateKind k = nl.gate(id).kind;
        if (inverted(k) != k) {
          nl.gate(id).kind = inverted(k);
          return true;
        }
      }
      return false;
    }
    case Mutation::kSwappedMuxArms: {
      for (GateId id = 0; id < nl.size(); ++id) {
        const Gate& g = nl.gate(id);
        if (g.kind == GateKind::kMux && g.fanin[1] != g.fanin[2]) {
          nl.set_fanin(id, {g.fanin[0], g.fanin[2], g.fanin[1]});
          return true;
        }
      }
      return false;
    }
    case Mutation::kDroppedGate: {
      // Bypass the last wide gate: its consumers see fanin[0] instead
      // of the computed function.
      for (GateId id = static_cast<GateId>(nl.size()); id-- > 0;) {
        const Gate& g = nl.gate(id);
        if (is_combinational(g.kind) && g.fanin.size() >= 2 &&
            g.kind != GateKind::kMux) {
          nl.gate(id).kind = GateKind::kBuf;
          nl.set_fanin(id, {g.fanin[0]});
          return true;
        }
      }
      return false;
    }
  }
  return false;
}

class MutationCatching
    : public ::testing::TestWithParam<std::tuple<std::string, Mutation>> {};

TEST_P(MutationCatching, FaultIsCaughtWithValidCounterexample) {
  const auto& [name, mutation] = GetParam();
  const Netlist original = build_benchmark(name);
  Netlist mutant = original;
  ASSERT_TRUE(apply_mutation(mutant, mutation))
      << name << " has no site for " << to_string(mutation);
  mutant.validate();  // every mutant stays structurally legal
  EquivalenceOptions opts;
  const EquivalenceResult r = check_equivalence(original, mutant, opts);
  ASSERT_EQ(r.status, EquivalenceStatus::kNotEquivalent)
      << to_string(mutation) << " escaped on " << name;
  ASSERT_TRUE(r.counterexample.has_value());
  EXPECT_TRUE(r.counterexample->replayed)
      << "counterexample failed independent replay";
  EXPECT_NE(r.counterexample->value_a, r.counterexample->value_b);
  EXPECT_EQ(r.counterexample->inputs.size(), original.inputs().size());
  EXPECT_TRUE(
      verify::replay_counterexample(original, mutant, opts, *r.counterexample));
}

INSTANTIATE_TEST_SUITE_P(
    Faults, MutationCatching,
    ::testing::Combine(::testing::Values("s344", "s953", "b10", "sbc"),
                       ::testing::Values(Mutation::kStuckAtOutput,
                                         Mutation::kInvertedPolarity,
                                         Mutation::kSwappedMuxArms,
                                         Mutation::kDroppedGate)),
    [](const auto& inf) {
      std::string label = std::get<0>(inf.param);
      label += "_";
      for (const char* c = to_string(std::get<1>(inf.param)); *c; ++c) {
        label += *c == '-' ? '_' : *c;
      }
      return label;
    });

// --- whole-suite sweeps ------------------------------------------------

std::vector<std::string> suite_names() {
  std::vector<std::string> names;
  for (const BenchmarkSpec& spec : benchmark_suite()) {
    names.push_back(spec.name);
  }
  return names;
}

class SuiteEquivalence : public ::testing::TestWithParam<std::string> {};

// The netlist transforms must be behavior-preserving on every circuit.
TEST_P(SuiteEquivalence, TransformsPreserveFunction) {
  static std::list<Netlist> cache;
  cache.push_back(build_benchmark(GetParam()));
  const Netlist& original = cache.back();
  EquivalenceOptions opts;
  opts.random_rounds = 4;
  opts.seq_cycles = 6;
  for (const Netlist& variant :
       {sweep_dead_gates(original), propagate_constants(original),
        elide_buffers(original), cleanup(original)}) {
    const EquivalenceResult r = check_equivalence(original, variant, opts);
    EXPECT_TRUE(r.equivalent())
        << GetParam() << " vs " << variant.name() << ": "
        << verify::to_string(r.status) << " " << r.reason;
  }
}

// Acceptance: emit -> re-import -> equivalence over the whole suite.
TEST_P(SuiteEquivalence, CodegenRoundTripIsEquivalent) {
  const Netlist original = build_benchmark(GetParam());
  DiacSynthesizer synth(original, lib());
  const SynthesisResult sr = synth.synthesize();
  EXPECT_TRUE(verify::run_design_drc(sr.design).clean()) << GetParam();
  EquivalenceOptions opts;
  opts.random_rounds = 4;
  opts.seq_cycles = 6;
  const verify::RoundTripResult rt =
      verify::check_codegen_roundtrip(sr.design, opts);
  EXPECT_TRUE(rt.ok())
      << GetParam() << ": " << verify::to_string(rt.equivalence.status);
  EXPECT_GT(rt.gates_reimported, 0u);
  EXPECT_GT(rt.equivalence.patterns, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllCircuits, SuiteEquivalence,
                         ::testing::ValuesIn(suite_names()),
                         [](const auto& inf) { return inf.param; });

}  // namespace
}  // namespace diac
