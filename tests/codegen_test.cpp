#include <gtest/gtest.h>

#include <list>

#include "diac/codegen.hpp"
#include "diac/synthesizer.hpp"
#include "netlist/suite.hpp"
#include "tree/tree_generator.hpp"

namespace diac {
namespace {

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::nominal_45nm();
  return l;
}

SynthesisResult synth(const std::string& name, Scheme scheme = Scheme::kDiac) {
  static std::list<Netlist> cache;
  cache.push_back(build_benchmark(name));
  return DiacSynthesizer(cache.back(), lib()).synthesize_scheme(scheme);
}

TEST(Codegen, EmitsModuleSkeleton) {
  const auto r = synth("s344");
  const std::string v = generate_verilog(r.design);
  EXPECT_NE(v.find("module s344"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  EXPECT_NE(v.find("input wire clk"), std::string::npos);
  EXPECT_NE(v.find("input wire backup_en"), std::string::npos);
}

TEST(Codegen, DeclaresAllPorts) {
  const auto r = synth("s344");
  const Netlist& nl = r.design.tree.netlist();
  const std::string v = generate_verilog(r.design);
  for (GateId in : nl.inputs()) {
    EXPECT_NE(v.find("input wire w_" + nl.gate(in).name), std::string::npos)
        << nl.gate(in).name;
  }
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(v.begin(), v.end(), '\n')) > nl.size(),
            true);
}

TEST(Codegen, EmitsNvRegsAtCommitPoints) {
  const auto r = synth("s1238");
  const std::string v = generate_verilog(r.design);
  EXPECT_NE(v.find("diac_nvreg"), std::string::npos);
  // The header records the commit-point count.
  EXPECT_NE(v.find("NVM commit points: " +
                   std::to_string(r.replacement.points.size())),
            std::string::npos);
}

TEST(Codegen, CheckpointSchemesHaveNoNvRegs) {
  const auto r = synth("s1238", Scheme::kNvBased);
  const std::string v = generate_verilog(r.design);
  EXPECT_EQ(v.find("diac_nvreg"), std::string::npos);
}

TEST(Codegen, TaskAnnotationsPresent) {
  const auto r = synth("s344");
  const std::string v = generate_verilog(r.design);
  EXPECT_NE(v.find("--- task F"), std::string::npos);
  CodegenOptions opt;
  opt.annotate_tasks = false;
  const std::string bare = generate_verilog(r.design, opt);
  EXPECT_EQ(bare.find("--- task F"), std::string::npos);
}

TEST(Codegen, ModuleNameOverride) {
  const auto r = synth("s344");
  CodegenOptions opt;
  opt.module_name = "custom_top";
  const std::string v = generate_verilog(r.design, opt);
  EXPECT_NE(v.find("module custom_top"), std::string::npos);
}

TEST(Codegen, SanitizesIdentifiers) {
  // Output ports carry a '$' suffix internally; Verilog identifiers must
  // not contain '$' after sanitization (we map to '_').
  const auto r = synth("s344");
  const std::string v = generate_verilog(r.design);
  EXPECT_EQ(v.find('$'), std::string::npos);
}

TEST(Codegen, DffsEmitAlwaysBlocks) {
  const auto r = synth("s208");
  const std::string v = generate_verilog(r.design);
  if (r.design.tree.netlist().dffs().empty()) GTEST_SKIP();
  EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
}

// --- validation -------------------------------------------------------------

TEST(Validation, CleanDesignPasses) {
  const auto r = synth("s1238");
  const auto report = validate_design(r.design, 1.0 /* s: generous clock */,
                                      25.0e-3);
  EXPECT_TRUE(report.ok());
}

TEST(Validation, TimingViolationsDetected) {
  const auto r = synth("s1238");
  // An impossibly fast clock must flag every multi-gate task.
  const auto report = validate_design(r.design, 1.0e-12, 25.0e-3);
  EXPECT_FALSE(report.ok());
  bool has_timing = false;
  for (const auto& v : report.violations) {
    if (v.kind == Violation::Kind::kTiming) has_timing = true;
  }
  EXPECT_TRUE(has_timing);
}

TEST(Validation, PowerBudgetViolationsDetected) {
  const auto r = synth("s1238");
  // A budget below the smallest task energy flags everything.
  const auto report = validate_design(r.design, 1.0, 1.0e-9);
  EXPECT_FALSE(report.ok());
  bool has_power = false;
  for (const auto& v : report.violations) {
    if (v.kind == Violation::Kind::kPowerBudget) {
      has_power = true;
      EXPECT_NE(v.task, kNullTask);
      EXPECT_FALSE(v.message.empty());
    }
  }
  EXPECT_TRUE(has_power);
}

TEST(Validation, MessagesNameTheTask) {
  const auto r = synth("s344");
  const auto report = validate_design(r.design, 1.0e-12, 25.0e-3);
  ASSERT_FALSE(report.violations.empty());
  EXPECT_EQ(report.violations[0].message.find("F"), 0u);
}

}  // namespace
}  // namespace diac
