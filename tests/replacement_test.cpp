#include <gtest/gtest.h>

#include <list>

#include "diac/policy.hpp"
#include "diac/replacement.hpp"
#include "netlist/suite.hpp"
#include "tree/task_tree.hpp"

namespace diac {
namespace {

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::nominal_45nm();
  return l;
}

TaskTree policy3_tree(const std::string& bench, double instance = 40.0e-3,
                      double upper = 0.75e-3) {
  // Trees hold a pointer to their netlist; park netlists in a list whose
  // elements have stable addresses for the duration of the test binary.
  static std::list<Netlist> keep_alive;
  keep_alive.push_back(build_benchmark(bench));
  const TaskTree tree = initial_tree(keep_alive.back(), lib());
  PolicyLimits limits;
  limits.scale = instance / tree.total_energy();
  limits.upper = upper;
  limits.lower = 0.8 * upper;
  return apply_policy(tree, PolicyKind::kPolicy3, limits);
}

double tree_scale(const TaskTree& tree, double instance = 40.0e-3) {
  return instance / tree.total_energy();
}

TEST(Replacement, ExposureBoundedByBudget) {
  TaskTree tree = policy3_tree("s1238");
  ReplacementOptions opt;
  opt.scale = tree_scale(tree);
  opt.budget = 6.25e-3;
  const ReplacementResult r = insert_nvm(tree, opt);
  // One task may cross the budget before the commit lands, so the bound is
  // budget + the largest task.
  double max_task = 0;
  for (const TaskNode& n : tree.nodes()) {
    max_task = std::max(max_task, opt.scale * n.dict.energy());
  }
  EXPECT_LE(r.max_exposed_energy, opt.budget + max_task + 1e-12);
  EXPECT_FALSE(r.points.empty());
}

TEST(Replacement, TighterBudgetMoreCommits) {
  TaskTree loose = policy3_tree("s1238");
  TaskTree tight = policy3_tree("s1238");
  ReplacementOptions opt;
  opt.scale = tree_scale(loose);
  opt.budget = 10.0e-3;
  const auto r_loose = insert_nvm(loose, opt);
  opt.budget = 2.0e-3;
  const auto r_tight = insert_nvm(tight, opt);
  EXPECT_GT(r_tight.points.size(), r_loose.points.size());
  EXPECT_LE(r_tight.max_exposed_energy, r_loose.max_exposed_energy + 1e-12);
}

TEST(Replacement, FinalTaskAlwaysCommits) {
  TaskTree tree = policy3_tree("s344");
  ReplacementOptions opt;
  opt.scale = tree_scale(tree);
  opt.budget = 1.0;  // effectively infinite
  const auto r = insert_nvm(tree, opt);
  ASSERT_EQ(r.points.size(), 1u);  // only the terminal barrier
  EXPECT_EQ(r.points[0], tree.schedule().back());
}

TEST(Replacement, CommitRootsCanBeDisabled) {
  TaskTree tree = policy3_tree("s344");
  ReplacementOptions opt;
  opt.scale = tree_scale(tree);
  opt.budget = 1.0;
  opt.commit_roots = false;
  const auto r = insert_nvm(tree, opt);
  EXPECT_TRUE(r.points.empty());
}

TEST(Replacement, BitsAreCappedPlusControl) {
  TaskTree tree = policy3_tree("s13207");
  ReplacementOptions opt;
  opt.scale = tree_scale(tree);
  opt.budget = 6.25e-3;
  opt.bits_cap = 64;
  opt.control_bits = 8;
  insert_nvm(tree, opt);
  for (const TaskNode& n : tree.nodes()) {
    if (!n.has_nvm) continue;
    EXPECT_GE(n.nvm_bits, 1 + opt.control_bits);
    EXPECT_LE(n.nvm_bits, opt.bits_cap + opt.control_bits);
  }
}

TEST(Replacement, ConsolidationCriterionIII) {
  // A commit at a node with fan-out k persists k signals in ONE write:
  // total write events is the number of points, not the number of signals.
  TaskTree tree = policy3_tree("s953");
  ReplacementOptions opt;
  opt.scale = tree_scale(tree);
  opt.budget = 6.25e-3;
  const auto r = insert_nvm(tree, opt);
  EXPECT_GT(r.total_bits, static_cast<int>(r.points.size()));  // >1 bit/event
  const auto cost = per_pass_commit_cost(tree, nvm_parameters(NvmTechnology::kMram),
                                         2.0e7, 0.15e-3, 1.0e5);
  EXPECT_EQ(cost.writes, static_cast<int>(r.points.size()));
  EXPECT_GT(cost.energy, 0.0);
}

TEST(Replacement, ReplanIsIdempotent) {
  TaskTree tree = policy3_tree("s820");
  ReplacementOptions opt;
  opt.scale = tree_scale(tree);
  opt.budget = 5.0e-3;
  const auto r1 = insert_nvm(tree, opt);
  const auto r2 = insert_nvm(tree, opt);  // re-plan resets prior state
  EXPECT_EQ(r1.points, r2.points);
  EXPECT_EQ(r1.total_bits, r2.total_bits);
}

TEST(Replacement, AccumulationResetsAfterCommit) {
  TaskTree tree = policy3_tree("s1238");
  ReplacementOptions opt;
  opt.scale = tree_scale(tree);
  opt.budget = 4.0e-3;
  insert_nvm(tree, opt);
  // Walk the schedule: accumulated energy right after each commit point's
  // successor must be below the pre-commit accumulation.
  const auto& sched = tree.schedule();
  for (std::size_t i = 0; i + 1 < sched.size(); ++i) {
    const TaskNode& cur = tree.node(sched[i]);
    const TaskNode& nxt = tree.node(sched[i + 1]);
    if (cur.has_nvm) {
      EXPECT_LE(nxt.accumulated_energy,
                opt.scale * nxt.dict.energy() + 1e-12);
    }
  }
}

TEST(Replacement, InvalidOptionsRejected) {
  TaskTree tree = policy3_tree("s344");
  ReplacementOptions opt;
  opt.budget = 0;
  EXPECT_THROW(insert_nvm(tree, opt), std::invalid_argument);
  opt.budget = 1e-3;
  opt.scale = -1;
  EXPECT_THROW(insert_nvm(tree, opt), std::invalid_argument);
}

TEST(Replacement, UpperLevelPreferenceCriterionI) {
  // With linear accumulation, commits sit as late as the budget allows:
  // the first commit must not be the first task (its accumulated energy is
  // far below the budget).
  TaskTree tree = policy3_tree("s1238");
  ReplacementOptions opt;
  opt.scale = tree_scale(tree);
  opt.budget = 6.25e-3;
  const auto r = insert_nvm(tree, opt);
  ASSERT_FALSE(r.points.empty());
  EXPECT_NE(r.points.front(), tree.schedule().front());
}

}  // namespace
}  // namespace diac
