// DRC engine (src/verify/drc): every rule trips on a crafted netlist,
// the 24-circuit suite is error-free, reports are deterministic, and
// Netlist::validate() is a faithful facade over the same engine.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "netlist/suite.hpp"
#include "verify/drc.hpp"

namespace diac {
namespace {

using verify::DrcOptions;
using verify::DrcReport;
using verify::DrcRule;
using verify::DrcSeverity;
using verify::run_drc;

// A small clean sequential netlist: every gate reaches an output, no
// constants, safe names, logic between the DFF stages.
Netlist clean_netlist() {
  Netlist nl("clean");
  const GateId a = nl.add(GateKind::kInput, "a");
  const GateId b = nl.add(GateKind::kInput, "b");
  const GateId x = nl.add(GateKind::kXor, "x", {a, b});
  const GateId q = nl.add(GateKind::kDff, "q", {x});
  const GateId n = nl.add(GateKind::kNand, "n", {q, a});
  nl.add(GateKind::kOutput, "y", {n});
  return nl;
}

TEST(Drc, CleanNetlistHasNoFindings) {
  const DrcReport r = run_drc(clean_netlist());
  EXPECT_TRUE(r.clean());
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.errors, 0u);
  EXPECT_EQ(r.warnings, 0u);
  EXPECT_EQ(r.first_error(), nullptr);
}

TEST(Drc, N1OutOfRangeFanin) {
  Netlist nl = clean_netlist();
  // The mutable accessor can bypass add()/set_fanin() range checks.
  nl.gate(nl.find("n")).fanin.push_back(1000);
  const DrcReport r = run_drc(nl);
  EXPECT_FALSE(r.clean());
  EXPECT_EQ(r.count(DrcRule::kLinks), 1u);
  EXPECT_NE(r.first_error()->message.find("out-of-range"),
            std::string::npos);
  EXPECT_THROW(nl.validate(), std::runtime_error);
}

TEST(Drc, N1FanoutBookkeepingMismatch) {
  Netlist nl = clean_netlist();
  nl.gate(nl.find("a")).fanout.push_back(nl.find("y"));
  const DrcReport r = run_drc(nl);
  EXPECT_EQ(r.count(DrcRule::kLinks), 1u);
  EXPECT_EQ(r.findings[0].gate_name, "a");
  EXPECT_NE(r.findings[0].message.find("inconsistent"), std::string::npos);
}

TEST(Drc, N1OutputUsedAsDriver) {
  Netlist nl = clean_netlist();
  nl.add(GateKind::kNot, "bad", {nl.find("y")});
  const DrcReport r = run_drc(nl, DrcOptions::structural());
  ASSERT_EQ(r.count(DrcRule::kLinks), 1u);
  EXPECT_NE(r.first_error()->message.find("OUTPUT 'y' drives gate 'bad'"),
            std::string::npos);
  EXPECT_THROW(nl.validate(), std::runtime_error);
}

TEST(Drc, N2ArityViolations) {
  Netlist nl("arity");
  const GateId a = nl.add(GateKind::kInput, "a");
  nl.add(GateKind::kAnd, "and1", {a});         // needs >= 2
  nl.add(GateKind::kMux, "mux2", {a, a});      // needs exactly 3
  nl.add(GateKind::kInput, "i1", {a});         // needs 0
  const DrcReport r = run_drc(nl, DrcOptions::structural());
  EXPECT_EQ(r.count(DrcRule::kArity), 3u);
  EXPECT_EQ(r.errors, 3u);
  EXPECT_THROW(nl.validate(), std::runtime_error);
}

TEST(Drc, N3CycleReportedWithFullPath) {
  Netlist nl("cyc");
  const GateId i = nl.add(GateKind::kInput, "i");
  const GateId a = nl.add(GateKind::kAnd, "a", {i, i});
  const GateId b = nl.add(GateKind::kNot, "b", {a});
  const GateId c = nl.add(GateKind::kBuf, "c", {b});
  nl.set_fanin(a, {i, c});  // a -> c -> b -> a
  nl.add(GateKind::kOutput, "y", {c});
  const DrcReport r = run_drc(nl, DrcOptions::structural());
  ASSERT_EQ(r.count(DrcRule::kCycle), 1u);
  const std::string& msg = r.first_error()->message;
  EXPECT_NE(msg.find("combinational cycle"), std::string::npos);
  // The full path names every member of the loop.
  EXPECT_NE(msg.find("'a'"), std::string::npos);
  EXPECT_NE(msg.find("'b'"), std::string::npos);
  EXPECT_NE(msg.find("'c'"), std::string::npos);
  EXPECT_THROW(nl.validate(), std::runtime_error);
}

TEST(Drc, N3CycleThroughDffIsFine) {
  Netlist nl("seqloop");
  const GateId i = nl.add(GateKind::kInput, "i");
  const GateId x = nl.add(GateKind::kXor, "x", {i, i});
  const GateId q = nl.add(GateKind::kDff, "q", {x});
  nl.set_fanin(x, {i, q});  // x -> q -> x, broken by the DFF
  nl.add(GateKind::kOutput, "y", {x});
  const DrcReport r = run_drc(nl);
  EXPECT_EQ(r.count(DrcRule::kCycle), 0u);
  EXPECT_TRUE(r.clean());
  EXPECT_NO_THROW(nl.validate());
}

TEST(Drc, N4UnreachableAndFloating) {
  Netlist nl = clean_netlist();
  const GateId dead_in = nl.add(GateKind::kInput, "dead_in");
  nl.add(GateKind::kNot, "dead_not", {dead_in});
  const DrcReport r = run_drc(nl);
  EXPECT_EQ(r.count(DrcRule::kFloating), 2u);
  EXPECT_TRUE(r.clean()) << "N4 findings are warnings, not errors";
  EXPECT_EQ(r.warnings, 2u);
  EXPECT_NO_THROW(nl.validate()) << "validate() checks N1-N3 only";
}

TEST(Drc, N4NoOutputsAtAll) {
  Netlist nl("noout");
  nl.add(GateKind::kInput, "a");
  const DrcReport r = run_drc(nl);
  ASSERT_EQ(r.count(DrcRule::kFloating), 1u);
  EXPECT_EQ(r.findings[0].gate, kNullGate);
  EXPECT_NE(r.findings[0].message.find("no output ports"),
            std::string::npos);
}

TEST(Drc, N5UnsafeNameWarnsCollisionErrors) {
  Netlist nl("names");
  const GateId a = nl.add(GateKind::kInput, "sig$1");
  const GateId b = nl.add(GateKind::kInput, "sig_1");
  const GateId x = nl.add(GateKind::kXor, "x", {a, b});
  nl.add(GateKind::kOutput, "y", {x});
  const DrcReport r = run_drc(nl);
  // 'sig$1' needs sanitization (warning) and then collides with
  // 'sig_1' (error): codegen would merge the two wires.
  EXPECT_EQ(r.count(DrcRule::kNames), 2u);
  EXPECT_EQ(r.errors, 1u);
  EXPECT_EQ(r.warnings, 1u);
  EXPECT_NO_THROW(nl.validate()) << "name rules stay out of validate()";
}

TEST(Drc, N6Degeneracies) {
  Netlist nl("degen");
  const GateId i = nl.add(GateKind::kInput, "i");
  const GateId c0 = nl.add(GateKind::kConst0, "c0");
  const GateId q1 = nl.add(GateKind::kDff, "q1", {i});
  const GateId q2 = nl.add(GateKind::kDff, "q2", {q1});   // DFF-of-DFF
  const GateId qc = nl.add(GateKind::kDff, "qc", {c0});   // constant D
  const GateId an = nl.add(GateKind::kAnd, "an", {i, c0});  // forced 0
  const GateId mx = nl.add(GateKind::kMux, "mx", {c0, q2, qc});  // const sel
  const GateId x = nl.add(GateKind::kXor, "x", {an, mx});
  nl.add(GateKind::kOutput, "y", {x});
  nl.add(GateKind::kOutput, "yc", {c0});                  // const output
  const DrcReport r = run_drc(nl);
  EXPECT_EQ(r.count(DrcRule::kDegenerate), 5u);
  EXPECT_TRUE(r.clean()) << "N6 findings are warnings";
  EXPECT_NO_THROW(nl.validate());
}

TEST(Drc, ValidateDelegatesToDrcEngine) {
  Netlist nl("delegate");
  const GateId a = nl.add(GateKind::kInput, "a");
  nl.add(GateKind::kAnd, "narrow", {a});
  try {
    nl.validate();
    FAIL() << "validate() must throw on an arity violation";
  } catch (const std::runtime_error& e) {
    const DrcReport r = run_drc(nl, DrcOptions::structural());
    ASSERT_NE(r.first_error(), nullptr);
    // The thrown message IS the engine's first error — no drift possible.
    EXPECT_EQ(std::string("Netlist::validate: ") + r.first_error()->message,
              e.what());
  }
}

TEST(Drc, StructuralOptionsSkipAdvisoryRules) {
  Netlist nl("adv");
  nl.add(GateKind::kInput, "unused$in");  // N4 + N5 material
  nl.add(GateKind::kOutput, "y", {nl.add(GateKind::kConst1, "c1")});
  EXPECT_FALSE(run_drc(nl).findings.empty());
  EXPECT_TRUE(run_drc(nl, DrcOptions::structural()).findings.empty());
}

TEST(Drc, ReportIsDeterministicAndOrdered) {
  Netlist nl = clean_netlist();
  nl.add(GateKind::kInput, "dead$in");
  nl.gate(nl.find("a")).fanout.push_back(nl.find("y"));
  const DrcReport r1 = run_drc(nl);
  const DrcReport r2 = run_drc(nl);
  std::ostringstream s1, s2;
  verify::write_drc_report(s1, r1, nl.name());
  verify::write_drc_report(s2, r2, nl.name());
  EXPECT_EQ(s1.str(), s2.str());
  EXPECT_FALSE(s1.str().empty());
  for (std::size_t i = 1; i < r1.findings.size(); ++i) {
    EXPECT_LE(r1.findings[i - 1].gate, r1.findings[i].gate)
        << "findings must be sorted by gate id";
  }
}

TEST(Drc, RuleMetadataIsComplete) {
  for (int i = 0; i < verify::kDrcRuleCount; ++i) {
    const auto rule = static_cast<DrcRule>(i);
    EXPECT_EQ(std::string(verify::to_string(rule)),
              "N" + std::to_string(i + 1));
    EXPECT_FALSE(std::string(verify::rule_summary(rule)).empty());
  }
  EXPECT_STREQ(verify::to_string(DrcSeverity::kError), "error");
  EXPECT_STREQ(verify::to_string(DrcSeverity::kWarning), "warning");
}

// The whole 24-circuit suite must be DRC-error-free (warnings — e.g.
// the generators' '$'-suffixed port names — are allowed).
TEST(Drc, SuiteIsErrorFree) {
  for (const BenchmarkSpec& spec : benchmark_suite()) {
    const Netlist nl = build_benchmark(spec);
    const DrcReport r = run_drc(nl);
    EXPECT_TRUE(r.clean()) << spec.name << ": " << r.errors << " errors";
    EXPECT_EQ(r.count(DrcRule::kCycle), 0u) << spec.name;
    EXPECT_EQ(r.count(DrcRule::kLinks), 0u) << spec.name;
    EXPECT_EQ(r.count(DrcRule::kArity), 0u) << spec.name;
  }
}

}  // namespace
}  // namespace diac
