#include <gtest/gtest.h>

#include "netlist/netlist.hpp"

namespace diac {
namespace {

Netlist tiny_and() {
  Netlist nl("tiny");
  const GateId a = nl.add(GateKind::kInput, "a");
  const GateId b = nl.add(GateKind::kInput, "b");
  const GateId g = nl.add(GateKind::kAnd, "g", {a, b});
  nl.add(GateKind::kOutput, "y$out", {g});
  return nl;
}

TEST(Netlist, BasicConstruction) {
  const Netlist nl = tiny_and();
  EXPECT_EQ(nl.size(), 4u);
  EXPECT_EQ(nl.inputs().size(), 2u);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.logic_gate_count(), 1u);
  EXPECT_NO_THROW(nl.validate());
}

TEST(Netlist, FanoutMaintained) {
  const Netlist nl = tiny_and();
  const GateId a = nl.find("a");
  const GateId g = nl.find("g");
  ASSERT_NE(a, kNullGate);
  ASSERT_EQ(nl.gate(a).fanout.size(), 1u);
  EXPECT_EQ(nl.gate(a).fanout[0], g);
}

TEST(Netlist, FindMissingReturnsNull) {
  const Netlist nl = tiny_and();
  EXPECT_EQ(nl.find("nope"), kNullGate);
  EXPECT_FALSE(nl.contains("nope"));
  EXPECT_TRUE(nl.contains("g"));
}

TEST(Netlist, DuplicateNameRejected) {
  Netlist nl;
  nl.add(GateKind::kInput, "a");
  EXPECT_THROW(nl.add(GateKind::kInput, "a"), std::invalid_argument);
}

TEST(Netlist, OutOfRangeFaninRejected) {
  Netlist nl;
  EXPECT_THROW(nl.add(GateKind::kNot, "n", {42}), std::invalid_argument);
}

TEST(Netlist, AutoNamesAreUnique) {
  Netlist nl;
  const GateId a = nl.add(GateKind::kInput, "pi");
  const GateId g1 = nl.add(GateKind::kNot, {a});
  const GateId g2 = nl.add(GateKind::kNot, {a});
  EXPECT_NE(nl.gate(g1).name, nl.gate(g2).name);
}

TEST(Netlist, SetFaninRewiresFanout) {
  Netlist nl;
  const GateId a = nl.add(GateKind::kInput, "a");
  const GateId b = nl.add(GateKind::kInput, "b");
  const GateId g = nl.add(GateKind::kNot, "g", {a});
  EXPECT_EQ(nl.gate(a).fanout.size(), 1u);
  nl.set_fanin(g, {b});
  EXPECT_EQ(nl.gate(a).fanout.size(), 0u);
  EXPECT_EQ(nl.gate(b).fanout.size(), 1u);
}

TEST(Netlist, ValidateCatchesBadArity) {
  Netlist nl;
  const GateId a = nl.add(GateKind::kInput, "a");
  // AND with a single operand: arity violation.
  nl.add(GateKind::kAnd, "bad", {a});
  EXPECT_THROW(nl.validate(), std::runtime_error);
}

TEST(Netlist, ValidateCatchesMuxArity) {
  Netlist nl;
  const GateId a = nl.add(GateKind::kInput, "a");
  const GateId b = nl.add(GateKind::kInput, "b");
  nl.add(GateKind::kMux, "m", {a, b});  // needs 3
  EXPECT_THROW(nl.validate(), std::runtime_error);
}

TEST(Netlist, ValidateCatchesCombinationalCycle) {
  Netlist nl;
  const GateId a = nl.add(GateKind::kInput, "a");
  const GateId g1 = nl.add(GateKind::kAnd, "g1", {a, a});
  const GateId g2 = nl.add(GateKind::kAnd, "g2", {g1, a});
  nl.set_fanin(g1, {a, g2});  // g1 -> g2 -> g1
  EXPECT_THROW(nl.validate(), std::runtime_error);
}

TEST(Netlist, DffBreaksCycles) {
  // A DFF feedback loop (counter bit) is legal.
  Netlist nl;
  const GateId ff = nl.add(GateKind::kDff, "ff", std::vector<GateId>{});
  const GateId inv = nl.add(GateKind::kNot, "inv", {ff});
  nl.set_fanin(ff, {inv});
  nl.add(GateKind::kOutput, "q$out", {ff});
  EXPECT_NO_THROW(nl.validate());
  EXPECT_EQ(nl.dffs().size(), 1u);
}

TEST(Netlist, OutputCannotDrive) {
  Netlist nl;
  const GateId a = nl.add(GateKind::kInput, "a");
  const GateId o = nl.add(GateKind::kOutput, "o", {a});
  nl.add(GateKind::kNot, "n", {o});
  EXPECT_THROW(nl.validate(), std::runtime_error);
}

TEST(Netlist, GateCountsExcludePorts) {
  Netlist nl;
  const GateId a = nl.add(GateKind::kInput, "a");
  const GateId c = nl.add(GateKind::kConst1, "vdd");
  const GateId g = nl.add(GateKind::kAnd, "g", {a, c});
  const GateId ff = nl.add(GateKind::kDff, "ff", {g});
  nl.add(GateKind::kOutput, "y$out", {ff});
  EXPECT_EQ(nl.logic_gate_count(), 2u);           // AND + DFF
  EXPECT_EQ(nl.combinational_gate_count(), 1u);   // AND only
}

TEST(Netlist, ArityTable) {
  EXPECT_EQ(arity(GateKind::kInput), (std::pair<int, int>{0, 0}));
  EXPECT_EQ(arity(GateKind::kNot), (std::pair<int, int>{1, 1}));
  EXPECT_EQ(arity(GateKind::kMux), (std::pair<int, int>{3, 3}));
  EXPECT_EQ(arity(GateKind::kAnd).first, 2);
  EXPECT_EQ(arity(GateKind::kAnd).second, -1);  // unbounded
}

TEST(Netlist, WideGatesAllowed) {
  Netlist nl;
  std::vector<GateId> ins;
  for (int i = 0; i < 6; ++i) {
    ins.push_back(nl.add(GateKind::kInput, "i" + std::to_string(i)));
  }
  const GateId g = nl.add(GateKind::kNand, "wide", ins);
  nl.add(GateKind::kOutput, "y$out", {g});
  EXPECT_NO_THROW(nl.validate());
  EXPECT_EQ(nl.gate(g).fanin_count(), 6);
}

TEST(Netlist, AllIdsDense) {
  const Netlist nl = tiny_and();
  const auto ids = nl.all_ids();
  ASSERT_EQ(ids.size(), nl.size());
  for (std::size_t i = 0; i < ids.size(); ++i) EXPECT_EQ(ids[i], i);
}

TEST(Netlist, GateAccessorBoundsChecked) {
  const Netlist nl = tiny_and();
  EXPECT_THROW(nl.gate(999), std::out_of_range);
}

}  // namespace
}  // namespace diac
