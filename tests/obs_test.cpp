// Unit tests for the observability side channel (src/obs): the tiny
// ordered JSON reader/writer, the metrics registry, span recording, and
// the shard-file merge semantics (counters/histograms sum, gauges max,
// timestamps re-based).  These run against the library API directly, so
// they hold in both DIAC_OBS=ON and =OFF builds.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace diac::obs {
namespace {

namespace fs = std::filesystem;

std::string write_temp(const std::string& name, const std::string& text) {
  const fs::path path = fs::path(::testing::TempDir()) / name;
  std::ofstream out(path);
  out << text;
  out.flush();
  return path.string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// --- JSON -------------------------------------------------------------------

TEST(Obs, JsonParsesNestedDocuments) {
  const JsonValue doc = parse_json(
      R"({"a": 1, "b": [true, null, "x\n"], "c": {"d": 42}})");
  ASSERT_EQ(doc.kind, JsonValue::Kind::kObject);
  EXPECT_EQ(doc.find("a")->as_u64(), 1u);
  const JsonValue* b = doc.find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(b->items.size(), 3u);
  EXPECT_TRUE(b->items[0].boolean);
  EXPECT_EQ(b->items[1].kind, JsonValue::Kind::kNull);
  EXPECT_EQ(b->items[2].text, "x\n");
  ASSERT_NE(doc.find("c"), nullptr);
  EXPECT_EQ(doc.find("c")->find("d")->as_u64(), 42u);
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(Obs, JsonPreservesMemberOrderAndNumericTokens) {
  const JsonValue doc = parse_json(R"({"z": 1.2500, "a": 3})");
  ASSERT_EQ(doc.members.size(), 2u);
  EXPECT_EQ(doc.members[0].first, "z");  // file order, not sorted
  std::ostringstream out;
  write_json(out, doc);
  // The raw token "1.2500" must round-trip exactly.
  EXPECT_EQ(out.str(), R"({"z":1.2500,"a":3})");
}

TEST(Obs, JsonRejectsMalformedInput) {
  EXPECT_THROW(parse_json("{"), std::runtime_error);
  EXPECT_THROW(parse_json(R"({"a": })"), std::runtime_error);
  EXPECT_THROW(parse_json("[1, 2,]"), std::runtime_error);
  EXPECT_THROW(parse_json("{} trailing"), std::runtime_error);
}

TEST(Obs, JsonEscapesControlCharacters) {
  EXPECT_EQ(json_escape("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
}

// --- metrics primitives -----------------------------------------------------

TEST(Obs, CounterAndGaugeHoldValues) {
  Counter c;
  c.inc();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  Gauge g;
  g.set(-7);
  EXPECT_EQ(g.value(), -7);
}

TEST(Obs, HistogramBucketsByBitWidth) {
  Histogram h;
  h.record(0);    // width 0
  h.record(1);    // width 1
  h.record(2);    // width 2
  h.record(3);    // width 2
  h.record(1u << 20);  // width 21
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 6u + (1u << 20));
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(21), 1u);
  Histogram clamp;
  clamp.record(~std::uint64_t{0});  // width 64 clamps into the last bucket
  EXPECT_EQ(clamp.bucket(Histogram::kBuckets - 1), 1u);
}

TEST(Obs, RegistryReturnsStableReferencesAndSortedExports) {
  Registry& reg = Registry::instance();
  reg.reset_for_testing();
  Counter& a = reg.counter("zz.second");
  Counter& b = reg.counter("aa.first");
  EXPECT_EQ(&a, &reg.counter("zz.second"));
  a.add(2);
  b.add(1);
  reg.gauge("level").set(5);
  reg.histogram("sizes").record(8);

  const auto counters = reg.counter_values();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters.begin()->first, "aa.first");  // ordered map
  EXPECT_EQ(counters.at("zz.second"), 2u);
  EXPECT_EQ(reg.gauge_values().at("level"), 5);
  EXPECT_EQ(reg.histogram_values().at("sizes").count, 1u);
  reg.reset_for_testing();
}

TEST(Obs, MetricsJsonExportIsParseable) {
  Registry& reg = Registry::instance();
  reg.reset_for_testing();
  reg.counter("events").add(9);
  MetricsMeta meta;
  meta.command = "mc";
  meta.shard_index = 1;
  std::ostringstream out;
  write_metrics_json(out, meta);
  const JsonValue doc = parse_json(out.str());
  EXPECT_EQ(doc.find("diac_metrics_version")->as_u64(), 1u);
  ASSERT_NE(doc.find("build"), nullptr);
  EXPECT_NE(doc.find("build")->find("git_hash"), nullptr);
  EXPECT_EQ(doc.find("command")->text, "mc");
  EXPECT_EQ(doc.find("shard_index")->as_u64(), 1u);
  EXPECT_EQ(doc.find("counters")->find("events")->as_u64(), 9u);
  reg.reset_for_testing();
}

// --- merge semantics --------------------------------------------------------

std::string worker_metrics_doc(int shard, std::uint64_t events, int threads) {
  std::ostringstream out;
  out << R"({"diac_metrics_version": 1, "command": "shard-worker",)"
      << R"( "shard_index": )" << shard << R"(, "counters": {"events": )"
      << events << R"(}, "gauges": {"threads": )" << threads
      << R"(}, "histograms": {"jobs": {"count": 1, "sum": )" << events
      << R"(, "buckets": [0,1]}}})";
  return out.str();
}

TEST(Obs, MergeSumsCountersAndTakesMaxGauges) {
  Registry::instance().reset_for_testing();
  const std::string w0 = write_temp("obs_w0.json", worker_metrics_doc(0, 5, 2));
  const std::string w1 = write_temp("obs_w1.json", worker_metrics_doc(1, 7, 4));
  const fs::path out = fs::path(::testing::TempDir()) / "obs_merged.json";
  MetricsMeta meta;
  meta.command = "mc";
  meta.shards_merged = 2;
  std::string err;
  ASSERT_TRUE(merge_metrics_files(out.string(), {w0, w1}, meta, &err)) << err;

  const JsonValue doc = parse_json(slurp(out.string()));
  EXPECT_EQ(doc.find("counters")->find("events")->as_u64(), 12u);  // 5 + 7
  EXPECT_EQ(doc.find("gauges")->find("threads")->as_u64(), 4u);    // max
  const JsonValue* jobs = doc.find("histograms")->find("jobs");
  ASSERT_NE(jobs, nullptr);
  EXPECT_EQ(jobs->find("count")->as_u64(), 2u);
  EXPECT_EQ(jobs->find("sum")->as_u64(), 12u);
  EXPECT_EQ(jobs->find("buckets")->items[1].as_u64(), 2u);
  EXPECT_EQ(doc.find("shards_merged")->as_u64(), 2u);
  Registry::instance().reset_for_testing();
}

TEST(Obs, MergeFailsCleanlyOnMissingOrBadFiles) {
  MetricsMeta meta;
  std::string err;
  const fs::path out = fs::path(::testing::TempDir()) / "obs_merged_bad.json";
  EXPECT_FALSE(
      merge_metrics_files(out.string(), {"/nonexistent.json"}, meta, &err));
  EXPECT_FALSE(err.empty());
  const std::string bad = write_temp("obs_bad.json", "{ not json");
  EXPECT_FALSE(merge_metrics_files(out.string(), {bad}, meta, &err));
}

TEST(Obs, StatsTableRendersCountersAndHistograms) {
  const std::string path =
      write_temp("obs_stats.json", worker_metrics_doc(0, 5, 2));
  std::ostringstream out;
  std::string err;
  ASSERT_TRUE(print_metrics_file(path, out, &err)) << err;
  const std::string table = out.str();
  EXPECT_NE(table.find("command: shard-worker"), std::string::npos);
  EXPECT_NE(table.find("events"), std::string::npos);
  EXPECT_NE(table.find("count=1 sum=5 mean=5"), std::string::npos);
}

// --- spans ------------------------------------------------------------------

TEST(Obs, SpansRecordOnlyWhileTracingIsEnabled) {
  clear_spans_for_testing();
  ASSERT_FALSE(tracing_enabled());
  { const SpanGuard off("idle", "test"); }
  EXPECT_EQ(recorded_span_count(), 0u);

  set_tracing_enabled(true);
  { const SpanGuard on("work", "test", "jobs", 3); }
  set_tracing_enabled(false);
  EXPECT_EQ(recorded_span_count(), 1u);

  TraceMeta meta;
  meta.pid = 7;
  meta.process_name = "unit test";
  std::ostringstream out;
  write_trace_json(out, meta);
  const JsonValue doc = parse_json(out.str());
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  // Two process metadata records plus the one span.
  ASSERT_EQ(events->items.size(), 3u);
  EXPECT_EQ(events->items[0].find("name")->text, "process_name");
  const JsonValue& span = events->items[2];
  EXPECT_EQ(span.find("name")->text, "work");
  EXPECT_EQ(span.find("ph")->text, "X");
  EXPECT_EQ(span.find("pid")->as_u64(), 7u);
  EXPECT_EQ(span.find("ts")->number, 0.0);  // rebased to the first span
  EXPECT_EQ(span.find("args")->find("jobs")->as_u64(), 3u);
  clear_spans_for_testing();
}

TEST(Obs, TraceMergeRebasesAllProcessesToCommonZero) {
  clear_spans_for_testing();
  const std::string worker = write_temp(
      "obs_worker_trace.json",
      R"({"traceEvents": [)"
      R"({"name":"a","cat":"t","ph":"X","ts":5000.500,"dur":10.0,)"
      R"("pid":0,"tid":0},)"
      R"({"name":"b","cat":"t","ph":"X","ts":6000.000,"dur":10.0,)"
      R"("pid":1,"tid":0}]})");
  const fs::path out_path =
      fs::path(::testing::TempDir()) / "obs_trace_merged.json";
  TraceMeta parent;
  parent.pid = 2;
  parent.process_name = "coordinator";
  std::string err;
  ASSERT_TRUE(merge_trace_files(out_path.string(), {worker}, parent, &err))
      << err;

  const JsonValue doc = parse_json(slurp(out_path.string()));
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->items.size(), 4u);  // 2 meta + 2 worker events
  const JsonValue& a = events->items[2];
  const JsonValue& b = events->items[3];
  EXPECT_EQ(a.find("ts")->number, 0.0);  // earliest event becomes t=0
  EXPECT_EQ(b.find("ts")->number, 999.5);
  EXPECT_EQ(a.find("pid")->as_u64(), 0u);  // worker pids survive the merge
  EXPECT_EQ(b.find("pid")->as_u64(), 1u);
}

}  // namespace
}  // namespace diac::obs
