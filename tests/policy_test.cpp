#include <gtest/gtest.h>

#include <algorithm>

#include "diac/policy.hpp"
#include "netlist/suite.hpp"
#include "tree/tree_generator.hpp"

namespace diac {
namespace {

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::nominal_45nm();
  return l;
}

// The paper's Fig. 2 worked example: limits 25/20 mJ, structure-preserving
// merging only (the figure's semantics).
PolicyLimits fig2_limits(const TaskTree& tree) {
  PolicyLimits limits;
  limits.upper = 25.0e-3;
  limits.lower = 20.0e-3;
  limits.scale = fig2_energy_scale(tree);
  limits.structural_only = true;
  return limits;
}

TEST(Policy, Fig2Policy1SplitsOnlyF2) {
  const Netlist nl = fig2_netlist();
  const TaskTree tree = fig2_tree(nl, lib());
  const TaskTree p1 = apply_policy(tree, PolicyKind::kPolicy1, fig2_limits(tree));
  // F2 (one node) splits into three (F9, F10, F11): 9 -> 11 nodes.
  EXPECT_EQ(p1.size(), tree.size() + 2);
  // Nothing exceeds the upper limit afterwards.
  const double scale = fig2_energy_scale(tree);
  for (const TaskNode& n : p1.nodes()) {
    EXPECT_LE(scale * n.dict.energy(), 25.0e-3 * 1.001);
  }
}

TEST(Policy, Fig2Policy2MergesF5ToF8) {
  const Netlist nl = fig2_netlist();
  const TaskTree tree = fig2_tree(nl, lib());
  const TaskTree p2 = apply_policy(tree, PolicyKind::kPolicy2, fig2_limits(tree));
  // F5..F8 (identical successor sets: the output cone) merge into F13.
  // Other same-level nodes (F1, F3, F4) have distinct successor sets and
  // stay separate: 9 -> 6 nodes.
  EXPECT_EQ(p2.size(), 6u);
  // The merged node contains exactly the 12 gates of F5..F8.
  bool found_f13 = false;
  for (const TaskNode& n : p2.nodes()) {
    if (n.gates.size() == 12) found_f13 = true;
  }
  EXPECT_TRUE(found_f13);
}

TEST(Policy, Fig2Policy3DoesBoth) {
  const Netlist nl = fig2_netlist();
  const TaskTree tree = fig2_tree(nl, lib());
  const TaskTree p3 = apply_policy(tree, PolicyKind::kPolicy3, fig2_limits(tree));
  // Split F2 (+2), merge F5..F8 (-3): 9 -> 8 nodes.
  EXPECT_EQ(p3.size(), 8u);
  EXPECT_NO_THROW(p3.validate());
}

TEST(Policy, SplitPreservesGateSet) {
  const Netlist nl = build_benchmark("s208");
  const TaskTree tree = initial_tree(nl, lib());
  PolicyLimits limits;
  limits.scale = 40.0e-3 / tree.total_energy();
  limits.upper = 1.0e-3;
  limits.lower = 0.8e-3;
  const TaskTree split = split_large_nodes(tree, limits);
  // Dynamic energy is partition-invariant (gates conserved); static energy
  // legitimately shifts a little because per-node CDPs change.
  double dyn_split = 0, dyn_tree = 0;
  for (const TaskNode& n : split.nodes()) dyn_split += n.dict.dynamic_energy;
  for (const TaskNode& n : tree.nodes()) dyn_tree += n.dict.dynamic_energy;
  EXPECT_NEAR(dyn_split, dyn_tree, dyn_tree * 1e-9);
  EXPECT_NEAR(split.total_energy(), tree.total_energy(),
              tree.total_energy() * 0.02);
  std::size_t gates = 0;
  for (const TaskNode& n : split.nodes()) gates += n.gates.size();
  EXPECT_EQ(gates, nl.logic_gate_count());
}

TEST(Policy, SplitRespectsChunkCap) {
  const Netlist nl = build_benchmark("s1238");
  const TaskTree tree = initial_tree(nl, lib());
  PolicyLimits limits;
  limits.scale = 40.0e-3 / tree.total_energy();
  limits.upper = 2.0e-3;
  const TaskTree split = split_large_nodes(tree, limits);
  // Multi-gate nodes stay under the cap; single gates may exceed it
  // (cannot split below gate granularity).
  for (const TaskNode& n : split.nodes()) {
    if (n.gates.size() > 1) {
      EXPECT_LE(limits.scaled(n.dict.energy()), limits.upper * 1.01);
    }
  }
}

TEST(Policy, MergeNeverExceedsUpper) {
  const Netlist nl = build_benchmark("s953");
  const TaskTree tree = initial_tree(nl, lib());
  PolicyLimits limits;
  limits.scale = 40.0e-3 / tree.total_energy();
  limits.upper = 1.5e-3;
  limits.lower = 1.2e-3;
  const TaskTree merged = merge_small_nodes(tree, limits);
  // Merging never creates a node above the upper limit; nodes that were
  // already oversized in the input pass through unchanged (splitting them
  // is Policy1/3's job).
  const double pre_existing_max = limits.scaled(tree.max_node_energy());
  const double bound = std::max(limits.upper, pre_existing_max);
  for (const TaskNode& n : merged.nodes()) {
    EXPECT_LE(limits.scaled(n.dict.energy()), bound * 1.02) << n.label;
  }
  EXPECT_NO_THROW(merged.validate());
}

TEST(Policy, MergeCoarsensLargeTrees) {
  const Netlist nl = build_benchmark("s13207");
  const TaskTree tree = initial_tree(nl, lib());
  PolicyLimits limits;
  limits.scale = 40.0e-3 / tree.total_energy();
  limits.upper = 0.75e-3;
  limits.lower = 0.6e-3;
  const TaskTree merged = merge_small_nodes(tree, limits);
  // Thousands of cones collapse into operand-scale tasks.
  EXPECT_LT(merged.size(), tree.size() / 10);
  EXPECT_NO_THROW(merged.validate());
}

TEST(Policy, StructuralOnlyIsLessAggressive) {
  const Netlist nl = build_benchmark("s953");
  const TaskTree tree = initial_tree(nl, lib());
  PolicyLimits limits;
  limits.scale = 40.0e-3 / tree.total_energy();
  limits.upper = 1.5e-3;
  limits.lower = 1.2e-3;
  PolicyLimits structural = limits;
  structural.structural_only = true;
  const TaskTree aggressive = merge_small_nodes(tree, limits);
  const TaskTree conservative = merge_small_nodes(tree, structural);
  EXPECT_LE(aggressive.size(), conservative.size());
}

TEST(Policy, Policy3EndsWithinBand) {
  const Netlist nl = build_benchmark("s1238");
  const TaskTree tree = initial_tree(nl, lib());
  PolicyLimits limits;
  limits.scale = 40.0e-3 / tree.total_energy();
  limits.upper = 0.75e-3;
  limits.lower = 0.6e-3;
  const TaskTree p3 = apply_policy(tree, PolicyKind::kPolicy3, limits);
  // Multi-gate nodes respect the upper bound.
  for (const TaskNode& n : p3.nodes()) {
    if (n.gates.size() > 1) {
      EXPECT_LE(limits.scaled(n.dict.energy()), limits.upper * 1.01);
    }
  }
  EXPECT_NO_THROW(p3.validate());
}

TEST(Policy, Policy1GivesFinerTasksThanPolicy2) {
  const Netlist nl = build_benchmark("s820");
  const TaskTree tree = initial_tree(nl, lib());
  PolicyLimits limits;
  limits.scale = 40.0e-3 / tree.total_energy();
  limits.upper = 1.0e-3;
  limits.lower = 0.8e-3;
  const TaskTree p1 = apply_policy(tree, PolicyKind::kPolicy1, limits);
  const TaskTree p2 = apply_policy(tree, PolicyKind::kPolicy2, limits);
  // Policy1 only splits (max resiliency -> most tasks); Policy2 only
  // merges (max efficiency -> fewest tasks).
  EXPECT_GT(p1.size(), p2.size());
  const TaskTree p3 = apply_policy(tree, PolicyKind::kPolicy3, limits);
  EXPECT_LE(p3.size(), p1.size());
  EXPECT_GE(p3.size(), p2.size());
}

TEST(Policy, InvalidLimitsRejected) {
  const Netlist nl = fig2_netlist();
  const TaskTree tree = fig2_tree(nl, lib());
  PolicyLimits bad;
  bad.upper = -1;
  EXPECT_THROW(split_large_nodes(tree, bad), std::invalid_argument);
  PolicyLimits bad2;
  bad2.lower = 2.0;
  bad2.upper = 1.0;
  EXPECT_THROW(merge_small_nodes(tree, bad2), std::invalid_argument);
}

TEST(Policy, LimitsForStorageMatchesPaperRatio) {
  const Netlist nl = fig2_netlist();
  const TaskTree tree = fig2_tree(nl, lib());
  const PolicyLimits limits = limits_for_storage(tree, 25.0e-3, 40.0e-3, 0.1);
  EXPECT_NEAR(limits.upper, 2.5e-3, 1e-12);
  EXPECT_NEAR(limits.lower / limits.upper, 0.8, 1e-9);  // the 25/20 ratio
  EXPECT_NEAR(limits.scale * tree.total_energy(), 40.0e-3, 1e-9);
}

TEST(Policy, ToStringCoversAll) {
  EXPECT_STREQ(to_string(PolicyKind::kPolicy1), "Policy1");
  EXPECT_STREQ(to_string(PolicyKind::kPolicy2), "Policy2");
  EXPECT_STREQ(to_string(PolicyKind::kPolicy3), "Policy3");
}

}  // namespace
}  // namespace diac
