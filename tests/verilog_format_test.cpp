#include <gtest/gtest.h>

#include <list>

#include "diac/codegen.hpp"
#include "diac/synthesizer.hpp"
#include "netlist/logic_sim.hpp"
#include "netlist/suite.hpp"
#include "netlist/verilog_format.hpp"
#include "util/rng.hpp"

namespace diac {
namespace {

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::nominal_45nm();
  return l;
}

TEST(VerilogParse, MinimalModule) {
  const auto m = parse_structural_verilog_string(R"(
module tiny (
  input wire clk,
  input wire backup_en,
  input wire a,
  input wire b,
  output wire y
);
  wire w;
  assign w = a & b;
  assign y = ~w;
endmodule
)");
  EXPECT_EQ(m.netlist.name(), "tiny");
  EXPECT_EQ(m.netlist.inputs().size(), 2u);  // clk/backup_en dropped
  EXPECT_EQ(m.netlist.outputs().size(), 1u);
  LogicSimulator sim(m.netlist);
  sim.set_input("a", 0b11);
  sim.set_input("b", 0b01);
  sim.settle();
  EXPECT_EQ(sim.value(m.netlist.outputs()[0]) & 0x3, Word{0b10});
}

TEST(VerilogParse, AllExpressionForms) {
  const auto m = parse_structural_verilog_string(R"(
module forms (
  input wire clk,
  input wire s,
  input wire a,
  input wire b,
  output wire y
);
  wire c0; wire c1; wire nb; wire andw; wire nandw; wire orw; wire norw;
  wire xorw; wire xnorw; wire muxw; reg q;
  assign c0 = 1'b0;
  assign c1 = 1'b1;
  assign nb = ~a;
  assign andw = a & b & c1;
  assign nandw = ~(a & b);
  assign orw = a | b | c0;
  assign norw = ~(a | b);
  assign xorw = a ^ b;
  assign xnorw = ~(a ^ b);
  assign muxw = s ? a : b;
  always @(posedge clk) q <= xorw;
  assign y = muxw ^ q;
endmodule
)");
  LogicSimulator sim(m.netlist);
  // Truth spot-checks, lane-wise: s=0 selects b; s=1 selects a.
  sim.set_input("s", 0b10);
  sim.set_input("a", 0b11);
  sim.set_input("b", 0b00);
  sim.settle();
  EXPECT_EQ(sim.value("muxw") & 0x3, Word{0b10});
  EXPECT_EQ(sim.value("andw") & 0x3, Word{0b00});   // a & b & 1
  EXPECT_EQ(sim.value("nandw") & 0x3, Word{0b11});  // ~(a & b)
  EXPECT_EQ(sim.value("orw") & 0x3, Word{0b11});    // a | b | 0
  EXPECT_EQ(sim.value("xnorw") & 0x3, Word{0b00});  // ~(a ^ b), a=11 b=00
}

TEST(VerilogParse, RecordsInstances) {
  const auto m = parse_structural_verilog_string(R"(
module withnv (
  input wire clk,
  input wire backup_en,
  input wire a,
  output wire y
);
  wire w;
  assign w = ~a;
  diac_nvreg nv_0 (.clk(clk), .en(backup_en), .d(w));
  assign y = w;
endmodule
)");
  ASSERT_EQ(m.instances.size(), 1u);
  EXPECT_EQ(m.instances[0].cell, "diac_nvreg");
  ASSERT_EQ(m.instances[0].pins.size(), 3u);
  EXPECT_EQ(m.instances[0].pins[2].first, "d");
  EXPECT_EQ(m.instances[0].pins[2].second, "w");
}

TEST(VerilogParse, RejectsGarbage) {
  EXPECT_THROW(parse_structural_verilog_string("not verilog at all"),
               std::runtime_error);
  EXPECT_THROW(parse_structural_verilog_string(
                   "module m (input wire a, output wire y);\n"
                   "initial begin y = a; end\nendmodule\n"),
               std::runtime_error);
}

// The integration property: generated Verilog is functionally identical
// to the source netlist.
class CodegenRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(CodegenRoundTrip, EmittedVerilogMatchesNetlist) {
  static std::list<Netlist> cache;
  cache.push_back(build_benchmark(GetParam()));
  const Netlist& original = cache.back();
  DiacSynthesizer synth(original, lib());
  const auto r = synth.synthesize();
  const auto m = parse_structural_verilog_string(generate_verilog(r.design));
  const Netlist& reparsed = m.netlist;

  ASSERT_EQ(reparsed.inputs().size(), original.inputs().size());
  ASSERT_EQ(reparsed.outputs().size(), original.outputs().size());
  ASSERT_EQ(reparsed.dffs().size(), original.dffs().size());
  // Commit points materialize as diac_nvreg shadow instances.
  EXPECT_FALSE(m.instances.empty());

  LogicSimulator sa(original), sb(reparsed);
  SplitMix64 rng(0xC0DE);
  for (int cycle = 0; cycle < 6; ++cycle) {
    for (std::size_t i = 0; i < original.inputs().size(); ++i) {
      const Word w = rng.next();
      sa.set_input(original.inputs()[i], w);
      sb.set_input(reparsed.inputs()[i], w);  // port order preserved
    }
    sa.step();
    sb.step();
    sa.settle();
    sb.settle();
    for (std::size_t i = 0; i < original.outputs().size(); ++i) {
      ASSERT_EQ(sb.value(reparsed.outputs()[i]), sa.value(original.outputs()[i]))
          << GetParam() << " cycle " << cycle << " output " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Suite, CodegenRoundTrip,
                         ::testing::Values("s27", "s208", "s344", "s382",
                                           "b02", "b09", "b10", "sbc"),
                         [](const auto& inf) { return inf.param; });

}  // namespace
}  // namespace diac
