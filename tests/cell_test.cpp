#include <gtest/gtest.h>

#include "cell/cell_library.hpp"
#include "cell/nvm_model.hpp"
#include "util/units.hpp"

namespace diac {
namespace {

// --- cell library ------------------------------------------------------------

TEST(CellLibrary, PseudoCellsAreFree) {
  const CellLibrary lib = CellLibrary::nominal_45nm();
  for (GateKind k : {GateKind::kInput, GateKind::kOutput, GateKind::kConst0,
                     GateKind::kConst1}) {
    EXPECT_TRUE(is_pseudo(k));
    EXPECT_FALSE(is_logic(k));
    EXPECT_DOUBLE_EQ(lib.delay(k, 0), 0.0);
    EXPECT_DOUBLE_EQ(lib.dynamic_power(k, 0), 0.0);
    EXPECT_DOUBLE_EQ(lib.static_power(k, 0), 0.0);
  }
}

TEST(CellLibrary, LogicCellsHavePositiveCosts) {
  const CellLibrary lib = CellLibrary::nominal_45nm();
  for (GateKind k : {GateKind::kBuf, GateKind::kNot, GateKind::kAnd,
                     GateKind::kNand, GateKind::kOr, GateKind::kNor,
                     GateKind::kXor, GateKind::kXnor, GateKind::kMux,
                     GateKind::kDff}) {
    EXPECT_TRUE(is_logic(k)) << to_string(k);
    EXPECT_GT(lib.delay(k, 2), 0.0) << to_string(k);
    EXPECT_GT(lib.dynamic_power(k, 2), 0.0) << to_string(k);
    EXPECT_GT(lib.static_power(k, 2), 0.0) << to_string(k);
    EXPECT_GT(lib.area(k, 2), 0.0) << to_string(k);
  }
}

TEST(CellLibrary, DffIsSequentialOnly) {
  EXPECT_TRUE(is_logic(GateKind::kDff));
  EXPECT_FALSE(is_combinational(GateKind::kDff));
  EXPECT_TRUE(is_combinational(GateKind::kNand));
}

TEST(CellLibrary, FaninDerating) {
  const CellLibrary lib = CellLibrary::nominal_45nm();
  // Fan-in <= 2 is nominal.
  EXPECT_DOUBLE_EQ(lib.derate(1), 1.0);
  EXPECT_DOUBLE_EQ(lib.derate(2), 1.0);
  // Wider gates are slower and hungrier, monotonically.
  EXPECT_GT(lib.delay(GateKind::kNand, 4), lib.delay(GateKind::kNand, 2));
  EXPECT_GT(lib.delay(GateKind::kNand, 6), lib.delay(GateKind::kNand, 4));
  EXPECT_GT(lib.dynamic_power(GateKind::kNor, 3),
            lib.dynamic_power(GateKind::kNor, 2));
}

TEST(CellLibrary, SwitchingEnergyUsesDoubledDelay) {
  // The paper's model: E ~= 2 * delay * dynamic_power.
  const CellLibrary lib = CellLibrary::nominal_45nm();
  const double expected = 2.0 * lib.delay(GateKind::kXor, 2) *
                          lib.dynamic_power(GateKind::kXor, 2);
  EXPECT_DOUBLE_EQ(lib.switching_energy(GateKind::kXor, 2), expected);
}

TEST(CellLibrary, SwitchingEnergiesAreFemtojouleScale) {
  // 45 nm standard cells switch at the fJ scale.
  const CellLibrary lib = CellLibrary::nominal_45nm();
  for (GateKind k : {GateKind::kNot, GateKind::kNand, GateKind::kXor}) {
    const double e = lib.switching_energy(k, 2);
    EXPECT_GT(e, 0.1 * units::fJ) << to_string(k);
    EXPECT_LT(e, 100.0 * units::fJ) << to_string(k);
  }
}

TEST(CellLibrary, RelativeCellCostsAreSane) {
  const CellLibrary lib = CellLibrary::nominal_45nm();
  // Inverter is the fastest cell; XOR is slower than NAND; DFF is the
  // largest and slowest.
  EXPECT_LT(lib.delay(GateKind::kNot, 1), lib.delay(GateKind::kNand, 2));
  EXPECT_LT(lib.delay(GateKind::kNand, 2), lib.delay(GateKind::kXor, 2));
  EXPECT_GT(lib.delay(GateKind::kDff, 1), lib.delay(GateKind::kXor, 2));
  EXPECT_GT(lib.area(GateKind::kDff, 1), lib.area(GateKind::kNand, 2));
}

TEST(CellLibrary, SetBaseOverrides) {
  CellLibrary lib = CellLibrary::nominal_45nm();
  CellParams p{1e-9, 2e-3, 3e-9, 4e-12};
  lib.set_base(GateKind::kNand, p);
  EXPECT_DOUBLE_EQ(lib.delay(GateKind::kNand, 2), 1e-9);
  EXPECT_DOUBLE_EQ(lib.dynamic_power(GateKind::kNand, 2), 2e-3);
}

TEST(CellLibrary, ToStringCoversAllKinds) {
  for (int i = 0; i < kGateKindCount; ++i) {
    EXPECT_STRNE(to_string(static_cast<GateKind>(i)), "?");
  }
}

// --- NVM models ----------------------------------------------------------

TEST(NvmModel, ReramWritesCost4p4xMram) {
  // The exact ratio quoted in SIV.C.
  const auto mram = nvm_parameters(NvmTechnology::kMram);
  const auto reram = nvm_parameters(NvmTechnology::kReram);
  EXPECT_NEAR(reram.write_energy_per_bit / mram.write_energy_per_bit, 4.4,
              1e-9);
}

TEST(NvmModel, WriteCostsExceedReadCosts) {
  for (int i = 0; i < kNvmTechnologyCount; ++i) {
    const auto p = nvm_parameters(static_cast<NvmTechnology>(i));
    EXPECT_GT(p.write_energy_per_bit, p.read_energy_per_bit)
        << to_string(p.technology);
    EXPECT_GE(p.write_latency, p.read_latency) << to_string(p.technology);
  }
}

TEST(NvmModel, EnergyScalesLinearlyInBits) {
  const auto p = nvm_parameters(NvmTechnology::kMram);
  EXPECT_DOUBLE_EQ(p.write_energy(10), 10 * p.write_energy_per_bit);
  EXPECT_DOUBLE_EQ(p.read_energy(7), 7 * p.read_energy_per_bit);
}

TEST(NvmModel, TimeIsWordSerial) {
  const auto p = nvm_parameters(NvmTechnology::kMram);
  // 1..32 bits: one word; 33: two words.
  EXPECT_DOUBLE_EQ(p.write_time(1), p.write_latency);
  EXPECT_DOUBLE_EQ(p.write_time(32), p.write_latency);
  EXPECT_DOUBLE_EQ(p.write_time(33), 2 * p.write_latency);
  EXPECT_DOUBLE_EQ(p.write_time(0), 0.0);
}

TEST(NvmModel, PcmIsTheMostExpensiveWrite) {
  const auto pcm = nvm_parameters(NvmTechnology::kPcm);
  for (auto t : {NvmTechnology::kMram, NvmTechnology::kReram,
                 NvmTechnology::kFeram}) {
    EXPECT_GT(pcm.write_energy_per_bit, nvm_parameters(t).write_energy_per_bit);
  }
}

TEST(NvmModel, NvFlipFlopStoreCostsMoreThanRecall) {
  for (int i = 0; i < kNvmTechnologyCount; ++i) {
    const auto ff = nv_flip_flop(static_cast<NvmTechnology>(i));
    EXPECT_GT(ff.store_energy(), ff.recall_energy());
    EXPECT_GT(ff.store_energy(), 0.0);
  }
}

TEST(NvmModel, LeFfStoreIncludesLogicSettle) {
  const auto leff = logic_embedded_flip_flop(NvmTechnology::kMram);
  const auto ff = nv_flip_flop(NvmTechnology::kMram);
  EXPECT_GT(leff.store_time(), ff.store_time());
}

TEST(NvmModel, ToStringCoversAllTechnologies) {
  for (int i = 0; i < kNvmTechnologyCount; ++i) {
    EXPECT_STRNE(to_string(static_cast<NvmTechnology>(i)), "?");
  }
}

TEST(NvmModel, StandbyPowerIsNearZero) {
  // Non-volatility: retention must be essentially free (paper SI).
  for (int i = 0; i < kNvmTechnologyCount; ++i) {
    const auto p = nvm_parameters(static_cast<NvmTechnology>(i));
    EXPECT_LT(p.standby_power_per_bit, 1.0 * units::nW);
  }
}

}  // namespace
}  // namespace diac
