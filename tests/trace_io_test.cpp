#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "diac/synthesizer.hpp"
#include "netlist/suite.hpp"
#include "power/trace_io.hpp"
#include "runtime/simulator.hpp"

namespace diac {
namespace {

TEST(TraceIo, ParsesTwoColumnCsv) {
  std::istringstream in("0,0.001\n10,0.005\n20,0\n");
  const PiecewiseTrace trace = parse_trace_csv(in);
  EXPECT_DOUBLE_EQ(trace.power_at(5), 0.001);
  EXPECT_DOUBLE_EQ(trace.power_at(15), 0.005);
  EXPECT_DOUBLE_EQ(trace.power_at(25), 0.0);
}

TEST(TraceIo, ToleratesHeaderAndComments) {
  std::istringstream in(
      "time_s,power_W\n# measured on rooftop\n\n0,0.002\n5,0.004\n");
  const PiecewiseTrace trace = parse_trace_csv(in);
  EXPECT_DOUBLE_EQ(trace.power_at(1), 0.002);
  EXPECT_DOUBLE_EQ(trace.power_at(6), 0.004);
}

TEST(TraceIo, RejectsBadInput) {
  std::istringstream empty("");
  EXPECT_THROW(parse_trace_csv(empty), std::runtime_error);
  std::istringstream one_col("0\n");
  EXPECT_THROW(parse_trace_csv(one_col), std::runtime_error);
  std::istringstream descending("10,0.001\n5,0.002\n");
  EXPECT_THROW(parse_trace_csv(descending), std::runtime_error);
  std::istringstream negative("0,-0.5\n");
  EXPECT_THROW(parse_trace_csv(negative), std::runtime_error);
  std::istringstream mid_garbage("0,0.001\nxx,yy\n");
  EXPECT_THROW(parse_trace_csv(mid_garbage), std::runtime_error);
}

TEST(TraceIo, DuplicateTimestampLastSampleWins) {
  // A logger emitting the same timestamp twice used to create a
  // zero-width segment whose earlier sample was unreachable; the later
  // sample now replaces it outright.
  std::istringstream in("0,0.001\n5,0.002\n5,0.003\n10,0\n");
  const PiecewiseTrace trace = parse_trace_csv(in);
  ASSERT_EQ(trace.segments().size(), 3u);
  EXPECT_DOUBLE_EQ(trace.power_at(2), 0.001);
  EXPECT_DOUBLE_EQ(trace.power_at(5), 0.003);
  EXPECT_DOUBLE_EQ(trace.power_at(7), 0.003);
  EXPECT_DOUBLE_EQ(trace.next_change(5), 10.0);

  // Also collapses a duplicate of the very first sample.
  std::istringstream first("0,0.001\n0,0.004\n8,0\n");
  const PiecewiseTrace t2 = parse_trace_csv(first);
  ASSERT_EQ(t2.segments().size(), 2u);
  EXPECT_DOUBLE_EQ(t2.power_at(1), 0.004);
}

TEST(TraceIo, ToleratesExactlyOneHeaderRow) {
  // One header row is fine (with or without leading comments/blanks)...
  std::istringstream one("# log\n\ntime_s,power_W\n0,0.001\n");
  EXPECT_DOUBLE_EQ(parse_trace_csv(one).power_at(0.5), 0.001);
  // ...but a second non-numeric row before the first sample is a
  // malformed file, not a header, and is reported with its line number.
  std::istringstream two("time_s,power_W\ngarbage,row\n0,0.001\n");
  try {
    parse_trace_csv(two);
    FAIL() << "expected parse failure";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(TraceIo, SaveUsesIndexBasedSampleGrid) {
  // `t += interval` accumulated drift over long horizons and could emit
  // or drop the sample nearest `horizon`; the index-based grid pins the
  // count at ceil(horizon / interval) and every timestamp at i*interval.
  const std::string path = ::testing::TempDir() + "diac_trace_grid.csv";
  const ConstantSource src(1e-3);
  save_trace_csv(path, src, 1000.0, 0.1);
  const PiecewiseTrace loaded = load_trace_csv(path);
  ASSERT_EQ(loaded.segments().size(), 10000u);
  EXPECT_DOUBLE_EQ(loaded.segments().front().start, 0.0);
  EXPECT_DOUBLE_EQ(loaded.segments().back().start, 9999 * 0.1);
  for (std::size_t i : {1u, 4321u, 9999u}) {
    EXPECT_DOUBLE_EQ(loaded.segments()[i].start,
                     static_cast<double>(i) * 0.1);
  }
  std::remove(path.c_str());
}

TEST(TraceIo, RoundTripReproducesSourcesOnTheGrid) {
  // save -> load of each paper supply reproduces power_at bit-exactly on
  // the sample grid (samples are written at full double precision).
  const std::string path = ::testing::TempDir() + "diac_trace_grid_rt.csv";
  const double horizon = 400.0, interval = 0.5;
  RfidBurstSource::Options ro;
  ro.horizon = horizon;
  const RfidBurstSource rfid(0xFEED, ro);
  SolarSource::Options so;
  so.horizon = horizon;
  const SolarSource solar(0xFEED, so);
  const PiecewiseTrace fig4 = fig4_trace();
  for (const HarvestSource* src :
       {static_cast<const HarvestSource*>(&rfid),
        static_cast<const HarvestSource*>(&solar),
        static_cast<const HarvestSource*>(&fig4)}) {
    save_trace_csv(path, *src, horizon, interval);
    const PiecewiseTrace loaded = load_trace_csv(path);
    for (int i = 0; i * interval < horizon; ++i) {
      const double t = i * interval;
      EXPECT_DOUBLE_EQ(loaded.power_at(t), src->power_at(t)) << t;
    }
  }
  std::remove(path.c_str());
}

TEST(TraceIo, ReplayedTraceAgreesAcrossSimModes) {
  // A replayed measured trace drives the event-driven and the stepped
  // engine to the same structural outcome — the differential contract
  // extends to traces that came in from disk.
  const std::string path = ::testing::TempDir() + "diac_trace_modes.csv";
  {
    RfidBurstSource::Options ro;
    ro.horizon = 4000.0;
    const RfidBurstSource src(0xD1AC7, ro);
    save_trace_csv(path, src, 4000.0, 0.5);
  }
  const PiecewiseTrace trace = load_trace_csv(path);
  std::remove(path.c_str());

  const Netlist nl = build_benchmark("s344");
  const CellLibrary lib = CellLibrary::nominal_45nm();
  const SynthesisResult sr =
      DiacSynthesizer(nl, lib).synthesize_scheme(Scheme::kDiacOptimized);
  SimulatorOptions options;
  options.target_instances = 3;
  options.max_time = 4000;
  options.mode = SimMode::kEventDriven;
  SystemSimulator event(sr.design, trace, FsmConfig{}, options);
  const RunStats e = event.run();
  options.mode = SimMode::kStepped;
  SystemSimulator stepped(sr.design, trace, FsmConfig{}, options);
  const RunStats s = stepped.run();

  EXPECT_EQ(e.instances_completed, s.instances_completed);
  EXPECT_EQ(e.workload_completed, s.workload_completed);
  EXPECT_EQ(e.backups, s.backups);
  EXPECT_EQ(e.restores, s.restores);
  EXPECT_EQ(e.deep_outages, s.deep_outages);
  EXPECT_EQ(e.safe_zone_saves, s.safe_zone_saves);
  EXPECT_NEAR(e.energy_consumed, s.energy_consumed,
              0.01 * s.energy_consumed);
  EXPECT_NEAR(e.makespan, s.makespan, 0.01 * s.makespan + 0.01);
}

TEST(TraceIo, SaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "diac_trace_rt.csv";
  const SquareWaveSource src(4e-3, 10.0, 0.5);
  save_trace_csv(path, src, 40.0, 0.5);
  const PiecewiseTrace loaded = load_trace_csv(path);
  // The sampled trace matches the source away from the sampling edges.
  for (double t = 0.3; t < 39; t += 1.0) {
    EXPECT_DOUBLE_EQ(loaded.power_at(t), src.power_at(t - std::fmod(t, 0.5)))
        << t;
  }
  std::remove(path.c_str());
}

TEST(TraceIo, SaveValidatesArguments) {
  const ConstantSource src(1e-3);
  EXPECT_THROW(save_trace_csv("/tmp/x.csv", src, -1, 1), std::invalid_argument);
  EXPECT_THROW(save_trace_csv("/tmp/x.csv", src, 1, 0), std::invalid_argument);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(load_trace_csv("/nonexistent/trace.csv"), std::runtime_error);
}

TEST(TraceIo, LoadedTraceDrivesSimulator) {
  // End-to-end: a loaded trace is a first-class harvest source.
  const std::string path = ::testing::TempDir() + "diac_trace_sim.csv";
  {
    const ConstantSource src(6e-3);
    save_trace_csv(path, src, 500.0, 1.0);
  }
  const PiecewiseTrace trace = load_trace_csv(path);
  EXPECT_DOUBLE_EQ(trace.power_at(100), 6e-3);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace diac
