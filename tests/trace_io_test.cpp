#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <sstream>

#include "power/trace_io.hpp"

namespace diac {
namespace {

TEST(TraceIo, ParsesTwoColumnCsv) {
  std::istringstream in("0,0.001\n10,0.005\n20,0\n");
  const PiecewiseTrace trace = parse_trace_csv(in);
  EXPECT_DOUBLE_EQ(trace.power_at(5), 0.001);
  EXPECT_DOUBLE_EQ(trace.power_at(15), 0.005);
  EXPECT_DOUBLE_EQ(trace.power_at(25), 0.0);
}

TEST(TraceIo, ToleratesHeaderAndComments) {
  std::istringstream in(
      "time_s,power_W\n# measured on rooftop\n\n0,0.002\n5,0.004\n");
  const PiecewiseTrace trace = parse_trace_csv(in);
  EXPECT_DOUBLE_EQ(trace.power_at(1), 0.002);
  EXPECT_DOUBLE_EQ(trace.power_at(6), 0.004);
}

TEST(TraceIo, RejectsBadInput) {
  std::istringstream empty("");
  EXPECT_THROW(parse_trace_csv(empty), std::runtime_error);
  std::istringstream one_col("0\n");
  EXPECT_THROW(parse_trace_csv(one_col), std::runtime_error);
  std::istringstream descending("10,0.001\n5,0.002\n");
  EXPECT_THROW(parse_trace_csv(descending), std::runtime_error);
  std::istringstream negative("0,-0.5\n");
  EXPECT_THROW(parse_trace_csv(negative), std::runtime_error);
  std::istringstream mid_garbage("0,0.001\nxx,yy\n");
  EXPECT_THROW(parse_trace_csv(mid_garbage), std::runtime_error);
}

TEST(TraceIo, SaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "diac_trace_rt.csv";
  const SquareWaveSource src(4e-3, 10.0, 0.5);
  save_trace_csv(path, src, 40.0, 0.5);
  const PiecewiseTrace loaded = load_trace_csv(path);
  // The sampled trace matches the source away from the sampling edges.
  for (double t = 0.3; t < 39; t += 1.0) {
    EXPECT_DOUBLE_EQ(loaded.power_at(t), src.power_at(t - std::fmod(t, 0.5)))
        << t;
  }
  std::remove(path.c_str());
}

TEST(TraceIo, SaveValidatesArguments) {
  const ConstantSource src(1e-3);
  EXPECT_THROW(save_trace_csv("/tmp/x.csv", src, -1, 1), std::invalid_argument);
  EXPECT_THROW(save_trace_csv("/tmp/x.csv", src, 1, 0), std::invalid_argument);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(load_trace_csv("/nonexistent/trace.csv"), std::runtime_error);
}

TEST(TraceIo, LoadedTraceDrivesSimulator) {
  // End-to-end: a loaded trace is a first-class harvest source.
  const std::string path = ::testing::TempDir() + "diac_trace_sim.csv";
  {
    const ConstantSource src(6e-3);
    save_trace_csv(path, src, 500.0, 1.0);
  }
  const PiecewiseTrace trace = load_trace_csv(path);
  EXPECT_DOUBLE_EQ(trace.power_at(100), 6e-3);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace diac
