// The design-space search subsystem: NaN-safe dominance, ParetoFront
// edge cases (exact ties, undefined objectives, single candidates),
// candidate-space enumeration/sampling, objective semantics, and the
// SearchEngine's headline contracts — bit-identical fronts at any runner
// thread count, every front member verifiably non-dominated by an
// exhaustive re-check, and provably sound synthesis-time pruning.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "netlist/suite.hpp"
#include "search/engine.hpp"

namespace diac {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::nominal_45nm();
  return l;
}

const Netlist& s344() {
  static const Netlist nl = build_benchmark("s344");
  return nl;
}

// ---------------------------------------------------------------------------
// Comparators.
// ---------------------------------------------------------------------------

TEST(Pareto, CompareCostIsNanSafeAndTotal) {
  EXPECT_EQ(compare_cost(1.0, 2.0), -1);
  EXPECT_EQ(compare_cost(2.0, 1.0), 1);
  EXPECT_EQ(compare_cost(1.0, 1.0), 0);
  EXPECT_EQ(compare_cost(0.0, -0.0), 0);
  // NaN is worse than every number and equal to itself.
  EXPECT_EQ(compare_cost(kNan, 1.0e300), 1);
  EXPECT_EQ(compare_cost(-1.0e300, kNan), -1);
  EXPECT_EQ(compare_cost(kNan, kNan), 0);
}

TEST(Pareto, DominanceRequiresStrictImprovement) {
  EXPECT_TRUE(dominates({1.0, 2.0}, {1.0, 3.0}));
  EXPECT_TRUE(dominates({0.5, 3.0}, {1.0, 3.0}));
  EXPECT_FALSE(dominates({1.0, 3.0}, {1.0, 3.0}));  // exact tie
  EXPECT_FALSE(dominates({0.5, 4.0}, {1.0, 3.0}));  // incomparable
  EXPECT_FALSE(dominates({1.0, 3.0}, {0.5, 3.0}));
  // A defined vector dominates an all-NaN one; NaN never dominates.
  EXPECT_TRUE(dominates({1.0, kNan}, {kNan, kNan}));
  EXPECT_FALSE(dominates({kNan, kNan}, {1.0, kNan}));
  EXPECT_THROW(dominates({1.0}, {1.0, 2.0}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// ParetoFront.
// ---------------------------------------------------------------------------

TEST(Pareto, FrontKeepsIncomparableAndDropsDominated) {
  ParetoFront front(2);
  EXPECT_TRUE(front.insert(0, {1.0, 5.0}));
  EXPECT_TRUE(front.insert(1, {2.0, 4.0}));   // incomparable: both stay
  EXPECT_FALSE(front.insert(2, {2.0, 5.0}));  // dominated by both
  ASSERT_EQ(front.size(), 2u);
  // A new dominator sweeps the dominated members out.
  EXPECT_TRUE(front.insert(3, {1.0, 4.0}));
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front.entries()[0].candidate, 3u);
}

TEST(Pareto, ExactTieKeepsLowestCandidateEitherInsertionOrder) {
  ParetoFront a(2);
  EXPECT_TRUE(a.insert(3, {1.0, 2.0}));
  EXPECT_FALSE(a.insert(7, {1.0, 2.0}));  // later tie: rejected
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a.entries()[0].candidate, 3u);

  ParetoFront b(2);
  EXPECT_TRUE(b.insert(7, {1.0, 2.0}));
  EXPECT_TRUE(b.insert(3, {1.0, 2.0}));  // earlier index replaces
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b.entries()[0].candidate, 3u);
}

TEST(Pareto, NanObjectivesNeverDominateButCanSurviveAlone) {
  ParetoFront front(2);
  EXPECT_TRUE(front.insert(0, {kNan, kNan}));  // sole member: survives
  ASSERT_EQ(front.size(), 1u);
  // Any defined vector dominates the all-NaN entry.
  EXPECT_TRUE(front.insert(1, {5.0, kNan}));
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front.entries()[0].candidate, 1u);
  EXPECT_FALSE(front.insert(2, {kNan, kNan}));
  EXPECT_TRUE(front.dominated({kNan, kNan}));
  // Ties between NaNs compare equal: {5.0, NaN} vs {7.0, NaN}.
  EXPECT_FALSE(front.insert(3, {7.0, kNan}));
}

TEST(Pareto, ArityIsEnforced) {
  EXPECT_THROW(ParetoFront(0), std::invalid_argument);
  ParetoFront front(2);
  EXPECT_THROW(front.insert(0, {1.0}), std::invalid_argument);
  EXPECT_THROW(front.dominated({1.0, 2.0, 3.0}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// CandidateSpace.
// ---------------------------------------------------------------------------

TEST(CandidateSpace, GridEnumeratesTheFullCrossProduct) {
  const CandidateSpace space;
  EXPECT_EQ(space.size(), 3u * 3u * 4u * 1u * 2u);
  const std::vector<DesignPoint> grid = space.grid();
  ASSERT_EQ(grid.size(), space.size());
  std::set<std::string> labels;
  for (const DesignPoint& p : grid) labels.insert(p.label());
  EXPECT_EQ(labels.size(), grid.size());  // all distinct
  // Mixed-radix order: adaptive_sensing is the fastest axis.
  EXPECT_FALSE(grid[0].adaptive_sensing);
  EXPECT_TRUE(grid[1].adaptive_sensing);
  EXPECT_EQ(grid[0].policy, grid[1].policy);
  EXPECT_THROW(space.at(space.size()), std::out_of_range);
}

TEST(CandidateSpace, EmptyAxisThrows) {
  CandidateSpace space;
  space.schemes.clear();
  EXPECT_THROW(space.size(), std::invalid_argument);
}

TEST(CandidateSpace, SampleIsDeterministicDistinctAndCanonicallyOrdered) {
  const CandidateSpace space;
  const auto a = space.sample(10, 42);
  const auto b = space.sample(10, 42);
  ASSERT_EQ(a.size(), 10u);
  std::set<std::string> labels;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label(), b[i].label());  // same seed -> same subset
    labels.insert(a[i].label());
  }
  EXPECT_EQ(labels.size(), a.size());  // distinct candidates
  // Oversampling degrades to the full grid.
  EXPECT_EQ(space.sample(10'000, 7).size(), space.size());
}

TEST(CandidateSpace, SingleCandidateSpace) {
  CandidateSpace space;
  space.policies = {PolicyKind::kPolicy2};
  space.budget_fractions = {0.25};
  space.technologies = {NvmTechnology::kReram};
  space.schemes = {Scheme::kDiac};
  space.adaptive_sensing = {false};
  EXPECT_EQ(space.size(), 1u);
  const auto grid = space.grid();
  ASSERT_EQ(grid.size(), 1u);
  EXPECT_EQ(grid[0].policy, PolicyKind::kPolicy2);
  EXPECT_EQ(grid[0].technology, NvmTechnology::kReram);
}

// ---------------------------------------------------------------------------
// Objectives.
// ---------------------------------------------------------------------------

TEST(Objectives, ParseAcceptsKnownNamesAndRejectsJunk) {
  const SearchObjectives o = SearchObjectives::parse("pdp,progress,writes");
  ASSERT_EQ(o.size(), 3u);
  EXPECT_EQ(o.kinds[0], ObjectiveKind::kPdp);
  EXPECT_EQ(o.kinds[2], ObjectiveKind::kNvmWrites);
  EXPECT_THROW(SearchObjectives::parse("pdp,bogus"), std::invalid_argument);
  EXPECT_THROW(SearchObjectives::parse("pdp,pdp"), std::invalid_argument);
  EXPECT_THROW(SearchObjectives::parse(""), std::invalid_argument);
  EXPECT_THROW(SearchObjectives::parse(",,"), std::invalid_argument);
}

TEST(Objectives, NeverCompletedWorkloadsYieldNan) {
  RunStats stats;  // zero instances, never completed
  EXPECT_TRUE(std::isnan(objective_cost(ObjectiveKind::kPdp, stats)));
  EXPECT_TRUE(std::isnan(objective_cost(ObjectiveKind::kMakespan, stats)));
  EXPECT_EQ(objective_cost(ObjectiveKind::kProgress, stats), 0.0);
  stats.instances_completed = 2;
  stats.energy_consumed = 10.0e-3;
  stats.makespan = 100.0;
  EXPECT_GT(objective_cost(ObjectiveKind::kPdp, stats), 0.0);
  EXPECT_TRUE(std::isnan(objective_cost(ObjectiveKind::kMakespan, stats)));
  stats.workload_completed = true;
  EXPECT_EQ(objective_cost(ObjectiveKind::kMakespan, stats), 100.0);
  // Maximized objectives are negated into costs and restored for display.
  stats.tasks_executed = 100;
  stats.tasks_reexecuted = 10;
  const double progress = objective_cost(ObjectiveKind::kProgress, stats);
  EXPECT_DOUBLE_EQ(progress, -0.9);
  EXPECT_DOUBLE_EQ(objective_display(ObjectiveKind::kProgress, progress), 0.9);
}

// ---------------------------------------------------------------------------
// SearchEngine.
// ---------------------------------------------------------------------------

SearchOptions small_search_options() {
  SearchOptions options;
  options.scenario.seed = 0xD5E;
  options.simulator.target_instances = 3;
  options.simulator.max_time = 15000;
  return options;
}

CandidateSpace small_space() {
  CandidateSpace space;
  space.budget_fractions = {0.10, 0.50};
  space.technologies = {NvmTechnology::kMram, NvmTechnology::kFeram};
  space.adaptive_sensing = {false};
  return space;  // 3 x 2 x 2 x 1 x 1 = 12 candidates
}

void expect_identical(const SearchResult& a, const SearchResult& b) {
  ASSERT_EQ(a.candidates.size(), b.candidates.size());
  EXPECT_EQ(a.evaluated, b.evaluated);
  EXPECT_EQ(a.pruned, b.pruned);
  ASSERT_EQ(a.front, b.front);
  for (std::size_t i = 0; i < a.candidates.size(); ++i) {
    const CandidateResult& ca = a.candidates[i];
    const CandidateResult& cb = b.candidates[i];
    EXPECT_EQ(ca.pruned, cb.pruned) << "candidate " << i;
    ASSERT_EQ(ca.costs.size(), cb.costs.size()) << "candidate " << i;
    for (std::size_t k = 0; k < ca.costs.size(); ++k) {
      // Bit-identical, including NaN payload positions.
      EXPECT_EQ(compare_cost(ca.costs[k], cb.costs[k]), 0)
          << "candidate " << i << " objective " << k;
      if (!std::isnan(ca.costs[k])) {
        EXPECT_EQ(ca.costs[k], cb.costs[k])
            << "candidate " << i << " objective " << k;
      }
    }
    EXPECT_EQ(ca.stats.makespan, cb.stats.makespan) << "candidate " << i;
    EXPECT_EQ(ca.stats.energy_consumed, cb.stats.energy_consumed)
        << "candidate " << i;
    EXPECT_EQ(ca.stats.nvm_writes, cb.stats.nvm_writes) << "candidate " << i;
  }
}

TEST(SearchEngine, FrontIsBitIdenticalAtOneAndEightThreads) {
  const SearchOptions options = small_search_options();
  const std::vector<DesignPoint> points = small_space().grid();
  ExperimentRunner serial(1);
  ExperimentRunner pool(8);
  const SearchResult a = run_search(s344(), lib(), points, options, serial);
  const SearchResult b = run_search(s344(), lib(), points, options, pool);
  expect_identical(a, b);
  EXPECT_FALSE(a.front.empty());
}

TEST(SearchEngine, FrontMembersSurviveExhaustiveNonDominationRecheck) {
  SearchOptions options = small_search_options();
  const std::vector<DesignPoint> points = small_space().grid();
  ExperimentRunner runner(1);
  const SearchResult with = run_search(s344(), lib(), points, options, runner);
  options.prune = false;
  const SearchResult without =
      run_search(s344(), lib(), points, options, runner);

  // Pruning is provably sound: the exhaustive search yields the same
  // front, same costs.
  ASSERT_EQ(with.front, without.front);
  EXPECT_EQ(without.pruned, 0u);
  EXPECT_EQ(without.evaluated, points.size());

  // Exhaustive re-check: no evaluated candidate dominates a front member,
  // and every non-front candidate is dominated or exactly tied.
  const std::set<std::size_t> on_front(without.front.begin(),
                                       without.front.end());
  for (std::size_t f : without.front) {
    const auto& front_costs = without.candidates[f].costs;
    for (std::size_t i = 0; i < without.candidates.size(); ++i) {
      EXPECT_FALSE(dominates(without.candidates[i].costs, front_costs))
          << "candidate " << i << " dominates front member " << f;
    }
  }
  for (std::size_t i = 0; i < without.candidates.size(); ++i) {
    if (on_front.count(i) != 0) continue;
    bool covered = false;
    for (std::size_t f : without.front) {
      const auto& fc = without.candidates[f].costs;
      bool tie = fc.size() == without.candidates[i].costs.size();
      for (std::size_t k = 0; tie && k < fc.size(); ++k) {
        tie = compare_cost(fc[k], without.candidates[i].costs[k]) == 0;
      }
      if (tie || dominates(fc, without.candidates[i].costs)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "candidate " << i
                         << " is non-dominated but missing from the front";
  }

  // The pruning bound really is a floor: optimistic <= evaluated costs
  // component-wise on every candidate.
  for (const CandidateResult& c : without.candidates) {
    ASSERT_EQ(c.optimistic.size(), c.costs.size());
    for (std::size_t k = 0; k < c.costs.size(); ++k) {
      EXPECT_LE(compare_cost(c.optimistic[k], c.costs[k]), 0)
          << c.point.label() << " objective " << k;
    }
  }
}

TEST(SearchEngine, SynthesisTimeBoundsPruneProvablyDominatedCandidates) {
  // Crank the per-task dispatch overhead so Policy1's fine-grained
  // splitting carries an enormous, synthesis-time-provable PDP floor,
  // under an ample constant supply that lets Policy3 realize a PDP close
  // to its own floor.  Policy1 must then be pruned without simulation —
  // and pruning must not change the front.
  CandidateSpace space;
  space.policies = {PolicyKind::kPolicy3, PolicyKind::kPolicy1};
  space.budget_fractions = {0.25};
  space.technologies = {NvmTechnology::kMram};
  space.adaptive_sensing = {false};

  SearchOptions options;
  options.scenario.kind = SourceKind::kConstant;
  options.scenario.constant_power = 50.0e-3;  // ample
  options.simulator.target_instances = 2;
  options.simulator.max_time = 10000;
  options.fsm.dispatch_energy = 2.0e-3;  // heavy per-task overhead
  options.fsm.dispatch_time = 2.0;
  options.objectives = SearchObjectives::parse("pdp");
  options.batch = 1;  // prune between every evaluation

  ExperimentRunner runner(1);
  const SearchResult with =
      run_search(s344(), lib(), space.grid(), options, runner);
  EXPECT_GE(with.pruned, 1u);
  ASSERT_EQ(with.candidates.size(), 2u);
  EXPECT_FALSE(with.candidates[0].pruned);  // Policy3 evaluated first
  EXPECT_TRUE(with.candidates[1].pruned);   // Policy1 provably dominated

  SearchOptions exhaustive = options;
  exhaustive.prune = false;
  const SearchResult without =
      run_search(s344(), lib(), space.grid(), exhaustive, runner);
  ASSERT_EQ(with.front, without.front);
  // The pruned candidate's floor was genuine: its real cost is dominated.
  EXPECT_TRUE(dominates(without.candidates[0].costs,
                        without.candidates[1].costs));
}

TEST(SearchEngine, SingleCandidateSearchPutsItOnTheFront) {
  CandidateSpace space;
  space.policies = {PolicyKind::kPolicy3};
  space.budget_fractions = {0.25};
  space.technologies = {NvmTechnology::kMram};
  space.adaptive_sensing = {false};
  ExperimentRunner runner(1);
  const SearchResult result = run_search(
      s344(), lib(), space.grid(), small_search_options(), runner);
  ASSERT_EQ(result.candidates.size(), 1u);
  ASSERT_EQ(result.front.size(), 1u);
  EXPECT_EQ(result.front[0], 0u);
  EXPECT_EQ(result.evaluated, 1u);
  EXPECT_EQ(result.pruned, 0u);
}

TEST(SearchEngine, AllIncompleteSweepYieldsNanFrontNotGarbageBest) {
  // No harvest at all: nothing ever completes an instance, so the PDP
  // objective is NaN for every candidate.  The old examples/design_space
  // scan seeded best_pdp = 0 and would report a garbage winner here; the
  // front must instead surface the undefined outcome (NaN head) so
  // clients report "none".
  CandidateSpace space;
  space.policies = {PolicyKind::kPolicy3, PolicyKind::kPolicy2};
  space.budget_fractions = {0.25};
  space.technologies = {NvmTechnology::kMram};
  space.adaptive_sensing = {false};
  SearchOptions options;
  options.scenario.kind = SourceKind::kConstant;
  options.scenario.constant_power = 0.0;
  options.simulator.target_instances = 2;
  options.simulator.max_time = 2000;
  ExperimentRunner runner(1);
  const SearchResult result =
      run_search(s344(), lib(), space.grid(), options, runner);
  ASSERT_FALSE(result.front.empty());
  for (const CandidateResult& c : result.candidates) {
    ASSERT_FALSE(c.pruned);
    EXPECT_EQ(c.stats.instances_completed, 0);
    EXPECT_TRUE(std::isnan(c.costs[0])) << c.point.label();
  }
  EXPECT_TRUE(std::isnan(result.candidates[result.front[0]].costs[0]));
}

}  // namespace
}  // namespace diac
