#include <gtest/gtest.h>

#include <list>

#include "diac/synthesizer.hpp"
#include "netlist/suite.hpp"

namespace diac {
namespace {

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::nominal_45nm();
  return l;
}

const Netlist& circuit(const std::string& name) {
  static std::list<Netlist> cache;
  cache.push_back(build_benchmark(name));
  return cache.back();
}

TEST(Baselines, StateBitCountsOrdered) {
  const Netlist& nl = circuit("s1238");
  const int nvb = nv_based_state_bits(nl);
  const int nvc = nv_clustering_state_bits(nl);
  EXPECT_GT(nvb, kControlStateBits);
  EXPECT_LE(nvc, nvb);  // clustering never increases elements
}

TEST(Baselines, ClusteringRatioClamped) {
  for (const char* name : {"s27", "s1238", "b10"}) {
    const double r = le_ff_clustering_ratio(circuit(name));
    EXPECT_GE(r, 0.35) << name;
    EXPECT_LE(r, 0.70) << name;
  }
}

TEST(Baselines, SchemePredicates) {
  EXPECT_FALSE(uses_commit_points(Scheme::kNvBased));
  EXPECT_FALSE(uses_commit_points(Scheme::kNvClustering));
  EXPECT_TRUE(uses_commit_points(Scheme::kDiac));
  EXPECT_TRUE(uses_commit_points(Scheme::kDiacOptimized));
  EXPECT_TRUE(uses_safe_zone(Scheme::kDiacOptimized));
  EXPECT_FALSE(uses_safe_zone(Scheme::kDiac));
  EXPECT_FALSE(uses_safe_zone(Scheme::kNvBased));
}

TEST(Baselines, EveryTaskPersistsForCheckpointSchemes) {
  const Netlist& nl = circuit("s820");
  DiacSynthesizer synth(nl, lib());
  const auto nvb = synth.synthesize_scheme(Scheme::kNvBased);
  for (std::size_t i = 0; i < nvb.design.tree.size(); ++i) {
    EXPECT_GT(nvb.design.boundary_bits(static_cast<TaskId>(i)), 0);
  }
}

TEST(Baselines, OnlyCommitPointsPersistForDiac) {
  const Netlist& nl = circuit("s820");
  DiacSynthesizer synth(nl, lib());
  const auto diac = synth.synthesize_scheme(Scheme::kDiac);
  int persisted = 0;
  for (std::size_t i = 0; i < diac.design.tree.size(); ++i) {
    if (diac.design.boundary_bits(static_cast<TaskId>(i)) > 0) ++persisted;
  }
  EXPECT_EQ(persisted, static_cast<int>(diac.replacement.points.size()));
  EXPECT_LT(persisted, static_cast<int>(diac.design.tree.size()));
}

TEST(Baselines, ClusteringWritesFewerBitsThanNvBased) {
  const Netlist& nl = circuit("s1238");
  DiacSynthesizer synth(nl, lib());
  const auto nvb = synth.synthesize_scheme(Scheme::kNvBased);
  const auto nvc = synth.synthesize_scheme(Scheme::kNvClustering);
  ASSERT_EQ(nvb.design.tree.size(), nvc.design.tree.size());
  long bits_nvb = 0, bits_nvc = 0;
  for (std::size_t i = 0; i < nvb.design.tree.size(); ++i) {
    bits_nvb += nvb.design.boundary_bits(static_cast<TaskId>(i));
    bits_nvc += nvc.design.boundary_bits(static_cast<TaskId>(i));
  }
  EXPECT_LT(bits_nvc, bits_nvb);
  EXPECT_GT(bits_nvc, 0);
}

TEST(Baselines, WriteEnergyIncludesControllerAndBits) {
  const Netlist& nl = circuit("s820");
  DiacSynthesizer synth(nl, lib());
  const auto nvb = synth.synthesize_scheme(Scheme::kNvBased);
  const auto& d = nvb.design;
  const int bits = d.boundary_bits(0);
  const double expect =
      d.controller_event_energy + d.system_factor * d.nvm.write_energy(bits);
  EXPECT_NEAR(d.boundary_write_energy(0), expect, 1e-15);
}

TEST(Baselines, BackupEventIsControlSized) {
  const Netlist& nl = circuit("s820");
  DiacSynthesizer synth(nl, lib());
  for (Scheme s : {Scheme::kNvBased, Scheme::kDiac}) {
    const auto r = synth.synthesize_scheme(s);
    EXPECT_EQ(r.design.backup_bits(), kControlStateBits);
    EXPECT_GT(r.design.backup_energy(), r.design.controller_event_energy);
    // Backup events sit at the sub-mJ scale of the paper's Fig. 4.
    EXPECT_LT(r.design.backup_energy(), 2.0e-3);
  }
}

TEST(Baselines, RestoreCheaperThanBackup) {
  const Netlist& nl = circuit("s820");
  DiacSynthesizer synth(nl, lib());
  const auto r = synth.synthesize_scheme(Scheme::kNvBased);
  // Reads are cheaper per bit; restore reads more bits but must stay in
  // the same order of magnitude.
  EXPECT_LT(r.design.restore_energy(), 4 * r.design.backup_energy());
  EXPECT_GT(r.design.restore_energy(), 0.0);
  EXPECT_GT(r.design.restore_time(), 0.0);
}

TEST(Baselines, BoundaryWriteTimeIsMilliseconds) {
  // Sanity: a checkpoint takes ms, not seconds (separate time factor).
  const Netlist& nl = circuit("s820");
  DiacSynthesizer synth(nl, lib());
  const auto r = synth.synthesize_scheme(Scheme::kNvBased);
  const double t = r.design.boundary_write_time(0);
  EXPECT_GT(t, 1.0e-6);
  EXPECT_LT(t, 50.0e-3);
}

TEST(Baselines, SchemeToString) {
  EXPECT_STREQ(to_string(Scheme::kNvBased), "NV-Based");
  EXPECT_STREQ(to_string(Scheme::kNvClustering), "NV-Clustering");
  EXPECT_STREQ(to_string(Scheme::kDiac), "DIAC");
  EXPECT_STREQ(to_string(Scheme::kDiacOptimized), "DIAC-Optimized");
}

}  // namespace
}  // namespace diac
