// End-to-end serve protocol tests through the real `diac` binary (path
// injected by CMake as DIAC_CLI_PATH), modeled on shard_cli_test.cpp:
// a `diac serve` process on a temp socket must give N concurrent
// `--connect` clients byte-identical copies of the standalone report,
// answer malformed requests with a protocol error line, survive a
// client that disconnects mid-stream, and drain + exit 0 on SIGTERM.
//
// The suite name matches the TSan ctest subset (docs/LINTS.md): the
// concurrent-client case runs under -fsanitize=thread in CI.
#include <gtest/gtest.h>

#include <signal.h>
#include <spawn.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/request.hpp"

#ifndef DIAC_CLI_PATH
#error "DIAC_CLI_PATH must point at the diac CLI binary"
#endif

extern char** environ;

namespace diac {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

struct CliRun {
  int exit_code = -1;
  std::string out;
};

CliRun run_cli(const std::string& args, const std::string& tag) {
  const fs::path out = fs::path(::testing::TempDir()) / (tag + ".out");
  const std::string cmd = std::string(DIAC_CLI_PATH) + " " + args + " > " +
                          out.string() + " 2> " + out.string() + ".err";
  CliRun run;
  run.exit_code = std::system(cmd.c_str());
  run.out = slurp(out);
  return run;
}

// A `diac serve` child process bound to a per-fixture temp socket;
// killed (TERM, then KILL as a backstop) when the fixture goes away.
class ServeProcess {
 public:
  explicit ServeProcess(const std::string& tag,
                        const std::string& extra_args = "") {
    socket_path_ =
        (fs::path(::testing::TempDir()) / (tag + ".sock")).string();
    fs::remove(socket_path_);
    std::vector<std::string> args{DIAC_CLI_PATH, "serve", "--socket",
                                  socket_path_, "--threads", "2"};
    std::istringstream extra(extra_args);
    for (std::string word; extra >> word;) args.push_back(word);
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    if (posix_spawn(&pid_, DIAC_CLI_PATH, nullptr, nullptr, argv.data(),
                    environ) != 0) {
      pid_ = -1;
    }
  }

  ~ServeProcess() {
    if (pid_ <= 0) return;
    int status = 0;
    if (waitpid(pid_, &status, WNOHANG) == pid_) return;  // already reaped
    kill(pid_, SIGTERM);
    for (int i = 0; i < 100; ++i) {
      if (waitpid(pid_, &status, WNOHANG) == pid_) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    kill(pid_, SIGKILL);
    waitpid(pid_, &status, 0);
  }

  const std::string& socket_path() const { return socket_path_; }
  pid_t pid() const { return pid_; }

  // The server creates its socket after binding; connectable == ready.
  bool wait_ready() const {
    for (int i = 0; i < 100; ++i) {
      const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (fd < 0) return false;
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      std::strncpy(addr.sun_path, socket_path_.c_str(),
                   sizeof(addr.sun_path) - 1);
      const bool ok = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                                sizeof(addr)) == 0;
      ::close(fd);
      if (ok) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    return false;
  }

  // Connects and sends `bytes` as a complete request (write side shut
  // down, like the real client); returns the fd, or -1.
  int send_raw(const std::string& bytes) const {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path_.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd);
      return -1;
    }
    (void)::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    ::shutdown(fd, SHUT_WR);
    return fd;
  }

  // Sends raw bytes and returns everything the server answers.
  std::string raw_exchange(const std::string& bytes) const {
    const int fd = send_raw(bytes);
    if (fd < 0) return "<no connection>";
    std::string response;
    char chunk[4096];
    ssize_t n;
    while ((n = ::read(fd, chunk, sizeof(chunk))) > 0) {
      response.append(chunk, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return response;
  }

 private:
  std::string socket_path_;
  pid_t pid_ = -1;
};

TEST(ServeCli, ConcurrentClientsMatchStandaloneByteForByte) {
  ServeProcess server("servecli_concurrent");
  ASSERT_GT(server.pid(), 0);
  ASSERT_TRUE(server.wait_ready());

  const std::string base = "mc s344 --runs 6 --instances 4";
  const CliRun standalone = run_cli(base + " --shards 1 --threads 2",
                                    "servecli_standalone");
  ASSERT_EQ(standalone.exit_code, 0) << standalone.out;
  ASSERT_FALSE(standalone.out.empty());

  constexpr int kClients = 4;
  std::vector<CliRun> runs(kClients);
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
      clients.emplace_back([&, i] {
        runs[static_cast<std::size_t>(i)] =
            run_cli(base + " --connect " + server.socket_path(),
                    "servecli_client" + std::to_string(i));
      });
    }
    for (std::thread& t : clients) t.join();
  }
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(runs[static_cast<std::size_t>(i)].exit_code, 0);
    EXPECT_EQ(runs[static_cast<std::size_t>(i)].out, standalone.out)
        << "client " << i << " diverged from the standalone report";
  }
}

TEST(ServeCli, MalformedRequestsGetAProtocolErrorLine) {
  ServeProcess server("servecli_malformed");
  ASSERT_GT(server.pid(), 0);
  ASSERT_TRUE(server.wait_ready());

  EXPECT_NE(server.raw_exchange("complete garbage\n")
                .find("diac-serve 1 error"),
            std::string::npos);
  EXPECT_NE(server.raw_exchange("diac-serve 99 run mc s27\n")
                .find("diac-serve 1 error"),
            std::string::npos);
  EXPECT_NE(server.raw_exchange("diac-serve 1 run teleport s27\n")
                .find("diac-serve 1 error"),
            std::string::npos);
  EXPECT_NE(server.raw_exchange("diac-serve 1 run mc not_a_circuit\n")
                .find("diac-serve 1 error"),
            std::string::npos);
  // No newline at all: EOF before a complete request line.
  const std::string closed = server.raw_exchange("diac-serve 1 run");
  EXPECT_NE(closed.find("diac-serve 1 error"), std::string::npos);

  // The in-process client surfaces the server's message as an exception.
  serve::SweepRequest bad;
  bad.kind = "mc";
  bad.target = "not_a_circuit";
  EXPECT_THROW(serve::run_remote_sweep(server.socket_path(), bad, 1),
               std::runtime_error);
}

TEST(ServeCli, SurvivesClientDisconnectMidStream) {
  ServeProcess server("servecli_disconnect");
  ASSERT_GT(server.pid(), 0);
  ASSERT_TRUE(server.wait_ready());

  // Send a valid request, read only the first bytes of the response,
  // then slam the connection shut while the server is still streaming.
  {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, server.socket_path().c_str(),
                 sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    const std::string request =
        "diac-serve 1 run mc s344 --runs 4 --instances 4\n";
    ASSERT_GT(::send(fd, request.data(), request.size(), MSG_NOSIGNAL), 0);
    char first[8];
    (void)::read(fd, first, sizeof(first));
    ::close(fd);
  }

  // The server must still answer the next request normally.
  const CliRun after =
      run_cli("mc s344 --runs 4 --instances 4 --connect " +
                  server.socket_path(),
              "servecli_after_disconnect");
  EXPECT_EQ(after.exit_code, 0)
      << "server did not survive a mid-stream disconnect";
  EXPECT_FALSE(after.out.empty());
}

TEST(ServeCli, SigtermDrainsAndExitsCleanly) {
  ServeProcess server("servecli_sigterm");
  ASSERT_GT(server.pid(), 0);
  ASSERT_TRUE(server.wait_ready());

  // A request in flight when SIGTERM lands must still complete.  The
  // `ok` status line is sent after validation, before the sweep runs,
  // so once it has been read the request is provably in flight.
  const int fd =
      server.send_raw("diac-serve 1 run mc s344 --runs 4 --instances 4\n");
  ASSERT_GE(fd, 0);
  std::string response;
  char chunk[4096];
  ssize_t n;
  while (response.find('\n') == std::string::npos &&
         (n = ::read(fd, chunk, sizeof(chunk))) > 0) {
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ASSERT_EQ(response.substr(0, response.find('\n')),
            serve::ok_line());
  ASSERT_EQ(kill(server.pid(), SIGTERM), 0);
  while ((n = ::read(fd, chunk, sizeof(chunk))) > 0) {
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(response.find("\nend "), std::string::npos)
      << "in-flight request was not drained to its trailer";

  int status = -1;
  ASSERT_EQ(waitpid(server.pid(), &status, 0), server.pid());
  ASSERT_TRUE(WIFEXITED(status)) << "server was killed, not shut down";
  EXPECT_EQ(WEXITSTATUS(status), 0);
  EXPECT_FALSE(fs::exists(server.socket_path()))
      << "socket path not unlinked on shutdown";
}

TEST(ServeCli, ConnectRefusesConflictingFlags) {
  EXPECT_NE(run_cli("mc s27 --runs 2 --connect /tmp/nope.sock --shards 2",
                    "servecli_conflict1")
                .exit_code,
            0);
  EXPECT_NE(run_cli("mc s27 --runs 2 --connect /tmp/nope.sock --cache-dir "
                    "/tmp/nope.cache",
                    "servecli_conflict2")
                .exit_code,
            0);
}

TEST(ServeCli, ConnectWithoutServerFailsCleanly) {
  const CliRun run = run_cli(
      "mc s27 --runs 2 --connect /tmp/diac_no_such_socket.sock",
      "servecli_nosrv");
  EXPECT_NE(run.exit_code, 0);
}

}  // namespace
}  // namespace diac
