// End-to-end sharding through the real `diac` binary (path injected by
// CMake as DIAC_CLI_PATH): `--shards {1,N}` must produce byte-identical
// stdout — and byte-identical --csv artifacts — for mc, replay and
// search, and worker failures must surface as a non-zero parent exit.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "power/harvester.hpp"
#include "power/trace_io.hpp"

#ifndef DIAC_CLI_PATH
#error "DIAC_CLI_PATH must point at the diac CLI binary"
#endif

namespace diac {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

struct CliRun {
  int exit_code = -1;
  std::string out;
};

// Runs `diac <args>`, capturing stdout exactly (stderr is diagnostics —
// shard counts, worker errors — and deliberately excluded from the
// byte-identity contract).
CliRun run_cli(const std::string& args, const std::string& tag) {
  const fs::path out = fs::path(::testing::TempDir()) / (tag + ".out");
  const std::string cmd = std::string(DIAC_CLI_PATH) + " " + args + " > " +
                          out.string() + " 2> " + out.string() + ".err";
  const int status = std::system(cmd.c_str());
  CliRun run;
  run.exit_code = status;
  run.out = slurp(out);
  return run;
}

void expect_shard_identity(const std::string& base_args,
                           const std::string& tag, int shards) {
  const CliRun one = run_cli(base_args + " --shards 1", tag + "_1");
  ASSERT_EQ(one.exit_code, 0) << one.out;
  const CliRun many =
      run_cli(base_args + " --shards " + std::to_string(shards),
              tag + "_" + std::to_string(shards));
  ASSERT_EQ(many.exit_code, 0) << many.out;
  EXPECT_FALSE(one.out.empty());
  EXPECT_EQ(one.out, many.out)
      << "--shards 1 vs --shards " << shards << " reports differ";
}

TEST(ShardCli, McReportIsByteIdenticalAcrossShardCounts) {
  expect_shard_identity("mc s344 --runs 6 --instances 4 --threads 2",
                       "shardcli_mc", 3);
}

TEST(ShardCli, SearchReportIsByteIdenticalAcrossShardCounts) {
  expect_shard_identity(
      "search s344 --random 8 --instances 4 --max-time 8000 --threads 2",
      "shardcli_search", 4);
}

TEST(ShardCli, SearchCsvIsByteIdenticalAcrossShardCounts) {
  const fs::path csv1 = fs::path(::testing::TempDir()) / "shardcli_s1.csv";
  const fs::path csv4 = fs::path(::testing::TempDir()) / "shardcli_s4.csv";
  const std::string base =
      "search s344 --random 8 --instances 4 --max-time 8000 --threads 2";
  const CliRun one =
      run_cli(base + " --shards 1 --csv " + csv1.string(), "shardcli_csv1");
  ASSERT_EQ(one.exit_code, 0);
  const CliRun four =
      run_cli(base + " --shards 4 --csv " + csv4.string(), "shardcli_csv4");
  ASSERT_EQ(four.exit_code, 0);
  const std::string a = slurp(csv1);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, slurp(csv4));
}

TEST(ShardCli, ReplayLibraryIsByteIdenticalAcrossShardCounts) {
  const fs::path dir = fs::path(::testing::TempDir()) / "shardcli_traces";
  fs::remove_all(dir);
  fs::create_directories(dir);
  RfidBurstSource::Options options;
  options.horizon = 1200.0;
  for (int i = 0; i < 5; ++i) {
    const RfidBurstSource source(0xACE + i, options);
    save_trace_csv((dir / ("t" + std::to_string(i) + ".csv")).string(),
                   source, 1200.0, 0.5);
  }
  expect_shard_identity(
      "replay s344 --trace " + dir.string() + " --instances 3 --threads 2",
      "shardcli_replay", 2);
}

TEST(ShardCli, WorkerFailurePropagatesToParentExit) {
  // A worker that cannot load its sweep (bogus trace directory) fails;
  // the parent must fail too, not print a truncated report.
  const CliRun run = run_cli(
      "replay s344 --trace /nonexistent_diac_traces --shards 2",
      "shardcli_fail");
  EXPECT_NE(run.exit_code, 0);
}

TEST(ShardCli, RejectsBadShardCounts) {
  EXPECT_NE(run_cli("mc s344 --runs 4 --shards 0", "shardcli_zero").exit_code,
            0);
  EXPECT_NE(
      run_cli("mc s344 --runs 4 --shards -2", "shardcli_neg").exit_code, 0);
}

}  // namespace
}  // namespace diac
