// Validation of the Algorithm-1 FSM against the Fig. 4 scenario: the
// scripted charging-rate trace must drive the node through all six
// annotated regions with the paper's qualitative behaviour.
#include <gtest/gtest.h>

#include <algorithm>
#include <list>

#include "diac/synthesizer.hpp"
#include "netlist/suite.hpp"
#include "runtime/simulator.hpp"

namespace diac {
namespace {

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::nominal_45nm();
  return l;
}

struct Fig4Run {
  RunStats stats;
  std::vector<TracePoint> trace;
  std::vector<SimEvent> events;
  Thresholds thresholds;
  double e_max = 0;
};

const Fig4Run& fig4_run() {
  static const Fig4Run run = [] {
    static std::list<Netlist> cache;
    cache.push_back(build_benchmark("s344"));
    const auto sr = DiacSynthesizer(cache.back(), lib())
                        .synthesize_scheme(Scheme::kDiacOptimized);
    const PiecewiseTrace trace = fig4_trace();
    SimulatorOptions opt;
    opt.target_instances = 1000;  // run the whole trace
    opt.max_time = 3600;
    opt.record_trace = true;
    opt.trace_interval = 1.0;
    SystemSimulator sim(sr.design, trace, FsmConfig{}, opt);
    Fig4Run r;
    r.stats = sim.run();
    r.trace = sim.trace();
    r.events = sim.events();
    r.thresholds = sim.thresholds();
    r.e_max = sim.e_max();
    return r;
  }();
  return run;
}

int count_events(const Fig4Run& r, SimEvent::Kind kind, double t0, double t1) {
  int n = 0;
  for (const SimEvent& e : r.events) {
    if (e.kind == kind && e.t >= t0 && e.t < t1) ++n;
  }
  return n;
}

TEST(Fig4, Region1StorageSaturates) {
  // Surplus charging: E reaches E_MAX at least once in [0, 600).
  const auto& r = fig4_run();
  bool saturated = false;
  for (const TracePoint& p : r.trace) {
    if (p.t < 600 && p.energy >= 0.999 * r.e_max) saturated = true;
  }
  EXPECT_TRUE(saturated);
  // And the node makes progress at peak performance.
  EXPECT_GT(count_events(r, SimEvent::Kind::kInstanceDone, 0, 600), 0);
}

TEST(Fig4, Region2DutyCyclesWithoutShutdown) {
  // Scarce charging: instances still complete, no deep outage in [600,1200).
  const auto& r = fig4_run();
  EXPECT_GT(count_events(r, SimEvent::Kind::kInstanceDone, 600, 1200), 0);
  EXPECT_EQ(count_events(r, SimEvent::Kind::kShutdown, 600, 1200), 0);
}

TEST(Fig4, Region3SuddenDeclineTriggersBackup) {
  const auto& r = fig4_run();
  EXPECT_GE(count_events(r, SimEvent::Kind::kBackup, 1200, 1500), 1);
}

TEST(Fig4, Region4DroughtShutsDownThenRestores) {
  const auto& r = fig4_run();
  EXPECT_GE(count_events(r, SimEvent::Kind::kShutdown, 1500, 2150), 1);
  EXPECT_GE(count_events(r, SimEvent::Kind::kRestore, 2090, 2450), 1);
  // While off, stored energy sits below Th_Off.
  bool was_off = false;
  for (const TracePoint& p : r.trace) {
    if (p.t > 1900 && p.t < 2090 && p.state == NodeState::kOff) was_off = true;
  }
  EXPECT_TRUE(was_off);
}

TEST(Fig4, Region5SafeZoneSavesThreeDips) {
  // Three brief dips recover without any NVM write (the paper counts
  // exactly three safe-zone entries here).
  const auto& r = fig4_run();
  EXPECT_EQ(count_events(r, SimEvent::Kind::kSafeZoneSave, 2400, 3000), 3);
  EXPECT_EQ(count_events(r, SimEvent::Kind::kBackup, 2400, 3000), 0);
}

TEST(Fig4, Region6BackupWithoutRestore) {
  // Standby drain walks E below Th_Bk (backup) but charging returns
  // before Th_Off: no shutdown, no restore needed.
  const auto& r = fig4_run();
  EXPECT_GE(count_events(r, SimEvent::Kind::kBackup, 3000, 3400), 1);
  EXPECT_EQ(count_events(r, SimEvent::Kind::kShutdown, 3000, 3400), 0);
  EXPECT_EQ(count_events(r, SimEvent::Kind::kRestore, 3000, 3600), 0);
}

TEST(Fig4, EnergyNeverExceedsEmax) {
  const auto& r = fig4_run();
  for (const TracePoint& p : r.trace) {
    EXPECT_LE(p.energy, r.e_max + 1e-12);
    EXPECT_GE(p.energy, 0.0);
  }
}

TEST(Fig4, ThresholdStackMatchesPaperShape) {
  const auto& r = fig4_run();
  const Thresholds& th = r.thresholds;
  // Fig. 4 ordering: ThOff < ThBk < ThSafe < ThSe < ThCp < ThTr < E_MAX.
  EXPECT_LT(th.off, th.backup);
  EXPECT_LT(th.backup, th.safe);
  EXPECT_LT(th.safe, th.sense);
  EXPECT_LT(th.sense, th.transmit);
  EXPECT_LT(th.transmit, r.e_max);
  // Safe zone = Th_Bk + 2 mJ (SIV.A).
  EXPECT_NEAR(th.safe - th.backup, 2.0e-3, 1e-12);
}

TEST(Fig4, SleepDominatesDroughts) {
  const auto& r = fig4_run();
  EXPECT_GT(r.stats.time_sleep, 0.0);
  EXPECT_GT(r.stats.time_off, 0.0);
  EXPECT_GT(r.stats.instances_completed, 5);
}

}  // namespace
}  // namespace diac
