#include <gtest/gtest.h>

#include <list>

#include "diac/synthesizer.hpp"
#include "netlist/suite.hpp"
#include "runtime/simulator.hpp"

namespace diac {
namespace {

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::nominal_45nm();
  return l;
}

SynthesisResult synth(const std::string& name, Scheme scheme) {
  static std::list<Netlist> cache;
  cache.push_back(build_benchmark(name));
  return DiacSynthesizer(cache.back(), lib()).synthesize_scheme(scheme);
}

SimulatorOptions quick(int instances = 3) {
  SimulatorOptions opt;
  opt.target_instances = instances;
  opt.max_time = 4000;
  return opt;
}

TEST(Simulator, CompletesWorkloadWithAmplePower) {
  const auto r = synth("s344", Scheme::kDiac);
  const ConstantSource source(10.0e-3);
  SystemSimulator sim(r.design, source, FsmConfig{}, quick());
  const RunStats stats = sim.run();
  EXPECT_TRUE(stats.workload_completed);
  EXPECT_EQ(stats.instances_completed, 3);
  EXPECT_GT(stats.energy_consumed, 0.0);
  EXPECT_GT(stats.makespan, 0.0);
}

TEST(Simulator, NoPowerNoProgress) {
  const auto r = synth("s344", Scheme::kDiac);
  const ConstantSource source(0.0);
  SimulatorOptions opt = quick();
  opt.max_time = 200;
  SystemSimulator sim(r.design, source, FsmConfig{}, opt);
  const RunStats stats = sim.run();
  EXPECT_FALSE(stats.workload_completed);
  EXPECT_EQ(stats.instances_completed, 0);
}

TEST(Simulator, EnergyConservation) {
  // consumed <= initial + harvested (no energy from nowhere).
  const auto r = synth("s344", Scheme::kDiac);
  const RfidBurstSource source(42);
  SystemSimulator sim(r.design, source, FsmConfig{}, quick());
  const RunStats stats = sim.run();
  const double initial = 0.5 * 25.0e-3;
  EXPECT_LE(stats.energy_consumed, initial + stats.energy_harvested + 1e-9);
}

TEST(Simulator, DeterministicRuns) {
  const auto r = synth("s344", Scheme::kDiac);
  const RfidBurstSource source(42);
  SystemSimulator a(r.design, source, FsmConfig{}, quick());
  SystemSimulator b(r.design, source, FsmConfig{}, quick());
  const RunStats sa = a.run();
  const RunStats sb = b.run();
  EXPECT_DOUBLE_EQ(sa.energy_consumed, sb.energy_consumed);
  EXPECT_DOUBLE_EQ(sa.makespan, sb.makespan);
  EXPECT_EQ(sa.nvm_writes, sb.nvm_writes);
  EXPECT_EQ(sa.backups, sb.backups);
}

TEST(Simulator, ScarcePowerForcesDutyCycling) {
  const auto r = synth("s344", Scheme::kDiac);
  // 1.5 mW against a 3 mW active draw: the node must sleep-recharge.
  const ConstantSource source(1.5e-3);
  SystemSimulator sim(r.design, source, FsmConfig{}, quick(2));
  const RunStats stats = sim.run();
  EXPECT_TRUE(stats.workload_completed);
  EXPECT_GT(stats.time_sleep, 0.5 * stats.time_active);
}

TEST(Simulator, NvBasedWritesEveryTask) {
  const auto r = synth("s344", Scheme::kNvBased);
  const ConstantSource source(10.0e-3);
  SystemSimulator sim(r.design, source, FsmConfig{}, quick(2));
  const RunStats stats = sim.run();
  EXPECT_EQ(stats.nvm_boundary_writes, stats.tasks_executed);
}

TEST(Simulator, DiacWritesOnlyCommits) {
  const auto r = synth("s344", Scheme::kDiac);
  const ConstantSource source(10.0e-3);
  SystemSimulator sim(r.design, source, FsmConfig{}, quick(2));
  const RunStats stats = sim.run();
  EXPECT_LT(stats.nvm_boundary_writes, stats.tasks_executed);
  EXPECT_EQ(stats.nvm_boundary_writes,
            2 * static_cast<int>(r.replacement.points.size()));
}

TEST(Simulator, SquareWaveCausesInterrupts) {
  const auto r = synth("s820", Scheme::kDiac);
  // 5 s bursts, 20 s gaps: long gaps walk the store down to Th_Bk.
  const SquareWaveSource source(8.0e-3, 25.0, 0.2);
  SimulatorOptions opt = quick(2);
  opt.max_time = 3000;
  SystemSimulator sim(r.design, source, FsmConfig{}, opt);
  const RunStats stats = sim.run();
  EXPECT_GT(stats.power_interrupts, 0);
  EXPECT_GT(stats.backups, 0);
}

TEST(Simulator, SafeZoneSavesOnlyForOptimized) {
  const SquareWaveSource source(8.0e-3, 12.0, 0.35);
  SimulatorOptions opt = quick(3);
  opt.max_time = 3000;
  const auto plain = synth("s820", Scheme::kDiac);
  const auto optim = synth("s820", Scheme::kDiacOptimized);
  SystemSimulator sp(plain.design, source, FsmConfig{}, opt);
  SystemSimulator so(optim.design, source, FsmConfig{}, opt);
  const RunStats stats_plain = sp.run();
  const RunStats stats_opt = so.run();
  EXPECT_EQ(stats_plain.safe_zone_saves, 0);
  // The optimized runtime should convert at least some dips into saves and
  // back up no more often than the plain design.
  EXPECT_GE(stats_opt.safe_zone_saves, 0);
  EXPECT_LE(stats_opt.backups, stats_plain.backups);
}

TEST(Simulator, DeepOutageTriggersRestoreAndReexecution) {
  const auto r = synth("s1238", Scheme::kDiac);
  // Bursts separated by long dead gaps; sleep drain forces Th_Off.
  const SquareWaveSource source(9.0e-3, 40.0, 0.3);
  FsmConfig cfg;
  cfg.sleep_power = 300.0e-6;  // aggressive drain for the test
  cfg.sleep_power_backed_up = 300.0e-6;
  SimulatorOptions opt = quick(2);
  opt.max_time = 4000;
  SystemSimulator sim(r.design, source, cfg, opt);
  const RunStats stats = sim.run();
  EXPECT_GT(stats.deep_outages, 0);
  EXPECT_GT(stats.restores, 0);
  EXPECT_GT(stats.tasks_reexecuted, 0);  // DIAC rolls back to commits
  EXPECT_GT(stats.reexec_energy, 0.0);
  EXPECT_LT(stats.forward_progress(), 1.0);
}

TEST(Simulator, CheckpointSchemeNeverReexecutes) {
  const auto r = synth("s1238", Scheme::kNvBased);
  const SquareWaveSource source(9.0e-3, 40.0, 0.3);
  FsmConfig cfg;
  cfg.sleep_power = 300.0e-6;
  cfg.sleep_power_backed_up = 300.0e-6;
  SimulatorOptions opt = quick(2);
  opt.max_time = 4000;
  SystemSimulator sim(r.design, source, cfg, opt);
  const RunStats stats = sim.run();
  EXPECT_GT(stats.deep_outages, 0);
  EXPECT_EQ(stats.tasks_reexecuted, 0);
  EXPECT_DOUBLE_EQ(stats.forward_progress(), 1.0);
}

TEST(Simulator, TraceRecordingSamples) {
  const auto r = synth("s344", Scheme::kDiac);
  const ConstantSource source(5.0e-3);
  SimulatorOptions opt = quick(2);
  opt.record_trace = true;
  opt.trace_interval = 0.5;
  SystemSimulator sim(r.design, source, FsmConfig{}, opt);
  const RunStats stats = sim.run();
  ASSERT_FALSE(sim.trace().empty());
  EXPECT_NEAR(static_cast<double>(sim.trace().size()) * 0.5,
              stats.makespan, 2.0);
  for (const TracePoint& p : sim.trace()) {
    EXPECT_GE(p.energy, 0.0);
    EXPECT_LE(p.energy, sim.e_max() + 1e-12);
  }
}

TEST(Simulator, EventsAreTimeOrdered) {
  const auto r = synth("s820", Scheme::kDiacOptimized);
  const RfidBurstSource source(7);
  SystemSimulator sim(r.design, source, FsmConfig{}, quick(3));
  sim.run();
  double last = -1;
  for (const SimEvent& e : sim.events()) {
    EXPECT_GE(e.t, last);
    last = e.t;
  }
}

TEST(Simulator, InstanceDoneEventsMatchCount) {
  const auto r = synth("s344", Scheme::kDiac);
  const ConstantSource source(8.0e-3);
  SystemSimulator sim(r.design, source, FsmConfig{}, quick(3));
  const RunStats stats = sim.run();
  int done = 0;
  for (const SimEvent& e : sim.events()) {
    done += e.kind == SimEvent::Kind::kInstanceDone;
  }
  EXPECT_EQ(done, stats.instances_completed);
}

TEST(Simulator, ThresholdStackScalesWithScheme) {
  const auto nvb = synth("s1238", Scheme::kNvBased);
  const auto diac = synth("s1238", Scheme::kDiac);
  const ConstantSource source(5e-3);
  SystemSimulator sn(nvb.design, source, FsmConfig{}, quick());
  SystemSimulator sd(diac.design, source, FsmConfig{}, quick());
  // Backup events are control-sized for every scheme, so the stacks agree.
  EXPECT_NEAR(sn.thresholds().backup, sd.thresholds().backup, 1e-9);
  EXPECT_NO_THROW(sn.thresholds().validate());
}

TEST(Simulator, RejectsBadOptions) {
  const auto r = synth("s344", Scheme::kDiac);
  const ConstantSource source(5e-3);
  auto rejects = [&](auto mutate) {
    SimulatorOptions opt;
    mutate(opt);
    EXPECT_THROW(SystemSimulator(r.design, source, FsmConfig{}, opt),
                 std::invalid_argument);
  };
  rejects([](SimulatorOptions& o) { o.dt = 0; });
  rejects([](SimulatorOptions& o) { o.max_time = -1; });
  rejects([](SimulatorOptions& o) { o.charge_efficiency = 0; });
  rejects([](SimulatorOptions& o) { o.charge_efficiency = 1.5; });
  rejects([](SimulatorOptions& o) { o.charge_efficiency = -0.2; });
  rejects([](SimulatorOptions& o) { o.storage_leakage = -1e-6; });
  rejects([](SimulatorOptions& o) { o.trace_interval = 0; });
  rejects([](SimulatorOptions& o) { o.trace_interval = -2; });
  rejects([](SimulatorOptions& o) { o.continuous_step = 0; });
}

TEST(Simulator, ValidationIsIndependentOfTraceRecording) {
  // A non-positive trace_interval is rejected even when record_trace is
  // off — silently accepting it used to produce nonsense once a caller
  // flipped recording on.
  const auto r = synth("s344", Scheme::kDiac);
  const ConstantSource source(5e-3);
  SimulatorOptions opt;
  opt.record_trace = false;
  opt.trace_interval = 0;
  EXPECT_THROW(SystemSimulator(r.design, source, FsmConfig{}, opt),
               std::invalid_argument);
}

TEST(Simulator, AdaptiveSensingSlowsSamplingWhenScarce) {
  const auto r = synth("s344", Scheme::kDiacOptimized);
  // Scarce constant supply: energy hovers below the compute threshold
  // between instances, so adaptive sensing stretches the interval and
  // completes the same workload with fewer or equal sense operations in
  // more or equal wall time per instance (it samples less often).
  const ConstantSource source(1.2e-3);
  SimulatorOptions opt = quick(3);
  opt.max_time = 10000;
  FsmConfig normal;
  FsmConfig adaptive;
  adaptive.adaptive_sensing = true;
  adaptive.adaptive_slowdown = 8.0;
  SystemSimulator sn(r.design, source, normal, opt);
  SystemSimulator sa(r.design, source, adaptive, opt);
  const RunStats stats_n = sn.run();
  const RunStats stats_a = sa.run();
  EXPECT_TRUE(stats_n.workload_completed);
  EXPECT_TRUE(stats_a.workload_completed);
  EXPECT_GE(stats_a.makespan, stats_n.makespan * 0.99);
}

TEST(Simulator, NonIdealStorageSlowsEveryone) {
  const auto r = synth("s344", Scheme::kDiac);
  const ConstantSource source(2.5e-3);
  SimulatorOptions ideal = quick(2);
  SimulatorOptions lossy = quick(2);
  lossy.charge_efficiency = 0.7;
  lossy.storage_leakage = 50e-6;
  SystemSimulator si(r.design, source, FsmConfig{}, ideal);
  SystemSimulator sl(r.design, source, FsmConfig{}, lossy);
  const RunStats a = si.run();
  const RunStats b = sl.run();
  ASSERT_TRUE(a.workload_completed);
  ASSERT_TRUE(b.workload_completed);
  EXPECT_GT(b.makespan, a.makespan);
}

TEST(Simulator, PdpPositiveAndFinite) {
  const auto r = synth("s344", Scheme::kDiac);
  const RfidBurstSource source(13);
  SystemSimulator sim(r.design, source, FsmConfig{}, quick(2));
  const RunStats stats = sim.run();
  ASSERT_TRUE(stats.workload_completed);
  EXPECT_GT(stats.pdp(), 0.0);
  EXPECT_GT(stats.energy_per_instance(), 0.0);
  EXPECT_GT(stats.time_per_instance(), 0.0);
}

}  // namespace
}  // namespace diac
