#include <gtest/gtest.h>

#include "power/capacitor.hpp"
#include "util/units.hpp"

namespace diac {
namespace {

TEST(Capacitor, PaperDefaultIs25mJ) {
  const Capacitor cap = Capacitor::paper_default();
  EXPECT_NEAR(units::as_mJ(cap.e_max()), 25.0, 1e-9);
  EXPECT_DOUBLE_EQ(cap.energy(), 0.0);
}

TEST(Capacitor, ChargeAccumulates) {
  Capacitor cap = Capacitor::paper_default();
  EXPECT_DOUBLE_EQ(cap.charge(10.0e-3), 10.0e-3);
  EXPECT_DOUBLE_EQ(cap.energy(), 10.0e-3);
}

TEST(Capacitor, ChargeClampsAtEmax) {
  Capacitor cap = Capacitor::paper_default();
  cap.set_energy(24.0e-3);
  // Only 1 mJ fits; the rest is shunted.
  EXPECT_NEAR(cap.charge(5.0e-3), 1.0e-3, 1e-12);
  EXPECT_TRUE(cap.full());
  EXPECT_DOUBLE_EQ(cap.charge(1.0e-3), 0.0);
}

TEST(Capacitor, DrawFloorsAtZero) {
  Capacitor cap = Capacitor::paper_default();
  cap.set_energy(2.0e-3);
  EXPECT_NEAR(cap.draw(5.0e-3), 2.0e-3, 1e-12);
  EXPECT_DOUBLE_EQ(cap.energy(), 0.0);
}

TEST(Capacitor, DrawReturnsActualAmount) {
  Capacitor cap = Capacitor::paper_default();
  cap.set_energy(10.0e-3);
  EXPECT_DOUBLE_EQ(cap.draw(3.0e-3), 3.0e-3);
  EXPECT_NEAR(cap.energy(), 7.0e-3, 1e-12);
}

TEST(Capacitor, Validation) {
  EXPECT_THROW(Capacitor(0, 5), std::invalid_argument);
  EXPECT_THROW(Capacitor(2e-3, -1), std::invalid_argument);
  Capacitor cap = Capacitor::paper_default();
  EXPECT_THROW(cap.set_energy(-1), std::invalid_argument);
  EXPECT_THROW(cap.set_energy(1.0), std::invalid_argument);  // > E_MAX
  EXPECT_THROW(cap.charge(-1), std::invalid_argument);
  EXPECT_THROW(cap.draw(-1), std::invalid_argument);
}

TEST(Capacitor, ChargeEfficiencyLosses) {
  Capacitor cap = Capacitor::paper_default();
  cap.set_charge_efficiency(0.8);
  EXPECT_NEAR(cap.charge(10.0e-3), 8.0e-3, 1e-12);
  EXPECT_NEAR(cap.energy(), 8.0e-3, 1e-12);
  EXPECT_THROW(cap.set_charge_efficiency(0.0), std::invalid_argument);
  EXPECT_THROW(cap.set_charge_efficiency(1.5), std::invalid_argument);
}

TEST(Capacitor, SelfDischargeLeaks) {
  Capacitor cap = Capacitor::paper_default();
  cap.set_energy(10.0e-3);
  cap.set_leakage_power(1.0e-3);
  EXPECT_NEAR(cap.self_discharge(2.0), 2.0e-3, 1e-12);
  EXPECT_NEAR(cap.energy(), 8.0e-3, 1e-12);
  // Floors at zero.
  EXPECT_NEAR(cap.self_discharge(100.0), 8.0e-3, 1e-12);
  EXPECT_DOUBLE_EQ(cap.energy(), 0.0);
  EXPECT_THROW(cap.set_leakage_power(-1), std::invalid_argument);
  EXPECT_THROW(cap.self_discharge(-1), std::invalid_argument);
}

TEST(Capacitor, IdealByDefault) {
  Capacitor cap = Capacitor::paper_default();
  EXPECT_DOUBLE_EQ(cap.charge_efficiency(), 1.0);
  EXPECT_DOUBLE_EQ(cap.leakage_power(), 0.0);
  cap.set_energy(5e-3);
  EXPECT_DOUBLE_EQ(cap.self_discharge(10.0), 0.0);
  EXPECT_NEAR(cap.energy(), 5e-3, 1e-15);
}

TEST(Capacitor, EnergyScalesWithCapacitanceAndVoltage) {
  const Capacitor a(1.0e-3, 5.0);
  const Capacitor b(2.0e-3, 5.0);
  const Capacitor c(2.0e-3, 10.0);
  EXPECT_NEAR(b.e_max(), 2 * a.e_max(), 1e-12);
  EXPECT_NEAR(c.e_max(), 4 * b.e_max(), 1e-12);
}

}  // namespace
}  // namespace diac
