#include <gtest/gtest.h>

#include "netlist/bench_format.hpp"
#include "netlist/generators.hpp"
#include "netlist/logic_sim.hpp"
#include "util/rng.hpp"

namespace diac {
namespace {

TEST(LogicSim, GateFunctions) {
  const Word a = 0b1100, b = 0b1010;
  EXPECT_EQ(eval_gate(GateKind::kAnd, {a, b}) & 0xF, Word{0b1000});
  EXPECT_EQ(eval_gate(GateKind::kOr, {a, b}) & 0xF, Word{0b1110});
  EXPECT_EQ(eval_gate(GateKind::kXor, {a, b}) & 0xF, Word{0b0110});
  EXPECT_EQ(eval_gate(GateKind::kNand, {a, b}) & 0xF, Word{0b0111});
  EXPECT_EQ(eval_gate(GateKind::kNor, {a, b}) & 0xF, Word{0b0001});
  EXPECT_EQ(eval_gate(GateKind::kXnor, {a, b}) & 0xF, Word{0b1001});
  EXPECT_EQ(eval_gate(GateKind::kNot, {a}) & 0xF, Word{0b0011});
  EXPECT_EQ(eval_gate(GateKind::kBuf, {a}) & 0xF, Word{0b1100});
}

TEST(LogicSim, MuxSelects) {
  const Word sel = 0b10, a = 0b11, b = 0b00;
  // sel=0 -> a, sel=1 -> b (lane-wise).
  EXPECT_EQ(eval_gate(GateKind::kMux, {sel, a, b}) & 0x3, Word{0b01});
}

TEST(LogicSim, WideGates) {
  EXPECT_EQ(eval_gate(GateKind::kAnd, {~Word{0}, ~Word{0}, Word{0b1}}) & 0x1,
            Word{1});
  EXPECT_EQ(eval_gate(GateKind::kOr, {Word{0}, Word{0}, Word{0b1}}) & 0x1,
            Word{1});
}

TEST(LogicSim, Constants) {
  EXPECT_EQ(eval_gate(GateKind::kConst0, {}), Word{0});
  EXPECT_EQ(eval_gate(GateKind::kConst1, {}), ~Word{0});
}

TEST(LogicSim, CombinationalSettle) {
  const Netlist nl = parse_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n");
  LogicSimulator sim(nl);
  sim.set_input("a", 0b1100);
  sim.set_input("b", 0b1010);
  sim.settle();
  EXPECT_EQ(sim.value("y") & 0xF, Word{0b0110});
}

TEST(LogicSim, SequentialCounterBit) {
  // q toggles every cycle: q' = NOT(q).
  const Netlist nl =
      parse_bench_string("OUTPUT(q)\nq = DFF(d)\nd = NOT(q)\n");
  LogicSimulator sim(nl);
  sim.settle();
  EXPECT_EQ(sim.value("q"), Word{0});  // reset state
  sim.step();
  sim.settle();
  EXPECT_EQ(sim.value("q"), ~Word{0});
  sim.step();
  sim.settle();
  EXPECT_EQ(sim.value("q"), Word{0});
}

TEST(LogicSim, ShiftRegisterDelaysInput) {
  const Netlist nl = parse_bench_string(
      "INPUT(d)\nOUTPUT(q2)\nq1 = DFF(d)\nq2 = DFF(q1)\n");
  LogicSimulator sim(nl);
  sim.set_input("d", 0xABCD);
  sim.step();  // q1 <- d
  sim.step();  // q2 <- q1
  sim.settle();
  EXPECT_EQ(sim.value("q2"), Word{0xABCD});
}

TEST(LogicSim, StateSnapshotRoundTrip) {
  const Netlist nl =
      parse_bench_string("OUTPUT(q)\nq = DFF(d)\nd = NOT(q)\n");
  LogicSimulator sim(nl);
  sim.run(3);
  const auto snapshot = sim.state();
  const auto fp_before = (sim.settle(), sim.fingerprint());
  sim.run(5);  // diverge
  sim.set_state(snapshot);
  sim.settle();
  EXPECT_EQ(sim.fingerprint(), fp_before);
}

TEST(LogicSim, SetStateRejectsWrongSize) {
  const Netlist nl =
      parse_bench_string("OUTPUT(q)\nq = DFF(d)\nd = NOT(q)\n");
  LogicSimulator sim(nl);
  EXPECT_THROW(sim.set_state({1, 2, 3}), std::invalid_argument);
}

TEST(LogicSim, SetInputRejectsNonInput) {
  const Netlist nl = parse_bench_string(
      "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n");
  LogicSimulator sim(nl);
  EXPECT_THROW(sim.set_input("y", 1), std::invalid_argument);
  EXPECT_THROW(sim.set_input("ghost", 1), std::invalid_argument);
}

TEST(LogicSim, MultiplierComputesProducts) {
  // The structural array multiplier must actually multiply.
  const Netlist nl = gen::array_multiplier("mul4", 4);
  LogicSimulator sim(nl);
  SplitMix64 rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const unsigned a = static_cast<unsigned>(rng.below(16));
    const unsigned b = static_cast<unsigned>(rng.below(16));
    for (int i = 0; i < 4; ++i) {
      sim.set_input("a" + std::to_string(i), (a >> i) & 1 ? ~Word{0} : 0);
      sim.set_input("b" + std::to_string(i), (b >> i) & 1 ? ~Word{0} : 0);
    }
    sim.settle();
    unsigned product = 0;
    for (int k = 0; k < 8; ++k) {
      const GateId out = nl.find("p" + std::to_string(k) + "$out");
      if (out == kNullGate) continue;
      if (sim.value(out) & 1) product |= 1u << k;
    }
    EXPECT_EQ(product, a * b) << a << " * " << b;
  }
}

TEST(LogicSim, MajorityVoterVotes) {
  const Netlist nl = gen::majority_voter("maj", 3);
  LogicSimulator sim(nl);
  // Lanes: try all 8 combinations in parallel lanes.
  Word v0 = 0, v1 = 0, v2 = 0;
  for (int lane = 0; lane < 8; ++lane) {
    if (lane & 1) v0 |= Word{1} << lane;
    if (lane & 2) v1 |= Word{1} << lane;
    if (lane & 4) v2 |= Word{1} << lane;
  }
  sim.set_input("v0", v0);
  sim.set_input("v1", v1);
  sim.set_input("v2", v2);
  sim.settle();
  const Word out = sim.value("maj$out");
  for (int lane = 0; lane < 8; ++lane) {
    const int ones = ((lane & 1) != 0) + ((lane & 2) != 0) + ((lane & 4) != 0);
    EXPECT_EQ((out >> lane) & 1, Word{ones >= 2 ? 1u : 0u}) << lane;
  }
}

TEST(LogicSim, FingerprintDetectsDifferences) {
  const Netlist nl = parse_bench_string(
      "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n");
  LogicSimulator sim(nl);
  sim.set_input("a", 0);
  sim.settle();
  const auto fp0 = sim.fingerprint();
  sim.set_input("a", ~Word{0});
  sim.settle();
  EXPECT_NE(sim.fingerprint(), fp0);
}

TEST(LogicSim, DeterministicAcrossRuns) {
  const Netlist nl = gen::random_logic("rl", 8, 4, 200, 1234);
  LogicSimulator s1(nl), s2(nl);
  for (GateId in : nl.inputs()) {
    s1.set_input(in, 0x5555AAAA5555AAAAULL);
    s2.set_input(in, 0x5555AAAA5555AAAAULL);
  }
  s1.run(10);
  s2.run(10);
  s1.settle();
  s2.settle();
  EXPECT_EQ(s1.fingerprint(), s2.fingerprint());
}

}  // namespace
}  // namespace diac
