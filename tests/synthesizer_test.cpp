#include <gtest/gtest.h>

#include <list>

#include "diac/synthesizer.hpp"
#include "netlist/suite.hpp"

namespace diac {
namespace {

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::nominal_45nm();
  return l;
}

const Netlist& circuit(const std::string& name) {
  static std::list<Netlist> cache;
  cache.push_back(build_benchmark(name));
  return cache.back();
}

TEST(Synthesizer, RejectsInstanceThatFitsInStorage) {
  // Assumption 1 (SIV.C): there is never enough energy to complete an
  // instance, so rho must exceed 1.
  SynthesisOptions opt;
  opt.instance_rho = 0.9;
  EXPECT_THROW(DiacSynthesizer(circuit("s27"), lib(), opt),
               std::invalid_argument);
}

TEST(Synthesizer, ScaleMapsTreeToInstanceEnergy) {
  DiacSynthesizer synth(circuit("s820"), lib());
  const auto r = synth.synthesize();
  const double instance =
      synth.options().instance_rho * synth.options().e_max;
  EXPECT_NEAR(r.design.scale * r.design.tree.total_energy(), instance,
              instance * 1e-9);
  // Assumption 1: instance energy exceeds storage capacity.
  EXPECT_GT(instance, synth.options().e_max);
}

TEST(Synthesizer, TasksRespectUpperLimit) {
  DiacSynthesizer synth(circuit("s1238"), lib());
  const auto r = synth.synthesize();
  const double upper =
      synth.options().upper_fraction * synth.options().e_max;
  for (const TaskNode& n : r.design.tree.nodes()) {
    if (n.gates.size() > 1) {
      EXPECT_LE(r.design.scale * n.dict.energy(), upper * 1.01);
    }
  }
}

TEST(Synthesizer, DiacHasCommitPlan) {
  DiacSynthesizer synth(circuit("s1238"), lib());
  const auto r = synth.synthesize();
  EXPECT_EQ(r.design.scheme, Scheme::kDiac);
  EXPECT_FALSE(r.replacement.points.empty());
  EXPECT_EQ(r.design.tree.nvm_points().size(), r.replacement.points.size());
}

TEST(Synthesizer, BaselinesShareTaskGranularity) {
  DiacSynthesizer synth(circuit("s953"), lib());
  const auto diac = synth.synthesize_scheme(Scheme::kDiac);
  const auto nvb = synth.synthesize_scheme(Scheme::kNvBased);
  const auto nvc = synth.synthesize_scheme(Scheme::kNvClustering);
  EXPECT_EQ(diac.design.tree.size(), nvb.design.tree.size());
  EXPECT_EQ(diac.design.tree.size(), nvc.design.tree.size());
  // Baselines carry no commit plan.
  EXPECT_TRUE(nvb.design.tree.nvm_points().empty());
  EXPECT_TRUE(nvb.replacement.points.empty());
}

TEST(Synthesizer, OptimizedSharesDiacDesign) {
  DiacSynthesizer synth(circuit("s953"), lib());
  const auto diac = synth.synthesize_scheme(Scheme::kDiac);
  const auto opt = synth.synthesize_scheme(Scheme::kDiacOptimized);
  EXPECT_EQ(opt.design.scheme, Scheme::kDiacOptimized);
  EXPECT_EQ(diac.replacement.points, opt.replacement.points);
  EXPECT_EQ(diac.replacement.total_bits, opt.replacement.total_bits);
}

TEST(Synthesizer, PolicySelectionChangesTaskCount) {
  SynthesisOptions p1;
  p1.policy = PolicyKind::kPolicy1;
  SynthesisOptions p2;
  p2.policy = PolicyKind::kPolicy2;
  const auto t1 =
      DiacSynthesizer(circuit("s820"), lib(), p1).transformed_tree();
  const auto t2 =
      DiacSynthesizer(circuit("s820"), lib(), p2).transformed_tree();
  EXPECT_GT(t1.size(), t2.size());
}

TEST(Synthesizer, TechnologySelectionPropagates) {
  SynthesisOptions opt;
  opt.technology = NvmTechnology::kReram;
  DiacSynthesizer synth(circuit("s820"), lib(), opt);
  const auto r = synth.synthesize();
  EXPECT_EQ(r.design.technology, NvmTechnology::kReram);
  EXPECT_NEAR(r.design.nvm.write_energy_per_bit,
              nvm_parameters(NvmTechnology::kReram).write_energy_per_bit,
              1e-20);
}

TEST(Synthesizer, ReramWritesCostMoreThanMram) {
  SynthesisOptions mram;
  SynthesisOptions reram;
  reram.technology = NvmTechnology::kReram;
  const auto rm =
      DiacSynthesizer(circuit("s820"), lib(), mram).synthesize();
  const auto rr =
      DiacSynthesizer(circuit("s820"), lib(), reram).synthesize();
  ASSERT_FALSE(rm.replacement.points.empty());
  const TaskId p = rm.replacement.points[0];
  EXPECT_GT(rr.design.boundary_write_energy(p),
            rm.design.boundary_write_energy(p));
}

TEST(Synthesizer, BudgetFractionControlsCommitDensity) {
  SynthesisOptions loose;
  loose.budget_fraction = 0.5;
  SynthesisOptions tight;
  tight.budget_fraction = 0.08;
  const auto rl =
      DiacSynthesizer(circuit("s1238"), lib(), loose).synthesize();
  const auto rt =
      DiacSynthesizer(circuit("s1238"), lib(), tight).synthesize();
  EXPECT_GT(rt.replacement.points.size(), rl.replacement.points.size());
}

TEST(Synthesizer, WorksAcrossSuites) {
  for (const char* name : {"s27", "b02", "b10", "sbc"}) {
    DiacSynthesizer synth(circuit(name), lib());
    const auto r = synth.synthesize();
    EXPECT_GT(r.design.tree.size(), 0u) << name;
    EXPECT_FALSE(r.replacement.points.empty()) << name;
    EXPECT_NO_THROW(r.design.tree.validate()) << name;
  }
}

}  // namespace
}  // namespace diac
