#include <gtest/gtest.h>

#include "netlist/bench_format.hpp"
#include "tree/energy_model.hpp"

namespace diac {
namespace {

TEST(EnergyModel, EmptyOperandIsFree) {
  const Netlist nl = parse_bench_string("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n");
  const CellLibrary lib = CellLibrary::nominal_45nm();
  const OperandCost c = operand_cost(nl, {}, lib);
  EXPECT_DOUBLE_EQ(c.energy(), 0.0);
  EXPECT_DOUBLE_EQ(c.delay, 0.0);
}

TEST(EnergyModel, SingleGateMatchesPaperFormula) {
  const Netlist nl = parse_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n");
  const CellLibrary lib = CellLibrary::nominal_45nm();
  const GateId g = nl.find("y");
  const OperandCost c = operand_cost(nl, std::vector<GateId>{g}, lib);
  // dynamic = 2 * delay * dyn_power; static excludes the active gate -> 0.
  EXPECT_NEAR(c.dynamic_energy, lib.switching_energy(GateKind::kNand, 2),
              1e-20);
  EXPECT_DOUBLE_EQ(c.static_energy, 0.0);
  EXPECT_NEAR(c.delay, lib.delay(GateKind::kNand, 2), 1e-15);
}

TEST(EnergyModel, DynamicEnergySumsOverMembers) {
  const Netlist nl = parse_bench_string(
      "INPUT(a)\nOUTPUT(y)\nw1 = NOT(a)\nw2 = NOT(w1)\ny = NOT(w2)\n");
  const CellLibrary lib = CellLibrary::nominal_45nm();
  std::vector<GateId> members = {nl.find("w1"), nl.find("w2"), nl.find("y")};
  const OperandCost c = operand_cost(nl, members, lib);
  EXPECT_NEAR(c.dynamic_energy, 3 * lib.switching_energy(GateKind::kNot, 1),
              1e-19);
  // Chain of 3: CDP = 3 inverter delays.
  EXPECT_NEAR(c.delay, 3 * lib.delay(GateKind::kNot, 1), 1e-15);
}

TEST(EnergyModel, StaticEnergyUsesCdpTimesLeakage) {
  const Netlist nl = parse_bench_string(
      "INPUT(a)\nOUTPUT(y)\nw1 = NOT(a)\nw2 = NOT(w1)\ny = NOT(w2)\n");
  const CellLibrary lib = CellLibrary::nominal_45nm();
  std::vector<GateId> members = {nl.find("w1"), nl.find("w2"), nl.find("y")};
  const OperandCost c = operand_cost(nl, members, lib);
  const double st = lib.static_power(GateKind::kNot, 1);
  // CDP * (sum - max) = 3d * (3st - st) = 3d * 2st.
  EXPECT_NEAR(c.static_energy, c.delay * 2 * st, 1e-24);
}

TEST(EnergyModel, ExternalFaninsArriveAtZero) {
  // Two parallel inverters: the operand containing only the second one
  // sees its input (the first inverter, outside the set) at t=0.
  const Netlist nl = parse_bench_string(
      "INPUT(a)\nOUTPUT(y)\nw1 = NOT(a)\ny = NOT(w1)\n");
  const CellLibrary lib = CellLibrary::nominal_45nm();
  const OperandCost c =
      operand_cost(nl, std::vector<GateId>{nl.find("y")}, lib);
  EXPECT_NEAR(c.delay, lib.delay(GateKind::kNot, 1), 1e-15);
}

TEST(EnergyModel, ParallelMembersShareCdp) {
  // Two independent inverters in one operand: CDP is one delay, not two.
  const Netlist nl = parse_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(x)\nOUTPUT(y)\nx = NOT(a)\ny = NOT(b)\n");
  const CellLibrary lib = CellLibrary::nominal_45nm();
  std::vector<GateId> members = {nl.find("x"), nl.find("y")};
  const OperandCost c = operand_cost(nl, members, lib);
  EXPECT_NEAR(c.delay, lib.delay(GateKind::kNot, 1), 1e-15);
  EXPECT_NEAR(c.dynamic_energy, 2 * lib.switching_energy(GateKind::kNot, 1),
              1e-19);
}

TEST(EnergyModel, PowerIsEnergyOverDelay) {
  const Netlist nl = parse_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nw = AND(a, b)\ny = NOT(w)\n");
  const CellLibrary lib = CellLibrary::nominal_45nm();
  std::vector<GateId> members = {nl.find("w"), nl.find("y")};
  const OperandCost c = operand_cost(nl, members, lib);
  EXPECT_NEAR(c.power, c.energy() / c.delay, 1e-12);
}

TEST(EnergyModel, NetlistCostCoversAllLogic) {
  const Netlist nl = parse_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
w1 = AND(a, b)
w2 = XOR(w1, a)
q = DFF(w2)
y = NOT(q)
)");
  const CellLibrary lib = CellLibrary::nominal_45nm();
  const OperandCost c = netlist_cost(nl, lib);
  const double expected = lib.switching_energy(GateKind::kAnd, 2) +
                          lib.switching_energy(GateKind::kXor, 2) +
                          lib.switching_energy(GateKind::kDff, 1) +
                          lib.switching_energy(GateKind::kNot, 1);
  EXPECT_NEAR(c.dynamic_energy, expected, 1e-18);
}

TEST(EnergyModel, PrecomputedPositionsMatchAdHoc) {
  const Netlist nl = parse_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
w1 = NAND(a, b)
w2 = NOR(w1, a)
y = XOR(w1, w2)
)");
  const CellLibrary lib = CellLibrary::nominal_45nm();
  std::vector<GateId> members = {nl.find("w1"), nl.find("w2"), nl.find("y")};
  const auto pos = topological_positions(nl);
  const OperandCost c1 = operand_cost(nl, members, lib);
  const OperandCost c2 = operand_cost(nl, members, lib, pos);
  EXPECT_DOUBLE_EQ(c1.dynamic_energy, c2.dynamic_energy);
  EXPECT_DOUBLE_EQ(c1.static_energy, c2.static_energy);
  EXPECT_DOUBLE_EQ(c1.delay, c2.delay);
}

TEST(EnergyModel, DffMemberContributesCaptureDelay) {
  const Netlist nl = parse_bench_string(
      "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n");
  const CellLibrary lib = CellLibrary::nominal_45nm();
  const OperandCost c =
      operand_cost(nl, std::vector<GateId>{nl.find("q")}, lib);
  EXPECT_NEAR(c.delay, lib.delay(GateKind::kDff, 1), 1e-15);
  EXPECT_GT(c.dynamic_energy, 0.0);
}

}  // namespace
}  // namespace diac
