// Property tests for the cache-key layer: the canonical netlist
// fingerprint (src/netlist/fingerprint.*) and the per-job digests
// (src/shard/job_key.*).
//
// Three properties carry the whole cache-correctness argument:
//   1. stability — re-declaring the same circuit in a different order
//      digests identically, so an equal design always hits;
//   2. sensitivity — flipping any single axis of the job tuple changes
//      the digest, so two different jobs can never share an entry;
//   3. no collisions in practice — distinct digests across the whole
//      24-circuit suite × candidate/scheme grid.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "netlist/bench_format.hpp"
#include "netlist/fingerprint.hpp"
#include "netlist/suite.hpp"
#include "search/candidate.hpp"
#include "serve/options.hpp"
#include "shard/job_key.hpp"
#include "util/hash128.hpp"

namespace diac {
namespace {

TEST(ServeKey, FingerprintStableUnderDeclarationReorder) {
  // The same circuit, gates and inputs declared in two different orders
  // (and under different module names): same canonical fingerprint.
  const Netlist a = parse_bench_string(
      "INPUT(a)\nINPUT(b)\n"
      "c = AND(a, b)\n"
      "d = OR(a, b)\n"
      "e = NAND(c, d)\n"
      "OUTPUT(e)\n",
      "first");
  const Netlist b = parse_bench_string(
      "INPUT(b)\nINPUT(a)\n"
      "d = OR(a, b)\n"
      "c = AND(a, b)\n"
      "e = NAND(c, d)\n"
      "OUTPUT(e)\n",
      "second");
  EXPECT_EQ(canonical_fingerprint(a), canonical_fingerprint(b));
}

TEST(ServeKey, FingerprintSeesStructure) {
  const Netlist a = parse_bench_string(
      "INPUT(a)\nINPUT(b)\nc = AND(a, b)\nOUTPUT(c)\n");
  const Netlist gate_kind = parse_bench_string(
      "INPUT(a)\nINPUT(b)\nc = OR(a, b)\nOUTPUT(c)\n");
  const Netlist fanin_order = parse_bench_string(
      "INPUT(a)\nINPUT(b)\nc = AND(b, a)\nOUTPUT(c)\n");
  const Netlist renamed = parse_bench_string(
      "INPUT(a)\nINPUT(b)\nx = AND(a, b)\nOUTPUT(x)\n");
  EXPECT_NE(canonical_fingerprint(a), canonical_fingerprint(gate_kind));
  EXPECT_NE(canonical_fingerprint(a), canonical_fingerprint(fanin_order));
  EXPECT_NE(canonical_fingerprint(a), canonical_fingerprint(renamed));
}

// One flipped axis must flip the digest.  Each lambda perturbs exactly
// one field of the (netlist, options, run) tuple.
TEST(ServeKey, McKeyDistinctForEveryFlippedAxis) {
  const Hash128 fp = canonical_fingerprint(build_benchmark("s27"));
  const Hash128 other_fp = canonical_fingerprint(build_benchmark("s344"));
  const EvaluationOptions base = serve::mc_eval_options({});
  const Hash128 key = mc_job_key(fp, base, 0);

  EXPECT_NE(key, mc_job_key(other_fp, base, 0)) << "netlist axis";
  EXPECT_NE(key, mc_job_key(fp, base, 1)) << "run axis";

  {
    EvaluationOptions o = base;
    o.synthesis.policy = PolicyKind::kPolicy1;
    EXPECT_NE(key, mc_job_key(fp, o, 0)) << "policy axis";
  }
  {
    EvaluationOptions o = base;
    o.synthesis.budget_fraction = 0.5;
    EXPECT_NE(key, mc_job_key(fp, o, 0)) << "budget axis";
  }
  {
    EvaluationOptions o = base;
    o.synthesis.technology = NvmTechnology::kReram;
    EXPECT_NE(key, mc_job_key(fp, o, 0)) << "NVM axis";
  }
  {
    EvaluationOptions o = base;
    o.simulator.target_instances += 1;
    EXPECT_NE(key, mc_job_key(fp, o, 0)) << "instances axis";
  }
  {
    EvaluationOptions o = base;
    o.simulator.max_time *= 2.0;
    EXPECT_NE(key, mc_job_key(fp, o, 0)) << "horizon axis";
  }
  {
    EvaluationOptions o = base;
    o.fsm.adaptive_sensing = !o.fsm.adaptive_sensing;
    EXPECT_NE(key, mc_job_key(fp, o, 0)) << "FSM axis";
  }
  {
    EvaluationOptions o = base;
    o.scenario.seed += 1;
    EXPECT_NE(key, mc_job_key(fp, o, 0)) << "seed axis";
  }
  {
    EvaluationOptions o = base;
    o.scenario.kind = SourceKind::kSolar;
    EXPECT_NE(key, mc_job_key(fp, o, 0)) << "source axis";
  }
  {
    EvaluationOptions o = base;
    o.scenario.rfid.max_power *= 2.0;
    EXPECT_NE(key, mc_job_key(fp, o, 0)) << "source-parameter axis";
  }
}

// Parameters only an *inactive* source kind reads stay out of the key:
// retuning solar defaults cannot invalidate rfid entries.
TEST(ServeKey, McKeyIgnoresInactiveSourceParameters) {
  const Hash128 fp = canonical_fingerprint(build_benchmark("s27"));
  const EvaluationOptions base = serve::mc_eval_options({});
  ASSERT_EQ(base.scenario.kind, SourceKind::kRfid);
  EvaluationOptions o = base;
  o.scenario.solar.peak_power *= 3.0;
  o.scenario.constant_power *= 2.0;
  o.scenario.square.duty = 0.9;
  EXPECT_EQ(mc_job_key(fp, base, 0), mc_job_key(fp, o, 0));
}

// The mc warm-start identity: the key is a function of the *derived*
// seed, not of the (base, run) pair that reached it.  Run 5 of a sweep
// based at s equals run 0 of a sweep whose base is shifted by the
// stride difference f(5) - f(0), where f is derive_seed at base 0.
TEST(ServeKey, McKeyIsAFunctionOfTheDerivedSeed) {
  const Hash128 fp = canonical_fingerprint(build_benchmark("s27"));
  const EvaluationOptions base = serve::mc_eval_options({});
  EvaluationOptions rebased = base;
  rebased.scenario = base.scenario.with_seed(
      base.scenario.seed + (derive_seed(0, 5) - derive_seed(0, 0)));
  ASSERT_EQ(derive_seed(rebased.scenario.seed, 0),
            derive_seed(base.scenario.seed, 5));
  EXPECT_EQ(mc_job_key(fp, base, 5), mc_job_key(fp, rebased, 0));
}

TEST(ServeKey, SearchKeyDistinctForEveryFlippedAxis) {
  const Hash128 fp = canonical_fingerprint(build_benchmark("s27"));
  const SearchOptions base = serve::search_options({});
  const DesignPoint point;
  const Hash128 key = search_job_key(fp, base, point);

  {
    DesignPoint p = point;
    p.policy = PolicyKind::kPolicy1;
    EXPECT_NE(key, search_job_key(fp, base, p)) << "policy axis";
  }
  {
    DesignPoint p = point;
    p.budget_fraction = 0.10;
    EXPECT_NE(key, search_job_key(fp, base, p)) << "budget axis";
  }
  {
    DesignPoint p = point;
    p.technology = NvmTechnology::kPcm;
    EXPECT_NE(key, search_job_key(fp, base, p)) << "NVM axis";
  }
  {
    DesignPoint p = point;
    p.scheme = Scheme::kNvBased;
    EXPECT_NE(key, search_job_key(fp, base, p)) << "scheme axis";
  }
  {
    DesignPoint p = point;
    p.adaptive_sensing = !p.adaptive_sensing;
    EXPECT_NE(key, search_job_key(fp, base, p)) << "sensing axis";
  }
  {
    SearchOptions o = base;
    o.objectives = SearchObjectives::parse("pdp");
    EXPECT_NE(key, search_job_key(fp, o, point)) << "objective-list axis";
  }
  {
    SearchOptions o = base;
    o.scenario.seed += 1;
    EXPECT_NE(key, search_job_key(fp, o, point)) << "scenario axis";
  }
}

// Pruning/batching steer evaluation order, not any job's result — the
// shard workers force prune off — so they must NOT be part of the key:
// a resumed search with different batching still hits.
TEST(ServeKey, SearchKeyIgnoresTraversalKnobs) {
  const Hash128 fp = canonical_fingerprint(build_benchmark("s27"));
  const SearchOptions base = serve::search_options({});
  SearchOptions o = base;
  o.prune = !o.prune;
  o.batch = base.batch * 2 + 1;
  EXPECT_EQ(search_job_key(fp, base, DesignPoint{}),
            search_job_key(fp, o, DesignPoint{}));
}

// Collision smoke over the real workload: every suite circuit × every
// candidate of a scheme-widened grid (and, per circuit, a seeded mc
// sweep) must digest uniquely.
TEST(ServeKey, NoCollisionsAcrossSuiteAndSchemeGrid) {
  CandidateSpace space;
  space.schemes = {Scheme::kNvBased, Scheme::kNvClustering, Scheme::kDiac,
                   Scheme::kDiacOptimized};
  const std::vector<DesignPoint> points = space.grid();
  const SearchOptions so = serve::search_options({});
  const EvaluationOptions eo = serve::mc_eval_options({});

  std::set<Hash128> keys;
  std::size_t expected = 0;
  std::set<Hash128> fingerprints;
  for (const BenchmarkSpec& spec : benchmark_suite()) {
    const Hash128 fp = canonical_fingerprint(build_benchmark(spec));
    EXPECT_TRUE(fingerprints.insert(fp).second)
        << spec.name << ": fingerprint collision";
    for (const DesignPoint& p : points) {
      keys.insert(search_job_key(fp, so, p));
      ++expected;
    }
    for (int run = 0; run < 8; ++run) {
      keys.insert(mc_job_key(fp, eo, run));
      ++expected;
    }
  }
  EXPECT_EQ(keys.size(), expected) << "digest collision in the suite grid";
}

}  // namespace
}  // namespace diac
