// Cold-vs-warm bit-identity for the content-addressed result cache
// (src/serve/cache.*), through the real `diac` binary and through the
// in-process API.
//
// The contract under test (docs/SERVE.md): a sweep with `--cache-dir`
// produces byte-identical stdout and --csv whether the cache is empty
// (cold), fully populated (warm), populated by a *different* process,
// or populated and then damaged — a corrupted/truncated entry must be
// detected, evicted and recomputed, never served.  Obs metrics are
// deliberately outside this contract: cache hit/miss counters *should*
// differ between cold and warm runs (that difference is their purpose),
// which is exactly why the cache lives behind the D6 wall — metrics can
// never feed back into result bytes.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cell/cell_library.hpp"
#include "exp/runner.hpp"
#include "metrics/montecarlo.hpp"
#include "netlist/fingerprint.hpp"
#include "netlist/suite.hpp"
#include "power/harvester.hpp"
#include "power/trace_io.hpp"
#include "serve/cache.hpp"
#include "serve/options.hpp"
#include "shard/job_key.hpp"
#include "shard/plan.hpp"
#include "shard/worker.hpp"

#ifndef DIAC_CLI_PATH
#error "DIAC_CLI_PATH must point at the diac CLI binary"
#endif

namespace diac {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

struct CliRun {
  int exit_code = -1;
  std::string out;
};

// Runs `diac <args>`, capturing stdout exactly (stderr is diagnostics
// and excluded from the byte-identity contract).
CliRun run_cli(const std::string& args, const std::string& tag) {
  const fs::path out = fs::path(::testing::TempDir()) / (tag + ".out");
  const std::string cmd = std::string(DIAC_CLI_PATH) + " " + args + " > " +
                          out.string() + " 2> " + out.string() + ".err";
  CliRun run;
  run.exit_code = std::system(cmd.c_str());
  run.out = slurp(out);
  return run;
}

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<fs::path> cache_entries(const fs::path& cache_dir) {
  std::vector<fs::path> entries;
  for (const auto& e : fs::recursive_directory_iterator(cache_dir)) {
    if (e.is_regular_file()) entries.push_back(e.path());
  }
  return entries;
}

// Cold populates, warm must read back byte-identically — and a third
// run proves a *new process* attached to the same directory also hits.
void expect_cold_warm_identity(const std::string& base_args,
                               const std::string& tag) {
  const fs::path cache = fresh_dir(tag + "_cache");
  const std::string args = base_args + " --cache-dir " + cache.string();
  const CliRun cold = run_cli(args, tag + "_cold");
  ASSERT_EQ(cold.exit_code, 0) << cold.out;
  EXPECT_FALSE(cold.out.empty());
  EXPECT_FALSE(cache_entries(cache).empty());
  const CliRun warm = run_cli(args, tag + "_warm");
  ASSERT_EQ(warm.exit_code, 0) << warm.out;
  EXPECT_EQ(cold.out, warm.out) << "cold vs warm stdout differs";
  const CliRun second_process = run_cli(args, tag + "_proc2");
  ASSERT_EQ(second_process.exit_code, 0);
  EXPECT_EQ(cold.out, second_process.out)
      << "a second process on the same --cache-dir diverged";
}

TEST(ServeCache, McColdWarmStdoutByteIdentical) {
  expect_cold_warm_identity("mc s344 --runs 6 --instances 4 --threads 2",
                            "servecache_mc");
}

TEST(ServeCache, ReplayColdWarmStdoutByteIdentical) {
  const fs::path dir = fresh_dir("servecache_traces");
  RfidBurstSource::Options options;
  options.horizon = 1200.0;
  for (int i = 0; i < 4; ++i) {
    const RfidBurstSource source(0xBEE + i, options);
    save_trace_csv((dir / ("t" + std::to_string(i) + ".csv")).string(),
                   source, 1200.0, 0.5);
  }
  expect_cold_warm_identity(
      "replay s344 --trace " + dir.string() + " --instances 3 --threads 2",
      "servecache_replay");
}

TEST(ServeCache, SearchColdWarmStdoutByteIdentical) {
  expect_cold_warm_identity(
      "search s344 --random 6 --instances 4 --max-time 8000 --threads 2",
      "servecache_search");
}

TEST(ServeCache, SearchColdWarmCsvByteIdentical) {
  const fs::path cache = fresh_dir("servecache_csv_cache");
  const fs::path cold_csv = fs::path(::testing::TempDir()) / "sc_cold.csv";
  const fs::path warm_csv = fs::path(::testing::TempDir()) / "sc_warm.csv";
  const std::string base =
      "search s344 --random 6 --instances 4 --max-time 8000 --threads 2 "
      "--cache-dir " +
      cache.string();
  const CliRun cold =
      run_cli(base + " --csv " + cold_csv.string(), "servecache_csv_cold");
  ASSERT_EQ(cold.exit_code, 0) << cold.out;
  const CliRun warm =
      run_cli(base + " --csv " + warm_csv.string(), "servecache_csv_warm");
  ASSERT_EQ(warm.exit_code, 0) << warm.out;
  const std::string a = slurp(cold_csv);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, slurp(warm_csv)) << "cold vs warm --csv differs";
}

// The cached path must agree byte-for-byte with the established
// `--shards 1` output (both print the shard-style report header), so
// the cache layer can never fork the report format.
TEST(ServeCache, CachedRunMatchesShardedRun) {
  const fs::path cache = fresh_dir("servecache_vs_shards");
  const std::string base = "mc s344 --runs 4 --instances 4 --threads 2";
  const CliRun sharded = run_cli(base + " --shards 1", "servecache_sh");
  ASSERT_EQ(sharded.exit_code, 0);
  const CliRun cached =
      run_cli(base + " --cache-dir " + cache.string(), "servecache_ca");
  ASSERT_EQ(cached.exit_code, 0);
  EXPECT_EQ(sharded.out, cached.out);
}

TEST(ServeCache, CorruptedEntriesAreEvictedAndRecomputed) {
  const fs::path cache = fresh_dir("servecache_corrupt");
  const std::string args = "mc s344 --runs 4 --instances 4 --threads 2 "
                           "--cache-dir " +
                           cache.string();
  const CliRun cold = run_cli(args, "servecache_corrupt_cold");
  ASSERT_EQ(cold.exit_code, 0);
  const std::vector<fs::path> entries = cache_entries(cache);
  ASSERT_FALSE(entries.empty());

  // Damage every entry a different way: truncation (drops the `end`
  // trailer), byte corruption, and outright garbage.
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i % 3 == 0) {
      const std::string full = slurp(entries[i]);
      std::ofstream out(entries[i], std::ios::binary | std::ios::trunc);
      out << full.substr(0, full.size() / 2);
    } else if (i % 3 == 1) {
      std::ofstream out(entries[i], std::ios::binary | std::ios::trunc);
      out << "diac-shard 1 mc 1 0 1\nrow 0 not-a-number\nend 1\n";
    } else {
      std::ofstream out(entries[i], std::ios::binary | std::ios::trunc);
      out << "garbage\n";
    }
  }

  const CliRun warm = run_cli(args, "servecache_corrupt_warm");
  ASSERT_EQ(warm.exit_code, 0) << warm.out;
  EXPECT_EQ(cold.out, warm.out)
      << "damaged cache entries changed the report";
  // Every damaged entry was evicted and re-published as a valid row
  // file (the recompute stores over the evicted key).
  for (const fs::path& entry : cache_entries(cache)) {
    const std::string text = slurp(entry);
    EXPECT_NE(text.find("diac-shard"), std::string::npos) << entry;
    EXPECT_NE(text.find("\nend 1\n"), std::string::npos) << entry;
  }
}

// --- in-process API ---------------------------------------------------------

serve::ResultCache make_cache(const fs::path& dir) {
  serve::CacheConfig config;
  config.dir = dir.string();
  config.build_hash = "testbuild";
  return serve::ResultCache(std::move(config));
}

TEST(ServeCache, StoreLookupRoundTrip) {
  serve::ResultCache cache = make_cache(fresh_dir("servecache_rt"));
  const Hash128 key{0x1234, 0x5678};
  const std::vector<std::string> tokens{"0x1p+1", "42", "nan"};
  std::vector<std::string> found;
  EXPECT_FALSE(cache.lookup("mc", key, found));
  cache.store("mc", key, tokens);
  ASSERT_TRUE(cache.lookup("mc", key, found));
  EXPECT_EQ(found, tokens);
  // Kinds are separate namespaces: an mc entry is invisible to replay.
  EXPECT_FALSE(cache.lookup("replay", key, found));
}

TEST(ServeCache, BuildHashNamespacesEntries) {
  const fs::path dir = fresh_dir("servecache_builds");
  serve::CacheConfig a;
  a.dir = dir.string();
  a.build_hash = "build-a";
  serve::CacheConfig b;
  b.dir = dir.string();
  b.build_hash = "build-b";
  serve::ResultCache cache_a{std::move(a)};
  serve::ResultCache cache_b{std::move(b)};
  const Hash128 key{7, 9};
  cache_a.store("mc", key, {"1", "2"});
  std::vector<std::string> found;
  EXPECT_FALSE(cache_b.lookup("mc", key, found))
      << "an entry leaked across build namespaces";
  EXPECT_TRUE(cache_a.lookup("mc", key, found));
}

TEST(ServeCache, TruncatedEntryIsEvictedOnLookup) {
  serve::ResultCache cache = make_cache(fresh_dir("servecache_trunc"));
  const Hash128 key{0xABC, 0xDEF};
  cache.store("mc", key, {"1", "2", "3"});
  const fs::path path = cache.entry_path("mc", key);
  ASSERT_TRUE(fs::exists(path));
  const std::string full = slurp(path);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << full.substr(0, full.size() - 4);  // lose the `end` trailer
  }
  std::vector<std::string> found;
  EXPECT_FALSE(cache.lookup("mc", key, found));
  EXPECT_FALSE(fs::exists(path)) << "damaged entry was not evicted";
  // A re-store heals the slot.
  cache.store("mc", key, {"1", "2", "3"});
  EXPECT_TRUE(cache.lookup("mc", key, found));
}

TEST(ServeCache, PruneTrimsOldestEntriesUnderTheCap) {
  const fs::path dir = fresh_dir("servecache_prune");
  serve::CacheConfig config;
  config.dir = dir.string();
  config.build_hash = "testbuild";
  config.limit_bytes = 2048;  // a handful of rows
  serve::ResultCache cache{std::move(config)};
  const std::vector<std::string> tokens(16, "0x1.8p+3");
  for (std::uint64_t i = 0; i < 64; ++i) {
    cache.store("mc", Hash128{i, i * 3 + 1}, tokens);
  }
  cache.prune();
  std::uintmax_t total = 0;
  for (const fs::path& entry : cache_entries(dir)) {
    total += fs::file_size(entry);
  }
  EXPECT_LE(total, 2048u) << "prune left the store over its cap";
  EXPECT_GT(total, 0u) << "prune emptied the store entirely";
}

// A widened sweep reuses the narrow sweep's entries: mc keys are a
// function of the *derived per-run seed*, not (base seed, run count),
// so --runs 8 over a cache primed with --runs 4 adds exactly 4 entries.
TEST(ServeCache, WiderMcSweepWarmStartsFromNarrowOne) {
  const fs::path dir = fresh_dir("servecache_widen");
  serve::ResultCache cache = make_cache(dir);
  const Netlist nl = build_benchmark("s27");
  const CellLibrary lib = CellLibrary::nominal_45nm();
  serve::OptionMap options;
  options["instances"] = "2";
  const EvaluationOptions eo = serve::mc_eval_options(options);
  ExperimentRunner runner(2);
  std::ostringstream sink;
  run_mc_shard(sink, nl, lib, eo, 4, ShardPlan{}, runner, &cache);
  EXPECT_EQ(cache_entries(dir).size(), 4u);
  std::ostringstream sink8;
  run_mc_shard(sink8, nl, lib, eo, 8, ShardPlan{}, runner, &cache);
  EXPECT_EQ(cache_entries(dir).size(), 8u)
      << "the widened sweep did not reuse the narrow sweep's entries";
  // And the wide stream's first rows equal the narrow stream's rows.
  const std::string narrow = sink.str();
  const std::string wide = sink8.str();
  const std::string row0 = narrow.substr(narrow.find("\nrow 0 "));
  EXPECT_NE(wide.find(row0.substr(0, row0.find('\n', 1))),
            std::string::npos);
}

}  // namespace
}  // namespace diac
