#include <gtest/gtest.h>

#include "netlist/bench_format.hpp"

namespace diac {
namespace {

constexpr const char* kS27Like = R"(
# A small ISCAS-89-style circuit.
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)

G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
G17 = NOT(G11)
)";

TEST(BenchFormat, ParsesS27LikeCircuit) {
  const Netlist nl = parse_bench_string(kS27Like, "s27ish");
  EXPECT_EQ(nl.inputs().size(), 4u);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.dffs().size(), 3u);
  EXPECT_EQ(nl.logic_gate_count(), 13u);  // 10 comb + 3 DFF
  EXPECT_NO_THROW(nl.validate());
}

TEST(BenchFormat, SupportsAllFunctions) {
  const Netlist nl = parse_bench_string(R"(
INPUT(a)
INPUT(b)
INPUT(s)
OUTPUT(z)
w1 = BUF(a)
w2 = NOT(a)
w3 = AND(a, b)
w4 = NAND(a, b)
w5 = OR(a, b)
w6 = NOR(a, b)
w7 = XOR(a, b)
w8 = XNOR(a, b)
w9 = MUX(s, w3, w5)
w10 = DFF(w9)
z = XOR(w10, w7)
)");
  EXPECT_EQ(nl.logic_gate_count(), 11u);
  EXPECT_NO_THROW(nl.validate());
}

TEST(BenchFormat, CaseInsensitiveKeywords) {
  const Netlist nl = parse_bench_string(
      "input(a)\ninput(b)\noutput(y)\ny = nand(a, b)\n");
  EXPECT_EQ(nl.logic_gate_count(), 1u);
}

TEST(BenchFormat, CommentsAndBlankLinesIgnored) {
  const Netlist nl = parse_bench_string(
      "# header\n\nINPUT(a)  # port\nOUTPUT(y)\n\ny = NOT(a) # invert\n");
  EXPECT_EQ(nl.logic_gate_count(), 1u);
}

TEST(BenchFormat, UndefinedSignalRejected) {
  EXPECT_THROW(parse_bench_string("INPUT(a)\ny = AND(a, ghost)\n"),
               std::runtime_error);
}

TEST(BenchFormat, DuplicateDefinitionRejected) {
  EXPECT_THROW(
      parse_bench_string("INPUT(a)\nx = NOT(a)\nx = BUF(a)\n"),
      std::runtime_error);
}

TEST(BenchFormat, UnknownFunctionRejected) {
  EXPECT_THROW(parse_bench_string("INPUT(a)\ny = FROB(a)\n"),
               std::runtime_error);
}

TEST(BenchFormat, UndrivenOutputRejected) {
  EXPECT_THROW(parse_bench_string("INPUT(a)\nOUTPUT(nothing)\n"),
               std::runtime_error);
}

TEST(BenchFormat, WrongOperandCountRejected) {
  EXPECT_THROW(parse_bench_string("INPUT(a)\ny = NOT(a, a)\n"),
               std::runtime_error);
}

TEST(BenchFormat, ErrorsCarryLineNumbers) {
  try {
    parse_bench_string("INPUT(a)\n\ny = FROB(a)\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(BenchFormat, RoundTripPreservesStructure) {
  const Netlist original = parse_bench_string(kS27Like, "rt");
  const std::string text = to_bench_string(original);
  const Netlist reparsed = parse_bench_string(text, "rt2");
  EXPECT_EQ(reparsed.inputs().size(), original.inputs().size());
  EXPECT_EQ(reparsed.outputs().size(), original.outputs().size());
  EXPECT_EQ(reparsed.dffs().size(), original.dffs().size());
  EXPECT_EQ(reparsed.logic_gate_count(), original.logic_gate_count());
}

TEST(BenchFormat, ForwardReferencesAllowed) {
  // DFF feedback requires using a signal before its definition.
  const Netlist nl = parse_bench_string(
      "OUTPUT(q)\nq = DFF(d)\nd = NOT(q)\n");
  EXPECT_EQ(nl.dffs().size(), 1u);
  EXPECT_NO_THROW(nl.validate());
}

TEST(BenchFormat, ConstantsSupported) {
  const Netlist nl = parse_bench_string(
      "INPUT(a)\nOUTPUT(y)\none = VDD()\ny = AND(a, one)\n");
  EXPECT_NO_THROW(nl.validate());
  EXPECT_EQ(nl.logic_gate_count(), 1u);  // constants are pseudo-cells
}

TEST(BenchFormat, MissingFileThrows) {
  EXPECT_THROW(parse_bench_file("/nonexistent/path.bench"),
               std::runtime_error);
}

}  // namespace
}  // namespace diac
