#include <gtest/gtest.h>

#include <list>

#include "diac/synthesizer.hpp"
#include "netlist/suite.hpp"
#include "runtime/executor.hpp"

namespace diac {
namespace {

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::nominal_45nm();
  return l;
}

SynthesisResult synth(const std::string& name, Scheme scheme) {
  static std::list<Netlist> cache;
  cache.push_back(build_benchmark(name));
  return DiacSynthesizer(cache.back(), lib()).synthesize_scheme(scheme);
}

TEST(Executor, StepsFollowSchedule) {
  const auto r = synth("s820", Scheme::kDiac);
  const FsmConfig cfg;
  const TaskProgram prog(r.design, cfg);
  ASSERT_EQ(prog.size(), r.design.tree.size());
  for (std::size_t i = 0; i < prog.size(); ++i) {
    EXPECT_EQ(prog.steps()[i].task, r.design.tree.schedule()[i]);
  }
}

TEST(Executor, DurationsDeriveFromActivePower) {
  const auto r = synth("s820", Scheme::kDiac);
  FsmConfig cfg;
  cfg.active_power = 3.0e-3;
  const TaskProgram prog(r.design, cfg);
  for (const TaskStep& s : prog.steps()) {
    EXPECT_NEAR(s.duration, s.energy / cfg.active_power, 1e-12);
  }
}

TEST(Executor, InstanceEnergyIncludesPersistCosts) {
  const auto r = synth("s820", Scheme::kNvBased);
  const FsmConfig cfg;
  const TaskProgram prog(r.design, cfg);
  double expect = 0;
  for (const TaskStep& s : prog.steps()) {
    expect += s.energy + s.persist_energy;
  }
  EXPECT_NEAR(prog.instance_energy(), expect, 1e-12);
  EXPECT_GT(prog.instance_energy(),
            r.design.scale * r.design.tree.total_energy());
}

TEST(Executor, CheckpointSchemesResumeInPlace) {
  const auto r = synth("s820", Scheme::kNvBased);
  const TaskProgram prog(r.design, FsmConfig{});
  for (int i = 0; i <= static_cast<int>(prog.size()); ++i) {
    EXPECT_EQ(prog.resume_after_loss(i), i);
  }
}

TEST(Executor, DiacRewindsToLastCommit) {
  const auto r = synth("s1238", Scheme::kDiac);
  const TaskProgram prog(r.design, FsmConfig{});
  // Before the first commit, resume is step 0.
  int first_commit = -1;
  for (std::size_t i = 0; i < prog.size(); ++i) {
    if (prog.steps()[i].persist) {
      first_commit = static_cast<int>(i);
      break;
    }
  }
  ASSERT_GE(first_commit, 0);
  EXPECT_EQ(prog.resume_after_loss(first_commit), 0);
  // Just past the first commit, resume is right after it.
  EXPECT_EQ(prog.resume_after_loss(first_commit + 1), first_commit + 1);
  // Mid-way between commits, resume rewinds.
  int second_commit = -1;
  for (std::size_t i = first_commit + 1; i < prog.size(); ++i) {
    if (prog.steps()[i].persist) {
      second_commit = static_cast<int>(i);
      break;
    }
  }
  if (second_commit > first_commit + 1) {
    EXPECT_EQ(prog.resume_after_loss(second_commit), first_commit + 1);
  }
}

TEST(Executor, ResumeClampsRange) {
  const auto r = synth("s820", Scheme::kDiac);
  const TaskProgram prog(r.design, FsmConfig{});
  EXPECT_EQ(prog.resume_after_loss(-5), 0);
  EXPECT_LE(prog.resume_after_loss(1 << 20),
            static_cast<int>(prog.size()));
}

TEST(Executor, MaxStepEnergyCoversDispatch) {
  const auto r = synth("s820", Scheme::kNvBased);
  FsmConfig cfg;
  const TaskProgram prog(r.design, cfg);
  double max_raw = 0;
  for (const TaskStep& s : prog.steps()) {
    max_raw = std::max(max_raw, s.energy + s.persist_energy);
  }
  EXPECT_NEAR(prog.max_step_energy(), max_raw + cfg.dispatch_energy, 1e-12);
}

TEST(Executor, NvBasedInstanceCostsMoreThanDiac) {
  // The whole point: per-task persistence outweighs sparse commits.
  const auto nvb = synth("s1238", Scheme::kNvBased);
  const auto diac = synth("s1238", Scheme::kDiac);
  const TaskProgram p_nvb(nvb.design, FsmConfig{});
  const TaskProgram p_diac(diac.design, FsmConfig{});
  EXPECT_GT(p_nvb.instance_energy(), p_diac.instance_energy());
  EXPECT_GT(p_nvb.instance_duration(), p_diac.instance_duration());
}

TEST(Executor, RejectsBadConfig) {
  const auto r = synth("s820", Scheme::kDiac);
  FsmConfig cfg;
  cfg.active_power = 0;
  EXPECT_THROW(TaskProgram(r.design, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace diac
