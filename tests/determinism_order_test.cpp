// Input-order independence of report-feeding aggregation (lint rule D2's
// behavioural counterpart, see docs/LINTS.md).  The quantities that reach
// reports and row codecs — operand costs, task fan counts, clustering
// bits, logic-sim outputs — must be bit-identical no matter how the
// caller happens to order members or declare gates: they are computed
// from sorted snapshots, never from hash iteration order.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "diac/baselines.hpp"
#include "netlist/bench_format.hpp"
#include "netlist/logic_sim.hpp"
#include "tree/energy_model.hpp"
#include "tree/task_tree.hpp"

namespace diac {
namespace {

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::nominal_45nm();
  return l;
}

// A small sequential circuit, declared in two different line orders: the
// same design, but every GateId differs between the two parses.
constexpr const char* kForwardBench = R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
d1 = DFF(n1)
d2 = DFF(n2)
n1 = AND(a, d2)
n2 = NOT(d1)
g1 = XOR(d1, d2)
g2 = OR(g1, b)
y = BUF(g2)
)";

constexpr const char* kShuffledBench = R"(
OUTPUT(y)
g2 = OR(g1, b)
n2 = NOT(d1)
d2 = DFF(n2)
g1 = XOR(d1, d2)
INPUT(b)
y = BUF(g2)
n1 = AND(a, d2)
INPUT(a)
d1 = DFF(n1)
)";

TEST(DeterminismOrder, OperandCostIgnoresMemberOrder) {
  const Netlist nl = parse_bench_string(kForwardBench);
  std::vector<GateId> members;
  for (GateId id = 0; id < nl.size(); ++id) {
    if (is_logic(nl.gate(id).kind)) members.push_back(id);
  }
  const OperandCost ref = operand_cost(nl, members, lib());

  std::vector<std::vector<GateId>> orders;
  orders.push_back({members.rbegin(), members.rend()});
  std::vector<GateId> rotated = members;
  std::rotate(rotated.begin(), rotated.begin() + 2, rotated.end());
  orders.push_back(rotated);
  std::vector<GateId> shuffled = members;
  std::mt19937 rng(7);  // fixed seed: the test itself stays reproducible
  std::shuffle(shuffled.begin(), shuffled.end(), rng);
  orders.push_back(shuffled);

  for (const auto& order : orders) {
    const OperandCost got = operand_cost(nl, order, lib());
    // Bit-exact, not approximate: the accumulation order inside
    // operand_cost is the topological order, not the caller's order.
    EXPECT_EQ(got.delay, ref.delay);
    EXPECT_EQ(got.dynamic_energy, ref.dynamic_energy);
    EXPECT_EQ(got.static_energy, ref.static_energy);
    EXPECT_EQ(got.power, ref.power);
  }
}

TEST(DeterminismOrder, TaskFanCountsIgnoreDeclarationOrder) {
  const Netlist fwd = parse_bench_string(kForwardBench);
  const Netlist shf = parse_bench_string(kShuffledBench);
  ASSERT_EQ(fwd.logic_gate_count(), shf.logic_gate_count());

  const TaskTree tf = per_gate_tree(fwd, lib());
  const TaskTree ts = per_gate_tree(shf, lib());
  for (GateId id = 0; id < fwd.size(); ++id) {
    if (!is_logic(fwd.gate(id).kind)) continue;
    const std::string& name = fwd.gate(id).name;
    const int nf = tf.partition()[id];
    const int ns = ts.partition()[shf.find(name)];
    ASSERT_GE(nf, 0);
    ASSERT_GE(ns, 0);
    const TaskNode& a = tf.node(static_cast<TaskId>(nf));
    const TaskNode& b = ts.node(static_cast<TaskId>(ns));
    EXPECT_EQ(a.dict.fanin, b.dict.fanin) << name;
    EXPECT_EQ(a.dict.fanout, b.dict.fanout) << name;
    EXPECT_EQ(a.dict.level, b.dict.level) << name;
    EXPECT_EQ(a.dict.delay, b.dict.delay) << name;
    EXPECT_EQ(a.dict.dynamic_energy, b.dict.dynamic_energy) << name;
  }
}

TEST(DeterminismOrder, ClusteringBitsIgnoreDeclarationOrder) {
  const Netlist fwd = parse_bench_string(kForwardBench);
  const Netlist shf = parse_bench_string(kShuffledBench);
  EXPECT_EQ(nv_based_state_bits(fwd), nv_based_state_bits(shf));
  EXPECT_EQ(nv_clustering_state_bits(fwd), nv_clustering_state_bits(shf));
  EXPECT_EQ(le_ff_clustering_ratio(fwd), le_ff_clustering_ratio(shf));
}

TEST(DeterminismOrder, LogicSimOutputsIgnoreDeclarationOrder) {
  const Netlist fwd = parse_bench_string(kForwardBench);
  const Netlist shf = parse_bench_string(kShuffledBench);
  LogicSimulator sa(fwd);
  LogicSimulator sb(shf);
  std::mt19937_64 rng(0xD1AC);  // fixed seed
  for (int cycle = 0; cycle < 32; ++cycle) {
    const Word a = rng(), b = rng();
    sa.set_input("a", a);
    sa.set_input("b", b);
    sb.set_input("a", a);
    sb.set_input("b", b);
    sa.step();
    sb.step();
    EXPECT_EQ(sa.value("y"), sb.value("y")) << "cycle " << cycle;
    EXPECT_EQ(sa.value("d1"), sb.value("d1")) << "cycle " << cycle;
    EXPECT_EQ(sa.value("d2"), sb.value("d2")) << "cycle " << cycle;
  }
}

}  // namespace
}  // namespace diac
