// Golden fixture: must trip rule D2 exactly once (hash iteration order
// leaking into a report-feeding path).
#include <string>
#include <vector>

namespace diac_fixture {

std::vector<std::string> report_rows() {
  std::unordered_map<std::string, double> totals;  // the lone D2 violation
  std::vector<std::string> rows;
  for (const auto& [name, value] : totals) {
    rows.push_back(name + "=" + std::to_string(value));
  }
  return rows;
}

}  // namespace diac_fixture
