// D6 fixture (clean, producer side): result *producers* such as the
// simulator may freely include obs and count events — D6 only guards
// the files that define and serialize results (src/metrics, the CSV
// writer, the shard codec/merge, runtime/stats).  obs is also a lower
// layer than runtime, so D5 stays silent too.
#include "obs/obs.hpp"

namespace diac_fixture {

void probe_clean() { DIAC_OBS_COUNT("fixture.events", 1); }

}  // namespace diac_fixture
