// D6 fixture (clean, reporting side): a src/metrics file that builds
// its report from RunStats and the ordered containers alone.  No obs
// include, no DIAC_OBS_* / DIAC_TRACE_* symbols — nothing fires.
#include <vector>

#include "metrics/report.hpp"
#include "runtime/stats.hpp"
#include "util/csv.hpp"

namespace diac_fixture {

double report_clean() { return 0.0; }

}  // namespace diac_fixture
