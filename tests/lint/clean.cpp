// Golden fixture: must pass every rule with zero violations and zero
// suppressions.  Exercises the near-misses: seeded RNG (not ambient),
// ordered containers, per-slot parallel writes, and identifiers that
// merely contain banned substrings (write_time, max_time, brand).
#include <cstddef>
#include <cstdint>
#include <map>
#include <random>
#include <vector>

namespace diac_fixture {

struct FakeRunner {
  template <typename Fn>
  void parallel_for(std::size_t n, Fn&& fn) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
};

double write_time(int bits) { return 1e-6 * bits; }

double max_time_brand(std::uint64_t seed) {
  std::mt19937_64 rng(seed);  // explicitly seeded: fine
  return static_cast<double>(rng());
}

std::vector<double> per_slot(FakeRunner& runner, std::size_t n) {
  std::vector<double> out(n, 0.0);
  runner.parallel_for(n, [&](std::size_t i) {
    out[i] = write_time(static_cast<int>(i));  // own slot only: fine
  });
  std::map<int, double> totals;  // ordered: fine to iterate
  for (const auto& [k, v] : totals) out.push_back(v + k);
  return out;
}

}  // namespace diac_fixture
