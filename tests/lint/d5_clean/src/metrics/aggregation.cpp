// D5 fixture (clean): src/metrics sits near the top of the layer order,
// so it may include itself and everything below — and system headers
// and flat includes are never layering edges.
#include <vector>

#include "diac/design.hpp"
#include "exp/experiment.hpp"
#include "metrics/report.hpp"
#include "netlist/netlist.hpp"
#include "search/pareto.hpp"
#include "util/rng.hpp"
#include "verify/drc.hpp"

namespace diac_fixture {

double aggregate() { return 0.0; }

}  // namespace diac_fixture
