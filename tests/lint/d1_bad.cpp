// Golden fixture: must trip rule D1 exactly once (seeding from the
// ambient environment makes sweep results unreproducible).
#include <random>

namespace diac_fixture {

unsigned ambient_seed() {
  std::random_device rd;  // the lone D1 violation in this file
  return rd();
}

}  // namespace diac_fixture
