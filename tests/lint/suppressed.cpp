// Golden fixture: every violation here carries an allow(...) suppression
// with a reason, so the run must be clean with exactly 4 counted
// suppressions: the stand-alone-line form (1), the same-line form (1),
// and one multi-ID allow covering a line that trips two rules (2).
#include <cstddef>
#include <ctime>
#include <string>
#include <vector>

namespace diac_fixture {

// diac-lint: allow(D2) fixture: demonstrates the stand-alone-line form
std::unordered_map<std::string, int> lookup_table();

long stamp() {
  return time(nullptr);  // diac-lint: allow(D1) fixture: same-line form
}

// diac-lint: allow(D1,D2) fixture: one multi-ID allow covering both rules
std::unordered_set<int> racy(long t = time(nullptr));

}  // namespace diac_fixture
