// Golden fixture: must trip rule D3 exactly once (a parallel_for job
// accumulating into captured shared state instead of writing its own
// slot; the merge belongs in summarize_monte_carlo / ranked_front).
#include <cstddef>

namespace diac_fixture {

struct FakeRunner {
  template <typename Fn>
  void parallel_for(std::size_t n, Fn&& fn) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
};

double racy_total(FakeRunner& runner, const double* samples, std::size_t n) {
  double total = 0.0;
  runner.parallel_for(n, [&](std::size_t i) {
    total += samples[i];  // the lone D3 violation
  });
  return total;
}

}  // namespace diac_fixture
