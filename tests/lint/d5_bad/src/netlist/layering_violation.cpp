// D5 fixture: a src/netlist file reaching *up* into src/search breaks
// the subsystem dependency DAG (netlist is layer 3, search is layer 10).
// Must trip exactly one D5 violation and nothing else; the sibling and
// downward includes below are all legal.
#include "netlist/netlist.hpp"
#include "search/engine.hpp"
#include "util/rng.hpp"

namespace diac_fixture {

int layering_violation() { return 0; }

}  // namespace diac_fixture
