// D6 fixture: a src/metrics report file pulling in the observability
// side channel.  Must trip exactly one D6 violation (the obs include
// below) and nothing else — obs sits *below* metrics in the layer
// order, so D5 stays silent, and macro names like DIAC_OBS_COUNT in
// comments never trip the identifier scan.
#include "metrics/report.hpp"
#include "obs/metrics.hpp"
#include "util/csv.hpp"

namespace diac_fixture {

double report_leak() { return 0.0; }

}  // namespace diac_fixture
