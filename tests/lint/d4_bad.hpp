// Golden fixture: must trip rule D4 exactly once.  The api-header pragma
// below is what .hpp files under src/exp, src/search and src/shard get
// implicitly.  Note this top comment is //, not ///, so there is no
// file-top doc block and no first-declaration exemption.
// diac-lint: api-header
#pragma once

namespace diac_fixture {

/// Documented: a properly headered declaration passes.
struct Documented {
  int value = 0;
};

struct Undocumented {  // the lone D4 violation
  int value = 0;
};

}  // namespace diac_fixture
