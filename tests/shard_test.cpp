// The shard subsystem: plan partitioning, exact-double serialization,
// shard-file framing, worker/merge bit-identity against the in-process
// sweeps for every shard count, and coordinator failure propagation
// (failing workers, missing result files, corrupt rows).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "metrics/montecarlo.hpp"
#include "metrics/trace_sweep.hpp"
#include "netlist/suite.hpp"
#include "power/trace_io.hpp"
#include "shard/codec.hpp"
#include "shard/coordinator.hpp"
#include "shard/merge.hpp"
#include "shard/plan.hpp"
#include "shard/worker.hpp"

namespace diac {
namespace {

namespace fs = std::filesystem;

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::nominal_45nm();
  return l;
}

const Netlist& s344() {
  static const Netlist nl = build_benchmark("s344");
  return nl;
}

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// Field-wise bit comparison (memcmp would read padding bytes).
void expect_same_stats(const RunStats& a, const RunStats& b) {
  EXPECT_TRUE(same_bits(a.makespan, b.makespan));
  EXPECT_EQ(a.instances_completed, b.instances_completed);
  EXPECT_EQ(a.workload_completed, b.workload_completed);
  EXPECT_TRUE(same_bits(a.energy_consumed, b.energy_consumed));
  EXPECT_TRUE(same_bits(a.energy_harvested, b.energy_harvested));
  EXPECT_TRUE(same_bits(a.energy_wasted, b.energy_wasted));
  EXPECT_TRUE(same_bits(a.reexec_energy, b.reexec_energy));
  EXPECT_EQ(a.backups, b.backups);
  EXPECT_EQ(a.restores, b.restores);
  EXPECT_EQ(a.safe_zone_saves, b.safe_zone_saves);
  EXPECT_EQ(a.deep_outages, b.deep_outages);
  EXPECT_EQ(a.power_interrupts, b.power_interrupts);
  EXPECT_EQ(a.nvm_writes, b.nvm_writes);
  EXPECT_EQ(a.nvm_boundary_writes, b.nvm_boundary_writes);
  EXPECT_EQ(a.nvm_bits_written, b.nvm_bits_written);
  EXPECT_EQ(a.tasks_executed, b.tasks_executed);
  EXPECT_EQ(a.tasks_reexecuted, b.tasks_reexecuted);
  EXPECT_EQ(a.task_aborts, b.task_aborts);
  EXPECT_TRUE(same_bits(a.time_active, b.time_active));
  EXPECT_TRUE(same_bits(a.time_sleep, b.time_sleep));
  EXPECT_TRUE(same_bits(a.time_off, b.time_off));
  EXPECT_TRUE(same_bits(a.time_backup, b.time_backup));
}

// ---------------------------------------------------------------------------
// ShardPlan.
// ---------------------------------------------------------------------------

TEST(ShardPlan, PartitionsCoverEveryJobExactlyOnce) {
  for (std::size_t jobs : {0u, 1u, 5u, 7u, 32u, 100u}) {
    for (std::size_t shards : {1u, 2u, 3u, 4u, 8u, 13u}) {
      std::vector<int> owners(jobs, 0);
      std::size_t total = 0;
      for (std::size_t i = 0; i < shards; ++i) {
        const ShardPlan plan{shards, i};
        plan.validate();
        EXPECT_EQ(plan.count(jobs), plan.end(jobs) - plan.begin(jobs));
        total += plan.count(jobs);
        for (std::size_t j = plan.begin(jobs); j < plan.end(jobs); ++j) {
          ASSERT_LT(j, jobs);
          ++owners[j];
          EXPECT_TRUE(plan.owns(j, jobs));
        }
      }
      EXPECT_EQ(total, jobs);
      for (std::size_t j = 0; j < jobs; ++j) EXPECT_EQ(owners[j], 1);
    }
  }
}

TEST(ShardPlan, BlocksAreContiguousAndBalanced) {
  const std::size_t jobs = 10;
  std::size_t previous_end = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const ShardPlan plan{4, i};
    EXPECT_EQ(plan.begin(jobs), previous_end);  // contiguous, in order
    previous_end = plan.end(jobs);
    EXPECT_GE(plan.count(jobs), jobs / 4);      // balanced to within one
    EXPECT_LE(plan.count(jobs), jobs / 4 + 1);
  }
  EXPECT_EQ(previous_end, jobs);
}

TEST(ShardPlan, ValidateRejectsBadAddressing) {
  EXPECT_THROW((ShardPlan{0, 0}).validate(), std::invalid_argument);
  EXPECT_THROW((ShardPlan{2, 2}).validate(), std::invalid_argument);
  EXPECT_THROW((ShardPlan{2, 5}).validate(), std::invalid_argument);
  EXPECT_NO_THROW((ShardPlan{2, 1}).validate());
}

// ---------------------------------------------------------------------------
// Exact-double codec.
// ---------------------------------------------------------------------------

TEST(ShardCodec, DoubleRoundTripIsBitExact) {
  const double cases[] = {0.0,
                          -0.0,
                          1.0,
                          -1.0,
                          1.0 / 3.0,
                          3.141592653589793,
                          6.02e23,
                          -2.5e-7,
                          std::numeric_limits<double>::max(),
                          std::numeric_limits<double>::min(),
                          std::numeric_limits<double>::denorm_min(),
                          -std::numeric_limits<double>::denorm_min(),
                          std::numeric_limits<double>::epsilon(),
                          std::numeric_limits<double>::infinity(),
                          -std::numeric_limits<double>::infinity(),
                          4503599627370497.0,  // 2^52 + 1: needs full mantissa
                          0x1.fffffffffffffp+1023};
  for (double v : cases) {
    const std::string token = encode_double(v);
    EXPECT_TRUE(same_bits(decode_double(token), v))
        << "token '" << token << "' for " << v;
    EXPECT_EQ(token.find(' '), std::string::npos) << token;
  }
}

TEST(ShardCodec, NanRoundTripsAsNan) {
  const std::string token =
      encode_double(std::numeric_limits<double>::quiet_NaN());
  EXPECT_TRUE(std::isnan(decode_double(token)));
}

TEST(ShardCodec, DecodeRejectsGarbage) {
  EXPECT_THROW(decode_double(""), std::invalid_argument);
  EXPECT_THROW(decode_double("1.5x"), std::invalid_argument);
  EXPECT_THROW(decode_double("hello"), std::invalid_argument);
}

TEST(ShardCodec, RunStatsRoundTripsExactly) {
  RunStats s;
  s.makespan = 1234.5678901234567;
  s.instances_completed = 7;
  s.workload_completed = true;
  s.energy_consumed = 1.0 / 3.0;
  s.energy_harvested = 2.0e-3;
  s.energy_wasted = -0.0;
  s.reexec_energy = 5.5e-9;
  s.backups = 3;
  s.restores = 2;
  s.safe_zone_saves = 11;
  s.deep_outages = 1;
  s.power_interrupts = 9;
  s.nvm_writes = 42;
  s.nvm_boundary_writes = 17;
  s.nvm_bits_written = 123456789012345LL;
  s.tasks_executed = 88;
  s.tasks_reexecuted = 4;
  s.task_aborts = 2;
  s.time_active = 0.1;
  s.time_sleep = 0.2;
  s.time_off = 0.3;
  s.time_backup = 0.4;

  std::vector<std::string> tokens;
  append_run_stats(tokens, s);
  ASSERT_EQ(tokens.size(), kRunStatsTokenCount);
  std::size_t cursor = 0;
  const RunStats back = parse_run_stats(tokens, cursor);
  EXPECT_EQ(cursor, kRunStatsTokenCount);
  expect_same_stats(back, s);
}

// ---------------------------------------------------------------------------
// Shard file framing.
// ---------------------------------------------------------------------------

std::string write_temp(const std::string& name, const std::string& content) {
  const fs::path path = fs::path(::testing::TempDir()) / name;
  std::ofstream out(path);
  out << content;
  return path.string();
}

TEST(ShardFile, RoundTripsHeaderRowsTrailer) {
  std::ostringstream out;
  write_shard_header(out, {kShardFormatVersion, "mc", 4, 2, 32});
  write_shard_row(out, 16, {"a", "b"});
  write_shard_row(out, 17, {});
  write_shard_trailer(out, 2);
  const std::string path = write_temp("shard_ok.rows", out.str());

  const ShardFile file = read_shard_file(path);
  EXPECT_EQ(file.header.kind, "mc");
  EXPECT_EQ(file.header.shards, 4u);
  EXPECT_EQ(file.header.index, 2u);
  EXPECT_EQ(file.header.jobs, 32u);
  ASSERT_EQ(file.rows.size(), 2u);
  EXPECT_EQ(file.rows[0].job, 16u);
  EXPECT_EQ(file.rows[0].tokens, (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(file.rows[1].tokens.empty());
}

TEST(ShardFile, RejectsTruncationAndForeignInput) {
  // A worker killed mid-write leaves no trailer.
  const std::string truncated =
      write_temp("shard_trunc.rows", "diac-shard 1 mc 2 0 8\nrow 0 x\n");
  EXPECT_THROW(read_shard_file(truncated), std::runtime_error);
  // Trailer count must match the rows present.
  const std::string short_count = write_temp(
      "shard_short.rows", "diac-shard 1 mc 2 0 8\nrow 0 x\nend 2\n");
  EXPECT_THROW(read_shard_file(short_count), std::runtime_error);
  // Future format versions are rejected, not misread.
  const std::string vnext =
      write_temp("shard_vnext.rows", "diac-shard 99 mc 2 0 8\nend 0\n");
  EXPECT_THROW(read_shard_file(vnext), std::runtime_error);
  // Not a shard file at all.
  const std::string garbage = write_temp("shard_garbage.rows", "hello\n");
  EXPECT_THROW(read_shard_file(garbage), std::runtime_error);
  EXPECT_THROW(read_shard_file("/nonexistent/shard.rows"), std::runtime_error);
}

TEST(ShardMerge, RejectsWrongSweepDuplicatesAndGaps) {
  auto make = [](const char* name, const std::string& content) {
    return write_temp(name, content);
  };
  // Shard 0 of 2 owns jobs [0, 1), shard 1 owns [1, 2).
  const std::string ok0 =
      make("m_ok0.rows", "diac-shard 1 mc 2 0 2\nrow 0 x\nend 1\n");
  const std::string ok1 =
      make("m_ok1.rows", "diac-shard 1 mc 2 1 2\nrow 1 y\nend 1\n");
  const auto merged = merge_shard_rows({ok0, ok1}, "mc", 2, 2);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0], (std::vector<std::string>{"x"}));
  EXPECT_EQ(merged[1], (std::vector<std::string>{"y"}));

  // Kind mismatch: a replay file can't satisfy an mc merge.
  const std::string replay =
      make("m_replay.rows", "diac-shard 1 replay 2 0 2\nrow 0 x\nend 1\n");
  EXPECT_THROW(merge_shard_rows({replay, ok1}, "mc", 2, 2),
               std::runtime_error);
  // A row outside the producing shard's slice is foreign.
  const std::string stray =
      make("m_stray.rows", "diac-shard 1 mc 2 0 2\nrow 1 z\nend 1\n");
  EXPECT_THROW(merge_shard_rows({stray, ok1}, "mc", 2, 2),
               std::runtime_error);
  // A silent gap (worker wrote nothing) must not merge.
  const std::string empty =
      make("m_empty.rows", "diac-shard 1 mc 2 0 2\nend 0\n");
  EXPECT_THROW(merge_shard_rows({empty, ok1}, "mc", 2, 2),
               std::runtime_error);
  // File count must match the shard count.
  EXPECT_THROW(merge_shard_rows({ok0}, "mc", 2, 2), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Worker + merge bit-identity against the in-process sweeps.
// ---------------------------------------------------------------------------

// Runs the worker in-process for every shard of an N-way plan and
// merges the row files, exactly like the coordinator would.
template <typename WriteShard>
std::vector<std::vector<std::string>> shard_in_process(
    const std::string& kind, std::size_t shards, std::size_t jobs,
    WriteShard&& write_shard) {
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < shards; ++i) {
    const ShardPlan plan{shards, i};
    std::ostringstream out;
    write_shard(out, plan);
    paths.push_back(write_temp(
        kind + "_" + std::to_string(shards) + "_" + std::to_string(i) +
            ".rows",
        out.str()));
  }
  return merge_shard_rows(paths, kind, shards, jobs);
}

TEST(ShardWorker, McMergeIsBitIdenticalToEvaluateMonteCarlo) {
  const int runs = 6;
  EvaluationOptions eo;
  eo.simulator.target_instances = 4;
  eo.simulator.max_time = 20000;
  ExperimentRunner runner(2);
  const MonteCarloResult direct =
      evaluate_monte_carlo(s344(), lib(), eo, runs, runner);

  for (std::size_t shards : {1u, 2u, 4u}) {
    const auto payloads = shard_in_process(
        "mc", shards, static_cast<std::size_t>(runs),
        [&](std::ostream& out, const ShardPlan& plan) {
          run_mc_shard(out, s344(), lib(), eo, runs, plan, runner);
        });
    const MonteCarloResult merged = merge_mc_shards(
        payloads, s344().name(), s344().logic_gate_count());
    ASSERT_EQ(merged.samples.size(), direct.samples.size());
    for (int r = 0; r < runs; ++r) {
      for (Scheme s : kAllSchemes) {
        expect_same_stats(merged.samples[r].of(s), direct.samples[r].of(s));
      }
    }
    for (std::size_t i = 0; i < kSchemeCount; ++i) {
      EXPECT_TRUE(same_bits(merged.normalized_pdp[i].mean,
                            direct.normalized_pdp[i].mean));
      EXPECT_TRUE(same_bits(merged.normalized_pdp[i].stddev,
                            direct.normalized_pdp[i].stddev));
    }
    EXPECT_TRUE(same_bits(merged.opt_vs_nv_based.mean,
                          direct.opt_vs_nv_based.mean));
  }
}

TEST(ShardWorker, ReplayMergeIsBitIdenticalToEvaluateTraceLibrary) {
  const fs::path dir = fs::path(::testing::TempDir()) / "diac_shard_replay";
  fs::remove_all(dir);
  fs::create_directories(dir);
  RfidBurstSource::Options options;
  options.horizon = 1200.0;
  for (int i = 0; i < 5; ++i) {
    const RfidBurstSource source(0x5EED + i, options);
    save_trace_csv((dir / ("t" + std::to_string(i) + ".csv")).string(),
                   source, 1200.0, 0.5);
  }

  EvaluationOptions eo;
  eo.simulator.target_instances = 3;
  eo.simulator.max_time = 1200;
  ExperimentRunner runner(2);
  const TraceLibrary library = load_trace_library(dir.string());
  const std::vector<BenchmarkResult> direct =
      evaluate_trace_library(s344(), lib(), eo, library, runner);

  const std::vector<std::string> files = list_trace_files(dir.string());
  for (std::size_t shards : {1u, 2u, 3u}) {
    const auto payloads = shard_in_process(
        "replay", shards, files.size(),
        [&](std::ostream& out, const ShardPlan& plan) {
          run_replay_shard(out, s344(), lib(), eo, files, plan, runner);
        });
    const std::vector<BenchmarkResult> merged =
        merge_replay_shards(payloads, files, s344().logic_gate_count());
    ASSERT_EQ(merged.size(), direct.size());
    for (std::size_t t = 0; t < merged.size(); ++t) {
      EXPECT_EQ(merged[t].name, direct[t].name);
      for (Scheme s : kAllSchemes) {
        expect_same_stats(merged[t].of(s), direct[t].of(s));
      }
    }
  }
}

TEST(ShardWorker, SearchMergeMatchesExhaustiveAndPrunedSearch) {
  const CandidateSpace space;
  const std::vector<DesignPoint> points = space.sample(12, 0xC0FFEE);
  SearchOptions so;
  so.simulator.target_instances = 4;
  so.simulator.max_time = 8000;
  ExperimentRunner runner(2);

  SearchOptions exhaustive = so;
  exhaustive.prune = false;
  const SearchResult direct =
      run_search(s344(), lib(), points, exhaustive, runner);
  const SearchResult pruned = run_search(s344(), lib(), points, so, runner);

  for (std::size_t shards : {1u, 3u, 4u}) {
    const auto payloads = shard_in_process(
        "search", shards, points.size(),
        [&](std::ostream& out, const ShardPlan& plan) {
          run_search_shard(out, s344(), lib(), points, so, plan, runner);
        });
    const SearchResult merged =
        merge_search_shards(payloads, points, so.objectives);

    // The merged result reproduces the exhaustive search bit-for-bit...
    ASSERT_EQ(merged.candidates.size(), direct.candidates.size());
    EXPECT_EQ(merged.front, direct.front);
    EXPECT_EQ(merged.evaluated, points.size());
    EXPECT_EQ(merged.pruned, 0u);
    for (std::size_t i = 0; i < points.size(); ++i) {
      const CandidateResult& m = merged.candidates[i];
      const CandidateResult& d = direct.candidates[i];
      EXPECT_EQ(m.point.label(), d.point.label());
      EXPECT_EQ(m.tasks, d.tasks);
      EXPECT_EQ(m.commit_points, d.commit_points);
      expect_same_stats(m.stats, d.stats);
      ASSERT_EQ(m.costs.size(), d.costs.size());
      for (std::size_t k = 0; k < m.costs.size(); ++k) {
        EXPECT_TRUE(same_bits(m.costs[k], d.costs[k]) ||
                    (std::isnan(m.costs[k]) && std::isnan(d.costs[k])));
      }
    }
    // ...and pruning soundness makes that front equal the pruned one.
    EXPECT_EQ(merged.front, pruned.front);
  }
}

// ---------------------------------------------------------------------------
// Coordinator failure propagation.
// ---------------------------------------------------------------------------

TEST(ShardCoordinator, PropagatesWorkerExitStatus) {
  ShardLaunch launch;
  launch.exe = "/bin/false";
  launch.shards = 3;
  try {
    run_shard_workers(launch);
    FAIL() << "expected failure propagation";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("status 1"), std::string::npos) << what;
    EXPECT_NE(what.find("shard 0/3"), std::string::npos) << what;
    EXPECT_NE(what.find("shard 2/3"), std::string::npos) << what;
  }
}

TEST(ShardCoordinator, FailsWhenWorkerBinaryIsMissing) {
  ShardLaunch launch;
  launch.exe = "/nonexistent/diac-worker";
  launch.shards = 2;
  EXPECT_THROW(run_shard_workers(launch), std::runtime_error);
}

TEST(ShardCoordinator, MissingResultFilesFailTheMerge) {
  // Workers that "succeed" without writing their files (/bin/true) must
  // not merge into a silently truncated sweep.
  ShardLaunch launch;
  launch.exe = "/bin/true";
  launch.shards = 2;
  const ShardFileSet files = run_shard_workers(launch);
  ASSERT_EQ(files.paths.size(), 2u);
  EXPECT_THROW(merge_shard_rows(files.paths, "mc", 2, 8), std::runtime_error);
}

TEST(ShardCoordinator, ScratchDirIsRemovedOnDestruction) {
  std::string dir;
  {
    ShardLaunch launch;
    launch.exe = "/bin/true";
    launch.shards = 1;
    const ShardFileSet files = run_shard_workers(launch);
    dir = files.dir;
    EXPECT_TRUE(fs::exists(dir));
  }
  EXPECT_FALSE(fs::exists(dir));
}

}  // namespace
}  // namespace diac
