// The experiment engine: scenario specs, the thread-pool runner, and the
// determinism contract — fan-out results must be bit-identical at any
// thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "exp/experiment.hpp"
#include "metrics/montecarlo.hpp"

namespace diac {
namespace {

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::nominal_45nm();
  return l;
}

TEST(Scenario, ParsesEveryKnownSourceName) {
  EXPECT_EQ(scenario_from_name("constant").kind, SourceKind::kConstant);
  EXPECT_EQ(scenario_from_name("square").kind, SourceKind::kSquare);
  EXPECT_EQ(scenario_from_name("rfid").kind, SourceKind::kRfid);
  EXPECT_EQ(scenario_from_name("solar").kind, SourceKind::kSolar);
  EXPECT_EQ(scenario_from_name("fig4").kind, SourceKind::kFig4);
  EXPECT_THROW(scenario_from_name("wind"), std::invalid_argument);
}

TEST(Scenario, MakeSourceMaterializesEachKind) {
  ScenarioSpec spec;
  spec.kind = SourceKind::kConstant;
  spec.constant_power = 3.0e-3;
  EXPECT_DOUBLE_EQ(make_source(spec)->power_at(12.0), 3.0e-3);

  spec.kind = SourceKind::kSquare;
  spec.square = {8.0e-3, 10.0, 0.5};
  auto square = make_source(spec);
  EXPECT_DOUBLE_EQ(square->power_at(1.0), 8.0e-3);
  EXPECT_DOUBLE_EQ(square->power_at(6.0), 0.0);

  spec.kind = SourceKind::kFig4;
  auto fig4 = make_source(spec);
  const PiecewiseTrace reference = fig4_trace();
  EXPECT_DOUBLE_EQ(fig4->power_at(100.0), reference.power_at(100.0));
  EXPECT_DOUBLE_EQ(fig4->power_at(1300.0), reference.power_at(1300.0));

  // The seeded kinds are deterministic in the seed.
  for (SourceKind kind : {SourceKind::kRfid, SourceKind::kSolar}) {
    spec.kind = kind;
    spec.seed = 77;
    auto a = make_source(spec);
    auto b = make_source(spec);
    for (double t : {0.5, 12.0, 900.0, 4321.0}) {
      EXPECT_DOUBLE_EQ(a->power_at(t), b->power_at(t));
    }
  }
}

TEST(Scenario, WithSeedOnlyChangesTheSeed) {
  ScenarioSpec spec;
  spec.kind = SourceKind::kSolar;
  spec.solar.peak_power = 9.0e-3;
  const ScenarioSpec derived = spec.with_seed(99);
  EXPECT_EQ(derived.seed, 99u);
  EXPECT_EQ(derived.kind, SourceKind::kSolar);
  EXPECT_DOUBLE_EQ(derived.solar.peak_power, 9.0e-3);
}

TEST(Scenario, DeriveSeedMatchesLegacyMonteCarloStride) {
  // The golden-ratio stride predates the experiment engine; keeping it
  // bit-identical keeps every published sweep statistic stable.  The
  // historical expression was `harvest_seed + 0x9E3779B9u * (r + 1)`,
  // whose multiply wraps in 32-bit unsigned arithmetic — these literals
  // are that computation's actual values, not a re-derivation.
  EXPECT_EQ(derive_seed(0xEA57, 0), 2654495760ull);  // 0xEA57 + 0x9E3779B9
  EXPECT_EQ(derive_seed(0xEA57, 1), 1013964233ull);  // wraps mod 2^32
  EXPECT_EQ(derive_seed(0xEA57, 2), 3668400002ull);
  EXPECT_EQ(derive_seed(0, 41), 0x9E3779B9ull * 42u % (1ull << 32));
}

TEST(Runner, RunsEveryIndexExactlyOnce) {
  ExperimentRunner runner(4);
  EXPECT_EQ(runner.jobs(), 4);
  std::vector<std::atomic<int>> hits(257);
  runner.parallel_for(hits.size(),
                      [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Runner, SerialRunnerRunsInline) {
  ExperimentRunner runner(1);
  EXPECT_EQ(runner.jobs(), 1);
  const auto caller = std::this_thread::get_id();
  bool same_thread = true;
  runner.parallel_for(8, [&](std::size_t) {
    if (std::this_thread::get_id() != caller) same_thread = false;
  });
  EXPECT_TRUE(same_thread);
}

TEST(Runner, DefaultSizingUsesHardware) {
  ExperimentRunner runner;
  EXPECT_GE(runner.jobs(), 1);
  EXPECT_THROW(ExperimentRunner(-1), std::invalid_argument);
}

TEST(Runner, PropagatesJobExceptions) {
  ExperimentRunner runner(3);
  EXPECT_THROW(runner.parallel_for(16,
                                   [&](std::size_t i) {
                                     if (i == 7) {
                                       throw std::runtime_error("boom");
                                     }
                                   }),
               std::runtime_error);
  // The runner stays usable after a failed batch.
  std::atomic<int> n{0};
  runner.parallel_for(5, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 5);
}

TEST(Runner, ReusableAcrossBatches) {
  ExperimentRunner runner(2);
  for (int batch = 0; batch < 10; ++batch) {
    std::vector<int> out(13, -1);
    runner.parallel_for(out.size(),
                        [&](std::size_t i) { out[i] = static_cast<int>(i); });
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], static_cast<int>(i));
    }
  }
}

void expect_identical(const RunStats& a, const RunStats& b) {
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.energy_consumed, b.energy_consumed);
  EXPECT_DOUBLE_EQ(a.energy_harvested, b.energy_harvested);
  EXPECT_DOUBLE_EQ(a.energy_wasted, b.energy_wasted);
  EXPECT_DOUBLE_EQ(a.reexec_energy, b.reexec_energy);
  EXPECT_EQ(a.instances_completed, b.instances_completed);
  EXPECT_EQ(a.backups, b.backups);
  EXPECT_EQ(a.restores, b.restores);
  EXPECT_EQ(a.safe_zone_saves, b.safe_zone_saves);
  EXPECT_EQ(a.deep_outages, b.deep_outages);
  EXPECT_EQ(a.nvm_writes, b.nvm_writes);
  EXPECT_EQ(a.nvm_bits_written, b.nvm_bits_written);
  EXPECT_EQ(a.tasks_executed, b.tasks_executed);
  EXPECT_EQ(a.tasks_reexecuted, b.tasks_reexecuted);
}

TEST(Experiment, MonteCarloBitIdenticalAcrossThreadCounts) {
  // The headline determinism contract: 1 thread vs 8 threads, identical
  // statistics down to the last bit.
  const Netlist nl = build_benchmark("s820");
  EvaluationOptions opt;
  opt.simulator.target_instances = 3;
  opt.simulator.max_time = 10000;
  ExperimentRunner serial(1);
  ExperimentRunner parallel(8);
  const MonteCarloResult a = evaluate_monte_carlo(nl, lib(), opt, 6, serial);
  const MonteCarloResult b = evaluate_monte_carlo(nl, lib(), opt, 6, parallel);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t r = 0; r < a.samples.size(); ++r) {
    for (Scheme s : kAllSchemes) {
      expect_identical(a.samples[r].of(s), b.samples[r].of(s));
    }
  }
  for (std::size_t i = 0; i < kSchemeCount; ++i) {
    EXPECT_DOUBLE_EQ(a.normalized_pdp[i].mean, b.normalized_pdp[i].mean);
    EXPECT_DOUBLE_EQ(a.normalized_pdp[i].stddev, b.normalized_pdp[i].stddev);
  }
  EXPECT_DOUBLE_EQ(a.diac_vs_nv_based.mean, b.diac_vs_nv_based.mean);
  EXPECT_DOUBLE_EQ(a.opt_vs_diac.mean, b.opt_vs_diac.mean);
}

TEST(Experiment, EvaluateCircuitMatchesAcrossRunners) {
  const Netlist nl = build_benchmark("s344");
  EvaluationOptions opt;
  opt.simulator.target_instances = 3;
  opt.simulator.max_time = 8000;
  ExperimentRunner parallel(4);
  const BenchmarkResult serial = evaluate_circuit(nl, lib(), opt);
  const BenchmarkResult fanned = evaluate_circuit(nl, lib(), opt, parallel);
  for (Scheme s : kAllSchemes) {
    expect_identical(serial.of(s), fanned.of(s));
  }
}

TEST(Experiment, RunSimulationRejectsNullDesign) {
  SimulationJob job;
  EXPECT_THROW(run_simulation(job), std::invalid_argument);
}

TEST(Experiment, MonteCarloRejectsDeterministicScenarios) {
  EXPECT_FALSE(is_seeded(SourceKind::kConstant));
  EXPECT_FALSE(is_seeded(SourceKind::kSquare));
  EXPECT_FALSE(is_seeded(SourceKind::kFig4));
  EXPECT_TRUE(is_seeded(SourceKind::kRfid));
  EXPECT_TRUE(is_seeded(SourceKind::kSolar));

  const Netlist nl = build_benchmark("s27");
  EvaluationOptions opt;
  opt.scenario.kind = SourceKind::kFig4;
  EXPECT_THROW(evaluate_monte_carlo(nl, lib(), opt, 4),
               std::invalid_argument);
}

}  // namespace
}  // namespace diac
