# Resolve a GTest::gtest_main target: prefer the system install (the CI
# image and the dev container both ship libgtest), fall back to
# FetchContent for machines that don't.
#
# Provides: diac_resolve_gtest()

include_guard(GLOBAL)

function(diac_resolve_gtest)
  if(TARGET GTest::gtest_main)
    return()
  endif()

  find_package(GTest QUIET)
  if(GTest_FOUND AND TARGET GTest::gtest_main)
    message(STATUS "diac: using system GoogleTest")
    return()
  endif()

  message(STATUS "diac: system GoogleTest not found, fetching v1.14.0")
  include(FetchContent)
  FetchContent_Declare(
    googletest
    URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.zip
    URL_HASH SHA256=1f357c27ca988c3f7c6b4bf68a9395005ac6761f034046e9dde0896e3aba00e4
    DOWNLOAD_EXTRACT_TIMESTAMP TRUE)
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)
  FetchContent_MakeAvailable(googletest)
endfunction()
