// TaskProgram: the executable form of an IntermittentDesign.
//
// Linearizes the design's task tree along its topological schedule into
// atomic steps with instance-scaled energy and duration, annotates DIAC
// commit points, and answers the recovery question: after volatile state
// is lost, from which step does execution resume?
//
//  - Checkpoint schemes (NV-Based / NV-Clustering) persist the full
//    architectural state at every backup, so they resume at the exact step
//    the backup captured.
//  - DIAC schemes persist data only at commit points (backups carry just
//    control state), so they resume after the last commit point at or
//    before the captured step; the steps in between re-execute.
#pragma once

#include <vector>

#include "diac/design.hpp"
#include "runtime/fsm.hpp"

namespace diac {

struct TaskStep {
  TaskId task = kNullTask;
  double energy = 0;    // J per execution (scaled; jitter applied at run time)
  double duration = 0;  // s at the configured active power

  // NVM persistence when this step completes: every step for the
  // checkpoint schemes (boundary registers are NV elements), only commit
  // points for DIAC.  `persist` marks whether the completed step can serve
  // as a post-outage resume point.
  bool persist = false;
  int persist_bits = 0;
  double persist_energy = 0;  // J, the NVM write event
  double persist_time = 0;    // s
};

class TaskProgram {
 public:
  TaskProgram(const IntermittentDesign& design, const FsmConfig& config);

  const std::vector<TaskStep>& steps() const { return steps_; }
  std::size_t size() const { return steps_.size(); }
  Scheme scheme() const { return scheme_; }

  // Total per-instance compute energy/time (failure-free, no dispatch).
  double instance_energy() const { return instance_energy_; }
  double instance_duration() const { return instance_duration_; }

  // Largest single atomic unit (task + dispatch + commit) — determines the
  // Compute entry threshold.
  double max_step_energy() const { return max_step_energy_; }

  // Resume step after volatile loss when `captured_step` was the next
  // unexecuted step at backup time.
  int resume_after_loss(int captured_step) const;

 private:
  Scheme scheme_;
  std::vector<TaskStep> steps_;
  double instance_energy_ = 0;
  double instance_duration_ = 0;
  double max_step_energy_ = 0;
};

}  // namespace diac
