#include "runtime/executor.hpp"

#include <algorithm>
#include <stdexcept>

namespace diac {

TaskProgram::TaskProgram(const IntermittentDesign& design,
                         const FsmConfig& config)
    : scheme_(design.scheme) {
  if (config.active_power <= 0) {
    throw std::invalid_argument("TaskProgram: active_power must be positive");
  }
  steps_.reserve(design.tree.size());
  for (TaskId id : design.tree.schedule()) {
    TaskStep step;
    step.task = id;
    step.energy = design.scale * design.tree.node(id).dict.energy();
    step.duration = step.energy / config.active_power;
    step.persist_bits = design.boundary_bits(id);
    step.persist = step.persist_bits > 0;
    step.persist_energy = design.boundary_write_energy(id);
    step.persist_time = design.boundary_write_time(id);
    steps_.push_back(step);

    instance_energy_ += step.energy + step.persist_energy;
    instance_duration_ += step.duration + step.persist_time;
    max_step_energy_ =
        std::max(max_step_energy_,
                 step.energy + step.persist_energy + config.dispatch_energy);
  }
  if (steps_.empty()) {
    throw std::invalid_argument("TaskProgram: design has no tasks");
  }
}

int TaskProgram::resume_after_loss(int captured_step) const {
  const int n = static_cast<int>(steps_.size());
  const int next = std::clamp(captured_step, 0, n);
  // Rewind to just after the last persisted step strictly before `next`.
  // For the checkpoint schemes every step persists, so this returns `next`
  // itself; for DIAC it rewinds to the last commit point.
  for (int i = next - 1; i >= 0; --i) {
    if (steps_[static_cast<std::size_t>(i)].persist) return i + 1;
  }
  return 0;
}

}  // namespace diac
