// Run statistics collected by the system simulator.
#pragma once

#include <cstdint>

namespace diac {

struct RunStats {
  // --- outcome ------------------------------------------------------------
  double makespan = 0;           // s, simulated wall time consumed
  int instances_completed = 0;   // sense->compute->transmit cycles finished
  bool workload_completed = false;

  // --- energy -------------------------------------------------------------
  double energy_consumed = 0;    // J drawn from storage
  double energy_harvested = 0;   // J stored into the capacitor
  double energy_wasted = 0;      // J harvested while full (shunted)
  double reexec_energy = 0;      // J spent re-executing lost work

  // --- events ---------------------------------------------------------------
  int backups = 0;               // Bk state entries that wrote NVM
  int restores = 0;              // NVM reads after a deep outage
  int safe_zone_saves = 0;       // safe-zone entries that avoided a backup
  int deep_outages = 0;          // crossings below Th_Off (volatile lost)
  int power_interrupts = 0;      // PMU interrupts (Th_Bk crossings)

  // --- NVM traffic -----------------------------------------------------------
  int nvm_writes = 0;            // write events (backups + commits)
  int nvm_boundary_writes = 0;   // per-task boundary / commit-point writes
  std::int64_t nvm_bits_written = 0;

  // --- work ---------------------------------------------------------------
  int tasks_executed = 0;
  int tasks_reexecuted = 0;      // executions repeated due to lost progress
  int task_aborts = 0;           // atomic tasks interrupted mid-flight

  // --- time breakdown --------------------------------------------------------
  double time_active = 0;        // s in Se/Cp/Tr
  double time_sleep = 0;         // s in Sp
  double time_off = 0;           // s below Th_Off
  double time_backup = 0;        // s in Bk + restore

  // --- derived metrics ---------------------------------------------------
  double energy_per_instance() const {
    return instances_completed > 0 ? energy_consumed / instances_completed : 0;
  }
  double time_per_instance() const {
    return instances_completed > 0 ? makespan / instances_completed : 0;
  }
  // Power-delay product per completed instance: the paper's figure of
  // merit (avg power x delay = energy, times delay -> E*T per instance).
  double pdp() const { return energy_per_instance() * time_per_instance(); }
  double forward_progress() const {
    const int total = tasks_executed;
    return total > 0
               ? 1.0 - static_cast<double>(tasks_reexecuted) / total
               : 0.0;
  }
};

}  // namespace diac
