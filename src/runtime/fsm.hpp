// The IoT-node finite state machine of SIII.B (Fig. 3a / Algorithm 1).
//
// States: Sleep (Sp), Sense (Se), Compute (Cp), Transmit (Tr), Backup (Bk)
// — plus the implicit Off condition below Th_Off and the Restore action on
// the way back up.  Reg_Flag ('0b100' sense, '0b010' compute, '0b001'
// transmit, '0b000' idle) sequences the pipeline; the timer interrupt
// re-arms sensing, and the power interrupt forces Backup.
#pragma once

#include <cstdint>

#include "power/pmu.hpp"
#include "util/units.hpp"

namespace diac {

enum class NodeState : std::uint8_t {
  kSleep,
  kSense,
  kCompute,
  kTransmit,
  kBackup,
  kRestore,
  kOff,
};

const char* to_string(NodeState state);

// Reg_Flag values (SIII.B).
enum class RegFlag : std::uint8_t {
  kIdle = 0b000,
  kSense = 0b100,
  kCompute = 0b010,
  kTransmit = 0b001,
};

const char* to_string(RegFlag flag);

// System operation constants (SIV.A): sense/compute/transmit energies of
// 2/4/9 mJ with +-10% uncertainty; powers size the operation durations.
struct FsmConfig {
  // Per-operation energies (J).  Compute energy comes from the task tree;
  // `compute_energy` is only the FSM-validation default when no tree is
  // attached (the paper's 4 mJ).
  double sense_energy = 2.0e-3;
  double compute_energy = 4.0e-3;
  double transmit_energy = 9.0e-3;
  double op_jitter = 0.10;  // +-10% uncertainty on operation energies

  // Operation powers (W) -> durations = energy / power.
  double sense_power = 4.0e-3;
  double active_power = 3.0e-3;    // compute draw
  double transmit_power = 30.0e-3;
  // Standby drain while sleeping with volatile state retained (SRAM
  // retention + regulator).  This is what walks the storage down to Th_Bk
  // during long droughts (Fig. 4 region 6).
  double sleep_power = 100.0e-6;
  // Standby drain after a backup: the volatile state is safe in NVM, so
  // the retention domain collapses to the wake circuitry.  The wide gap
  // between this and `sleep_power` is what lets a backed-up node ride out
  // a long drought above Th_Off (Fig. 4 region 6: backup, then recovery
  // with "no necessity to fetch register values from the NVMs").
  double sleep_power_backed_up = 5.0e-6;

  // Transmit is packetized: each packet is atomic, progress is kept in
  // control state.
  double transmit_packet_energy = 1.0e-3;

  // Per-task dispatch overhead (scheduler wake, pipeline fill).  This is
  // the performance cost of Policy1's fine-grained splitting.
  double dispatch_energy = 30.0e-6;
  double dispatch_time = 5.0e-3;

  // Timer interrupt: the sensing interval (Algorithm 1 line 33-37).
  double sense_interval = 2.0;
  // Adaptive sampling (Algorithm 1 line 34: "this frequency can be
  // reduced depending on the system's power"): when enabled and stored
  // energy is below the Compute entry threshold, the interval stretches
  // by `adaptive_slowdown`.
  bool adaptive_sensing = false;
  double adaptive_slowdown = 4.0;

  // Threshold construction margins (see make_thresholds).  The backup
  // margin leaves enough post-backup reserve that a backed-up node can
  // ride out a drought on the low standby drain (Fig. 4 region 6).
  double off_floor = 1.0e-3;
  double backup_margin = 2.5;
  double safe_margin = 2.0e-3;   // "Th_SafeZone exceeds Th_Bk by 2 mJ"
  double entry_margin = 1.2;
};

// Builds the per-scheme threshold stack: the Compute entry threshold uses
// the largest atomic task of the design (+ dispatch), because atomic
// operations "should only begin when sufficient power is available".
Thresholds thresholds_for(const FsmConfig& config, double e_max,
                          double backup_energy, double max_task_energy);

}  // namespace diac
