#include "runtime/fsm.hpp"

#include <algorithm>

namespace diac {

const char* to_string(NodeState state) {
  switch (state) {
    case NodeState::kSleep: return "Sleep";
    case NodeState::kSense: return "Sense";
    case NodeState::kCompute: return "Compute";
    case NodeState::kTransmit: return "Transmit";
    case NodeState::kBackup: return "Backup";
    case NodeState::kRestore: return "Restore";
    case NodeState::kOff: return "Off";
  }
  return "?";
}

const char* to_string(RegFlag flag) {
  switch (flag) {
    case RegFlag::kIdle: return "0b000";
    case RegFlag::kSense: return "0b100";
    case RegFlag::kCompute: return "0b010";
    case RegFlag::kTransmit: return "0b001";
  }
  return "?";
}

Thresholds thresholds_for(const FsmConfig& config, double e_max,
                          double backup_energy, double max_task_energy) {
  // Compute entry needs headroom for the largest atomic task plus its
  // dispatch.  Transmit is packetized (progress is held in control state),
  // so entering Tr requires a burst of a few packets rather than the whole
  // 9 mJ operation — otherwise the node would park below Th_Tr through
  // every drought.  The Th_Tr > Th_Cp ordering of Fig. 4 still holds.
  const double compute_entry = max_task_energy + config.dispatch_energy;
  const double transmit_entry =
      std::min(config.transmit_energy, 3.0 * config.transmit_packet_energy);
  return make_thresholds(e_max, backup_energy, config.sense_energy,
                         compute_entry, transmit_entry, config.off_floor,
                         config.backup_margin, config.safe_margin,
                         config.entry_margin);
}

}  // namespace diac
