#include "runtime/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace diac {

const char* to_string(SimEvent::Kind kind) {
  switch (kind) {
    case SimEvent::Kind::kBackup: return "Backup";
    case SimEvent::Kind::kRestore: return "Restore";
    case SimEvent::Kind::kSafeZoneSave: return "SafeZoneSave";
    case SimEvent::Kind::kShutdown: return "Shutdown";
    case SimEvent::Kind::kInstanceDone: return "InstanceDone";
    case SimEvent::Kind::kPowerInterrupt: return "PowerInterrupt";
  }
  return "?";
}

SystemSimulator::SystemSimulator(const IntermittentDesign& design,
                                 const HarvestSource& source, FsmConfig config,
                                 SimulatorOptions options)
    : design_(&design),
      source_(&source),
      config_(config),
      options_(options),
      program_(design, config),
      e_max_(0.5 * options.capacitance * options.voltage * options.voltage) {
  if (options_.dt <= 0 || options_.max_time <= 0) {
    throw std::invalid_argument("SystemSimulator: dt and max_time must be positive");
  }
  thresholds_ = thresholds_for(config_, e_max_, design.backup_energy(),
                               program_.max_step_energy());
  step_prefix_.resize(program_.size() + 1, 0.0);
  for (std::size_t i = 0; i < program_.size(); ++i) {
    step_prefix_[i + 1] = step_prefix_[i] + program_.steps()[i].energy;
  }
}

void SystemSimulator::start_operation(double energy, double duration) {
  op_.energy_left = energy;
  op_.time_left = std::max(duration, options_.dt);
  op_.active = true;
}

bool SystemSimulator::advance_operation(Capacitor& cap, double dt,
                                        RunStats& stats) {
  if (!op_.active) return false;
  const double slice = std::min(dt, op_.time_left);
  const double de = op_.energy_left * (slice / op_.time_left);
  stats.energy_consumed += cap.draw(de);
  op_.energy_left -= de;
  op_.time_left -= slice;
  if (op_.time_left <= 1e-12) {
    op_.active = false;
    return true;
  }
  return false;
}

double SystemSimulator::step_need(std::size_t idx) const {
  const TaskStep& s = program_.steps()[idx];
  const double e = config_.dispatch_energy + s.energy + s.persist_energy;
  return thresholds_.safe + config_.entry_margin * e;
}

double SystemSimulator::prefix_energy(int from, int to) const {
  from = std::clamp(from, 0, static_cast<int>(program_.size()));
  to = std::clamp(to, 0, static_cast<int>(program_.size()));
  if (to <= from) return 0;
  return step_prefix_[static_cast<std::size_t>(to)] -
         step_prefix_[static_cast<std::size_t>(from)];
}

RunStats SystemSimulator::run() {
  RunStats stats;
  SplitMix64 rng(options_.seed);
  Capacitor cap(options_.capacitance, options_.voltage);
  cap.set_energy(options_.initial_energy_fraction * cap.e_max());
  cap.set_charge_efficiency(options_.charge_efficiency);
  cap.set_leakage_power(options_.storage_leakage);

  const int total_packets = static_cast<int>(
      std::ceil(config_.transmit_energy / config_.transmit_packet_energy));
  const bool safe_zone = uses_safe_zone(design_->scheme);

  // --- machine state -----------------------------------------------------
  NodeState state = NodeState::kSleep;
  RegFlag reg = RegFlag::kIdle;
  int step_idx = 0;    // next compute step
  int packet_idx = 0;  // next transmit packet
  double last_sense_done = -config_.sense_interval;  // timer fires at t=0
  bool backed_up = false;
  struct Captured {
    RegFlag reg = RegFlag::kIdle;
    int step = 0;
    int packet = 0;
  } captured;
  bool pending_dip = false;   // inside the safe zone without a backup yet
  double next_trace = 0;

  op_ = Operation{};

  auto record_event = [&](SimEvent::Kind kind, double t) {
    events_.push_back({kind, t});
  };

  auto begin_backup = [&](double t) {
    op_ = Operation{};
    state = NodeState::kBackup;
    start_operation(design_->backup_energy(), design_->backup_time());
    record_event(SimEvent::Kind::kPowerInterrupt, t);
    ++stats.power_interrupts;
  };

  double t = 0;
  for (; t < options_.max_time; t += options_.dt) {
    // 1) Harvest.
    const double ph = source_->power_at(t);
    const double offered = ph * options_.dt;
    const double stored = cap.charge(offered);
    stats.energy_harvested += stored;
    stats.energy_wasted += offered - stored + cap.self_discharge(options_.dt);

    // 2) Trace sampling.
    if (options_.record_trace && t >= next_trace) {
      trace_.push_back({t, cap.energy(), ph, state});
      next_trace += options_.trace_interval;
    }

    const double e = cap.energy();

    // 3) Deep outage: volatile state is lost below Th_Off.
    if (e < thresholds_.off && state != NodeState::kOff) {
      state = NodeState::kOff;
      op_ = Operation{};
      ++stats.deep_outages;
      record_event(SimEvent::Kind::kShutdown, t);
      pending_dip = false;
    }

    switch (state) {
      case NodeState::kOff: {
        stats.time_off += options_.dt;
        // Recover once there is enough energy to pay for the restore and
        // land above the safe zone.
        const double need =
            thresholds_.safe + 1.25 * design_->restore_energy();
        if (e >= need) {
          state = NodeState::kRestore;
          start_operation(design_->restore_energy(), design_->restore_time());
        }
        break;
      }

      case NodeState::kRestore: {
        stats.time_backup += options_.dt;
        if (advance_operation(cap, options_.dt, stats)) {
          ++stats.restores;
          stats.nvm_bits_written += 0;  // restore is a read
          // Roll back to the recovery point of the captured state.
          reg = captured.reg;
          packet_idx = captured.packet;
          const int resume = program_.resume_after_loss(captured.step);
          if (captured.step > resume) {
            stats.tasks_reexecuted += captured.step - resume;
            stats.reexec_energy += prefix_energy(resume, captured.step);
          }
          step_idx = resume;
          backed_up = true;  // NVM still holds the captured state
          state = NodeState::kSleep;
          record_event(SimEvent::Kind::kRestore, t);
        }
        break;
      }

      case NodeState::kBackup: {
        stats.time_backup += options_.dt;
        if (advance_operation(cap, options_.dt, stats)) {
          ++stats.backups;
          ++stats.nvm_writes;
          stats.nvm_bits_written += design_->backup_bits();
          // After the backup the node drops to the low standby drain,
          // which sacrifices volatile state.  Checkpoint schemes hold
          // everything in NVM, so they resume in place; DIAC schemes roll
          // back to the last commit point and re-execute the tail.
          const int resume = program_.resume_after_loss(step_idx);
          if (step_idx > resume) {
            stats.tasks_reexecuted += step_idx - resume;
            stats.reexec_energy += prefix_energy(resume, step_idx);
            step_idx = resume;
          }
          captured = {reg, step_idx, packet_idx};
          backed_up = true;
          pending_dip = false;
          state = NodeState::kSleep;
          record_event(SimEvent::Kind::kBackup, t);
        }
        break;
      }

      case NodeState::kSleep: {
        stats.time_sleep += options_.dt;
        const double standby =
            backed_up ? config_.sleep_power_backed_up : config_.sleep_power;
        stats.energy_consumed += cap.draw(standby * options_.dt);

        // Power interrupt (Algorithm 1 line 38): below Th_Bk every design
        // must back up — unless the NVM already holds this progress.
        if (e < thresholds_.backup) {
          if (!backed_up) begin_backup(t);
          break;
        }

        // Between Th_Bk and Th_Safe: a design *with* the safe zone holds
        // in Sleep hoping to recover; a design without it cannot tell a
        // brief dip from an outage and conservatively backs up now.
        if (e < thresholds_.safe) {
          if (!backed_up) {
            if (safe_zone) {
              pending_dip = true;
            } else {
              begin_backup(t);
            }
          }
          break;
        }

        // Recovered above Th_Safe: a pending dip that never needed a
        // backup is a saved NVM write (Fig. 4 region 5).
        if (pending_dip) {
          pending_dip = false;
          ++stats.safe_zone_saves;
          record_event(SimEvent::Kind::kSafeZoneSave, t);
        }

        // Timer interrupt: re-arm sensing.  With adaptive sensing the
        // sampling rate backs off while stored energy is scarce
        // (Algorithm 1 line 34).
        double interval = config_.sense_interval;
        if (config_.adaptive_sensing && e < thresholds_.compute) {
          interval *= config_.adaptive_slowdown;
        }
        if (reg == RegFlag::kIdle && t - last_sense_done >= interval) {
          reg = RegFlag::kSense;
        }

        // State entries (Algorithm 1 lines 6-11), gated on thresholds.
        if (reg == RegFlag::kSense && thresholds_.can_sense(e)) {
          state = NodeState::kSense;
          const double se = rng.jitter(config_.sense_energy, config_.op_jitter);
          start_operation(se, se / config_.sense_power);
        } else if (reg == RegFlag::kCompute &&
                   step_idx < static_cast<int>(program_.size()) &&
                   e >= step_need(static_cast<std::size_t>(step_idx))) {
          state = NodeState::kCompute;
          const TaskStep& s = program_.steps()[static_cast<std::size_t>(step_idx)];
          const double te = config_.dispatch_energy +
                            rng.jitter(s.energy, config_.op_jitter) +
                            s.persist_energy;
          const double tt = config_.dispatch_time + s.duration + s.persist_time;
          start_operation(te, tt);
        } else if (reg == RegFlag::kTransmit && thresholds_.can_transmit(e)) {
          state = NodeState::kTransmit;
          const double pe =
              rng.jitter(config_.transmit_packet_energy, config_.op_jitter);
          start_operation(pe, pe / config_.transmit_power);
        }
        break;
      }

      case NodeState::kSense:
      case NodeState::kCompute:
      case NodeState::kTransmit: {
        stats.time_active += options_.dt;

        // Exit the active state when energy falls below Th_Safe
        // (Algorithm 1 lines 17/27).  The in-flight atomic operation is
        // lost.  Safe-zone designs wait in Sleep for recovery; the others
        // conservatively back up immediately.
        if (e < thresholds_.safe) {
          if (state == NodeState::kCompute) ++stats.task_aborts;
          op_ = Operation{};
          if (safe_zone) {
            pending_dip = true;
            state = NodeState::kSleep;
          } else if (!backed_up) {
            begin_backup(t);
          } else {
            state = NodeState::kSleep;
          }
          break;
        }

        if (!advance_operation(cap, options_.dt, stats)) break;

        // Operation completed.
        if (state == NodeState::kSense) {
          last_sense_done = t;
          reg = RegFlag::kCompute;
          backed_up = false;
          state = NodeState::kSleep;
        } else if (state == NodeState::kCompute) {
          const TaskStep& s = program_.steps()[static_cast<std::size_t>(step_idx)];
          ++stats.tasks_executed;
          if (s.persist) {
            ++stats.nvm_writes;
            ++stats.nvm_boundary_writes;
            stats.nvm_bits_written += s.persist_bits;
          }
          ++step_idx;
          // A persisted step is itself a fresh resume point; only steps
          // whose data lives in volatile registers invalidate the backup.
          backed_up = false;
          if (step_idx == static_cast<int>(program_.size())) {
            reg = RegFlag::kTransmit;
            state = NodeState::kSleep;
          } else if (e >= step_need(static_cast<std::size_t>(step_idx))) {
            // Stay in Compute (Algorithm 1's inner while loop): chain the
            // next task without bouncing through Sleep.
            const TaskStep& nx =
                program_.steps()[static_cast<std::size_t>(step_idx)];
            const double te = config_.dispatch_energy +
                              rng.jitter(nx.energy, config_.op_jitter) +
                              nx.persist_energy;
            const double tt = config_.dispatch_time + nx.duration + nx.persist_time;
            start_operation(te, tt);
          } else {
            state = NodeState::kSleep;
          }
        } else {  // Transmit
          ++packet_idx;
          backed_up = false;
          if (packet_idx >= total_packets) {
            ++stats.instances_completed;
            record_event(SimEvent::Kind::kInstanceDone, t);
            reg = RegFlag::kIdle;
            packet_idx = 0;
            step_idx = 0;
            state = NodeState::kSleep;
            if (stats.instances_completed >= options_.target_instances) {
              stats.makespan = t;
              stats.workload_completed = true;
              return stats;
            }
          } else if (e >= thresholds_.safe +
                              config_.entry_margin *
                                  config_.transmit_packet_energy) {
            const double pe = rng.jitter(config_.transmit_packet_energy,
                                         config_.op_jitter);
            start_operation(pe, pe / config_.transmit_power);
          } else {
            state = NodeState::kSleep;
          }
        }
        break;
      }
    }
  }

  stats.makespan = t;
  stats.workload_completed =
      stats.instances_completed >= options_.target_instances;
  return stats;
}

}  // namespace diac
