#include "runtime/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/obs.hpp"
#include "util/rng.hpp"

namespace diac {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
// Energy overshoot past a threshold when jumping to a crossing: large
// enough to dominate double rounding at the mJ scale, far below any
// threshold separation, so the post-jump comparisons resolve the same way
// the continuous trajectory would an instant after the crossing.
constexpr double kCrossEps = 1.0e-15;  // J
// Slack on time comparisons (timer expiry, trace sampling) so events
// scheduled *at* a boundary fire despite rounding.
constexpr double kTimeEps = 1.0e-9;  // s
// Residual below which an in-flight operation counts as finished.
constexpr double kOpEps = 1.0e-12;  // s

void validate_options(const SimulatorOptions& o) {
  if (o.dt <= 0 || o.max_time <= 0) {
    throw std::invalid_argument(
        "SystemSimulator: dt and max_time must be positive");
  }
  if (o.charge_efficiency <= 0 || o.charge_efficiency > 1) {
    throw std::invalid_argument(
        "SystemSimulator: charge_efficiency must be in (0, 1]");
  }
  if (o.storage_leakage < 0) {
    throw std::invalid_argument(
        "SystemSimulator: storage_leakage must be non-negative");
  }
  if (o.trace_interval <= 0) {
    throw std::invalid_argument(
        "SystemSimulator: trace_interval must be positive");
  }
  if (o.continuous_step <= 0) {
    throw std::invalid_argument(
        "SystemSimulator: continuous_step must be positive");
  }
}

}  // namespace

const char* to_string(SimMode mode) {
  switch (mode) {
    case SimMode::kEventDriven: return "event-driven";
    case SimMode::kStepped: return "stepped";
  }
  return "?";
}

const char* to_string(ContinuousAdvance advance) {
  switch (advance) {
    case ContinuousAdvance::kClosedForm: return "closed-form";
    case ContinuousAdvance::kQuantum: return "quantum";
  }
  return "?";
}

const char* to_string(SimEvent::Kind kind) {
  switch (kind) {
    case SimEvent::Kind::kBackup: return "Backup";
    case SimEvent::Kind::kRestore: return "Restore";
    case SimEvent::Kind::kSafeZoneSave: return "SafeZoneSave";
    case SimEvent::Kind::kShutdown: return "Shutdown";
    case SimEvent::Kind::kInstanceDone: return "InstanceDone";
    case SimEvent::Kind::kPowerInterrupt: return "PowerInterrupt";
  }
  return "?";
}

SystemSimulator::SystemSimulator(const IntermittentDesign& design,
                                 const HarvestSource& source, FsmConfig config,
                                 SimulatorOptions options)
    : design_(&design),
      source_(&source),
      config_(config),
      options_(options),
      program_(design, config),
      e_max_(0.5 * options.capacitance * options.voltage * options.voltage) {
  validate_options(options_);
  thresholds_ = thresholds_for(config_, e_max_, design.backup_energy(),
                               program_.max_step_energy());
  step_prefix_.resize(program_.size() + 1, 0.0);
  for (std::size_t i = 0; i < program_.size(); ++i) {
    step_prefix_[i + 1] = step_prefix_[i] + program_.steps()[i].energy;
  }
}

void SystemSimulator::start_operation(double energy, double duration) {
  op_.energy_left = energy;
  // The stepped engine integrates in whole dt slices, so it stretches
  // sub-dt operations to one step; the event engine honors the true
  // duration (zero-duration operations complete immediately).
  op_.time_left = options_.mode == SimMode::kStepped
                      ? std::max(duration, options_.dt)
                      : std::max(duration, 0.0);
  op_.active = true;
}

bool SystemSimulator::advance_operation(Capacitor& cap, double dt,
                                        RunStats& stats) {
  if (!op_.active) return false;
  const double slice = std::min(dt, op_.time_left);
  const double de = op_.energy_left * (slice / op_.time_left);
  stats.energy_consumed += cap.draw(de);
  op_.energy_left -= de;
  op_.time_left -= slice;
  if (op_.time_left <= kOpEps) {
    op_.active = false;
    return true;
  }
  return false;
}

double SystemSimulator::step_need(std::size_t idx) const {
  const TaskStep& s = program_.steps()[idx];
  const double e = config_.dispatch_energy + s.energy + s.persist_energy;
  return thresholds_.safe + config_.entry_margin * e;
}

double SystemSimulator::prefix_energy(int from, int to) const {
  from = std::clamp(from, 0, static_cast<int>(program_.size()));
  to = std::clamp(to, 0, static_cast<int>(program_.size()));
  if (to <= from) return 0;
  return step_prefix_[static_cast<std::size_t>(to)] -
         step_prefix_[static_cast<std::size_t>(from)];
}

#if !defined(DIAC_OBS_DISABLED)
namespace {

// Flushes one run's event mix into the obs metrics side channel.  This
// reads the already-recorded event list after the fact; RunStats is
// computed independently, so obs can never perturb results (rule D6).
void record_run_metrics(const std::vector<SimEvent>& events,
                        std::uint64_t bisections) {
  std::uint64_t backups = 0, restores = 0, saves = 0, shutdowns = 0,
                done = 0, interrupts = 0;
  for (const SimEvent& e : events) {
    switch (e.kind) {
      case SimEvent::Kind::kBackup: ++backups; break;
      case SimEvent::Kind::kRestore: ++restores; break;
      case SimEvent::Kind::kSafeZoneSave: ++saves; break;
      case SimEvent::Kind::kShutdown: ++shutdowns; break;
      case SimEvent::Kind::kInstanceDone: ++done; break;
      case SimEvent::Kind::kPowerInterrupt: ++interrupts; break;
    }
  }
  DIAC_OBS_COUNT("sim.runs", 1);
  DIAC_OBS_COUNT("sim.threshold_bisections", bisections);
  DIAC_OBS_COUNT("sim.events.backup", backups);
  DIAC_OBS_COUNT("sim.events.restore", restores);
  DIAC_OBS_COUNT("sim.events.safe_zone_save", saves);
  DIAC_OBS_COUNT("sim.events.shutdown", shutdowns);
  DIAC_OBS_COUNT("sim.events.instance_done", done);
  DIAC_OBS_COUNT("sim.events.power_interrupt", interrupts);
}

}  // namespace
#endif  // !DIAC_OBS_DISABLED

RunStats SystemSimulator::run() {
  DIAC_TRACE_SPAN("simulate", "sim");
  trace_.clear();
  events_.clear();
  bisections_ = 0;
  const RunStats stats =
      options_.mode == SimMode::kStepped ? run_stepped() : run_event();
#if !defined(DIAC_OBS_DISABLED)
  record_run_metrics(events_, bisections_);
#endif
  return stats;
}

// ---------------------------------------------------------------------------
// Event-driven engine.
//
// The state trajectory between two events is a linear energy ramp: the
// harvest power is constant (piecewise-constant sources) or sampled at the
// interval midpoint (continuous sources, bounded by continuous_step), the
// load is either the standby drain or the in-flight operation's constant
// power, and leakage is constant.  Every decision the stepped loop makes
// per-tick is instead made exactly at the crossing/completion instants.
// ---------------------------------------------------------------------------
RunStats SystemSimulator::run_event() {
  RunStats stats;
  SplitMix64 rng(options_.seed);

  const double e_cap = e_max_;
  const double eta = options_.charge_efficiency;
  const double leak = options_.storage_leakage;
  double energy = options_.initial_energy_fraction * e_cap;

  const int total_packets = static_cast<int>(
      std::ceil(config_.transmit_energy / config_.transmit_packet_energy));
  const bool safe_zone = uses_safe_zone(design_->scheme);
  const bool pwc = source_->piecewise_constant();

  // --- machine state -----------------------------------------------------
  NodeState state = NodeState::kSleep;
  RegFlag reg = RegFlag::kIdle;
  int step_idx = 0;    // next compute step
  int packet_idx = 0;  // next transmit packet
  double last_sense_done = -config_.sense_interval;  // timer fires at t=0
  bool backed_up = false;
  struct Captured {
    RegFlag reg = RegFlag::kIdle;
    int step = 0;
    int packet = 0;
  } captured;
  bool pending_dip = false;  // inside the safe zone without a backup yet
  double next_trace = 0;
  double t = 0;

  op_ = Operation{};

  auto record_event = [&](SimEvent::Kind kind) {
    events_.push_back({kind, t});
  };

  auto begin_backup = [&] {
    op_ = Operation{};
    state = NodeState::kBackup;
    start_operation(design_->backup_energy(), design_->backup_time());
    record_event(SimEvent::Kind::kPowerInterrupt);
    ++stats.power_interrupts;
  };

  auto standby_power = [&] {
    return backed_up ? config_.sleep_power_backed_up : config_.sleep_power;
  };

  auto load_power = [&]() -> double {
    switch (state) {
      case NodeState::kSleep: return standby_power();
      case NodeState::kOff: return 0.0;
      default: return op_.active ? op_.power() : 0.0;
    }
  };

  auto sense_interval_at = [&](double e) {
    double interval = config_.sense_interval;
    if (config_.adaptive_sensing && e < thresholds_.compute) {
      interval *= config_.adaptive_slowdown;
    }
    return interval;
  };

  auto start_compute_step = [&] {
    const TaskStep& s = program_.steps()[static_cast<std::size_t>(step_idx)];
    const double te = config_.dispatch_energy +
                      rng.jitter(s.energy, config_.op_jitter) +
                      s.persist_energy;
    const double tt = config_.dispatch_time + s.duration + s.persist_time;
    start_operation(te, tt);
  };

  auto start_packet = [&] {
    const double pe =
        rng.jitter(config_.transmit_packet_energy, config_.op_jitter);
    start_operation(pe, pe / config_.transmit_power);
  };

  // Finishes the in-flight operation: draws any residual, then applies the
  // same completion transitions as the stepped loop.  Returns true when
  // the workload target was reached (run over).
  auto complete_operation = [&]() -> bool {
    const double residue = std::clamp(op_.energy_left, 0.0, energy);
    energy -= residue;
    stats.energy_consumed += residue;
    op_ = Operation{};

    switch (state) {
      case NodeState::kRestore: {
        ++stats.restores;
        // Roll back to the recovery point of the captured state.
        reg = captured.reg;
        packet_idx = captured.packet;
        const int resume = program_.resume_after_loss(captured.step);
        if (captured.step > resume) {
          stats.tasks_reexecuted += captured.step - resume;
          stats.reexec_energy += prefix_energy(resume, captured.step);
        }
        step_idx = resume;
        backed_up = true;  // NVM still holds the captured state
        state = NodeState::kSleep;
        record_event(SimEvent::Kind::kRestore);
        break;
      }
      case NodeState::kBackup: {
        ++stats.backups;
        ++stats.nvm_writes;
        stats.nvm_bits_written += design_->backup_bits();
        // After the backup the node drops to the low standby drain, which
        // sacrifices volatile state: DIAC schemes roll back to the last
        // commit point and re-execute the tail.
        const int resume = program_.resume_after_loss(step_idx);
        if (step_idx > resume) {
          stats.tasks_reexecuted += step_idx - resume;
          stats.reexec_energy += prefix_energy(resume, step_idx);
          step_idx = resume;
        }
        captured = {reg, step_idx, packet_idx};
        backed_up = true;
        pending_dip = false;
        state = NodeState::kSleep;
        record_event(SimEvent::Kind::kBackup);
        break;
      }
      case NodeState::kSense: {
        last_sense_done = t;
        reg = RegFlag::kCompute;
        backed_up = false;
        state = NodeState::kSleep;
        break;
      }
      case NodeState::kCompute: {
        const TaskStep& s =
            program_.steps()[static_cast<std::size_t>(step_idx)];
        ++stats.tasks_executed;
        if (s.persist) {
          ++stats.nvm_writes;
          ++stats.nvm_boundary_writes;
          stats.nvm_bits_written += s.persist_bits;
        }
        ++step_idx;
        // A persisted step is itself a fresh resume point; only steps
        // whose data lives in volatile registers invalidate the backup.
        backed_up = false;
        if (step_idx == static_cast<int>(program_.size())) {
          reg = RegFlag::kTransmit;
          state = NodeState::kSleep;
        } else if (energy >= step_need(static_cast<std::size_t>(step_idx))) {
          // Stay in Compute (Algorithm 1's inner while loop): chain the
          // next task without bouncing through Sleep.
          start_compute_step();
        } else {
          state = NodeState::kSleep;
        }
        break;
      }
      case NodeState::kTransmit: {
        ++packet_idx;
        backed_up = false;
        if (packet_idx >= total_packets) {
          ++stats.instances_completed;
          record_event(SimEvent::Kind::kInstanceDone);
          reg = RegFlag::kIdle;
          packet_idx = 0;
          step_idx = 0;
          state = NodeState::kSleep;
          if (stats.instances_completed >= options_.target_instances) {
            stats.makespan = t;
            stats.workload_completed = true;
            return true;
          }
        } else if (energy >= thresholds_.safe +
                                 config_.entry_margin *
                                     config_.transmit_packet_energy) {
          start_packet();
        } else {
          state = NodeState::kSleep;
        }
        break;
      }
      default: break;  // Sleep/Off never own an operation
    }
    return false;
  };

  // Applies every zero-time transition due at (t, energy); returns true
  // when something changed (the caller re-resolves until quiescent).
  // Mirrors the decision half of the stepped loop's switch.
  auto resolve = [&]() -> bool {
    // Deep outage: volatile state is lost below Th_Off.
    if (energy < thresholds_.off && state != NodeState::kOff) {
      state = NodeState::kOff;
      op_ = Operation{};
      ++stats.deep_outages;
      record_event(SimEvent::Kind::kShutdown);
      pending_dip = false;
      return true;
    }

    switch (state) {
      case NodeState::kOff: {
        // Recover once there is enough energy to pay for the restore and
        // land above the safe zone.
        const double need =
            thresholds_.safe + 1.25 * design_->restore_energy();
        if (energy >= need) {
          state = NodeState::kRestore;
          start_operation(design_->restore_energy(), design_->restore_time());
          return true;
        }
        return false;
      }

      case NodeState::kRestore:
      case NodeState::kBackup:
        return false;  // only the completion event moves these along

      case NodeState::kSleep: {
        // Power interrupt (Algorithm 1 line 38): below Th_Bk every design
        // must back up — unless the NVM already holds this progress.
        if (energy < thresholds_.backup) {
          if (!backed_up) {
            begin_backup();
            return true;
          }
          return false;
        }
        // Between Th_Bk and Th_Safe: a design *with* the safe zone holds
        // in Sleep hoping to recover; a design without it cannot tell a
        // brief dip from an outage and conservatively backs up now.
        if (energy < thresholds_.safe) {
          if (!backed_up) {
            if (safe_zone) {
              if (!pending_dip) {
                pending_dip = true;
                return true;
              }
            } else {
              begin_backup();
              return true;
            }
          }
          return false;
        }
        // Recovered above Th_Safe: a pending dip that never needed a
        // backup is a saved NVM write (Fig. 4 region 5).
        if (pending_dip) {
          pending_dip = false;
          ++stats.safe_zone_saves;
          record_event(SimEvent::Kind::kSafeZoneSave);
          return true;
        }
        // Timer interrupt: re-arm sensing (Algorithm 1 lines 33-37).
        if (reg == RegFlag::kIdle &&
            t - last_sense_done >= sense_interval_at(energy) - kTimeEps) {
          reg = RegFlag::kSense;
          return true;
        }
        // State entries (Algorithm 1 lines 6-11), gated on thresholds.
        if (reg == RegFlag::kSense && thresholds_.can_sense(energy)) {
          state = NodeState::kSense;
          const double se =
              rng.jitter(config_.sense_energy, config_.op_jitter);
          start_operation(se, se / config_.sense_power);
          return true;
        }
        if (reg == RegFlag::kCompute &&
            step_idx < static_cast<int>(program_.size()) &&
            energy >= step_need(static_cast<std::size_t>(step_idx))) {
          state = NodeState::kCompute;
          start_compute_step();
          return true;
        }
        if (reg == RegFlag::kTransmit && thresholds_.can_transmit(energy)) {
          state = NodeState::kTransmit;
          start_packet();
          return true;
        }
        return false;
      }

      case NodeState::kSense:
      case NodeState::kCompute:
      case NodeState::kTransmit: {
        // Exit the active state when energy falls below Th_Safe
        // (Algorithm 1 lines 17/27).  The in-flight atomic operation is
        // lost.  Safe-zone designs wait in Sleep for recovery; the others
        // conservatively back up immediately.
        if (energy < thresholds_.safe) {
          if (state == NodeState::kCompute) ++stats.task_aborts;
          op_ = Operation{};
          if (safe_zone) {
            pending_dip = true;
            state = NodeState::kSleep;
          } else if (!backed_up) {
            begin_backup();
          } else {
            state = NodeState::kSleep;
          }
          return true;
        }
        return false;
      }
    }
    return false;
  };

  // Advances the stored energy and the accounting over [t, t+h) given the
  // harvest power over the interval.  The caller guarantees no regime
  // boundary (empty/full) and no decision threshold is crossed inside the
  // open interval.
  auto integrate = [&](double h, double ph) {
    const double in = eta * ph;
    const double load = load_power();
    const double out = leak + load;
    if (energy >= e_cap * (1.0 - 1e-12) && in >= out) {
      // Pinned at E_MAX: the inflow covers the outflow; the surplus is
      // shunted exactly as a real regulator would.
      stats.energy_harvested += out * h;
      stats.energy_wasted += (ph - out) * h + leak * h;
      stats.energy_consumed += load * h;
      energy = e_cap;
    } else if (energy <= kCrossEps && in <= out) {
      // Pinned at empty (deep drought while Off): the trickle leaks away.
      stats.energy_harvested += in * h;
      stats.energy_wasted += (ph - in) * h + in * h;
      energy = 0;
    } else {
      stats.energy_harvested += in * h;
      stats.energy_wasted += (ph - in) * h + leak * h;
      stats.energy_consumed += load * h;
      energy = std::clamp(energy + (in - out) * h, 0.0, e_cap);
    }
    if (op_.active) {
      const double slice = std::min(h, op_.time_left);
      op_.energy_left -= op_.power() * slice;
      op_.time_left -= slice;
    }
    switch (state) {
      case NodeState::kSleep: stats.time_sleep += h; break;
      case NodeState::kOff: stats.time_off += h; break;
      case NodeState::kBackup:
      case NodeState::kRestore: stats.time_backup += h; break;
      default: stats.time_active += h; break;
    }
  };

  // Decision thresholds that could fire in the current machine state.
  auto collect_targets = [&](double (&cand)[8]) -> int {
    int n = 0;
    cand[n++] = thresholds_.off;
    cand[n++] = thresholds_.backup;
    cand[n++] = thresholds_.safe;
    cand[n++] = thresholds_.sense;
    cand[n++] = thresholds_.compute;
    cand[n++] = thresholds_.transmit;
    if (state == NodeState::kOff) {
      cand[n++] = thresholds_.safe + 1.25 * design_->restore_energy();
    }
    if (state == NodeState::kSleep && reg == RegFlag::kCompute &&
        step_idx < static_cast<int>(program_.size())) {
      cand[n++] = step_need(static_cast<std::size_t>(step_idx));
    }
    return n;
  };

  // Earliest decision threshold in the travel direction, as a time offset
  // from t (infinity when none applies).
  auto next_crossing = [&](double net) -> double {
    if (net == 0) return kInf;
    double cand[8];
    const int n = collect_targets(cand);
    if (net > 0) {
      double target = e_cap;  // saturation regime boundary
      for (int i = 0; i < n; ++i) {
        if (cand[i] > energy && cand[i] < target) target = cand[i];
      }
      if (target >= e_cap && energy >= e_cap * (1.0 - 1e-12)) return kInf;
      const double overshoot = target < e_cap ? kCrossEps : 0.0;
      return (target - energy + overshoot) / net;
    }
    double target = 0.0;  // empty regime boundary
    for (int i = 0; i < n; ++i) {
      if (cand[i] < energy && cand[i] > target) target = cand[i];
    }
    if (target <= 0.0 && energy <= kCrossEps) return kInf;
    const double overshoot = target > 0.0 ? kCrossEps : 0.0;
    return (energy - target + overshoot) / -net;
  };

  // --- closed-form advance over a continuous envelope -------------------
  // The stored energy after h seconds, with the harvest integrated
  // exactly (energy_between is the source's closed form) and the drain
  // constant — valid while no event interrupts the interval.
  auto energy_after = [&](double h, double drain) {
    return energy + eta * source_->energy_between(t, t + h) - drain * h;
  };

  // Earliest decision-threshold crossing inside (t, te], as an absolute
  // time (infinity when the trajectory stays between its boundaries).
  // The caller caps te at the envelope's break-even crossing
  // (next_power_crossing at drain/eta), so the trajectory is monotone on
  // the window and bisection against the exact closed form finds the
  // crossing; like the linear path, the goal is bumped kCrossEps past
  // the threshold so post-jump comparisons resolve cleanly.
  auto next_crossing_closed_form = [&](double te_bound,
                                       double drain) -> double {
    const double horizon = te_bound - t;
    if (horizon <= 0) return kInf;
    const double e_end = energy_after(horizon, drain);
    if (e_end == energy) return kInf;
    const bool rising = e_end > energy;
    double cand[8];
    const int n = collect_targets(cand);
    double goal;
    if (rising) {
      double target = e_cap;  // saturation regime boundary
      for (int i = 0; i < n; ++i) {
        if (cand[i] > energy && cand[i] < target) target = cand[i];
      }
      if (target >= e_cap && energy >= e_cap * (1.0 - 1e-12)) return kInf;
      goal = target + (target < e_cap ? kCrossEps : 0.0);
      if (e_end < goal) return kInf;
    } else {
      double target = 0.0;  // empty regime boundary
      for (int i = 0; i < n; ++i) {
        if (cand[i] < energy && cand[i] > target) target = cand[i];
      }
      if (target <= 0.0 && energy <= kCrossEps) return kInf;
      goal = target - (target > 0.0 ? kCrossEps : 0.0);
      if (e_end > goal) return kInf;
    }
    double lo = 0.0, hi = horizon;  // goal is reached within (lo, hi]
    for (int i = 0; i < 200 && hi - lo > 1.0e-12; ++i) {
      ++bisections_;
      const double mid = 0.5 * (lo + hi);
      const double e_mid = energy_after(mid, drain);
      const bool passed = rising ? e_mid >= goal : e_mid <= goal;
      (passed ? hi : lo) = mid;
    }
    return t + hi;
  };

  std::uint64_t guard = 0;
  while (t < options_.max_time - kTimeEps) {
    if (++guard > 100'000'000ULL) {
      throw std::runtime_error("SystemSimulator: event loop stalled");
    }
    // --- zero-time work due at t ---------------------------------------
    if (options_.record_trace && t >= next_trace - kTimeEps) {
      trace_.push_back({t, energy, source_->power_at(t), state});
      next_trace += options_.trace_interval;
      continue;
    }
    if (op_.active && op_.time_left <= kOpEps) {
      if (complete_operation()) return stats;
      continue;
    }
    if (resolve()) continue;

    // --- pick the horizon ----------------------------------------------
    const bool closed_form =
        !pwc &&
        options_.continuous_advance == ContinuousAdvance::kClosedForm;
    const double ph = source_->power_at(t);
    double te = options_.max_time;
    // Source breakpoint (bumped past the edge so power_at sees the new
    // level); continuous sources under the quantum path advance at most
    // one quantum.
    te = std::min(te, source_->next_change(t) + kTimeEps);
    if (!pwc && !closed_form) te = std::min(te, t + options_.continuous_step);
    if (options_.record_trace) te = std::min(te, next_trace);
    if (op_.active) te = std::min(te, t + op_.time_left);
    if (state == NodeState::kSleep && reg == RegFlag::kIdle) {
      const double due = last_sense_done + sense_interval_at(energy);
      if (due > t) te = std::min(te, due);
    }
    const double drain = leak + load_power();

    if (closed_form) {
      // Cap the window at the envelope's crossing of the break-even
      // level: on (t, te) the net power then has constant sign, so the
      // energy trajectory is monotone (and a storage pinned at E_MAX
      // stays pinned for the whole window — the surplus accounting in
      // integrate() is exact).
      const double cross = source_->next_power_crossing(t, drain / eta, te);
      if (cross < te) te = cross;
      const double t_cross = next_crossing_closed_form(te, drain);
      if (t_cross < te) te = t_cross;

      double h = std::max(te - t, 1e-12);
      h = std::min(h, options_.max_time - t);
      // The mean power over the window reproduces the exact integral, so
      // the stored energy lands on the closed-form trajectory.
      integrate(h, source_->energy_between(t, t + h) / h);
      t += h;
      continue;
    }

    const double net = eta * ph - drain;
    const double t_cross = next_crossing(net);
    if (t_cross < kInf) te = std::min(te, t + t_cross);

    double h = std::max(te - t, 1e-12);
    h = std::min(h, options_.max_time - t);

    // --- advance --------------------------------------------------------
    // Continuous sources on the quantum path: integrate with the midpoint
    // power so the ramp tracks the envelope to second order.
    integrate(h, pwc ? ph : source_->power_at(t + 0.5 * h));
    t += h;
  }

  stats.makespan = t;
  stats.workload_completed =
      stats.instances_completed >= options_.target_instances;
  return stats;
}

// ---------------------------------------------------------------------------
// Fixed-dt reference engine (the seed implementation): integrates every
// dt.  Kept verbatim for differential testing of the event engine; note
// that sub-dt operation durations are quantized up to one dt here.
// ---------------------------------------------------------------------------
RunStats SystemSimulator::run_stepped() {
  RunStats stats;
  SplitMix64 rng(options_.seed);
  Capacitor cap(options_.capacitance, options_.voltage);
  cap.set_energy(options_.initial_energy_fraction * cap.e_max());
  cap.set_charge_efficiency(options_.charge_efficiency);
  cap.set_leakage_power(options_.storage_leakage);

  const int total_packets = static_cast<int>(
      std::ceil(config_.transmit_energy / config_.transmit_packet_energy));
  const bool safe_zone = uses_safe_zone(design_->scheme);

  // --- machine state -----------------------------------------------------
  NodeState state = NodeState::kSleep;
  RegFlag reg = RegFlag::kIdle;
  int step_idx = 0;    // next compute step
  int packet_idx = 0;  // next transmit packet
  double last_sense_done = -config_.sense_interval;  // timer fires at t=0
  bool backed_up = false;
  struct Captured {
    RegFlag reg = RegFlag::kIdle;
    int step = 0;
    int packet = 0;
  } captured;
  bool pending_dip = false;   // inside the safe zone without a backup yet
  double next_trace = 0;

  op_ = Operation{};

  auto record_event = [&](SimEvent::Kind kind, double t) {
    events_.push_back({kind, t});
  };

  auto begin_backup = [&](double t) {
    op_ = Operation{};
    state = NodeState::kBackup;
    start_operation(design_->backup_energy(), design_->backup_time());
    record_event(SimEvent::Kind::kPowerInterrupt, t);
    ++stats.power_interrupts;
  };

  double t = 0;
  for (; t < options_.max_time; t += options_.dt) {
    // 1) Harvest.
    const double ph = source_->power_at(t);
    const double offered = ph * options_.dt;
    const double stored = cap.charge(offered);
    stats.energy_harvested += stored;
    stats.energy_wasted += offered - stored + cap.self_discharge(options_.dt);

    // 2) Trace sampling.
    if (options_.record_trace && t >= next_trace) {
      trace_.push_back({t, cap.energy(), ph, state});
      next_trace += options_.trace_interval;
    }

    const double e = cap.energy();

    // 3) Deep outage: volatile state is lost below Th_Off.
    if (e < thresholds_.off && state != NodeState::kOff) {
      state = NodeState::kOff;
      op_ = Operation{};
      ++stats.deep_outages;
      record_event(SimEvent::Kind::kShutdown, t);
      pending_dip = false;
    }

    switch (state) {
      case NodeState::kOff: {
        stats.time_off += options_.dt;
        // Recover once there is enough energy to pay for the restore and
        // land above the safe zone.
        const double need =
            thresholds_.safe + 1.25 * design_->restore_energy();
        if (e >= need) {
          state = NodeState::kRestore;
          start_operation(design_->restore_energy(), design_->restore_time());
        }
        break;
      }

      case NodeState::kRestore: {
        stats.time_backup += options_.dt;
        if (advance_operation(cap, options_.dt, stats)) {
          ++stats.restores;
          stats.nvm_bits_written += 0;  // restore is a read
          // Roll back to the recovery point of the captured state.
          reg = captured.reg;
          packet_idx = captured.packet;
          const int resume = program_.resume_after_loss(captured.step);
          if (captured.step > resume) {
            stats.tasks_reexecuted += captured.step - resume;
            stats.reexec_energy += prefix_energy(resume, captured.step);
          }
          step_idx = resume;
          backed_up = true;  // NVM still holds the captured state
          state = NodeState::kSleep;
          record_event(SimEvent::Kind::kRestore, t);
        }
        break;
      }

      case NodeState::kBackup: {
        stats.time_backup += options_.dt;
        if (advance_operation(cap, options_.dt, stats)) {
          ++stats.backups;
          ++stats.nvm_writes;
          stats.nvm_bits_written += design_->backup_bits();
          // After the backup the node drops to the low standby drain,
          // which sacrifices volatile state.  Checkpoint schemes hold
          // everything in NVM, so they resume in place; DIAC schemes roll
          // back to the last commit point and re-execute the tail.
          const int resume = program_.resume_after_loss(step_idx);
          if (step_idx > resume) {
            stats.tasks_reexecuted += step_idx - resume;
            stats.reexec_energy += prefix_energy(resume, step_idx);
            step_idx = resume;
          }
          captured = {reg, step_idx, packet_idx};
          backed_up = true;
          pending_dip = false;
          state = NodeState::kSleep;
          record_event(SimEvent::Kind::kBackup, t);
        }
        break;
      }

      case NodeState::kSleep: {
        stats.time_sleep += options_.dt;
        const double standby =
            backed_up ? config_.sleep_power_backed_up : config_.sleep_power;
        stats.energy_consumed += cap.draw(standby * options_.dt);

        // Power interrupt (Algorithm 1 line 38): below Th_Bk every design
        // must back up — unless the NVM already holds this progress.
        if (e < thresholds_.backup) {
          if (!backed_up) begin_backup(t);
          break;
        }

        // Between Th_Bk and Th_Safe: a design *with* the safe zone holds
        // in Sleep hoping to recover; a design without it cannot tell a
        // brief dip from an outage and conservatively backs up now.
        if (e < thresholds_.safe) {
          if (!backed_up) {
            if (safe_zone) {
              pending_dip = true;
            } else {
              begin_backup(t);
            }
          }
          break;
        }

        // Recovered above Th_Safe: a pending dip that never needed a
        // backup is a saved NVM write (Fig. 4 region 5).
        if (pending_dip) {
          pending_dip = false;
          ++stats.safe_zone_saves;
          record_event(SimEvent::Kind::kSafeZoneSave, t);
        }

        // Timer interrupt: re-arm sensing.  With adaptive sensing the
        // sampling rate backs off while stored energy is scarce
        // (Algorithm 1 line 34).
        double interval = config_.sense_interval;
        if (config_.adaptive_sensing && e < thresholds_.compute) {
          interval *= config_.adaptive_slowdown;
        }
        if (reg == RegFlag::kIdle && t - last_sense_done >= interval) {
          reg = RegFlag::kSense;
        }

        // State entries (Algorithm 1 lines 6-11), gated on thresholds.
        if (reg == RegFlag::kSense && thresholds_.can_sense(e)) {
          state = NodeState::kSense;
          const double se = rng.jitter(config_.sense_energy, config_.op_jitter);
          start_operation(se, se / config_.sense_power);
        } else if (reg == RegFlag::kCompute &&
                   step_idx < static_cast<int>(program_.size()) &&
                   e >= step_need(static_cast<std::size_t>(step_idx))) {
          state = NodeState::kCompute;
          const TaskStep& s = program_.steps()[static_cast<std::size_t>(step_idx)];
          const double te = config_.dispatch_energy +
                            rng.jitter(s.energy, config_.op_jitter) +
                            s.persist_energy;
          const double tt = config_.dispatch_time + s.duration + s.persist_time;
          start_operation(te, tt);
        } else if (reg == RegFlag::kTransmit && thresholds_.can_transmit(e)) {
          state = NodeState::kTransmit;
          const double pe =
              rng.jitter(config_.transmit_packet_energy, config_.op_jitter);
          start_operation(pe, pe / config_.transmit_power);
        }
        break;
      }

      case NodeState::kSense:
      case NodeState::kCompute:
      case NodeState::kTransmit: {
        stats.time_active += options_.dt;

        // Exit the active state when energy falls below Th_Safe
        // (Algorithm 1 lines 17/27).  The in-flight atomic operation is
        // lost.  Safe-zone designs wait in Sleep for recovery; the others
        // conservatively back up immediately.
        if (e < thresholds_.safe) {
          if (state == NodeState::kCompute) ++stats.task_aborts;
          op_ = Operation{};
          if (safe_zone) {
            pending_dip = true;
            state = NodeState::kSleep;
          } else if (!backed_up) {
            begin_backup(t);
          } else {
            state = NodeState::kSleep;
          }
          break;
        }

        if (!advance_operation(cap, options_.dt, stats)) break;

        // Operation completed.
        if (state == NodeState::kSense) {
          last_sense_done = t;
          reg = RegFlag::kCompute;
          backed_up = false;
          state = NodeState::kSleep;
        } else if (state == NodeState::kCompute) {
          const TaskStep& s = program_.steps()[static_cast<std::size_t>(step_idx)];
          ++stats.tasks_executed;
          if (s.persist) {
            ++stats.nvm_writes;
            ++stats.nvm_boundary_writes;
            stats.nvm_bits_written += s.persist_bits;
          }
          ++step_idx;
          // A persisted step is itself a fresh resume point; only steps
          // whose data lives in volatile registers invalidate the backup.
          backed_up = false;
          if (step_idx == static_cast<int>(program_.size())) {
            reg = RegFlag::kTransmit;
            state = NodeState::kSleep;
          } else if (e >= step_need(static_cast<std::size_t>(step_idx))) {
            // Stay in Compute (Algorithm 1's inner while loop): chain the
            // next task without bouncing through Sleep.
            const TaskStep& nx =
                program_.steps()[static_cast<std::size_t>(step_idx)];
            const double te = config_.dispatch_energy +
                              rng.jitter(nx.energy, config_.op_jitter) +
                              nx.persist_energy;
            const double tt = config_.dispatch_time + nx.duration + nx.persist_time;
            start_operation(te, tt);
          } else {
            state = NodeState::kSleep;
          }
        } else {  // Transmit
          ++packet_idx;
          backed_up = false;
          if (packet_idx >= total_packets) {
            ++stats.instances_completed;
            record_event(SimEvent::Kind::kInstanceDone, t);
            reg = RegFlag::kIdle;
            packet_idx = 0;
            step_idx = 0;
            state = NodeState::kSleep;
            if (stats.instances_completed >= options_.target_instances) {
              stats.makespan = t;
              stats.workload_completed = true;
              return stats;
            }
          } else if (e >= thresholds_.safe +
                              config_.entry_margin *
                                  config_.transmit_packet_energy) {
            const double pe = rng.jitter(config_.transmit_packet_energy,
                                         config_.op_jitter);
            start_operation(pe, pe / config_.transmit_power);
          } else {
            state = NodeState::kSleep;
          }
        }
        break;
      }
    }
  }

  stats.makespan = t;
  stats.workload_completed =
      stats.instances_completed >= options_.target_instances;
  return stats;
}

}  // namespace diac
