// SystemSimulator: the "system-level in-house framework" of SIV.A.
//
// Couples a harvest source, the storage capacitor, the PMU threshold
// stack, and the Algorithm-1 FSM executing a TaskProgram.  The virtual
// energy source "accumulates energy during power availability and deducts
// energy consumption" exactly as the paper describes; every stochastic
// quantity (the +-10% operation energies) comes from a seeded stream so
// runs are reproducible and schemes can be compared on identical traces.
//
// Two integration engines share the same FSM semantics:
//
//  - kEventDriven (default): between events the net power is piecewise
//    constant (HarvestSource::next_change() exposes the source's own
//    breakpoints), so the stored energy is a closed-form linear ramp.  The
//    simulator jumps directly to the earliest of {next source change,
//    threshold crossing, operation completion, sense-timer expiry, trace
//    sample} instead of ticking every dt.  Sources whose power varies
//    continuously (SolarSource) advance by the closed-form sine-envelope
//    solver by default — exact integrals via energy_between() plus
//    break-even-level crossings via next_power_crossing(), with threshold
//    crossings bisected on the exact energy trajectory — or, when
//    ContinuousAdvance::kQuantum is selected (kept for differential
//    testing), in `continuous_step` quanta with midpoint power sampling.
//  - kStepped: the original fixed-dt reference loop, kept for differential
//    testing; operation durations are quantized up to one dt.
#pragma once

#include <cstdint>
#include <vector>

#include "power/capacitor.hpp"
#include "power/harvester.hpp"
#include "runtime/executor.hpp"
#include "runtime/stats.hpp"

namespace diac {

enum class SimMode : std::uint8_t {
  kEventDriven,  // closed-form advance to the next event
  kStepped,      // fixed-dt reference integration
};

const char* to_string(SimMode mode);

// How the event engine advances across a continuous-envelope source
// (SolarSource): the closed-form crossing solver (default), or bounded
// quanta with midpoint power sampling — the historical path, kept for
// differential testing of the solver.
enum class ContinuousAdvance : std::uint8_t {
  kClosedForm,
  kQuantum,
};

const char* to_string(ContinuousAdvance advance);

struct SimulatorOptions {
  double capacitance = 2.0e-3;  // F  (paper: 2 mF)
  double voltage = 5.0;         // V  (paper: 5 V  -> E_MAX = 25 mJ)
  double initial_energy_fraction = 0.5;

  // Storage non-idealities (ideal by default).
  double charge_efficiency = 1.0;  // rectifier/regulator path, (0, 1]
  double storage_leakage = 0.0;    // W of capacitor self-discharge

  int target_instances = 12;    // sense->compute->transmit cycles to finish
  double max_time = 50000.0;    // s, safety stop

  SimMode mode = SimMode::kEventDriven;
  double dt = 1.0e-3;           // s, integration step (kStepped only)
  ContinuousAdvance continuous_advance = ContinuousAdvance::kClosedForm;
  // Event-driven advance quantum for sources whose power varies
  // continuously between breakpoints (SolarSource's diurnal envelope);
  // used only under ContinuousAdvance::kQuantum.
  double continuous_step = 0.05;  // s

  std::uint64_t seed = 0xD1AC;  // operation-jitter stream

  bool record_trace = false;    // sample (t, E, P_harvest, state)
  double trace_interval = 1.0;  // s between samples
};

struct TracePoint {
  double t = 0;
  double energy = 0;         // J stored
  double harvest_power = 0;  // W
  NodeState state = NodeState::kSleep;
};

struct SimEvent {
  enum class Kind {
    kBackup,
    kRestore,
    kSafeZoneSave,
    kShutdown,
    kInstanceDone,
    kPowerInterrupt,
  };
  Kind kind;
  double t = 0;
};

const char* to_string(SimEvent::Kind kind);

class SystemSimulator {
 public:
  // Throws std::invalid_argument when options are out of range (see
  // validate_options in simulator.cpp for the exact constraints).
  SystemSimulator(const IntermittentDesign& design, const HarvestSource& source,
                  FsmConfig config = {}, SimulatorOptions options = {});

  // Runs until the target instance count completes or max_time elapses.
  RunStats run();

  const std::vector<TracePoint>& trace() const { return trace_; }
  const std::vector<SimEvent>& events() const { return events_; }
  const Thresholds& thresholds() const { return thresholds_; }
  double e_max() const { return e_max_; }

 private:
  // --- wiring ----------------------------------------------------------
  const IntermittentDesign* design_;
  const HarvestSource* source_;
  FsmConfig config_;
  SimulatorOptions options_;
  TaskProgram program_;
  Thresholds thresholds_;
  double e_max_;

  // --- helpers ---------------------------------------------------------
  struct Operation {
    double energy_left = 0;
    double time_left = 0;
    bool active = false;
    double power() const {
      return time_left > 0 ? energy_left / time_left : 0;
    }
  };

  Operation op_;  // the in-flight atomic operation, if any

  // Arms op_ for `duration` seconds.  The stepped engine quantizes the
  // duration up to one dt (its integration cannot subdivide a step); the
  // event engine honors the true duration.
  void start_operation(double energy, double duration);
  // Consumes one dt of the current operation; returns true when finished.
  bool advance_operation(Capacitor& cap, double dt, RunStats& stats);

  RunStats run_stepped();
  RunStats run_event();

  double step_need(std::size_t idx) const;  // entry energy for compute step
  double prefix_energy(int from, int to) const;  // sum of step energies

  std::vector<double> step_prefix_;  // prefix sums of step energies
  std::vector<TracePoint> trace_;
  std::vector<SimEvent> events_;

  // Crossing-bisection iterations this run; exported to the obs metrics
  // side channel only — never part of RunStats.
  std::uint64_t bisections_ = 0;
};

}  // namespace diac
