#include "cell/cell_library.hpp"

#include <stdexcept>

#include "util/units.hpp"

namespace diac {

namespace {

std::size_t index_of(GateKind kind) { return static_cast<std::size_t>(kind); }

}  // namespace

const char* to_string(GateKind kind) {
  switch (kind) {
    case GateKind::kInput: return "INPUT";
    case GateKind::kOutput: return "OUTPUT";
    case GateKind::kConst0: return "CONST0";
    case GateKind::kConst1: return "CONST1";
    case GateKind::kBuf: return "BUF";
    case GateKind::kNot: return "NOT";
    case GateKind::kAnd: return "AND";
    case GateKind::kNand: return "NAND";
    case GateKind::kOr: return "OR";
    case GateKind::kNor: return "NOR";
    case GateKind::kXor: return "XOR";
    case GateKind::kXnor: return "XNOR";
    case GateKind::kMux: return "MUX";
    case GateKind::kDff: return "DFF";
  }
  return "?";
}

bool is_pseudo(GateKind kind) {
  switch (kind) {
    case GateKind::kInput:
    case GateKind::kOutput:
    case GateKind::kConst0:
    case GateKind::kConst1:
      return true;
    default:
      return false;
  }
}

bool is_logic(GateKind kind) { return !is_pseudo(kind); }

bool is_combinational(GateKind kind) {
  return !is_pseudo(kind) && kind != GateKind::kDff;
}

CellLibrary CellLibrary::nominal_45nm() {
  using namespace units;
  CellLibrary lib;
  lib.name_ = "nominal-45nm";
  // delay / dynamic power / static power / area.
  // Delays and leakage are representative of a 45 nm PDK at nominal corner;
  // dynamic power is chosen so that 2*delay*dyn_power lands in the
  // few-femtojoule-per-switch band typical of 45 nm standard cells.
  auto set = [&lib](GateKind k, double d, double pd, double ps, double a) {
    lib.cells_[index_of(k)] = CellParams{d, pd, ps, a};
  };
  set(GateKind::kInput, 0.0, 0.0, 0.0, 0.0);
  set(GateKind::kOutput, 0.0, 0.0, 0.0, 0.0);
  set(GateKind::kConst0, 0.0, 0.0, 0.0, 0.0);
  set(GateKind::kConst1, 0.0, 0.0, 0.0, 0.0);
  set(GateKind::kBuf, 22.0 * ps, 45.0 * uW, 14.0 * nW, 0.80 * um2);
  set(GateKind::kNot, 14.0 * ps, 38.0 * uW, 10.0 * nW, 0.53 * um2);
  set(GateKind::kAnd, 32.0 * ps, 62.0 * uW, 22.0 * nW, 1.33 * um2);
  set(GateKind::kNand, 20.0 * ps, 55.0 * uW, 18.0 * nW, 1.06 * um2);
  set(GateKind::kOr, 34.0 * ps, 64.0 * uW, 24.0 * nW, 1.33 * um2);
  set(GateKind::kNor, 23.0 * ps, 58.0 * uW, 20.0 * nW, 1.06 * um2);
  set(GateKind::kXor, 44.0 * ps, 92.0 * uW, 34.0 * nW, 1.86 * um2);
  set(GateKind::kXnor, 46.0 * ps, 94.0 * uW, 35.0 * nW, 1.86 * um2);
  set(GateKind::kMux, 40.0 * ps, 78.0 * uW, 30.0 * nW, 1.86 * um2);
  set(GateKind::kDff, 95.0 * ps, 140.0 * uW, 85.0 * nW, 4.52 * um2);
  return lib;
}

const CellParams& CellLibrary::base(GateKind kind) const {
  return cells_[index_of(kind)];
}

void CellLibrary::set_base(GateKind kind, const CellParams& params) {
  cells_[index_of(kind)] = params;
}

double CellLibrary::derate(int fanin) const {
  if (fanin <= 2) return 1.0;
  return 1.0 + derate_slope_ * static_cast<double>(fanin - 2);
}

double CellLibrary::delay(GateKind kind, int fanin) const {
  return base(kind).delay * derate(fanin);
}

double CellLibrary::dynamic_power(GateKind kind, int fanin) const {
  return base(kind).dynamic_power * derate(fanin);
}

double CellLibrary::static_power(GateKind kind, int fanin) const {
  return base(kind).static_power * derate(fanin);
}

double CellLibrary::area(GateKind kind, int fanin) const {
  return base(kind).area * derate(fanin);
}

double CellLibrary::switching_energy(GateKind kind, int fanin) const {
  return 2.0 * delay(kind, fanin) * dynamic_power(kind, fanin);
}

}  // namespace diac
