// Non-volatile memory technology models.
//
// The paper evaluates with MRAM (STT-MTJ) backup arrays, and SIV.C argues
// the improvement trend is stable across technologies because DIAC
// optimizes the number of NVM *writes*, the energy-hungry operation; it
// quotes ReRAM writes costing ~4.4x MRAM.  This module encodes the four
// technologies the paper names (MRAM, ReRAM, FeRAM, PCM) plus the
// NV-FF / LE-FF element models used by the NV-Based and NV-Clustering
// baselines.
#pragma once

#include <cstdint>
#include <string>

namespace diac {

enum class NvmTechnology : std::uint8_t { kMram, kReram, kFeram, kPcm };
inline constexpr int kNvmTechnologyCount = 4;

const char* to_string(NvmTechnology tech);

// Per-bit/array characterization of one NVM technology.
struct NvmParameters {
  NvmTechnology technology{NvmTechnology::kMram};
  double write_energy_per_bit;  // J
  double read_energy_per_bit;   // J
  double write_latency;         // s, per word (bits written in parallel)
  double read_latency;          // s, per word
  double standby_power_per_bit; // W (near zero: non-volatile retention)
  double area_per_bit;          // m^2

  // Energy/latency of backing up (writing) / restoring (reading) `bits`
  // bits.  Bits within a word are parallel; words are
  // `word_width`-bit-serial.
  double write_energy(int bits) const;
  double read_energy(int bits) const;
  double write_time(int bits, int word_width = 32) const;
  double read_time(int bits, int word_width = 32) const;
};

// Returns the characterization of `tech`.
//
// Calibration notes:
//  - MRAM is the reference (ITRS-endorsed spintronics; paper's default).
//  - ReRAM write energy is exactly 4.4x MRAM, the ratio SIV.C quotes.
//  - FeRAM writes are cheaper but arrays are less dense and reads are
//    destructive (folded into read energy).
//  - PCM writes are the most expensive (heat-based SET/RESET) and slow.
NvmParameters nvm_parameters(NvmTechnology tech);

// A non-volatile flip-flop: a regular DFF shadowed by one NVM bit.
// `store` is invoked on backup, `recall` on restore.  The NV-Based
// baseline replaces every FF with one of these (paper ref [9]).
struct NvFlipFlop {
  NvmParameters bit;
  double store_overhead_energy;   // control/peripheral energy per store, J
  double recall_overhead_energy;  // J

  double store_energy() const { return bit.write_energy(1) + store_overhead_energy; }
  double recall_energy() const { return bit.read_energy(1) + recall_overhead_energy; }
  double store_time() const { return bit.write_time(1); }
  double recall_time() const { return bit.read_time(1); }
};

NvFlipFlop nv_flip_flop(NvmTechnology tech);

// A logic-embedded flip-flop (NV-Clustering, paper ref [7]): realizes a
// Boolean function *and* holds state, so one LE-FF covers a cluster of
// logic and backs up one bit for the whole cluster.  Store costs slightly
// more than a plain NV-FF bit (the embedded logic network must settle) but
// there are far fewer of them.
struct LogicEmbeddedFlipFlop {
  NvmParameters bit;
  double store_overhead_energy;  // J
  double logic_settle_delay;     // s, added to store latency

  double store_energy() const { return bit.write_energy(1) + store_overhead_energy; }
  double store_time() const { return bit.write_time(1) + logic_settle_delay; }
  double recall_energy() const { return bit.read_energy(1); }
  double recall_time() const { return bit.read_time(1); }
};

LogicEmbeddedFlipFlop logic_embedded_flip_flop(NvmTechnology tech);

}  // namespace diac
