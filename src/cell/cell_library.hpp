// 45 nm-class standard-cell characterization.
//
// The paper drives DIAC from Synopsys DC + HSPICE runs in the 45 nm NCSU
// PDK.  This module substitutes a self-consistent characterized library:
// per-cell propagation delay, dynamic (switching) power, static (leakage)
// power and area, with fan-in derating for wide gates.  All four evaluated
// schemes consume the *same* numbers, so scheme orderings — the quantity
// Fig. 5 reports — are preserved regardless of the absolute calibration.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace diac {

// Gate/cell kinds.  kInput/kOutput are port pseudo-cells with zero cost;
// kDff is the sequential element (volatile D flip-flop).
enum class GateKind : std::uint8_t {
  kInput,
  kOutput,
  kConst0,
  kConst1,
  kBuf,
  kNot,
  kAnd,
  kNand,
  kOr,
  kNor,
  kXor,
  kXnor,
  kMux,  // 2:1 mux, fanin = {sel, a, b}
  kDff,  // fanin = {d}
};
inline constexpr int kGateKindCount = 14;

const char* to_string(GateKind kind);

// True for port/constant pseudo-cells that carry no timing or power cost.
bool is_pseudo(GateKind kind);
// True for the kinds counted as "logic gates" in benchmark gate counts
// (everything except ports and constants; DFFs are counted).
bool is_logic(GateKind kind);
bool is_combinational(GateKind kind);

// Characterization of one cell at nominal drive.
struct CellParams {
  double delay;          // propagation delay, s (input/output at VDD/2)
  double dynamic_power;  // power while switching, W
  double static_power;   // leakage, W
  double area;           // m^2
};

// A characterized cell library.
//
// Multi-input gates (AND/NAND/OR/NOR/XOR/XNOR) accept arbitrary fan-in; the
// library derates delay and power linearly with fan-in beyond 2, which is
// the standard first-order model for series-stacked CMOS gates.
class CellLibrary {
 public:
  // The default 45 nm-class characterization (values representative of an
  // open 45 nm PDK at VDD = 1.1 V, 25 C).
  static CellLibrary nominal_45nm();

  // Per-cell accessors with fan-in derating.
  double delay(GateKind kind, int fanin) const;
  double dynamic_power(GateKind kind, int fanin) const;
  double static_power(GateKind kind, int fanin) const;
  double area(GateKind kind, int fanin) const;

  // Switching energy of one evaluation of this gate per the paper's model:
  // 2 x delay x dynamic_power (the delay is doubled "for a more accurate
  // energy consumption estimation", SIV.A).
  double switching_energy(GateKind kind, int fanin) const;

  const CellParams& base(GateKind kind) const;
  void set_base(GateKind kind, const CellParams& params);

  // Fan-in derating factor: 1 + slope * max(0, fanin - 2).
  double derate(int fanin) const;
  void set_derate_slope(double slope) { derate_slope_ = slope; }

  const std::string& name() const { return name_; }

 private:
  CellLibrary() = default;

  std::string name_;
  std::array<CellParams, kGateKindCount> cells_{};
  double derate_slope_ = 0.2;
};

}  // namespace diac
