#include "cell/nvm_model.hpp"

#include <cmath>
#include <stdexcept>

#include "util/units.hpp"

namespace diac {

const char* to_string(NvmTechnology tech) {
  switch (tech) {
    case NvmTechnology::kMram: return "MRAM";
    case NvmTechnology::kReram: return "ReRAM";
    case NvmTechnology::kFeram: return "FeRAM";
    case NvmTechnology::kPcm: return "PCM";
  }
  return "?";
}

double NvmParameters::write_energy(int bits) const {
  return write_energy_per_bit * static_cast<double>(bits);
}

double NvmParameters::read_energy(int bits) const {
  return read_energy_per_bit * static_cast<double>(bits);
}

double NvmParameters::write_time(int bits, int word_width) const {
  if (bits <= 0) return 0.0;
  const int words = (bits + word_width - 1) / word_width;
  return write_latency * static_cast<double>(words);
}

double NvmParameters::read_time(int bits, int word_width) const {
  if (bits <= 0) return 0.0;
  const int words = (bits + word_width - 1) / word_width;
  return read_latency * static_cast<double>(words);
}

NvmParameters nvm_parameters(NvmTechnology tech) {
  using namespace units;
  NvmParameters p;
  p.technology = tech;
  switch (tech) {
    case NvmTechnology::kMram:
      p.write_energy_per_bit = 500.0 * fJ;
      p.read_energy_per_bit = 25.0 * fJ;
      p.write_latency = 10.0 * ns;
      p.read_latency = 2.0 * ns;
      p.standby_power_per_bit = 0.01 * nW;
      p.area_per_bit = 0.045 * um2;
      break;
    case NvmTechnology::kReram:
      // 4.4x MRAM write energy: the exact ratio quoted in SIV.C.
      p.write_energy_per_bit = 4.4 * 500.0 * fJ;
      p.read_energy_per_bit = 20.0 * fJ;
      p.write_latency = 50.0 * ns;
      p.read_latency = 5.0 * ns;
      p.standby_power_per_bit = 0.01 * nW;
      p.area_per_bit = 0.025 * um2;
      break;
    case NvmTechnology::kFeram:
      p.write_energy_per_bit = 350.0 * fJ;
      p.read_energy_per_bit = 120.0 * fJ;  // destructive read + writeback
      p.write_latency = 30.0 * ns;
      p.read_latency = 30.0 * ns;
      p.standby_power_per_bit = 0.02 * nW;
      p.area_per_bit = 0.135 * um2;
      break;
    case NvmTechnology::kPcm:
      p.write_energy_per_bit = 6000.0 * fJ;
      p.read_energy_per_bit = 50.0 * fJ;
      p.write_latency = 120.0 * ns;
      p.read_latency = 10.0 * ns;
      p.standby_power_per_bit = 0.01 * nW;
      p.area_per_bit = 0.020 * um2;
      break;
  }
  return p;
}

NvFlipFlop nv_flip_flop(NvmTechnology tech) {
  using namespace units;
  NvFlipFlop ff;
  ff.bit = nvm_parameters(tech);
  // Peripheral (store/recall control, sense amp) overheads per element;
  // representative of published NV-FF designs (paper refs [8], [9]).
  ff.store_overhead_energy = 60.0 * fJ;
  ff.recall_overhead_energy = 30.0 * fJ;
  return ff;
}

LogicEmbeddedFlipFlop logic_embedded_flip_flop(NvmTechnology tech) {
  using namespace units;
  LogicEmbeddedFlipFlop leff;
  leff.bit = nvm_parameters(tech);
  leff.store_overhead_energy = 90.0 * fJ;  // embedded logic cone settles
  leff.logic_settle_delay = 0.3 * ns;
  return leff;
}

}  // namespace diac
