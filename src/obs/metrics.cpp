#include "obs/metrics.hpp"

#include <bit>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "obs/build_info.hpp"
#include "obs/json.hpp"

namespace diac::obs {

void Histogram::record(std::uint64_t sample) {
  const auto width = static_cast<std::size_t>(std::bit_width(sample));
  const std::size_t bucket = width < kBuckets ? width : kBuckets - 1;
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::map<std::string, std::uint64_t> Registry::counter_values() const {
  std::map<std::string, std::uint64_t> out;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) out[name] = counter->value();
  return out;
}

std::map<std::string, std::int64_t> Registry::gauge_values() const {
  std::map<std::string, std::int64_t> out;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, gauge] : gauges_) out[name] = gauge->value();
  return out;
}

std::map<std::string, Registry::HistogramValue> Registry::histogram_values()
    const {
  std::map<std::string, HistogramValue> out;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, hist] : histograms_) {
    HistogramValue h;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      h.buckets[i] = hist->bucket(i);
    }
    h.count = hist->count();
    h.sum = hist->sum();
    out[name] = h;
  }
  return out;
}

void Registry::reset_for_testing() {
  const std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

namespace {

/// In-memory merged view of one or more metrics documents.
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  struct Hist {
    std::array<std::uint64_t, Histogram::kBuckets> buckets{};
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
  };
  std::map<std::string, Hist> histograms;
};

/// Adds the values of a parsed metrics document into `snap` (counters
/// and histograms sum; gauges take the maximum).
void accumulate(Snapshot& snap, const JsonValue& doc) {
  if (const JsonValue* counters = doc.find("counters")) {
    for (const auto& [name, value] : counters->members) {
      snap.counters[name] += value.as_u64();
    }
  }
  if (const JsonValue* gauges = doc.find("gauges")) {
    for (const auto& [name, value] : gauges->members) {
      const auto v = static_cast<std::int64_t>(value.number);
      auto [it, inserted] = snap.gauges.emplace(name, v);
      if (!inserted && v > it->second) it->second = v;
    }
  }
  if (const JsonValue* hists = doc.find("histograms")) {
    for (const auto& [name, value] : hists->members) {
      Snapshot::Hist& h = snap.histograms[name];
      if (const JsonValue* count = value.find("count")) {
        h.count += count->as_u64();
      }
      if (const JsonValue* sum = value.find("sum")) h.sum += sum->as_u64();
      if (const JsonValue* buckets = value.find("buckets")) {
        for (std::size_t i = 0;
             i < buckets->items.size() && i < Histogram::kBuckets; ++i) {
          h.buckets[i] += buckets->items[i].as_u64();
        }
      }
    }
  }
}

void write_snapshot(std::ostream& out, const Snapshot& snap,
                    const MetricsMeta& meta) {
  out << "{\n  \"diac_metrics_version\": 1,\n  \"build\": ";
  write_build_info_json(out);
  out << ",\n  \"command\": \"" << json_escape(meta.command) << "\"";
  if (meta.shard_index >= 0) {
    out << ",\n  \"shard_index\": " << meta.shard_index;
  }
  if (meta.shards_merged > 0) {
    out << ",\n  \"shards_merged\": " << meta.shards_merged;
  }
  out << ",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    out << (first ? "" : ",") << "\n    \"" << json_escape(name)
        << "\": " << value;
    first = false;
  }
  out << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    out << (first ? "" : ",") << "\n    \"" << json_escape(name)
        << "\": " << value;
    first = false;
  }
  out << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    out << (first ? "" : ",") << "\n    \"" << json_escape(name)
        << "\": {\"count\": " << h.count << ", \"sum\": " << h.sum
        << ", \"buckets\": [";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      out << (i == 0 ? "" : ",") << h.buckets[i];
    }
    out << "]}";
    first = false;
  }
  out << "\n  }\n}\n";
}

Snapshot registry_snapshot() {
  Snapshot snap;
  Registry& reg = Registry::instance();
  snap.counters = reg.counter_values();
  snap.gauges = reg.gauge_values();
  for (const auto& [name, hv] : reg.histogram_values()) {
    Snapshot::Hist h;
    h.buckets = hv.buckets;
    h.count = hv.count;
    h.sum = hv.sum;
    snap.histograms[name] = h;
  }
  return snap;
}

bool load_document(const std::string& path, JsonValue* doc, std::string* err) {
  std::ifstream in(path);
  if (!in) {
    if (err) *err = "cannot open " + path;
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  try {
    *doc = parse_json(text.str());
  } catch (const std::exception& e) {
    if (err) *err = path + ": " + e.what();
    return false;
  }
  return true;
}

}  // namespace

void write_metrics_json(std::ostream& out, const MetricsMeta& meta) {
  write_snapshot(out, registry_snapshot(), meta);
}

bool write_metrics_file(const std::string& path, const MetricsMeta& meta,
                        std::string* err) {
  std::ofstream out(path);
  if (!out) {
    if (err) *err = "cannot open " + path + " for writing";
    return false;
  }
  write_metrics_json(out, meta);
  out.flush();
  if (!out) {
    if (err) *err = "write to " + path + " failed";
    return false;
  }
  return true;
}

bool merge_metrics_files(const std::string& out_path,
                         const std::vector<std::string>& shard_paths,
                         const MetricsMeta& meta, std::string* err) {
  Snapshot snap = registry_snapshot();
  for (const std::string& path : shard_paths) {
    JsonValue doc;
    if (!load_document(path, &doc, err)) return false;
    accumulate(snap, doc);
  }
  std::ofstream out(out_path);
  if (!out) {
    if (err) *err = "cannot open " + out_path + " for writing";
    return false;
  }
  write_snapshot(out, snap, meta);
  out.flush();
  if (!out) {
    if (err) *err = "write to " + out_path + " failed";
    return false;
  }
  return true;
}

bool print_metrics_file(const std::string& path, std::ostream& out,
                        std::string* err) {
  JsonValue doc;
  if (!load_document(path, &doc, err)) return false;

  if (const JsonValue* build = doc.find("build")) {
    const JsonValue* hash = build->find("git_hash");
    const JsonValue* compiler = build->find("compiler");
    const JsonValue* type = build->find("build_type");
    out << "build:   " << (hash ? hash->text : "?") << " ("
        << (compiler ? compiler->text : "?") << ", "
        << (type ? type->text : "?") << ")\n";
  }
  if (const JsonValue* command = doc.find("command")) {
    out << "command: " << command->text;
    if (const JsonValue* shards = doc.find("shards_merged")) {
      out << "  (merged from " << shards->as_u64() << " shard workers)";
    }
    out << "\n";
  }

  std::size_t width = 8;
  const JsonValue* counters = doc.find("counters");
  const JsonValue* gauges = doc.find("gauges");
  const JsonValue* hists = doc.find("histograms");
  if (counters) {
    for (const auto& [name, value] : counters->members) {
      (void)value;
      if (name.size() > width) width = name.size();
    }
  }
  if (gauges) {
    for (const auto& [name, value] : gauges->members) {
      (void)value;
      if (name.size() > width) width = name.size();
    }
  }
  if (hists) {
    for (const auto& [name, value] : hists->members) {
      (void)value;
      if (name.size() > width) width = name.size();
    }
  }

  if (counters && !counters->members.empty()) {
    out << "\ncounters:\n";
    for (const auto& [name, value] : counters->members) {
      out << "  " << std::left << std::setw(static_cast<int>(width)) << name
          << "  " << value.as_u64() << "\n";
    }
  }
  if (gauges && !gauges->members.empty()) {
    out << "\ngauges:\n";
    for (const auto& [name, value] : gauges->members) {
      out << "  " << std::left << std::setw(static_cast<int>(width)) << name
          << "  " << static_cast<std::int64_t>(value.number) << "\n";
    }
  }
  if (hists && !hists->members.empty()) {
    out << "\nhistograms:\n";
    for (const auto& [name, value] : hists->members) {
      const std::uint64_t count =
          value.find("count") ? value.find("count")->as_u64() : 0;
      const std::uint64_t sum =
          value.find("sum") ? value.find("sum")->as_u64() : 0;
      out << "  " << std::left << std::setw(static_cast<int>(width)) << name
          << "  count=" << count << " sum=" << sum;
      if (count > 0) out << " mean=" << (sum / count);
      out << "\n";
    }
  }
  return true;
}

}  // namespace diac::obs
