#include "obs/json.hpp"

#include <cctype>
#include <cstdio>
#include <stdexcept>

namespace diac::obs {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.text = parse_string();
        return v;
      }
      case 't': {
        if (!consume_literal("true")) fail("bad literal");
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        if (!consume_literal("false")) fail("bad literal");
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = false;
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      }
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out.push_back(e);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (obs files only ever contain
          // ASCII, but decode properly anyway).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0u | (code >> 6)));
            out.push_back(static_cast<char>(0x80u | (code & 0x3Fu)));
          } else {
            out.push_back(static_cast<char>(0xE0u | (code >> 12)));
            out.push_back(static_cast<char>(0x80u | ((code >> 6) & 0x3Fu)));
            out.push_back(static_cast<char>(0x80u | (code & 0x3Fu)));
          }
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.raw = std::string(text_.substr(start, pos_ - start));
    try {
      v.number = std::stod(v.raw);
    } catch (const std::exception&) {
      fail("bad number '" + v.raw + "'");
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::uint64_t JsonValue::as_u64(std::uint64_t dflt) const {
  if (kind != Kind::kNumber) return dflt;
  if (number < 0.0) return dflt;
  return static_cast<std::uint64_t>(number);
}

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void write_json(std::ostream& out, const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::Kind::kNull:
      out << "null";
      break;
    case JsonValue::Kind::kBool:
      out << (v.boolean ? "true" : "false");
      break;
    case JsonValue::Kind::kNumber:
      if (!v.raw.empty()) {
        out << v.raw;
      } else {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.17g", v.number);
        out << buf;
      }
      break;
    case JsonValue::Kind::kString:
      out << '"' << json_escape(v.text) << '"';
      break;
    case JsonValue::Kind::kArray: {
      out << '[';
      bool first = true;
      for (const JsonValue& item : v.items) {
        if (!first) out << ',';
        first = false;
        write_json(out, item);
      }
      out << ']';
      break;
    }
    case JsonValue::Kind::kObject: {
      out << '{';
      bool first = true;
      for (const auto& [name, value] : v.members) {
        if (!first) out << ',';
        first = false;
        out << '"' << json_escape(name) << "\":";
        write_json(out, value);
      }
      out << '}';
      break;
    }
  }
}

}  // namespace diac::obs
