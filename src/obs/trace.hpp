#pragma once
/// \file
/// Span tracer: per-thread span buffers exported as Chrome trace-event
/// JSON (chrome://tracing, Perfetto).
///
/// Instrumented code opens spans via the DIAC_TRACE_SPAN macros in
/// obs/obs.hpp; each completed span is appended to a thread-local buffer
/// (no shared state on the hot path — the per-buffer mutex is only ever
/// contended at export time).  Recording is off until the CLI sees
/// `--trace-out`, so an idle-instrumented binary pays one relaxed atomic
/// load per span site.  Span names and args are deterministic;
/// wall-clock timestamps exist only in the side-channel trace file
/// (never in stdout/CSV — enforced by diac-lint D6).
///
/// Timestamps are raw CLOCK_MONOTONIC, which shares its epoch across
/// local processes: shard-worker traces land on the same timeline as
/// the coordinator, and merge_trace_files() re-bases the merged document
/// so it starts near t=0.

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace diac::obs {

/// Returns the current raw monotonic time in nanoseconds.  The epoch is
/// machine-wide (not process-start), so concurrently spawned processes
/// produce directly comparable timestamps.
std::uint64_t trace_now_ns();

/// True when span recording is on (set by the CLI when `--trace-out` is
/// present).
bool tracing_enabled();

/// Turns span recording on or off.
void set_tracing_enabled(bool enabled);

/// RAII span: records [construction, destruction) into the calling
/// thread's buffer when tracing is enabled.  `name`, `cat` and
/// `arg_name` must be string literals (stored as pointers).
class SpanGuard {
 public:
  SpanGuard(const char* name, const char* cat);
  SpanGuard(const char* name, const char* cat, const char* arg_name,
            std::uint64_t arg);
  ~SpanGuard();

  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  const char* name_;
  const char* cat_;
  const char* arg_name_;  ///< nullptr when the span carries no argument
  std::uint64_t arg_ = 0;
  std::uint64_t t0_ns_ = 0;
  bool armed_ = false;
};

/// Header fields for a trace document.
struct TraceMeta {
  int pid = 0;               ///< trace-viewer process id (shard index)
  std::string process_name;  ///< row label, e.g. "shard 1/3 (mc)"
  bool rebase = true;  ///< subtract the earliest timestamp before writing
};

/// Writes all spans recorded so far as a Chrome trace-event JSON
/// document.
void write_trace_json(std::ostream& out, const TraceMeta& meta);

/// Writes the recorded spans to `path`.  Returns false and fills `*err`
/// on I/O failure.
bool write_trace_file(const std::string& path, const TraceMeta& meta,
                      std::string* err);

/// Merges per-shard trace files (written with rebase=false) with this
/// process's own spans into one document at `out_path`, re-based so the
/// earliest event across all processes is t=0.  Worker events keep
/// their own pid (= shard index); the parent's spans use `parent.pid`.
bool merge_trace_files(const std::string& out_path,
                       const std::vector<std::string>& shard_paths,
                       const TraceMeta& parent, std::string* err);

/// Number of spans recorded so far across all threads (for tests).
std::size_t recorded_span_count();

/// Drops all recorded spans.  Only for unit tests.
void clear_spans_for_testing();

}  // namespace diac::obs
