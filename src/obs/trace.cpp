#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <mutex>
#include <sstream>

#include "obs/build_info.hpp"
#include "obs/json.hpp"

namespace diac::obs {
namespace {

struct SpanRecord {
  const char* name;
  const char* cat;
  const char* arg_name;  // nullptr when absent
  std::uint64_t arg;
  std::uint64_t t0_ns;
  std::uint64_t t1_ns;
  std::uint32_t tid;
};

struct ThreadBuffer {
  std::mutex mutex;  // touched by the owner per push and by the exporter
  std::vector<SpanRecord> spans;
  std::uint32_t tid = 0;
};

struct TraceState {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::uint32_t next_tid = 0;
};

TraceState& state() {
  static TraceState s;
  return s;
}

std::atomic<bool> g_enabled{false};

// The shared_ptr keeps the buffer alive past thread exit so spans from
// short-lived pool threads still appear in the export; tids are assigned
// in registration order (main thread first), which is what the trace
// viewer sorts by.
ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buf = [] {
    auto b = std::make_shared<ThreadBuffer>();
    TraceState& s = state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    b->tid = s.next_tid++;
    s.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

std::vector<SpanRecord> collect_spans() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    TraceState& s = state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    buffers = s.buffers;
  }
  std::vector<SpanRecord> all;
  for (const auto& b : buffers) {
    const std::lock_guard<std::mutex> lock(b->mutex);
    all.insert(all.end(), b->spans.begin(), b->spans.end());
  }
  std::sort(all.begin(), all.end(), [](const SpanRecord& a,
                                       const SpanRecord& b) {
    if (a.t0_ns != b.t0_ns) return a.t0_ns < b.t0_ns;
    return a.tid < b.tid;
  });
  return all;
}

void write_ts_us(std::ostream& out, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out << buf;
}

void write_span_event(std::ostream& out, const SpanRecord& s, int pid,
                      std::uint64_t base_ns) {
  out << "{\"name\":\"" << json_escape(s.name) << "\",\"cat\":\""
      << json_escape(s.cat) << "\",\"ph\":\"X\",\"ts\":";
  write_ts_us(out, s.t0_ns - base_ns);
  out << ",\"dur\":";
  write_ts_us(out, s.t1_ns - s.t0_ns);
  out << ",\"pid\":" << pid << ",\"tid\":" << s.tid;
  if (s.arg_name != nullptr) {
    out << ",\"args\":{\"" << json_escape(s.arg_name) << "\":" << s.arg << "}";
  }
  out << "}";
}

void write_process_meta(std::ostream& out, int pid, const std::string& name) {
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
      << ",\"tid\":0,\"args\":{\"name\":\"" << json_escape(name) << "\"}},\n"
      << "  {\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":" << pid
      << ",\"tid\":0,\"args\":{\"sort_index\":" << pid << "}}";
}

void write_document_header(std::ostream& out) {
  out << "{\n  \"diac_trace_version\": 1,\n  \"displayTimeUnit\": \"ms\",\n"
      << "  \"build\": ";
  write_build_info_json(out);
  out << ",\n  \"traceEvents\": [\n  ";
}

}  // namespace

std::uint64_t trace_now_ns() {
  // diac-lint: allow(D1) wall-clock is the tracer's payload; it reaches only side-channel trace files, never results (rule D6 guards that boundary)
  const auto since_epoch = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(since_epoch)
          .count());
}

bool tracing_enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_tracing_enabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

SpanGuard::SpanGuard(const char* name, const char* cat)
    : name_(name), cat_(cat), arg_name_(nullptr) {
  if (!tracing_enabled()) return;
  t0_ns_ = trace_now_ns();
  armed_ = true;
}

SpanGuard::SpanGuard(const char* name, const char* cat, const char* arg_name,
                     std::uint64_t arg)
    : name_(name), cat_(cat), arg_name_(arg_name), arg_(arg) {
  if (!tracing_enabled()) return;
  t0_ns_ = trace_now_ns();
  armed_ = true;
}

SpanGuard::~SpanGuard() {
  if (!armed_) return;
  const std::uint64_t t1 = trace_now_ns();
  ThreadBuffer& buf = local_buffer();
  const std::lock_guard<std::mutex> lock(buf.mutex);
  buf.spans.push_back(
      SpanRecord{name_, cat_, arg_name_, arg_, t0_ns_, t1, buf.tid});
}

void write_trace_json(std::ostream& out, const TraceMeta& meta) {
  const std::vector<SpanRecord> spans = collect_spans();
  std::uint64_t base = 0;
  if (meta.rebase && !spans.empty()) base = spans.front().t0_ns;
  write_document_header(out);
  write_process_meta(out, meta.pid, meta.process_name);
  for (const SpanRecord& s : spans) {
    out << ",\n  ";
    write_span_event(out, s, meta.pid, base);
  }
  out << "\n  ]\n}\n";
}

bool write_trace_file(const std::string& path, const TraceMeta& meta,
                      std::string* err) {
  std::ofstream out(path);
  if (!out) {
    if (err) *err = "cannot open " + path + " for writing";
    return false;
  }
  write_trace_json(out, meta);
  out.flush();
  if (!out) {
    if (err) *err = "write to " + path + " failed";
    return false;
  }
  return true;
}

bool merge_trace_files(const std::string& out_path,
                       const std::vector<std::string>& shard_paths,
                       const TraceMeta& parent, std::string* err) {
  const std::vector<SpanRecord> own = collect_spans();

  // Load every worker document up front to find the global time base.
  std::vector<JsonValue> docs;
  docs.reserve(shard_paths.size());
  for (const std::string& path : shard_paths) {
    std::ifstream in(path);
    if (!in) {
      if (err) *err = "cannot open shard trace " + path;
      return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
      docs.push_back(parse_json(text.str()));
    } catch (const std::exception& e) {
      if (err) *err = path + ": " + e.what();
      return false;
    }
  }

  double base_us = std::numeric_limits<double>::max();
  for (const SpanRecord& s : own) {
    base_us = std::min(base_us, static_cast<double>(s.t0_ns) / 1000.0);
  }
  for (const JsonValue& doc : docs) {
    const JsonValue* events = doc.find("traceEvents");
    if (events == nullptr) continue;
    for (const JsonValue& ev : events->items) {
      if (const JsonValue* ts = ev.find("ts")) {
        base_us = std::min(base_us, ts->number);
      }
    }
  }
  if (base_us == std::numeric_limits<double>::max()) base_us = 0.0;
  const auto base_ns = static_cast<std::uint64_t>(base_us * 1000.0);

  std::ofstream out(out_path);
  if (!out) {
    if (err) *err = "cannot open " + out_path + " for writing";
    return false;
  }
  write_document_header(out);
  write_process_meta(out, parent.pid, parent.process_name);
  for (const SpanRecord& s : own) {
    out << ",\n  ";
    write_span_event(out, s, parent.pid, base_ns);
  }
  for (const JsonValue& doc : docs) {
    const JsonValue* events = doc.find("traceEvents");
    if (events == nullptr) continue;
    for (const JsonValue& ev : events->items) {
      JsonValue adjusted = ev;
      for (auto& [key, value] : adjusted.members) {
        if (key == "ts" && value.kind == JsonValue::Kind::kNumber) {
          char buf[48];
          std::snprintf(buf, sizeof buf, "%.3f", value.number - base_us);
          value.raw = buf;
          value.number -= base_us;
        }
      }
      out << ",\n  ";
      write_json(out, adjusted);
    }
  }
  out << "\n  ]\n}\n";
  out.flush();
  if (!out) {
    if (err) *err = "write to " + out_path + " failed";
    return false;
  }
  return true;
}

std::size_t recorded_span_count() {
  std::size_t n = 0;
  TraceState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  for (const auto& b : s.buffers) {
    const std::lock_guard<std::mutex> inner(b->mutex);
    n += b->spans.size();
  }
  return n;
}

void clear_spans_for_testing() {
  TraceState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  for (const auto& b : s.buffers) {
    const std::lock_guard<std::mutex> inner(b->mutex);
    b->spans.clear();
  }
}

}  // namespace diac::obs
