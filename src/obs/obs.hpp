#pragma once
/// \file
/// Instrumentation macros — the only obs API hot paths should use.
///
///   DIAC_TRACE_SPAN("synthesize", "search");          // RAII span
///   DIAC_TRACE_SPAN_ARG("batch", "search", "jobs", jobs.size());
///   DIAC_OBS_COUNT("sim.events.backup", n);           // counter += n
///   DIAC_OBS_GAUGE_SET("runner.threads", threads);
///   DIAC_OBS_HISTOGRAM("runner.jobs_per_thread", ran);
///
/// Counter/gauge/histogram macros cache the registry lookup in a local
/// static, so steady-state cost is one relaxed atomic add.  Span macros
/// cost one relaxed atomic load when tracing is off.  Configuring CMake
/// with -DDIAC_OBS=OFF defines DIAC_OBS_DISABLED and every macro
/// compiles to nothing (arguments are not evaluated).

#if defined(DIAC_OBS_DISABLED)

// The (void)sizeof keeps the operands name-checked (so disabled builds
// don't rot) without evaluating them or generating code.
#define DIAC_TRACE_SPAN(name, cat) \
  do {                             \
  } while (0)
#define DIAC_TRACE_SPAN_ARG(name, cat, key, value) \
  do {                                             \
    (void)sizeof(value);                           \
  } while (0)
#define DIAC_OBS_COUNT(name, n) \
  do {                          \
    (void)sizeof(n);            \
  } while (0)
#define DIAC_OBS_GAUGE_SET(name, v) \
  do {                              \
    (void)sizeof(v);                \
  } while (0)
#define DIAC_OBS_HISTOGRAM(name, v) \
  do {                              \
    (void)sizeof(v);                \
  } while (0)

#else  // obs enabled

#include <cstdint>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#define DIAC_OBS_CONCAT_(a, b) a##b
#define DIAC_OBS_CONCAT(a, b) DIAC_OBS_CONCAT_(a, b)

/// Opens a trace span covering the rest of the enclosing scope.
#define DIAC_TRACE_SPAN(name, cat)                                 \
  const ::diac::obs::SpanGuard DIAC_OBS_CONCAT(diac_obs_span_,     \
                                               __COUNTER__) {      \
    name, cat                                                      \
  }

/// Opens a trace span carrying one named integer argument.
#define DIAC_TRACE_SPAN_ARG(name, cat, key, value)                 \
  const ::diac::obs::SpanGuard DIAC_OBS_CONCAT(diac_obs_span_,     \
                                               __COUNTER__) {      \
    name, cat, key, static_cast<std::uint64_t>(value)              \
  }

/// Adds `n` to the counter `name`.
#define DIAC_OBS_COUNT(name, n)                                            \
  do {                                                                     \
    static ::diac::obs::Counter& diac_obs_counter_slot =                   \
        ::diac::obs::Registry::instance().counter(name);                   \
    diac_obs_counter_slot.add(static_cast<std::uint64_t>(n));              \
  } while (0)

/// Sets the gauge `name` to `v`.
#define DIAC_OBS_GAUGE_SET(name, v)                                        \
  do {                                                                     \
    static ::diac::obs::Gauge& diac_obs_gauge_slot =                       \
        ::diac::obs::Registry::instance().gauge(name);                     \
    diac_obs_gauge_slot.set(static_cast<std::int64_t>(v));                 \
  } while (0)

/// Records sample `v` into the histogram `name`.
#define DIAC_OBS_HISTOGRAM(name, v)                                        \
  do {                                                                     \
    static ::diac::obs::Histogram& diac_obs_histogram_slot =               \
        ::diac::obs::Registry::instance().histogram(name);                 \
    diac_obs_histogram_slot.record(static_cast<std::uint64_t>(v));         \
  } while (0)

#endif  // DIAC_OBS_DISABLED
