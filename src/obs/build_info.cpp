#include "obs/build_info.hpp"

#include "obs/json.hpp"

// CMake sets these per-source compile definitions on this file only; the
// fallbacks keep non-CMake builds (e.g. IDE single-file checks) compiling.
#ifndef DIAC_BUILD_GIT_HASH
#define DIAC_BUILD_GIT_HASH "unknown"
#endif
#ifndef DIAC_BUILD_COMPILER
#define DIAC_BUILD_COMPILER "unknown"
#endif
#ifndef DIAC_BUILD_TYPE
#define DIAC_BUILD_TYPE "unknown"
#endif
#ifndef DIAC_BUILD_SANITIZE
#define DIAC_BUILD_SANITIZE "OFF"
#endif

namespace diac::obs {

const BuildInfo& build_info() {
  static const BuildInfo info{
      DIAC_BUILD_GIT_HASH, DIAC_BUILD_COMPILER, DIAC_BUILD_TYPE,
      DIAC_BUILD_SANITIZE,
#if defined(DIAC_OBS_DISABLED)
      false,
#else
      true,
#endif
  };
  return info;
}

void write_build_info_json(std::ostream& out) {
  const BuildInfo& b = build_info();
  out << "{\"git_hash\":\"" << json_escape(b.git_hash) << "\",\"compiler\":\""
      << json_escape(b.compiler) << "\",\"build_type\":\""
      << json_escape(b.build_type) << "\",\"sanitize\":\""
      << json_escape(b.sanitize) << "\",\"obs\":\""
      << (b.obs_enabled ? "on" : "off") << "\"}";
}

std::string build_info_line() {
  const BuildInfo& b = build_info();
  return b.git_hash + " (" + b.compiler + ", " + b.build_type +
         ", sanitize=" + b.sanitize + ", obs=" +
         (b.obs_enabled ? "on" : "off") + ")";
}

}  // namespace diac::obs
