#pragma once
/// \file
/// Build provenance for `diac version` and obs file headers.
///
/// The values are baked into build_info.cpp by CMake compile definitions
/// (git hash at configure time, compiler id/version, build type,
/// sanitizer config) so every trace and metrics file records exactly
/// which binary produced it.

#include <ostream>
#include <string>

namespace diac::obs {

/// Immutable description of the running binary.
struct BuildInfo {
  std::string git_hash;    ///< short git hash, or "unknown" outside a checkout
  std::string compiler;    ///< e.g. "GNU 12.2.0"
  std::string build_type;  ///< CMAKE_BUILD_TYPE, e.g. "Release"
  std::string sanitize;    ///< DIAC_SANITIZE value, e.g. "OFF" / "thread"
  bool obs_enabled = true;  ///< false when compiled with -DDIAC_OBS=OFF
};

/// Returns the build info for this binary (values fixed at compile time).
const BuildInfo& build_info();

/// Writes the build info as a compact JSON object, e.g.
/// `{"git_hash":"abc123","compiler":"GNU 12.2.0",...}`.  Used verbatim as
/// the "build" header field of trace and metrics files.
void write_build_info_json(std::ostream& out);

/// Returns a one-line human summary, e.g.
/// `abc123 (GNU 12.2.0, Release, sanitize=OFF, obs=on)`.
std::string build_info_line();

}  // namespace diac::obs
