#pragma once
/// \file
/// Process-wide metrics registry: counters, gauges and histograms.
///
/// Counting is always on (atomic integer adds, a few ns per update) and
/// is exported only when a run passes `--metrics-out <file>`; `diac
/// stats <file.json>` renders the export as a table.  All values are
/// integers and all updates are associative, so totals are bit-identical
/// at any `--threads` count, and the shard coordinator can merge worker
/// files by plain summation.  Metrics are a side channel: diac-lint D6
/// enforces that nothing here flows into reports, CSV or RunStats.

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace diac::obs {

struct JsonValue;

/// Monotonic event counter.  Updates are relaxed atomic adds; integer
/// addition is associative, so totals are thread-count invariant.
class Counter {
 public:
  void add(std::uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void inc() { add(1); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written level value (e.g. configured thread count).  Shard
/// merges take the maximum across workers.
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Power-of-two bucketed histogram of non-negative integer samples.
/// Bucket i counts samples whose bit width is i (bucket 0 holds zeros),
/// so bucket boundaries are exact and merges are elementwise sums.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 33;  ///< bit widths 0..32+, clamped

  void record(std::uint64_t sample);
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Process-wide named-metric registry.  Lookup takes a mutex and is
/// meant to happen once per call site (the DIAC_OBS_* macros cache the
/// returned reference in a local static); updates through the returned
/// references are lock-free.  Storage is an ordered map so exports are
/// deterministically sorted (diac-lint D2).
class Registry {
 public:
  /// The process-wide instance.
  static Registry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Point-in-time copy of a histogram's state (export helper).
  struct HistogramValue {
    std::array<std::uint64_t, Histogram::kBuckets> buckets{};
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
  };

  /// Point-in-time copies of all registered metrics, sorted by name.
  std::map<std::string, std::uint64_t> counter_values() const;
  std::map<std::string, std::int64_t> gauge_values() const;
  std::map<std::string, HistogramValue> histogram_values() const;

  /// Drops all registered metrics.  Only for unit tests; call sites
  /// cache references, so never call this while instrumented code runs.
  void reset_for_testing();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Header fields recorded alongside the metric values.
struct MetricsMeta {
  std::string command;    ///< CLI subcommand that produced the file
  int shard_index = -1;   ///< this worker's shard index, or -1 for the parent
  int shards_merged = 0;  ///< number of worker files merged in (parent only)
};

/// Writes the registry's current values as a metrics JSON document.
void write_metrics_json(std::ostream& out, const MetricsMeta& meta);

/// Writes the registry to `path`.  Returns false and fills `*err` on
/// I/O failure.
bool write_metrics_file(const std::string& path, const MetricsMeta& meta,
                        std::string* err);

/// Merges per-shard metrics files with this process's own registry into
/// `out_path`: counters and histograms sum, gauges take the maximum.
bool merge_metrics_files(const std::string& out_path,
                         const std::vector<std::string>& shard_paths,
                         const MetricsMeta& meta, std::string* err);

/// Renders a metrics JSON file as an aligned human-readable table
/// (the `diac stats <file.json>` view).  Returns false on parse error.
bool print_metrics_file(const std::string& path, std::ostream& out,
                        std::string* err);

}  // namespace diac::obs
