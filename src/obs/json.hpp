#pragma once
/// \file
/// Minimal ordered JSON reader/writer for the observability layer.
///
/// The obs subsystem writes Chrome trace-event files and metrics files,
/// and the shard coordinator merges the per-worker copies back into one
/// document.  That merge (plus `diac stats <metrics.json>` and the obs
/// tests) needs a parser; this one is deliberately tiny, keeps object
/// members in file order (no unordered containers; diac-lint D2), and
/// preserves the original numeric token so values round-trip exactly.

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace diac::obs {

/// A parsed JSON value.  Exactly one of the payload fields is
/// meaningful, selected by `kind`.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string raw;   ///< exact numeric token as it appeared in the input
  std::string text;  ///< string payload when kind == kString
  std::vector<JsonValue> items;                            ///< array elements
  std::vector<std::pair<std::string, JsonValue>> members;  ///< object fields,
                                                           ///< in file order

  /// Returns the first member named `key`, or nullptr if this is not an
  /// object or has no such member.
  const JsonValue* find(std::string_view key) const;

  /// Returns the value as an unsigned integer (numbers only; truncates
  /// toward zero), or `dflt` for any other kind.
  std::uint64_t as_u64(std::uint64_t dflt = 0) const;
};

/// Parses `text` as a single JSON document.  Throws std::runtime_error
/// with an offset-tagged message on malformed input.
JsonValue parse_json(std::string_view text);

/// Escapes `s` for embedding inside a JSON string literal.  The result
/// does not include the surrounding quotes.
std::string json_escape(std::string_view s);

/// Serializes `v` compactly (no insignificant whitespace) to `out`.
/// Numbers are emitted from their preserved `raw` token when present.
void write_json(std::ostream& out, const JsonValue& v);

}  // namespace diac::obs
