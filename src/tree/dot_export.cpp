#include "tree/dot_export.hpp"

#include <map>
#include <ostream>
#include <sstream>

#include "util/units.hpp"

namespace diac {

void write_dot(std::ostream& out, const TaskTree& tree,
               const DotOptions& options) {
  out << "digraph \"" << tree.netlist().name() << "\" {\n";
  out << "  rankdir=BT;\n  node [shape=box, fontname=\"monospace\"];\n";

  std::map<int, std::vector<TaskId>> by_level;
  for (std::size_t i = 0; i < tree.size(); ++i) {
    by_level[tree.node(static_cast<TaskId>(i)).dict.level].push_back(
        static_cast<TaskId>(i));
  }
  for (const auto& [level, ids] : by_level) {
    if (options.cluster_levels) {
      out << "  { rank=same;";
      for (TaskId id : ids) out << " n" << id << ";";
      out << " }\n";
    }
    for (TaskId id : ids) {
      const TaskNode& n = tree.node(id);
      out << "  n" << id << " [label=\"" << n.label << "\\nlvl " << level
          << ", " << n.gates.size() << " gates\\n"
          << units::as_mJ(options.energy_scale * n.dict.energy())
          << " mJ\"";
      if (n.has_nvm) {
        out << ", shape=doubleoctagon, style=filled, fillcolor=lightblue";
      }
      out << "];\n";
    }
  }
  for (std::size_t i = 0; i < tree.size(); ++i) {
    for (TaskId s : tree.node(static_cast<TaskId>(i)).succs) {
      out << "  n" << i << " -> n" << s << ";\n";
    }
  }
  out << "}\n";
}

std::string to_dot_string(const TaskTree& tree, const DotOptions& options) {
  std::ostringstream os;
  write_dot(os, tree, options);
  return os.str();
}

}  // namespace diac
