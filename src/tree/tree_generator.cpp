#include "tree/tree_generator.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "netlist/analysis.hpp"

namespace diac {

TreeGenerator::TreeGenerator(const Netlist& nl, const CellLibrary& lib,
                             TreeGeneratorOptions options)
    : nl_(&nl), lib_(&lib), options_(options) {}

TaskTree TreeGenerator::generate() const {
  switch (options_.grouping) {
    case TreeGrouping::kCones:
      return initial_tree(*nl_, *lib_);
    case TreeGrouping::kPerGate:
      return per_gate_tree(*nl_, *lib_);
    case TreeGrouping::kLevels: {
      if (options_.level_band <= 0) {
        throw std::invalid_argument("TreeGenerator: level_band must be positive");
      }
      // Group each cone by the level band of its root; DFFs get their own
      // nodes.  (band, cone-root) pairs become nodes.
      const auto levels = levelize(*nl_);
      std::vector<int> part(nl_->size(), kNoNode);
      std::map<int, int> band_node;  // band -> node index
      int next = 0;
      for (const Cone& cone : fanout_free_cones(*nl_)) {
        const int band = levels[cone.root] / options_.level_band;
        auto [it, inserted] = band_node.emplace(band, next);
        if (inserted) ++next;
        for (GateId g : cone.members) part[g] = it->second;
      }
      for (GateId d : nl_->dffs()) part[d] = next++;
      if (next == 0) {
        throw std::invalid_argument("TreeGenerator: netlist has no logic gates");
      }
      return TaskTree::from_partition(*nl_, *lib_, part, next);
    }
  }
  throw std::logic_error("TreeGenerator: unknown grouping");
}

Netlist fig2_netlist() {
  // Three levels of function blocks, eight inputs, one output.
  //
  //   level 1: F1(x0,x1)  F2(x2,x3)  F3(x4,x5)  F4(x6,x7)     (F2 heavy)
  //   level 2: F5(F1,F2)  F6(F2,F3)  F7(F3,F4)  F8(F1,F4)     (all light)
  //   level 3: F_out = XOR of F5..F8 reduced into the single output
  //
  // Each block is a fanout-free cone, so the cone grouping recovers the
  // F-structure exactly.  Gate counts set the energy ratios: F2 has ~6x
  // the gates of each of F5..F8.
  Netlist nl("fig2");
  std::vector<GateId> x(8);
  for (int i = 0; i < 8; ++i) {
    x[i] = nl.add(GateKind::kInput, "x" + std::to_string(i));
  }

  // A "block": a chain of `depth` gates from two operands, single output.
  auto block = [&nl](const std::string& label, GateId a, GateId b, int depth) {
    GateId cur = nl.add(GateKind::kNand, label + "_g0", {a, b});
    for (int i = 1; i < depth; ++i) {
      const GateKind k = (i % 3 == 0)   ? GateKind::kXor
                         : (i % 3 == 1) ? GateKind::kNor
                                        : GateKind::kNand;
      cur = nl.add(k, label + "_g" + std::to_string(i), {cur, i % 2 ? a : b});
    }
    return cur;
  };

  // Level 1.  F2 is the heavy operand (splits under Policy1/3).
  const GateId f1 = block("F1", x[0], x[1], 8);
  const GateId f2 = block("F2", x[2], x[3], 46);
  const GateId f3 = block("F3", x[4], x[5], 9);
  const GateId f4 = block("F4", x[6], x[7], 8);

  // Level 2.  F5..F8 are light (merge under Policy2/3).
  const GateId f5 = block("F5", f1, f2, 3);
  const GateId f6 = block("F6", f2, f3, 3);
  const GateId f7 = block("F7", f3, f4, 3);
  const GateId f8 = block("F8", f1, f4, 3);

  // Level 3: reduce to the single output.
  const GateId r1 = nl.add(GateKind::kXor, "R_g0", {f5, f6});
  const GateId r2 = nl.add(GateKind::kXor, "R_g1", {f7, f8});
  const GateId r3 = nl.add(GateKind::kXor, "R_g2", {r1, r2});
  nl.add(GateKind::kOutput, "y$out", {r3});
  nl.validate();
  return nl;
}

TaskTree fig2_tree(const Netlist& nl, const CellLibrary& lib) {
  // Group logic gates by the block label before the first '_'.
  std::map<std::string, int> block_index;
  std::vector<int> part(nl.size(), kNoNode);
  std::vector<std::string> labels;
  int next = 0;
  for (GateId id = 0; id < nl.size(); ++id) {
    const Gate& g = nl.gate(id);
    if (!is_logic(g.kind)) continue;
    const auto us = g.name.find('_');
    const std::string label =
        us == std::string::npos ? g.name : g.name.substr(0, us);
    auto [it, inserted] = block_index.emplace(label, next);
    if (inserted) {
      ++next;
      labels.push_back(label);
    }
    part[id] = it->second;
  }
  if (next == 0) {
    throw std::invalid_argument("fig2_tree: netlist has no labelled blocks");
  }
  return TaskTree::from_partition(nl, lib, part, next, labels);
}

double fig2_energy_scale(const TaskTree& tree) {
  // Map the heaviest node (F2) to 30 mJ so it exceeds the 25 mJ upper
  // limit while the light F5..F8 nodes land well under the 20 mJ lower
  // limit (they have ~1/15 of F2's gates).
  const double max_e = tree.max_node_energy();
  if (max_e <= 0.0) {
    throw std::invalid_argument("fig2_energy_scale: tree has no energy");
  }
  return 30.0e-3 / max_e;
}

}  // namespace diac
