#include "tree/task_tree.hpp"

#include <algorithm>
#include <stdexcept>

#include "netlist/analysis.hpp"
#include "tree/energy_model.hpp"

namespace diac {

namespace {

void sort_unique(std::vector<TaskId>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

}  // namespace

TaskTree TaskTree::from_partition(const Netlist& nl, const CellLibrary& lib,
                                  const std::vector<int>& node_of_gate,
                                  int num_nodes,
                                  const std::vector<std::string>& labels) {
  if (node_of_gate.size() != nl.size()) {
    throw std::invalid_argument("TaskTree: partition size != netlist size");
  }
  if (num_nodes <= 0) {
    throw std::invalid_argument("TaskTree: num_nodes must be positive");
  }

  TaskTree tree;
  tree.nl_ = &nl;
  tree.lib_ = &lib;
  tree.node_of_gate_ = node_of_gate;
  tree.nodes_.resize(static_cast<std::size_t>(num_nodes));

  for (GateId g = 0; g < nl.size(); ++g) {
    const int n = node_of_gate[g];
    const bool logic = is_logic(nl.gate(g).kind);
    if (n == kNoNode) {
      if (logic) {
        throw std::invalid_argument("TaskTree: logic gate '" + nl.gate(g).name +
                                    "' not assigned to a node");
      }
      continue;
    }
    if (!logic) {
      throw std::invalid_argument("TaskTree: port/constant gate '" +
                                  nl.gate(g).name + "' assigned to a node");
    }
    if (n < 0 || n >= num_nodes) {
      throw std::invalid_argument("TaskTree: node index out of range");
    }
    tree.nodes_[static_cast<std::size_t>(n)].gates.push_back(g);
  }
  for (std::size_t i = 0; i < tree.nodes_.size(); ++i) {
    if (tree.nodes_[i].gates.empty()) {
      throw std::invalid_argument("TaskTree: empty node " + std::to_string(i));
    }
    tree.nodes_[i].label = i < labels.size() && !labels[i].empty()
                               ? labels[i]
                               : "F" + std::to_string(i + 1);
  }

  // Edges and fan counts.  Dependency edges follow combinational
  // connectivity; DFF D-inputs are sequential boundaries (no dep edge) but
  // still count as data fan-in/fan-out for backup sizing.
  const std::size_t n_nodes = tree.nodes_.size();
  for (std::size_t i = 0; i < n_nodes; ++i) {
    TaskNode& node = tree.nodes_[i];
    std::vector<GateId> ext_in;  // deduplicated below via sort+unique
    int ext_out = 0;
    for (GateId g : node.gates) {
      const Gate& gate = nl.gate(g);
      for (GateId f : gate.fanin) {
        const int src_node = node_of_gate[f];
        if (src_node == static_cast<int>(i)) continue;
        ext_in.push_back(f);
        if (src_node != kNoNode && gate.kind != GateKind::kDff) {
          node.preds.push_back(static_cast<TaskId>(src_node));
        }
      }
      bool external_reader = false;
      for (GateId c : gate.fanout) {
        const int dst_node = node_of_gate[c];
        if (dst_node == static_cast<int>(i)) continue;
        external_reader = true;
        if (dst_node != kNoNode && nl.gate(c).kind != GateKind::kDff) {
          node.succs.push_back(static_cast<TaskId>(dst_node));
        }
      }
      if (external_reader) ++ext_out;
    }
    sort_unique(node.preds);
    sort_unique(node.succs);
    std::sort(ext_in.begin(), ext_in.end());
    ext_in.erase(std::unique(ext_in.begin(), ext_in.end()), ext_in.end());
    node.dict.fanin = static_cast<int>(ext_in.size());
    node.dict.fanout = ext_out;
  }

  // Costs (shared topo-position map).
  const auto pos = topological_positions(nl);
  for (TaskNode& node : tree.nodes_) {
    const OperandCost cost = operand_cost(nl, node.gates, lib, pos);
    node.dict.delay = cost.delay;
    node.dict.power = cost.power;
    node.dict.dynamic_energy = cost.dynamic_energy;
    node.dict.static_energy = cost.static_energy;
  }

  // Topological schedule + levels over the node graph.
  std::vector<int> pending(n_nodes, 0);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    pending[i] = static_cast<int>(tree.nodes_[i].preds.size());
  }
  std::vector<TaskId> ready;
  for (std::size_t i = 0; i < n_nodes; ++i) {
    if (pending[i] == 0) ready.push_back(static_cast<TaskId>(i));
  }
  tree.schedule_.reserve(n_nodes);
  for (std::size_t head = 0; head < ready.size(); ++head) {
    const TaskId id = ready[head];
    tree.schedule_.push_back(id);
    TaskNode& node = tree.nodes_[id];
    int lvl = 0;
    for (TaskId p : node.preds) {
      lvl = std::max(lvl, tree.nodes_[p].dict.level + 1);
    }
    node.dict.level = lvl;
    tree.max_level_ = std::max(tree.max_level_, lvl);
    for (TaskId s : node.succs) {
      if (--pending[s] == 0) ready.push_back(s);
    }
  }
  if (tree.schedule_.size() != n_nodes) {
    throw std::invalid_argument("TaskTree: partition induces a cyclic node graph");
  }
  return tree;
}

const TaskNode& TaskTree::node(TaskId id) const {
  if (id >= nodes_.size()) throw std::out_of_range("TaskTree::node: bad id");
  return nodes_[id];
}

TaskNode& TaskTree::node(TaskId id) {
  if (id >= nodes_.size()) throw std::out_of_range("TaskTree::node: bad id");
  return nodes_[id];
}

std::vector<TaskId> TaskTree::nodes_at_level(int level) const {
  std::vector<TaskId> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].dict.level == level) out.push_back(static_cast<TaskId>(i));
  }
  return out;
}

double TaskTree::total_energy() const {
  double e = 0;
  for (const TaskNode& n : nodes_) e += n.dict.energy();
  return e;
}

double TaskTree::total_delay() const {
  double d = 0;
  for (const TaskNode& n : nodes_) d += n.dict.delay;
  return d;
}

double TaskTree::max_node_energy() const {
  double e = 0;
  for (const TaskNode& n : nodes_) e = std::max(e, n.dict.energy());
  return e;
}

double TaskTree::min_node_energy() const {
  double e = nodes_.empty() ? 0 : nodes_[0].dict.energy();
  for (const TaskNode& n : nodes_) e = std::min(e, n.dict.energy());
  return e;
}

double TaskTree::avg_node_energy() const {
  return nodes_.empty() ? 0 : total_energy() / static_cast<double>(nodes_.size());
}

std::vector<TaskId> TaskTree::nvm_points() const {
  std::vector<TaskId> pts;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].has_nvm) pts.push_back(static_cast<TaskId>(i));
  }
  return pts;
}

int TaskTree::total_nvm_bits() const {
  int bits = 0;
  for (const TaskNode& n : nodes_) {
    if (n.has_nvm) bits += n.nvm_bits;
  }
  return bits;
}

void TaskTree::validate() const {
  std::vector<char> seen(nodes_.size(), 0);
  for (TaskId id : schedule_) {
    const TaskNode& n = nodes_.at(id);
    for (TaskId p : n.preds) {
      if (!seen.at(p)) {
        throw std::runtime_error("TaskTree::validate: schedule violates deps");
      }
      if (nodes_[p].dict.level >= n.dict.level) {
        throw std::runtime_error("TaskTree::validate: levels not increasing");
      }
    }
    seen[id] = 1;
  }
  for (char s : seen) {
    if (!s) throw std::runtime_error("TaskTree::validate: schedule incomplete");
  }
  // Edge symmetry.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (TaskId s : nodes_[i].succs) {
      const auto& preds = nodes_.at(s).preds;
      if (std::find(preds.begin(), preds.end(), static_cast<TaskId>(i)) ==
          preds.end()) {
        throw std::runtime_error("TaskTree::validate: asymmetric edge");
      }
    }
  }
}

TaskTree initial_tree(const Netlist& nl, const CellLibrary& lib) {
  std::vector<int> part(nl.size(), kNoNode);
  int next = 0;
  for (const Cone& cone : fanout_free_cones(nl)) {
    for (GateId g : cone.members) part[g] = next;
    ++next;
  }
  for (GateId d : nl.dffs()) part[d] = next++;
  if (next == 0) {
    throw std::invalid_argument("initial_tree: netlist has no logic gates");
  }
  return TaskTree::from_partition(nl, lib, part, next);
}

TaskTree per_gate_tree(const Netlist& nl, const CellLibrary& lib) {
  std::vector<int> part(nl.size(), kNoNode);
  int next = 0;
  for (GateId g = 0; g < nl.size(); ++g) {
    if (is_logic(nl.gate(g).kind)) part[g] = next++;
  }
  if (next == 0) {
    throw std::invalid_argument("per_gate_tree: netlist has no logic gates");
  }
  return TaskTree::from_partition(nl, lib, part, next);
}

}  // namespace diac
