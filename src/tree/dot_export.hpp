// Graphviz DOT export for task trees — the "tree-based illustration" of
// the paper's Fig. 2, renderable with `dot -Tpdf`.
//
// Nodes show the feature dictionary (label, level, gate count, scaled
// energy); NVM commit points are drawn as doubled octagons.
#pragma once

#include <iosfwd>
#include <string>

#include "tree/task_tree.hpp"

namespace diac {

struct DotOptions {
  double energy_scale = 1.0;   // applied to node energies for the label
  bool cluster_levels = true;  // rank nodes of equal level together
};

void write_dot(std::ostream& out, const TaskTree& tree,
               const DotOptions& options = {});
std::string to_dot_string(const TaskTree& tree, const DotOptions& options = {});

}  // namespace diac
