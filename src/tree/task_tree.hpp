// Task tree: the DIAC intermediate representation.
//
// A `TaskTree` partitions a netlist's logic gates into "operand" nodes
// (the paper's functions F1, F2, ...).  Each node carries the paper's
// feature dictionary: fan-in, fan-out, level j, power consumption — plus
// delay and the energy numbers the policies and the replacement engine
// consume.  Dependency edges are derived from gate-level connectivity
// (cut at DFF D-inputs, which are sequential boundaries), so any
// transformation expressed as a new partition is automatically consistent;
// `from_partition` re-derives edges/levels/dictionaries and rejects
// partitions whose node graph is cyclic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cell/cell_library.hpp"
#include "netlist/netlist.hpp"

namespace diac {

using TaskId = std::uint32_t;
inline constexpr TaskId kNullTask = static_cast<TaskId>(-1);
inline constexpr int kNoNode = -1;  // partition entry for port/constant gates

// The paper's per-node feature dictionary (SIII.A step 3), extended with
// the energy-model outputs.
struct FeatureDict {
  int fanin = 0;     // distinct external signals read by the node
  int fanout = 0;    // distinct node signals read outside the node
  int level = 0;     // node level j in the levelized tree
  double power = 0;  // W: average power while the node executes
  double delay = 0;  // s: critical delay path (CDP) through the node
  double dynamic_energy = 0;  // J per evaluation (2 * sum delay_i * dyn_i)
  double static_energy = 0;   // J per evaluation (CDP * sum static_i)

  double energy() const { return dynamic_energy + static_energy; }
};

struct TaskNode {
  std::string label;           // "F<id>"
  std::vector<GateId> gates;   // member gates (logic gates only)
  FeatureDict dict;
  std::vector<TaskId> preds;   // dependency edges (deduplicated, sorted)
  std::vector<TaskId> succs;

  // NVM insertion state (filled by the replacement engine).
  bool has_nvm = false;
  int nvm_bits = 0;            // signals persisted when this node commits
  double accumulated_energy = 0;  // P_total bookkeeping from the traversal
};

class TaskTree {
 public:
  // Builds a tree from a gate->node assignment.  `node_of_gate[g]` is the
  // node index for logic gate g, or kNoNode for ports/constants.  Node
  // indices must be dense in [0, num_nodes).  `labels`, when provided,
  // names the nodes (empty entries fall back to "F<i+1>") — policies use
  // this to keep the paper's operand names through splits/merges
  // (F2 -> F2.1/F2.2, F5..F8 -> F5+F6+F7+F8).  Throws on invalid
  // assignments or on a cyclic node graph.
  static TaskTree from_partition(const Netlist& nl, const CellLibrary& lib,
                                 const std::vector<int>& node_of_gate,
                                 int num_nodes,
                                 const std::vector<std::string>& labels = {});

  const Netlist& netlist() const { return *nl_; }
  const CellLibrary& library() const { return *lib_; }

  std::size_t size() const { return nodes_.size(); }
  const TaskNode& node(TaskId id) const;
  TaskNode& node(TaskId id);
  const std::vector<TaskNode>& nodes() const { return nodes_; }

  // The gate->node map this tree was built from.
  const std::vector<int>& partition() const { return node_of_gate_; }

  // Topological order of nodes (sources first).
  const std::vector<TaskId>& schedule() const { return schedule_; }

  int max_level() const { return max_level_; }
  std::vector<TaskId> nodes_at_level(int level) const;

  // Aggregates.
  double total_energy() const;   // J per evaluation, sum over nodes
  double total_delay() const;    // s, sum over node CDPs along the schedule
  double max_node_energy() const;
  double min_node_energy() const;
  double avg_node_energy() const;

  // NVM plan accessors.
  std::vector<TaskId> nvm_points() const;
  int total_nvm_bits() const;

  // Structural invariants (edges consistent, schedule valid); throws on
  // violation.  from_partition always returns a valid tree; this re-check
  // is used by tests.
  void validate() const;

  // An empty tree (no netlist attached).  Only assignment and destruction
  // are valid on a default-constructed tree; it exists so aggregates like
  // IntermittentDesign can be built incrementally.
  TaskTree() = default;

 private:
  const Netlist* nl_ = nullptr;
  const CellLibrary* lib_ = nullptr;
  std::vector<TaskNode> nodes_;
  std::vector<int> node_of_gate_;
  std::vector<TaskId> schedule_;
  int max_level_ = 0;
};

// Builds the trivial partition: one node per fanout-free cone plus one node
// per DFF (the un-optimized tree of SIII.A step 1).
TaskTree initial_tree(const Netlist& nl, const CellLibrary& lib);

// One-node-per-gate partition (finest granularity; used by tests and as
// the Policy1 limit case).
TaskTree per_gate_tree(const Netlist& nl, const CellLibrary& lib);

}  // namespace diac
