// The DIAC Tree Generator (SIII.A step 1-3).
//
// Takes a synthesized netlist (our stand-in for the "RTL-level HDL /
// SPICE netlist" the paper obtains from commercial tools), groups gates
// into operand nodes, and produces the un-optimized levelized tree with
// per-node feature dictionaries.  Three groupings are offered:
//
//  - kCones (default): one node per fanout-free cone + one per DFF — the
//    natural "function" granularity;
//  - kPerGate: finest granularity (every gate its own node);
//  - kLevels: one node per (level-band, cone) chunk, a coarser grouping
//    for very deep designs.
//
// Also provides the paper's Fig. 2 worked example: an 8-input/1-output
// design with functions F1..F8 whose (scaled) energies reproduce the
// 25 mJ / 20 mJ split/merge decisions node-for-node.
#pragma once

#include "tree/task_tree.hpp"

namespace diac {

enum class TreeGrouping { kCones, kPerGate, kLevels };

struct TreeGeneratorOptions {
  TreeGrouping grouping = TreeGrouping::kCones;
  int level_band = 4;  // for kLevels: number of gate levels per node band
};

class TreeGenerator {
 public:
  TreeGenerator(const Netlist& nl, const CellLibrary& lib,
                TreeGeneratorOptions options = {});

  // Generates the un-optimized tree (feature dictionaries filled).
  TaskTree generate() const;

 private:
  const Netlist* nl_;
  const CellLibrary* lib_;
  TreeGeneratorOptions options_;
};

// --- Fig. 2 worked example ---------------------------------------------------

// The paper's 8-input/1-output example circuit.  Its initial cone grouping
// yields exactly eight function nodes F1..F8 across three levels; F2 is
// deliberately heavy (it must split under a 25 mJ upper limit) and F5..F8
// are light (they must merge under a 20 mJ lower limit).
Netlist fig2_netlist();

// The Fig. 2 tree with the paper's *function* grouping: one node per named
// block F1..F8 plus the output-reduction node (gate names carry their
// block as a "<label>_" prefix).  Pure cone decomposition would absorb the
// single-consumer F5..F8 chains into the output cone, which is not how the
// paper's tree generator groups a high-level design.
TaskTree fig2_tree(const Netlist& nl, const CellLibrary& lib);

// Scale factor mapping the fig2 netlist's per-evaluation node energies
// into the paper's mJ regime (assumption 1: a benchmark is re-run until
// its total energy exceeds the storage capacity, so operand energies are
// reported in mJ).  Chosen so F2 > 25 mJ and each of F5..F8 < 20 mJ.
double fig2_energy_scale(const TaskTree& tree);

}  // namespace diac
