// The paper's design-time power/delay/energy model (SIV.A).
//
//   dynamic energy ~= 2 * sum_i delay_i * dynamic_power_i
//     (delay measured at VDD/2 crossings and doubled "for a more accurate
//      energy consumption estimation")
//   static energy  ~= CDP * sum_{i != active} static_power_i
//     (while one gate switches the others only leak; CDP is the critical
//      delay path through the operand)
//
// `operand_cost` evaluates these formulas over an arbitrary set of member
// gates, computing the CDP with arrival times restricted to the set.
#pragma once

#include <span>
#include <vector>

#include "cell/cell_library.hpp"
#include "netlist/netlist.hpp"

namespace diac {

struct OperandCost {
  double delay = 0;           // s: critical delay path through the members
  double dynamic_energy = 0;  // J
  double static_energy = 0;   // J
  double power = 0;           // W: (dynamic+static energy) / delay

  double energy() const { return dynamic_energy + static_energy; }
};

// Evaluates the paper's model over `members` (logic gates of one operand).
// Gates outside the set contribute arrival time 0 (their values are node
// inputs, ready when the node starts).  Member DFFs contribute their
// capture delay as parallel single-gate paths.
OperandCost operand_cost(const Netlist& nl, std::span<const GateId> members,
                         const CellLibrary& lib);

// As above with a precomputed topological position map (pos[g] = rank of
// gate g in topological_order(nl)), avoiding the per-call O(|netlist|)
// ordering — use this when costing many operands of the same netlist.
OperandCost operand_cost(const Netlist& nl, std::span<const GateId> members,
                         const CellLibrary& lib,
                         std::span<const std::uint32_t> topo_pos);

// Builds the position map for the overload above.
std::vector<std::uint32_t> topological_positions(const Netlist& nl);

// Whole-netlist cost treated as one operand (used by reports and by the
// paper's assumption-1 scaling, where a benchmark is re-run until its total
// energy exceeds the storage capacity).
OperandCost netlist_cost(const Netlist& nl, const CellLibrary& lib);

}  // namespace diac
