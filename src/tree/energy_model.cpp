#include "tree/energy_model.hpp"

#include <algorithm>

#include "netlist/analysis.hpp"

namespace diac {

std::vector<std::uint32_t> topological_positions(const Netlist& nl) {
  const auto order = topological_order(nl);
  std::vector<std::uint32_t> pos(nl.size(), 0);
  for (std::uint32_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  return pos;
}

OperandCost operand_cost(const Netlist& nl, std::span<const GateId> members,
                         const CellLibrary& lib) {
  return operand_cost(nl, members, lib, topological_positions(nl));
}

OperandCost operand_cost(const Netlist& nl, std::span<const GateId> members,
                         const CellLibrary& lib,
                         std::span<const std::uint32_t> topo_pos) {
  OperandCost cost;
  if (members.empty()) return cost;

  // Arrival times for the arrival-time restriction, indexed by GateId.
  // Non-members and members whose arrival is still unresolved both read as
  // negative (members resolve before use because we visit them in
  // topological order).
  std::vector<double> arrival(nl.size(), -1.0);

  double sum_static = 0.0;
  double max_static = 0.0;

  // Members in global topological order so restricted arrivals resolve in
  // one pass.
  std::vector<GateId> ordered(members.begin(), members.end());
  std::sort(ordered.begin(), ordered.end(), [&topo_pos](GateId a, GateId b) {
    return topo_pos[a] < topo_pos[b];
  });

  for (GateId id : ordered) {
    const Gate& g = nl.gate(id);
    const int n = g.fanin_count();
    const double d = lib.delay(g.kind, n);

    // Dynamic energy: 2 * delay * dynamic_power per member evaluation.
    cost.dynamic_energy += 2.0 * d * lib.dynamic_power(g.kind, n);

    const double st = lib.static_power(g.kind, n);
    sum_static += st;
    max_static = std::max(max_static, st);

    // Restricted arrival: external fanins (and DFF Q values, which are
    // ready at node start) arrive at t = 0.
    double at = 0.0;
    if (g.kind != GateKind::kDff) {
      for (GateId f : g.fanin) {
        if (arrival[f] >= 0.0) at = std::max(at, arrival[f]);
      }
    }
    at += d;
    arrival[id] = at;
    cost.delay = std::max(cost.delay, at);
  }

  // Static energy: while one gate switches, the other n-1 leak for the
  // node's CDP.  We charge CDP * (sum - max) — the "currently active gate"
  // excluded per the paper's formula (using the largest leaker keeps the
  // estimate conservative for single-gate nodes, where it becomes zero).
  cost.static_energy = cost.delay * (sum_static - max_static);

  cost.power = cost.delay > 0.0 ? cost.energy() / cost.delay : 0.0;
  return cost;
}

OperandCost netlist_cost(const Netlist& nl, const CellLibrary& lib) {
  std::vector<GateId> members;
  members.reserve(nl.size());
  for (GateId id = 0; id < nl.size(); ++id) {
    if (is_logic(nl.gate(id).kind)) members.push_back(id);
  }
  return operand_cost(nl, members, lib);
}

}  // namespace diac
