/// Functional equivalence checking between two netlists.
///
/// `check_equivalence(a, b)` decides whether two netlists compute the
/// same function at their primary outputs.  Primary I/O is matched by
/// gate name (or positionally with `match_ports_by_order`, which the
/// codegen round-trip needs because the Verilog backend renames every
/// signal).  Combinational pairs with few inputs are compared
/// *exhaustively* — every one of the 2^n input patterns, packed 64xB
/// per `CompiledSimulator` traversal; everything else (wide inputs,
/// sequential circuits) is compared by seeded batched random
/// fingerprinting: both sides run in k-cycle lockstep on identical
/// SplitMix64-derived stimulus, 64xB patterns per traversal, for a
/// configurable number of rounds from the all-zero state.
///
/// On mismatch the checker extracts a `Counterexample` — the per-cycle
/// input assignment of the first differing lane, the first differing
/// output, and the cycle index — and *replays* it on two fresh
/// single-lane simulators to confirm it really distinguishes the
/// netlists (`Counterexample::replayed`).
///
/// Everything is bit-deterministic: the stimulus is a pure function of
/// `EquivalenceOptions::seed`, traversal orders are index-ordered, and
/// no threads are involved, so the same pair and options always yield
/// the byte-identical result.
// diac-lint: api-header
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace diac::verify {

/// Tuning knobs for `check_equivalence`.  The defaults prove
/// combinational circuits up to 2^14 patterns exactly and give
/// sequential circuits 16 rounds x 8 cycles x 512 lanes of lockstep.
struct EquivalenceOptions {
  int exhaustive_limit = 14;  ///< comb. circuits with <= n inputs: exact
  int random_rounds = 16;     ///< fingerprint rounds otherwise
  int batch_words = 8;        ///< words per traversal (64xB lanes)
  int seq_cycles = 8;         ///< lockstep clock cycles per round
  std::uint64_t seed = 0xD1AC5EEDULL;  ///< stimulus seed (SplitMix64)
  bool match_ports_by_order = false;   ///< positional I/O matching
};

/// Verdict of one equivalence check.
enum class EquivalenceStatus : std::uint8_t {
  kEquivalent = 0,         ///< no distinguishing pattern found
  kNotEquivalent = 1,      ///< counterexample extracted
  kInterfaceMismatch = 2,  ///< primary I/O could not be matched
};

/// "equivalent" / "not-equivalent" / "interface-mismatch".
const char* to_string(EquivalenceStatus status);

/// A concrete distinguishing stimulus: one input bit per matched input
/// per cycle, plus the first differing output and when it diverged.
struct Counterexample {
  std::vector<std::string> inputs;  ///< matched input names (side-a spelling)
  std::vector<std::vector<std::uint8_t>> pattern;  ///< [cycle][input] bits
  std::size_t output_index = 0;  ///< index into the matched output list
  std::string output;            ///< first differing output (side-a name)
  int cycle = 0;                 ///< clock cycle of the divergence (0-based)
  bool value_a = false;          ///< side a's value of that output
  bool value_b = false;          ///< side b's value of that output
  bool replayed = false;  ///< confirmed on fresh single-lane simulators
};

/// Outcome of `check_equivalence`.
struct EquivalenceResult {
  EquivalenceStatus status = EquivalenceStatus::kEquivalent;  ///< verdict
  bool exhaustive = false;      ///< true when every input pattern was tried
  std::uint64_t patterns = 0;   ///< pattern-cycles actually compared
  std::string reason;           ///< interface-mismatch detail ("" otherwise)
  std::optional<Counterexample> counterexample;  ///< set on kNotEquivalent

  /// True iff the verdict is kEquivalent.
  bool equivalent() const {
    return status == EquivalenceStatus::kEquivalent;
  }
};

/// Checks functional equivalence of `a` and `b` under `options`.
/// Throws `std::runtime_error` / `std::invalid_argument` only when a
/// netlist cannot be compiled at all (combinational cycles, arity) —
/// run DRC first for a collected report; interface mismatches are
/// returned, not thrown.
EquivalenceResult check_equivalence(const Netlist& a, const Netlist& b,
                                    const EquivalenceOptions& options = {});

/// Re-simulates `cex` on fresh single-lane simulators of `a` and `b`
/// (same port matching as the producing check) and returns true iff the
/// recorded divergence reproduces.  `check_equivalence` already does
/// this internally (`Counterexample::replayed`); exposed for the
/// mutation-soundness tests.
bool replay_counterexample(const Netlist& a, const Netlist& b,
                           const EquivalenceOptions& options,
                           const Counterexample& cex);

/// Writes a human-readable one-result summary: verdict, pattern count,
/// and the counterexample assignment when present.  Deterministic.
void write_equivalence_result(std::ostream& out,
                              const EquivalenceResult& result);

}  // namespace diac::verify
