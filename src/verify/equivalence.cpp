#include "verify/equivalence.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <ostream>
#include <stdexcept>

#include "netlist/compiled_sim.hpp"
#include "util/rng.hpp"

namespace diac::verify {
namespace {

// Matched primary I/O of the two sides, in one canonical order
// (side a's declaration order).
struct PortMatch {
  std::vector<GateId> a_in, b_in, a_out, b_out;
  std::vector<std::string> in_names, out_names;  // side-a spellings
  std::string mismatch;  // non-empty: why matching failed
};

// Matches one port class (inputs or outputs) by name; returns false and
// fills `why` on the first mismatch (deterministic: side a's order,
// then leftover names in sorted order).
bool match_by_name(const Netlist& a, const Netlist& b,
                   std::span<const GateId> a_ports,
                   std::span<const GateId> b_ports, const char* what,
                   std::vector<GateId>& out_a, std::vector<GateId>& out_b,
                   std::vector<std::string>& out_names, std::string& why) {
  std::map<std::string, GateId> b_by_name;
  for (GateId id : b_ports) b_by_name.emplace(b.gate(id).name, id);
  for (GateId id : a_ports) {
    const std::string& name = a.gate(id).name;
    const auto it = b_by_name.find(name);
    if (it == b_by_name.end()) {
      why = std::string(what) + " '" + name + "' of '" + a.name() +
            "' has no counterpart in '" + b.name() + "'";
      return false;
    }
    out_a.push_back(id);
    out_b.push_back(it->second);
    out_names.push_back(name);
    b_by_name.erase(it);
  }
  if (!b_by_name.empty()) {
    why = std::string(what) + " '" + b_by_name.begin()->first + "' of '" +
          b.name() + "' has no counterpart in '" + a.name() + "'";
    return false;
  }
  return true;
}

PortMatch match_ports(const Netlist& a, const Netlist& b, bool by_order) {
  PortMatch m;
  if (by_order) {
    if (a.inputs().size() != b.inputs().size()) {
      m.mismatch = "input count differs: " + std::to_string(a.inputs().size()) +
                   " vs " + std::to_string(b.inputs().size());
      return m;
    }
    if (a.outputs().size() != b.outputs().size()) {
      m.mismatch = "output count differs: " +
                   std::to_string(a.outputs().size()) + " vs " +
                   std::to_string(b.outputs().size());
      return m;
    }
    m.a_in.assign(a.inputs().begin(), a.inputs().end());
    m.b_in.assign(b.inputs().begin(), b.inputs().end());
    m.a_out.assign(a.outputs().begin(), a.outputs().end());
    m.b_out.assign(b.outputs().begin(), b.outputs().end());
    for (GateId id : m.a_in) m.in_names.push_back(a.gate(id).name);
    for (GateId id : m.a_out) m.out_names.push_back(a.gate(id).name);
    return m;
  }
  if (!match_by_name(a, b, a.inputs(), b.inputs(), "input", m.a_in, m.b_in,
                     m.in_names, m.mismatch) ||
      !match_by_name(a, b, a.outputs(), b.outputs(), "output", m.a_out,
                     m.b_out, m.out_names, m.mismatch)) {
    return m;
  }
  return m;
}

// First differing (output index, word, lane) between the two settled
// simulators, scanning in canonical order.  Returns false when equal.
bool first_divergence(const CompiledSimulator& sa, const CompiledSimulator& sb,
                      const PortMatch& pm, int batch, std::size_t& out_idx,
                      int& word, int& lane) {
  for (std::size_t oi = 0; oi < pm.a_out.size(); ++oi) {
    for (int w = 0; w < batch; ++w) {
      const Word diff =
          sa.value(pm.a_out[oi], w) ^ sb.value(pm.b_out[oi], w);
      if (diff != 0) {
        out_idx = oi;
        word = w;
        lane = std::countr_zero(diff);
        return true;
      }
    }
  }
  return false;
}

void fill_counterexample_values(const CompiledSimulator& sa,
                                const CompiledSimulator& sb,
                                const PortMatch& pm, std::size_t out_idx,
                                int word, int lane, Counterexample& cex) {
  cex.output_index = out_idx;
  cex.output = pm.out_names[out_idx];
  cex.value_a =
      ((sa.value(pm.a_out[out_idx], word) >> lane) & 1ULL) != 0;
  cex.value_b =
      ((sb.value(pm.b_out[out_idx], word) >> lane) & 1ULL) != 0;
}

}  // namespace

const char* to_string(EquivalenceStatus status) {
  switch (status) {
    case EquivalenceStatus::kEquivalent: return "equivalent";
    case EquivalenceStatus::kNotEquivalent: return "not-equivalent";
    case EquivalenceStatus::kInterfaceMismatch: return "interface-mismatch";
  }
  return "?";
}

EquivalenceResult check_equivalence(const Netlist& a, const Netlist& b,
                                    const EquivalenceOptions& options) {
  EquivalenceResult res;
  const PortMatch pm = match_ports(a, b, options.match_ports_by_order);
  if (!pm.mismatch.empty()) {
    res.status = EquivalenceStatus::kInterfaceMismatch;
    res.reason = pm.mismatch;
    return res;
  }

  const int batch = std::max(1, options.batch_words);
  CompiledSimulator sa(a, batch);
  CompiledSimulator sb(b, batch);
  const bool sequential = !a.dffs().empty() || !b.dffs().empty();
  const std::size_t n_in = pm.a_in.size();
  const int limit = std::clamp(options.exhaustive_limit, 0, 62);
  const std::uint64_t lanes_per_pass =
      64ULL * static_cast<std::uint64_t>(batch);

  if (!sequential && n_in <= static_cast<std::size_t>(limit)) {
    // Exhaustive: every one of the 2^n input patterns, 64xB per
    // traversal.  Pattern p assigns bit (p >> i) & 1 to input i; lanes
    // past 2^n wrap (duplicates are harmless — still valid patterns).
    res.exhaustive = true;
    const std::uint64_t total = 1ULL << n_in;
    const std::uint64_t pattern_mask = total - 1;
    for (std::uint64_t base = 0; base < total; base += lanes_per_pass) {
      for (std::size_t i = 0; i < n_in; ++i) {
        for (int w = 0; w < batch; ++w) {
          Word word_bits = 0;
          for (int l = 0; l < 64; ++l) {
            const std::uint64_t p =
                (base + static_cast<std::uint64_t>(w) * 64ULL +
                 static_cast<std::uint64_t>(l)) &
                pattern_mask;
            word_bits |= ((p >> i) & 1ULL) << l;
          }
          sa.set_input(pm.a_in[i], word_bits, w);
          sb.set_input(pm.b_in[i], word_bits, w);
        }
      }
      sa.settle();
      sb.settle();
      res.patterns += std::min(lanes_per_pass, total - base);
      std::size_t out_idx = 0;
      int word = 0, lane = 0;
      if (first_divergence(sa, sb, pm, batch, out_idx, word, lane)) {
        Counterexample cex;
        cex.inputs = pm.in_names;
        const std::uint64_t p =
            (base + static_cast<std::uint64_t>(word) * 64ULL +
             static_cast<std::uint64_t>(lane)) &
            pattern_mask;
        std::vector<std::uint8_t> row(n_in, 0);
        for (std::size_t i = 0; i < n_in; ++i) {
          row[i] = static_cast<std::uint8_t>((p >> i) & 1ULL);
        }
        cex.pattern.push_back(std::move(row));
        cex.cycle = 0;
        fill_counterexample_values(sa, sb, pm, out_idx, word, lane, cex);
        cex.replayed = replay_counterexample(a, b, options, cex);
        res.status = EquivalenceStatus::kNotEquivalent;
        res.counterexample = std::move(cex);
        return res;
      }
    }
    return res;
  }

  // Seeded random fingerprinting: both sides run in lockstep on
  // identical SplitMix64 stimulus, `seq_cycles` clock edges per round
  // from the all-zero state (combinational circuits: one settle per
  // round).
  const int rounds = std::max(1, options.random_rounds);
  const int cycles = sequential ? std::max(1, options.seq_cycles) : 1;
  SplitMix64 rng(options.seed);
  const std::vector<Word> zero_a(a.dffs().size() * static_cast<std::size_t>(batch), 0);
  const std::vector<Word> zero_b(b.dffs().size() * static_cast<std::size_t>(batch), 0);
  // history[cycle][i * batch + w]: stimulus word w of input i.
  std::vector<std::vector<Word>> history;
  for (int round = 0; round < rounds; ++round) {
    sa.set_state(zero_a);
    sb.set_state(zero_b);
    history.clear();
    for (int cycle = 0; cycle < cycles; ++cycle) {
      std::vector<Word> stim(n_in * static_cast<std::size_t>(batch), 0);
      for (std::size_t i = 0; i < n_in; ++i) {
        for (int w = 0; w < batch; ++w) {
          const Word v = rng.next();
          stim[i * static_cast<std::size_t>(batch) +
               static_cast<std::size_t>(w)] = v;
          sa.set_input(pm.a_in[i], v, w);
          sb.set_input(pm.b_in[i], v, w);
        }
      }
      history.push_back(std::move(stim));
      if (sequential) {
        sa.step();
        sb.step();
      } else {
        sa.settle();
        sb.settle();
      }
      res.patterns += lanes_per_pass;
      std::size_t out_idx = 0;
      int word = 0, lane = 0;
      if (first_divergence(sa, sb, pm, batch, out_idx, word, lane)) {
        Counterexample cex;
        cex.inputs = pm.in_names;
        for (const std::vector<Word>& past : history) {
          std::vector<std::uint8_t> row(n_in, 0);
          for (std::size_t i = 0; i < n_in; ++i) {
            const Word v = past[i * static_cast<std::size_t>(batch) +
                                static_cast<std::size_t>(word)];
            row[i] = static_cast<std::uint8_t>((v >> lane) & 1ULL);
          }
          cex.pattern.push_back(std::move(row));
        }
        cex.cycle = cycle;
        fill_counterexample_values(sa, sb, pm, out_idx, word, lane, cex);
        cex.replayed = replay_counterexample(a, b, options, cex);
        res.status = EquivalenceStatus::kNotEquivalent;
        res.counterexample = std::move(cex);
        return res;
      }
    }
  }
  return res;
}

bool replay_counterexample(const Netlist& a, const Netlist& b,
                           const EquivalenceOptions& options,
                           const Counterexample& cex) {
  const PortMatch pm = match_ports(a, b, options.match_ports_by_order);
  if (!pm.mismatch.empty()) return false;
  if (cex.pattern.empty() || cex.output_index >= pm.a_out.size()) return false;
  if (cex.cycle != static_cast<int>(cex.pattern.size()) - 1) return false;
  const bool sequential = !a.dffs().empty() || !b.dffs().empty();
  CompiledSimulator sa(a, 1);
  CompiledSimulator sb(b, 1);  // fresh simulators start all-zero
  for (const std::vector<std::uint8_t>& row : cex.pattern) {
    if (row.size() != pm.a_in.size()) return false;
    for (std::size_t i = 0; i < row.size(); ++i) {
      const Word v = row[i] ? ~0ULL : 0ULL;
      sa.set_input(pm.a_in[i], v);
      sb.set_input(pm.b_in[i], v);
    }
    if (sequential) {
      sa.step();
      sb.step();
    } else {
      sa.settle();
      sb.settle();
    }
  }
  const bool va = (sa.value(pm.a_out[cex.output_index]) & 1ULL) != 0;
  const bool vb = (sb.value(pm.b_out[cex.output_index]) & 1ULL) != 0;
  return va != vb && va == cex.value_a && vb == cex.value_b;
}

void write_equivalence_result(std::ostream& out,
                              const EquivalenceResult& result) {
  out << "equivalence: " << to_string(result.status);
  if (result.status == EquivalenceStatus::kInterfaceMismatch) {
    out << " (" << result.reason << ")\n";
    return;
  }
  out << " after " << result.patterns << " pattern-cycle(s)"
      << (result.exhaustive ? " [exhaustive]" : "") << "\n";
  if (!result.counterexample.has_value()) return;
  const Counterexample& cex = *result.counterexample;
  out << "counterexample: output '" << cex.output << "' at cycle "
      << cex.cycle << ": " << (cex.value_a ? 1 : 0) << " vs "
      << (cex.value_b ? 1 : 0)
      << (cex.replayed ? " (replay-confirmed)" : " (replay FAILED)") << "\n";
  for (std::size_t c = 0; c < cex.pattern.size(); ++c) {
    out << "  cycle " << c << ":";
    for (std::size_t i = 0; i < cex.inputs.size(); ++i) {
      out << " " << cex.inputs[i] << "="
          << static_cast<int>(cex.pattern[c][i]);
    }
    out << "\n";
  }
}

}  // namespace diac::verify
