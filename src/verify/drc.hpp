/// Netlist design-rule checking (DRC).
///
/// `run_drc` is the collect-all counterpart of `Netlist::validate()`: it
/// scans a netlist once and returns every violation as a typed finding
/// (rule id N1..N6, severity, offending gate, deterministic message)
/// instead of throwing on the first one.  `validate()` itself delegates
/// to this engine (structural rules only) so the two cannot drift.
///
/// Severities follow the same split diac-lint uses for code: *errors*
/// are structural facts that break downstream consumers (the compiled
/// kernel, codegen, equivalence checking) — inconsistent links (N1),
/// arity violations (N2), combinational cycles (N3), and post-sanitize
/// name collisions that would merge two Verilog wires (N5) — while
/// *warnings* flag suspicious-but-simulable shapes: unreachable logic
/// (N4), names codegen must rewrite (N5), and constant-driven or
/// DFF-of-DFF degeneracies (N6).  `DrcReport::clean()` and the
/// `diac check` exit code key on errors only.
///
/// Everything here is bit-deterministic: findings are emitted in
/// ascending (gate id, rule) order from ordered traversals only, so the
/// same netlist always produces the byte-identical report.
// diac-lint: api-header
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace diac::verify {

/// DRC rule identifiers (stable, printed as "N1".."N6").
enum class DrcRule : std::uint8_t {
  kLinks = 0,       ///< N1: invalid / inconsistent fanin-fanout links
  kArity = 1,       ///< N2: fan-in count outside the GateKind's arity
  kCycle = 2,       ///< N3: combinational cycle (path through no DFF)
  kFloating = 3,    ///< N4: gate with no path to any output / unused input
  kNames = 4,       ///< N5: codegen-unsafe or post-sanitize-colliding name
  kDegenerate = 5,  ///< N6: DFF-of-DFF / constant-input degeneracies
};

/// Number of DRC rules (for per-rule tallies).
inline constexpr int kDrcRuleCount = 6;

/// Stable rule id string ("N1".."N6").
const char* to_string(DrcRule rule);

/// One-line rule summary (the `--list-rules`-style description).
const char* rule_summary(DrcRule rule);

/// Finding severity: errors break downstream consumers, warnings flag
/// suspicious-but-simulable structure.
enum class DrcSeverity : std::uint8_t { kWarning = 0, kError = 1 };

/// "warning" / "error".
const char* to_string(DrcSeverity severity);

/// One violation: rule, severity, primary gate (kNullGate for
/// netlist-level findings) and a deterministic human-readable message.
struct DrcFinding {
  DrcRule rule = DrcRule::kLinks;               ///< which rule fired
  DrcSeverity severity = DrcSeverity::kError;   ///< error or warning
  GateId gate = kNullGate;                      ///< primary offending gate
  std::string gate_name;                        ///< its name ("" if none)
  std::string message;                          ///< what is wrong, exactly
};

/// Selects which rules `run_drc` evaluates (all by default).
/// `Netlist::validate()` runs only the structural subset (N1-N3).
struct DrcOptions {
  bool links = true;       ///< N1
  bool arity = true;       ///< N2
  bool cycles = true;      ///< N3
  bool floating = true;    ///< N4
  bool names = true;       ///< N5
  bool degenerate = true;  ///< N6

  /// The structural subset validate() throws on (N1-N3 only).
  static DrcOptions structural();
};

/// The collected findings of one DRC run, in ascending (gate, rule)
/// emission order (netlist-level findings last).
struct DrcReport {
  std::vector<DrcFinding> findings;  ///< all findings, deterministic order
  std::size_t errors = 0;            ///< count of kError findings
  std::size_t warnings = 0;          ///< count of kWarning findings

  /// True when no *error*-severity finding exists (warnings allowed).
  bool clean() const { return errors == 0; }

  /// First error-severity finding, or nullptr when clean().
  const DrcFinding* first_error() const;

  /// Number of findings (any severity) for `rule`.
  std::size_t count(DrcRule rule) const;
};

/// Runs the selected DRC rules over `nl` and collects every violation.
/// Never throws on netlist content (only on allocation failure); a
/// malformed netlist yields findings, not exceptions.
DrcReport run_drc(const Netlist& nl, const DrcOptions& options = {});

/// Writes the report in the diac-lint style, one line per finding
/// (`<netlist>:<gate>: <severity>: [Nk] <message>`) plus a summary
/// line.  Byte-deterministic for a given netlist.
void write_drc_report(std::ostream& out, const DrcReport& report,
                      const std::string& netlist_name);

}  // namespace diac::verify
