#include "verify/drc.hpp"

#include <algorithm>
#include <map>
#include <ostream>

namespace diac::verify {
namespace {

// Quotes a gate for a message: 'name' (kind).
std::string describe(const Netlist& nl, GateId id) {
  const Gate& g = nl.gate(id);
  return "'" + g.name + "' (" + to_string(g.kind) + ")";
}

void emit(std::vector<DrcFinding>& out, DrcRule rule, DrcSeverity severity,
          GateId gate, const Netlist& nl, std::string message) {
  DrcFinding f;
  f.rule = rule;
  f.severity = severity;
  f.gate = gate;
  if (gate != kNullGate) f.gate_name = nl.gate(gate).name;
  f.message = std::move(message);
  out.push_back(std::move(f));
}

// N1: every fanin id in range, no OUTPUT used as a driver, and the
// fanout bookkeeping consistent with the fanin lists (the mutable
// `Gate&` accessor lets callers desynchronize them).
void check_links(const Netlist& nl, std::vector<DrcFinding>& out) {
  const std::size_t n = nl.size();
  std::vector<std::vector<GateId>> consumers(n);  // from the fanin side
  for (GateId id = 0; id < n; ++id) {
    const Gate& g = nl.gate(id);
    for (GateId f : g.fanin) {
      if (f >= n) {
        emit(out, DrcRule::kLinks, DrcSeverity::kError, id, nl,
             "gate '" + g.name + "' has out-of-range fanin id " +
                 std::to_string(f));
        continue;
      }
      consumers[f].push_back(id);
      if (nl.gate(f).kind == GateKind::kOutput) {
        emit(out, DrcRule::kLinks, DrcSeverity::kError, id, nl,
             "OUTPUT '" + nl.gate(f).name + "' drives gate '" + g.name + "'");
      }
    }
  }
  for (GateId id = 0; id < n; ++id) {
    std::vector<GateId> recorded(nl.gate(id).fanout.begin(),
                                 nl.gate(id).fanout.end());
    std::sort(recorded.begin(), recorded.end());
    std::sort(consumers[id].begin(), consumers[id].end());
    if (recorded == consumers[id]) continue;
    emit(out, DrcRule::kLinks, DrcSeverity::kError, id, nl,
         "fanout list of '" + nl.gate(id).name +
             "' is inconsistent with the fanin lists (" +
             std::to_string(recorded.size()) + " recorded, " +
             std::to_string(consumers[id].size()) + " actual references)");
  }
}

// N2: fan-in count within the GateKind's arity bounds.
void check_arity(const Netlist& nl, std::vector<DrcFinding>& out) {
  for (GateId id = 0; id < nl.size(); ++id) {
    const Gate& g = nl.gate(id);
    const auto [lo, hi] = arity(g.kind);
    const int fi = g.fanin_count();
    if (fi < lo || (hi >= 0 && fi > hi)) {
      emit(out, DrcRule::kArity, DrcSeverity::kError, id, nl,
           "gate " + describe(nl, id) + " has fan-in " + std::to_string(fi));
    }
  }
}

// N3: combinational cycles (DFF fanins are cut edges), each reported
// with its full path.  Iterative coloured DFS; every back edge yields
// one finding and the walk continues, so multiple independent cycles
// are all collected.
void check_cycles(const Netlist& nl, std::vector<DrcFinding>& out) {
  const std::size_t n = nl.size();
  enum class Mark : std::uint8_t { kWhite, kGrey, kBlack };
  std::vector<Mark> mark(n, Mark::kWhite);
  std::vector<std::pair<GateId, std::size_t>> stack;
  for (GateId root = 0; root < n; ++root) {
    if (mark[root] != Mark::kWhite) continue;
    stack.clear();
    stack.emplace_back(root, 0);
    mark[root] = Mark::kGrey;
    while (!stack.empty()) {
      auto& [id, next] = stack.back();
      const Gate& g = nl.gate(id);
      const bool traverse = g.kind != GateKind::kDff;
      if (traverse && next < g.fanin.size()) {
        const GateId child = g.fanin[next++];
        if (child >= n) continue;  // N1's finding; nothing to traverse
        if (mark[child] == Mark::kGrey) {
          // Reconstruct the cycle: child -> ... -> id -> child, reading
          // the grey stack from child's frame to the top.
          std::size_t start = 0;
          while (start < stack.size() && stack[start].first != child) ++start;
          std::string path = "combinational cycle:";
          for (std::size_t s = start; s < stack.size(); ++s) {
            path += " '" + nl.gate(stack[s].first).name + "' ->";
          }
          path += " '" + nl.gate(child).name + "'";
          emit(out, DrcRule::kCycle, DrcSeverity::kError, child, nl, path);
          continue;
        }
        if (mark[child] == Mark::kWhite) {
          mark[child] = Mark::kGrey;
          stack.emplace_back(child, 0);
        }
      } else {
        mark[id] = Mark::kBlack;
        stack.pop_back();
      }
    }
  }
}

// N4: gates with no path to any output port (reverse reachability over
// fanin edges, traversing through DFFs).
void check_floating(const Netlist& nl, std::vector<DrcFinding>& out) {
  const std::size_t n = nl.size();
  if (nl.outputs().empty()) {
    emit(out, DrcRule::kFloating, DrcSeverity::kWarning, kNullGate, nl,
         "netlist has no output ports; every gate is unobservable");
    return;
  }
  std::vector<char> reached(n, 0);
  std::vector<GateId> work(nl.outputs().begin(), nl.outputs().end());
  for (GateId id : work) reached[id] = 1;
  while (!work.empty()) {
    const GateId id = work.back();
    work.pop_back();
    for (GateId f : nl.gate(id).fanin) {
      if (f >= n || reached[f]) continue;
      reached[f] = 1;
      work.push_back(f);
    }
  }
  for (GateId id = 0; id < n; ++id) {
    if (reached[id]) continue;
    const Gate& g = nl.gate(id);
    if (g.kind == GateKind::kInput) {
      emit(out, DrcRule::kFloating, DrcSeverity::kWarning, id, nl,
           "input '" + g.name + "' reaches no output port");
    } else {
      emit(out, DrcRule::kFloating, DrcSeverity::kWarning, id, nl,
           "unreachable gate " + describe(nl, id) +
               ": no path to any output port");
    }
  }
}

// N5: names codegen cannot emit verbatim.  Characters outside
// [A-Za-z0-9_] are sanitized by the Verilog backend's vname(); that is
// a warning, but when two sanitized names collide the emission would
// merge distinct wires — an error.  Empty names are errors outright.
void check_names(const Netlist& nl, std::vector<DrcFinding>& out) {
  // Mirror of codegen's vname() sanitization (without the "w_" prefix,
  // which is collision-neutral).
  const auto sanitize = [](const std::string& raw) {
    std::string s = raw;
    for (char& c : s) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_';
      if (!ok) c = '_';
    }
    return s;
  };
  std::map<std::string, std::vector<GateId>> by_sanitized;
  for (GateId id = 0; id < nl.size(); ++id) {
    const Gate& g = nl.gate(id);
    if (g.name.empty()) {
      emit(out, DrcRule::kNames, DrcSeverity::kError, id, nl,
           "gate " + std::to_string(id) + " has an empty name");
      continue;
    }
    const std::string clean = sanitize(g.name);
    if (clean != g.name) {
      emit(out, DrcRule::kNames, DrcSeverity::kWarning, id, nl,
           "name '" + g.name + "' needs sanitization for codegen ('w_" +
               clean + "')");
    }
    by_sanitized[clean].push_back(id);
  }
  for (const auto& [clean, ids] : by_sanitized) {
    if (ids.size() < 2) continue;
    for (std::size_t i = 1; i < ids.size(); ++i) {
      emit(out, DrcRule::kNames, DrcSeverity::kError, ids[i], nl,
           "sanitized name 'w_" + clean + "' of '" + nl.gate(ids[i]).name +
               "' collides with gate '" + nl.gate(ids[0]).name + "'");
    }
  }
}

// N6: degeneracies — structurally valid shapes that are almost always
// synthesis or generator bugs.
void check_degenerate(const Netlist& nl, std::vector<DrcFinding>& out) {
  const std::size_t n = nl.size();
  const auto is_const = [&](GateId f) {
    return f < n && (nl.gate(f).kind == GateKind::kConst0 ||
                     nl.gate(f).kind == GateKind::kConst1);
  };
  for (GateId id = 0; id < n; ++id) {
    const Gate& g = nl.gate(id);
    if (g.fanin.empty()) continue;
    const bool fanins_valid = std::all_of(
        g.fanin.begin(), g.fanin.end(), [&](GateId f) { return f < n; });
    if (!fanins_valid) continue;  // N1 already fired
    const bool all_const =
        std::all_of(g.fanin.begin(), g.fanin.end(), is_const);
    switch (g.kind) {
      case GateKind::kDff: {
        const Gate& d = nl.gate(g.fanin[0]);
        if (d.kind == GateKind::kDff) {
          emit(out, DrcRule::kDegenerate, DrcSeverity::kWarning, id, nl,
               "DFF '" + g.name + "' captures DFF '" + d.name +
                   "' directly (no combinational logic between stages)");
        } else if (is_const(g.fanin[0])) {
          emit(out, DrcRule::kDegenerate, DrcSeverity::kWarning, id, nl,
               "DFF '" + g.name + "' captures constant '" + d.name + "'");
        }
        break;
      }
      case GateKind::kOutput:
        if (is_const(g.fanin[0])) {
          emit(out, DrcRule::kDegenerate, DrcSeverity::kWarning, id, nl,
               "output port '" + g.name + "' is driven by constant '" +
                   nl.gate(g.fanin[0]).name + "'");
        }
        break;
      case GateKind::kMux:
        if (all_const) {
          emit(out, DrcRule::kDegenerate, DrcSeverity::kWarning, id, nl,
               "gate " + describe(nl, id) +
                   " computes a constant (all fanins constant)");
        } else if (is_const(g.fanin[0])) {
          emit(out, DrcRule::kDegenerate, DrcSeverity::kWarning, id, nl,
               "MUX '" + g.name + "' has a constant select '" +
                   nl.gate(g.fanin[0]).name + "'");
        }
        break;
      case GateKind::kAnd:
      case GateKind::kNand:
      case GateKind::kOr:
      case GateKind::kNor:
      case GateKind::kXor:
      case GateKind::kXnor:
      case GateKind::kBuf:
      case GateKind::kNot: {
        if (all_const) {
          emit(out, DrcRule::kDegenerate, DrcSeverity::kWarning, id, nl,
               "gate " + describe(nl, id) +
                   " computes a constant (all fanins constant)");
          break;
        }
        const bool and_like =
            g.kind == GateKind::kAnd || g.kind == GateKind::kNand;
        const bool or_like =
            g.kind == GateKind::kOr || g.kind == GateKind::kNor;
        if (!and_like && !or_like) break;
        for (GateId f : g.fanin) {
          const GateKind fk = nl.gate(f).kind;
          if ((and_like && fk == GateKind::kConst0) ||
              (or_like && fk == GateKind::kConst1)) {
            emit(out, DrcRule::kDegenerate, DrcSeverity::kWarning, id, nl,
                 "gate " + describe(nl, id) +
                     " is forced constant by dominating fanin '" +
                     nl.gate(f).name + "'");
            break;
          }
        }
        break;
      }
      case GateKind::kInput:
      case GateKind::kConst0:
      case GateKind::kConst1:
        break;  // no fanins by arity; nothing degenerate to flag
    }
  }
}

}  // namespace

const char* to_string(DrcRule rule) {
  switch (rule) {
    case DrcRule::kLinks: return "N1";
    case DrcRule::kArity: return "N2";
    case DrcRule::kCycle: return "N3";
    case DrcRule::kFloating: return "N4";
    case DrcRule::kNames: return "N5";
    case DrcRule::kDegenerate: return "N6";
  }
  return "N?";
}

const char* rule_summary(DrcRule rule) {
  switch (rule) {
    case DrcRule::kLinks:
      return "fanin ids in range, no OUTPUT drivers, fanout lists "
             "consistent with fanin lists";
    case DrcRule::kArity:
      return "fan-in count within the GateKind's arity bounds";
    case DrcRule::kCycle:
      return "no combinational cycles (cycles through DFFs are fine)";
    case DrcRule::kFloating:
      return "every gate has a path to an output port";
    case DrcRule::kNames:
      return "gate names survive codegen sanitization without collisions";
    case DrcRule::kDegenerate:
      return "no DFF-of-DFF or constant-determined degeneracies";
  }
  return "";
}

const char* to_string(DrcSeverity severity) {
  return severity == DrcSeverity::kError ? "error" : "warning";
}

DrcOptions DrcOptions::structural() {
  DrcOptions o;
  o.floating = false;
  o.names = false;
  o.degenerate = false;
  return o;
}

const DrcFinding* DrcReport::first_error() const {
  for (const DrcFinding& f : findings) {
    if (f.severity == DrcSeverity::kError) return &f;
  }
  return nullptr;
}

std::size_t DrcReport::count(DrcRule rule) const {
  std::size_t n = 0;
  for (const DrcFinding& f : findings) {
    if (f.rule == rule) ++n;
  }
  return n;
}

DrcReport run_drc(const Netlist& nl, const DrcOptions& options) {
  DrcReport report;
  std::vector<DrcFinding>& out = report.findings;
  if (options.links) check_links(nl, out);
  if (options.arity) check_arity(nl, out);
  if (options.cycles) check_cycles(nl, out);
  if (options.floating) check_floating(nl, out);
  if (options.names) check_names(nl, out);
  if (options.degenerate) check_degenerate(nl, out);
  // One deterministic report order regardless of rule evaluation order:
  // ascending gate id (netlist-level findings last), then rule, then
  // message text.
  std::stable_sort(out.begin(), out.end(),
                   [](const DrcFinding& a, const DrcFinding& b) {
                     if (a.gate != b.gate) return a.gate < b.gate;
                     if (a.rule != b.rule) return a.rule < b.rule;
                     return a.message < b.message;
                   });
  for (const DrcFinding& f : out) {
    if (f.severity == DrcSeverity::kError) {
      ++report.errors;
    } else {
      ++report.warnings;
    }
  }
  return report;
}

void write_drc_report(std::ostream& out, const DrcReport& report,
                      const std::string& netlist_name) {
  for (const DrcFinding& f : report.findings) {
    out << netlist_name;
    if (f.gate != kNullGate) out << ":" << f.gate_name;
    out << ": " << to_string(f.severity) << ": [" << to_string(f.rule)
        << "] " << f.message << "\n";
  }
  out << netlist_name << ": drc: " << report.errors << " error(s), "
      << report.warnings << " warning(s)\n";
}

}  // namespace diac::verify
