#include "verify/design_check.hpp"

#include "diac/codegen.hpp"
#include "netlist/verilog_format.hpp"

namespace diac::verify {

DrcReport run_design_drc(const IntermittentDesign& design,
                         const DrcOptions& options) {
  DrcReport report = run_drc(design.tree.netlist(), options);
  if (options.degenerate) {
    // Design-level degeneracy: a commit point the replacement engine
    // inserted that persists nothing wastes a whole NVM write event.
    for (TaskId id : design.tree.nvm_points()) {
      if (design.boundary_bits(id) > 0) continue;
      DrcFinding f;
      f.rule = DrcRule::kDegenerate;
      f.severity = DrcSeverity::kWarning;
      f.gate = kNullGate;
      f.message = "NVM commit point at task '" +
                  design.tree.node(id).label + "' persists zero bits";
      report.findings.push_back(std::move(f));
      ++report.warnings;
    }
  }
  return report;
}

RoundTripResult check_codegen_roundtrip(const IntermittentDesign& design,
                                        EquivalenceOptions options) {
  RoundTripResult rt;
  rt.verilog = generate_verilog(design);
  const VerilogModule module = parse_structural_verilog_string(rt.verilog);
  rt.gates_reimported = module.netlist.size();
  rt.nvreg_instances = module.instances.size();
  // The backend renames every signal, so names cannot match; both the
  // emitter and the parser preserve port declaration order.
  options.match_ports_by_order = true;
  rt.equivalence =
      check_equivalence(design.tree.netlist(), module.netlist, options);
  return rt;
}

}  // namespace diac::verify
