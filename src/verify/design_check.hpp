/// Design-level verification: post-synthesis DRC and the codegen
/// round-trip check.
///
/// `run_design_drc` applies the full netlist DRC (rules N1-N6, see
/// drc.hpp) to a synthesized `IntermittentDesign` and adds design-level
/// degeneracy findings (an NVM commit point that persists zero bits is
/// a planning bug the netlist rules cannot see).
///
/// `check_codegen_roundtrip` closes the emission loop: it emits the
/// design's Verilog with `generate_verilog`, re-imports the text with
/// `parse_structural_verilog_string`, and proves the re-imported
/// netlist functionally equivalent to the source netlist with
/// `check_equivalence`.  Ports are matched positionally because the
/// backend renames every signal (`w_` prefix + sanitization); port
/// *order* is preserved by both the emitter and the parser.  This is
/// the differential-test harness the multi-backend emission roadmap
/// item calls for — any future backend plugs into the same check.
// diac-lint: api-header
#pragma once

#include <cstddef>
#include <string>

#include "diac/design.hpp"
#include "verify/drc.hpp"
#include "verify/equivalence.hpp"

namespace diac::verify {

/// Full DRC over `design.tree.netlist()` plus design-level findings
/// (zero-bit commit points, reported as N6 warnings with no gate).
DrcReport run_design_drc(const IntermittentDesign& design,
                         const DrcOptions& options = {});

/// Outcome of one emit -> re-import -> equivalence round trip.
struct RoundTripResult {
  std::string verilog;              ///< the emitted module text
  std::size_t gates_reimported = 0; ///< gate count of the parsed netlist
  std::size_t nvreg_instances = 0;  ///< diac_nvreg shadow cells seen
  EquivalenceResult equivalence;    ///< source vs re-imported verdict

  /// True iff the re-imported netlist is equivalent to the source.
  bool ok() const { return equivalence.equivalent(); }
};

/// Emits the design's Verilog, parses it back, and checks equivalence
/// against the source netlist (positional port matching is forced).
/// Throws only if emission or parsing itself fails — that is a codegen
/// bug, not a property to report.
RoundTripResult check_codegen_roundtrip(const IntermittentDesign& design,
                                        EquivalenceOptions options = {});

}  // namespace diac::verify
