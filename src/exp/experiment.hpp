/// The experiment engine: (design × scenario) simulation jobs fanned out
/// over an ExperimentRunner.
///
/// A SimulationJob is pure data: a pre-synthesized design (non-owning —
/// synthesis is deterministic and shared across seeds, so callers
/// synthesize once per scheme), a copyable ScenarioSpec the job
/// materializes locally, and the FSM/simulator configuration.  Each job is
/// self-contained and explicitly seeded, which is what makes fan-out
/// results bit-identical at any thread count.
#pragma once

#include <vector>

#include "diac/design.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "runtime/fsm.hpp"
#include "runtime/simulator.hpp"

namespace diac {

struct SimulationJob {
  const IntermittentDesign* design = nullptr;  // non-owning, must outlive run
  ScenarioSpec scenario;
  /// Optional pre-materialized source (non-owning, must outlive the run).
  /// HarvestSource is immutable after construction, so jobs that share a
  /// scenario (the four schemes of one seed) can share one source instead
  /// of each regenerating the same seeded trace.  When null, the job
  /// materializes `scenario` locally.
  const HarvestSource* source = nullptr;
  FsmConfig fsm;
  SimulatorOptions simulator;
};

/// Truncates the stochastic sources' precomputed-trace horizon to the
/// simulated window: the generated prefix is bit-identical (the seeded
/// generation loop just stops earlier) and the simulator never reads past
/// max_time, so this only removes construction cost.
ScenarioSpec clamp_scenario_horizon(ScenarioSpec scenario, double max_time);

/// Replayed measurements end at their last logged sample: a PiecewiseTrace
/// extrapolates its final power level forever, and simulating past the
/// measurement would score schemes on fabricated supply.  For a kTrace
/// scenario with a loaded trace this clamps max_time to the trace's end
/// (throwing when the trace has no measured duration — a single sample at
/// t=0); every other kind passes through unchanged.  run_simulation
/// applies this to each job, so all engine consumers stop in-measurement.
SimulatorOptions clamp_to_measurement(SimulatorOptions options,
                                      const ScenarioSpec& scenario);

/// Materializes the job's harvest source (unless one was supplied) and
/// runs the simulator.
RunStats run_simulation(const SimulationJob& job);

/// Fans the jobs out over the runner; results[i] corresponds to jobs[i].
std::vector<RunStats> run_simulations(ExperimentRunner& runner,
                                      const std::vector<SimulationJob>& jobs);

}  // namespace diac
