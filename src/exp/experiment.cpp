#include "exp/experiment.hpp"

#include <algorithm>
#include <stdexcept>

namespace diac {

ScenarioSpec clamp_scenario_horizon(ScenarioSpec scenario, double max_time) {
  scenario.rfid.horizon = std::min(scenario.rfid.horizon, max_time);
  scenario.solar.horizon = std::min(scenario.solar.horizon, max_time);
  return scenario;
}

SimulatorOptions clamp_to_measurement(SimulatorOptions options,
                                      const ScenarioSpec& scenario) {
  if (scenario.kind != SourceKind::kTrace || !scenario.trace) return options;
  const double end = scenario.trace->segments().back().start;
  if (end <= 0) {
    throw std::invalid_argument("trace '" + scenario.trace_path +
                                "' has no measured duration (single sample "
                                "at t=0)");
  }
  options.max_time = std::min(options.max_time, end);
  return options;
}

RunStats run_simulation(const SimulationJob& job) {
  if (job.design == nullptr) {
    throw std::invalid_argument("run_simulation: job has no design");
  }
  const SimulatorOptions simulator =
      clamp_to_measurement(job.simulator, job.scenario);
  if (job.source != nullptr) {
    SystemSimulator sim(*job.design, *job.source, job.fsm, simulator);
    return sim.run();
  }
  // The stochastic sources precompute their trace out to `horizon`, which
  // defaults to 50 000 s — a large fraction of short-job cost now that
  // the event engine made the simulation itself cheap.
  const std::unique_ptr<HarvestSource> source =
      make_source(clamp_scenario_horizon(job.scenario, simulator.max_time));
  SystemSimulator sim(*job.design, *source, job.fsm, simulator);
  return sim.run();
}

std::vector<RunStats> run_simulations(ExperimentRunner& runner,
                                      const std::vector<SimulationJob>& jobs) {
  std::vector<RunStats> results(jobs.size());
  runner.parallel_for(jobs.size(), [&](std::size_t i) {
    results[i] = run_simulation(jobs[i]);
  });
  return results;
}

}  // namespace diac
