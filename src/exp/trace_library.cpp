#include "exp/trace_library.hpp"

#include <algorithm>
#include <filesystem>
#include <stdexcept>

namespace diac {

namespace fs = std::filesystem;

std::vector<std::string> list_trace_files(const std::string& dir) {
  const fs::path root(dir);
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    throw std::runtime_error("trace library: not a directory: " + dir);
  }
  std::vector<std::string> files;
  for (const fs::directory_entry& entry : fs::directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() != ".csv") continue;
    files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TraceLibrary load_trace_library(const std::string& dir) {
  TraceLibrary library;
  for (const std::string& path : list_trace_files(dir)) {
    TraceLibrary::Entry entry;
    entry.name = fs::path(path).stem().string();
    entry.path = path;
    try {
      entry.scenario = trace_scenario(path);
    } catch (const std::exception& e) {
      // Name the file; load_trace_csv's open errors already do.
      const std::string msg = e.what();
      throw std::runtime_error(
          msg.find(path) == std::string::npos ? path + ": " + msg : msg);
    }
    library.entries.push_back(std::move(entry));
  }
  if (library.entries.empty()) {
    throw std::runtime_error("trace library: no .csv traces in " + dir);
  }
  return library;
}

}  // namespace diac
