/// ExperimentRunner: a fixed-size std::thread pool for fanning out
/// independent simulation jobs.
///
/// Determinism contract: parallel_for(n, fn) invokes fn(i) exactly once
/// for every i in [0, n).  Jobs must be independent and write only their
/// own result slot; under that contract the assembled results are
/// bit-identical at any thread count — the pool only changes *when* each
/// job runs, never *what* it computes (all randomness in this codebase is
/// explicitly seeded per job, nothing is drawn from shared streams).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace diac {

class ExperimentRunner {
 public:
  /// jobs == 0 picks std::thread::hardware_concurrency(); jobs == 1 runs
  /// everything inline on the caller (no threads are spawned).
  explicit ExperimentRunner(int jobs = 0);
  ~ExperimentRunner();
  ExperimentRunner(const ExperimentRunner&) = delete;
  ExperimentRunner& operator=(const ExperimentRunner&) = delete;

  int jobs() const { return jobs_; }

  /// Runs fn(0..n-1) across the pool (the caller participates); returns
  /// once every invocation completed.  The first exception a job throws is
  /// rethrown on the caller after the batch drains.  Not reentrant: fn must
  /// not call parallel_for on the same runner.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker();
  /// Claims and runs batch indices until the cursor is exhausted.
  void drain(std::unique_lock<std::mutex>& lock);

  int jobs_ = 1;
  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable wake_;  // workers: a batch arrived / shutdown
  std::condition_variable done_;  // caller: the batch drained
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t next_ = 0;     // next unclaimed index
  std::size_t total_ = 0;    // batch size
  std::size_t pending_ = 0;  // jobs not yet finished
  bool stop_ = false;
  std::exception_ptr error_;
};

}  // namespace diac
