#include "exp/job_key.hpp"

#include <stdexcept>

#include "util/exactfmt.hpp"
#include "util/hash128.hpp"

namespace diac {

namespace {

void push_double(std::vector<std::string>& key, double v) {
  key.push_back(exact_encode_double(v));
}

void push_int(std::vector<std::string>& key, long long v) {
  key.push_back(std::to_string(v));
}

}  // namespace

void append_key(std::vector<std::string>& key,
                const SynthesisOptions& options) {
  // Adding a SynthesisOptions field? Extend the tokens below, then
  // update this size (aliasing two recipes to one entry is the failure
  // mode this assert exists to prevent).
  static_assert(sizeof(SynthesisOptions) == 64,
                "SynthesisOptions changed: extend append_key");
  key.push_back("synth");
  push_int(key, static_cast<int>(options.policy));
  push_int(key, static_cast<int>(options.grouping));
  push_int(key, static_cast<int>(options.technology));
  push_double(key, options.e_max);
  push_double(key, options.instance_rho);
  push_double(key, options.upper_fraction);
  push_double(key, options.lower_ratio);
  push_double(key, options.budget_fraction);
  push_double(key, options.system_factor);
}

void append_key(std::vector<std::string>& key, const FsmConfig& fsm) {
  static_assert(sizeof(FsmConfig) == 152,
                "FsmConfig changed: extend append_key");
  key.push_back("fsm");
  push_double(key, fsm.sense_energy);
  push_double(key, fsm.compute_energy);
  push_double(key, fsm.transmit_energy);
  push_double(key, fsm.op_jitter);
  push_double(key, fsm.sense_power);
  push_double(key, fsm.active_power);
  push_double(key, fsm.transmit_power);
  push_double(key, fsm.sleep_power);
  push_double(key, fsm.sleep_power_backed_up);
  push_double(key, fsm.transmit_packet_energy);
  push_double(key, fsm.dispatch_energy);
  push_double(key, fsm.dispatch_time);
  push_double(key, fsm.sense_interval);
  push_int(key, fsm.adaptive_sensing ? 1 : 0);
  push_double(key, fsm.adaptive_slowdown);
  push_double(key, fsm.off_floor);
  push_double(key, fsm.backup_margin);
  push_double(key, fsm.safe_margin);
  push_double(key, fsm.entry_margin);
}

void append_key(std::vector<std::string>& key,
                const SimulatorOptions& options) {
  static_assert(sizeof(SimulatorOptions) == 112,
                "SimulatorOptions changed: extend append_key");
  key.push_back("sim");
  push_double(key, options.capacitance);
  push_double(key, options.voltage);
  push_double(key, options.initial_energy_fraction);
  push_double(key, options.charge_efficiency);
  push_double(key, options.storage_leakage);
  push_int(key, options.target_instances);
  push_double(key, options.max_time);
  push_int(key, static_cast<int>(options.mode));
  push_double(key, options.dt);
  push_int(key, static_cast<int>(options.continuous_advance));
  push_double(key, options.continuous_step);
  push_int(key, static_cast<long long>(options.seed));
  // record_trace / trace_interval are side-channel sampling knobs — they
  // never reach RunStats, so two runs differing only there share one
  // entry by design.
}

void append_key(std::vector<std::string>& key, const ScenarioSpec& scenario) {
  static_assert(sizeof(ScenarioSpec) == 192,
                "ScenarioSpec changed: extend append_key");
  static_assert(sizeof(ScenarioSpec::Square) == 24,
                "ScenarioSpec::Square changed: extend append_key");
  static_assert(sizeof(RfidBurstSource::Options) == 40,
                "RfidBurstSource::Options changed: extend append_key");
  static_assert(sizeof(SolarSource::Options) == 56,
                "SolarSource::Options changed: extend append_key");
  key.push_back("scenario");
  key.push_back(to_string(scenario.kind));
  if (is_seeded(scenario.kind)) {
    push_int(key, static_cast<long long>(scenario.seed));
  }
  switch (scenario.kind) {
    case SourceKind::kConstant:
      push_double(key, scenario.constant_power);
      break;
    case SourceKind::kSquare:
      push_double(key, scenario.square.on_power);
      push_double(key, scenario.square.period);
      push_double(key, scenario.square.duty);
      break;
    case SourceKind::kRfid:
      push_double(key, scenario.rfid.mean_on);
      push_double(key, scenario.rfid.mean_off);
      push_double(key, scenario.rfid.min_power);
      push_double(key, scenario.rfid.max_power);
      push_double(key, scenario.rfid.horizon);
      break;
    case SourceKind::kSolar:
      push_double(key, scenario.solar.peak_power);
      push_double(key, scenario.solar.day_length);
      push_double(key, scenario.solar.night_length);
      push_double(key, scenario.solar.cloud_rate);
      push_double(key, scenario.solar.cloud_mean_duration);
      push_double(key, scenario.solar.cloud_attenuation);
      push_double(key, scenario.solar.horizon);
      break;
    case SourceKind::kFig4:
      break;  // fully scripted: the kind token is the whole description
    case SourceKind::kTrace: {
      if (!scenario.trace) {
        throw std::invalid_argument(
            "job key: kTrace scenario without a loaded trace");
      }
      // Content digest, not path: the replayed samples are what the
      // result depends on.
      Fnv128 h;
      for (const PiecewiseTrace::Segment& s : scenario.trace->segments()) {
        h.update_token(exact_encode_double(s.start));
        h.update_token(exact_encode_double(s.power));
      }
      key.push_back(hash_hex(h.digest()));
      break;
    }
  }
}

}  // namespace diac
