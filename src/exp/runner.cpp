#include "exp/runner.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/obs.hpp"

namespace diac {

ExperimentRunner::ExperimentRunner(int jobs) {
  if (jobs < 0) {
    throw std::invalid_argument("ExperimentRunner: jobs must be >= 0");
  }
  jobs_ = jobs > 0
              ? jobs
              : std::max(1u, std::thread::hardware_concurrency());
  threads_.reserve(static_cast<std::size_t>(jobs_ - 1));
  // The caller is worker #0; spawn the remaining jobs_ - 1.
  for (int i = 1; i < jobs_; ++i) {
    threads_.emplace_back(&ExperimentRunner::worker, this);
  }
}

ExperimentRunner::~ExperimentRunner() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ExperimentRunner::drain(std::unique_lock<std::mutex>& lock) {
  std::uint64_t ran = 0;
  while (next_ < total_) {
    const std::size_t i = next_++;
    const auto* fn = fn_;
    lock.unlock();
    ++ran;
    try {
      DIAC_TRACE_SPAN_ARG("job", "runner", "index", i);
      (*fn)(i);
    } catch (...) {
      lock.lock();
      if (!error_) error_ = std::current_exception();
      if (--pending_ == 0) done_.notify_all();
      continue;
    }
    lock.lock();
    if (--pending_ == 0) done_.notify_all();
  }
  if (ran > 0) {
    DIAC_OBS_COUNT("runner.jobs", ran);
    DIAC_OBS_HISTOGRAM("runner.jobs_per_thread", ran);
  }
}

void ExperimentRunner::worker() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    wake_.wait(lock, [&] { return stop_ || next_ < total_; });
    if (stop_) return;
    drain(lock);
  }
}

void ExperimentRunner::parallel_for(
    std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  DIAC_TRACE_SPAN_ARG("parallel_for", "runner", "jobs", n);
  DIAC_OBS_COUNT("runner.batches", 1);
  DIAC_OBS_GAUGE_SET("runner.threads", jobs_);
  std::unique_lock<std::mutex> lock(mutex_);
  if (total_ != next_ || pending_ != 0) {
    throw std::logic_error("ExperimentRunner::parallel_for is not reentrant");
  }
  fn_ = &fn;
  next_ = 0;
  total_ = n;
  pending_ = n;
  error_ = nullptr;
  if (threads_.empty()) {
    drain(lock);
  } else {
    wake_.notify_all();
    drain(lock);  // the caller participates
    done_.wait(lock, [&] { return pending_ == 0; });
  }
  total_ = next_ = 0;
  fn_ = nullptr;
  if (error_) {
    std::exception_ptr err = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

}  // namespace diac
