/// ScenarioSpec: a value-type description of a harvest scenario — which
/// ambient source, with which parameters, under which seed.  Where the
/// power layer exposes *live* HarvestSource objects, the experiment engine
/// needs something copyable that a job can carry across threads and
/// materialize locally; this is that description.
///
/// Scenarios are nameable ("rfid", "solar", "fig4", ...) so the CLI and
/// the benches can select them with a single --source flag, and seedable
/// so multi-seed sweeps derive one scenario per run from a base spec.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "power/harvester.hpp"

namespace diac {

enum class SourceKind : std::uint8_t {
  kConstant,  // steady supply (bring-up, ample/scarce sweeps)
  kSquare,    // periodic burst/gap
  kRfid,      // seeded RFID-style bursts (the paper's supply)
  kSolar,     // diurnal half-sine + seeded cloud events
  kFig4,      // the scripted six-region Fig. 4 trace
  kTrace,     // a measured trace replayed from a CSV file
};

/// CLI spelling: "constant", "square", "rfid", "solar", "fig4", "trace".
const char* to_string(SourceKind kind);

/// True for the kinds whose trace varies with ScenarioSpec::seed (rfid,
/// solar).  Multi-seed sweeps over a non-seeded kind would simulate the
/// identical trace N times.
bool is_seeded(SourceKind kind);

/// A value-semantic description of one harvest environment: the source
/// kind, its parameters, and the seed that makes stochastic kinds
/// reproducible.  Specs are cheap to copy and hash-free, so sweep jobs can
/// carry their scenario by value.
struct ScenarioSpec {
  SourceKind kind = SourceKind::kRfid;
  std::uint64_t seed = 0xEA57;  // used by the stochastic sources

  /// Parameters of the non-seeded kinds.
  double constant_power = 5.0e-3;  // W
  struct Square {
    double on_power = 8.0e-3;  // W
    double period = 25.0;      // s
    double duty = 0.2;
  };
  Square square;

  /// Parameters of the seeded kinds.
  RfidBurstSource::Options rfid;
  SolarSource::Options solar;

  /// Parameters of kTrace.  `trace` is the replayed trace, loaded from
  /// disk exactly once and shared read-only by every job that copies this
  /// spec (HarvestSource is immutable after construction, so pool threads
  /// can sample one instance concurrently without re-parsing the CSV).
  /// Always set for kTrace specs — build them with trace_scenario() or
  /// scenario_from_name("trace:<path>"), which load eagerly.
  /// `trace_path` records where it came from, for reporting.
  std::string trace_path;
  std::shared_ptr<const PiecewiseTrace> trace;

  ScenarioSpec with_seed(std::uint64_t s) const {
    ScenarioSpec copy = *this;
    copy.seed = s;
    return copy;
  }
};

/// Parses a --source style name (constant|square|rfid|solar|fig4, or
/// trace:<path> — which eagerly loads the CSV at <path>) into a
/// default-parameter spec; throws std::invalid_argument on unknown names.
ScenarioSpec scenario_from_name(const std::string& name);

/// Builds a kTrace spec around an already-loaded trace, or loads `path`
/// (once) and wraps it.
ScenarioSpec trace_scenario(std::string path,
                            std::shared_ptr<const PiecewiseTrace> trace);
/// Convenience overload: loads `path` itself (one read, shared thereafter).
ScenarioSpec trace_scenario(const std::string& path);

/// Materializes the harvest source a spec describes.
std::unique_ptr<HarvestSource> make_source(const ScenarioSpec& spec);

/// Canonical per-run seed derivation for multi-seed sweeps: run `run` of a
/// sweep based at `base` simulates scenario.with_seed(derive_seed(base,
/// run)).  Golden-ratio stride — kept identical to the historical
/// evaluate_monte_carlo derivation so sweep statistics survive the move to
/// the experiment engine.
std::uint64_t derive_seed(std::uint64_t base, int run);

}  // namespace diac
