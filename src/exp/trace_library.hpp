/// Trace libraries: a directory of measured-trace CSVs turned into a list
/// of replayable scenarios.
///
/// A deployment campaign typically leaves behind a folder of supply logs —
/// one CSV per node or per day.  This unit enumerates such a folder
/// (sorted, so job order and therefore sweep results are deterministic)
/// and parses every file exactly once into a shared, immutable
/// PiecewiseTrace; the resulting ScenarioSpecs fan out over the
/// ExperimentRunner with all pool threads sampling the same in-memory
/// traces — no per-job re-read or re-parse.
#pragma once

#include <string>
#include <vector>

#include "exp/scenario.hpp"

namespace diac {

struct TraceLibrary {
  struct Entry {
    std::string name;       // file stem, used as the result label
    std::string path;       // full path the trace was loaded from
    ScenarioSpec scenario;  // kTrace spec holding the pre-loaded trace
  };
  std::vector<Entry> entries;
};

/// Lists the *.csv files directly inside `dir`, sorted by path.  Throws
/// std::runtime_error when `dir` is not a directory.
std::vector<std::string> list_trace_files(const std::string& dir);

/// Loads every *.csv in `dir` (each file read and parsed exactly once)
/// into kTrace scenarios, sorted by path.  Parse errors are rethrown with
/// the offending file's path prepended; an empty library throws.
TraceLibrary load_trace_library(const std::string& dir);

}  // namespace diac
