/// Canonical cache-key token builders for the option structs a
/// simulation job is a pure function of.
///
/// The content-addressed result cache (src/serve/) keys an entry by the
/// digest of a token sequence describing everything that can influence
/// the job's RunStats: the circuit fingerprint, the synthesis recipe,
/// the runtime (FSM) knobs, the simulator configuration and the harvest
/// scenario.  These appenders emit that sequence one struct at a time,
/// in declaration order, with doubles encoded exactly (hex-float) so a
/// key is a pure function of the option *values* — never of locale,
/// formatting precision or pointer identity.
///
/// Maintenance contract: each appender's implementation static_asserts
/// the sizeof of the struct it serializes, so adding a field without
/// extending the key (which would silently alias two different sweeps
/// to one cache entry) breaks the build instead.
#pragma once

#include <string>
#include <vector>

#include "diac/synthesizer.hpp"
#include "exp/scenario.hpp"
#include "runtime/fsm.hpp"
#include "runtime/simulator.hpp"

namespace diac {

/// Appends the synthesis axes (policy, grouping, technology, storage and
/// budget parameters) as key tokens.
void append_key(std::vector<std::string>& key, const SynthesisOptions& options);

/// Appends every FSM knob (operation energies/powers, margins, adaptive
/// sensing) as key tokens.
void append_key(std::vector<std::string>& key, const FsmConfig& fsm);

/// Appends the simulator configuration (storage, workload, mode, jitter
/// seed) as key tokens.
void append_key(std::vector<std::string>& key, const SimulatorOptions& options);

/// Appends the harvest scenario: the source kind plus only the
/// parameters that kind actually reads (so changing an inactive kind's
/// defaults cannot invalidate entries), the seed only for seeded kinds,
/// and — for replayed measurements — a digest of the trace *content*
/// rather than its path (the same measurement moved on disk still hits).
void append_key(std::vector<std::string>& key, const ScenarioSpec& scenario);

}  // namespace diac
