#include "exp/scenario.hpp"

#include <stdexcept>
#include <utility>

#include "power/trace_io.hpp"

namespace diac {

namespace {

// Adapts a shared, already-loaded trace to make_source's owning return
// type: the wrapper is owned per call, the trace itself is not re-read.
class SharedTraceSource final : public HarvestSource {
 public:
  explicit SharedTraceSource(std::shared_ptr<const PiecewiseTrace> trace)
      : trace_(std::move(trace)) {}
  double power_at(double t) const override { return trace_->power_at(t); }
  double next_change(double t) const override {
    return trace_->next_change(t);
  }

 private:
  std::shared_ptr<const PiecewiseTrace> trace_;
};

}  // namespace

const char* to_string(SourceKind kind) {
  switch (kind) {
    case SourceKind::kConstant: return "constant";
    case SourceKind::kSquare: return "square";
    case SourceKind::kRfid: return "rfid";
    case SourceKind::kSolar: return "solar";
    case SourceKind::kFig4: return "fig4";
    case SourceKind::kTrace: return "trace";
  }
  return "?";
}

bool is_seeded(SourceKind kind) {
  return kind == SourceKind::kRfid || kind == SourceKind::kSolar;
}

ScenarioSpec scenario_from_name(const std::string& name) {
  if (name.rfind("trace:", 0) == 0) {
    const std::string path = name.substr(6);
    if (path.empty()) {
      throw std::invalid_argument(
          "trace source needs a file: trace:<path.csv>");
    }
    return trace_scenario(path);
  }
  ScenarioSpec spec;
  if (name == "constant") {
    spec.kind = SourceKind::kConstant;
  } else if (name == "square") {
    spec.kind = SourceKind::kSquare;
  } else if (name == "rfid") {
    spec.kind = SourceKind::kRfid;
  } else if (name == "solar") {
    spec.kind = SourceKind::kSolar;
  } else if (name == "fig4") {
    spec.kind = SourceKind::kFig4;
  } else {
    throw std::invalid_argument(
        "unknown source '" + name +
        "' (expected constant|square|rfid|solar|fig4|trace:<path>)");
  }
  return spec;
}

ScenarioSpec trace_scenario(std::string path,
                            std::shared_ptr<const PiecewiseTrace> trace) {
  if (!trace) {
    throw std::invalid_argument("trace_scenario: null trace");
  }
  ScenarioSpec spec;
  spec.kind = SourceKind::kTrace;
  spec.trace_path = std::move(path);
  spec.trace = std::move(trace);
  return spec;
}

ScenarioSpec trace_scenario(const std::string& path) {
  return trace_scenario(
      path, std::make_shared<const PiecewiseTrace>(load_trace_csv(path)));
}

std::unique_ptr<HarvestSource> make_source(const ScenarioSpec& spec) {
  switch (spec.kind) {
    case SourceKind::kConstant:
      return std::make_unique<ConstantSource>(spec.constant_power);
    case SourceKind::kSquare:
      return std::make_unique<SquareWaveSource>(
          spec.square.on_power, spec.square.period, spec.square.duty);
    case SourceKind::kRfid:
      return std::make_unique<RfidBurstSource>(spec.seed, spec.rfid);
    case SourceKind::kSolar:
      return std::make_unique<SolarSource>(spec.seed, spec.solar);
    case SourceKind::kFig4:
      return std::make_unique<PiecewiseTrace>(fig4_trace());
    case SourceKind::kTrace:
      // kTrace specs always carry the loaded trace (trace_scenario and
      // scenario_from_name load eagerly); a path-only spec would dodge
      // the read-once contract and clamp_to_measurement.
      if (!spec.trace) {
        throw std::invalid_argument(
            "make_source: trace scenario has no loaded trace (build it "
            "with trace_scenario() or scenario_from_name(\"trace:<path>\"))");
      }
      return std::make_unique<SharedTraceSource>(spec.trace);
  }
  throw std::invalid_argument("make_source: invalid scenario kind");
}

std::uint64_t derive_seed(std::uint64_t base, int run) {
  // The multiply wraps in 32 bits — that is what the pre-engine
  // evaluate_monte_carlo computed (unsigned-int arithmetic), and changing
  // it would silently shift every multi-run sweep statistic.
  const std::uint32_t stride =
      0x9E3779B9u * static_cast<std::uint32_t>(run + 1);
  return base + stride;
}

}  // namespace diac
