#include "exp/scenario.hpp"

#include <stdexcept>

namespace diac {

const char* to_string(SourceKind kind) {
  switch (kind) {
    case SourceKind::kConstant: return "constant";
    case SourceKind::kSquare: return "square";
    case SourceKind::kRfid: return "rfid";
    case SourceKind::kSolar: return "solar";
    case SourceKind::kFig4: return "fig4";
  }
  return "?";
}

bool is_seeded(SourceKind kind) {
  return kind == SourceKind::kRfid || kind == SourceKind::kSolar;
}

ScenarioSpec scenario_from_name(const std::string& name) {
  ScenarioSpec spec;
  if (name == "constant") {
    spec.kind = SourceKind::kConstant;
  } else if (name == "square") {
    spec.kind = SourceKind::kSquare;
  } else if (name == "rfid") {
    spec.kind = SourceKind::kRfid;
  } else if (name == "solar") {
    spec.kind = SourceKind::kSolar;
  } else if (name == "fig4") {
    spec.kind = SourceKind::kFig4;
  } else {
    throw std::invalid_argument(
        "unknown source '" + name +
        "' (expected constant|square|rfid|solar|fig4)");
  }
  return spec;
}

std::unique_ptr<HarvestSource> make_source(const ScenarioSpec& spec) {
  switch (spec.kind) {
    case SourceKind::kConstant:
      return std::make_unique<ConstantSource>(spec.constant_power);
    case SourceKind::kSquare:
      return std::make_unique<SquareWaveSource>(
          spec.square.on_power, spec.square.period, spec.square.duty);
    case SourceKind::kRfid:
      return std::make_unique<RfidBurstSource>(spec.seed, spec.rfid);
    case SourceKind::kSolar:
      return std::make_unique<SolarSource>(spec.seed, spec.solar);
    case SourceKind::kFig4:
      return std::make_unique<PiecewiseTrace>(fig4_trace());
  }
  throw std::invalid_argument("make_source: invalid scenario kind");
}

std::uint64_t derive_seed(std::uint64_t base, int run) {
  // The multiply wraps in 32 bits — that is what the pre-engine
  // evaluate_monte_carlo computed (unsigned-int arithmetic), and changing
  // it would silently shift every multi-run sweep statistic.
  const std::uint32_t stride =
      0x9E3779B9u * static_cast<std::uint32_t>(run + 1);
  return base + stride;
}

}  // namespace diac
