// Netlist cleanup transforms.
//
// Circuits imported from external flows (BLIF/bench files) often carry
// dead logic, constant subtrees, and buffer chains.  These transforms
// normalize them before synthesis.  Each transform is functionality-
// preserving (validated by the logic-equivalence tests) and returns a
// *new* netlist — gate ids are not stable across transforms.
#pragma once

#include "netlist/netlist.hpp"

namespace diac {

struct TransformStats {
  std::size_t removed_dead = 0;      // unobservable gates swept
  std::size_t folded_constants = 0;  // gates replaced by constants
  std::size_t elided_buffers = 0;    // BUF gates bypassed
};

// Removes every logic gate that cannot reach a primary output or a DFF
// (dead logic).  Ports are always kept.
Netlist sweep_dead_gates(const Netlist& nl, TransformStats* stats = nullptr);

// Propagates constants to a fixpoint: every gate whose value is fully
// determined by CONST0/CONST1 fanins (including dominated cases like
// AND(x, 0) -> 0 and MUX with equal constant arms) is replaced by a
// constant.  DFFs are never folded (their initial state is runtime
// state).  Does not sweep the dead gates it strands — compose with
// sweep_dead_gates.
Netlist propagate_constants(const Netlist& nl, TransformStats* stats = nullptr);

// Bypasses every BUF gate: consumers (including OUTPUT ports) read the
// buffer's driver directly.
Netlist elide_buffers(const Netlist& nl, TransformStats* stats = nullptr);

// The standard pipeline: constants -> buffers -> dead sweep.
Netlist cleanup(const Netlist& nl, TransformStats* stats = nullptr);

}  // namespace diac
