#include "netlist/bench_format.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace diac {

namespace {

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return s;
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return {};
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

[[noreturn]] void fail(int line, const std::string& what) {
  throw std::runtime_error("bench parse error at line " + std::to_string(line) +
                           ": " + what);
}

GateKind function_kind(const std::string& fn, int line) {
  const std::string f = upper(fn);
  if (f == "BUF" || f == "BUFF") return GateKind::kBuf;
  if (f == "NOT" || f == "INV") return GateKind::kNot;
  if (f == "AND") return GateKind::kAnd;
  if (f == "NAND") return GateKind::kNand;
  if (f == "OR") return GateKind::kOr;
  if (f == "NOR") return GateKind::kNor;
  if (f == "XOR") return GateKind::kXor;
  if (f == "XNOR") return GateKind::kXnor;
  if (f == "MUX") return GateKind::kMux;
  if (f == "DFF") return GateKind::kDff;
  if (f == "CONST0" || f == "GND") return GateKind::kConst0;
  if (f == "CONST1" || f == "VDD") return GateKind::kConst1;
  fail(line, "unknown function '" + fn + "'");
}

struct PendingGate {
  std::string name;
  GateKind kind;
  std::vector<std::string> operands;
  int line;
};

}  // namespace

Netlist parse_bench(std::istream& in, const std::string& name) {
  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
  std::vector<PendingGate> defs;

  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string line = raw;
    if (auto hash = line.find('#'); hash != std::string::npos) line.resize(hash);
    line = trim(line);
    if (line.empty()) continue;

    const std::string u = upper(line);
    auto parse_port = [&](std::size_t keyword_len) {
      const auto open = line.find('(', keyword_len);
      const auto close = line.rfind(')');
      if (open == std::string::npos || close == std::string::npos || close <= open) {
        fail(line_no, "malformed port declaration");
      }
      return trim(line.substr(open + 1, close - open - 1));
    };

    if (u.rfind("INPUT", 0) == 0 && line.find('=') == std::string::npos) {
      input_names.push_back(parse_port(5));
      continue;
    }
    if (u.rfind("OUTPUT", 0) == 0 && line.find('=') == std::string::npos) {
      output_names.push_back(parse_port(6));
      continue;
    }

    const auto eq = line.find('=');
    if (eq == std::string::npos) fail(line_no, "expected '=' in '" + raw + "'");
    const std::string lhs = trim(line.substr(0, eq));
    if (lhs.empty()) fail(line_no, "empty signal name");
    const std::string rhs = trim(line.substr(eq + 1));
    const auto open = rhs.find('(');
    const auto close = rhs.rfind(')');
    if (open == std::string::npos || close == std::string::npos || close < open) {
      fail(line_no, "malformed function application '" + rhs + "'");
    }
    PendingGate pg;
    pg.name = lhs;
    pg.kind = function_kind(trim(rhs.substr(0, open)), line_no);
    pg.line = line_no;
    std::string ops = rhs.substr(open + 1, close - open - 1);
    std::stringstream ss(ops);
    std::string op;
    while (std::getline(ss, op, ',')) {
      op = trim(op);
      if (!op.empty()) pg.operands.push_back(op);
    }
    defs.push_back(std::move(pg));
  }

  Netlist nl(name);
  // Signal name -> driver gate.  OUTPUT() ports become kOutput gates named
  // "<signal>$out" so the signal name itself stays bound to the driver.
  for (const auto& in_name : input_names) nl.add(GateKind::kInput, in_name);
  for (const auto& def : defs) {
    if (nl.contains(def.name)) fail(def.line, "duplicate definition of '" + def.name + "'");
    nl.add(def.kind, def.name);
  }
  // Resolve operands.
  for (const auto& def : defs) {
    std::vector<GateId> fanin;
    fanin.reserve(def.operands.size());
    for (const auto& op : def.operands) {
      const GateId src = nl.find(op);
      if (src == kNullGate) fail(def.line, "undefined signal '" + op + "'");
      fanin.push_back(src);
    }
    const auto [lo, hi] = arity(def.kind);
    const int n = static_cast<int>(fanin.size());
    if (n < lo || (hi >= 0 && n > hi)) {
      fail(def.line, "wrong operand count for '" + def.name + "'");
    }
    nl.set_fanin(nl.find(def.name), std::move(fanin));
  }
  for (const auto& out_name : output_names) {
    const GateId src = nl.find(out_name);
    if (src == kNullGate) {
      throw std::runtime_error("bench parse error: OUTPUT(" + out_name +
                               ") has no driver");
    }
    nl.add(GateKind::kOutput, out_name + "$out", {src});
  }
  nl.validate();
  return nl;
}

Netlist parse_bench_string(const std::string& text, const std::string& name) {
  std::istringstream is(text);
  return parse_bench(is, name);
}

Netlist parse_bench_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open bench file: " + path);
  std::string name = path;
  if (auto slash = name.find_last_of('/'); slash != std::string::npos) {
    name = name.substr(slash + 1);
  }
  if (auto dot = name.find_last_of('.'); dot != std::string::npos) {
    name = name.substr(0, dot);
  }
  return parse_bench(f, name);
}

void write_bench(std::ostream& out, const Netlist& nl) {
  out << "# " << nl.name() << " — written by diac\n";
  for (GateId id : nl.inputs()) out << "INPUT(" << nl.gate(id).name << ")\n";
  for (GateId id : nl.outputs()) {
    const Gate& g = nl.gate(id);
    // Strip the "$out" suffix the parser appends so files round-trip.
    std::string sig = nl.gate(g.fanin.at(0)).name;
    out << "OUTPUT(" << sig << ")\n";
  }
  out << '\n';
  for (GateId id : nl.all_ids()) {
    const Gate& g = nl.gate(id);
    if (g.kind == GateKind::kInput || g.kind == GateKind::kOutput) continue;
    out << g.name << " = ";
    switch (g.kind) {
      case GateKind::kConst0: out << "CONST0()"; break;
      case GateKind::kConst1: out << "CONST1()"; break;
      default: {
        out << to_string(g.kind) << '(';
        for (std::size_t i = 0; i < g.fanin.size(); ++i) {
          if (i) out << ", ";
          out << nl.gate(g.fanin[i]).name;
        }
        out << ')';
      }
    }
    out << '\n';
  }
}

std::string to_bench_string(const Netlist& nl) {
  std::ostringstream os;
  write_bench(os, nl);
  return os.str();
}

}  // namespace diac
