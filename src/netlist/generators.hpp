// Deterministic structural circuit generators.
//
// The paper evaluates on ISCAS-89 / ITC-99 / MCNC circuits.  Those netlist
// files are not redistributable here, so each benchmark is synthesized from
// a structural *kernel* matching its function class (array multiplier, PLD
// AND-OR planes, FSM next-state logic, majority voters, cipher rounds,
// datapaths, bus decoders) and then grown with class-flavoured random logic
// to the exact gate count the paper's Fig. 5 header row reports.  All
// generators are deterministic in (parameters, seed).
//
// Every generated circuit is validated (acyclic, correct arities) and fully
// observable: grow-phase gates are XOR-reduced into an extra output, so the
// logic simulator's output fingerprint witnesses every gate.
#pragma once

#include <cstdint>
#include <string>

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace diac::gen {

// Mix of gate kinds used when growing a circuit; weights need not sum to 1.
struct GateMix {
  double nand_w = 4, nor_w = 2, and_w = 2, or_w = 2, xor_w = 1, xnor_w = 1,
         not_w = 1, mux_w = 0.5, dff_w = 0.5;
};

// Class-flavoured mixes.
GateMix mix_generic();
GateMix mix_arithmetic();  // XOR/AND heavy (adders, multipliers)
GateMix mix_control();     // NAND/NOR/MUX heavy, more DFFs
GateMix mix_cipher();      // XOR dominated
GateMix mix_datapath();    // MUX heavy

// Grows `nl` with random logic until `nl.logic_gate_count() == target`,
// then XOR-reduces all dangling signals into one extra OUTPUT.  Throws
// std::invalid_argument if the netlist already exceeds the target (the
// closing XOR tree is budgeted in).  No-op when the netlist already has
// exactly `target` logic gates and nothing dangling.
void grow_to(Netlist& nl, std::size_t target, SplitMix64& rng,
             const GateMix& mix = mix_generic());

// --- kernels ----------------------------------------------------------------
// Each returns a small validated netlist; pass to grow_to for exact sizing.

// Layered random logic (class "Logic").
Netlist random_logic(const std::string& name, int inputs, int outputs,
                     std::size_t target, std::uint64_t seed);

// Unsigned array multiplier, bits x bits (classes "4-bit Multiplier",
// "Fractional Multiplier").  Functionally a real multiplier.
Netlist array_multiplier(const std::string& name, int bits);

// Programmable-logic-device style two-level AND/OR planes (class "PLD").
Netlist pld(const std::string& name, int inputs, int product_terms,
            int outputs, std::uint64_t seed);

// Moore FSM: state register + random next-state/output logic (classes
// "TLC", "BCD FSM", "Guess a sequence", "I/F to sensor").
Netlist fsm_circuit(const std::string& name, int state_bits, int input_bits,
                    int output_bits, std::uint64_t seed);

// Majority voter over `voters` inputs, tree-structured (class "Voting
// System").  voters must be odd and >= 3.
Netlist majority_voter(const std::string& name, int voters);

// Serial-to-serial converter: shift-in register, recode logic, shift-out
// register (class "S-to-S Converter").
Netlist serial_converter(const std::string& name, int width,
                         std::uint64_t seed);

// Feistel-flavoured XOR cipher rounds over a `width`-bit block (classes
// "Key Encryption", "Encryption Circuit", "Scramble string").
Netlist xor_cipher(const std::string& name, int width, int rounds,
                   std::uint64_t seed);

// Min/max comparator tree over `count` words of `width` bits (class
// "Elaborate CM" — ITC-99 b04 computes min and max).
Netlist comparator_tree(const std::string& name, int width, int count);

// Ripple-carry-ALU datapath with operand registers and result mux (class
// "Viper processor").
Netlist alu_datapath(const std::string& name, int width, std::uint64_t seed);

// Address decoder + grant logic + data mux for `masters` bus masters
// (classes "Bus Interface", "Bus Controller").
Netlist bus_controller(const std::string& name, int masters, int width,
                       std::uint64_t seed);

// --- structural helpers (exposed for reuse/tests) ---------------------------

// XOR-reduces `signals` into a single net; returns the root (or the single
// element when signals.size() == 1).  signals must not be empty.
GateId xor_reduce(Netlist& nl, std::vector<GateId> signals);

// Full adder; returns {sum, carry}.
std::pair<GateId, GateId> full_adder(Netlist& nl, GateId a, GateId b, GateId cin);

}  // namespace diac::gen
