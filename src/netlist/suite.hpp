// The 24-circuit evaluation suite.
//
// Gate counts and function classes follow the header row of the paper's
// Fig. 5 exactly (# Gates: 10, 119, 161, 164, 218, 193, 289, 446, 529, 657,
// 9772, 19253 | 22, 861, 129, 155, 437, 904, 266, 4444 | 2383, 5763, 744,
// 490).  The OCR'd figure makes the exact suite-boundary positions
// ambiguous; we assign circuits to suites by their function class
// (e.g. "Viper processor" is ITC-99 b14, "Voting System" is b10), which is
// unambiguous, and note this in DESIGN.md.  Circuit *names* are the
// canonical benchmark names for the matching function class; the netlists
// are structurally synthesized (see generators.hpp) at the paper's gate
// counts because the original files are not redistributable.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace diac {

enum class BenchmarkSuite : std::uint8_t { kIscas89, kItc99, kMcnc };

const char* to_string(BenchmarkSuite suite);

struct BenchmarkSpec {
  std::string name;           // canonical circuit name, e.g. "s27", "b14"
  BenchmarkSuite suite;
  std::string function_class; // the paper's "Functions" row entry
  std::size_t gate_count;     // the paper's "# Gates" row entry
  std::uint64_t seed;         // generator seed (deterministic)
};

// All 24 benchmarks in the paper's left-to-right order.
const std::vector<BenchmarkSpec>& benchmark_suite();

// Specs filtered by suite.
std::vector<BenchmarkSpec> benchmarks_in(BenchmarkSuite suite);

// Finds a spec by name; throws std::invalid_argument when unknown.
const BenchmarkSpec& benchmark_spec(const std::string& name);

// Synthesizes the circuit for `spec`: builds the function-class kernel and
// grows it to exactly `spec.gate_count` logic gates.  Deterministic.
Netlist build_benchmark(const BenchmarkSpec& spec);
Netlist build_benchmark(const std::string& name);

}  // namespace diac
