// Berkeley Logic Interchange Format (BLIF) reader/writer.
//
// BLIF is the interchange format of the MCNC benchmark distributions and
// of most academic synthesis tools (SIS, ABC, VTR), so supporting it lets
// users run DIAC on circuits straight out of those flows.  Supported
// subset (which covers the benchmark corpora):
//
//   .model <name>
//   .inputs a b c
//   .outputs x y
//   .names <in...> <out>      followed by single-output cover rows
//   .latch <in> <out> [<type> <ctrl>] [<init>]
//   .end
//
// Cover rows use the PLA conventions: '1'/'0'/'-' input columns with a
// '1' (on-set) or '0' (off-set) output column.  Covers are synthesized
// structurally: each on-set row becomes an AND of literals, rows are
// OR-ed; off-set covers get a final inverter.  Multi-model files read
// only the first model.  `.exdc`, `.subckt` and timing constructs are
// rejected with a clear error.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace diac {

// Parses BLIF text; throws std::runtime_error with a line number on
// malformed input, unknown signals, or unsupported constructs.
Netlist parse_blif(std::istream& in);
Netlist parse_blif_string(const std::string& text);
Netlist parse_blif_file(const std::string& path);

// Writes the netlist as BLIF (gates become .names covers; DFFs become
// .latch lines).  Round-trips with parse_blif modulo gate decomposition.
void write_blif(std::ostream& out, const Netlist& nl);
std::string to_blif_string(const Netlist& nl);

}  // namespace diac
