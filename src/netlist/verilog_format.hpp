// Structural Verilog reader for the subset the DIAC code generator emits.
//
// Closing the loop: `generate_verilog` emits an NV-enhanced netlist; this
// parser reads it back so tests can prove the emitted HDL is functionally
// identical to the source netlist (gate-level simulation on both sides).
// Supported constructs:
//
//   module <name> ( input wire a, output wire y, ... );
//   wire w;            reg q;
//   assign w = <expr>; // expr: 1'b0/1'b1, x, ~x, a OP b OP c,
//                      //       ~(a OP b...), s ? x : y   (OP in & | ^)
//   always @(posedge clk) q <= d;
//   <cell> <inst> (.pin(sig), ...);   // e.g. diac_nvreg — recorded, not
//                                     // modelled (shadow NVM elements)
//   endmodule
//
// `clk` and `backup_en` ports are control inputs of the generated wrapper
// and are dropped from the netlist's primary inputs.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace diac {

struct VerilogModule {
  Netlist netlist;
  // Instantiated leaf cells that are not gates (e.g. diac_nvreg shadow
  // registers): (cell type, instance name, connected signal names).
  struct Instance {
    std::string cell;
    std::string name;
    std::vector<std::pair<std::string, std::string>> pins;
  };
  std::vector<Instance> instances;
};

// Throws std::runtime_error with a line number on anything outside the
// supported subset.
VerilogModule parse_structural_verilog(std::istream& in);
VerilogModule parse_structural_verilog_string(const std::string& text);

}  // namespace diac
