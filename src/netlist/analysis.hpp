// Structural analysis over netlists: topological ordering, levelization,
// critical-path (static timing) analysis against a cell library, and
// fanout-free-cone decomposition (the initial "function" grouping used by
// the DIAC tree generator).
#pragma once

#include <vector>

#include "cell/cell_library.hpp"
#include "netlist/netlist.hpp"

namespace diac {

// Topological order of all gates, treating DFF outputs as sources (their
// fanin edge is a sequential boundary).  Ports and constants included.
// Throws std::runtime_error on combinational cycles.
std::vector<GateId> topological_order(const Netlist& nl);

// Level of each gate: inputs/constants/DFFs are level 0; a combinational
// gate is 1 + max(level of combinational fanins).  OUTPUT ports take the
// level of their driver.
std::vector<int> levelize(const Netlist& nl);

// Maximum level (combinational depth).
int depth(const Netlist& nl);

// Static timing: arrival time of each gate's output using library delays,
// again cutting paths at DFFs.
std::vector<double> arrival_times(const Netlist& nl, const CellLibrary& lib);

// Critical-path delay of the whole netlist (max arrival at outputs/DFF-Ds).
double critical_path_delay(const Netlist& nl, const CellLibrary& lib);

// Fanout-free cones (FFCs).
//
// Every combinational gate belongs to exactly one cone, rooted at a gate
// whose fanout either exits the cone's exclusive region (fanout > 1),
// drives a port/DFF, or is a DFF/port itself.  Gates whose single fanout
// stays within one consumer merge upward into the consumer's cone.  This is
// the classic MFFC-style grouping: a cone evaluates as one unit, which is
// what DIAC's tree generator treats as a "function" node.
struct Cone {
  GateId root = kNullGate;
  std::vector<GateId> members;  // includes root; combinational gates only
};

// Maps each combinational gate to a cone; returns cones ordered by root id.
std::vector<Cone> fanout_free_cones(const Netlist& nl);

// Summary statistics used by reports and tests.
struct NetlistStats {
  std::size_t gates = 0;     // logic gates (paper's "# Gates")
  std::size_t inputs = 0;
  std::size_t outputs = 0;
  std::size_t dffs = 0;
  int depth = 0;
  double critical_path = 0.0;  // s
  double total_area = 0.0;     // m^2
};

NetlistStats analyze(const Netlist& nl, const CellLibrary& lib);

}  // namespace diac
