#include "netlist/fingerprint.hpp"

#include <algorithm>

namespace diac {

Hash128 canonical_fingerprint(const Netlist& nl) {
  std::vector<GateId> ids = nl.all_ids();
  std::sort(ids.begin(), ids.end(), [&nl](GateId a, GateId b) {
    return nl.gate(a).name < nl.gate(b).name;
  });

  Fnv128 h;
  const std::uint64_t count = ids.size();
  h.update(&count, sizeof(count));
  for (GateId id : ids) {
    const Gate& g = nl.gate(id);
    h.update_token(g.name);
    h.update_token(to_string(g.kind));
    const std::uint64_t fanins = g.fanin.size();
    h.update(&fanins, sizeof(fanins));
    for (GateId f : g.fanin) h.update_token(nl.gate(f).name);
  }
  return h.digest();
}

}  // namespace diac
