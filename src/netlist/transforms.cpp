#include "netlist/transforms.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <vector>

namespace diac {

namespace {

// Rebuilds a netlist keeping only gates where keep[id], remapping fanins
// through `redirect` (applied transitively) first.  `redirect[id]` points
// a consumed gate at its replacement (kNullGate = keep as is).
Netlist rebuild(const Netlist& nl, const std::vector<char>& keep,
                const std::vector<GateId>& redirect) {
  auto resolve = [&](GateId id) {
    GateId cur = id;
    // Redirections can chain (buffer of a buffer); they cannot cycle
    // because each step strictly moves to an earlier-created driver.
    while (redirect[cur] != kNullGate) cur = redirect[cur];
    return cur;
  };

  Netlist out(nl.name());
  std::vector<GateId> new_id(nl.size(), kNullGate);
  // Two passes: create kept gates (empty fanin), then wire them.  DFF
  // feedback makes a single topological pass impossible in general.
  for (GateId id = 0; id < nl.size(); ++id) {
    if (!keep[id]) continue;
    new_id[id] = out.add(nl.gate(id).kind, nl.gate(id).name);
  }
  for (GateId id = 0; id < nl.size(); ++id) {
    if (!keep[id]) continue;
    std::vector<GateId> fanin;
    fanin.reserve(nl.gate(id).fanin.size());
    for (GateId f : nl.gate(id).fanin) {
      const GateId src = resolve(f);
      if (new_id[src] == kNullGate) {
        throw std::logic_error("transforms: kept gate reads a swept gate ('" +
                               nl.gate(id).name + "' reads '" +
                               nl.gate(src).name + "')");
      }
      fanin.push_back(new_id[src]);
    }
    out.set_fanin(new_id[id], std::move(fanin));
  }
  out.validate();
  return out;
}

std::vector<GateId> no_redirect(const Netlist& nl) {
  return std::vector<GateId>(nl.size(), kNullGate);
}

}  // namespace

Netlist sweep_dead_gates(const Netlist& nl, TransformStats* stats) {
  // Mark everything reachable *backwards* from outputs and DFFs.
  std::vector<char> live(nl.size(), 0);
  std::vector<GateId> work;
  for (GateId id = 0; id < nl.size(); ++id) {
    const GateKind k = nl.gate(id).kind;
    if (k == GateKind::kOutput || k == GateKind::kDff ||
        k == GateKind::kInput) {
      live[id] = 1;
      work.push_back(id);
    }
  }
  while (!work.empty()) {
    const GateId id = work.back();
    work.pop_back();
    for (GateId f : nl.gate(id).fanin) {
      if (!live[f]) {
        live[f] = 1;
        work.push_back(f);
      }
    }
  }
  std::size_t removed = 0;
  for (GateId id = 0; id < nl.size(); ++id) {
    if (!live[id] && is_logic(nl.gate(id).kind)) ++removed;
  }
  if (stats) stats->removed_dead += removed;
  return rebuild(nl, live, no_redirect(nl));
}

Netlist propagate_constants(const Netlist& nl, TransformStats* stats) {
  // Constant value per gate: nullopt = not constant.  Constants are
  // computed first, then materialized into a fresh netlist where constant
  // logic gates become kConst0/kConst1.
  std::vector<std::optional<bool>> value(nl.size());
  bool changed = true;
  const auto order = [&] {
    std::vector<GateId> topo;
    topo.reserve(nl.size());
    // Kahn over combinational edges (DFFs are sources).
    std::vector<int> pending(nl.size(), 0);
    for (GateId id = 0; id < nl.size(); ++id) {
      const Gate& g = nl.gate(id);
      pending[id] = g.kind == GateKind::kDff ? 0 : g.fanin_count();
      if (pending[id] == 0) topo.push_back(id);
    }
    for (std::size_t head = 0; head < topo.size(); ++head) {
      for (GateId c : nl.gate(topo[head]).fanout) {
        if (nl.gate(c).kind == GateKind::kDff) continue;
        if (--pending[c] == 0) topo.push_back(c);
      }
    }
    return topo;
  }();

  // Fixpoint over the topological order (one pass suffices for
  // combinational logic; DFF chains of constants need iteration).
  while (changed) {
    changed = false;
    for (GateId id : order) {
      const Gate& g = nl.gate(id);
      if (value[id].has_value()) continue;
      std::optional<bool> v;
      switch (g.kind) {
        case GateKind::kConst0: v = false; break;
        case GateKind::kConst1: v = true; break;
        case GateKind::kBuf:
        case GateKind::kOutput:
          v = value[g.fanin[0]];
          break;
        case GateKind::kNot:
          if (value[g.fanin[0]]) v = !*value[g.fanin[0]];
          break;
        case GateKind::kDff:
          break;  // state: never constant-folded (init value unknown)
        case GateKind::kAnd:
        case GateKind::kNand: {
          bool any_zero = false, all_one = true;
          for (GateId f : g.fanin) {
            if (value[f] == std::optional<bool>(false)) any_zero = true;
            if (value[f] != std::optional<bool>(true)) all_one = false;
          }
          if (any_zero) v = g.kind == GateKind::kNand;
          else if (all_one) v = g.kind == GateKind::kAnd;
          break;
        }
        case GateKind::kOr:
        case GateKind::kNor: {
          bool any_one = false, all_zero = true;
          for (GateId f : g.fanin) {
            if (value[f] == std::optional<bool>(true)) any_one = true;
            if (value[f] != std::optional<bool>(false)) all_zero = false;
          }
          if (any_one) v = g.kind == GateKind::kOr;
          else if (all_zero) v = g.kind == GateKind::kNor;
          break;
        }
        case GateKind::kXor:
        case GateKind::kXnor: {
          bool parity = g.kind == GateKind::kXnor;
          bool all_const = true;
          for (GateId f : g.fanin) {
            if (!value[f]) {
              all_const = false;
              break;
            }
            parity ^= *value[f];
          }
          if (all_const) v = parity;
          break;
        }
        case GateKind::kMux: {
          const auto sel = value[g.fanin[0]];
          if (sel) v = value[g.fanin[*sel ? 2 : 1]];
          else if (value[g.fanin[1]] && value[g.fanin[1]] == value[g.fanin[2]])
            v = value[g.fanin[1]];
          break;
        }
        case GateKind::kInput:
          break;
      }
      if (v.has_value()) {
        value[id] = v;
        changed = true;
      }
    }
  }

  // Materialize: constant logic gates become kConst gates; other gates
  // are copied as-is (their constant fanins now point to const gates).
  Netlist out(nl.name());
  std::vector<GateId> new_id(nl.size(), kNullGate);
  std::size_t folded = 0;
  for (GateId id = 0; id < nl.size(); ++id) {
    const Gate& g = nl.gate(id);
    GateKind kind = g.kind;
    if (is_logic(kind) && kind != GateKind::kDff && value[id].has_value()) {
      kind = *value[id] ? GateKind::kConst1 : GateKind::kConst0;
      if (g.kind != GateKind::kConst0 && g.kind != GateKind::kConst1) {
        ++folded;
      }
    }
    new_id[id] = out.add(kind, g.name);
  }
  for (GateId id = 0; id < nl.size(); ++id) {
    const Gate& g = nl.gate(id);
    if (out.gate(new_id[id]).kind == GateKind::kConst0 ||
        out.gate(new_id[id]).kind == GateKind::kConst1) {
      continue;  // constants have no fanin
    }
    std::vector<GateId> fanin;
    for (GateId f : g.fanin) fanin.push_back(new_id[f]);
    out.set_fanin(new_id[id], std::move(fanin));
  }
  out.validate();
  if (stats) stats->folded_constants += folded;
  return out;
}

Netlist elide_buffers(const Netlist& nl, TransformStats* stats) {
  std::vector<char> keep(nl.size(), 1);
  std::vector<GateId> redirect(nl.size(), kNullGate);
  std::size_t elided = 0;
  for (GateId id = 0; id < nl.size(); ++id) {
    const Gate& g = nl.gate(id);
    if (g.kind != GateKind::kBuf) continue;
    keep[id] = 0;
    redirect[id] = g.fanin.at(0);
    ++elided;
  }
  if (stats) stats->elided_buffers += elided;
  return rebuild(nl, keep, redirect);
}

Netlist cleanup(const Netlist& nl, TransformStats* stats) {
  Netlist a = propagate_constants(nl, stats);
  Netlist b = elide_buffers(a, stats);
  return sweep_dead_gates(b, stats);
}

}  // namespace diac
