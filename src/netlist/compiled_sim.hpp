/// Compiled structure-of-arrays logic-simulation kernel.
///
/// `CompiledNetlist` lowers a `Netlist` once into flat, cache-friendly
/// arrays — a dense `GateKind` byte array, CSR fanin connectivity
/// (`uint32_t` offsets into one contiguous `GateId` array), a levelized
/// evaluation schedule of packed `SimNode` records, and precomputed DFF
/// D-pin / port index tables.  No strings and no per-gate heap blocks
/// appear anywhere on the evaluation path, and the whole object is
/// immutable after construction, so one instance is shareable `const`
/// across any number of simulators (and threads).
///
/// On top of that IR the compiler emits a uniform *lowered plan*: every
/// gate shape is specialized once, at compile time, into its minimal
/// AND-literal recipe (`AndStep`) — 1-input NOT/BUF become free edge
/// complements/aliases, the dominant 2-input AND/NAND/OR/NOR take one
/// step, XOR/XNOR/MUX take three, and N-input reducers chain N-1 — so
/// the evaluation loop is dispatch-free and branch-predictable even on
/// netlists thousands of levels deep.
///
/// `CompiledSimulator` evaluates the plan with multi-word pattern
/// batching: `B` words are evaluated per step, so one plan traversal
/// amortizes over `64 x B` independent patterns.  Results are
/// bit-identical to the scalar `eval_gate` reference path
/// (`ReferenceSimulator`) for every word — see docs/ARCHITECTURE.md,
/// "The compiled simulation kernel".
// diac-lint: api-header
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace diac {

/// One machine word = 64 parallel simulation lanes (one pattern per bit).
using Word = std::uint64_t;

/// Shape-specialized evaluation opcode.  The dominant 1-input, 2-input and
/// 3-input (MUX) forms get dedicated kernels; `k*N` are the generic
/// reducer fallbacks for wider gates.  Constants and INPUT/DFF slots are
/// not scheduled (they are preset / copied from state), so no opcode
/// exists for them.
enum class SimOp : std::uint8_t {
  kBuf1,   ///< out = a            (BUF and OUTPUT ports)
  kNot1,   ///< out = ~a
  kAnd2,   ///< out = a & b
  kNand2,  ///< out = ~(a & b)
  kOr2,    ///< out = a | b
  kNor2,   ///< out = ~(a | b)
  kXor2,   ///< out = a ^ b
  kXnor2,  ///< out = ~(a ^ b)
  kMux3,   ///< out = sel ? b : a  (lane-wise; fanin = {sel, a, b})
  kAndN,   ///< out = &-reduce(fanins)
  kNandN,  ///< out = ~&-reduce(fanins)
  kOrN,    ///< out = |-reduce(fanins)
  kNorN,   ///< out = ~|-reduce(fanins)
  kXorN,   ///< out = ^-reduce(fanins)
  kXnorN,  ///< out = ~^-reduce(fanins)
};

/// One packed schedule entry: everything a kernel needs to evaluate one
/// gate (output slot, CSR fanin slice, opcode) in 12 bytes, so the
/// schedule streams through cache linearly.
struct SimNode {
  GateId out = 0;                 ///< gate id whose value slot is written
  std::uint32_t fanin_begin = 0;  ///< start index into CompiledNetlist fanins
  std::uint16_t fanin_count = 0;  ///< number of fanins (arity-checked)
  SimOp op = SimOp::kBuf1;        ///< specialized kernel selector
};

/// A maximal run of consecutive schedule entries sharing one opcode
/// (the schedule is sorted by (level, op) — see `schedule()`), exposed
/// for analysis and for future wavefront/run-dispatched evaluators.
struct SimOpRun {
  std::uint32_t begin = 0;  ///< first schedule index of the run
  std::uint32_t count = 0;  ///< number of consecutive same-op entries
  SimOp op = SimOp::kBuf1;  ///< the run's opcode
};

/// One uniform evaluation step of the lowered plan: an AND of two
/// *literals* (`2 * slot + complement`, AIGER-style).  Every gate shape
/// is compiled to its minimal AND-literal recipe (NOT/BUF are free edge
/// complements / aliases, 2-input gates take 1 step, XOR/XNOR/MUX take
/// 3, N-input reducers chain N-1), so the hot loop carries no per-gate
/// dispatch at all — on deep netlists that out-runs any switch-based
/// kernel by ~4x (branch misprediction dominates otherwise).
struct AndStep {
  std::uint32_t a = 0;  ///< left operand literal
  std::uint32_t b = 0;  ///< right operand literal
};

/// A `Netlist` compiled once into flat SoA form for fast repeated
/// evaluation.  Immutable after construction; share one `const` instance
/// across simulators to pay levelization/layout cost exactly once.
class CompiledNetlist {
 public:
  /// Compiles `nl`.  Throws `std::runtime_error` on combinational cycles
  /// and `std::invalid_argument` on arity violations (the same conditions
  /// `Netlist::validate()` reports).  `nl` itself is not retained.
  explicit CompiledNetlist(const Netlist& nl);

  /// Convenience: compiles `nl` into a shareable immutable handle.
  static std::shared_ptr<const CompiledNetlist> compile(const Netlist& nl);

  /// Number of gates (value slots) in the compiled design.
  std::size_t size() const { return kind_.size(); }

  /// Dense per-gate kind byte (indexed by `GateId`).
  GateKind kind(GateId id) const { return kind_[id]; }

  /// Primary input gate ids, in `Netlist::inputs()` order.
  std::span<const GateId> inputs() const { return inputs_; }

  /// Output port gate ids, in `Netlist::outputs()` order.
  std::span<const GateId> outputs() const { return outputs_; }

  /// DFF gate ids, in `Netlist::dffs()` order (the state vector order).
  std::span<const GateId> dffs() const { return dffs_; }

  /// Precomputed D-pin driver of each DFF, parallel to `dffs()`.
  std::span<const GateId> dff_d() const { return dff_d_; }

  /// Constant-0 / constant-1 gate ids (preset once, never scheduled).
  std::span<const GateId> const_zeros() const { return const0_; }

  /// Constant-1 gate ids (lanes all-ones), preset once per simulator.
  std::span<const GateId> const_ones() const { return const1_; }

  /// The levelized evaluation schedule: every combinational gate and
  /// output port exactly once, in a valid dependency order — sorted by
  /// (logic level, output-port sub-level, opcode), ties keeping
  /// topological order.  Sorting by opcode within a level is
  /// dependency-safe (gates at one level are mutually independent; the
  /// only same-level edges run driver -> OUTPUT port, and ports sort
  /// into the later sub-level), and it is what makes `runs()` long.
  std::span<const SimNode> schedule() const { return schedule_; }

  /// Op-homogeneous runs covering `schedule()` in order.
  std::span<const SimOpRun> runs() const { return runs_; }

  /// The lowered uniform plan: AND-literal steps in dependency order.
  /// Step `k` writes value slot `node_base() + k`; operand literals index
  /// earlier slots (see `AndStep`).
  std::span<const AndStep> plan() const { return plan_; }

  /// Total value slots: slot 0 is constant zero, then inputs, then DFF
  /// outputs, then one slot per plan step.
  std::uint32_t slot_count() const { return slot_count_; }

  /// First plan-step slot (`1 + inputs + dffs`).
  std::uint32_t node_base() const { return node_base_; }

  /// Slot of DFF `i`'s Q output (`1 + inputs + i`).
  std::uint32_t dff_slot(std::size_t i) const {
    return 1 + static_cast<std::uint32_t>(inputs_.size()) +
           static_cast<std::uint32_t>(i);
  }

  /// Literal (`2 * slot + complement`) holding the settled value of any
  /// gate; defined for every gate id, including ports and constants.
  std::uint32_t literal(GateId id) const { return gate_lit_[id]; }

  /// Literal of DFF `i`'s D pin (what `step()` captures), parallel to
  /// `dffs()`.
  std::uint32_t dff_d_literal(std::size_t i) const { return dff_d_lit_[i]; }

  /// `level_begin()[l] .. level_begin()[l+1]` is the schedule slice at
  /// logic level `l`; size is `depth() + 2` entries (a wavefront
  /// interface for future parallel evaluation).
  std::span<const std::uint32_t> level_begin() const { return level_begin_; }

  /// Combinational depth (maximum logic level).
  int depth() const { return depth_; }

  /// CSR fanin slice of one gate.
  std::span<const GateId> fanin(GateId id) const {
    return {fanin_.data() + fanin_offset_[id],
            fanin_.data() + fanin_offset_[id + 1]};
  }

  /// Raw base pointer of the contiguous fanin array (kernel hot path;
  /// index with `SimNode::fanin_begin`).
  const GateId* fanin_data() const { return fanin_.data(); }

 private:
  std::vector<GateKind> kind_;
  std::vector<std::uint32_t> fanin_offset_;  // size() + 1 entries
  std::vector<GateId> fanin_;
  std::vector<SimNode> schedule_;
  std::vector<SimOpRun> runs_;
  std::vector<std::uint32_t> level_begin_;
  std::vector<AndStep> plan_;
  std::vector<std::uint32_t> gate_lit_;
  std::vector<std::uint32_t> dff_d_lit_;
  std::uint32_t node_base_ = 0;
  std::uint32_t slot_count_ = 0;
  std::vector<GateId> inputs_, outputs_, dffs_, dff_d_, const0_, const1_;
  int depth_ = 0;
};

/// Batched evaluator over a `CompiledNetlist`.
///
/// Holds `batch_words()` words per value slot (SoA, slot-major: word `w`
/// of slot `s` lives at `s * B + w`), so each plan step evaluates
/// `64 x B` independent patterns with one traversal.  Batch sizes 1, 2,
/// 4 and 8 run fully unrolled kernels; any other size >= 1 uses the
/// generic path.  Word 0 of a batch-1 simulator reproduces the classic
/// `LogicSimulator` semantics bit for bit.
class CompiledSimulator {
 public:
  /// Shares an already-compiled netlist (the cheap constructor: only the
  /// value/state buffers are allocated).  Throws `std::invalid_argument`
  /// when `batch_words < 1` or `compiled` is null.
  explicit CompiledSimulator(std::shared_ptr<const CompiledNetlist> compiled,
                             int batch_words = 1);

  /// Compiles `nl` privately, then constructs as above.
  explicit CompiledSimulator(const Netlist& nl, int batch_words = 1);

  /// Number of words held per gate (`B`); each word is 64 lanes.
  int batch_words() const { return batch_; }

  /// The shared compiled netlist this simulator evaluates.
  const CompiledNetlist& compiled() const { return *cn_; }

  /// Shareable handle to the compiled netlist (pass to further
  /// simulators to skip recompilation).
  const std::shared_ptr<const CompiledNetlist>& compiled_ptr() const {
    return cn_;
  }

  /// Assigns input pattern word `word` of `input`.  Throws
  /// `std::invalid_argument` unless `input` is an INPUT gate and
  /// `word < batch_words()`.
  void set_input(GateId input, Word value, int word = 0);

  /// Combinational settle: recomputes every scheduled gate (all words)
  /// from the inputs and current DFF state.
  void settle();

  /// One clock edge: settle, then DFF state <- D values (all words).
  void step();

  /// Runs `cycles` clock cycles.
  void run(int cycles);

  /// Value word `word` of `gate` after the last settle.  Bounds-checked;
  /// throws `std::out_of_range` / `std::invalid_argument` on bad ids.
  Word value(GateId gate, int word = 0) const;

  /// Sequential state snapshot, DFF-major: word `w` of DFF `i` at
  /// `i * batch_words() + w` (batch 1 matches the classic layout).
  std::vector<Word> state() const { return dff_state_; }

  /// Restores a snapshot taken with `state()`; throws
  /// `std::invalid_argument` on size mismatch.
  void set_state(const std::vector<Word>& state);

  /// Output values (word `word`) in `outputs()` order.
  std::vector<Word> output_values(int word = 0) const;

  /// FNV-1a hash of outputs then DFF state for one word lane-group —
  /// bit-compatible with `LogicSimulator::fingerprint()` at batch 1.
  std::uint64_t fingerprint(int word = 0) const;

 private:
  template <int B>
  void settle_fixed();
  void settle_generic();
  void capture_dffs();
  void check_word(int word) const;
  Word read_literal(std::uint32_t lit, int word) const;

  std::shared_ptr<const CompiledNetlist> cn_;
  int batch_ = 1;
  std::vector<Word> slots_;      // slot_count() * batch_ words, slot-major
  std::vector<Word> dff_state_;  // dffs().size() * batch_ words, DFF-major
};

}  // namespace diac
