#include "netlist/netlist.hpp"

#include <algorithm>
#include <stdexcept>

// validate() is a thin throw-on-first-error facade over the collect-all
// DRC engine so the two checkers cannot drift; this is the one audited
// downward->upward include in the layering (see docs/ARCHITECTURE.md).
// diac-lint: allow(D5) validate() delegates to the verify DRC engine; audited single back-edge of the layer DAG
#include "verify/drc.hpp"

namespace diac {

std::pair<int, int> arity(GateKind kind) {
  switch (kind) {
    case GateKind::kInput:
    case GateKind::kConst0:
    case GateKind::kConst1:
      return {0, 0};
    case GateKind::kOutput:
    case GateKind::kBuf:
    case GateKind::kNot:
    case GateKind::kDff:
      return {1, 1};
    case GateKind::kMux:
      return {3, 3};
    case GateKind::kAnd:
    case GateKind::kNand:
    case GateKind::kOr:
    case GateKind::kNor:
    case GateKind::kXor:
    case GateKind::kXnor:
      return {2, -1};
  }
  return {0, -1};
}

Netlist::Netlist(std::string name) : name_(std::move(name)) {}

GateId Netlist::add(GateKind kind, std::string_view name_view,
                    std::vector<GateId> fanin) {
  std::string name(name_view);
  if (by_name_.count(name) != 0) {
    throw std::invalid_argument("Netlist: duplicate gate name '" + name + "'");
  }
  for (GateId f : fanin) {
    if (f >= gates_.size()) {
      throw std::invalid_argument("Netlist: fanin id out of range for '" + name + "'");
    }
  }
  const GateId id = static_cast<GateId>(gates_.size());
  Gate g;
  g.kind = kind;
  g.name = std::move(name);
  g.fanin = std::move(fanin);
  gates_.push_back(std::move(g));
  by_name_.emplace(gates_.back().name, id);
  link_fanout(id);
  switch (kind) {
    case GateKind::kInput: inputs_.push_back(id); break;
    case GateKind::kOutput: outputs_.push_back(id); break;
    case GateKind::kDff: dffs_.push_back(id); break;
    default: break;
  }
  return id;
}

GateId Netlist::add(GateKind kind, std::vector<GateId> fanin) {
  std::string name = std::string(to_string(kind)) + "_" + std::to_string(gates_.size());
  // Auto names can collide with user names; disambiguate.
  while (by_name_.count(name) != 0) name += "_";
  return add(kind, std::move(name), std::move(fanin));
}

void Netlist::set_fanin(GateId gate_id, std::vector<GateId> fanin) {
  if (gate_id >= gates_.size()) {
    throw std::invalid_argument("Netlist::set_fanin: gate id out of range");
  }
  for (GateId f : fanin) {
    if (f >= gates_.size()) {
      throw std::invalid_argument("Netlist::set_fanin: fanin id out of range");
    }
  }
  unlink_fanout(gate_id);
  gates_[gate_id].fanin = std::move(fanin);
  link_fanout(gate_id);
}

void Netlist::link_fanout(GateId gate_id) {
  for (GateId f : gates_[gate_id].fanin) {
    gates_[f].fanout.push_back(gate_id);
  }
}

void Netlist::unlink_fanout(GateId gate_id) {
  for (GateId f : gates_[gate_id].fanin) {
    auto& fo = gates_[f].fanout;
    fo.erase(std::remove(fo.begin(), fo.end(), gate_id), fo.end());
  }
}

const Gate& Netlist::gate(GateId id) const {
  if (id >= gates_.size()) throw std::out_of_range("Netlist::gate: bad id");
  return gates_[id];
}

Gate& Netlist::gate(GateId id) {
  if (id >= gates_.size()) throw std::out_of_range("Netlist::gate: bad id");
  return gates_[id];
}

GateId Netlist::find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? kNullGate : it->second;
}

bool Netlist::contains(const std::string& name) const {
  return by_name_.count(name) != 0;
}

std::size_t Netlist::logic_gate_count() const {
  std::size_t n = 0;
  for (const Gate& g : gates_) {
    if (is_logic(g.kind)) ++n;
  }
  return n;
}

std::size_t Netlist::combinational_gate_count() const {
  std::size_t n = 0;
  for (const Gate& g : gates_) {
    if (is_combinational(g.kind)) ++n;
  }
  return n;
}

std::vector<GateId> Netlist::all_ids() const {
  std::vector<GateId> ids(gates_.size());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<GateId>(i);
  return ids;
}

void Netlist::validate() const {
  // Delegate to the collect-all DRC engine (structural rules N1-N3:
  // links, arity, combinational cycles) and surface the first error the
  // way this API always has.  Advisory rules (N4-N6) are deliberately
  // excluded: validate() gates construction, not style.
  const verify::DrcReport report =
      verify::run_drc(*this, verify::DrcOptions::structural());
  if (const verify::DrcFinding* f = report.first_error()) {
    throw std::runtime_error("Netlist::validate: " + f->message);
  }
}

}  // namespace diac
