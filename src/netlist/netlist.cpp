#include "netlist/netlist.hpp"

#include <algorithm>
#include <stdexcept>

namespace diac {

std::pair<int, int> arity(GateKind kind) {
  switch (kind) {
    case GateKind::kInput:
    case GateKind::kConst0:
    case GateKind::kConst1:
      return {0, 0};
    case GateKind::kOutput:
    case GateKind::kBuf:
    case GateKind::kNot:
    case GateKind::kDff:
      return {1, 1};
    case GateKind::kMux:
      return {3, 3};
    case GateKind::kAnd:
    case GateKind::kNand:
    case GateKind::kOr:
    case GateKind::kNor:
    case GateKind::kXor:
    case GateKind::kXnor:
      return {2, -1};
  }
  return {0, -1};
}

Netlist::Netlist(std::string name) : name_(std::move(name)) {}

GateId Netlist::add(GateKind kind, std::string_view name_view,
                    std::vector<GateId> fanin) {
  std::string name(name_view);
  if (by_name_.count(name) != 0) {
    throw std::invalid_argument("Netlist: duplicate gate name '" + name + "'");
  }
  for (GateId f : fanin) {
    if (f >= gates_.size()) {
      throw std::invalid_argument("Netlist: fanin id out of range for '" + name + "'");
    }
  }
  const GateId id = static_cast<GateId>(gates_.size());
  Gate g;
  g.kind = kind;
  g.name = std::move(name);
  g.fanin = std::move(fanin);
  gates_.push_back(std::move(g));
  by_name_.emplace(gates_.back().name, id);
  link_fanout(id);
  switch (kind) {
    case GateKind::kInput: inputs_.push_back(id); break;
    case GateKind::kOutput: outputs_.push_back(id); break;
    case GateKind::kDff: dffs_.push_back(id); break;
    default: break;
  }
  return id;
}

GateId Netlist::add(GateKind kind, std::vector<GateId> fanin) {
  std::string name = std::string(to_string(kind)) + "_" + std::to_string(gates_.size());
  // Auto names can collide with user names; disambiguate.
  while (by_name_.count(name) != 0) name += "_";
  return add(kind, std::move(name), std::move(fanin));
}

void Netlist::set_fanin(GateId gate_id, std::vector<GateId> fanin) {
  if (gate_id >= gates_.size()) {
    throw std::invalid_argument("Netlist::set_fanin: gate id out of range");
  }
  for (GateId f : fanin) {
    if (f >= gates_.size()) {
      throw std::invalid_argument("Netlist::set_fanin: fanin id out of range");
    }
  }
  unlink_fanout(gate_id);
  gates_[gate_id].fanin = std::move(fanin);
  link_fanout(gate_id);
}

void Netlist::link_fanout(GateId gate_id) {
  for (GateId f : gates_[gate_id].fanin) {
    gates_[f].fanout.push_back(gate_id);
  }
}

void Netlist::unlink_fanout(GateId gate_id) {
  for (GateId f : gates_[gate_id].fanin) {
    auto& fo = gates_[f].fanout;
    fo.erase(std::remove(fo.begin(), fo.end(), gate_id), fo.end());
  }
}

const Gate& Netlist::gate(GateId id) const {
  if (id >= gates_.size()) throw std::out_of_range("Netlist::gate: bad id");
  return gates_[id];
}

Gate& Netlist::gate(GateId id) {
  if (id >= gates_.size()) throw std::out_of_range("Netlist::gate: bad id");
  return gates_[id];
}

GateId Netlist::find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? kNullGate : it->second;
}

bool Netlist::contains(const std::string& name) const {
  return by_name_.count(name) != 0;
}

std::size_t Netlist::logic_gate_count() const {
  std::size_t n = 0;
  for (const Gate& g : gates_) {
    if (is_logic(g.kind)) ++n;
  }
  return n;
}

std::size_t Netlist::combinational_gate_count() const {
  std::size_t n = 0;
  for (const Gate& g : gates_) {
    if (is_combinational(g.kind)) ++n;
  }
  return n;
}

std::vector<GateId> Netlist::all_ids() const {
  std::vector<GateId> ids(gates_.size());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<GateId>(i);
  return ids;
}

void Netlist::validate() const {
  // Arity checks.
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    const auto [lo, hi] = arity(g.kind);
    const int n = g.fanin_count();
    if (n < lo || (hi >= 0 && n > hi)) {
      throw std::runtime_error("Netlist::validate: gate '" + g.name + "' (" +
                               to_string(g.kind) + ") has fan-in " +
                               std::to_string(n));
    }
    for (GateId f : g.fanin) {
      if (f >= gates_.size()) {
        throw std::runtime_error("Netlist::validate: gate '" + g.name +
                                 "' has out-of-range fanin");
      }
      if (gates_[f].kind == GateKind::kOutput) {
        throw std::runtime_error("Netlist::validate: OUTPUT '" + gates_[f].name +
                                 "' drives gate '" + g.name + "'");
      }
    }
  }

  // Combinational cycle check: iterative DFS, DFF fanins are cut edges.
  enum class Mark : std::uint8_t { kWhite, kGrey, kBlack };
  std::vector<Mark> mark(gates_.size(), Mark::kWhite);
  std::vector<std::pair<GateId, std::size_t>> stack;
  for (GateId root = 0; root < gates_.size(); ++root) {
    if (mark[root] != Mark::kWhite) continue;
    stack.emplace_back(root, 0);
    mark[root] = Mark::kGrey;
    while (!stack.empty()) {
      auto& [id, next] = stack.back();
      const Gate& g = gates_[id];
      // A DFF breaks combinational paths: do not traverse its fanin.
      const bool traverse = g.kind != GateKind::kDff;
      if (traverse && next < g.fanin.size()) {
        const GateId child = g.fanin[next++];
        if (mark[child] == Mark::kGrey) {
          throw std::runtime_error("Netlist::validate: combinational cycle through '" +
                                   gates_[child].name + "'");
        }
        if (mark[child] == Mark::kWhite) {
          mark[child] = Mark::kGrey;
          stack.emplace_back(child, 0);
        }
      } else {
        mark[id] = Mark::kBlack;
        stack.pop_back();
      }
    }
  }
}

}  // namespace diac
