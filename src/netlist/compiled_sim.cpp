#include "netlist/compiled_sim.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "netlist/analysis.hpp"
#include "obs/obs.hpp"

namespace diac {

namespace {

// Maps a gate kind + arity to its specialized opcode; throws on kinds that
// are never scheduled (INPUT/DFF/constants are handled by the caller).
SimOp select_op(GateKind kind, std::size_t fanins) {
  switch (kind) {
    case GateKind::kBuf:
    case GateKind::kOutput:
      return SimOp::kBuf1;
    case GateKind::kNot:
      return SimOp::kNot1;
    case GateKind::kAnd:
      return fanins == 2 ? SimOp::kAnd2 : SimOp::kAndN;
    case GateKind::kNand:
      return fanins == 2 ? SimOp::kNand2 : SimOp::kNandN;
    case GateKind::kOr:
      return fanins == 2 ? SimOp::kOr2 : SimOp::kOrN;
    case GateKind::kNor:
      return fanins == 2 ? SimOp::kNor2 : SimOp::kNorN;
    case GateKind::kXor:
      return fanins == 2 ? SimOp::kXor2 : SimOp::kXorN;
    case GateKind::kXnor:
      return fanins == 2 ? SimOp::kXnor2 : SimOp::kXnorN;
    case GateKind::kMux:
      return SimOp::kMux3;
    default:
      throw std::logic_error("CompiledNetlist: unschedulable kind");
  }
}

}  // namespace

CompiledNetlist::CompiledNetlist(const Netlist& nl) {
  const std::size_t n = nl.size();
  kind_.resize(n);
  fanin_offset_.resize(n + 1, 0);
  std::size_t total_fanins = 0;
  for (GateId id = 0; id < n; ++id) total_fanins += nl.gate(id).fanin.size();
  fanin_.reserve(total_fanins);
  for (GateId id = 0; id < n; ++id) {
    const Gate& g = nl.gate(id);
    kind_[id] = g.kind;
    fanin_offset_[id] = static_cast<std::uint32_t>(fanin_.size());
    fanin_.insert(fanin_.end(), g.fanin.begin(), g.fanin.end());
  }
  fanin_offset_[n] = static_cast<std::uint32_t>(fanin_.size());

  inputs_.assign(nl.inputs().begin(), nl.inputs().end());
  outputs_.assign(nl.outputs().begin(), nl.outputs().end());
  dffs_.assign(nl.dffs().begin(), nl.dffs().end());
  dff_d_.reserve(dffs_.size());
  for (GateId ff : dffs_) {
    const Gate& g = nl.gate(ff);
    if (g.fanin.size() != 1) {
      throw std::invalid_argument("CompiledNetlist: DFF '" + g.name +
                                  "' must have exactly 1 fanin");
    }
    dff_d_.push_back(g.fanin[0]);
  }

  // Levelized schedule: a topological order of the evaluable gates,
  // stably bucketed by logic level.  Stable sort preserves dependency
  // order within a level (only pseudo ports share a level with their
  // driver), so the result is still a valid evaluation order.
  const std::vector<GateId> topo = topological_order(nl);
  const std::vector<int> level = levelize(nl);
  depth_ = 0;
  for (int l : level) depth_ = std::max(depth_, l);

  std::vector<GateId> sched_ids;
  sched_ids.reserve(n);
  for (GateId id : topo) {
    switch (nl.gate(id).kind) {
      case GateKind::kInput:
      case GateKind::kDff:
        break;  // externally assigned / copied from state
      case GateKind::kConst0:
        const0_.push_back(id);
        break;
      case GateKind::kConst1:
        const1_.push_back(id);
        break;
      default:
        sched_ids.push_back(id);
    }
  }
  // Sort key: (level, OUTPUT-port sub-level, op).  Gates at one level are
  // mutually independent, so grouping them by op is a valid evaluation
  // order; OUTPUT ports are level-transparent in levelize() (they share
  // their driver's level), so they get the odd sub-level after the real
  // gates they read.  Stable sort keeps topological order on full ties
  // (an OUTPUT chained onto another OUTPUT stays after its driver).
  auto sort_key = [&](GateId id) {
    const int sub = kind_[id] == GateKind::kOutput ? 1 : 0;
    return (static_cast<std::uint64_t>(level[id]) << 6) |
           (static_cast<std::uint64_t>(sub) << 5) |
           static_cast<std::uint64_t>(select_op(kind_[id],
                                                fanin(id).size()));
  };
  std::stable_sort(sched_ids.begin(), sched_ids.end(),
                   [&](GateId a, GateId b) { return sort_key(a) < sort_key(b); });

  schedule_.reserve(sched_ids.size());
  level_begin_.assign(static_cast<std::size_t>(depth_) + 2, 0);
  for (GateId id : sched_ids) {
    const Gate& g = nl.gate(id);
    const auto [lo, hi] = arity(g.kind);
    const int fc = g.fanin_count();
    if (fc < lo || (hi >= 0 && fc > hi) || g.fanin.size() > 0xFFFF) {
      throw std::invalid_argument("CompiledNetlist: gate '" + g.name +
                                  "' has invalid fanin count " +
                                  std::to_string(fc));
    }
    SimNode node;
    node.out = id;
    node.fanin_begin = fanin_offset_[id];
    node.fanin_count = static_cast<std::uint16_t>(fc);
    node.op = select_op(g.kind, g.fanin.size());
    schedule_.push_back(node);
    ++level_begin_[static_cast<std::size_t>(level[id]) + 1];
  }
  for (std::size_t l = 1; l < level_begin_.size(); ++l) {
    level_begin_[l] += level_begin_[l - 1];
  }
  for (std::size_t i = 0; i < schedule_.size(); ++i) {
    if (runs_.empty() || runs_.back().op != schedule_[i].op) {
      runs_.push_back({static_cast<std::uint32_t>(i), 1, schedule_[i].op});
    } else {
      ++runs_.back().count;
    }
  }

  // --- lowering: schedule -> uniform AND-literal plan ---------------------
  // Value slots: 0 = constant zero, then inputs, then DFF Q outputs, then
  // one slot per emitted step.  Literals are 2 * slot + complement.
  node_base_ = 1 + static_cast<std::uint32_t>(inputs_.size()) +
               static_cast<std::uint32_t>(dffs_.size());
  gate_lit_.assign(n, 0);
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    gate_lit_[inputs_[i]] = (1 + static_cast<std::uint32_t>(i)) << 1;
  }
  for (std::size_t i = 0; i < dffs_.size(); ++i) {
    gate_lit_[dffs_[i]] = dff_slot(i) << 1;
  }
  for (GateId id : const0_) gate_lit_[id] = 0;  // slot 0, plain
  for (GateId id : const1_) gate_lit_[id] = 1;  // slot 0, complemented

  auto emit = [this](std::uint32_t a, std::uint32_t b) {
    const std::uint32_t slot =
        node_base_ + static_cast<std::uint32_t>(plan_.size());
    plan_.push_back({a, b});
    return slot << 1;
  };
  // x ^ y == ~(~(x & ~y) & ~(~x & y)): three steps, complemented result.
  auto emit_xor = [&emit](std::uint32_t x, std::uint32_t y) {
    const std::uint32_t n1 = emit(x, y ^ 1);
    const std::uint32_t n2 = emit(x ^ 1, y);
    return emit(n1 ^ 1, n2 ^ 1) ^ 1;
  };
  std::vector<std::uint32_t> lits;
  for (const SimNode& node : schedule_) {
    const GateId id = node.out;
    const std::span<const GateId> fi = fanin(id);
    lits.clear();
    for (GateId f : fi) lits.push_back(gate_lit_[f]);
    std::uint32_t lit = 0;
    switch (node.op) {
      case SimOp::kBuf1: lit = lits[0]; break;      // alias, zero steps
      case SimOp::kNot1: lit = lits[0] ^ 1; break;  // free complement
      case SimOp::kAnd2: lit = emit(lits[0], lits[1]); break;
      case SimOp::kNand2: lit = emit(lits[0], lits[1]) ^ 1; break;
      case SimOp::kOr2: lit = emit(lits[0] ^ 1, lits[1] ^ 1) ^ 1; break;
      case SimOp::kNor2: lit = emit(lits[0] ^ 1, lits[1] ^ 1); break;
      case SimOp::kXor2: lit = emit_xor(lits[0], lits[1]); break;
      case SimOp::kXnor2: lit = emit_xor(lits[0], lits[1]) ^ 1; break;
      case SimOp::kMux3: {
        // (~s & a) | (s & b) == ~(~(~s & a) & ~(s & b))
        const std::uint32_t n1 = emit(lits[0] ^ 1, lits[1]);
        const std::uint32_t n2 = emit(lits[0], lits[2]);
        lit = emit(n1 ^ 1, n2 ^ 1) ^ 1;
        break;
      }
      case SimOp::kAndN:
      case SimOp::kNandN: {
        lit = lits[0];
        for (std::size_t k = 1; k < lits.size(); ++k) lit = emit(lit, lits[k]);
        if (node.op == SimOp::kNandN) lit ^= 1;
        break;
      }
      case SimOp::kOrN:
      case SimOp::kNorN: {
        lit = lits[0] ^ 1;
        for (std::size_t k = 1; k < lits.size(); ++k) {
          lit = emit(lit, lits[k] ^ 1);
        }
        if (node.op == SimOp::kOrN) lit ^= 1;
        break;
      }
      case SimOp::kXorN:
      case SimOp::kXnorN: {
        lit = lits[0];
        for (std::size_t k = 1; k < lits.size(); ++k) {
          lit = emit_xor(lit, lits[k]);
        }
        if (node.op == SimOp::kXnorN) lit ^= 1;
        break;
      }
    }
    gate_lit_[id] = lit;
  }
  slot_count_ = node_base_ + static_cast<std::uint32_t>(plan_.size());
  dff_d_lit_.reserve(dffs_.size());
  for (GateId d : dff_d_) dff_d_lit_.push_back(gate_lit_[d]);
}

std::shared_ptr<const CompiledNetlist> CompiledNetlist::compile(
    const Netlist& nl) {
  return std::make_shared<const CompiledNetlist>(nl);
}

CompiledSimulator::CompiledSimulator(
    std::shared_ptr<const CompiledNetlist> compiled, int batch_words)
    : cn_(std::move(compiled)), batch_(batch_words) {
  if (!cn_) {
    throw std::invalid_argument("CompiledSimulator: null compiled netlist");
  }
  if (batch_ < 1) {
    throw std::invalid_argument("CompiledSimulator: batch_words must be >= 1");
  }
  const std::size_t b = static_cast<std::size_t>(batch_);
  slots_.assign(static_cast<std::size_t>(cn_->slot_count()) * b, 0);
  dff_state_.assign(cn_->dffs().size() * b, 0);
}

CompiledSimulator::CompiledSimulator(const Netlist& nl, int batch_words)
    : CompiledSimulator(CompiledNetlist::compile(nl), batch_words) {}

void CompiledSimulator::check_word(int word) const {
  if (word < 0 || word >= batch_) {
    throw std::invalid_argument("CompiledSimulator: word index " +
                                std::to_string(word) + " out of batch " +
                                std::to_string(batch_));
  }
}

void CompiledSimulator::set_input(GateId input, Word value, int word) {
  check_word(word);
  if (input >= cn_->size() || cn_->kind(input) != GateKind::kInput) {
    throw std::invalid_argument(
        "CompiledSimulator::set_input: not an INPUT gate");
  }
  const std::size_t slot = cn_->literal(input) >> 1;  // inputs: plain slots
  slots_[slot * static_cast<std::size_t>(batch_) +
         static_cast<std::size_t>(word)] = value;
}

Word CompiledSimulator::read_literal(std::uint32_t lit, int word) const {
  const Word v = slots_[static_cast<std::size_t>(lit >> 1) *
                            static_cast<std::size_t>(batch_) +
                        static_cast<std::size_t>(word)];
  return (lit & 1) != 0 ? ~v : v;
}

template <int B>
void CompiledSimulator::settle_fixed() {
  const CompiledNetlist& cn = *cn_;
  Word* s = slots_.data();
  {
    // DFF state -> Q slots (contiguous slot range, streaming writes).
    const Word* st = dff_state_.data();
    Word* q = s + static_cast<std::size_t>(cn.dff_slot(0)) * B;
    const std::size_t nd = cn.dffs().size() * B;
    for (std::size_t i = 0; i < nd; ++i) q[i] = st[i];
  }
  // The uniform plan: no dispatch, sequential writes, predictable flow.
  const std::span<const AndStep> plan = cn.plan();
  Word* out = s + static_cast<std::size_t>(cn.node_base()) * B;
  for (const AndStep& n : plan) {
    const Word* pa = s + static_cast<std::size_t>(n.a >> 1) * B;
    const Word* pb = s + static_cast<std::size_t>(n.b >> 1) * B;
    const Word ma = 0 - static_cast<Word>(n.a & 1);
    const Word mb = 0 - static_cast<Word>(n.b & 1);
    for (int w = 0; w < B; ++w) out[w] = (pa[w] ^ ma) & (pb[w] ^ mb);
    out += B;
  }
}

void CompiledSimulator::settle_generic() {
  const CompiledNetlist& cn = *cn_;
  const std::size_t b = static_cast<std::size_t>(batch_);
  Word* s = slots_.data();
  {
    const Word* st = dff_state_.data();
    Word* q = s + static_cast<std::size_t>(cn.dff_slot(0)) * b;
    const std::size_t nd = cn.dffs().size() * b;
    for (std::size_t i = 0; i < nd; ++i) q[i] = st[i];
  }
  const std::span<const AndStep> plan = cn.plan();
  Word* out = s + static_cast<std::size_t>(cn.node_base()) * b;
  for (const AndStep& n : plan) {
    const Word* pa = s + static_cast<std::size_t>(n.a >> 1) * b;
    const Word* pb = s + static_cast<std::size_t>(n.b >> 1) * b;
    const Word ma = 0 - static_cast<Word>(n.a & 1);
    const Word mb = 0 - static_cast<Word>(n.b & 1);
    for (std::size_t w = 0; w < b; ++w) out[w] = (pa[w] ^ ma) & (pb[w] ^ mb);
    out += b;
  }
}

void CompiledSimulator::settle() {
  // Two relaxed atomic adds per settle (not per step of the plan), so the
  // kernel inner loops stay untouched; see BM_ObsOverhead for the cost.
  DIAC_OBS_COUNT("kernel.and_steps", cn_->plan().size());
  DIAC_OBS_COUNT("kernel.batch_words",
                 cn_->plan().size() * static_cast<std::size_t>(batch_));
  switch (batch_) {
    case 1: settle_fixed<1>(); break;
    case 2: settle_fixed<2>(); break;
    case 4: settle_fixed<4>(); break;
    case 8: settle_fixed<8>(); break;
    default: settle_generic(); break;
  }
}

void CompiledSimulator::capture_dffs() {
  // All DFFs capture simultaneously; dff_state_ is separate storage, so
  // reading D literals while writing state cannot order-interfere even
  // for DFF-to-DFF chains.
  const std::size_t nd = cn_->dffs().size();
  const int b = batch_;
  Word* st = dff_state_.data();
  for (std::size_t i = 0; i < nd; ++i) {
    const std::uint32_t lit = cn_->dff_d_literal(i);
    const Word* d = slots_.data() +
                    static_cast<std::size_t>(lit >> 1) *
                        static_cast<std::size_t>(b);
    const Word m = 0 - static_cast<Word>(lit & 1);
    for (int w = 0; w < b; ++w) {
      st[i * static_cast<std::size_t>(b) + static_cast<std::size_t>(w)] =
          d[w] ^ m;
    }
  }
}

void CompiledSimulator::step() {
  settle();
  capture_dffs();
}

void CompiledSimulator::run(int cycles) {
  for (int i = 0; i < cycles; ++i) step();
}

Word CompiledSimulator::value(GateId gate, int word) const {
  check_word(word);
  if (gate >= cn_->size()) {
    throw std::out_of_range("CompiledSimulator::value: gate id out of range");
  }
  // A DFF's literal names its Q slot, which settle() loads from state —
  // so like the reference, value(dff) reports the Q driven this cycle.
  return read_literal(cn_->literal(gate), word);
}

void CompiledSimulator::set_state(const std::vector<Word>& state) {
  if (state.size() != dff_state_.size()) {
    throw std::invalid_argument("CompiledSimulator::set_state: wrong size");
  }
  dff_state_ = state;
}

std::vector<Word> CompiledSimulator::output_values(int word) const {
  check_word(word);
  std::vector<Word> out;
  out.reserve(cn_->outputs().size());
  for (GateId id : cn_->outputs()) out.push_back(value(id, word));
  return out;
}

std::uint64_t CompiledSimulator::fingerprint(int word) const {
  check_word(word);
  // FNV-1a over outputs then DFF state, byte-identical to the reference
  // simulator's fingerprint at batch 1.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](Word w) {
    for (int i = 0; i < 8; ++i) {
      h ^= (w >> (8 * i)) & 0xFF;
      h *= 0x100000001b3ULL;
    }
  };
  const std::size_t b = static_cast<std::size_t>(batch_);
  const std::size_t w = static_cast<std::size_t>(word);
  for (GateId id : cn_->outputs()) mix(read_literal(cn_->literal(id), word));
  for (std::size_t i = 0; i < cn_->dffs().size(); ++i) {
    mix(dff_state_[i * b + w]);
  }
  return h;
}

}  // namespace diac
