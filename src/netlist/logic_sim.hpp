// Bit-parallel gate-level logic simulation.
//
// Evaluates 64 input patterns per step (one per bit lane).  Sequential
// circuits hold per-DFF state; `step()` performs one clock cycle
// (combinational settle, then DFF capture).  The intermittent-robustness
// property tests use this simulator as the golden functional reference: an
// execution interrupted by power failures and resumed from NVM backups must
// produce exactly the lanes a failure-free run produces.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace diac {

using Word = std::uint64_t;  // 64 parallel simulation lanes

class LogicSimulator {
 public:
  explicit LogicSimulator(const Netlist& nl);

  // Assigns an input pattern word (one bit per lane).
  void set_input(GateId input, Word value);
  void set_input(const std::string& name, Word value);

  // Combinational settle: recompute every gate value from inputs and the
  // current DFF state.
  void settle();

  // One clock edge: settle, then DFF state <- D values.
  void step();

  // Runs `cycles` clock cycles.
  void run(int cycles);

  Word value(GateId gate) const;
  Word value(const std::string& name) const;

  // Snapshot of the sequential state (one word per DFF, in dff order).
  std::vector<Word> state() const;
  void set_state(const std::vector<Word>& state);

  // Output values in `outputs()` order; a compact functional fingerprint.
  std::vector<Word> output_values() const;

  // Convenience: hash of the outputs (and state) for equality checks.
  std::uint64_t fingerprint() const;

  const Netlist& netlist() const { return *nl_; }

 private:
  const Netlist* nl_;
  std::vector<GateId> order_;
  std::vector<Word> value_;
  std::vector<Word> dff_state_;  // indexed parallel to nl_->dffs()
  // dff_index_[gate] is that DFF's slot in dff_state_ (kNoDff elsewhere);
  // a dense GateId-indexed table, so lookups are branch-free and the class
  // carries no hash-ordered state.
  static constexpr std::size_t kNoDff = static_cast<std::size_t>(-1);
  std::vector<std::size_t> dff_index_;
};

// Evaluates one gate function over word operands.
Word eval_gate(GateKind kind, const std::vector<Word>& operands);

}  // namespace diac
