// Bit-parallel gate-level logic simulation.
//
// Evaluates 64 input patterns per step (one per bit lane).  Sequential
// circuits hold per-DFF state; `step()` performs one clock cycle
// (combinational settle, then DFF capture).  The intermittent-robustness
// property tests use this simulator as the golden functional reference: an
// execution interrupted by power failures and resumed from NVM backups must
// produce exactly the lanes a failure-free run produces.
//
// Two implementations share this contract:
//  - `LogicSimulator` — the production path: a thin wrapper over the
//    compiled SoA kernel (netlist/compiled_sim.hpp) at batch 1.  The
//    compiled form can be shared across instances to pay levelization
//    once.
//  - `ReferenceSimulator` — the legacy AoS walker dispatching through the
//    scalar `eval_gate`; kept as the golden reference the compiled kernel
//    is differentially tested against (tests/compiled_sim_test.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "netlist/compiled_sim.hpp"
#include "netlist/netlist.hpp"

namespace diac {

class LogicSimulator {
 public:
  // Compiles `nl` privately (equivalent to the classic constructor).
  explicit LogicSimulator(const Netlist& nl);

  // Shares an already-compiled form of `nl`; construction then only
  // allocates value/state buffers.  `compiled` must have been built from
  // `nl` (checked by size).
  LogicSimulator(const Netlist& nl,
                 std::shared_ptr<const CompiledNetlist> compiled);

  // Assigns an input pattern word (one bit per lane).
  void set_input(GateId input, Word value);
  void set_input(const std::string& name, Word value);

  // Combinational settle: recompute every gate value from inputs and the
  // current DFF state.
  void settle() { sim_.settle(); }

  // One clock edge: settle, then DFF state <- D values.
  void step() { sim_.step(); }

  // Runs `cycles` clock cycles.
  void run(int cycles) { sim_.run(cycles); }

  Word value(GateId gate) const { return sim_.value(gate); }
  Word value(const std::string& name) const;

  // Snapshot of the sequential state (one word per DFF, in dff order).
  std::vector<Word> state() const { return sim_.state(); }
  void set_state(const std::vector<Word>& state) { sim_.set_state(state); }

  // Output values in `outputs()` order; a compact functional fingerprint.
  std::vector<Word> output_values() const { return sim_.output_values(); }

  // Convenience: hash of the outputs (and state) for equality checks.
  std::uint64_t fingerprint() const { return sim_.fingerprint(); }

  const Netlist& netlist() const { return *nl_; }

  // The compiled form backing this simulator (shareable with further
  // instances over the same netlist).
  const std::shared_ptr<const CompiledNetlist>& compiled() const {
    return sim_.compiled_ptr();
  }

 private:
  const Netlist* nl_;
  CompiledSimulator sim_;  // batch of 1
};

// The legacy AoS implementation: walks `Gate` structs in topological order
// and dispatches every gate through the scalar `eval_gate`.  Slow but
// simple; it is the golden reference for differential tests of the
// compiled kernel and is not used on any production hot path.
class ReferenceSimulator {
 public:
  explicit ReferenceSimulator(const Netlist& nl);

  void set_input(GateId input, Word value);
  void set_input(const std::string& name, Word value);
  void settle();
  void step();
  void run(int cycles);
  Word value(GateId gate) const;
  Word value(const std::string& name) const;
  std::vector<Word> state() const;
  void set_state(const std::vector<Word>& state);
  std::vector<Word> output_values() const;
  std::uint64_t fingerprint() const;
  const Netlist& netlist() const { return *nl_; }

 private:
  const Netlist* nl_;
  std::vector<GateId> order_;
  std::vector<Word> value_;
  std::vector<Word> dff_state_;  // indexed parallel to nl_->dffs()
  std::vector<GateId> dff_d_;    // precomputed D pin per DFF (no per-cycle
                                 // Gate-struct chasing in step())
  // dff_index_[gate] is that DFF's slot in dff_state_ (kNoDff elsewhere);
  // a dense GateId-indexed table, so lookups are branch-free and the class
  // carries no hash-ordered state.
  static constexpr std::size_t kNoDff = static_cast<std::size_t>(-1);
  std::vector<std::size_t> dff_index_;
};

// Evaluates one gate function over word operands.  `operands` must satisfy
// the kind's arity (callers validate; the netlist layer already enforces
// it structurally), so the evaluation loop is bounds-check-free.
Word eval_gate(GateKind kind, const std::vector<Word>& operands);

}  // namespace diac
