#include "netlist/analysis.hpp"

#include <algorithm>
#include <stdexcept>

namespace diac {

namespace {

// Combinational fanins of a gate: all fanins unless the gate is a DFF
// (whose D input is a sequential boundary for path purposes).
bool cuts_paths(GateKind kind) { return kind == GateKind::kDff; }

}  // namespace

std::vector<GateId> topological_order(const Netlist& nl) {
  const std::size_t n = nl.size();
  std::vector<int> pending(n, 0);
  std::vector<GateId> ready;
  ready.reserve(n);
  for (GateId id = 0; id < n; ++id) {
    const Gate& g = nl.gate(id);
    const int deps = cuts_paths(g.kind) ? 0 : g.fanin_count();
    pending[id] = deps;
    if (deps == 0) ready.push_back(id);
  }
  std::vector<GateId> order;
  order.reserve(n);
  for (std::size_t head = 0; head < ready.size(); ++head) {
    const GateId id = ready[head];
    order.push_back(id);
    for (GateId consumer : nl.gate(id).fanout) {
      if (cuts_paths(nl.gate(consumer).kind)) continue;  // already a source
      if (--pending[consumer] == 0) ready.push_back(consumer);
    }
  }
  if (order.size() != n) {
    throw std::runtime_error("topological_order: combinational cycle in '" +
                             nl.name() + "'");
  }
  return order;
}

std::vector<int> levelize(const Netlist& nl) {
  std::vector<int> level(nl.size(), 0);
  for (GateId id : topological_order(nl)) {
    const Gate& g = nl.gate(id);
    if (cuts_paths(g.kind) || g.fanin.empty()) {
      level[id] = 0;
      continue;
    }
    int max_in = -1;
    for (GateId f : g.fanin) max_in = std::max(max_in, level[f]);
    // Ports are transparent: they take the driver's level; real gates add 1.
    level[id] = is_pseudo(g.kind) ? std::max(max_in, 0) : max_in + 1;
  }
  return level;
}

int depth(const Netlist& nl) {
  const auto level = levelize(nl);
  int d = 0;
  for (int l : level) d = std::max(d, l);
  return d;
}

std::vector<double> arrival_times(const Netlist& nl, const CellLibrary& lib) {
  std::vector<double> at(nl.size(), 0.0);
  for (GateId id : topological_order(nl)) {
    const Gate& g = nl.gate(id);
    if (cuts_paths(g.kind) || g.fanin.empty()) {
      at[id] = 0.0;
      continue;
    }
    double max_in = 0.0;
    for (GateId f : g.fanin) max_in = std::max(max_in, at[f]);
    at[id] = max_in + lib.delay(g.kind, g.fanin_count());
  }
  return at;
}

double critical_path_delay(const Netlist& nl, const CellLibrary& lib) {
  const auto at = arrival_times(nl, lib);
  double cpd = 0.0;
  for (GateId id = 0; id < nl.size(); ++id) {
    const Gate& g = nl.gate(id);
    if (g.kind == GateKind::kOutput) {
      cpd = std::max(cpd, at[id]);
    } else if (g.kind == GateKind::kDff) {
      // Path ends at the D pin: arrival of the driver plus the DFF setup
      // (modelled inside the DFF delay).
      for (GateId f : g.fanin) cpd = std::max(cpd, at[f]);
    }
  }
  // Pure combinational designs: also consider dangling gates.
  for (GateId id = 0; id < nl.size(); ++id) cpd = std::max(cpd, at[id]);
  return cpd;
}

std::vector<Cone> fanout_free_cones(const Netlist& nl) {
  // A combinational gate merges into its consumer's cone iff it has exactly
  // one fanout and that fanout is a combinational gate.  Otherwise it is a
  // cone root.  Union-find towards the root.
  const std::size_t n = nl.size();
  std::vector<GateId> root(n, kNullGate);
  const auto order = topological_order(nl);
  // Process in reverse topological order so consumers resolve first.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const GateId id = *it;
    const Gate& g = nl.gate(id);
    if (!is_combinational(g.kind)) continue;
    if (g.fanout.size() == 1 && is_combinational(nl.gate(g.fanout[0]).kind)) {
      root[id] = root[g.fanout[0]];
      if (root[id] == kNullGate) root[id] = g.fanout[0];
    } else {
      root[id] = id;
    }
  }
  std::vector<std::vector<GateId>> members(n);
  for (GateId id = 0; id < n; ++id) {
    if (root[id] != kNullGate) members[root[id]].push_back(id);
  }
  std::vector<Cone> cones;
  for (GateId id = 0; id < n; ++id) {
    if (!members[id].empty()) {
      Cone c;
      c.root = id;
      c.members = std::move(members[id]);
      cones.push_back(std::move(c));
    }
  }
  return cones;
}

NetlistStats analyze(const Netlist& nl, const CellLibrary& lib) {
  NetlistStats s;
  s.gates = nl.logic_gate_count();
  s.inputs = nl.inputs().size();
  s.outputs = nl.outputs().size();
  s.dffs = nl.dffs().size();
  s.depth = depth(nl);
  s.critical_path = critical_path_delay(nl, lib);
  for (GateId id = 0; id < nl.size(); ++id) {
    const Gate& g = nl.gate(id);
    if (is_logic(g.kind)) s.total_area += lib.area(g.kind, g.fanin_count());
  }
  return s;
}

}  // namespace diac
