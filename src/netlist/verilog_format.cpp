#include "netlist/verilog_format.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>
#include <stdexcept>

namespace diac {

namespace {

[[noreturn]] void fail(int line, const std::string& what) {
  throw std::runtime_error("verilog parse error at line " +
                           std::to_string(line) + ": " + what);
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return {};
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

// Splits "a & b & c" on a single-character operator at paren depth 0.
std::vector<std::string> split_top(const std::string& expr, char op) {
  std::vector<std::string> parts;
  int depth = 0;
  std::string cur;
  for (char c : expr) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (c == op && depth == 0) {
      parts.push_back(trim(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  parts.push_back(trim(cur));
  return parts;
}

struct PendingAssign {
  std::string lhs;
  std::string expr;
  bool is_dff = false;
  int line = 0;
};

}  // namespace

VerilogModule parse_structural_verilog(std::istream& in) {
  // Read everything, strip // comments, then split into ';'-terminated
  // statements (module header handled separately).
  std::string text;
  {
    std::string raw;
    while (std::getline(in, raw)) {
      if (auto sl = raw.find("//"); sl != std::string::npos) raw.resize(sl);
      text += raw;
      text += '\n';
    }
  }

  auto line_of = [&text](std::size_t pos) {
    return 1 + static_cast<int>(std::count(text.begin(),
                                           text.begin() +
                                               static_cast<std::ptrdiff_t>(pos),
                                           '\n'));
  };

  const auto mod_pos = text.find("module");
  if (mod_pos == std::string::npos) fail(1, "no module");
  const auto open = text.find('(', mod_pos);
  const auto close = text.find(");", open);
  if (open == std::string::npos || close == std::string::npos) {
    fail(line_of(mod_pos), "malformed module header");
  }
  std::string mod_name =
      trim(text.substr(mod_pos + 6, open - mod_pos - 6));

  VerilogModule result;
  Netlist& nl = result.netlist;
  nl.set_name(mod_name);

  // Ports.
  std::vector<std::string> output_ports;
  {
    std::stringstream ports(text.substr(open + 1, close - open - 1));
    std::string port;
    while (std::getline(ports, port, ',')) {
      port = trim(port);
      const bool is_input = port.rfind("input", 0) == 0;
      const bool is_output = port.rfind("output", 0) == 0;
      if (!is_input && !is_output) fail(line_of(open), "bad port '" + port + "'");
      // Last identifier is the name.
      std::size_t e = port.size();
      while (e > 0 && !ident_char(port[e - 1])) --e;
      std::size_t b = e;
      while (b > 0 && ident_char(port[b - 1])) --b;
      const std::string name = port.substr(b, e - b);
      if (is_input) {
        if (name == "clk" || name == "backup_en") continue;  // control pins
        nl.add(GateKind::kInput, name);
      } else {
        output_ports.push_back(name);
      }
    }
  }

  // Statements after the header.
  std::string body = text.substr(close + 2);
  if (auto endm = body.rfind("endmodule"); endm != std::string::npos) {
    body.resize(endm);
  }
  const int body_line_base = line_of(close);

  std::vector<PendingAssign> assigns;
  std::vector<std::pair<std::string, int>> wires;  // (name, line)
  std::vector<std::pair<std::string, int>> regs;

  std::stringstream stmts(body);
  std::string stmt;
  int approx_line = body_line_base;
  while (std::getline(stmts, stmt, ';')) {
    approx_line += static_cast<int>(std::count(stmt.begin(), stmt.end(), '\n'));
    const std::string s = trim(stmt);
    if (s.empty()) continue;
    if (s.rfind("wire", 0) == 0) {
      wires.emplace_back(trim(s.substr(4)), approx_line);
    } else if (s.rfind("reg", 0) == 0) {
      regs.emplace_back(trim(s.substr(3)), approx_line);
    } else if (s.rfind("assign", 0) == 0) {
      const auto eq = s.find('=');
      if (eq == std::string::npos) fail(approx_line, "assign without '='");
      assigns.push_back({trim(s.substr(6, eq - 6)), trim(s.substr(eq + 1)),
                         false, approx_line});
    } else if (s.rfind("always", 0) == 0) {
      // always @(posedge clk) q <= d
      const auto arrow = s.find("<=");
      const auto paren = s.find(')');
      if (arrow == std::string::npos || paren == std::string::npos) {
        fail(approx_line, "unsupported always block");
      }
      assigns.push_back({trim(s.substr(paren + 1, arrow - paren - 1)),
                         trim(s.substr(arrow + 2)), true, approx_line});
    } else if (ident_char(s[0])) {
      // Cell instance: <cell> <inst> (.pin(sig), ...)
      VerilogModule::Instance inst;
      std::istringstream is(s);
      is >> inst.cell >> inst.name;
      std::size_t pos = 0;
      const std::string rest = s;
      while ((pos = rest.find(".", pos)) != std::string::npos) {
        const auto po = rest.find('(', pos);
        const auto pc = rest.find(')', po);
        if (po == std::string::npos || pc == std::string::npos) break;
        inst.pins.emplace_back(trim(rest.substr(pos + 1, po - pos - 1)),
                               trim(rest.substr(po + 1, pc - po - 1)));
        pos = pc;
      }
      // Strip the trailing " (" from the instance name if glued.
      if (auto p = inst.name.find('('); p != std::string::npos) {
        inst.name.resize(p);
      }
      result.instances.push_back(std::move(inst));
    } else {
      fail(approx_line, "unsupported statement '" + s.substr(0, 32) + "'");
    }
  }

  // Declare all assigned signals as gates (kind fixed up when wiring).
  for (const auto& a : assigns) {
    if (nl.contains(a.lhs)) fail(a.line, "duplicate driver for '" + a.lhs + "'");
    nl.add(a.is_dff ? GateKind::kDff : GateKind::kBuf, a.lhs);
  }

  auto resolve = [&](const std::string& name, int line) {
    const GateId id = nl.find(name);
    if (id == kNullGate) fail(line, "undefined signal '" + name + "'");
    return id;
  };

  // Wire the expressions.  The expression grammar is tiny: the generator
  // only emits flat operator chains, one optional leading ~, or a ternary.
  for (const auto& a : assigns) {
    const GateId lhs = nl.find(a.lhs);
    std::string e = a.expr;

    if (a.is_dff) {
      nl.set_fanin(lhs, {resolve(e, a.line)});
      continue;
    }
    // Constants.
    if (e == "1'b0" || e == "1'b1") {
      const GateId k = nl.add(e == "1'b1" ? GateKind::kConst1 : GateKind::kConst0);
      // Re-type the placeholder as BUF of the constant.
      nl.set_fanin(lhs, {k});
      continue;
    }
    // Ternary: sel ? x : y  ->  MUX(sel, y, x) (emit order: when1/when0).
    if (const auto q = e.find('?'); q != std::string::npos) {
      const auto c = e.find(':', q);
      if (c == std::string::npos) fail(a.line, "malformed ternary");
      const GateId sel = resolve(trim(e.substr(0, q)), a.line);
      const GateId when1 = resolve(trim(e.substr(q + 1, c - q - 1)), a.line);
      const GateId when0 = resolve(trim(e.substr(c + 1)), a.line);
      const GateId m = nl.add(GateKind::kMux, {sel, when0, when1});
      nl.set_fanin(lhs, {m});
      continue;
    }
    // Optional leading negation of a parenthesized chain.
    bool negated = false;
    if (!e.empty() && e[0] == '~' && e.size() > 1 && e[1] == '(') {
      negated = true;
      e = trim(e.substr(2, e.rfind(')') - 2));
    }
    GateKind pos_kind = GateKind::kBuf, neg_kind = GateKind::kNot;
    std::vector<std::string> parts;
    for (const auto& [op, pk, nk] :
         {std::tuple{'&', GateKind::kAnd, GateKind::kNand},
          std::tuple{'|', GateKind::kOr, GateKind::kNor},
          std::tuple{'^', GateKind::kXor, GateKind::kXnor}}) {
      auto split = split_top(e, op);
      if (split.size() > 1) {
        parts = std::move(split);
        pos_kind = pk;
        neg_kind = nk;
        break;
      }
    }
    if (parts.empty()) {
      // Single operand: x or ~x.
      if (!e.empty() && e[0] == '~') {
        const GateId n = nl.add(GateKind::kNot, {resolve(trim(e.substr(1)), a.line)});
        nl.set_fanin(lhs, {n});
      } else {
        nl.set_fanin(lhs, {resolve(e, a.line)});
      }
      continue;
    }
    std::vector<GateId> fanin;
    for (const auto& p : parts) fanin.push_back(resolve(p, a.line));
    const GateId g = nl.add(negated ? neg_kind : pos_kind, std::move(fanin));
    nl.set_fanin(lhs, {g});
  }

  // Output ports.
  for (const auto& name : output_ports) {
    const GateId src = nl.find(name);
    if (src == kNullGate) {
      throw std::runtime_error("verilog parse error: output '" + name +
                               "' has no driver");
    }
    nl.add(GateKind::kOutput, name + "$port", {src});
  }
  nl.validate();
  return result;
}

VerilogModule parse_structural_verilog_string(const std::string& text) {
  std::istringstream is(text);
  return parse_structural_verilog(is);
}

}  // namespace diac
