// Gate-level netlist data model.
//
// A `Netlist` is a named directed graph of gates.  Combinational logic must
// be acyclic; cycles are permitted only through DFFs (whose Q output is
// treated as a source for combinational analysis, exactly as in ISCAS-89
// benchmark semantics).
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cell/cell_library.hpp"

namespace diac {

using GateId = std::uint32_t;
inline constexpr GateId kNullGate = std::numeric_limits<GateId>::max();

struct Gate {
  GateKind kind{GateKind::kBuf};
  std::string name;
  std::vector<GateId> fanin;   // driver gates; for kMux: {sel, a, b}
  std::vector<GateId> fanout;  // maintained by Netlist::connect

  int fanin_count() const { return static_cast<int>(fanin.size()); }
  int fanout_count() const { return static_cast<int>(fanout.size()); }
};

// A gate-level netlist.
//
// Gates are created with `add` (fanins may be named later via `connect` /
// `set_fanin`), identified by dense `GateId`s, and looked up by unique name.
class Netlist {
 public:
  explicit Netlist(std::string name = "top");

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // --- construction -------------------------------------------------------
  // Adds a gate; throws std::invalid_argument on duplicate name or when a
  // fanin id is out of range.  (string_view rather than string so that the
  // unnamed overload below is never ambiguous with a braced fanin list.)
  GateId add(GateKind kind, std::string_view name,
             std::vector<GateId> fanin = {});
  // Convenience: adds with an auto-generated unique name ("<kind>_<id>").
  GateId add(GateKind kind, std::vector<GateId> fanin = {});

  // Replaces the fanin list of `gate` (updates fanout bookkeeping).
  void set_fanin(GateId gate, std::vector<GateId> fanin);

  // --- access ---------------------------------------------------------------
  std::size_t size() const { return gates_.size(); }
  const Gate& gate(GateId id) const;
  Gate& gate(GateId id);
  GateId find(const std::string& name) const;  // kNullGate when absent
  bool contains(const std::string& name) const;

  std::span<const GateId> inputs() const { return inputs_; }
  std::span<const GateId> outputs() const { return outputs_; }
  std::span<const GateId> dffs() const { return dffs_; }

  // Number of logic gates (everything but ports/constants; DFFs counted).
  // This is the "# Gates" notion used by the paper's Fig. 5 header row.
  std::size_t logic_gate_count() const;
  std::size_t combinational_gate_count() const;

  // --- validation -----------------------------------------------------------
  // Checks structural invariants; throws std::runtime_error describing the
  // first violation found:
  //  - every fanin id is valid and fanin/fanout lists are consistent,
  //  - arity: NOT/BUF/DFF/OUTPUT have exactly 1 fanin, MUX exactly 3,
  //    AND/OR/... at least 2, INPUT/CONST none,
  //  - no combinational cycles (cycles through DFFs are fine).
  void validate() const;

  // Iteration over all ids.
  std::vector<GateId> all_ids() const;

 private:
  void link_fanout(GateId gate);
  void unlink_fanout(GateId gate);

  std::string name_;
  std::vector<Gate> gates_;
  // diac-lint: allow(D2) lookup-only name->id index; nothing iterates it,
  // and every traversal surface (all_ids, inputs/outputs/dffs) is a vector
  std::unordered_map<std::string, GateId> by_name_;
  std::vector<GateId> inputs_;
  std::vector<GateId> outputs_;
  std::vector<GateId> dffs_;
};

// Expected fan-in arity for `kind`: {min, max} (max = -1 means unbounded).
std::pair<int, int> arity(GateKind kind);

}  // namespace diac
