#include "netlist/generators.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace diac::gen {

namespace {

// Samples a readable signal (anything except OUTPUT ports).
GateId sample_signal(const Netlist& nl, SplitMix64& rng) {
  for (;;) {
    const GateId id = static_cast<GateId>(rng.below(nl.size()));
    if (nl.gate(id).kind != GateKind::kOutput) return id;
  }
}

GateKind pick_kind(const GateMix& mix, SplitMix64& rng) {
  struct Entry { GateKind kind; double w; };
  const Entry entries[] = {
      {GateKind::kNand, mix.nand_w}, {GateKind::kNor, mix.nor_w},
      {GateKind::kAnd, mix.and_w},   {GateKind::kOr, mix.or_w},
      {GateKind::kXor, mix.xor_w},   {GateKind::kXnor, mix.xnor_w},
      {GateKind::kNot, mix.not_w},   {GateKind::kMux, mix.mux_w},
      {GateKind::kDff, mix.dff_w},
  };
  double total = 0;
  for (const auto& e : entries) total += e.w;
  double x = rng.uniform(0.0, total);
  for (const auto& e : entries) {
    if (x < e.w) return e.kind;
    x -= e.w;
  }
  return GateKind::kNand;
}

}  // namespace

GateMix mix_generic() { return GateMix{}; }

GateMix mix_arithmetic() {
  GateMix m;
  m.xor_w = 4; m.xnor_w = 2; m.and_w = 4; m.nand_w = 2; m.or_w = 2;
  m.nor_w = 1; m.not_w = 0.5; m.mux_w = 0.5; m.dff_w = 0.3;
  return m;
}

GateMix mix_control() {
  GateMix m;
  m.nand_w = 4; m.nor_w = 3; m.mux_w = 2; m.not_w = 2; m.and_w = 2;
  m.or_w = 2; m.xor_w = 0.5; m.xnor_w = 0.3; m.dff_w = 1.5;
  return m;
}

GateMix mix_cipher() {
  GateMix m;
  m.xor_w = 6; m.xnor_w = 2; m.and_w = 2; m.nand_w = 1; m.or_w = 1;
  m.nor_w = 0.5; m.not_w = 1; m.mux_w = 0.5; m.dff_w = 0.8;
  return m;
}

GateMix mix_datapath() {
  GateMix m;
  m.mux_w = 4; m.nand_w = 2; m.and_w = 2; m.or_w = 2; m.xor_w = 2;
  m.nor_w = 1; m.not_w = 1; m.xnor_w = 0.5; m.dff_w = 1.0;
  return m;
}

GateId xor_reduce(Netlist& nl, std::vector<GateId> signals) {
  if (signals.empty()) {
    throw std::invalid_argument("xor_reduce: no signals");
  }
  while (signals.size() > 1) {
    std::vector<GateId> next;
    next.reserve(signals.size() / 2 + 1);
    for (std::size_t i = 0; i + 1 < signals.size(); i += 2) {
      next.push_back(nl.add(GateKind::kXor, {signals[i], signals[i + 1]}));
    }
    if (signals.size() % 2) next.push_back(signals.back());
    signals = std::move(next);
  }
  return signals[0];
}

std::pair<GateId, GateId> full_adder(Netlist& nl, GateId a, GateId b, GateId cin) {
  const GateId axb = nl.add(GateKind::kXor, {a, b});
  const GateId sum = nl.add(GateKind::kXor, {axb, cin});
  const GateId ab = nl.add(GateKind::kAnd, {a, b});
  const GateId cx = nl.add(GateKind::kAnd, {axb, cin});
  const GateId carry = nl.add(GateKind::kOr, {ab, cx});
  return {sum, carry};
}

void grow_to(Netlist& nl, std::size_t target, SplitMix64& rng, const GateMix& mix) {
  // Dangling signals: logic gates nothing reads yet.  The closing XOR tree
  // over k dangling signals costs exactly k-1 gates, so the growth loop
  // keeps `logic + (dangling-1) <= target` as its invariant.
  auto count_dangling = [&nl] {
    std::vector<GateId> d;
    for (GateId id = 0; id < nl.size(); ++id) {
      const Gate& g = nl.gate(id);
      if (is_logic(g.kind) && g.fanout.empty()) d.push_back(id);
    }
    return d;
  };

  std::vector<GateId> dangling = count_dangling();
  std::size_t logic = nl.logic_gate_count();
  const std::size_t closing = dangling.empty() ? 0 : dangling.size() - 1;
  if (logic + closing > target) {
    throw std::invalid_argument("grow_to: '" + nl.name() + "' already has " +
                                std::to_string(logic) + "+" + std::to_string(closing) +
                                " gates, target " + std::to_string(target));
  }
  if (logic == target && dangling.empty()) return;

  auto take_dangling = [&]() -> GateId {
    const std::size_t i = rng.below(dangling.size());
    const GateId id = dangling[i];
    dangling[i] = dangling.back();
    dangling.pop_back();
    return id;
  };

  auto closing_cost = [&dangling]() -> std::size_t {
    return dangling.empty() ? 0 : dangling.size() - 1;
  };
  while (logic + closing_cost() < target) {
    const GateKind kind = pick_kind(mix, rng);
    const std::size_t budget = target - logic - closing_cost();
    // Adding a gate that consumes c dangling signals changes
    // logic + closing_cost by (2 - c) when dangling is non-empty, and by 1
    // when it is empty.  With budget == 1 and dangling present we must
    // consume exactly one dangling signal to avoid overshooting the target.
    const bool must_consume = !dangling.empty() && budget == 1;
    // Keep the dangling set small so the closing tree stays cheap.
    const bool prefer_dangling = dangling.size() > 12 || budget < 4;

    std::vector<GateId> fanin;
    bool consumed = false;
    auto operand = [&]() -> GateId {
      const bool want_dangling =
          (must_consume && !consumed) || prefer_dangling || rng.chance(0.5);
      if (!dangling.empty() && want_dangling && !(must_consume && consumed)) {
        consumed = true;
        return take_dangling();
      }
      return sample_signal(nl, rng);
    };

    switch (kind) {
      case GateKind::kNot:
      case GateKind::kDff:
        fanin = {operand()};
        break;
      case GateKind::kMux:
        fanin = {operand(), operand(), operand()};
        break;
      default: {
        // 2-input mostly; occasionally 3-4 wide.
        int n = 2;
        if (rng.chance(0.15)) n = 3;
        if (rng.chance(0.05)) n = 4;
        for (int i = 0; i < n; ++i) fanin.push_back(operand());
      }
    }
    dangling.push_back(nl.add(kind, std::move(fanin)));
    ++logic;
  }

  // Close: XOR-reduce dangling signals into one observable output.
  if (!dangling.empty()) {
    const GateId root = xor_reduce(nl, std::move(dangling));
    nl.add(GateKind::kOutput, nl.name() + "_grow_obs$out", {root});
  }
  nl.validate();
}

Netlist random_logic(const std::string& name, int inputs, int outputs,
                     std::size_t target, std::uint64_t seed) {
  SplitMix64 rng(seed);
  Netlist nl(name);
  std::vector<GateId> ins;
  for (int i = 0; i < inputs; ++i) {
    ins.push_back(nl.add(GateKind::kInput, "pi" + std::to_string(i)));
  }
  // Seed one gate per requested output so grow_to has signals to build on,
  // then grow; the grown logic is folded into extra outputs.
  std::vector<GateId> seeds;
  for (int i = 0; i < outputs; ++i) {
    const GateId a = ins[rng.below(ins.size())];
    const GateId b = ins[rng.below(ins.size())];
    seeds.push_back(nl.add(GateKind::kNand, {a, b}));
  }
  // Reserve the seed gates as real outputs.
  for (int i = 0; i < outputs; ++i) {
    nl.add(GateKind::kOutput, "po" + std::to_string(i) + "$out", {seeds[i]});
  }
  grow_to(nl, target, rng, mix_generic());
  return nl;
}

Netlist array_multiplier(const std::string& name, int bits) {
  if (bits < 2) throw std::invalid_argument("array_multiplier: bits >= 2");
  Netlist nl(name);
  std::vector<GateId> a(bits), b(bits);
  for (int i = 0; i < bits; ++i) a[i] = nl.add(GateKind::kInput, "a" + std::to_string(i));
  for (int i = 0; i < bits; ++i) b[i] = nl.add(GateKind::kInput, "b" + std::to_string(i));

  // Partial products pp[i][j] = a[i] & b[j].
  std::vector<std::vector<GateId>> pp(bits, std::vector<GateId>(bits));
  for (int i = 0; i < bits; ++i) {
    for (int j = 0; j < bits; ++j) {
      pp[i][j] = nl.add(GateKind::kAnd, {a[i], b[j]});
    }
  }

  // Shift-add accumulation: acc holds the running sum; row i adds
  // pp[i][*] at weight offset i with a ripple carry.  Null entries mean
  // "constant zero" and get optimized into half adders / direct wires.
  std::vector<GateId> acc(2 * static_cast<std::size_t>(bits), kNullGate);
  for (int j = 0; j < bits; ++j) acc[static_cast<std::size_t>(j)] = pp[0][j];
  for (int i = 1; i < bits; ++i) {
    GateId carry = kNullGate;
    for (int j = 0; j < bits; ++j) {
      const std::size_t pos = static_cast<std::size_t>(i + j);
      const GateId cur = acc[pos];
      const GateId add = pp[i][j];
      if (cur == kNullGate && carry == kNullGate) {
        acc[pos] = add;
      } else if (cur == kNullGate || carry == kNullGate) {
        const GateId other = cur == kNullGate ? carry : cur;
        acc[pos] = nl.add(GateKind::kXor, {add, other});
        carry = nl.add(GateKind::kAnd, {add, other});
      } else {
        auto [sum, cout] = full_adder(nl, cur, add, carry);
        acc[pos] = sum;
        carry = cout;
      }
    }
    // Carry out of the row lands on the next free column (always null for
    // row i: nothing has been placed at weight i + bits yet).
    if (carry != kNullGate) {
      acc[static_cast<std::size_t>(i + bits)] = carry;
    }
  }

  for (int k = 0; k < 2 * bits; ++k) {
    if (acc[static_cast<std::size_t>(k)] != kNullGate) {
      nl.add(GateKind::kOutput, "p" + std::to_string(k) + "$out",
             {acc[static_cast<std::size_t>(k)]});
    }
  }
  nl.validate();
  return nl;
}

Netlist pld(const std::string& name, int inputs, int product_terms, int outputs,
            std::uint64_t seed) {
  SplitMix64 rng(seed);
  Netlist nl(name);
  std::vector<GateId> in(inputs), inv(inputs);
  for (int i = 0; i < inputs; ++i) {
    in[i] = nl.add(GateKind::kInput, "x" + std::to_string(i));
    inv[i] = nl.add(GateKind::kNot, {in[i]});
  }
  // AND plane: each product term samples 2-4 literals.
  std::vector<GateId> terms;
  for (int t = 0; t < product_terms; ++t) {
    const int lits = static_cast<int>(rng.between(2, 4));
    std::vector<GateId> fanin;
    for (int l = 0; l < lits; ++l) {
      const int var = static_cast<int>(rng.below(inputs));
      fanin.push_back(rng.chance(0.5) ? in[var] : inv[var]);
    }
    terms.push_back(nl.add(GateKind::kAnd, std::move(fanin)));
  }
  // OR plane: each output sums 2-5 terms.
  for (int o = 0; o < outputs; ++o) {
    const int nterms = static_cast<int>(rng.between(2, 5));
    std::vector<GateId> fanin;
    for (int k = 0; k < nterms; ++k) {
      fanin.push_back(terms[rng.below(terms.size())]);
    }
    const GateId sum = nl.add(GateKind::kOr, std::move(fanin));
    nl.add(GateKind::kOutput, "f" + std::to_string(o) + "$out", {sum});
  }
  nl.validate();
  return nl;
}

Netlist fsm_circuit(const std::string& name, int state_bits, int input_bits,
                    int output_bits, std::uint64_t seed) {
  SplitMix64 rng(seed);
  Netlist nl(name);
  std::vector<GateId> in(input_bits);
  for (int i = 0; i < input_bits; ++i) {
    in[i] = nl.add(GateKind::kInput, "in" + std::to_string(i));
  }
  // State register: DFFs with placeholder fanin (fixed up after next-state
  // logic exists).  We seed them reading an input to keep arity valid.
  std::vector<GateId> state(state_bits);
  for (int s = 0; s < state_bits; ++s) {
    state[s] = nl.add(GateKind::kDff, "st" + std::to_string(s), {in[0]});
  }
  auto any_sig = [&](bool allow_state) -> GateId {
    if (allow_state && rng.chance(0.6)) return state[rng.below(state.size())];
    return in[rng.below(in.size())];
  };
  // Next-state logic: two-level AND-OR over {state, inputs} + XOR toggle.
  // Every state bit's first term mixes an input with an inverted signal so
  // the machine is guaranteed to leave the all-zero reset state.
  for (int s = 0; s < state_bits; ++s) {
    std::vector<GateId> terms;
    const GateId stim = in[rng.below(in.size())];
    const GateId inv = nl.add(GateKind::kNot, {any_sig(true)});
    terms.push_back(nl.add(GateKind::kAnd, {stim, inv}));
    const int nterms = static_cast<int>(rng.between(1, 2));
    for (int t = 0; t < nterms; ++t) {
      const GateId x = any_sig(true);
      const GateId y = any_sig(true);
      terms.push_back(nl.add(GateKind::kAnd, {x, y}));
    }
    const GateId orr = nl.add(GateKind::kOr, std::move(terms));
    const GateId nxt = nl.add(GateKind::kXor, {orr, state[s]});
    nl.set_fanin(state[s], {nxt});
  }
  // Moore outputs decode the state.
  for (int o = 0; o < output_bits; ++o) {
    const GateId x = state[rng.below(state.size())];
    const GateId y = state[rng.below(state.size())];
    const GateId dec = nl.add(GateKind::kNand, {x, y});
    nl.add(GateKind::kOutput, "out" + std::to_string(o) + "$out", {dec});
  }
  nl.validate();
  return nl;
}

Netlist majority_voter(const std::string& name, int voters) {
  if (voters < 3 || voters % 2 == 0) {
    throw std::invalid_argument("majority_voter: voters must be odd >= 3");
  }
  Netlist nl(name);
  std::vector<GateId> in(voters);
  for (int i = 0; i < voters; ++i) {
    in[i] = nl.add(GateKind::kInput, "v" + std::to_string(i));
  }
  // Population count via full adders, then threshold compare.
  // Simpler structural majority: sort network of MAJ3 = OR(AND(a,b), AND(c, OR(a,b))).
  std::vector<GateId> layer = in;
  while (layer.size() > 1) {
    std::vector<GateId> next;
    std::size_t i = 0;
    for (; i + 2 < layer.size(); i += 3) {
      const GateId ab = nl.add(GateKind::kAnd, {layer[i], layer[i + 1]});
      const GateId aob = nl.add(GateKind::kOr, {layer[i], layer[i + 1]});
      const GateId c_and = nl.add(GateKind::kAnd, {layer[i + 2], aob});
      next.push_back(nl.add(GateKind::kOr, {ab, c_and}));
    }
    for (; i < layer.size(); ++i) next.push_back(layer[i]);
    if (next.size() == layer.size()) {
      // 2 left: AND them (conservative tie-break).
      const GateId both = nl.add(GateKind::kAnd, {next[0], next[1]});
      next = {both};
    }
    layer = std::move(next);
  }
  nl.add(GateKind::kOutput, "maj$out", {layer[0]});
  nl.validate();
  return nl;
}

Netlist serial_converter(const std::string& name, int width, std::uint64_t seed) {
  SplitMix64 rng(seed);
  Netlist nl(name);
  const GateId din = nl.add(GateKind::kInput, "din");
  const GateId mode = nl.add(GateKind::kInput, "mode");
  // Shift-in register.
  std::vector<GateId> sh(width);
  GateId prev = din;
  for (int i = 0; i < width; ++i) {
    sh[i] = nl.add(GateKind::kDff, "shi" + std::to_string(i), {prev});
    prev = sh[i];
  }
  // Recode: each output stage mixes two taps under mode control.
  std::vector<GateId> recoded(width);
  for (int i = 0; i < width; ++i) {
    const GateId t1 = sh[rng.below(sh.size())];
    const GateId t2 = sh[rng.below(sh.size())];
    const GateId x = nl.add(GateKind::kXor, {t1, t2});
    recoded[i] = nl.add(GateKind::kMux, {mode, sh[i], x});
  }
  // Shift-out register.
  GateId out_prev = recoded[0];
  for (int i = 0; i < width; ++i) {
    const GateId d = i == 0 ? recoded[0]
                            : nl.add(GateKind::kXor, {out_prev, recoded[i]});
    out_prev = nl.add(GateKind::kDff, "sho" + std::to_string(i), {d});
  }
  nl.add(GateKind::kOutput, "dout$out", {out_prev});
  nl.validate();
  return nl;
}

Netlist xor_cipher(const std::string& name, int width, int rounds,
                   std::uint64_t seed) {
  SplitMix64 rng(seed);
  Netlist nl(name);
  std::vector<GateId> block(width), key(width);
  for (int i = 0; i < width; ++i) {
    block[i] = nl.add(GateKind::kInput, "pt" + std::to_string(i));
  }
  for (int i = 0; i < width; ++i) {
    key[i] = nl.add(GateKind::kInput, "k" + std::to_string(i));
  }
  std::vector<GateId> cur = block;
  for (int r = 0; r < rounds; ++r) {
    std::vector<GateId> nxt(width);
    for (int i = 0; i < width; ++i) {
      // S-box-ish: nonlinear mix of two neighbours and a key bit.
      const GateId n1 = cur[(i + 1) % width];
      const GateId n2 = cur[(i + 5 + r) % width];
      const GateId nonlin = nl.add(GateKind::kAnd, {n1, n2});
      const GateId mixed = nl.add(GateKind::kXor, {cur[i], nonlin});
      nxt[i] = nl.add(GateKind::kXor, {mixed, key[(i + r) % width]});
    }
    // Permutation: i -> i*stride + r with stride coprime to the width so
    // the mapping is a true bijection (no wires dropped or duplicated).
    int stride;
    do {
      stride = 1 + static_cast<int>(
                       rng.below(static_cast<std::uint64_t>(width - 1)));
    } while (std::gcd(stride, width) != 1);
    std::vector<GateId> perm(width);
    for (int i = 0; i < width; ++i) perm[i] = nxt[(i * stride + r) % width];
    cur = std::move(perm);
  }
  for (int i = 0; i < width; ++i) {
    nl.add(GateKind::kOutput, "ct" + std::to_string(i) + "$out", {cur[i]});
  }
  nl.validate();
  return nl;
}

Netlist comparator_tree(const std::string& name, int width, int count) {
  if (count < 2) throw std::invalid_argument("comparator_tree: count >= 2");
  Netlist nl(name);
  std::vector<std::vector<GateId>> words(count, std::vector<GateId>(width));
  for (int w = 0; w < count; ++w) {
    for (int b = 0; b < width; ++b) {
      words[w][b] = nl.add(GateKind::kInput,
                           "w" + std::to_string(w) + "_" + std::to_string(b));
    }
  }
  // a > b comparator (MSB-first ripple), then mux-select max and min.
  auto greater = [&](const std::vector<GateId>& a, const std::vector<GateId>& b) {
    GateId gt = kNullGate, eq = kNullGate;
    for (int i = width - 1; i >= 0; --i) {
      const GateId nb = nl.add(GateKind::kNot, {b[i]});
      const GateId a_gt_b = nl.add(GateKind::kAnd, {a[i], nb});
      const GateId a_eq_b = nl.add(GateKind::kXnor, {a[i], b[i]});
      if (gt == kNullGate) {
        gt = a_gt_b;
        eq = a_eq_b;
      } else {
        const GateId t = nl.add(GateKind::kAnd, {eq, a_gt_b});
        gt = nl.add(GateKind::kOr, {gt, t});
        eq = nl.add(GateKind::kAnd, {eq, a_eq_b});
      }
    }
    return gt;
  };
  auto select = [&](GateId sel, const std::vector<GateId>& when1,
                    const std::vector<GateId>& when0) {
    std::vector<GateId> out(width);
    for (int i = 0; i < width; ++i) {
      out[i] = nl.add(GateKind::kMux, {sel, when0[i], when1[i]});
    }
    return out;
  };
  // Tree reduction for max; chain for min over the max-losers is overkill —
  // compute min with a second tree.
  auto reduce = [&](bool want_max) {
    std::vector<std::vector<GateId>> layer = words;
    while (layer.size() > 1) {
      std::vector<std::vector<GateId>> next;
      for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
        const GateId gt = greater(layer[i], layer[i + 1]);
        next.push_back(want_max ? select(gt, layer[i], layer[i + 1])
                                : select(gt, layer[i + 1], layer[i]));
      }
      if (layer.size() % 2) next.push_back(layer.back());
      layer = std::move(next);
    }
    return layer[0];
  };
  const auto maxw = reduce(true);
  const auto minw = reduce(false);
  for (int i = 0; i < width; ++i) {
    nl.add(GateKind::kOutput, "max" + std::to_string(i) + "$out", {maxw[i]});
    nl.add(GateKind::kOutput, "min" + std::to_string(i) + "$out", {minw[i]});
  }
  nl.validate();
  return nl;
}

Netlist alu_datapath(const std::string& name, int width, std::uint64_t seed) {
  SplitMix64 rng(seed);
  (void)rng;
  Netlist nl(name);
  std::vector<GateId> a(width), b(width);
  for (int i = 0; i < width; ++i) a[i] = nl.add(GateKind::kInput, "ra" + std::to_string(i));
  for (int i = 0; i < width; ++i) b[i] = nl.add(GateKind::kInput, "rb" + std::to_string(i));
  const GateId op0 = nl.add(GateKind::kInput, "op0");
  const GateId op1 = nl.add(GateKind::kInput, "op1");

  // Operand registers.
  std::vector<GateId> ra(width), rb(width);
  for (int i = 0; i < width; ++i) ra[i] = nl.add(GateKind::kDff, {a[i]});
  for (int i = 0; i < width; ++i) rb[i] = nl.add(GateKind::kDff, {b[i]});

  // ADD (ripple), AND, OR, XOR lanes, 4:1 mux via two mux levels.
  std::vector<GateId> add(width), andl(width), orl(width), xorl(width);
  GateId carry = nl.add(GateKind::kConst0, "c0");
  for (int i = 0; i < width; ++i) {
    auto [s, c] = full_adder(nl, ra[i], rb[i], carry);
    add[i] = s;
    carry = c;
    andl[i] = nl.add(GateKind::kAnd, {ra[i], rb[i]});
    orl[i] = nl.add(GateKind::kOr, {ra[i], rb[i]});
    xorl[i] = nl.add(GateKind::kXor, {ra[i], rb[i]});
  }
  for (int i = 0; i < width; ++i) {
    const GateId m0 = nl.add(GateKind::kMux, {op0, add[i], andl[i]});
    const GateId m1 = nl.add(GateKind::kMux, {op0, orl[i], xorl[i]});
    const GateId res = nl.add(GateKind::kMux, {op1, m0, m1});
    const GateId rr = nl.add(GateKind::kDff, {res});
    nl.add(GateKind::kOutput, "res" + std::to_string(i) + "$out", {rr});
  }
  nl.add(GateKind::kOutput, "cout$out", {carry});
  nl.validate();
  return nl;
}

Netlist bus_controller(const std::string& name, int masters, int width,
                       std::uint64_t seed) {
  SplitMix64 rng(seed);
  (void)rng;
  Netlist nl(name);
  std::vector<GateId> req(masters);
  for (int m = 0; m < masters; ++m) {
    req[m] = nl.add(GateKind::kInput, "req" + std::to_string(m));
  }
  std::vector<std::vector<GateId>> data(masters, std::vector<GateId>(width));
  for (int m = 0; m < masters; ++m) {
    for (int b = 0; b < width; ++b) {
      data[m][b] = nl.add(GateKind::kInput,
                          "d" + std::to_string(m) + "_" + std::to_string(b));
    }
  }
  // Fixed-priority grant: grant[m] = req[m] & !req[0..m-1].
  std::vector<GateId> grant(masters);
  GateId any_above = kNullGate;
  for (int m = 0; m < masters; ++m) {
    if (m == 0) {
      grant[m] = req[m];
      any_above = req[m];
    } else {
      const GateId none = nl.add(GateKind::kNot, {any_above});
      grant[m] = nl.add(GateKind::kAnd, {req[m], none});
      any_above = nl.add(GateKind::kOr, {any_above, req[m]});
    }
    const GateId gff = nl.add(GateKind::kDff, {grant[m]});
    nl.add(GateKind::kOutput, "gnt" + std::to_string(m) + "$out", {gff});
  }
  // Data mux chain onto the bus: bus = OR over (grant[m] & data[m]).
  for (int b = 0; b < width; ++b) {
    std::vector<GateId> lanes;
    for (int m = 0; m < masters; ++m) {
      lanes.push_back(nl.add(GateKind::kAnd, {grant[m], data[m][b]}));
    }
    const GateId bus = lanes.size() > 1 ? nl.add(GateKind::kOr, std::move(lanes))
                                        : lanes[0];
    const GateId bff = nl.add(GateKind::kDff, {bus});
    nl.add(GateKind::kOutput, "bus" + std::to_string(b) + "$out", {bff});
  }
  nl.validate();
  return nl;
}

}  // namespace diac::gen
