#include "netlist/suite.hpp"

#include <stdexcept>

#include "netlist/generators.hpp"

namespace diac {

const char* to_string(BenchmarkSuite suite) {
  switch (suite) {
    case BenchmarkSuite::kIscas89: return "ISCAS-89";
    case BenchmarkSuite::kItc99: return "ITC-99";
    case BenchmarkSuite::kMcnc: return "MCNC";
  }
  return "?";
}

const std::vector<BenchmarkSpec>& benchmark_suite() {
  static const std::vector<BenchmarkSpec> specs = {
      // --- ISCAS-89 (Fig. 5 columns 1-12) ---------------------------------
      {"s27", BenchmarkSuite::kIscas89, "Logic", 10, 0x1001},
      {"s208", BenchmarkSuite::kIscas89, "PLD", 119, 0x1002},
      {"s344", BenchmarkSuite::kIscas89, "4-bit Multiplier", 161, 0x1003},
      {"s349", BenchmarkSuite::kIscas89, "TLC", 164, 0x1004},
      {"s382", BenchmarkSuite::kIscas89, "Fractional Multiplier", 218, 0x1005},
      {"s386", BenchmarkSuite::kIscas89, "PLD", 193, 0x1006},
      {"s510", BenchmarkSuite::kIscas89, "Fractional Multiplier", 289, 0x1007},
      {"s820", BenchmarkSuite::kIscas89, "Logic", 446, 0x1008},
      {"s953", BenchmarkSuite::kIscas89, "Logic", 529, 0x1009},
      {"s1238", BenchmarkSuite::kIscas89, "Logic", 657, 0x100A},
      {"s13207", BenchmarkSuite::kIscas89, "Logic", 9772, 0x100B},
      {"s38417", BenchmarkSuite::kIscas89, "Logic", 19253, 0x100C},
      // --- ITC-99 (function classes match the b* documentation) ------------
      {"b02", BenchmarkSuite::kItc99, "BCD FSM", 22, 0x2001},
      {"b04", BenchmarkSuite::kItc99, "Elaborate CM", 861, 0x2002},
      {"b09", BenchmarkSuite::kItc99, "S-to-S Converter", 129, 0x2003},
      {"b10", BenchmarkSuite::kItc99, "Voting System", 155, 0x2004},
      {"b11", BenchmarkSuite::kItc99, "Scramble string", 437, 0x2005},
      {"b12", BenchmarkSuite::kItc99, "Guess a sequence", 904, 0x2006},
      {"b13", BenchmarkSuite::kItc99, "I/F to sensor", 266, 0x2007},
      {"b14", BenchmarkSuite::kItc99, "Viper processor", 4444, 0x2008},
      // --- MCNC -------------------------------------------------------------
      {"bigkey", BenchmarkSuite::kMcnc, "Key Encryption", 2383, 0x3001},
      {"dsip", BenchmarkSuite::kMcnc, "Bus Interface", 5763, 0x3002},
      {"des_core", BenchmarkSuite::kMcnc, "Encryption Circuit", 744, 0x3003},
      {"sbc", BenchmarkSuite::kMcnc, "Bus Controller", 490, 0x3004},
  };
  return specs;
}

std::vector<BenchmarkSpec> benchmarks_in(BenchmarkSuite suite) {
  std::vector<BenchmarkSpec> out;
  for (const auto& spec : benchmark_suite()) {
    if (spec.suite == suite) out.push_back(spec);
  }
  return out;
}

const BenchmarkSpec& benchmark_spec(const std::string& name) {
  for (const auto& spec : benchmark_suite()) {
    if (spec.name == name) return spec;
  }
  throw std::invalid_argument("benchmark_spec: unknown benchmark '" + name + "'");
}

namespace {

// Builds the function-class kernel sized comfortably below the target so
// grow_to can reach the exact count.
Netlist build_kernel(const BenchmarkSpec& spec, SplitMix64& rng) {
  using namespace gen;
  const std::size_t target = spec.gate_count;
  const std::string& cls = spec.function_class;

  if (cls == "Logic") {
    const int ins = target < 50 ? 4 : target < 1000 ? 16 : 48;
    const int outs = target < 50 ? 2 : target < 1000 ? 8 : 24;
    // random_logic grows to the target itself.
    return random_logic(spec.name, ins, outs, target, spec.seed);
  }
  if (cls == "PLD") {
    // Two-level planes sized to roughly half the target.
    const int ins = 10;
    const int terms = static_cast<int>(target / 8) + 2;
    const int outs = 6;
    return pld(spec.name, ins, terms, outs, spec.seed);
  }
  if (cls == "4-bit Multiplier") return array_multiplier(spec.name, 4);
  if (cls == "Fractional Multiplier") {
    // Fractional multipliers in the suite are slightly larger; a 4- or
    // 5-bit array kernel fits under both targets (218, 289).
    return array_multiplier(spec.name, target >= 280 ? 5 : 4);
  }
  if (cls == "TLC") return fsm_circuit(spec.name, 5, 4, 5, spec.seed);
  if (cls == "BCD FSM") return fsm_circuit(spec.name, 3, 2, 2, spec.seed);
  if (cls == "Guess a sequence") return fsm_circuit(spec.name, 10, 6, 6, spec.seed);
  if (cls == "I/F to sensor") return fsm_circuit(spec.name, 8, 6, 8, spec.seed);
  if (cls == "Elaborate CM") return comparator_tree(spec.name, 8, 4);
  if (cls == "S-to-S Converter") return serial_converter(spec.name, 8, spec.seed);
  if (cls == "Voting System") return majority_voter(spec.name, 9);
  if (cls == "Scramble string") return xor_cipher(spec.name, 16, 3, spec.seed);
  if (cls == "Key Encryption") return xor_cipher(spec.name, 32, 6, spec.seed);
  if (cls == "Encryption Circuit") return xor_cipher(spec.name, 16, 4, spec.seed);
  if (cls == "Viper processor") return alu_datapath(spec.name, 16, spec.seed);
  if (cls == "Bus Interface") return bus_controller(spec.name, 8, 32, spec.seed);
  if (cls == "Bus Controller") return bus_controller(spec.name, 4, 16, spec.seed);
  (void)rng;
  throw std::invalid_argument("build_kernel: unknown function class '" + cls + "'");
}

gen::GateMix mix_for(const std::string& cls) {
  using namespace gen;
  if (cls.find("Multiplier") != std::string::npos || cls == "Elaborate CM") {
    return mix_arithmetic();
  }
  if (cls.find("Encryption") != std::string::npos || cls == "Scramble string") {
    return mix_cipher();
  }
  if (cls == "Viper processor" || cls.find("Bus") != std::string::npos) {
    return mix_datapath();
  }
  if (cls.find("FSM") != std::string::npos || cls == "TLC" ||
      cls == "Guess a sequence" || cls == "I/F to sensor" ||
      cls == "Voting System" || cls == "S-to-S Converter") {
    return mix_control();
  }
  return mix_generic();
}

}  // namespace

Netlist build_benchmark(const BenchmarkSpec& spec) {
  SplitMix64 rng(spec.seed ^ 0xD1ACD1ACD1ACD1ACULL);
  Netlist nl = build_kernel(spec, rng);
  if (nl.logic_gate_count() != spec.gate_count) {
    gen::grow_to(nl, spec.gate_count, rng, mix_for(spec.function_class));
  }
  if (nl.logic_gate_count() != spec.gate_count) {
    throw std::logic_error("build_benchmark: '" + spec.name + "' has " +
                           std::to_string(nl.logic_gate_count()) +
                           " gates, expected " + std::to_string(spec.gate_count));
  }
  nl.validate();
  return nl;
}

Netlist build_benchmark(const std::string& name) {
  return build_benchmark(benchmark_spec(name));
}

}  // namespace diac
