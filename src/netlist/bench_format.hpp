// ISCAS-89 `.bench` format reader/writer.
//
// Grammar (case-insensitive keywords, '#' comments):
//   INPUT(a)
//   OUTPUT(z)
//   g1 = NAND(a, b)
//   q  = DFF(d)
// Supported functions: BUF/BUFF, NOT/INV, AND, NAND, OR, NOR, XOR, XNOR,
// MUX (3 operands: sel, a, b), DFF, plus CONST0/CONST1 (vdd/gnd aliases).
//
// This lets users drop in the real ISCAS-89 / ITC-99 (bench-converted)
// circuit files; the repository's own experiments use the structural
// generators in `netlist/generators.hpp` sized to the paper's gate counts.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace diac {

// Parses `.bench` text; throws std::runtime_error with a line number on any
// syntax error, undefined signal, or duplicate definition.
Netlist parse_bench(std::istream& in, const std::string& name = "top");
Netlist parse_bench_string(const std::string& text, const std::string& name = "top");
Netlist parse_bench_file(const std::string& path);

// Writes `.bench` text.  Round-trips with parse_bench (modulo formatting).
void write_bench(std::ostream& out, const Netlist& nl);
std::string to_bench_string(const Netlist& nl);

}  // namespace diac
