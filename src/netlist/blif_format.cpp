#include "netlist/blif_format.hpp"

#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace diac {

namespace {

[[noreturn]] void fail(int line, const std::string& what) {
  throw std::runtime_error("blif parse error at line " + std::to_string(line) +
                           ": " + what);
}

std::vector<std::string> tokens(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream ss(line);
  std::string tok;
  while (ss >> tok) out.push_back(tok);
  return out;
}

struct Cover {
  std::vector<std::string> signals;  // inputs..., output last
  std::vector<std::string> rows;     // "<mask> <val>" as raw tokens joined
  int line = 0;
};

struct Latch {
  std::string input;
  std::string output;
  int line = 0;
};

}  // namespace

Netlist parse_blif(std::istream& in) {
  std::string model = "top";
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::vector<Cover> covers;
  std::vector<Latch> latches;

  // --- tokenize into logical lines (handle '\' continuations, comments) ---
  std::string raw;
  int line_no = 0;
  Cover* open_cover = nullptr;
  bool in_model = false;
  bool done = false;

  while (!done && std::getline(in, raw)) {
    ++line_no;
    std::string line = raw;
    if (auto hash = line.find('#'); hash != std::string::npos) line.resize(hash);
    // Continuations.
    while (!line.empty() && line.back() == '\\') {
      line.pop_back();
      std::string next;
      if (!std::getline(in, next)) break;
      ++line_no;
      if (auto hash = next.find('#'); hash != std::string::npos) next.resize(hash);
      line += next;
    }
    const auto toks = tokens(line);
    if (toks.empty()) continue;

    const std::string& head = toks[0];
    if (head[0] == '.') open_cover = nullptr;

    if (head == ".model") {
      if (in_model) {
        done = true;  // only the first model
        continue;
      }
      in_model = true;
      if (toks.size() > 1) model = toks[1];
    } else if (head == ".inputs") {
      inputs.insert(inputs.end(), toks.begin() + 1, toks.end());
    } else if (head == ".outputs") {
      outputs.insert(outputs.end(), toks.begin() + 1, toks.end());
    } else if (head == ".names") {
      if (toks.size() < 2) fail(line_no, ".names needs at least an output");
      covers.push_back({{toks.begin() + 1, toks.end()}, {}, line_no});
      open_cover = &covers.back();
    } else if (head == ".latch") {
      if (toks.size() < 3) fail(line_no, ".latch needs input and output");
      latches.push_back({toks[1], toks[2], line_no});
    } else if (head == ".end") {
      done = true;
    } else if (head == ".exdc" || head == ".subckt" || head == ".gate" ||
               head == ".mlatch" || head == ".clock") {
      fail(line_no, "unsupported BLIF construct '" + head + "'");
    } else if (head[0] == '.') {
      // Ignore benign annotations (.default_input_arrival etc.).
      continue;
    } else {
      // Cover row.
      if (open_cover == nullptr) fail(line_no, "cover row outside .names");
      if (open_cover->signals.size() == 1) {
        // Constant: single token '1' or '0'.
        if (toks.size() != 1 || (toks[0] != "1" && toks[0] != "0")) {
          fail(line_no, "constant cover must be a single 0/1");
        }
        open_cover->rows.push_back(toks[0]);
      } else {
        if (toks.size() != 2) fail(line_no, "cover row must be <mask> <value>");
        if (toks[0].size() != open_cover->signals.size() - 1) {
          fail(line_no, "cover mask width mismatch");
        }
        open_cover->rows.push_back(toks[0] + " " + toks[1]);
      }
    }
  }

  // --- build the netlist ---------------------------------------------------
  Netlist nl(model);
  for (const auto& name : inputs) nl.add(GateKind::kInput, name);
  // Declare latch outputs first (they may be used before definition).
  for (const auto& l : latches) nl.add(GateKind::kDff, l.output);
  // Declare cover outputs (kBuf placeholders whose kind is finalized
  // during synthesis below, via set_fanin on a replacement gate).  To keep
  // ids stable we synthesize cover bodies after all outputs exist, using
  // auxiliary gates and a final BUF from body to the named signal.
  for (const auto& c : covers) {
    const std::string& out = c.signals.back();
    if (nl.contains(out)) fail(c.line, "duplicate definition of '" + out + "'");
    nl.add(GateKind::kBuf, out);
  }

  auto resolve = [&](const std::string& name, int line) {
    const GateId id = nl.find(name);
    if (id == kNullGate) fail(line, "undefined signal '" + name + "'");
    return id;
  };

  for (const auto& c : covers) {
    const GateId out = nl.find(c.signals.back());
    if (c.signals.size() == 1) {
      // Constant cover.
      const bool one = !c.rows.empty() && c.rows[0] == "1";
      const GateId k = nl.add(one ? GateKind::kConst1 : GateKind::kConst0);
      nl.set_fanin(out, {k});
      continue;
    }
    if (c.rows.empty()) {
      // Empty cover = constant 0 per BLIF semantics.
      const GateId k = nl.add(GateKind::kConst0);
      nl.set_fanin(out, {k});
      continue;
    }
    std::vector<GateId> ins;
    for (std::size_t i = 0; i + 1 < c.signals.size(); ++i) {
      ins.push_back(resolve(c.signals[i], c.line));
    }
    // Rows: AND of literals each; OR them; invert for off-set covers.
    bool off_set = false;
    std::vector<GateId> terms;
    for (const auto& row : c.rows) {
      const auto sp = row.find(' ');
      const std::string mask = row.substr(0, sp);
      const std::string val = row.substr(sp + 1);
      off_set = val == "0";
      std::vector<GateId> literals;
      for (std::size_t i = 0; i < mask.size(); ++i) {
        if (mask[i] == '1') {
          literals.push_back(ins[i]);
        } else if (mask[i] == '0') {
          literals.push_back(nl.add(GateKind::kNot, {ins[i]}));
        } else if (mask[i] != '-') {
          fail(c.line, "bad cover character '" + std::string(1, mask[i]) + "'");
        }
      }
      GateId term;
      if (literals.empty()) {
        term = nl.add(GateKind::kConst1);
      } else if (literals.size() == 1) {
        term = literals[0];
      } else {
        term = nl.add(GateKind::kAnd, std::move(literals));
      }
      terms.push_back(term);
    }
    GateId body = terms.size() == 1 ? terms[0]
                                    : nl.add(GateKind::kOr, std::move(terms));
    if (off_set) body = nl.add(GateKind::kNot, {body});
    nl.set_fanin(out, {body});
  }

  for (const auto& l : latches) {
    nl.set_fanin(resolve(l.output, l.line), {resolve(l.input, l.line)});
  }
  for (const auto& out_name : outputs) {
    const GateId src = nl.find(out_name);
    if (src == kNullGate) {
      throw std::runtime_error("blif parse error: .outputs signal '" +
                               out_name + "' has no driver");
    }
    nl.add(GateKind::kOutput, out_name + "$out", {src});
  }
  nl.validate();
  return nl;
}

Netlist parse_blif_string(const std::string& text) {
  std::istringstream is(text);
  return parse_blif(is);
}

Netlist parse_blif_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open blif file: " + path);
  return parse_blif(f);
}

namespace {

// Emits one gate as a .names cover.
void write_cover(std::ostream& out, const Netlist& nl, const Gate& g) {
  auto sig = [&](GateId id) { return nl.gate(id).name; };
  const int n = g.fanin_count();
  out << ".names";
  for (GateId f : g.fanin) out << ' ' << sig(f);
  out << ' ' << g.name << '\n';
  auto all = [&](char c, char v) {
    out << std::string(static_cast<std::size_t>(n), c) << ' ' << v << '\n';
  };
  switch (g.kind) {
    case GateKind::kConst0: break;  // empty on-set == constant 0
    case GateKind::kConst1: out << "1\n"; break;
    case GateKind::kBuf: out << "1 1\n"; break;
    case GateKind::kNot: out << "0 1\n"; break;
    case GateKind::kAnd: all('1', '1'); break;
    case GateKind::kNand: all('1', '0'); break;
    case GateKind::kOr:
    case GateKind::kNor: {
      // One row per input with that input = 1.
      for (int i = 0; i < n; ++i) {
        std::string mask(static_cast<std::size_t>(n), '-');
        mask[static_cast<std::size_t>(i)] = '1';
        out << mask << ' ' << (g.kind == GateKind::kOr ? '1' : '0') << '\n';
      }
      break;
    }
    case GateKind::kXor:
    case GateKind::kXnor: {
      // Enumerate odd-parity rows (fan-in is small in practice).
      const int combos = 1 << n;
      for (int v = 0; v < combos; ++v) {
        int ones = 0;
        std::string mask;
        for (int i = 0; i < n; ++i) {
          const bool bit = (v >> i) & 1;
          ones += bit;
          mask += bit ? '1' : '0';
        }
        if (ones % 2 == 1) {
          out << mask << ' ' << (g.kind == GateKind::kXor ? '1' : '0') << '\n';
        }
      }
      break;
    }
    case GateKind::kMux:
      // fanin = {sel, a, b}: out = sel ? b : a.
      out << "01- 1\n";
      out << "1-1 1\n";
      break;
    default:
      throw std::logic_error("write_cover: unsupported kind");
  }
}

}  // namespace

void write_blif(std::ostream& out, const Netlist& nl) {
  out << ".model " << nl.name() << '\n';
  out << ".inputs";
  for (GateId id : nl.inputs()) out << ' ' << nl.gate(id).name;
  out << '\n';
  out << ".outputs";
  for (GateId id : nl.outputs()) {
    out << ' ' << nl.gate(nl.gate(id).fanin.at(0)).name;
  }
  out << '\n';
  for (GateId id : nl.dffs()) {
    const Gate& g = nl.gate(id);
    out << ".latch " << nl.gate(g.fanin.at(0)).name << ' ' << g.name
        << " 0\n";
  }
  for (GateId id : nl.all_ids()) {
    const Gate& g = nl.gate(id);
    if (!is_combinational(g.kind) && g.kind != GateKind::kConst0 &&
        g.kind != GateKind::kConst1) {
      continue;
    }
    if (g.kind == GateKind::kConst0 || g.kind == GateKind::kConst1 ||
        is_combinational(g.kind)) {
      write_cover(out, nl, g);
    }
  }
  out << ".end\n";
}

std::string to_blif_string(const Netlist& nl) {
  std::ostringstream os;
  write_blif(os, nl);
  return os.str();
}

}  // namespace diac
