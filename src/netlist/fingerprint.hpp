// Canonical netlist fingerprinting for the content-addressed result
// cache.
//
// Two Netlist objects that describe the same circuit must hash to the
// same digest even when their gates were *declared* in a different
// order (parsers, generators and transforms are free to emit gates in
// any order without invalidating cached results — the same invariance
// the determinism_order tests pin for report bytes).  The fingerprint
// therefore serializes gates sorted by their unique name, with fanins
// referenced by name (fanin *order* is kept: it is semantic for MUX
// select/data pins and for port matching).
#pragma once

#include "netlist/netlist.hpp"
#include "util/hash128.hpp"

namespace diac {

// Digest of the circuit's structure: name-sorted gates, each with its
// kind and in-order fanin name list.  Invariant under gate declaration
// order and fanout bookkeeping; sensitive to any change in gate names,
// kinds or connectivity.  The netlist's own name() is deliberately
// excluded — renaming a circuit does not change its results.
Hash128 canonical_fingerprint(const Netlist& nl);

}  // namespace diac
