#include "netlist/logic_sim.hpp"

#include <stdexcept>

#include "netlist/analysis.hpp"

namespace diac {

Word eval_gate(GateKind kind, const std::vector<Word>& operands) {
  auto all = [&](Word init, auto op) {
    Word acc = init;
    for (Word w : operands) acc = op(acc, w);
    return acc;
  };
  switch (kind) {
    case GateKind::kConst0: return 0;
    case GateKind::kConst1: return ~Word{0};
    case GateKind::kBuf:
    case GateKind::kOutput:
      return operands[0];
    case GateKind::kNot: return ~operands[0];
    case GateKind::kAnd: return all(~Word{0}, [](Word a, Word b) { return a & b; });
    case GateKind::kNand: return ~all(~Word{0}, [](Word a, Word b) { return a & b; });
    case GateKind::kOr: return all(Word{0}, [](Word a, Word b) { return a | b; });
    case GateKind::kNor: return ~all(Word{0}, [](Word a, Word b) { return a | b; });
    case GateKind::kXor: return all(Word{0}, [](Word a, Word b) { return a ^ b; });
    case GateKind::kXnor: return ~all(Word{0}, [](Word a, Word b) { return a ^ b; });
    case GateKind::kMux: {
      const Word sel = operands[0];
      return (~sel & operands[1]) | (sel & operands[2]);
    }
    case GateKind::kInput:
    case GateKind::kDff:
      throw std::logic_error("eval_gate: INPUT/DFF values come from state");
  }
  throw std::logic_error("eval_gate: unknown kind");
}

// --- LogicSimulator (compiled-kernel wrapper) -------------------------------

LogicSimulator::LogicSimulator(const Netlist& nl)
    : nl_(&nl), sim_(CompiledNetlist::compile(nl), 1) {}

LogicSimulator::LogicSimulator(const Netlist& nl,
                               std::shared_ptr<const CompiledNetlist> compiled)
    : nl_(&nl), sim_(std::move(compiled), 1) {
  if (sim_.compiled().size() != nl.size()) {
    throw std::invalid_argument(
        "LogicSimulator: compiled netlist does not match the netlist");
  }
}

void LogicSimulator::set_input(GateId input, Word v) {
  if (input >= nl_->size() || nl_->gate(input).kind != GateKind::kInput) {
    throw std::invalid_argument("LogicSimulator::set_input: not an INPUT gate");
  }
  sim_.set_input(input, v);
}

void LogicSimulator::set_input(const std::string& name, Word v) {
  const GateId id = nl_->find(name);
  if (id == kNullGate) {
    throw std::invalid_argument("LogicSimulator::set_input: no gate '" + name + "'");
  }
  set_input(id, v);
}

Word LogicSimulator::value(const std::string& name) const {
  const GateId id = nl_->find(name);
  if (id == kNullGate) {
    throw std::invalid_argument("LogicSimulator::value: no gate '" + name + "'");
  }
  return sim_.value(id);
}

// --- ReferenceSimulator (legacy scalar path) --------------------------------

ReferenceSimulator::ReferenceSimulator(const Netlist& nl)
    : nl_(&nl),
      order_(topological_order(nl)),
      value_(nl.size(), 0),
      dff_state_(nl.dffs().size(), 0),
      dff_index_(nl.size(), kNoDff) {
  dff_d_.reserve(nl.dffs().size());
  for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
    dff_index_[nl.dffs()[i]] = i;
    dff_d_.push_back(nl.gate(nl.dffs()[i]).fanin.at(0));
  }
}

void ReferenceSimulator::set_input(GateId input, Word v) {
  if (nl_->gate(input).kind != GateKind::kInput) {
    throw std::invalid_argument(
        "ReferenceSimulator::set_input: not an INPUT gate");
  }
  value_[input] = v;
}

void ReferenceSimulator::set_input(const std::string& name, Word v) {
  const GateId id = nl_->find(name);
  if (id == kNullGate) {
    throw std::invalid_argument("ReferenceSimulator::set_input: no gate '" +
                                name + "'");
  }
  set_input(id, v);
}

void ReferenceSimulator::settle() {
  std::vector<Word> operands;
  for (GateId id : order_) {
    const Gate& g = nl_->gate(id);
    switch (g.kind) {
      case GateKind::kInput:
        break;  // externally assigned
      case GateKind::kDff:
        value_[id] = dff_state_[dff_index_[id]];
        break;
      default: {
        operands.clear();
        for (GateId f : g.fanin) operands.push_back(value_[f]);
        value_[id] = eval_gate(g.kind, operands);
      }
    }
  }
}

void ReferenceSimulator::step() {
  settle();
  for (std::size_t i = 0; i < dff_d_.size(); ++i) {
    dff_state_[i] = value_[dff_d_[i]];
  }
}

void ReferenceSimulator::run(int cycles) {
  for (int i = 0; i < cycles; ++i) step();
}

Word ReferenceSimulator::value(GateId gate) const { return value_.at(gate); }

Word ReferenceSimulator::value(const std::string& name) const {
  const GateId id = nl_->find(name);
  if (id == kNullGate) {
    throw std::invalid_argument("ReferenceSimulator::value: no gate '" + name +
                                "'");
  }
  return value_.at(id);
}

std::vector<Word> ReferenceSimulator::state() const { return dff_state_; }

void ReferenceSimulator::set_state(const std::vector<Word>& state) {
  if (state.size() != dff_state_.size()) {
    throw std::invalid_argument("ReferenceSimulator::set_state: wrong size");
  }
  dff_state_ = state;
}

std::vector<Word> ReferenceSimulator::output_values() const {
  std::vector<Word> out;
  out.reserve(nl_->outputs().size());
  for (GateId id : nl_->outputs()) out.push_back(value_[id]);
  return out;
}

std::uint64_t ReferenceSimulator::fingerprint() const {
  // FNV-1a over outputs then DFF state.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](Word w) {
    for (int i = 0; i < 8; ++i) {
      h ^= (w >> (8 * i)) & 0xFF;
      h *= 0x100000001b3ULL;
    }
  };
  for (GateId id : nl_->outputs()) mix(value_[id]);
  for (Word w : dff_state_) mix(w);
  return h;
}

}  // namespace diac
