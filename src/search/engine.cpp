#include "search/engine.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <stdexcept>
#include <tuple>

#include "obs/obs.hpp"
#include "runtime/executor.hpp"

namespace diac {

namespace {

// Per-instance energy/time floors a candidate cannot beat, derived from
// the synthesized program and the FSM constants alone.  Operation
// energies jitter by ±op_jitter at run time, so the floor scales by
// (1 - op_jitter); durations are not jittered.  Backup/restore/boundary
// overheads and re-execution only add on top, so these are true lower
// bounds on energy_per_instance() and time_per_instance().
struct InstanceFloors {
  double energy = 0;  // J
  double time = 0;    // s
};

InstanceFloors instance_floors(const TaskProgram& program,
                               const FsmConfig& fsm) {
  const double lo = std::max(0.0, 1.0 - fsm.op_jitter);
  const double packets =
      std::ceil(fsm.transmit_energy / fsm.transmit_packet_energy);
  const double steps = static_cast<double>(program.size());
  InstanceFloors f;
  f.energy = lo * fsm.sense_energy + steps * fsm.dispatch_energy +
             lo * program.instance_energy() +
             packets * lo * fsm.transmit_packet_energy;
  f.time = lo * fsm.sense_energy / fsm.sense_power +
           steps * fsm.dispatch_time + program.instance_duration() +
           packets * lo * fsm.transmit_packet_energy / fsm.transmit_power;
  return f;
}

// The component-wise best cost any run of this candidate could achieve.
// Soundness: if a front member strictly dominates this vector it
// dominates every achievable cost vector, so the candidate can be
// skipped without changing the front.
std::vector<double> optimistic_costs(const SearchObjectives& objectives,
                                     const InstanceFloors& floors,
                                     const SimulatorOptions& simulator) {
  std::vector<double> costs;
  costs.reserve(objectives.size());
  for (ObjectiveKind kind : objectives.kinds) {
    switch (kind) {
      case ObjectiveKind::kPdp:
        costs.push_back(floors.energy * floors.time);
        break;
      case ObjectiveKind::kProgress:
        costs.push_back(-1.0);  // nothing re-executed
        break;
      case ObjectiveKind::kNvmWrites:
        // A run that never executes writes nothing, so no useful floor
        // exists; pruning on this objective needs a zero-write front
        // member.
        costs.push_back(0.0);
        break;
      case ObjectiveKind::kCompletion:
        costs.push_back(-static_cast<double>(simulator.target_instances));
        break;
      case ObjectiveKind::kEnergy:
        costs.push_back(0.0);
        break;
      case ObjectiveKind::kMakespan:
        costs.push_back(simulator.target_instances * floors.time);
        break;
    }
  }
  return costs;
}

}  // namespace

SearchResult run_search(const Netlist& nl, const CellLibrary& lib,
                        const std::vector<DesignPoint>& points,
                        const SearchOptions& options,
                        ExperimentRunner& runner) {
  if (options.objectives.size() == 0) {
    throw std::invalid_argument("run_search: no objectives");
  }
  const std::size_t batch = std::max<std::size_t>(options.batch, 1);

  SearchResult result;
  result.candidates.resize(points.size());

  // --- synthesize every candidate once ---------------------------------
  // The runtime-knob axes don't change the synthesized design, so
  // candidates are deduplicated on the synthesis-relevant axes.  A deque
  // keeps addresses stable for the non-owning job pointers.
  using SynthKey = std::tuple<PolicyKind, double, NvmTechnology, Scheme>;
  std::map<SynthKey, std::size_t> synth_index;
  std::deque<SynthesisResult> synthesized;
  std::vector<std::size_t> design_of(points.size());
  {
    DIAC_TRACE_SPAN_ARG("search.synthesize", "search", "candidates",
                        points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
      const DesignPoint& p = points[i];
      const SynthKey key{p.policy, p.budget_fraction, p.technology, p.scheme};
      auto [it, inserted] = synth_index.try_emplace(key, synthesized.size());
      if (inserted) {
        const DiacSynthesizer synth(nl, lib,
                                    p.synthesis_options(options.synthesis));
        synthesized.push_back(synth.synthesize_scheme(p.scheme));
      }
      design_of[i] = it->second;

      CandidateResult& c = result.candidates[i];
      const SynthesisResult& sr = synthesized[design_of[i]];
      c.point = p;
      c.tasks = sr.design.tree.size();
      c.commit_points = sr.replacement.points.size();
      const TaskProgram program(sr.design, p.fsm_config(options.fsm));
      c.optimistic =
          optimistic_costs(options.objectives,
                           instance_floors(program, p.fsm_config(options.fsm)),
                           options.simulator);
    }
    DIAC_OBS_COUNT("search.unique_designs", synthesized.size());
  }

  // --- one materialized source per scenario ----------------------------
  // Every candidate sees the identical trace; HarvestSource is immutable
  // after construction, so the pool threads share one instance.
  const std::unique_ptr<HarvestSource> source = make_source(
      clamp_scenario_horizon(options.scenario, options.simulator.max_time));

  // --- batched fan-out with between-batch pruning ----------------------
  ParetoFront front(options.objectives.size());
  std::size_t next = 0;
  while (next < points.size()) {
    DIAC_TRACE_SPAN("search.batch", "search");
    std::vector<SimulationJob> jobs;
    std::vector<std::size_t> who;
    while (next < points.size() && jobs.size() < batch) {
      CandidateResult& c = result.candidates[next];
      if (options.prune && front.dominated(c.optimistic)) {
        c.pruned = true;
        ++result.pruned;
        ++next;
        continue;
      }
      jobs.push_back({&synthesized[design_of[next]].design, options.scenario,
                      source.get(), c.point.fsm_config(options.fsm),
                      options.simulator});
      who.push_back(next);
      ++next;
    }
    const std::vector<RunStats> stats = run_simulations(runner, jobs);
    for (std::size_t j = 0; j < who.size(); ++j) {
      CandidateResult& c = result.candidates[who[j]];
      c.stats = stats[j];
      c.costs = options.objectives.costs(stats[j]);
      front.insert(who[j], c.costs);
      ++result.evaluated;
    }
  }

  DIAC_OBS_COUNT("search.candidates", points.size());
  DIAC_OBS_COUNT("search.evaluated", result.evaluated);
  DIAC_OBS_COUNT("search.pruned", result.pruned);

  // --- rank the front ---------------------------------------------------
  result.front = ranked_front(front);
  return result;
}

}  // namespace diac
