/// ParetoFront: incremental strict-dominance pruning over cost vectors.
///
/// Costs are minimized on every coordinate (search/objectives.hpp negates
/// maximized goals).  NaN means "undefined on this objective" and is
/// defined to compare worse than every number and equal to itself, so the
/// comparators are total and deterministic — an all-NaN candidate survives
/// only an otherwise empty front.
///
/// Determinism: the front is a pure function of the (candidate, costs)
/// insertion *set*, not the insertion order, except for one documented
/// rule — exactly equal cost vectors are deduplicated to the lowest
/// candidate index, which is what makes the front canonical when sweeps
/// contain ties.  The search engine inserts results in candidate order
/// between evaluation batches, so fronts (and the pruning decisions taken
/// against them) are bit-identical at any runner thread count.
#pragma once

#include <cstddef>
#include <vector>

namespace diac {

/// Three-way NaN-safe cost comparison: -1 when `a` is better (smaller),
/// +1 when worse, 0 when equal; NaN is worse than any number and equal to
/// NaN.
int compare_cost(double a, double b);

/// Strict Pareto dominance: `a` no worse on every coordinate and strictly
/// better on at least one.  Vectors must have equal arity.
bool dominates(const std::vector<double>& a, const std::vector<double>& b);

/// One non-dominated candidate: its index and its cost vector.
struct FrontEntry {
  std::size_t candidate = 0;  // caller's candidate index
  std::vector<double> costs;
};

/// Incremental strict-dominance front.  Insertion-order independent:
/// exact-cost ties dedup to the lowest candidate index, so the final set
/// is a pure function of the inserted (candidate, costs) multiset.
class ParetoFront {
 public:
  /// `arity` is the objective count; every inserted vector must match it.
  explicit ParetoFront(std::size_t arity);

  std::size_t arity() const { return arity_; }

  /// Offers a candidate.  Returns false (front unchanged) when an entry
  /// dominates `costs`, or ties it exactly with a lower candidate index.
  /// Otherwise removes every entry `costs` dominates (and an exact tie
  /// with a higher index) and inserts; entries stay sorted by candidate
  /// index.  Throws std::invalid_argument on arity mismatch.
  bool insert(std::size_t candidate, const std::vector<double>& costs);

  /// True when some entry strictly dominates `costs` (an exact tie is not
  /// dominance).  This is the pruning test: a candidate whose *optimistic*
  /// cost floor is already dominated can never reach the front.
  bool dominated(const std::vector<double>& costs) const;

  const std::vector<FrontEntry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

 private:
  std::size_t arity_;
  std::vector<FrontEntry> entries_;  // ascending candidate index
};

/// The front's candidate indices in report order: ascending on the first
/// objective (NaN-safe, so undefined outcomes rank last), ties by
/// candidate index.  Shared by the search engine and the shard merge so
/// both rank identically.
std::vector<std::size_t> ranked_front(const ParetoFront& front);

}  // namespace diac
