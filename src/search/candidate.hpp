/// CandidateSpace: the design axes of the paper's "design exploration",
/// promoted to a first-class value type.
///
/// A DesignPoint fixes one candidate along every axis the DIAC flow
/// exposes — tree policy × commit budget × NVM technology × backup scheme
/// × runtime (FsmConfig) knobs.  A CandidateSpace is the cross product of
/// per-axis value lists with a canonical mixed-radix enumeration order, so
/// a candidate's grid index is stable across runs, samplers and thread
/// counts; seeded random sampling selects a deterministic subset of that
/// grid.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "diac/synthesizer.hpp"
#include "runtime/fsm.hpp"

namespace diac {

/// One point of the design space.  `adaptive_sensing` is the runtime knob
/// axis: it changes the FSM configuration, not the synthesized design, so
/// candidates differing only here share one synthesis.
struct DesignPoint {
  PolicyKind policy = PolicyKind::kPolicy3;
  double budget_fraction = 0.25;
  NvmTechnology technology = NvmTechnology::kMram;
  Scheme scheme = Scheme::kDiacOptimized;
  bool adaptive_sensing = false;

  /// "Policy3/0.25/MRAM/DIAC-Optimized/fixed" — the report label.
  std::string label() const;

  /// Overlays the point's synthesis axes on a base option set.
  SynthesisOptions synthesis_options(SynthesisOptions base) const;
  /// Overlays the point's runtime axes on a base FSM configuration.
  FsmConfig fsm_config(FsmConfig base) const;
};

/// The cross product of design axes a search explores; `grid()` and
/// `random()` turn it into concrete DesignPoints in canonical order.
struct CandidateSpace {
  /// Axis value lists (each must be non-empty).  The defaults cover the
  /// paper's exploration: every policy and technology, three commit
  /// budgets, the DIAC-Optimized scheme, and both sensing modes.
  std::vector<PolicyKind> policies = {PolicyKind::kPolicy1,
                                      PolicyKind::kPolicy2,
                                      PolicyKind::kPolicy3};
  std::vector<double> budget_fractions = {0.10, 0.25, 0.50};
  std::vector<NvmTechnology> technologies = {
      NvmTechnology::kMram, NvmTechnology::kReram, NvmTechnology::kFeram,
      NvmTechnology::kPcm};
  std::vector<Scheme> schemes = {Scheme::kDiacOptimized};
  std::vector<bool> adaptive_sensing = {false, true};

  /// Cross-product cardinality; throws std::invalid_argument when an axis
  /// is empty.
  std::size_t size() const;

  /// Decodes grid index `i` (mixed radix, adaptive_sensing fastest,
  /// policy slowest); throws std::out_of_range past size().
  DesignPoint at(std::size_t i) const;

  /// Every candidate in canonical grid order.
  std::vector<DesignPoint> grid() const;

  /// `n` distinct candidates chosen by a seeded draw, returned in
  /// canonical grid order (a deterministic sub-grid, so search results
  /// are reproducible for a given seed).  n >= size() returns the full
  /// grid.
  std::vector<DesignPoint> sample(std::size_t n, std::uint64_t seed) const;
};

}  // namespace diac
