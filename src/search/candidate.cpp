#include "search/candidate.hpp"

#include <set>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/table.hpp"

namespace diac {

std::string DesignPoint::label() const {
  return std::string(to_string(policy)) + "/" +
         Table::num(budget_fraction, 2) + "/" + to_string(technology) + "/" +
         to_string(scheme) + "/" + (adaptive_sensing ? "adaptive" : "fixed");
}

SynthesisOptions DesignPoint::synthesis_options(SynthesisOptions base) const {
  base.policy = policy;
  base.budget_fraction = budget_fraction;
  base.technology = technology;
  return base;
}

FsmConfig DesignPoint::fsm_config(FsmConfig base) const {
  base.adaptive_sensing = adaptive_sensing;
  return base;
}

std::size_t CandidateSpace::size() const {
  if (policies.empty() || budget_fractions.empty() || technologies.empty() ||
      schemes.empty() || adaptive_sensing.empty()) {
    throw std::invalid_argument("CandidateSpace: every axis needs a value");
  }
  return policies.size() * budget_fractions.size() * technologies.size() *
         schemes.size() * adaptive_sensing.size();
}

DesignPoint CandidateSpace::at(std::size_t i) const {
  if (i >= size()) {
    throw std::out_of_range("CandidateSpace: index past the grid");
  }
  DesignPoint p;
  p.adaptive_sensing = adaptive_sensing[i % adaptive_sensing.size()];
  i /= adaptive_sensing.size();
  p.scheme = schemes[i % schemes.size()];
  i /= schemes.size();
  p.technology = technologies[i % technologies.size()];
  i /= technologies.size();
  p.budget_fraction = budget_fractions[i % budget_fractions.size()];
  i /= budget_fractions.size();
  p.policy = policies[i];
  return p;
}

std::vector<DesignPoint> CandidateSpace::grid() const {
  const std::size_t n = size();
  std::vector<DesignPoint> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) points.push_back(at(i));
  return points;
}

std::vector<DesignPoint> CandidateSpace::sample(std::size_t n,
                                                std::uint64_t seed) const {
  const std::size_t total = size();
  if (n >= total) return grid();
  SplitMix64 rng(seed);
  std::set<std::uint64_t> chosen;  // ordered: emits the canonical sub-grid
  while (chosen.size() < n) chosen.insert(rng.below(total));
  std::vector<DesignPoint> points;
  points.reserve(n);
  for (std::uint64_t i : chosen) points.push_back(at(i));
  return points;
}

}  // namespace diac
