/// SearchEngine: evaluates a candidate list over the experiment engine and
/// maintains a Pareto front with provable early pruning.
///
/// Pipeline per search:
///   1. synthesize each candidate once (candidates differing only in
///      runtime knobs share one synthesis),
///   2. materialize the harvest scenario once and share the read-only
///      HarvestSource across every job,
///   3. fan evaluation batches out over an ExperimentRunner, folding each
///      batch into the ParetoFront in candidate order,
///   4. before dispatching a candidate, skip it when its synthesis-time
///      *optimistic* cost floor is already strictly dominated by a front
///      member — the floor is component-wise no worse than any outcome
///      the simulation could produce, so the skip is provably sound (the
///      front with pruning on equals the front with pruning off).
///
/// Determinism: batches are fixed slices of the candidate order, results
/// are assembled in job order, and the front only changes between
/// batches, so the entire search — including every pruning decision — is
/// bit-identical at any runner thread count.
#pragma once

#include <cstddef>
#include <vector>

#include "exp/experiment.hpp"
#include "search/candidate.hpp"
#include "search/objectives.hpp"
#include "search/pareto.hpp"

namespace diac {

struct SearchOptions {
  /// Base configurations; each candidate overlays its axes on these.
  SynthesisOptions synthesis;
  FsmConfig fsm;
  SimulatorOptions simulator;
  /// The harvest scenario every candidate is judged on.
  ScenarioSpec scenario;
  SearchObjectives objectives = SearchObjectives::defaults();
  /// Evaluations fanned out between front updates (and hence between
  /// pruning decisions).  Smaller batches prune more, larger batches give
  /// the runner more parallelism; the result is identical either way.
  std::size_t batch = 16;
  /// Disable to evaluate every candidate (the exhaustive reference the
  /// pruning-soundness test compares against).
  bool prune = true;
};

/// Everything run_search learned about one candidate, in candidate order.
struct CandidateResult {
  DesignPoint point;
  /// Skipped by the synthesis-time bound: `stats`/`costs` are not
  /// populated (the candidate is provably not on the front).
  bool pruned = false;
  RunStats stats{};
  std::vector<double> costs;       // empty when pruned
  std::vector<double> optimistic;  // the synthesis-time cost floor
  std::size_t tasks = 0;           // synthesized tree size
  std::size_t commit_points = 0;   // inserted NVM commit points
};

/// A completed search: every candidate's outcome plus the ranked front.
struct SearchResult {
  std::vector<CandidateResult> candidates;  // in candidate order
  /// Front candidate indices ranked by the first objective (ties by
  /// candidate index).
  std::vector<std::size_t> front;
  std::size_t evaluated = 0;
  std::size_t pruned = 0;
};

/// Runs the search; `points` is the candidate list in canonical order
/// (CandidateSpace::grid() / ::sample()).  Throws on an empty objective
/// list; an empty candidate list yields an empty result.
SearchResult run_search(const Netlist& nl, const CellLibrary& lib,
                        const std::vector<DesignPoint>& points,
                        const SearchOptions& options,
                        ExperimentRunner& runner);

}  // namespace diac
