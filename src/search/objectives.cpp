#include "search/objectives.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace diac {

namespace {
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
}

const char* to_string(ObjectiveKind kind) {
  switch (kind) {
    case ObjectiveKind::kPdp: return "pdp";
    case ObjectiveKind::kProgress: return "progress";
    case ObjectiveKind::kNvmWrites: return "writes";
    case ObjectiveKind::kCompletion: return "completion";
    case ObjectiveKind::kEnergy: return "energy";
    case ObjectiveKind::kMakespan: return "makespan";
  }
  return "?";
}

const char* objective_header(ObjectiveKind kind) {
  switch (kind) {
    case ObjectiveKind::kPdp: return "PDP [mJ*s]";
    case ObjectiveKind::kProgress: return "progress";
    case ObjectiveKind::kNvmWrites: return "writes";
    case ObjectiveKind::kCompletion: return "instances";
    case ObjectiveKind::kEnergy: return "energy [mJ]";
    case ObjectiveKind::kMakespan: return "makespan [s]";
  }
  return "?";
}

ObjectiveKind objective_from_name(const std::string& name) {
  for (int i = 0; i < kObjectiveKindCount; ++i) {
    const auto kind = static_cast<ObjectiveKind>(i);
    if (name == to_string(kind)) return kind;
  }
  throw std::invalid_argument(
      "unknown objective '" + name +
      "' (expected pdp|progress|writes|completion|energy|makespan)");
}

double objective_cost(ObjectiveKind kind, const RunStats& stats) {
  switch (kind) {
    case ObjectiveKind::kPdp:
      // Per-instance PDP is undefined until an instance completed;
      // RunStats::pdp() returns 0 there, which would *win* a
      // minimization — exactly the examples/design_space bug this layer
      // replaces.
      return stats.instances_completed > 0 ? stats.pdp() : kNan;
    case ObjectiveKind::kProgress:
      return -stats.forward_progress();
    case ObjectiveKind::kNvmWrites:
      return static_cast<double>(stats.nvm_writes);
    case ObjectiveKind::kCompletion:
      return -static_cast<double>(stats.instances_completed);
    case ObjectiveKind::kEnergy:
      return stats.energy_consumed;
    case ObjectiveKind::kMakespan:
      // An unfinished run's makespan is just the max_time cutoff, not a
      // completion time.
      return stats.workload_completed ? stats.makespan : kNan;
  }
  return kNan;
}

double objective_display(ObjectiveKind kind, double cost) {
  switch (kind) {
    case ObjectiveKind::kPdp: return cost * 1.0e3;     // J*s -> mJ*s
    case ObjectiveKind::kProgress: return -cost;
    case ObjectiveKind::kNvmWrites: return cost;
    case ObjectiveKind::kCompletion: return -cost;
    case ObjectiveKind::kEnergy: return cost * 1.0e3;  // J -> mJ
    case ObjectiveKind::kMakespan: return cost;
  }
  return cost;
}

SearchObjectives SearchObjectives::parse(const std::string& csv) {
  SearchObjectives objectives;
  std::size_t begin = 0;
  while (begin <= csv.size()) {
    const std::size_t comma = std::min(csv.find(',', begin), csv.size());
    const std::string name = csv.substr(begin, comma - begin);
    if (!name.empty()) {
      const ObjectiveKind kind = objective_from_name(name);
      if (std::find(objectives.kinds.begin(), objectives.kinds.end(), kind) !=
          objectives.kinds.end()) {
        throw std::invalid_argument("duplicate objective '" + name + "'");
      }
      objectives.kinds.push_back(kind);
    }
    begin = comma + 1;
  }
  if (objectives.kinds.empty()) {
    throw std::invalid_argument("objective list is empty");
  }
  return objectives;
}

SearchObjectives SearchObjectives::defaults() {
  return {{ObjectiveKind::kPdp, ObjectiveKind::kProgress}};
}

std::vector<double> SearchObjectives::costs(const RunStats& stats) const {
  std::vector<double> c;
  c.reserve(kinds.size());
  for (ObjectiveKind kind : kinds) c.push_back(objective_cost(kind, stats));
  return c;
}

}  // namespace diac
