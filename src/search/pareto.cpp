#include "search/pareto.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace diac {

int compare_cost(double a, double b) {
  const bool a_nan = std::isnan(a);
  const bool b_nan = std::isnan(b);
  if (a_nan && b_nan) return 0;
  if (a_nan) return 1;
  if (b_nan) return -1;
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;  // covers +0.0 vs -0.0
}

bool dominates(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("dominates: cost arity mismatch");
  }
  bool strict = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const int c = compare_cost(a[i], b[i]);
    if (c > 0) return false;
    if (c < 0) strict = true;
  }
  return strict;
}

namespace {

bool equal_costs(const std::vector<double>& a, const std::vector<double>& b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (compare_cost(a[i], b[i]) != 0) return false;
  }
  return true;
}

}  // namespace

ParetoFront::ParetoFront(std::size_t arity) : arity_(arity) {
  if (arity == 0) {
    throw std::invalid_argument("ParetoFront: needs at least one objective");
  }
}

bool ParetoFront::insert(std::size_t candidate,
                         const std::vector<double>& costs) {
  if (costs.size() != arity_) {
    throw std::invalid_argument("ParetoFront: cost arity mismatch");
  }
  for (const FrontEntry& e : entries_) {
    if (dominates(e.costs, costs)) return false;
    if (equal_costs(e.costs, costs)) {
      // Exact tie: the front keeps one canonical representative — the
      // lowest candidate index.
      if (e.candidate <= candidate) return false;
      break;
    }
  }
  entries_.erase(
      std::remove_if(entries_.begin(), entries_.end(),
                     [&](const FrontEntry& e) {
                       return dominates(costs, e.costs) ||
                              equal_costs(costs, e.costs);
                     }),
      entries_.end());
  const auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), candidate,
      [](const FrontEntry& e, std::size_t c) { return e.candidate < c; });
  entries_.insert(pos, {candidate, costs});
  return true;
}

bool ParetoFront::dominated(const std::vector<double>& costs) const {
  if (costs.size() != arity_) {
    throw std::invalid_argument("ParetoFront: cost arity mismatch");
  }
  for (const FrontEntry& e : entries_) {
    if (dominates(e.costs, costs)) return true;
  }
  return false;
}

std::vector<std::size_t> ranked_front(const ParetoFront& front) {
  std::vector<FrontEntry> ranked = front.entries();
  std::sort(ranked.begin(), ranked.end(),
            [](const FrontEntry& a, const FrontEntry& b) {
              const int c = compare_cost(a.costs[0], b.costs[0]);
              if (c != 0) return c < 0;
              return a.candidate < b.candidate;
            });
  std::vector<std::size_t> indices;
  indices.reserve(ranked.size());
  for (const FrontEntry& e : ranked) indices.push_back(e.candidate);
  return indices;
}

}  // namespace diac
