/// SearchObjectives: maps RunStats to the goal vector a design-space
/// search optimizes.
///
/// Every objective is expressed internally as a *cost* (lower is better);
/// maximized quantities are negated so the Pareto machinery only ever
/// minimizes.  A cost may be NaN when the run never defined the quantity —
/// PDP with zero completed instances, makespan of a workload that never
/// finished — and the comparators in search/pareto.hpp treat NaN as worse
/// than every number (and equal to itself), so undefined outcomes can
/// never dominate and are pruned by any defined one.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/stats.hpp"

namespace diac {

enum class ObjectiveKind : std::uint8_t {
  kPdp,         // minimize power-delay product per instance (NaN: 0 done)
  kProgress,    // maximize forward progress (1 - reexecution fraction)
  kNvmWrites,   // minimize NVM write events
  kCompletion,  // maximize completed instances
  kEnergy,      // minimize total energy drawn from storage
  kMakespan,    // minimize completion time (NaN: never completed)
};
/// Number of ObjectiveKind values (array sizing).
inline constexpr int kObjectiveKindCount = 6;

/// CLI spelling: "pdp", "progress", "writes", "completion", "energy",
/// "makespan".
const char* to_string(ObjectiveKind kind);
/// Report column header, e.g. "PDP [mJ*s]".
const char* objective_header(ObjectiveKind kind);
/// Throws std::invalid_argument on unknown names.
ObjectiveKind objective_from_name(const std::string& name);

/// The minimized cost of one run on one objective (NaN when undefined).
double objective_cost(ObjectiveKind kind, const RunStats& stats);
/// Cost -> natural reading for reports (progress 0.97 instead of -0.97,
/// PDP in mJ*s instead of J*s).  NaN passes through.
double objective_display(ObjectiveKind kind, double cost);

/// An ordered objective list; the first objective ranks the front.
struct SearchObjectives {
  std::vector<ObjectiveKind> kinds;

  /// Parses a comma-separated objective list ("pdp,progress"); throws on
  /// unknown names, duplicates, or an empty list.
  static SearchObjectives parse(const std::string& csv);
  /// The default goal pair: minimize PDP, maximize forward progress.
  static SearchObjectives defaults();

  std::size_t size() const { return kinds.size(); }
  /// The run's cost vector, ordered like `kinds`.
  std::vector<double> costs(const RunStats& stats) const;
};

}  // namespace diac
