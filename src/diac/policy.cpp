#include "diac/policy.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "tree/energy_model.hpp"

namespace diac {

const char* to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kPolicy1: return "Policy1";
    case PolicyKind::kPolicy2: return "Policy2";
    case PolicyKind::kPolicy3: return "Policy3";
  }
  return "?";
}

TaskTree split_large_nodes(const TaskTree& tree, const PolicyLimits& limits) {
  if (limits.upper <= 0 || limits.split_fraction <= 0) {
    throw std::invalid_argument("split_large_nodes: limits must be positive");
  }
  const Netlist& nl = tree.netlist();
  const CellLibrary& lib = tree.library();
  const double chunk_cap = limits.upper * limits.split_fraction;

  std::vector<int> part(nl.size(), kNoNode);
  std::vector<std::string> labels;
  int next = 0;
  const auto pos = topological_positions(nl);

  for (const TaskNode& node : tree.nodes()) {
    if (limits.scaled(node.dict.energy()) <= limits.upper ||
        node.gates.size() < 2) {
      for (GateId g : node.gates) part[g] = next;
      labels.push_back(node.label);
      ++next;
      continue;
    }
    // Cut member gates along topological order into chunks whose scaled
    // switching energy stays below chunk_cap.  Chunk edges can only point
    // forward in topological order, so the partition stays acyclic.
    std::vector<GateId> ordered = node.gates;
    std::sort(ordered.begin(), ordered.end(),
              [&pos](GateId a, GateId b) { return pos[a] < pos[b]; });
    double acc = 0.0;
    bool chunk_open = false;
    int chunk_idx = 0;
    for (GateId g : ordered) {
      const Gate& gate = nl.gate(g);
      const double e =
          limits.scaled(lib.switching_energy(gate.kind, gate.fanin_count()));
      if (chunk_open && acc + e > chunk_cap) {
        ++next;  // close the chunk
        chunk_open = false;
        acc = 0.0;
      }
      if (!chunk_open) {
        labels.push_back(node.label + "." + std::to_string(++chunk_idx));
      }
      part[g] = next;
      chunk_open = true;
      acc += e;
    }
    if (chunk_open) ++next;
  }
  return TaskTree::from_partition(nl, lib, part, next, labels);
}

namespace {

// Merge-group bookkeeping: union-find over task ids.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = static_cast<TaskId>(i);
  }
  TaskId find(TaskId x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(TaskId a, TaskId b) { parent_[find(a)] = find(b); }

 private:
  std::vector<TaskId> parent_;
};

}  // namespace

TaskTree merge_small_nodes(const TaskTree& tree, const PolicyLimits& limits) {
  if (limits.lower <= 0 || limits.upper < limits.lower) {
    throw std::invalid_argument("merge_small_nodes: need 0 < lower <= upper");
  }
  const Netlist& nl = tree.netlist();
  const CellLibrary& lib = tree.library();
  const std::size_t n = tree.size();

  UnionFind uf(n);
  std::vector<double> group_energy(n);
  for (std::size_t i = 0; i < n; ++i) {
    group_energy[i] = limits.scaled(tree.node(static_cast<TaskId>(i)).dict.energy());
  }
  auto energy_of = [&](TaskId id) { return group_energy[uf.find(id)]; };
  auto merge_groups = [&](TaskId a, TaskId b) {
    const TaskId ra = uf.find(a), rb = uf.find(b);
    if (ra == rb) return;
    const double e = group_energy[ra] + group_energy[rb];
    uf.unite(ra, rb);
    group_energy[uf.find(ra)] = e;
  };

  // Rule (a): same-level nodes with identical successor sets.  Within a
  // level no node can reach another (levels strictly increase along
  // edges), so any same-level grouping is acyclic; identical-successor
  // grouping additionally preserves the communication structure — this is
  // the rule that merges F5..F8 (all feeding the output node) into F13.
  std::map<std::pair<int, std::vector<TaskId>>, std::vector<TaskId>> buckets;
  for (std::size_t i = 0; i < n; ++i) {
    const TaskNode& node = tree.node(static_cast<TaskId>(i));
    if (limits.scaled(node.dict.energy()) >= limits.lower) continue;
    buckets[{node.dict.level, node.succs}].push_back(static_cast<TaskId>(i));
  }
  for (auto& [key, ids] : buckets) {
    if (ids.size() < 2) continue;
    // Greedy packing: add members while the group stays within upper.
    TaskId head = ids[0];
    for (std::size_t k = 1; k < ids.size(); ++k) {
      if (energy_of(head) + energy_of(ids[k]) <= limits.upper) {
        merge_groups(head, ids[k]);
      } else {
        head = ids[k];
      }
    }
  }

  // Rule (b): absorb single-pred chains.  If v's only predecessor is u (or
  // u's only successor is v), every path into v passes through u, so the
  // merge cannot create a cycle.  Applied only while both sides are small.
  for (TaskId v = 0; v < n; ++v) {
    const TaskNode& node = tree.node(v);
    if (node.preds.size() != 1) continue;
    const TaskId u = node.preds[0];
    if (uf.find(u) == uf.find(v)) continue;
    if (energy_of(v) >= limits.lower && energy_of(u) >= limits.lower) continue;
    if (energy_of(u) + energy_of(v) > limits.upper) continue;
    // Only safe when no *other* group member of u reaches v around the
    // chain; restrict to the simple case where u's group is u alone or the
    // chain rule applies directly to original nodes.
    merge_groups(u, v);
  }

  // Rebuild the partition from the union-find groups.  Merged groups keep
  // a joined label (capped at three member names, the paper's F13 style).
  std::vector<int> group_index(n, -1);
  int next = 0;
  std::vector<int> part(nl.size(), kNoNode);
  std::vector<std::string> labels;
  auto append_label = [&labels](int group, const std::string& member) {
    std::string& l = labels[static_cast<std::size_t>(group)];
    if (l.empty()) {
      l = member;
    } else if (l.size() >= 3 && l.compare(l.size() - 3, 3, "+..") == 0) {
      // already elided
    } else if (std::count(l.begin(), l.end(), '+') < 3) {
      l += "+" + member;
    } else {
      l += "+..";
    }
  };
  for (TaskId id = 0; id < n; ++id) {
    const TaskId root = uf.find(id);
    if (group_index[root] < 0) {
      group_index[root] = next++;
      labels.emplace_back();
    }
    append_label(group_index[root], tree.node(id).label);
    for (GateId g : tree.node(id).gates) part[g] = group_index[root];
  }
  TaskTree merged = TaskTree::from_partition(nl, lib, part, next, labels);
  if (limits.structural_only) return merged;

  // Stage (c): pack topologically-contiguous runs of small nodes.  A
  // contiguous segment of a topological order only has forward edges to
  // later segments, so any such packing is acyclic.  This coarsens the
  // many tiny cones of large netlists into operand-sized tasks.
  for (int pass = 0; pass < 4; ++pass) {
    bool changed = false;
    const std::size_t m = merged.size();
    std::vector<int> seg_of(m, -1);
    int seg = 0;
    double acc = 0;
    bool open = false;
    for (TaskId id : merged.schedule()) {
      const double e = limits.scaled(merged.node(id).dict.energy());
      const bool small = e < limits.lower;
      if (!small) {
        // Large nodes stand alone; close any open run first.
        if (open) {
          ++seg;
          acc = 0;
          open = false;
        }
        seg_of[id] = seg++;
        continue;
      }
      if (open && acc + e > limits.upper) {
        ++seg;  // close the full run
        acc = 0;
        open = false;
      }
      if (open) changed = true;  // this node joins an existing run
      seg_of[id] = seg;
      open = true;
      acc += e;
    }
    if (!changed) break;
    std::vector<int> part2(nl.size(), kNoNode);
    std::vector<int> dense(seg + 1, -1);
    int next2 = 0;
    for (TaskId id = 0; id < m; ++id) {
      const int s = seg_of[id];
      if (dense[s] < 0) dense[s] = next2++;
      for (GateId g : merged.node(id).gates) part2[g] = dense[s];
    }
    merged = TaskTree::from_partition(nl, lib, part2, next2);
  }
  return merged;
}

TaskTree apply_policy(const TaskTree& tree, PolicyKind kind,
                      const PolicyLimits& limits) {
  switch (kind) {
    case PolicyKind::kPolicy1:
      return split_large_nodes(tree, limits);
    case PolicyKind::kPolicy2:
      return merge_small_nodes(tree, limits);
    case PolicyKind::kPolicy3: {
      const TaskTree split = split_large_nodes(tree, limits);
      return merge_small_nodes(split, limits);
    }
  }
  throw std::logic_error("apply_policy: unknown policy");
}

PolicyLimits limits_for_storage(const TaskTree& tree, double e_max,
                                double instance_energy,
                                double headroom_fraction) {
  if (e_max <= 0 || instance_energy <= 0 || headroom_fraction <= 0) {
    throw std::invalid_argument("limits_for_storage: arguments must be positive");
  }
  const double total = tree.total_energy();
  if (total <= 0) {
    throw std::invalid_argument("limits_for_storage: tree has no energy");
  }
  PolicyLimits limits;
  limits.scale = instance_energy / total;
  limits.upper = headroom_fraction * e_max;
  limits.lower = 0.8 * limits.upper;  // the paper's 25/20 ratio
  return limits;
}

}  // namespace diac
