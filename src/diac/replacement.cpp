#include "diac/replacement.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

namespace diac {

ReplacementResult insert_nvm(TaskTree& tree, const ReplacementOptions& options) {
  if (options.budget <= 0 || options.scale <= 0) {
    throw std::invalid_argument("insert_nvm: budget and scale must be positive");
  }

  // Reset any previous plan.
  for (std::size_t i = 0; i < tree.size(); ++i) {
    TaskNode& n = tree.node(static_cast<TaskId>(i));
    n.has_nvm = false;
    n.nvm_bits = 0;
    n.accumulated_energy = 0;
  }

  ReplacementResult result;
  auto commit = [&](TaskNode& n, TaskId id) {
    if (n.has_nvm) return;
    n.has_nvm = true;
    // One write event persists the node's boundary signals (capped at the
    // register-file width) plus control state (criterion III: all fanout
    // signals consolidate into this one commit).
    n.nvm_bits = std::min(std::max(1, n.dict.fanout), options.bits_cap) +
                 options.control_bits;
    result.points.push_back(id);
    result.total_bits += n.nvm_bits;
  };

  // Leaves -> roots traversal along the topological schedule.  P_total
  // accumulates the energy of every task since the last commit point —
  // execution (and therefore recovery) is linear in schedule order, so
  // accumulating along the schedule bounds exactly the work a power
  // failure can destroy.  "The previous power values are set to zero" when
  // a commit is inserted.
  const auto& schedule = tree.schedule();
  const int max_level = std::max(1, tree.max_level());

  // kScored: pick the best-scoring commit position among the trailing
  // uncommitted tasks (criteria I-III), then charge the tail after it to
  // the next accumulation period.
  auto scored_commit = [&](std::size_t crossing) -> std::size_t {
    const std::size_t lo =
        crossing + 1 >= static_cast<std::size_t>(std::max(1, options.window))
            ? crossing + 1 - static_cast<std::size_t>(std::max(1, options.window))
            : 0;
    double best = -1;
    std::size_t best_pos = crossing;
    for (std::size_t j = lo; j <= crossing; ++j) {
      const TaskNode& cand = tree.node(schedule[j]);
      if (cand.has_nvm) continue;  // already a commit point
      const double fan = cand.dict.fanin + cand.dict.fanout;
      const double score =
          options.w_level * (static_cast<double>(cand.dict.level) / max_level) +
          options.w_power * (cand.accumulated_energy / options.budget) +
          options.w_fan * std::min(1.0, fan / options.bits_cap);
      if (score > best) {
        best = score;
        best_pos = j;
      }
    }
    return best_pos;
  };

  if (options.strategy == InsertionStrategy::kOptimalDp) {
    // Prefix sums of scaled task energies along the schedule.
    const std::size_t n = schedule.size();
    std::vector<double> prefix(n + 1, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      prefix[i + 1] =
          prefix[i] + options.scale * tree.node(schedule[i]).dict.energy();
    }
    auto write_cost = [&](std::size_t pos) {
      const TaskNode& cand = tree.node(schedule[pos]);
      const int bits =
          std::min(std::max(1, cand.dict.fanout), options.bits_cap) +
          options.control_bits;
      return options.controller_event_energy + bits * options.energy_per_bit;
    };
    // Expected re-execution cost of a segment (i, j]: failures arrive at
    // failure_rate per active second over T = E/P; each destroys half the
    // segment's work in expectation.
    auto segment_cost = [&](std::size_t i, std::size_t j) {
      const double e = prefix[j] - prefix[i];
      const double duration = e / options.active_power;
      return options.failure_rate * duration * (e / 2.0);
    };
    // best[j] = minimal cost of executing tasks [0, j) with a commit at
    // task j-1.  The final task must commit (result persistence).
    std::vector<double> best(n + 1, 0.0);
    std::vector<std::size_t> prev(n + 1, 0);
    for (std::size_t j = 1; j <= n; ++j) {
      best[j] = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < j; ++i) {
        const double c = best[i] + segment_cost(i, j) + write_cost(j - 1);
        if (c < best[j]) {
          best[j] = c;
          prev[j] = i;
        }
      }
    }
    // Walk the commit chain backwards.
    std::vector<std::size_t> cuts;
    for (std::size_t j = n; j > 0; j = prev[j]) cuts.push_back(j - 1);
    for (auto it = cuts.rbegin(); it != cuts.rend(); ++it) {
      commit(tree.node(schedule[*it]), schedule[*it]);
    }
    // Exposure bookkeeping: accumulated energy resets at each commit.
    double acc_dp = 0;
    for (std::size_t i = 0; i < n; ++i) {
      acc_dp += options.scale * tree.node(schedule[i]).dict.energy();
      tree.node(schedule[i]).accumulated_energy = acc_dp;
      result.max_exposed_energy = std::max(result.max_exposed_energy, acc_dp);
      if (tree.node(schedule[i]).has_nvm) acc_dp = 0;
    }
    return result;
  }

  double acc = 0;
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const TaskId id = schedule[i];
    TaskNode& n = tree.node(id);
    acc += options.scale * n.dict.energy();
    n.accumulated_energy = acc;
    result.max_exposed_energy = std::max(result.max_exposed_energy, acc);

    // The final task always commits when commit_roots is set: the commit
    // barrier persists the live state, so one terminal commit makes the
    // instance result (all primary outputs) survive arbitrarily many
    // failures before Transmit.
    const bool is_last = i + 1 == schedule.size();
    if (acc > options.budget || (options.commit_roots && is_last)) {
      std::size_t pos = i;
      if (options.strategy == InsertionStrategy::kScored && !is_last) {
        pos = scored_commit(i);
      }
      commit(tree.node(schedule[pos]), schedule[pos]);
      // Tasks after the chosen position start the next period.
      acc = 0;
      for (std::size_t j = pos + 1; j <= i; ++j) {
        acc += options.scale * tree.node(schedule[j]).dict.energy();
      }
      result.max_exposed_energy = std::max(result.max_exposed_energy, acc);
    }
  }
  return result;
}

CommitCost per_pass_commit_cost(const TaskTree& tree, const NvmParameters& nvm,
                                double system_factor,
                                double controller_event_energy,
                                double system_time_factor) {
  CommitCost cost;
  for (const TaskNode& n : tree.nodes()) {
    if (!n.has_nvm) continue;
    ++cost.writes;
    cost.energy +=
        controller_event_energy + system_factor * nvm.write_energy(n.nvm_bits);
    cost.time += system_time_factor * nvm.write_time(n.nvm_bits);
  }
  return cost;
}

}  // namespace diac
