// DiacSynthesizer: the end-to-end DIAC design flow of Fig. 1.
//
//   1-3  Tree Generator: netlist -> levelized tree + feature dictionaries
//   4-5  Policy + Replacement: split/merge per policy, insert NVM commit
//        points within the backup budget
//   6    NV-enhanced tree
//   7    Code generation + validation (timing / power budget)
//
// `synthesize` produces the DIAC design; `synthesize_scheme` produces any
// of the four evaluated schemes over the *same* policy-transformed tree so
// comparisons isolate the backup architecture.
#pragma once

#include "diac/baselines.hpp"
#include "diac/design.hpp"
#include "diac/policy.hpp"
#include "diac/replacement.hpp"
#include "tree/tree_generator.hpp"

namespace diac {

struct SynthesisOptions {
  PolicyKind policy = PolicyKind::kPolicy3;
  TreeGrouping grouping = TreeGrouping::kCones;
  NvmTechnology technology = NvmTechnology::kMram;

  // Storage and instance scaling (paper SIV.A): E_MAX = 25 mJ and the
  // instance is re-run until its energy exceeds the capacity; rho is the
  // instance-to-capacity ratio (assumption 1 requires rho > 1).
  double e_max = 25.0e-3;          // J
  double instance_rho = 1.6;       // instance energy = rho * e_max

  // Policy limits as fractions of E_MAX (the 0.8 lower/upper ratio is the
  // paper's 25/20 mJ worked-example ratio; the absolute fraction sets task
  // granularity at ~atomic-operation scale, a few percent of storage).
  double upper_fraction = 0.03;    // split above upper_fraction * e_max
  double lower_ratio = 0.8;        // lower = lower_ratio * upper

  // Replacement budget: max accumulated energy between commit points as a
  // fraction of E_MAX.
  double budget_fraction = 0.25;

  double system_factor = kDefaultSystemFactor;
};

struct SynthesisResult {
  IntermittentDesign design;
  ReplacementResult replacement;  // empty for checkpoint-based schemes
  PolicyLimits limits;
};

class DiacSynthesizer {
 public:
  DiacSynthesizer(const Netlist& nl, const CellLibrary& lib,
                  SynthesisOptions options = {});

  // Runs the full flow for the DIAC scheme.
  SynthesisResult synthesize() const;

  // Runs the flow for any scheme (checkpoint baselines reuse the same
  // policy-transformed tree but carry full-state backups instead of commit
  // points).
  SynthesisResult synthesize_scheme(Scheme scheme) const;

  // The policy-transformed tree (before NVM insertion), for inspection.
  TaskTree transformed_tree() const;

  const SynthesisOptions& options() const { return options_; }

 private:
  const Netlist* nl_;
  const CellLibrary* lib_;
  SynthesisOptions options_;
};

}  // namespace diac
