// The three DIAC tree-transformation policies (SIII.A).
//
//  - Policy1 (resiliency): large operands are *split* into smaller tasks so
//    that every task's energy satisfies avg(F_power) < Vth << Vpeak.  Best
//    resiliency, pays per-task overhead.
//  - Policy2 (efficiency): small operands are *merged* into larger ones
//    while max(F_power) << Vth, giving the best performance at the cost of
//    resiliency (a failure loses a bigger task).
//  - Policy3 (balanced): split above an upper limit and merge below a lower
//    limit — the paper's worked example uses 25 mJ / 20 mJ per operand,
//    splitting F2 into F9..F11 and merging F5..F8 into F13.
//
// Transforms are expressed as new gate->node partitions and rebuilt through
// TaskTree::from_partition, so the result is always a valid levelized DAG:
//
//  - splitting cuts a node's member gates along their topological order
//    into energy-bounded chunks (chunk dependencies can only point forward,
//    so no cycles);
//  - merging combines (a) same-level nodes with identical successor sets
//    (this is what turns F5..F8 into F13) and (b) single-pred/single-succ
//    chains; both rules provably preserve acyclicity.
#pragma once

#include "tree/task_tree.hpp"

namespace diac {

enum class PolicyKind { kPolicy1, kPolicy2, kPolicy3 };

const char* to_string(PolicyKind kind);

struct PolicyLimits {
  // Energy limits per operand, in J *after* scaling: a node with
  // energy() * scale > upper splits; nodes with energy() * scale < lower
  // are merge candidates.  `scale` maps per-evaluation gate energies into
  // the instance regime (assumption 1: benchmarks re-run until total
  // energy exceeds the storage capacity, so operands are compared in mJ).
  double upper = 25.0e-3;
  double lower = 20.0e-3;
  double scale = 1.0;

  // Split granularity: an oversized node is cut into chunks of at most
  // upper * split_fraction (0.5 reproduces the paper's F2 -> F9..F11).
  double split_fraction = 0.5;

  // When false (default), merging adds a third stage that packs
  // topologically-contiguous runs of still-small nodes up to `upper`
  // (contiguous segments of a topological order can only have forward
  // edges, so the packing is provably acyclic).  This is what coarsens a
  // many-thousand-cone netlist into tens of operand tasks.  Set true to
  // restrict merging to the two structure-preserving rules — the exact
  // behaviour of the paper's Fig. 2 worked example.
  bool structural_only = false;

  double scaled(double energy) const { return energy * scale; }
};

// Applies `kind` with `limits` and returns the transformed tree.
TaskTree apply_policy(const TaskTree& tree, PolicyKind kind,
                      const PolicyLimits& limits);

// The individual transforms (exposed for tests and ablations).
TaskTree split_large_nodes(const TaskTree& tree, const PolicyLimits& limits);
TaskTree merge_small_nodes(const TaskTree& tree, const PolicyLimits& limits);

// Derives limits for a tree that must execute on storage of capacity
// `e_max` joules: upper = headroom_fraction * e_max, lower = 0.8 * upper
// (the paper's 25/20 ratio), scale chosen so the whole tree's energy maps
// to `instance_energy` joules.
PolicyLimits limits_for_storage(const TaskTree& tree, double e_max,
                                double instance_energy,
                                double headroom_fraction = 0.1);

}  // namespace diac
