#include "diac/synthesizer.hpp"

#include <stdexcept>

#include "obs/obs.hpp"

namespace diac {

DiacSynthesizer::DiacSynthesizer(const Netlist& nl, const CellLibrary& lib,
                                 SynthesisOptions options)
    : nl_(&nl), lib_(&lib), options_(options) {
  if (options_.e_max <= 0 || options_.instance_rho <= 1.0) {
    throw std::invalid_argument(
        "DiacSynthesizer: need e_max > 0 and instance_rho > 1 (assumption 1: "
        "an instance never fits in storage)");
  }
}

TaskTree DiacSynthesizer::transformed_tree() const {
  TreeGeneratorOptions tg;
  tg.grouping = options_.grouping;
  const TaskTree unoptimized = TreeGenerator(*nl_, *lib_, tg).generate();

  PolicyLimits limits;
  const double total = unoptimized.total_energy();
  if (total <= 0) {
    throw std::invalid_argument("DiacSynthesizer: netlist has no energy");
  }
  limits.scale = options_.instance_rho * options_.e_max / total;
  limits.upper = options_.upper_fraction * options_.e_max;
  limits.lower = options_.lower_ratio * limits.upper;
  return apply_policy(unoptimized, options_.policy, limits);
}

SynthesisResult DiacSynthesizer::synthesize() const {
  return synthesize_scheme(Scheme::kDiac);
}

SynthesisResult DiacSynthesizer::synthesize_scheme(Scheme scheme) const {
  DIAC_TRACE_SPAN("synthesize", "synth");
  DIAC_OBS_COUNT("synth.runs", 1);
  SynthesisResult result;
  TaskTree tree = transformed_tree();

  const double total = tree.total_energy();
  const double scale = options_.instance_rho * options_.e_max / total;
  result.limits.scale = scale;
  result.limits.upper = options_.upper_fraction * options_.e_max;
  result.limits.lower = options_.lower_ratio * result.limits.upper;

  switch (scheme) {
    case Scheme::kNvBased:
      result.design = make_nv_based(std::move(tree), options_.technology, scale,
                                    options_.system_factor);
      break;
    case Scheme::kNvClustering:
      result.design = make_nv_clustering(std::move(tree), options_.technology,
                                         scale, options_.system_factor);
      break;
    case Scheme::kDiac:
    case Scheme::kDiacOptimized: {
      ReplacementOptions ro;
      ro.budget = options_.budget_fraction * options_.e_max;
      ro.scale = scale;
      result.replacement = insert_nvm(tree, ro);

      IntermittentDesign d;
      d.scheme = scheme;
      d.technology = options_.technology;
      d.nvm = nvm_parameters(options_.technology);
      d.scale = scale;
      d.system_factor = options_.system_factor;
      d.tree = std::move(tree);
      result.design = std::move(d);
      break;
    }
  }
  return result;
}

}  // namespace diac
