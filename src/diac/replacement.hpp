// The DIAC Replacement procedure (SIII.A step 2): NVM insertion.
//
// Traverses the levelized task tree from the leaves (inputs) towards the
// roots (outputs) along the topological schedule, accumulating the total
// consumed energy P_total since the last commit point.  When P_total
// crosses the backup budget, an NVM commit point is inserted: "the
// previous power values are set to zero" and the node's dictionary gains
// the NVM write cost (paper: "new power consumption = P_total + P_n").
// Because execution and recovery are linear in schedule order (commit
// points are checkpoint barriers), the accumulation bounds exactly the
// work one power failure can destroy.
//
// The three replacement criteria are embodied as follows:
//  (I)  upper-level preference — accumulation inserts as *late* (as close
//       to the outputs) as the budget allows;
//  (II) high-power preference — the budget is an energy budget, so heavy
//       cones trigger insertion exactly where the consumed power is
//       concentrated;
//  (III) fan consolidation — a commit at a node with fan-in+fan-out k
//       persists all k boundary signals in one write event, reducing the
//       write count by 1/(fanin+fanout) versus per-signal writes.
//
// Terminal nodes (results) always commit: the Transmit state reads them
// after arbitrarily many power failures.
#pragma once

#include "cell/nvm_model.hpp"
#include "tree/task_tree.hpp"

namespace diac {

// How the commit position is chosen when the budget is crossed.
enum class InsertionStrategy {
  // Commit at the crossing task itself (latest possible position — the
  // pure criterion-I behaviour).
  kAccumulate,
  // Choose among the trailing window of uncommitted tasks by the weighted
  // criteria score
  //   w_level * (level j / max level)             (criterion I)
  //   + w_power * (accumulated energy / budget)   (criterion II)
  //   + w_fan * min(1, (fanin+fanout) / bits_cap) (criterion III)
  // — committing at a high-fan node consolidates more boundary signals
  // per write event.
  kScored,
  // Globally optimal placement by dynamic programming over the schedule,
  // minimizing the expected per-pass cost
  //     sum over commits of write_event_cost(bits)
  //   + failure_rate * sum over segments of T_seg * (E_seg / 2)
  // (a Poisson failure mid-segment re-executes half the segment in
  // expectation).  O(n^2) in the task count.  The budget is ignored — the
  // failure rate and write-cost parameters are the knobs.  Serves as the
  // optimality baseline the greedy strategies are measured against.
  kOptimalDp,
};

struct ReplacementOptions {
  // Maximum scaled energy allowed to accumulate between commit points, J.
  // Typically a fraction of the storage capacity E_MAX: on a power failure
  // at most this much forward progress must be re-executed.
  double budget = 10.0e-3;

  InsertionStrategy strategy = InsertionStrategy::kAccumulate;
  // kScored parameters.
  int window = 4;        // trailing candidates considered per commit
  double w_level = 1.0;  // criterion I weight
  double w_power = 1.0;  // criterion II weight
  double w_fan = 1.0;    // criterion III weight

  // Scale from per-evaluation node energies to the instance regime (same
  // value as PolicyLimits::scale).
  double scale = 1.0;

  // Control state (Reg_Flag, loop counters) persisted with every commit.
  int control_bits = 8;

  // Persisted data signals per commit are capped at the architectural
  // register-file width (matches kBoundaryBitsCap in design.hpp).
  int bits_cap = 64;

  // Always commit the final task: the terminal barrier persists the
  // instance result (primary outputs) before Transmit.
  bool commit_roots = true;

  // kOptimalDp cost model.
  double failure_rate = 0.05;           // expected failures per active second
  double active_power = 3.0e-3;         // W, task durations = E / P
  double controller_event_energy = 0.15e-3;  // J per write event
  double energy_per_bit = 10.0e-6;      // J per persisted bit (system level)
};

struct ReplacementResult {
  std::vector<TaskId> points;  // nodes that received an NVM commit
  int total_bits = 0;          // sum of persisted bits across points
  // Largest scaled energy that can be lost to one power failure (the
  // maximum accumulated total anywhere in the final tree), J.
  double max_exposed_energy = 0;
};

// Inserts NVM commit points into `tree` (sets has_nvm / nvm_bits /
// accumulated_energy on its nodes) and returns the plan summary.
// Throws std::invalid_argument on non-positive budget/scale.
ReplacementResult insert_nvm(TaskTree& tree, const ReplacementOptions& options);

// Per-pass commit cost of the planned tree: energy/time spent writing the
// NVM points during one failure-free evaluation of the whole tree, under
// `nvm` with system-level amplification `system_factor` and a fixed
// controller cost per write event (see diac/design.hpp for the
// calibration rationale).
struct CommitCost {
  double energy = 0;  // J per pass
  double time = 0;    // s per pass
  int writes = 0;     // commit events per pass
};
CommitCost per_pass_commit_cost(const TaskTree& tree, const NvmParameters& nvm,
                                double system_factor,
                                double controller_event_energy,
                                double system_time_factor);

}  // namespace diac
