// IntermittentDesign: the output of synthesis — a policy-transformed task
// tree plus the NVM write-traffic model for one of the four evaluated
// schemes (SIV.B):
//
//  - NV-Based: every flip-flop is an NV-FF, so the live data at *every*
//    task boundary is written to NVM before the system sleeps ("data from
//    all registers are offloaded to NVMs before entering a deep sleep
//    state").  Highest resiliency — execution always resumes at the last
//    task boundary — at the cost of one NVM write event per task.
//  - NV-Clustering (paper ref [7]): logic-embedded FFs; boundary state
//    collapses onto fewer NV elements (one LE-FF per cluster), so the same
//    per-task protocol writes fewer bits.
//  - DIAC: boundary data stays in volatile registers (retained while the
//    storage remains above Th_Off); NVM writes happen only at the commit
//    points the replacement engine inserted.  Work past the last commit
//    point re-executes after a deep outage.
//  - DIAC-Optimized: the DIAC design executed with the Th_SafeZone runtime
//    (backups are skipped when energy recovers before Th_Bk).
//
// Energy calibration.  NvmParameters are physical per-bit cell numbers
// (fJ); a *system-level* checkpoint moves bits through a controller, bus,
// regulators and charge pumps.  Measured checkpoint costs on real
// energy-harvesting nodes are hundreds of uJ to ~2 mJ per event (the
// paper's own Fig. 4 places backups at the ~2 mJ scale on a 25 mJ store).
// We model a write event as
//
//   E = controller_event_energy + system_factor * cell_write_energy(bits)
//
// with controller_event_energy ~= 0.3 mJ and system_factor amplifying the
// per-bit cell cost to the system level.  Both constants are common to all
// schemes and all technologies, so every ratio the paper reports (scheme
// orderings, the ReRAM 4.4x sensitivity of SIV.C) is preserved.
#pragma once

#include "cell/nvm_model.hpp"
#include "tree/task_tree.hpp"

namespace diac {

enum class Scheme : std::uint8_t {
  kNvBased,
  kNvClustering,
  kDiac,
  kDiacOptimized,
};
inline constexpr int kSchemeCount = 4;

const char* to_string(Scheme scheme);

// True when the scheme resumes from DIAC commit points (vs full-state
// persistence at every task boundary).
bool uses_commit_points(Scheme scheme);
// True when the runtime applies the safe-zone backup-avoidance rule.
bool uses_safe_zone(Scheme scheme);

// Calibration defaults (see the header comment).  The energy factor maps
// the 500 fJ/bit MRAM cell write to ~10 uJ/bit at system level, so a
// typical boundary write event (~20 bits) costs ~0.35 mJ and a control
// backup ~0.47 mJ — the sub-mJ-to-mJ event scale of the paper's Fig. 4.
// Write *time* amplifies far less (a checkpoint takes milliseconds, not
// the energy-equivalent seconds), so it has its own factor.
inline constexpr double kDefaultSystemFactor = 2.0e7;
inline constexpr double kDefaultSystemTimeFactor = 1.0e5;
inline constexpr double kDefaultControllerEventEnergy = 0.15e-3;  // J
// Architectural register-file width: the number of live boundary signals
// persisted per event is capped here (a snapshot register file), and the
// control state (Reg_Flag, loop counters, program point) rides along.
inline constexpr int kBoundaryBitsCap = 64;
inline constexpr int kBoundaryControlBits = 8;
inline constexpr int kControlStateBits = 32;

struct IntermittentDesign {
  Scheme scheme = Scheme::kDiac;
  NvmTechnology technology = NvmTechnology::kMram;
  NvmParameters nvm;             // characterization of `technology`
  TaskTree tree;                 // policy-transformed; has_nvm set for DIAC
  double scale = 1.0;            // per-evaluation -> instance energy scale
  double system_factor = kDefaultSystemFactor;
  double system_time_factor = kDefaultSystemTimeFactor;
  double controller_event_energy = kDefaultControllerEventEnergy;
  // NV-Clustering: fraction of boundary elements remaining after LE-FF
  // clustering (1.0 for the other schemes).
  double clustering_ratio = 1.0;

  // --- boundary persistence (per task completion) -------------------------
  // Bits written to NVM when task `id` completes: the (capped) live
  // boundary signals for NV-Based, the clustered subset for NV-Clustering,
  // the planned nvm_bits at DIAC commit points, zero elsewhere.
  int boundary_bits(TaskId id) const;
  double boundary_write_energy(TaskId id) const;  // J; 0 when no write
  double boundary_write_time(TaskId id) const;    // s

  // --- backup / restore events (power interrupt, reboot) ------------------
  // A Bk event persists control state (data is already covered by the
  // boundary protocol above for every scheme).
  int backup_bits() const { return kControlStateBits; }
  double backup_energy() const;
  double backup_time() const;
  double restore_energy() const;
  double restore_time() const;
};

// Raw (uncapped) live boundary signal count of a task node.
int raw_boundary_signals(const TaskNode& node);

}  // namespace diac
