// Code generator + validation (SIII.A step 7).
//
// Emits synthesizable structural Verilog for the NV-enhanced tree: the
// original gate network, annotated with task-boundary comments, plus
// `diac_nvreg` shadow registers at every NVM commit point.  The validation
// pass is our stand-in for "submitting to the commercial tool": it checks
// per-task timing against a clock period and per-task energy against the
// power budget, and reports every violation.
#pragma once

#include <string>
#include <vector>

#include "diac/design.hpp"

namespace diac {

struct CodegenOptions {
  std::string module_name;     // defaults to the netlist name
  bool annotate_tasks = true;  // emit task-boundary comments
};

// Emits Verilog for the design's netlist + NVM commit points.
std::string generate_verilog(const IntermittentDesign& design,
                             const CodegenOptions& options = {});

// --- validation ---------------------------------------------------------

struct Violation {
  enum class Kind { kTiming, kPowerBudget } kind;
  TaskId task = kNullTask;
  std::string message;
};

struct ValidationReport {
  std::vector<Violation> violations;
  bool ok() const { return violations.empty(); }
};

// Checks every task node: CDP <= clock_period (timing) and scaled energy
// <= energy_budget (power budget / atomicity: an atomic operation must fit
// in the storage headroom).
ValidationReport validate_design(const IntermittentDesign& design,
                                 double clock_period, double energy_budget);

}  // namespace diac
