#include "diac/baselines.hpp"

#include <algorithm>
#include <cmath>

#include "netlist/analysis.hpp"

namespace diac {

const char* to_string(Scheme scheme) {
  switch (scheme) {
    case Scheme::kNvBased: return "NV-Based";
    case Scheme::kNvClustering: return "NV-Clustering";
    case Scheme::kDiac: return "DIAC";
    case Scheme::kDiacOptimized: return "DIAC-Optimized";
  }
  return "?";
}

bool uses_commit_points(Scheme scheme) {
  return scheme == Scheme::kDiac || scheme == Scheme::kDiacOptimized;
}

bool uses_safe_zone(Scheme scheme) { return scheme == Scheme::kDiacOptimized; }

int raw_boundary_signals(const TaskNode& node) {
  return std::max(1, node.dict.fanout);
}

int IntermittentDesign::boundary_bits(TaskId id) const {
  const TaskNode& node = tree.node(id);
  if (uses_commit_points(scheme)) {
    return node.has_nvm ? node.nvm_bits : 0;
  }
  const int full = std::min(raw_boundary_signals(node), kBoundaryBitsCap) +
                   kBoundaryControlBits;
  if (scheme != Scheme::kNvClustering) return full;
  // LE-FF clustering covers boundary data *and* control state with fewer
  // logic-embedded elements.
  return std::max(1, static_cast<int>(std::ceil(full * clustering_ratio)));
}

double IntermittentDesign::boundary_write_energy(TaskId id) const {
  const int bits = boundary_bits(id);
  if (bits == 0) return 0.0;
  return controller_event_energy + system_factor * nvm.write_energy(bits);
}

double IntermittentDesign::boundary_write_time(TaskId id) const {
  const int bits = boundary_bits(id);
  if (bits == 0) return 0.0;
  return system_time_factor * nvm.write_time(bits);
}

double IntermittentDesign::backup_energy() const {
  return controller_event_energy + system_factor * nvm.write_energy(backup_bits());
}

double IntermittentDesign::backup_time() const {
  return system_time_factor * nvm.write_time(backup_bits());
}

double IntermittentDesign::restore_energy() const {
  // Reads are far cheaper per bit; the controller still wakes.  The amount
  // read is one boundary snapshot plus control.
  const int bits = kBoundaryBitsCap + kControlStateBits;
  return 0.5 * controller_event_energy + system_factor * nvm.read_energy(bits);
}

double IntermittentDesign::restore_time() const {
  const int bits = kBoundaryBitsCap + kControlStateBits;
  return system_time_factor * nvm.read_time(bits);
}

int nv_based_state_bits(const Netlist& nl) {
  return static_cast<int>(nl.dffs().size()) +
         static_cast<int>(nl.outputs().size()) + kControlStateBits;
}

int nv_clustering_state_bits(const Netlist& nl) {
  // One LE-FF per distinct cone feeding state (a DFF D-pin or an output
  // port).  State fed by the same cone shares one element.
  std::vector<GateId> cone_of(nl.size(), kNullGate);
  for (const Cone& cone : fanout_free_cones(nl)) {
    for (GateId g : cone.members) cone_of[g] = cone.root;
  }
  std::vector<GateId> clusters;  // deduplicated below via sort+unique
  auto driver_cluster = [&](GateId state_gate) {
    const Gate& g = nl.gate(state_gate);
    if (g.fanin.empty()) return;
    const GateId d = g.fanin[0];
    clusters.push_back(cone_of[d] != kNullGate ? cone_of[d] : d);
  };
  for (GateId ff : nl.dffs()) driver_cluster(ff);
  for (GateId out : nl.outputs()) driver_cluster(out);
  std::sort(clusters.begin(), clusters.end());
  clusters.erase(std::unique(clusters.begin(), clusters.end()),
                 clusters.end());
  return static_cast<int>(clusters.size()) + kControlStateBits;
}

double le_ff_clustering_ratio(const Netlist& nl) {
  const double base = nv_based_state_bits(nl);
  const double clustered = nv_clustering_state_bits(nl);
  if (base <= 0) return 1.0;
  return std::clamp(clustered / base, 0.35, 0.70);
}

namespace {

IntermittentDesign make_checkpoint_design(Scheme scheme, TaskTree tree,
                                          NvmTechnology tech, double scale,
                                          double system_factor) {
  IntermittentDesign d;
  d.scheme = scheme;
  d.technology = tech;
  d.nvm = nvm_parameters(tech);
  d.scale = scale;
  d.system_factor = system_factor;
  if (scheme == Scheme::kNvClustering) {
    d.clustering_ratio = le_ff_clustering_ratio(tree.netlist());
  }
  // Boundary persistence covers every task; no DIAC commit points.
  for (std::size_t i = 0; i < tree.size(); ++i) {
    tree.node(static_cast<TaskId>(i)).has_nvm = false;
    tree.node(static_cast<TaskId>(i)).nvm_bits = 0;
  }
  d.tree = std::move(tree);
  return d;
}

}  // namespace

IntermittentDesign make_nv_based(TaskTree tree, NvmTechnology tech,
                                 double scale, double system_factor) {
  return make_checkpoint_design(Scheme::kNvBased, std::move(tree), tech, scale,
                                system_factor);
}

IntermittentDesign make_nv_clustering(TaskTree tree, NvmTechnology tech,
                                      double scale, double system_factor) {
  return make_checkpoint_design(Scheme::kNvClustering, std::move(tree), tech,
                                scale, system_factor);
}

}  // namespace diac
