// Baseline intermittent schemes: NV-Based and NV-Clustering state sizing.
#pragma once

#include "diac/design.hpp"

namespace diac {

// Full-state bit count for the NV-Based scheme: every DFF is an NV-FF and
// the result registers (one per primary output) plus control state are
// mirrored.
int nv_based_state_bits(const Netlist& nl);

// Clustered state bit count for NV-Clustering: DFFs and result registers
// collapse to one LE-FF per driving fanout-free cone (state fed by the
// same cone shares one logic-embedded element).
int nv_clustering_state_bits(const Netlist& nl);

// The structural LE-FF clustering ratio (clustered/full bits), clamped to
// [0.35, 0.70] — the fraction of boundary elements NV-Clustering persists
// relative to NV-Based.
double le_ff_clustering_ratio(const Netlist& nl);

// Builds the NV-Based / NV-Clustering designs over `tree` (which should be
// the same policy-transformed tree used for DIAC so that task granularity
// is identical and only the backup structure differs).
IntermittentDesign make_nv_based(TaskTree tree, NvmTechnology tech,
                                 double scale,
                                 double system_factor = kDefaultSystemFactor);
IntermittentDesign make_nv_clustering(TaskTree tree, NvmTechnology tech,
                                      double scale,
                                      double system_factor = kDefaultSystemFactor);

}  // namespace diac
