// A 128-bit FNV-1a hash for content-addressed cache keys.
//
// The result cache addresses entries by the hash of a canonical token
// sequence (see shard/job_key.*), so the hash must be (a) wide enough
// that accidental collisions are out of reach for any realistic sweep
// volume, and (b) a pure function of the bytes fed in — no seeding from
// the environment, no pointer mixing — so two processes (or two builds
// of the same git hash) derive identical keys.  FNV-1a over
// __uint128_t gives both with a few lines and no dependencies; this is
// a *correctness* identifier, not a defense against adversarial
// collisions (cache entries are validated on read regardless).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace diac {

// A 128-bit digest, held as two 64-bit halves so no interface leaks the
// non-standard __uint128_t type.
struct Hash128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool operator==(const Hash128&) const = default;
  // Lexicographic (hi, lo) order, so digests can key ordered containers.
  bool operator<(const Hash128& other) const {
    return hi != other.hi ? hi < other.hi : lo < other.lo;
  }
};

// Incremental FNV-1a-128 hasher.  Feed bytes or whole tokens; token
// feeds are length-prefixed so ("ab","c") and ("a","bc") digest
// differently.
class Fnv128 {
 public:
  void update(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      state_ ^= bytes[i];
      state_ *= kPrime;
    }
  }

  // Hashes the token's length, then its bytes (unambiguous framing).
  void update_token(const std::string& token) {
    const std::uint64_t n = token.size();
    update(&n, sizeof(n));
    update(token.data(), token.size());
  }

  Hash128 digest() const {
    return {static_cast<std::uint64_t>(state_ >> 64),
            static_cast<std::uint64_t>(state_)};
  }

 private:
  // FNV-1a 128-bit offset basis and prime.
  static constexpr unsigned __int128 kOffset =
      (static_cast<unsigned __int128>(0x6c62272e07bb0142ULL) << 64) |
      0x62b821756295c58dULL;
  static constexpr unsigned __int128 kPrime =
      (static_cast<unsigned __int128>(0x0000000001000000ULL) << 64) | 0x13bULL;

  unsigned __int128 state_ = kOffset;
};

// Digest of a token sequence (each token length-framed).
inline Hash128 hash_tokens(const std::vector<std::string>& tokens) {
  Fnv128 h;
  for (const std::string& t : tokens) h.update_token(t);
  return h.digest();
}

// "hhhhhhhhhhhhhhhhllllllllllllllll" — 32 lower-case hex digits; the
// cache's on-disk entry name.
std::string hash_hex(const Hash128& digest);

}  // namespace diac
