// Exact textual round-tripping of doubles and integers.
//
// This is the serialization primitive behind every bit-identity
// guarantee in the repo: the shard row codec, the result cache and the
// cache-key builders all need a textual form that reproduces a double
// bit-for-bit on any conforming libc.  C99 hex-float ("%a" / strtod)
// is that form — the mantissa is printed in full, so every finite
// value, signed zero and infinity round-trips exactly (NaN encodes as
// "nan" and decodes to a quiet NaN; nothing in the pipeline reads NaN
// payload bits).
//
// Lives in util (the lowest layer) so the job-key builders in exp/ and
// the codec in shard/ can share one implementation without an upward
// include.
#pragma once

#include <string>

namespace diac {

// Encodes a double so exact_decode_double reproduces it bit-for-bit.
std::string exact_encode_double(double value);

// Inverse of exact_encode_double; throws std::invalid_argument on
// tokens strtod cannot fully consume.
double exact_decode_double(const std::string& token);

// Strict decimal-integer decode: the whole token must parse.  Throws
// std::runtime_error on anything else (corrupt rows must be rejected,
// never truncated into plausible values).
long long exact_decode_int(const std::string& token);

}  // namespace diac
