// SI unit helpers.
//
// All physical quantities in this library are plain `double`s in base SI
// units: seconds, joules, watts, farads, volts, square metres.  These
// helpers make call sites self-documenting:
//
//     double e = 25.0 * units::mJ;      // 0.025 J
//     double d = 120.0 * units::ps;     // 1.2e-10 s
//
// and the `as_*` functions convert back for reporting.
#pragma once

namespace diac::units {

// --- time ---------------------------------------------------------------
inline constexpr double s = 1.0;
inline constexpr double ms = 1e-3;
inline constexpr double us = 1e-6;
inline constexpr double ns = 1e-9;
inline constexpr double ps = 1e-12;

// --- energy -------------------------------------------------------------
inline constexpr double J = 1.0;
inline constexpr double mJ = 1e-3;
inline constexpr double uJ = 1e-6;
inline constexpr double nJ = 1e-9;
inline constexpr double pJ = 1e-12;
inline constexpr double fJ = 1e-15;

// --- power --------------------------------------------------------------
inline constexpr double W = 1.0;
inline constexpr double mW = 1e-3;
inline constexpr double uW = 1e-6;
inline constexpr double nW = 1e-9;

// --- capacitance / voltage ----------------------------------------------
inline constexpr double F = 1.0;
inline constexpr double mF = 1e-3;
inline constexpr double uF = 1e-6;
inline constexpr double V = 1.0;

// --- area ---------------------------------------------------------------
inline constexpr double um2 = 1e-12;  // square micrometre in m^2

// --- converters (value in SI -> value in the named unit) ------------------
inline constexpr double as_mJ(double joules) { return joules / mJ; }
inline constexpr double as_uJ(double joules) { return joules / uJ; }
inline constexpr double as_nJ(double joules) { return joules / nJ; }
inline constexpr double as_pJ(double joules) { return joules / pJ; }
inline constexpr double as_ms(double seconds) { return seconds / ms; }
inline constexpr double as_us(double seconds) { return seconds / us; }
inline constexpr double as_ns(double seconds) { return seconds / ns; }
inline constexpr double as_mW(double watts) { return watts / mW; }
inline constexpr double as_uW(double watts) { return watts / uW; }

// Energy stored on a capacitor charged to `volts`: E = C V^2 / 2.
inline constexpr double capacitor_energy(double farads, double volts) {
  return 0.5 * farads * volts * volts;
}

}  // namespace diac::units
