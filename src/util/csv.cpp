#include "util/csv.hpp"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace diac {

std::string csv_escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : path_(path), out_(path), columns_(header.size()) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
  add_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  if (cells.size() != columns_) {
    throw std::invalid_argument("CsvWriter: wrong cell count for " + path_);
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::add_row(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) {
    std::ostringstream os;
    if (precision > 0) os << std::setprecision(precision);
    os << v;
    cells.push_back(os.str());
  }
  add_row(cells);
}

}  // namespace diac
