// CSV writer for benchmark outputs (time series for the figure
// reproductions are emitted both as ASCII tables and as CSV files so they
// can be re-plotted).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace diac {

class CsvWriter {
 public:
  // Opens `path` for writing and emits the header line.  Throws
  // std::runtime_error when the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void add_row(const std::vector<std::string>& cells);
  // precision <= 0 keeps the stream default (6 significant digits);
  // pass std::numeric_limits<double>::max_digits10 for lossless
  // round-trippable output.
  void add_row(const std::vector<double>& values, int precision = 0);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::size_t columns_;
};

// Escapes a cell per RFC 4180 (quotes cells containing comma/quote/newline).
std::string csv_escape(const std::string& cell);

}  // namespace diac
