// Minimal ASCII table formatter used by the benchmark harnesses to print
// the rows/series the paper's tables and figures report.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace diac {

// Column-aligned ASCII table.
//
//   Table t({"bench", "NV-Based", "DIAC"});
//   t.add_row({"s27", "1.00", "0.64"});
//   std::cout << t;
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Number of columns, fixed at construction.
  std::size_t columns() const { return header_.size(); }
  std::size_t rows() const { return rows_.size(); }

  // Adds a row; throws std::invalid_argument when the cell count does not
  // match the header.
  void add_row(std::vector<std::string> cells);

  // Inserts a horizontal rule before the next added row.
  void add_rule();

  std::string str() const;

  // Formatting helpers for numeric cells.
  static std::string num(double v, int precision = 3);
  static std::string pct(double fraction, int precision = 1);  // 0.61 -> "61.0%"

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == rule
};

std::ostream& operator<<(std::ostream& os, const Table& t);

}  // namespace diac
