#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace diac {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) {
    throw std::invalid_argument("Table: header must have at least one column");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("Table: row has " + std::to_string(cells.size()) +
                                " cells, expected " + std::to_string(header_.size()));
  }
  rows_.push_back(std::move(cells));
}

void Table::add_rule() { rows_.emplace_back(); }

std::string Table::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_rule = [&] {
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << '+' << std::string(width[c] + 2, '-');
    }
    os << "+\n";
  };
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << "| " << cell << std::string(width[c] - cell.size() + 1, ' ');
    }
    os << "|\n";
  };

  emit_rule();
  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      emit_rule();
    } else {
      emit_row(row);
    }
  }
  emit_rule();
  return os.str();
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::ostream& operator<<(std::ostream& os, const Table& t) { return os << t.str(); }

}  // namespace diac
