#include "util/exactfmt.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace diac {

std::string exact_encode_double(double value) {
  if (std::isnan(value)) return "nan";
  // C99 hex-float: the mantissa is printed in full, so strtod recovers
  // the exact bit pattern (including -0.0 and +/-inf, which print as
  // "-0x0p+0" / "inf" / "-inf").
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", value);
  return buf;
}

double exact_decode_double(const std::string& token) {
  if (token.empty()) {
    throw std::invalid_argument("decode_double: empty token");
  }
  const char* begin = token.c_str();
  char* end = nullptr;
  const double value = std::strtod(begin, &end);
  if (end != begin + token.size()) {
    throw std::invalid_argument("decode_double: bad token '" + token + "'");
  }
  return value;
}

long long exact_decode_int(const std::string& token) {
  std::size_t used = 0;
  long long value = 0;
  try {
    value = std::stoll(token, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != token.size()) {
    throw std::runtime_error("shard codec: bad integer token '" + token + "'");
  }
  return value;
}

}  // namespace diac
