// Deterministic pseudo-random number generation.
//
// Every stochastic component of the framework (netlist generators, harvester
// jitter, power-failure injection, the ±10% operation-energy uncertainty of
// §IV.A) derives its randomness from `SplitMix64`, seeded explicitly, so
// every experiment in the repository is bit-reproducible across runs and
// platforms.  std::mt19937 is avoided because its distributions are not
// specified bit-exactly across standard library implementations.
#pragma once

#include <cstdint>

namespace diac {

// SplitMix64 (Steele, Lea, Flood 2014).  Tiny, fast, passes BigCrush when
// used as a 64-bit generator, and trivially seedable.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  // Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  // Uniform integer in [0, n).  n must be > 0.
  constexpr std::uint64_t below(std::uint64_t n) {
    // 64x64 -> high-64 multiply-shift mapping via 32-bit limbs (portable,
    // no __int128); bias is negligible (< 2^-64 n) for the ranges used here.
    const std::uint64_t x = next();
    const std::uint64_t x_lo = x & 0xFFFFFFFFULL, x_hi = x >> 32;
    const std::uint64_t n_lo = n & 0xFFFFFFFFULL, n_hi = n >> 32;
    const std::uint64_t mid =
        (x_lo * n_lo >> 32) + (x_hi * n_lo & 0xFFFFFFFFULL) + x_lo * n_hi;
    return x_hi * n_hi + (x_hi * n_lo >> 32) + (mid >> 32);
  }

  // Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t between(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  constexpr bool chance(double p) { return uniform() < p; }

  // Multiplicative jitter: value scaled by a factor uniform in
  // [1-spread, 1+spread].  Used for the paper's ±10% energy uncertainty.
  constexpr double jitter(double value, double spread) {
    return value * uniform(1.0 - spread, 1.0 + spread);
  }

  // Derive an independent stream (for giving each subsystem its own RNG
  // from one experiment seed).
  constexpr SplitMix64 fork() { return SplitMix64(next() ^ 0xA3EC647659359ACDULL); }

 private:
  std::uint64_t state_;
};

}  // namespace diac
