#include "util/hash128.hpp"

namespace diac {

std::string hash_hex(const Hash128& digest) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[static_cast<std::size_t>(15 - i)] = kDigits[(digest.hi >> (4 * i)) & 0xF];
    out[static_cast<std::size_t>(31 - i)] = kDigits[(digest.lo >> (4 * i)) & 0xF];
  }
  return out;
}

}  // namespace diac
