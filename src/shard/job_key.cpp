#include "shard/job_key.hpp"

#include "exp/job_key.hpp"
#include "shard/codec.hpp"

namespace diac {

namespace {

// Every digest starts with the row-format version and the sweep kind:
// a payload-shape bump or a kind collision can never alias entries.
std::vector<std::string> key_prefix(const char* kind,
                                    const Hash128& netlist_fp) {
  std::vector<std::string> key;
  key.push_back("diac-job");
  key.push_back(std::to_string(kShardFormatVersion));
  key.push_back(kind);
  key.push_back(hash_hex(netlist_fp));
  return key;
}

}  // namespace

Hash128 mc_job_key(const Hash128& netlist_fp, const EvaluationOptions& options,
                   int run) {
  std::vector<std::string> key = key_prefix("mc", netlist_fp);
  append_key(key, options.synthesis);
  append_key(key, options.fsm);
  append_key(key, options.simulator);
  // The derived seed *is* the run's identity: the same trace reached
  // from a different base/window digests identically.
  append_key(key, options.scenario.with_seed(
                      derive_seed(options.scenario.seed, run)));
  return hash_tokens(key);
}

Hash128 replay_job_key(const Hash128& netlist_fp,
                       const EvaluationOptions& options,
                       const ScenarioSpec& scenario) {
  std::vector<std::string> key = key_prefix("replay", netlist_fp);
  append_key(key, options.synthesis);
  append_key(key, options.fsm);
  append_key(key, options.simulator);
  append_key(key, scenario);
  return hash_tokens(key);
}

Hash128 search_job_key(const Hash128& netlist_fp, const SearchOptions& options,
                       const DesignPoint& point) {
  std::vector<std::string> key = key_prefix("search", netlist_fp);
  // The row is computed under the point's overlaid options — key those,
  // not the bases, so any (base, point) pair producing the same
  // effective configuration shares one entry.
  append_key(key, point.synthesis_options(options.synthesis));
  append_key(key, point.fsm_config(options.fsm));
  append_key(key, options.simulator);
  append_key(key, options.scenario);
  key.push_back("scheme");
  key.push_back(std::to_string(static_cast<int>(point.scheme)));
  // Cost tokens are ordered by the objective list, so it is part of the
  // row's identity.
  key.push_back("objectives");
  for (ObjectiveKind k : options.objectives.kinds) {
    key.push_back(to_string(k));
  }
  return hash_tokens(key);
}

}  // namespace diac
