#include "shard/merge.hpp"

#include <filesystem>
#include <stdexcept>

#include "shard/codec.hpp"
#include "shard/search_row.hpp"

namespace diac {

namespace {

void require_arity(const std::vector<std::string>& tokens, std::size_t want,
                   const char* kind, std::size_t job) {
  if (tokens.size() != want) {
    throw std::runtime_error(std::string("shard merge: ") + kind + " job " +
                             std::to_string(job) + " has " +
                             std::to_string(tokens.size()) + " token(s), " +
                             std::to_string(want) + " expected");
  }
}

// Decodes one "4 x RunStats" payload into a labelled BenchmarkResult.
BenchmarkResult decode_scheme_row(const std::vector<std::string>& tokens,
                                  const std::string& name,
                                  std::size_t gate_count, const char* kind,
                                  std::size_t job) {
  require_arity(tokens, kSchemeCount * kRunStatsTokenCount, kind, job);
  BenchmarkResult res;
  res.name = name;
  res.gate_count = gate_count;
  std::size_t cursor = 0;
  for (Scheme s : kAllSchemes) {
    res.stats[static_cast<std::size_t>(s)] = parse_run_stats(tokens, cursor);
  }
  return res;
}

}  // namespace

MonteCarloResult merge_mc_shards(
    const std::vector<std::vector<std::string>>& payloads,
    const std::string& name, std::size_t gate_count) {
  std::vector<BenchmarkResult> samples;
  samples.reserve(payloads.size());
  for (std::size_t r = 0; r < payloads.size(); ++r) {
    samples.push_back(
        decode_scheme_row(payloads[r], name, gate_count, "mc", r));
  }
  return summarize_monte_carlo(std::move(samples));
}

std::vector<BenchmarkResult> merge_replay_shards(
    const std::vector<std::vector<std::string>>& payloads,
    const std::vector<std::string>& traces, std::size_t gate_count) {
  if (payloads.size() != traces.size()) {
    throw std::runtime_error("shard merge: " +
                             std::to_string(payloads.size()) +
                             " replay row(s) for " +
                             std::to_string(traces.size()) + " trace(s)");
  }
  std::vector<BenchmarkResult> results;
  results.reserve(payloads.size());
  for (std::size_t t = 0; t < payloads.size(); ++t) {
    results.push_back(decode_scheme_row(
        payloads[t], std::filesystem::path(traces[t]).stem().string(),
        gate_count, "replay", t));
  }
  return results;
}

SearchResult merge_search_shards(
    const std::vector<std::vector<std::string>>& payloads,
    const std::vector<DesignPoint>& points,
    const SearchObjectives& objectives) {
  if (objectives.size() == 0) {
    throw std::invalid_argument("merge_search_shards: no objectives");
  }
  if (payloads.size() != points.size()) {
    throw std::runtime_error("shard merge: " +
                             std::to_string(payloads.size()) +
                             " search row(s) for " +
                             std::to_string(points.size()) + " candidate(s)");
  }
  SearchResult result;
  result.candidates.resize(points.size());
  ParetoFront front(objectives.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    CandidateResult& c = result.candidates[i];
    c.point = points[i];
    decode_search_row(payloads[i], objectives.size(), c);
    front.insert(i, c.costs);
    ++result.evaluated;
  }
  result.front = ranked_front(front);
  return result;
}

}  // namespace diac
