/// Shard workers: compute one plan-owned slice of a sweep and stream
/// versioned result rows to a shard file.
///
/// Each function is the in-process body of the hidden `diac
/// shard-worker` subcommand (and directly callable, which is how the
/// bit-identity tests exercise the pipeline without spawning
/// processes).  Workers recompute only what their slice needs —
/// synthesis of the schemes/candidates they evaluate, the seeded
/// sources of their runs, the trace CSVs of their files — so I/O and
/// CPU both scale down with the slice.
///
/// Determinism contract: a job's row depends only on its *global* index
/// and the shared sweep options, never on the plan.  Monte-Carlo seeds
/// derive from the global run index, replay scenarios from the sorted
/// global file list, and search candidates are evaluated with pruning
/// off (each candidate's result is then a pure function of the
/// candidate alone).  Merging the rows of any N-way split therefore
/// reproduces the 1-way sweep bit-for-bit.
/// Cache awareness: every worker takes an optional RowCache.  Before
/// evaluating, each job's canonical digest (shard/job_key.*) is looked
/// up; hits stream the stored tokens verbatim, misses are evaluated —
/// sharing one synthesis via the sparse job builders — and stored.  A
/// hit's row is the exact token sequence a cold run would serialize, so
/// warm and cold sweeps are byte-identical by construction; hits of the
/// wrong arity are defensively treated as misses and overwritten.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "metrics/pdp.hpp"
#include "search/engine.hpp"
#include "shard/plan.hpp"
#include "shard/row_cache.hpp"

namespace diac {

/// Monte-Carlo shard: the plan's slice of `runs` seeded traces, each
/// evaluated under all four schemes.  Row payload: 4 x RunStats in
/// kAllSchemes order.  Rejects non-positive run counts and non-seeded
/// scenarios exactly like evaluate_monte_carlo.
void run_mc_shard(std::ostream& out, const Netlist& nl, const CellLibrary& lib,
                  const EvaluationOptions& options, int runs,
                  const ShardPlan& plan, ExperimentRunner& runner,
                  RowCache* cache = nullptr);

/// Replay shard: the plan's slice of `traces` (the sorted global CSV
/// list), each loaded locally and evaluated under all four schemes.
/// Row payload: 4 x RunStats in kAllSchemes order.
void run_replay_shard(std::ostream& out, const Netlist& nl,
                      const CellLibrary& lib, const EvaluationOptions& options,
                      const std::vector<std::string>& traces,
                      const ShardPlan& plan, ExperimentRunner& runner,
                      RowCache* cache = nullptr);

/// Search shard: the plan's slice of `points` (the full candidate list
/// in canonical order), evaluated through run_search with pruning
/// disabled.  Row payload: RunStats + tasks + commit_points + one cost
/// and one optimistic-floor token per objective.
void run_search_shard(std::ostream& out, const Netlist& nl,
                      const CellLibrary& lib,
                      const std::vector<DesignPoint>& points,
                      const SearchOptions& options, const ShardPlan& plan,
                      ExperimentRunner& runner, RowCache* cache = nullptr);

}  // namespace diac
