/// ShardCoordinator: spawns one worker process per shard, monitors
/// them, and splices their result files back into a dense job-indexed
/// payload vector.
///
/// The coordinator is deliberately agnostic about what a worker *is*:
/// it spawns `exe args... --shards N --shard-index i --shard-out
/// <file>` via posix_spawn, so any binary that understands the shard
/// addressing flags can serve — the `diac` CLI's hidden `shard-worker`
/// subcommand is the stock worker, and because the addressing is plain
/// argv, shard index <-> machine mapping needs no further core changes
/// for multi-machine fan-out (run the same worker command on another
/// host and ship the file back).
///
/// Failure propagation: every worker is reaped even when some fail;
/// non-zero exits and fatal signals are collected into one
/// std::runtime_error naming each failed shard (worker stderr is
/// inherited, so the underlying error is already on the terminal).
/// Merging then independently rejects missing files, truncated files,
/// foreign headers, and duplicate or missing job rows.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace diac {

/// Describes an N-way worker fan-out.
struct ShardLaunch {
  /// Worker binary (the CLI passes its own executable).
  std::string exe;
  /// argv tail shared by every worker; the coordinator appends the
  /// per-shard addressing (`--shards`, `--shard-index`, `--shard-out`).
  std::vector<std::string> args;
  /// Worker process count (>= 1).
  int shards = 1;
  /// Directory for the per-shard result files.  Empty picks a unique
  /// directory under the system temp path, removed when the returned
  /// ShardFileSet is destroyed; a caller-supplied directory is created
  /// if needed and always kept.
  std::string scratch_dir;
  /// When set, each worker also gets `--trace-out <scratch>/shard_i.
  /// trace.json`; the paths come back in ShardFileSet::trace_paths for
  /// the caller to merge (obs side channel — never affects results).
  bool trace_files = false;
  /// Same for `--metrics-out <scratch>/shard_i.metrics.json` into
  /// ShardFileSet::metrics_paths.
  bool metrics_files = false;
  /// Line-buffer each worker's stderr and prefix every line with
  /// `[shard i/N] ` so concurrent diagnostics cannot interleave mid-line.
  /// Off hands workers the parent's stderr fd directly.
  bool prefix_stderr = true;
};

/// The per-shard result files of one fan-out; cleans up the scratch
/// directory on destruction unless `keep` is set.
struct ShardFileSet {
  std::string dir;
  std::vector<std::string> paths;  ///< paths[i] belongs to shard i
  std::vector<std::string> trace_paths;    ///< per-shard trace files, or empty
  std::vector<std::string> metrics_paths;  ///< per-shard metrics files, ditto
  bool keep = false;

  ShardFileSet() = default;
  ShardFileSet(const ShardFileSet&) = delete;
  ShardFileSet& operator=(const ShardFileSet&) = delete;
  ShardFileSet(ShardFileSet&& other) noexcept;
  ShardFileSet& operator=(ShardFileSet&& other) noexcept;
  ~ShardFileSet();
};

/// Spawns the workers, waits for all of them, and returns the result
/// file paths.  Throws std::runtime_error when spawning fails or any
/// worker exits non-zero / dies on a signal (after reaping the rest).
ShardFileSet run_shard_workers(const ShardLaunch& launch);

/// Reads and validates every per-shard file against the expected sweep
/// (`kind`, `shards`, global `jobs`) and splices the rows into a dense
/// vector: result[job] is that job's payload tokens.  Throws
/// std::runtime_error on header mismatches, out-of-range / duplicate
/// rows, rows outside the producing shard's plan slice, or missing
/// jobs.
std::vector<std::vector<std::string>> merge_shard_rows(
    const std::vector<std::string>& paths, const std::string& kind,
    std::size_t shards, std::size_t jobs);

}  // namespace diac
