/// Canonical job digests: one Hash128 per sweep job, the address of its
/// cached result row.
///
/// A digest covers everything a job's row is a function of — the
/// circuit fingerprint, the full option tuple (synthesis, FSM,
/// simulator, scenario) and, for Monte-Carlo, the *derived* per-run
/// seed.  Keying mc rows on the derived seed rather than (base seed,
/// run index) means `--runs 32` warm-starts `--runs 64` (the first 32
/// derived seeds coincide), and search keys are a function of the
/// candidate point's *content*, so a re-run with an overlapping
/// candidate set — a resumed or widened search — hits on the overlap.
///
/// The builders reuse the exp/job_key appenders, so the digest is a
/// pure function of option values; the row-format version is mixed in
/// so a payload-shape change can never resurrect stale entries.
#pragma once

#include "metrics/pdp.hpp"
#include "search/candidate.hpp"
#include "search/engine.hpp"
#include "shard/plan.hpp"
#include "util/hash128.hpp"

namespace diac {

/// Digest of Monte-Carlo run `run` (global index) of a sweep over
/// `options`: the per-run derived seed replaces the base seed, so equal
/// traces share an entry across sweep sizes and base windows.
Hash128 mc_job_key(const Hash128& netlist_fp, const EvaluationOptions& options,
                   int run);

/// Digest of one replayed measurement: `scenario` must be a loaded
/// kTrace spec (the key covers the trace *content*, not its path).
Hash128 replay_job_key(const Hash128& netlist_fp,
                       const EvaluationOptions& options,
                       const ScenarioSpec& scenario);

/// Digest of one search candidate: the base options with the point's
/// axes overlaid, plus the objective list (costs are part of the row)
/// and the point itself.
Hash128 search_job_key(const Hash128& netlist_fp, const SearchOptions& options,
                       const DesignPoint& point);

}  // namespace diac
