#include "shard/search_row.hpp"

#include <stdexcept>

#include "shard/codec.hpp"

namespace diac {

std::size_t search_row_arity(std::size_t objectives) {
  return kRunStatsTokenCount + 2 + 2 * objectives;
}

std::vector<std::string> encode_search_row(const CandidateResult& c) {
  std::vector<std::string> tokens;
  tokens.reserve(search_row_arity(c.costs.size()));
  append_run_stats(tokens, c.stats);
  tokens.push_back(std::to_string(c.tasks));
  tokens.push_back(std::to_string(c.commit_points));
  for (double v : c.costs) tokens.push_back(encode_double(v));
  for (double v : c.optimistic) tokens.push_back(encode_double(v));
  return tokens;
}

void decode_search_row(const std::vector<std::string>& tokens,
                       std::size_t objectives, CandidateResult& c) {
  if (tokens.size() != search_row_arity(objectives)) {
    throw std::runtime_error(
        "search row: " + std::to_string(tokens.size()) + " token(s), " +
        std::to_string(search_row_arity(objectives)) + " expected");
  }
  std::size_t cursor = 0;
  c.stats = parse_run_stats(tokens, cursor);
  c.tasks = static_cast<std::size_t>(decode_int(tokens[cursor++]));
  c.commit_points = static_cast<std::size_t>(decode_int(tokens[cursor++]));
  c.costs.clear();
  c.costs.reserve(objectives);
  for (std::size_t k = 0; k < objectives; ++k) {
    c.costs.push_back(decode_double(tokens[cursor++]));
  }
  c.optimistic.clear();
  c.optimistic.reserve(objectives);
  for (std::size_t k = 0; k < objectives; ++k) {
    c.optimistic.push_back(decode_double(tokens[cursor++]));
  }
  c.pruned = false;
}

}  // namespace diac
