/// Shard merges: decode the dense job-indexed payloads produced by
/// merge_shard_rows back into the sweep result types, bit-identically
/// with the single-process path.
///
/// The merge re-runs exactly the aggregation the in-process sweeps use
/// — summarize_monte_carlo for `mc`, table-order concatenation for
/// `replay`, and a ParetoFront union ranked by ranked_front for
/// `search` — on doubles that round-tripped exactly through the shard
/// codec, so the final report is a pure function of the job set and
/// not of how it was split.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "metrics/montecarlo.hpp"
#include "metrics/pdp.hpp"
#include "search/engine.hpp"

namespace diac {

/// Rebuilds the Monte-Carlo statistics from per-run `mc` rows (4 x
/// RunStats each); `name`/`gate_count` label the samples like
/// evaluate_monte_carlo does.
MonteCarloResult merge_mc_shards(
    const std::vector<std::vector<std::string>>& payloads,
    const std::string& name, std::size_t gate_count);

/// Rebuilds the trace-sweep result list from per-trace `replay` rows;
/// results[i] is named after traces[i]'s file stem, mirroring
/// evaluate_trace_library.
std::vector<BenchmarkResult> merge_replay_shards(
    const std::vector<std::vector<std::string>>& payloads,
    const std::vector<std::string>& traces, std::size_t gate_count);

/// Rebuilds the search result from per-candidate `search` rows: the
/// Pareto front is the union of every shard's exhaustive evaluations
/// (merged searches never prune, so `pruned` is 0 and `evaluated` is
/// the candidate count for any shard split).
SearchResult merge_search_shards(
    const std::vector<std::vector<std::string>>& payloads,
    const std::vector<DesignPoint>& points, const SearchObjectives& objectives);

}  // namespace diac
