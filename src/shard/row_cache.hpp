/// RowCache: the interface shard workers use to skip recomputing jobs
/// whose result rows are already known.
///
/// The concrete store (the content-addressed on-disk cache in
/// src/serve/) lives *above* the shard layer in the dependency DAG, so
/// workers see only this abstract seam: look a key up before
/// evaluating, store the freshly computed tokens after.  Exactness is
/// structural — a hit returns the very token sequence a cold run would
/// have serialized, so cached and computed sweeps are byte-identical by
/// construction, and a lookup that returns tokens of the wrong arity is
/// treated as a miss (defensive: a corrupt or stale entry must never
/// reach a report).
#pragma once

#include <string>
#include <vector>

#include "util/hash128.hpp"

namespace diac {

/// Abstract result-row store keyed by canonical job digests (see
/// shard/job_key.*).  Implementations must tolerate concurrent use from
/// multiple processes sharing one store; lookups/stores happen on the
/// calling thread only.
class RowCache {
 public:
  virtual ~RowCache() = default;

  /// Returns true and fills `tokens` when `key` is present and intact;
  /// false (leaving `tokens` untouched) otherwise.  `kind` is the sweep
  /// kind ("mc" | "replay" | "search") — the same digest under a
  /// different kind is a distinct entry.
  virtual bool lookup(const std::string& kind, const Hash128& key,
                      std::vector<std::string>& tokens) = 0;

  /// Stores `tokens` under `key`; best-effort (a store that fails, e.g.
  /// disk full, must not throw — the sweep's own result is already in
  /// hand).
  virtual void store(const std::string& kind, const Hash128& key,
                     const std::vector<std::string>& tokens) = 0;
};

}  // namespace diac
