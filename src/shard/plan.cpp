#include "shard/plan.hpp"

#include <stdexcept>
#include <string>

namespace diac {

void ShardPlan::validate() const {
  if (shards < 1) {
    throw std::invalid_argument("ShardPlan: shards must be >= 1, got " +
                                std::to_string(shards));
  }
  if (index >= shards) {
    throw std::invalid_argument("ShardPlan: index " + std::to_string(index) +
                                " out of range for " + std::to_string(shards) +
                                " shard(s)");
  }
}

}  // namespace diac
