/// The portable shard result format: versioned, line-oriented rows of
/// space-separated tokens, one row per sweep job.
///
/// Workers stream their slice of a sweep to a per-shard file and the
/// coordinator splices the files back into the dense job-indexed result
/// vector, so the format's one hard requirement is exactness: a merged
/// sweep must be *bit-identical* to the same sweep computed in one
/// process.  Doubles therefore round-trip through C99 hex-float
/// notation ("%a" / strtod) — every finite value, signed zero and
/// infinity is reproduced bit-for-bit, and NaN decodes to a quiet NaN
/// (payload bits are not preserved; nothing in the sweep pipeline reads
/// them).  Integers and bools are plain decimal.
///
/// File layout (version 1):
///
///     diac-shard 1 <kind> <shards> <index> <jobs>
///     row <global_job_index> <token> <token> ...
///     ...
///     end <row_count>
///
/// The `end` trailer makes truncation (a worker killed mid-write)
/// detectable; the header pins the sweep kind ("mc" | "replay" |
/// "search") and the plan so the merge can reject files from a
/// different sweep or split.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "runtime/stats.hpp"

namespace diac {

/// Bumped whenever the row payload of any sweep kind changes shape.
inline constexpr int kShardFormatVersion = 1;

/// Encodes a double so decode_double reproduces it bit-for-bit (finite
/// values and infinities; NaN encodes as "nan" and decodes to a quiet
/// NaN).
std::string encode_double(double value);
/// Inverse of encode_double; throws std::invalid_argument on tokens
/// strtod cannot fully consume.
double decode_double(const std::string& token);

/// Strict decimal-integer decode: the whole token must parse.  Throws
/// std::runtime_error on anything else (corrupt rows must be rejected,
/// never truncated into plausible values).
long long decode_int(const std::string& token);

/// Identifies one shard result file: the sweep kind plus the plan and
/// global job count it was computed under.
struct ShardHeader {
  int version = kShardFormatVersion;
  std::string kind;        ///< "mc" | "replay" | "search"
  std::size_t shards = 1;  ///< worker count of the producing plan
  std::size_t index = 0;   ///< producing worker's shard index
  std::size_t jobs = 0;    ///< global job count of the whole sweep
};

/// One decoded result row: the global job index and its payload tokens.
struct ShardRow {
  std::size_t job = 0;
  std::vector<std::string> tokens;
};

/// A fully parsed shard result file.
struct ShardFile {
  ShardHeader header;
  std::vector<ShardRow> rows;
};

/// Writes the version-1 header line.
void write_shard_header(std::ostream& out, const ShardHeader& header);
/// Writes one "row <job> <tokens...>" line.
void write_shard_row(std::ostream& out, std::size_t job,
                     const std::vector<std::string>& tokens);
/// Writes the "end <rows>" trailer that guards against truncation.
void write_shard_trailer(std::ostream& out, std::size_t rows);

/// Parses a shard result file; throws std::runtime_error (with `path`
/// in the message) on unreadable, malformed, version-mismatched or
/// truncated input.
ShardFile read_shard_file(const std::string& path);

/// Stream form of read_shard_file: parses shard rows from any istream
/// (a cache entry, a serve-protocol response); `name` labels errors.
/// Same strictness — the `end` trailer is mandatory, so a producer that
/// died mid-stream is detected, never silently truncated.
ShardFile read_shard_stream(std::istream& in, const std::string& name);

/// Token count of one serialized RunStats.
inline constexpr std::size_t kRunStatsTokenCount = 22;

/// Appends the 22 RunStats fields, in declaration order, as tokens.
void append_run_stats(std::vector<std::string>& tokens, const RunStats& stats);
/// Decodes kRunStatsTokenCount tokens starting at `cursor` (which
/// advances past them); throws std::runtime_error when fewer remain.
RunStats parse_run_stats(const std::vector<std::string>& tokens,
                         std::size_t& cursor);

}  // namespace diac
