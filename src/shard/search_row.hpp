/// The search-row payload codec: one CandidateResult to/from tokens.
///
/// Factored out of the worker and the merge so the result cache, the
/// serve path and the sharded sweep all serialize a candidate the same
/// way — row payload: RunStats + tasks + commit_points + one cost and
/// one optimistic-floor token per objective.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "search/engine.hpp"

namespace diac {

/// Token count of one search row under `objectives` objectives.
std::size_t search_row_arity(std::size_t objectives);

/// Serializes an evaluated (non-pruned) candidate's row payload.
std::vector<std::string> encode_search_row(const CandidateResult& c);

/// Decodes a row payload back into `c` (everything but `point`, which
/// the caller owns); throws std::runtime_error on wrong arity or
/// malformed tokens.
void decode_search_row(const std::vector<std::string>& tokens,
                       std::size_t objectives, CandidateResult& c);

}  // namespace diac
