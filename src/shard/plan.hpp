/// ShardPlan: a deterministic contiguous partition of sweep job indices
/// across worker processes.
///
/// Every engine sweep (Monte-Carlo runs, trace-library entries, search
/// candidates) is a dense index range [0, jobs).  A plan splits that
/// range into `shards` contiguous blocks — shard i owns
/// [floor(jobs*i/shards), floor(jobs*(i+1)/shards)) — so the partition
/// is a pure function of (jobs, shards, index): no hashing, no state,
/// and any two processes that agree on the job count agree on the
/// ownership map.  Contiguity keeps each worker's candidate slice in
/// canonical order, which is what lets the search worker reuse
/// run_search on its sub-list unchanged.
///
/// Block sizes differ by at most one job, so the plan is balanced for
/// homogeneous jobs; shards past the job count simply own empty ranges
/// (spawning more workers than jobs is wasteful but correct).
#pragma once

#include <cstddef>

namespace diac {

/// Addresses one shard of an N-way split: `--shards N --shard-index i`
/// on the CLI.  Default-constructed, it is the trivial 1-way plan.
struct ShardPlan {
  /// Total worker count N (>= 1).
  std::size_t shards = 1;
  /// This worker's index i (< shards).
  std::size_t index = 0;

  /// Throws std::invalid_argument unless shards >= 1 and index < shards.
  void validate() const;

  /// First job index this shard owns (inclusive).
  std::size_t begin(std::size_t jobs) const { return jobs * index / shards; }
  /// One past the last job index this shard owns.
  std::size_t end(std::size_t jobs) const {
    return jobs * (index + 1) / shards;
  }
  /// Number of jobs this shard owns.
  std::size_t count(std::size_t jobs) const { return end(jobs) - begin(jobs); }
  /// True when this shard owns global job index `job`.
  bool owns(std::size_t job, std::size_t jobs) const {
    return job >= begin(jobs) && job < end(jobs);
  }
};

}  // namespace diac
