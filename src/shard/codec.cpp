#include "shard/codec.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/exactfmt.hpp"

namespace diac {

// The exact round-trip lives in util/exactfmt so lower layers (the
// job-key builders in exp/) share one implementation; these wrappers
// keep the codec's historical API.
std::string encode_double(double value) { return exact_encode_double(value); }

double decode_double(const std::string& token) {
  return exact_decode_double(token);
}

long long decode_int(const std::string& token) {
  return exact_decode_int(token);
}

namespace {

const std::string& token_at(const std::vector<std::string>& tokens,
                            std::size_t i) {
  if (i >= tokens.size()) {
    throw std::runtime_error("shard codec: row payload truncated at token " +
                             std::to_string(i));
  }
  return tokens[i];
}

}  // namespace

void write_shard_header(std::ostream& out, const ShardHeader& header) {
  out << "diac-shard " << header.version << " " << header.kind << " "
      << header.shards << " " << header.index << " " << header.jobs << "\n";
}

void write_shard_row(std::ostream& out, std::size_t job,
                     const std::vector<std::string>& tokens) {
  out << "row " << job;
  for (const std::string& t : tokens) out << " " << t;
  out << "\n";
}

void write_shard_trailer(std::ostream& out, std::size_t rows) {
  out << "end " << rows << "\n";
}

ShardFile read_shard_stream(std::istream& in, const std::string& name) {
  auto fail = [&name](const std::string& what) -> std::runtime_error {
    return std::runtime_error("shard file " + name + ": " + what);
  };

  ShardFile file;
  std::string line;
  if (!std::getline(in, line)) throw fail("empty file");
  {
    std::istringstream h(line);
    std::string magic;
    h >> magic >> file.header.version >> file.header.kind >>
        file.header.shards >> file.header.index >> file.header.jobs;
    if (!h || magic != "diac-shard") throw fail("bad header '" + line + "'");
    if (file.header.version != kShardFormatVersion) {
      throw fail("format version " + std::to_string(file.header.version) +
                 " (this build reads " + std::to_string(kShardFormatVersion) +
                 ")");
    }
  }

  bool ended = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "row") {
      if (ended) throw fail("row after end trailer");
      ShardRow row;
      if (!(ls >> row.job)) throw fail("bad row line '" + line + "'");
      std::string token;
      while (ls >> token) row.tokens.push_back(std::move(token));
      file.rows.push_back(std::move(row));
    } else if (tag == "end") {
      std::size_t count = 0;
      if (!(ls >> count)) throw fail("bad end trailer '" + line + "'");
      if (count != file.rows.size()) {
        throw fail("trailer claims " + std::to_string(count) + " row(s), " +
                   std::to_string(file.rows.size()) + " present");
      }
      ended = true;
    } else {
      throw fail("unknown line '" + line + "'");
    }
  }
  if (!ended) throw fail("truncated (missing end trailer)");
  return file;
}

ShardFile read_shard_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("shard file: cannot read " + path);
  }
  return read_shard_stream(in, path);
}

void append_run_stats(std::vector<std::string>& tokens, const RunStats& s) {
  tokens.push_back(encode_double(s.makespan));
  tokens.push_back(std::to_string(s.instances_completed));
  tokens.push_back(std::to_string(s.workload_completed ? 1 : 0));
  tokens.push_back(encode_double(s.energy_consumed));
  tokens.push_back(encode_double(s.energy_harvested));
  tokens.push_back(encode_double(s.energy_wasted));
  tokens.push_back(encode_double(s.reexec_energy));
  tokens.push_back(std::to_string(s.backups));
  tokens.push_back(std::to_string(s.restores));
  tokens.push_back(std::to_string(s.safe_zone_saves));
  tokens.push_back(std::to_string(s.deep_outages));
  tokens.push_back(std::to_string(s.power_interrupts));
  tokens.push_back(std::to_string(s.nvm_writes));
  tokens.push_back(std::to_string(s.nvm_boundary_writes));
  tokens.push_back(std::to_string(s.nvm_bits_written));
  tokens.push_back(std::to_string(s.tasks_executed));
  tokens.push_back(std::to_string(s.tasks_reexecuted));
  tokens.push_back(std::to_string(s.task_aborts));
  tokens.push_back(encode_double(s.time_active));
  tokens.push_back(encode_double(s.time_sleep));
  tokens.push_back(encode_double(s.time_off));
  tokens.push_back(encode_double(s.time_backup));
}

RunStats parse_run_stats(const std::vector<std::string>& tokens,
                         std::size_t& cursor) {
  RunStats s;
  auto next = [&tokens, &cursor]() -> const std::string& {
    return token_at(tokens, cursor++);
  };
  s.makespan = decode_double(next());
  s.instances_completed = static_cast<int>(decode_int(next()));
  s.workload_completed = decode_int(next()) != 0;
  s.energy_consumed = decode_double(next());
  s.energy_harvested = decode_double(next());
  s.energy_wasted = decode_double(next());
  s.reexec_energy = decode_double(next());
  s.backups = static_cast<int>(decode_int(next()));
  s.restores = static_cast<int>(decode_int(next()));
  s.safe_zone_saves = static_cast<int>(decode_int(next()));
  s.deep_outages = static_cast<int>(decode_int(next()));
  s.power_interrupts = static_cast<int>(decode_int(next()));
  s.nvm_writes = static_cast<int>(decode_int(next()));
  s.nvm_boundary_writes = static_cast<int>(decode_int(next()));
  s.nvm_bits_written = decode_int(next());
  s.tasks_executed = static_cast<int>(decode_int(next()));
  s.tasks_reexecuted = static_cast<int>(decode_int(next()));
  s.task_aborts = static_cast<int>(decode_int(next()));
  s.time_active = decode_double(next());
  s.time_sleep = decode_double(next());
  s.time_off = decode_double(next());
  s.time_backup = decode_double(next());
  return s;
}

}  // namespace diac
