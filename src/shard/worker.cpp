#include "shard/worker.hpp"

#include <ostream>
#include <stdexcept>

#include "metrics/montecarlo.hpp"
#include "metrics/trace_sweep.hpp"
#include "netlist/fingerprint.hpp"
#include "shard/codec.hpp"
#include "shard/job_key.hpp"
#include "shard/search_row.hpp"

namespace diac {

namespace {

ShardHeader header_for(const std::string& kind, const ShardPlan& plan,
                       std::size_t jobs) {
  ShardHeader h;
  h.kind = kind;
  h.shards = plan.shards;
  h.index = plan.index;
  h.jobs = jobs;
  return h;
}

// Serializes one four-scheme job group (mc and replay rows share this
// payload shape).
std::vector<std::string> scheme_row_tokens(const std::vector<RunStats>& stats,
                                           std::size_t group) {
  std::vector<std::string> tokens;
  tokens.reserve(kSchemeCount * kRunStatsTokenCount);
  for (Scheme s : kAllSchemes) {
    append_run_stats(
        tokens, stats[group * kSchemeCount + static_cast<std::size_t>(s)]);
  }
  return tokens;
}

// A cached row is only usable when it has the shape this build would
// serialize; anything else is treated as a miss (and recomputed over).
bool valid_hit(const std::vector<std::string>& tokens, std::size_t arity) {
  return tokens.size() == arity;
}

}  // namespace

void run_mc_shard(std::ostream& out, const Netlist& nl, const CellLibrary& lib,
                  const EvaluationOptions& options, int runs,
                  const ShardPlan& plan, ExperimentRunner& runner,
                  RowCache* cache) {
  plan.validate();
  if (runs <= 0) {
    throw std::invalid_argument("run_mc_shard: runs must be positive");
  }
  const auto jobs_total = static_cast<std::size_t>(runs);
  write_shard_header(out, header_for("mc", plan, jobs_total));

  const std::size_t first = plan.begin(jobs_total);
  const std::size_t count = plan.count(jobs_total);
  if (count == 0) {  // more shards than runs: nothing to synthesize
    write_shard_trailer(out, 0);
    return;
  }

  // Probe the cache for every run of the slice; rows[k] empty = miss.
  const std::size_t arity = kSchemeCount * kRunStatsTokenCount;
  std::vector<std::vector<std::string>> rows(count);
  std::vector<Hash128> keys(count);
  std::vector<std::size_t> misses;
  if (cache != nullptr) {
    const Hash128 fp = canonical_fingerprint(nl);
    for (std::size_t k = 0; k < count; ++k) {
      keys[k] = mc_job_key(fp, options, static_cast<int>(first + k));
      if (!cache->lookup("mc", keys[k], rows[k]) ||
          !valid_hit(rows[k], arity)) {
        rows[k].clear();
        misses.push_back(k);
      }
    }
  } else {
    for (std::size_t k = 0; k < count; ++k) misses.push_back(k);
  }

  if (!misses.empty()) {
    // The builder evaluate_monte_carlo itself uses, over exactly the
    // missed global runs — identical jobs by construction (and it
    // rejects non-seeded scenarios like the in-process sweep does).
    std::vector<std::size_t> miss_runs;
    miss_runs.reserve(misses.size());
    for (std::size_t k : misses) miss_runs.push_back(first + k);
    const McSweepJobs sweep(nl, lib, options, miss_runs, runner);
    const std::vector<RunStats> stats = run_simulations(runner, sweep.jobs());
    for (std::size_t m = 0; m < misses.size(); ++m) {
      rows[misses[m]] = scheme_row_tokens(stats, m);
      if (cache != nullptr) cache->store("mc", keys[misses[m]], rows[misses[m]]);
    }
  }

  for (std::size_t k = 0; k < count; ++k) {
    write_shard_row(out, first + k, rows[k]);
  }
  write_shard_trailer(out, count);
}

void run_replay_shard(std::ostream& out, const Netlist& nl,
                      const CellLibrary& lib, const EvaluationOptions& options,
                      const std::vector<std::string>& traces,
                      const ShardPlan& plan, ExperimentRunner& runner,
                      RowCache* cache) {
  plan.validate();
  if (traces.empty()) {
    throw std::invalid_argument("run_replay_shard: no traces");
  }
  write_shard_header(out, header_for("replay", plan, traces.size()));

  const std::size_t first = plan.begin(traces.size());
  const std::size_t count = plan.count(traces.size());
  if (count == 0) {  // more shards than traces: nothing to load
    write_shard_trailer(out, 0);
    return;
  }

  // Only the slice's CSVs are read: disk I/O shards along with the
  // compute.  Keys cover the trace *content*, so loading happens before
  // the cache probe either way (a CSV read is noise next to a replay).
  std::vector<ScenarioSpec> scenarios;
  scenarios.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    scenarios.push_back(trace_scenario(traces[first + k]));
  }

  const std::size_t arity = kSchemeCount * kRunStatsTokenCount;
  std::vector<std::vector<std::string>> rows(count);
  std::vector<Hash128> keys(count);
  std::vector<std::size_t> misses;
  if (cache != nullptr) {
    const Hash128 fp = canonical_fingerprint(nl);
    for (std::size_t k = 0; k < count; ++k) {
      keys[k] = replay_job_key(fp, options, scenarios[k]);
      if (!cache->lookup("replay", keys[k], rows[k]) ||
          !valid_hit(rows[k], arity)) {
        rows[k].clear();
        misses.push_back(k);
      }
    }
  } else {
    for (std::size_t k = 0; k < count; ++k) misses.push_back(k);
  }

  if (!misses.empty()) {
    // The job builder evaluate_trace_library uses, over the missed
    // scenarios of the sorted global file list — identical jobs by
    // construction.
    std::vector<ScenarioSpec> miss_scenarios;
    miss_scenarios.reserve(misses.size());
    for (std::size_t k : misses) miss_scenarios.push_back(scenarios[k]);
    const ReplaySweepJobs sweep(nl, lib, options, miss_scenarios);
    const std::vector<RunStats> stats = run_simulations(runner, sweep.jobs());
    for (std::size_t m = 0; m < misses.size(); ++m) {
      rows[misses[m]] = scheme_row_tokens(stats, m);
      if (cache != nullptr) {
        cache->store("replay", keys[misses[m]], rows[misses[m]]);
      }
    }
  }

  for (std::size_t k = 0; k < count; ++k) {
    write_shard_row(out, first + k, rows[k]);
  }
  write_shard_trailer(out, count);
}

void run_search_shard(std::ostream& out, const Netlist& nl,
                      const CellLibrary& lib,
                      const std::vector<DesignPoint>& points,
                      const SearchOptions& options, const ShardPlan& plan,
                      ExperimentRunner& runner, RowCache* cache) {
  plan.validate();
  write_shard_header(out, header_for("search", plan, points.size()));

  const std::size_t first = plan.begin(points.size());
  const std::vector<DesignPoint> slice(
      points.begin() + static_cast<std::ptrdiff_t>(first),
      points.begin() + static_cast<std::ptrdiff_t>(plan.end(points.size())));

  const std::size_t arity = search_row_arity(options.objectives.size());
  std::vector<std::vector<std::string>> rows(slice.size());
  std::vector<Hash128> keys(slice.size());
  std::vector<std::size_t> misses;
  if (cache != nullptr) {
    const Hash128 fp = canonical_fingerprint(nl);
    for (std::size_t k = 0; k < slice.size(); ++k) {
      keys[k] = search_job_key(fp, options, slice[k]);
      if (!cache->lookup("search", keys[k], rows[k]) ||
          !valid_hit(rows[k], arity)) {
        rows[k].clear();
        misses.push_back(k);
      }
    }
  } else {
    for (std::size_t k = 0; k < slice.size(); ++k) misses.push_back(k);
  }

  if (!misses.empty()) {
    // Pruning decisions depend on the evaluation order of *other*
    // candidates, so sharded (and cached) searches evaluate
    // exhaustively; each candidate's row is then a pure function of
    // that candidate, which is also what lets the miss subset be
    // evaluated on its own — a warm-started, resumable search.
    std::vector<DesignPoint> miss_points;
    miss_points.reserve(misses.size());
    for (std::size_t k : misses) miss_points.push_back(slice[k]);
    SearchOptions exhaustive = options;
    exhaustive.prune = false;
    const SearchResult result =
        run_search(nl, lib, miss_points, exhaustive, runner);
    for (std::size_t m = 0; m < misses.size(); ++m) {
      rows[misses[m]] = encode_search_row(result.candidates[m]);
      if (cache != nullptr) {
        cache->store("search", keys[misses[m]], rows[misses[m]]);
      }
    }
  }

  for (std::size_t k = 0; k < slice.size(); ++k) {
    write_shard_row(out, first + k, rows[k]);
  }
  write_shard_trailer(out, slice.size());
}

}  // namespace diac
