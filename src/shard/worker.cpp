#include "shard/worker.hpp"

#include <ostream>
#include <stdexcept>

#include "metrics/montecarlo.hpp"
#include "metrics/trace_sweep.hpp"
#include "shard/codec.hpp"

namespace diac {

namespace {

ShardHeader header_for(const std::string& kind, const ShardPlan& plan,
                       std::size_t jobs) {
  ShardHeader h;
  h.kind = kind;
  h.shards = plan.shards;
  h.index = plan.index;
  h.jobs = jobs;
  return h;
}

}  // namespace

void run_mc_shard(std::ostream& out, const Netlist& nl, const CellLibrary& lib,
                  const EvaluationOptions& options, int runs,
                  const ShardPlan& plan, ExperimentRunner& runner) {
  plan.validate();
  if (runs <= 0) {
    throw std::invalid_argument("run_mc_shard: runs must be positive");
  }
  const auto jobs_total = static_cast<std::size_t>(runs);
  write_shard_header(out, header_for("mc", plan, jobs_total));

  const std::size_t first = plan.begin(jobs_total);
  const std::size_t count = plan.count(jobs_total);
  if (count == 0) {  // more shards than runs: nothing to synthesize
    write_shard_trailer(out, 0);
    return;
  }

  // The builder evaluate_monte_carlo itself uses, over the slice's
  // global run range — identical jobs by construction (and it rejects
  // non-seeded scenarios like the in-process sweep does).
  const McSweepJobs sweep(nl, lib, options, first, count, runner);
  const std::vector<RunStats> stats = run_simulations(runner, sweep.jobs());

  for (std::size_t k = 0; k < count; ++k) {
    std::vector<std::string> tokens;
    tokens.reserve(kSchemeCount * kRunStatsTokenCount);
    for (Scheme s : kAllSchemes) {
      append_run_stats(tokens,
                       stats[k * kSchemeCount + static_cast<std::size_t>(s)]);
    }
    write_shard_row(out, first + k, tokens);
  }
  write_shard_trailer(out, count);
}

void run_replay_shard(std::ostream& out, const Netlist& nl,
                      const CellLibrary& lib, const EvaluationOptions& options,
                      const std::vector<std::string>& traces,
                      const ShardPlan& plan, ExperimentRunner& runner) {
  plan.validate();
  if (traces.empty()) {
    throw std::invalid_argument("run_replay_shard: no traces");
  }
  write_shard_header(out, header_for("replay", plan, traces.size()));

  const std::size_t first = plan.begin(traces.size());
  const std::size_t count = plan.count(traces.size());
  if (count == 0) {  // more shards than traces: nothing to load
    write_shard_trailer(out, 0);
    return;
  }

  // Only the slice's CSVs are read: disk I/O shards along with the
  // compute.  The job builder is the one evaluate_trace_library uses,
  // over the slice of the sorted global file list — identical jobs by
  // construction.
  std::vector<ScenarioSpec> scenarios;
  scenarios.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    scenarios.push_back(trace_scenario(traces[first + k]));
  }
  const ReplaySweepJobs sweep(nl, lib, options, scenarios);
  const std::vector<RunStats> stats = run_simulations(runner, sweep.jobs());

  for (std::size_t k = 0; k < count; ++k) {
    std::vector<std::string> tokens;
    tokens.reserve(kSchemeCount * kRunStatsTokenCount);
    for (Scheme s : kAllSchemes) {
      append_run_stats(tokens,
                       stats[k * kSchemeCount + static_cast<std::size_t>(s)]);
    }
    write_shard_row(out, first + k, tokens);
  }
  write_shard_trailer(out, count);
}

void run_search_shard(std::ostream& out, const Netlist& nl,
                      const CellLibrary& lib,
                      const std::vector<DesignPoint>& points,
                      const SearchOptions& options, const ShardPlan& plan,
                      ExperimentRunner& runner) {
  plan.validate();
  write_shard_header(out, header_for("search", plan, points.size()));

  const std::size_t first = plan.begin(points.size());
  const std::vector<DesignPoint> slice(
      points.begin() + static_cast<std::ptrdiff_t>(first),
      points.begin() + static_cast<std::ptrdiff_t>(plan.end(points.size())));

  // Pruning decisions depend on the evaluation order of *other*
  // candidates, so sharded searches evaluate exhaustively; each
  // candidate's row is then a pure function of that candidate, and the
  // merged front equals the pruned front (pruning is provably sound).
  SearchOptions exhaustive = options;
  exhaustive.prune = false;
  const SearchResult result = run_search(nl, lib, slice, exhaustive, runner);

  for (std::size_t j = 0; j < result.candidates.size(); ++j) {
    const CandidateResult& c = result.candidates[j];
    std::vector<std::string> tokens;
    tokens.reserve(kRunStatsTokenCount + 2 + 2 * c.costs.size());
    append_run_stats(tokens, c.stats);
    tokens.push_back(std::to_string(c.tasks));
    tokens.push_back(std::to_string(c.commit_points));
    for (double v : c.costs) tokens.push_back(encode_double(v));
    for (double v : c.optimistic) tokens.push_back(encode_double(v));
    write_shard_row(out, first + j, tokens);
  }
  write_shard_trailer(out, result.candidates.size());
}

}  // namespace diac
