#include "shard/coordinator.hpp"

#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <system_error>

#include "shard/codec.hpp"
#include "shard/plan.hpp"

extern char** environ;

namespace diac {

namespace fs = std::filesystem;

namespace {

void remove_scratch(const std::string& dir, bool keep) {
  if (keep || dir.empty()) return;
  std::error_code ec;
  fs::remove_all(dir, ec);  // best effort; scratch lives under temp
}

}  // namespace

ShardFileSet::ShardFileSet(ShardFileSet&& other) noexcept
    : dir(std::move(other.dir)),
      paths(std::move(other.paths)),
      keep(other.keep) {
  other.dir.clear();
}

ShardFileSet& ShardFileSet::operator=(ShardFileSet&& other) noexcept {
  if (this != &other) {
    remove_scratch(dir, keep);
    dir = std::move(other.dir);
    paths = std::move(other.paths);
    keep = other.keep;
    other.dir.clear();
  }
  return *this;
}

ShardFileSet::~ShardFileSet() { remove_scratch(dir, keep); }

namespace {

std::string make_scratch_dir() {
  static std::atomic<unsigned> counter{0};
  const fs::path dir =
      fs::temp_directory_path() /
      ("diac_shard_" + std::to_string(::getpid()) + "_" +
       std::to_string(counter.fetch_add(1)));
  fs::create_directories(dir);
  return dir.string();
}

pid_t spawn_worker(const std::string& exe,
                   const std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 2);
  argv.push_back(const_cast<char*>(exe.c_str()));
  for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  pid_t pid = -1;
  // posix_spawnp: PATH search covers the non-Linux fallback where the
  // worker binary is self_exe()'s bare argv[0].
  const int rc = ::posix_spawnp(&pid, exe.c_str(), nullptr, nullptr,
                                argv.data(), environ);
  if (rc != 0) {
    throw std::runtime_error("shard coordinator: posix_spawn " + exe + ": " +
                             std::strerror(rc));
  }
  return pid;
}

// Reaps `pid`; returns an empty string on clean exit, else a
// description of the failure.
std::string reap_worker(pid_t pid) {
  int status = 0;
  if (::waitpid(pid, &status, 0) < 0) {
    return std::string("waitpid: ") + std::strerror(errno);
  }
  if (WIFEXITED(status)) {
    const int code = WEXITSTATUS(status);
    if (code == 0) return {};
    return "exited with status " + std::to_string(code);
  }
  if (WIFSIGNALED(status)) {
    return std::string("killed by signal ") +
           std::to_string(WTERMSIG(status));
  }
  return "ended abnormally";
}

}  // namespace

ShardFileSet run_shard_workers(const ShardLaunch& launch) {
  if (launch.shards < 1) {
    throw std::invalid_argument("shard coordinator: shards must be >= 1");
  }
  ShardFileSet files;
  if (launch.scratch_dir.empty()) {
    files.dir = make_scratch_dir();
  } else {
    files.dir = launch.scratch_dir;
    files.keep = true;  // the caller owns an explicit directory
    fs::create_directories(files.dir);
  }

  std::vector<pid_t> pids;
  pids.reserve(static_cast<std::size_t>(launch.shards));
  std::string errors;
  for (int i = 0; i < launch.shards; ++i) {
    const std::string out =
        (fs::path(files.dir) / ("shard_" + std::to_string(i) + ".rows"))
            .string();
    files.paths.push_back(out);
    std::vector<std::string> args = launch.args;
    args.push_back("--shards");
    args.push_back(std::to_string(launch.shards));
    args.push_back("--shard-index");
    args.push_back(std::to_string(i));
    args.push_back("--shard-out");
    args.push_back(out);
    try {
      pids.push_back(spawn_worker(launch.exe, args));
    } catch (const std::exception& e) {
      errors += std::string(errors.empty() ? "" : "; ") + "shard " +
                std::to_string(i) + "/" + std::to_string(launch.shards) +
                ": " + e.what();
      break;  // don't launch more after a spawn failure
    }
  }

  // Reap every launched worker even when some fail, so no zombies
  // outlive the sweep.
  for (std::size_t i = 0; i < pids.size(); ++i) {
    const std::string failure = reap_worker(pids[i]);
    if (!failure.empty()) {
      errors += std::string(errors.empty() ? "" : "; ") + "shard " +
                std::to_string(i) + "/" + std::to_string(launch.shards) +
                ": worker " + failure;
    }
  }
  if (!errors.empty()) {
    throw std::runtime_error("shard coordinator: " + errors);
  }
  return files;
}

std::vector<std::vector<std::string>> merge_shard_rows(
    const std::vector<std::string>& paths, const std::string& kind,
    std::size_t shards, std::size_t jobs) {
  if (paths.size() != shards) {
    throw std::runtime_error("shard merge: " + std::to_string(paths.size()) +
                             " file(s) for " + std::to_string(shards) +
                             " shard(s)");
  }
  std::vector<std::vector<std::string>> payloads(jobs);
  std::vector<bool> seen(jobs, false);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    ShardFile file = read_shard_file(paths[i]);
    const ShardHeader& h = file.header;
    if (h.kind != kind || h.shards != shards || h.index != i ||
        h.jobs != jobs) {
      throw std::runtime_error(
          "shard merge: " + paths[i] + " header (" + h.kind + " " +
          std::to_string(h.shards) + "/" + std::to_string(h.index) + ", " +
          std::to_string(h.jobs) + " job(s)) does not match the sweep (" +
          kind + " " + std::to_string(shards) + "/" + std::to_string(i) +
          ", " + std::to_string(jobs) + " job(s))");
    }
    const ShardPlan plan{shards, i};
    for (ShardRow& row : file.rows) {
      if (row.job >= jobs || !plan.owns(row.job, jobs)) {
        throw std::runtime_error("shard merge: " + paths[i] +
                                 " contains job " + std::to_string(row.job) +
                                 " outside its slice");
      }
      if (seen[row.job]) {
        throw std::runtime_error("shard merge: duplicate row for job " +
                                 std::to_string(row.job));
      }
      seen[row.job] = true;
      payloads[row.job] = std::move(row.tokens);
    }
  }
  for (std::size_t j = 0; j < jobs; ++j) {
    if (!seen[j]) {
      throw std::runtime_error("shard merge: no shard produced job " +
                               std::to_string(j));
    }
  }
  return payloads;
}

}  // namespace diac
