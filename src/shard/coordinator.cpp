#include "shard/coordinator.hpp"

#include <fcntl.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <stdexcept>
#include <system_error>
#include <thread>

#include "obs/obs.hpp"
#include "shard/codec.hpp"
#include "shard/plan.hpp"

extern char** environ;

namespace diac {

namespace fs = std::filesystem;

namespace {

void remove_scratch(const std::string& dir, bool keep) {
  if (keep || dir.empty()) return;
  std::error_code ec;
  fs::remove_all(dir, ec);  // best effort; scratch lives under temp
}

}  // namespace

ShardFileSet::ShardFileSet(ShardFileSet&& other) noexcept
    : dir(std::move(other.dir)),
      paths(std::move(other.paths)),
      trace_paths(std::move(other.trace_paths)),
      metrics_paths(std::move(other.metrics_paths)),
      keep(other.keep) {
  other.dir.clear();
}

ShardFileSet& ShardFileSet::operator=(ShardFileSet&& other) noexcept {
  if (this != &other) {
    remove_scratch(dir, keep);
    dir = std::move(other.dir);
    paths = std::move(other.paths);
    trace_paths = std::move(other.trace_paths);
    metrics_paths = std::move(other.metrics_paths);
    keep = other.keep;
    other.dir.clear();
  }
  return *this;
}

ShardFileSet::~ShardFileSet() { remove_scratch(dir, keep); }

namespace {

std::string make_scratch_dir() {
  static std::atomic<unsigned> counter{0};
  const fs::path dir =
      fs::temp_directory_path() /
      ("diac_shard_" + std::to_string(::getpid()) + "_" +
       std::to_string(counter.fetch_add(1)));
  fs::create_directories(dir);
  return dir.string();
}

pid_t spawn_worker(const std::string& exe, const std::vector<std::string>& args,
                   posix_spawn_file_actions_t* file_actions) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 2);
  argv.push_back(const_cast<char*>(exe.c_str()));
  for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  pid_t pid = -1;
  // posix_spawnp: PATH search covers the non-Linux fallback where the
  // worker binary is self_exe()'s bare argv[0].
  const int rc = ::posix_spawnp(&pid, exe.c_str(), file_actions, nullptr,
                                argv.data(), environ);
  if (rc != 0) {
    throw std::runtime_error("shard coordinator: posix_spawn " + exe + ": " +
                             std::strerror(rc));
  }
  return pid;
}

// Worker diagnostics are forwarded whole-line under one lock so lines
// from concurrent workers (and the coordinator itself) never interleave
// mid-line.
std::mutex& stderr_mutex() {
  static std::mutex m;
  return m;
}

void emit_stderr_line(const std::string& prefix, const std::string& line) {
  const std::string full = prefix + line + "\n";
  const std::lock_guard<std::mutex> lock(stderr_mutex());
  std::fwrite(full.data(), 1, full.size(), stderr);
  std::fflush(stderr);
}

// Reads one worker's stderr pipe until EOF (the worker exiting closes
// the only write end), re-emitting it line-buffered with the shard tag.
void relay_worker_stderr(int fd, const std::string& prefix) {
  std::string pending;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;
    pending.append(buf, static_cast<std::size_t>(n));
    std::size_t pos;
    while ((pos = pending.find('\n')) != std::string::npos) {
      emit_stderr_line(prefix, pending.substr(0, pos));
      pending.erase(0, pos + 1);
    }
  }
  if (!pending.empty()) emit_stderr_line(prefix, pending);
  ::close(fd);
}

// Reaps `pid`; returns an empty string on clean exit, else a
// description of the failure.
std::string reap_worker(pid_t pid) {
  int status = 0;
  if (::waitpid(pid, &status, 0) < 0) {
    return std::string("waitpid: ") + std::strerror(errno);
  }
  if (WIFEXITED(status)) {
    const int code = WEXITSTATUS(status);
    if (code == 0) return {};
    return "exited with status " + std::to_string(code);
  }
  if (WIFSIGNALED(status)) {
    return std::string("killed by signal ") +
           std::to_string(WTERMSIG(status));
  }
  return "ended abnormally";
}

}  // namespace

ShardFileSet run_shard_workers(const ShardLaunch& launch) {
  if (launch.shards < 1) {
    throw std::invalid_argument("shard coordinator: shards must be >= 1");
  }
  ShardFileSet files;
  if (launch.scratch_dir.empty()) {
    files.dir = make_scratch_dir();
  } else {
    files.dir = launch.scratch_dir;
    files.keep = true;  // the caller owns an explicit directory
    fs::create_directories(files.dir);
  }

  DIAC_OBS_COUNT("shard.workers", launch.shards);

  std::vector<pid_t> pids;
  pids.reserve(static_cast<std::size_t>(launch.shards));
  std::vector<std::thread> relays;
  std::string errors;
  {
    DIAC_TRACE_SPAN_ARG("shard.spawn", "shard", "workers", launch.shards);
    for (int i = 0; i < launch.shards; ++i) {
      const fs::path base = fs::path(files.dir) / ("shard_" + std::to_string(i));
      const std::string out = base.string() + ".rows";
      files.paths.push_back(out);
      std::vector<std::string> args = launch.args;
      if (launch.trace_files) {
        files.trace_paths.push_back(base.string() + ".trace.json");
        args.push_back("--trace-out");
        args.push_back(files.trace_paths.back());
      }
      if (launch.metrics_files) {
        files.metrics_paths.push_back(base.string() + ".metrics.json");
        args.push_back("--metrics-out");
        args.push_back(files.metrics_paths.back());
      }
      args.push_back("--shards");
      args.push_back(std::to_string(launch.shards));
      args.push_back("--shard-index");
      args.push_back(std::to_string(i));
      args.push_back("--shard-out");
      args.push_back(out);

      // With prefixing on, the worker's fd 2 becomes the write end of a
      // pipe drained by a relay thread; O_CLOEXEC keeps later workers
      // from inheriting earlier pipes (dup2 clears the flag on fd 2).
      int pipe_fds[2] = {-1, -1};
      posix_spawn_file_actions_t fa;
      posix_spawn_file_actions_t* fap = nullptr;
      if (launch.prefix_stderr) {
        if (::pipe2(pipe_fds, O_CLOEXEC) != 0) {
          errors += std::string(errors.empty() ? "" : "; ") + "shard " +
                    std::to_string(i) + "/" + std::to_string(launch.shards) +
                    ": pipe2: " + std::strerror(errno);
          break;
        }
        ::posix_spawn_file_actions_init(&fa);
        ::posix_spawn_file_actions_adddup2(&fa, pipe_fds[1], 2);
        fap = &fa;
      }
      try {
        pids.push_back(spawn_worker(launch.exe, args, fap));
      } catch (const std::exception& e) {
        if (fap != nullptr) {
          ::posix_spawn_file_actions_destroy(&fa);
          ::close(pipe_fds[0]);
          ::close(pipe_fds[1]);
        }
        errors += std::string(errors.empty() ? "" : "; ") + "shard " +
                  std::to_string(i) + "/" + std::to_string(launch.shards) +
                  ": " + e.what();
        break;  // don't launch more after a spawn failure
      }
      if (fap != nullptr) {
        ::posix_spawn_file_actions_destroy(&fa);
        ::close(pipe_fds[1]);
        relays.emplace_back(relay_worker_stderr, pipe_fds[0],
                            "[shard " + std::to_string(i) + "/" +
                                std::to_string(launch.shards) + "] ");
      }
    }
  }

  // Reap every launched worker even when some fail, so no zombies
  // outlive the sweep.
  {
    DIAC_TRACE_SPAN_ARG("shard.wait", "shard", "workers", pids.size());
    for (std::size_t i = 0; i < pids.size(); ++i) {
      const std::string failure = reap_worker(pids[i]);
      if (!failure.empty()) {
        errors += std::string(errors.empty() ? "" : "; ") + "shard " +
                  std::to_string(i) + "/" + std::to_string(launch.shards) +
                  ": worker " + failure;
      }
    }
  }
  // All write ends are closed once the workers exit, so the relays see
  // EOF and drain any final partial line.
  for (std::thread& t : relays) t.join();
  if (!errors.empty()) {
    throw std::runtime_error("shard coordinator: " + errors);
  }
  return files;
}

std::vector<std::vector<std::string>> merge_shard_rows(
    const std::vector<std::string>& paths, const std::string& kind,
    std::size_t shards, std::size_t jobs) {
  DIAC_TRACE_SPAN_ARG("shard.merge", "shard", "jobs", jobs);
  if (paths.size() != shards) {
    throw std::runtime_error("shard merge: " + std::to_string(paths.size()) +
                             " file(s) for " + std::to_string(shards) +
                             " shard(s)");
  }
  std::vector<std::vector<std::string>> payloads(jobs);
  std::vector<bool> seen(jobs, false);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    ShardFile file = read_shard_file(paths[i]);
    const ShardHeader& h = file.header;
    if (h.kind != kind || h.shards != shards || h.index != i ||
        h.jobs != jobs) {
      throw std::runtime_error(
          "shard merge: " + paths[i] + " header (" + h.kind + " " +
          std::to_string(h.shards) + "/" + std::to_string(h.index) + ", " +
          std::to_string(h.jobs) + " job(s)) does not match the sweep (" +
          kind + " " + std::to_string(shards) + "/" + std::to_string(i) +
          ", " + std::to_string(jobs) + " job(s))");
    }
    const ShardPlan plan{shards, i};
    for (ShardRow& row : file.rows) {
      if (row.job >= jobs || !plan.owns(row.job, jobs)) {
        throw std::runtime_error("shard merge: " + paths[i] +
                                 " contains job " + std::to_string(row.job) +
                                 " outside its slice");
      }
      if (seen[row.job]) {
        throw std::runtime_error("shard merge: duplicate row for job " +
                                 std::to_string(row.job));
      }
      seen[row.job] = true;
      payloads[row.job] = std::move(row.tokens);
    }
  }
  for (std::size_t j = 0; j < jobs; ++j) {
    if (!seen[j]) {
      throw std::runtime_error("shard merge: no shard produced job " +
                               std::to_string(j));
    }
  }
  DIAC_OBS_COUNT("shard.rows_merged", jobs);
  return payloads;
}

}  // namespace diac
