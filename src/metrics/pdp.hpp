// PDP evaluation: the machinery behind Fig. 5 and the ablations.
//
// Evaluates one benchmark circuit under all four schemes on an *identical*
// harvest trace and workload, then reports power-delay products normalized
// to the NV-Based baseline (the paper's presentation).  Simulations go
// through the experiment engine: synthesis happens once per scheme and
// the (scheme × seed) jobs fan out over an ExperimentRunner.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "diac/synthesizer.hpp"
#include "exp/experiment.hpp"
#include "netlist/suite.hpp"
#include "runtime/simulator.hpp"

namespace diac {

inline constexpr std::array<Scheme, kSchemeCount> kAllSchemes = {
    Scheme::kNvBased, Scheme::kNvClustering, Scheme::kDiac,
    Scheme::kDiacOptimized};

struct EvaluationOptions {
  SynthesisOptions synthesis;
  FsmConfig fsm;
  SimulatorOptions simulator;
  // Harvest scenario (every scheme sees the same trace; scenario.seed is
  // the sweep base seed).
  ScenarioSpec scenario;
};

struct BenchmarkResult {
  std::string name;
  BenchmarkSuite suite = BenchmarkSuite::kIscas89;
  std::size_t gate_count = 0;
  std::array<RunStats, kSchemeCount> stats{};  // indexed by Scheme

  const RunStats& of(Scheme s) const {
    return stats[static_cast<std::size_t>(s)];
  }
  double pdp(Scheme s) const { return of(s).pdp(); }
  // PDP normalized to NV-Based (Fig. 5's y-axis).
  double normalized_pdp(Scheme s) const;
  // Fractional PDP improvement of `better` over `base` (0.36 = 36%).
  double improvement(Scheme better, Scheme base) const;
};

// Synthesizes all four schemes for `nl` and simulates each on the same
// seeded harvest trace, fanning the four simulations out over `runner`.
BenchmarkResult evaluate_circuit(const Netlist& nl, const CellLibrary& lib,
                                 const EvaluationOptions& options,
                                 ExperimentRunner& runner);
// Convenience overload: runs the four simulations inline (serial).
BenchmarkResult evaluate_circuit(const Netlist& nl, const CellLibrary& lib,
                                 const EvaluationOptions& options);

// Builds the named suite benchmark first.
BenchmarkResult evaluate_benchmark(const BenchmarkSpec& spec,
                                   const CellLibrary& lib,
                                   const EvaluationOptions& options);

// Average improvement of `better` over `base` across results.
double average_improvement(const std::vector<BenchmarkResult>& results,
                           Scheme better, Scheme base);
double average_improvement(const std::vector<BenchmarkResult>& results,
                           BenchmarkSuite suite, Scheme better, Scheme base);

}  // namespace diac
