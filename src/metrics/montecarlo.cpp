#include "metrics/montecarlo.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace diac {

SampleStats summarize(const std::vector<double>& samples) {
  SampleStats s;
  s.n = static_cast<int>(samples.size());
  if (samples.empty()) return s;
  s.min = *std::min_element(samples.begin(), samples.end());
  s.max = *std::max_element(samples.begin(), samples.end());
  double sum = 0;
  for (double v : samples) sum += v;
  s.mean = sum / s.n;
  double var = 0;
  for (double v : samples) var += (v - s.mean) * (v - s.mean);
  s.stddev = s.n > 1 ? std::sqrt(var / (s.n - 1)) : 0.0;
  return s;
}

namespace {

std::vector<std::size_t> contiguous_runs(std::size_t first, std::size_t count) {
  std::vector<std::size_t> runs(count);
  for (std::size_t k = 0; k < count; ++k) runs[k] = first + k;
  return runs;
}

}  // namespace

McSweepJobs::McSweepJobs(const Netlist& nl, const CellLibrary& lib,
                         const EvaluationOptions& options, std::size_t first,
                         std::size_t count, ExperimentRunner& runner)
    : McSweepJobs(nl, lib, options, contiguous_runs(first, count), runner) {}

McSweepJobs::McSweepJobs(const Netlist& nl, const CellLibrary& lib,
                         const EvaluationOptions& options,
                         const std::vector<std::size_t>& runs,
                         ExperimentRunner& runner) {
  if (!is_seeded(options.scenario.kind)) {
    // A deterministic trace would yield N identical samples reported as
    // zero-variance statistics.
    throw std::invalid_argument(
        std::string("Monte-Carlo sweep: scenario kind '") +
        to_string(options.scenario.kind) +
        "' is deterministic; Monte-Carlo needs a seeded source (rfid|solar)");
  }

  // Synthesize each scheme once — the designs are independent of the
  // harvest seed, so all runs share them.
  const DiacSynthesizer synth(nl, lib, options.synthesis);
  for (Scheme s : kAllSchemes) {
    designs_[static_cast<std::size_t>(s)] = synth.synthesize_scheme(s);
  }

  // Materialize one source per seed (in parallel — trace generation is
  // the dominant cost of short jobs); the four schemes of a seed share
  // it.  The seed is a function of the global run index, never of the
  // run window or list.
  sources_.resize(runs.size());
  runner.parallel_for(runs.size(), [&](std::size_t k) {
    sources_[k] = make_source(clamp_scenario_horizon(
        options.scenario.with_seed(
            derive_seed(options.scenario.seed, static_cast<int>(runs[k]))),
        options.simulator.max_time));
  });

  // One job per (scheme × seed); jobs[k * kSchemeCount + s].
  jobs_.reserve(runs.size() * kSchemeCount);
  for (std::size_t k = 0; k < runs.size(); ++k) {
    const ScenarioSpec scenario = options.scenario.with_seed(
        derive_seed(options.scenario.seed, static_cast<int>(runs[k])));
    for (Scheme s : kAllSchemes) {
      jobs_.push_back({&designs_[static_cast<std::size_t>(s)].design,
                       scenario, sources_[k].get(), options.fsm,
                       options.simulator});
    }
  }
}

MonteCarloResult summarize_monte_carlo(std::vector<BenchmarkResult> samples) {
  if (samples.empty()) {
    throw std::invalid_argument("summarize_monte_carlo: no samples");
  }
  MonteCarloResult mc;
  mc.runs = static_cast<int>(samples.size());
  std::array<std::vector<double>, kSchemeCount> norm;
  std::vector<double> d_nvb, d_nvc, o_nvb, o_diac;
  for (const BenchmarkResult& res : samples) {
    for (Scheme s : kAllSchemes) {
      norm[static_cast<std::size_t>(s)].push_back(res.normalized_pdp(s));
    }
    d_nvb.push_back(res.improvement(Scheme::kDiac, Scheme::kNvBased));
    d_nvc.push_back(res.improvement(Scheme::kDiac, Scheme::kNvClustering));
    o_nvb.push_back(res.improvement(Scheme::kDiacOptimized, Scheme::kNvBased));
    o_diac.push_back(res.improvement(Scheme::kDiacOptimized, Scheme::kDiac));
  }
  for (std::size_t i = 0; i < kSchemeCount; ++i) {
    mc.normalized_pdp[i] = summarize(norm[i]);
  }
  mc.diac_vs_nv_based = summarize(d_nvb);
  mc.diac_vs_nv_clustering = summarize(d_nvc);
  mc.opt_vs_nv_based = summarize(o_nvb);
  mc.opt_vs_diac = summarize(o_diac);
  mc.samples = std::move(samples);
  return mc;
}

MonteCarloResult evaluate_monte_carlo(const Netlist& nl,
                                      const CellLibrary& lib,
                                      const EvaluationOptions& options,
                                      int runs, ExperimentRunner& runner) {
  if (runs <= 0) {
    throw std::invalid_argument("evaluate_monte_carlo: runs must be positive");
  }
  const McSweepJobs sweep(nl, lib, options, 0, static_cast<std::size_t>(runs),
                          runner);
  const std::vector<RunStats> stats = run_simulations(runner, sweep.jobs());

  std::vector<BenchmarkResult> samples;
  samples.reserve(static_cast<std::size_t>(runs));
  for (int r = 0; r < runs; ++r) {
    BenchmarkResult res;
    res.name = nl.name();
    res.gate_count = nl.logic_gate_count();
    for (Scheme s : kAllSchemes) {
      const auto i = static_cast<std::size_t>(s);
      res.stats[i] = stats[static_cast<std::size_t>(r) * kSchemeCount + i];
    }
    samples.push_back(std::move(res));
  }
  return summarize_monte_carlo(std::move(samples));
}

MonteCarloResult evaluate_monte_carlo(const Netlist& nl,
                                      const CellLibrary& lib,
                                      const EvaluationOptions& options,
                                      int runs) {
  ExperimentRunner runner;  // hardware concurrency
  return evaluate_monte_carlo(nl, lib, options, runs, runner);
}

}  // namespace diac
