#include "metrics/montecarlo.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace diac {

SampleStats summarize(const std::vector<double>& samples) {
  SampleStats s;
  s.n = static_cast<int>(samples.size());
  if (samples.empty()) return s;
  s.min = *std::min_element(samples.begin(), samples.end());
  s.max = *std::max_element(samples.begin(), samples.end());
  double sum = 0;
  for (double v : samples) sum += v;
  s.mean = sum / s.n;
  double var = 0;
  for (double v : samples) var += (v - s.mean) * (v - s.mean);
  s.stddev = s.n > 1 ? std::sqrt(var / (s.n - 1)) : 0.0;
  return s;
}

MonteCarloResult evaluate_monte_carlo(const Netlist& nl,
                                      const CellLibrary& lib,
                                      const EvaluationOptions& options,
                                      int runs) {
  if (runs <= 0) {
    throw std::invalid_argument("evaluate_monte_carlo: runs must be positive");
  }
  MonteCarloResult mc;
  mc.runs = runs;

  std::array<std::vector<double>, kSchemeCount> norm;
  std::vector<double> d_nvb, d_nvc, o_nvb, o_diac;
  for (int r = 0; r < runs; ++r) {
    EvaluationOptions per = options;
    per.harvest_seed = options.harvest_seed + 0x9E3779B9u * (r + 1);
    BenchmarkResult res = evaluate_circuit(nl, lib, per);
    for (Scheme s : kAllSchemes) {
      norm[static_cast<std::size_t>(s)].push_back(res.normalized_pdp(s));
    }
    d_nvb.push_back(res.improvement(Scheme::kDiac, Scheme::kNvBased));
    d_nvc.push_back(res.improvement(Scheme::kDiac, Scheme::kNvClustering));
    o_nvb.push_back(res.improvement(Scheme::kDiacOptimized, Scheme::kNvBased));
    o_diac.push_back(res.improvement(Scheme::kDiacOptimized, Scheme::kDiac));
    mc.samples.push_back(std::move(res));
  }
  for (std::size_t i = 0; i < kSchemeCount; ++i) {
    mc.normalized_pdp[i] = summarize(norm[i]);
  }
  mc.diac_vs_nv_based = summarize(d_nvb);
  mc.diac_vs_nv_clustering = summarize(d_nvc);
  mc.opt_vs_nv_based = summarize(o_nvb);
  mc.opt_vs_diac = summarize(o_diac);
  return mc;
}

}  // namespace diac
