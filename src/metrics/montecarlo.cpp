#include "metrics/montecarlo.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace diac {

SampleStats summarize(const std::vector<double>& samples) {
  SampleStats s;
  s.n = static_cast<int>(samples.size());
  if (samples.empty()) return s;
  s.min = *std::min_element(samples.begin(), samples.end());
  s.max = *std::max_element(samples.begin(), samples.end());
  double sum = 0;
  for (double v : samples) sum += v;
  s.mean = sum / s.n;
  double var = 0;
  for (double v : samples) var += (v - s.mean) * (v - s.mean);
  s.stddev = s.n > 1 ? std::sqrt(var / (s.n - 1)) : 0.0;
  return s;
}

MonteCarloResult evaluate_monte_carlo(const Netlist& nl,
                                      const CellLibrary& lib,
                                      const EvaluationOptions& options,
                                      int runs, ExperimentRunner& runner) {
  if (runs <= 0) {
    throw std::invalid_argument("evaluate_monte_carlo: runs must be positive");
  }
  if (!is_seeded(options.scenario.kind)) {
    // A deterministic trace would yield N identical samples reported as
    // zero-variance statistics.
    throw std::invalid_argument(
        std::string("evaluate_monte_carlo: scenario kind '") +
        to_string(options.scenario.kind) +
        "' is deterministic; Monte-Carlo needs a seeded source (rfid|solar)");
  }
  MonteCarloResult mc;
  mc.runs = runs;

  // Synthesize each scheme once — the designs are independent of the
  // harvest seed, so all runs share them.
  const DiacSynthesizer synth(nl, lib, options.synthesis);
  std::array<SynthesisResult, kSchemeCount> designs;
  for (Scheme s : kAllSchemes) {
    designs[static_cast<std::size_t>(s)] = synth.synthesize_scheme(s);
  }

  // Materialize one source per seed (in parallel — trace generation is
  // the dominant cost of short jobs); the four schemes of a seed share it.
  std::vector<std::unique_ptr<HarvestSource>> sources(
      static_cast<std::size_t>(runs));
  runner.parallel_for(sources.size(), [&](std::size_t r) {
    sources[r] = make_source(clamp_scenario_horizon(
        options.scenario.with_seed(
            derive_seed(options.scenario.seed, static_cast<int>(r))),
        options.simulator.max_time));
  });

  // One job per (scheme × seed); results land at jobs[r * kSchemeCount + s].
  std::vector<SimulationJob> jobs;
  jobs.reserve(static_cast<std::size_t>(runs) * kSchemeCount);
  for (int r = 0; r < runs; ++r) {
    const ScenarioSpec scenario =
        options.scenario.with_seed(derive_seed(options.scenario.seed, r));
    for (Scheme s : kAllSchemes) {
      jobs.push_back({&designs[static_cast<std::size_t>(s)].design, scenario,
                      sources[static_cast<std::size_t>(r)].get(), options.fsm,
                      options.simulator});
    }
  }
  const std::vector<RunStats> stats = run_simulations(runner, jobs);

  std::array<std::vector<double>, kSchemeCount> norm;
  std::vector<double> d_nvb, d_nvc, o_nvb, o_diac;
  for (int r = 0; r < runs; ++r) {
    BenchmarkResult res;
    res.name = nl.name();
    res.gate_count = nl.logic_gate_count();
    for (Scheme s : kAllSchemes) {
      const auto i = static_cast<std::size_t>(s);
      res.stats[i] = stats[static_cast<std::size_t>(r) * kSchemeCount + i];
    }
    for (Scheme s : kAllSchemes) {
      norm[static_cast<std::size_t>(s)].push_back(res.normalized_pdp(s));
    }
    d_nvb.push_back(res.improvement(Scheme::kDiac, Scheme::kNvBased));
    d_nvc.push_back(res.improvement(Scheme::kDiac, Scheme::kNvClustering));
    o_nvb.push_back(res.improvement(Scheme::kDiacOptimized, Scheme::kNvBased));
    o_diac.push_back(res.improvement(Scheme::kDiacOptimized, Scheme::kDiac));
    mc.samples.push_back(std::move(res));
  }
  for (std::size_t i = 0; i < kSchemeCount; ++i) {
    mc.normalized_pdp[i] = summarize(norm[i]);
  }
  mc.diac_vs_nv_based = summarize(d_nvb);
  mc.diac_vs_nv_clustering = summarize(d_nvc);
  mc.opt_vs_nv_based = summarize(o_nvb);
  mc.opt_vs_diac = summarize(o_diac);
  return mc;
}

MonteCarloResult evaluate_monte_carlo(const Netlist& nl,
                                      const CellLibrary& lib,
                                      const EvaluationOptions& options,
                                      int runs) {
  ExperimentRunner runner;  // hardware concurrency
  return evaluate_monte_carlo(nl, lib, options, runs, runner);
}

}  // namespace diac
