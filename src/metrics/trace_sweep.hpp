// Trace-library sweeps: every measured trace in a library evaluated
// under all four schemes through the experiment engine.
//
// This is the end-to-end path from a deployment log on disk to a sweep
// result: load_trace_library reads each CSV once, and the (trace ×
// scheme) jobs fan out over the ExperimentRunner sharing the in-memory
// traces read-only.  Like every engine sweep, results are bit-identical
// at any thread count.
#pragma once

#include <array>
#include <vector>

#include "exp/trace_library.hpp"
#include "metrics/pdp.hpp"

namespace diac {

// The (trace × scheme) job set over pre-loaded kTrace scenarios: all
// four schemes synthesized once, jobs in trace-major kAllSchemes order,
// every job pointing at its scenario's shared in-memory trace.  This
// single builder serves evaluate_trace_library and the replay shard
// worker — a slice of the sorted global file list builds jobs identical
// to the same slice of the full sweep, which makes sharded replays
// bit-identical with the in-process path by construction.
// Non-copyable/non-movable: the jobs point into the designs it owns
// (each job's own ScenarioSpec copy keeps its trace alive).
class ReplaySweepJobs {
 public:
  // Every scenario must hold a loaded trace (run_simulation clamps each
  // replay to its trace's last sample); throws std::invalid_argument
  // otherwise.
  ReplaySweepJobs(const Netlist& nl, const CellLibrary& lib,
                  const EvaluationOptions& options,
                  const std::vector<ScenarioSpec>& scenarios);
  ReplaySweepJobs(const ReplaySweepJobs&) = delete;
  ReplaySweepJobs& operator=(const ReplaySweepJobs&) = delete;

  const std::vector<SimulationJob>& jobs() const { return jobs_; }

 private:
  std::array<SynthesisResult, kSchemeCount> designs_;
  std::vector<SimulationJob> jobs_;
};

// Synthesizes `nl` once per scheme and replays every library trace under
// all four schemes; results[i] is the four-scheme comparison on
// library.entries[i] (result.name is the trace's file stem).
// options.scenario is ignored — the library supplies the scenarios.
// Each replay is capped at its trace's last sample (a PiecewiseTrace
// extrapolates the final power level forever, and simulating past the
// measurement would report fabricated supply), so options.simulator
// .max_time only tightens that bound.  Every entry must hold a
// pre-loaded trace; throws otherwise.
std::vector<BenchmarkResult> evaluate_trace_library(
    const Netlist& nl, const CellLibrary& lib,
    const EvaluationOptions& options, const TraceLibrary& library,
    ExperimentRunner& runner);

}  // namespace diac
