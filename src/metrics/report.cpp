#include "metrics/report.hpp"

#include <cmath>
#include <ostream>

#include "util/units.hpp"

namespace diac {

Table fig5_table(const std::vector<BenchmarkResult>& results) {
  Table t({"circuit", "suite", "#gates", "NV-Based", "NV-Clustering", "DIAC",
           "DIAC-Optimized"});
  BenchmarkSuite last = results.empty() ? BenchmarkSuite::kIscas89
                                        : results.front().suite;
  for (const auto& r : results) {
    if (r.suite != last) {
      t.add_rule();
      last = r.suite;
    }
    t.add_row({r.name, to_string(r.suite), std::to_string(r.gate_count),
               Table::num(r.normalized_pdp(Scheme::kNvBased), 3),
               Table::num(r.normalized_pdp(Scheme::kNvClustering), 3),
               Table::num(r.normalized_pdp(Scheme::kDiac), 3),
               Table::num(r.normalized_pdp(Scheme::kDiacOptimized), 3)});
  }
  return t;
}

Table improvement_summary(const std::vector<BenchmarkResult>& results) {
  Table t({"comparison", "ISCAS-89", "ITC-99", "MCNC", "overall"});
  struct Row {
    const char* label;
    Scheme better;
    Scheme base;
  };
  const Row rows[] = {
      {"DIAC vs NV-Based", Scheme::kDiac, Scheme::kNvBased},
      {"DIAC vs NV-Clustering", Scheme::kDiac, Scheme::kNvClustering},
      {"DIAC-Opt vs NV-Based", Scheme::kDiacOptimized, Scheme::kNvBased},
      {"DIAC-Opt vs NV-Clustering", Scheme::kDiacOptimized,
       Scheme::kNvClustering},
      {"DIAC-Opt vs DIAC", Scheme::kDiacOptimized, Scheme::kDiac},
  };
  for (const Row& row : rows) {
    t.add_row({row.label,
               Table::pct(average_improvement(results, BenchmarkSuite::kIscas89,
                                              row.better, row.base)),
               Table::pct(average_improvement(results, BenchmarkSuite::kItc99,
                                              row.better, row.base)),
               Table::pct(average_improvement(results, BenchmarkSuite::kMcnc,
                                              row.better, row.base)),
               Table::pct(average_improvement(results, row.better, row.base))});
  }
  return t;
}

Table scheme_detail_table(const BenchmarkResult& result) {
  Table t({"metric", "NV-Based", "NV-Clustering", "DIAC", "DIAC-Optimized"});
  auto row = [&](const std::string& label, auto getter, int precision = 2) {
    std::vector<std::string> cells{label};
    for (Scheme s : kAllSchemes) {
      cells.push_back(Table::num(getter(result.of(s)), precision));
    }
    t.add_row(std::move(cells));
  };
  row("instances completed",
      [](const RunStats& s) { return double(s.instances_completed); }, 0);
  row("makespan [s]", [](const RunStats& s) { return s.makespan; }, 1);
  row("energy consumed [mJ]",
      [](const RunStats& s) { return units::as_mJ(s.energy_consumed); }, 1);
  row("PDP per instance [mJ*s]",
      [](const RunStats& s) { return units::as_mJ(s.pdp()); }, 2);
  row("NVM writes", [](const RunStats& s) { return double(s.nvm_writes); }, 0);
  row("NVM bits written",
      [](const RunStats& s) { return double(s.nvm_bits_written); }, 0);
  row("backups", [](const RunStats& s) { return double(s.backups); }, 0);
  row("restores", [](const RunStats& s) { return double(s.restores); }, 0);
  row("safe-zone saves",
      [](const RunStats& s) { return double(s.safe_zone_saves); }, 0);
  row("deep outages", [](const RunStats& s) { return double(s.deep_outages); }, 0);
  row("tasks executed",
      [](const RunStats& s) { return double(s.tasks_executed); }, 0);
  row("tasks re-executed",
      [](const RunStats& s) { return double(s.tasks_reexecuted); }, 0);
  row("forward progress",
      [](const RunStats& s) { return s.forward_progress(); }, 3);
  row("time active [s]", [](const RunStats& s) { return s.time_active; }, 1);
  row("time sleeping [s]", [](const RunStats& s) { return s.time_sleep; }, 1);
  row("time off [s]", [](const RunStats& s) { return s.time_off; }, 1);
  return t;
}

Table trace_sweep_table(const std::vector<BenchmarkResult>& results) {
  Table t({"trace", "NV-Based", "NV-Clustering", "DIAC", "DIAC-Optimized",
           "opt vs base", "done"});
  for (const auto& r : results) {
    t.add_row(
        {r.name, Table::num(r.normalized_pdp(Scheme::kNvBased), 3),
         Table::num(r.normalized_pdp(Scheme::kNvClustering), 3),
         Table::num(r.normalized_pdp(Scheme::kDiac), 3),
         Table::num(r.normalized_pdp(Scheme::kDiacOptimized), 3),
         Table::pct(r.improvement(Scheme::kDiacOptimized, Scheme::kNvBased)),
         std::to_string(r.of(Scheme::kDiacOptimized).instances_completed)});
  }
  return t;
}

namespace {

// Objective cost -> table cell in the natural reading; undefined (NaN)
// outcomes print as "n/a".
std::string objective_cell(ObjectiveKind kind, double cost) {
  if (std::isnan(cost)) return "n/a";
  const double value = objective_display(kind, cost);
  switch (kind) {
    case ObjectiveKind::kNvmWrites:
    case ObjectiveKind::kCompletion:
      return Table::num(value, 0);
    case ObjectiveKind::kProgress:
      return Table::num(value, 3);
    default:
      return Table::num(value, 2);
  }
}

}  // namespace

Table search_front_table(const SearchResult& result,
                         const SearchObjectives& objectives) {
  std::vector<std::string> header = {"rank",  "policy",  "budget",
                                     "NVM",   "scheme",  "sensing",
                                     "tasks", "commits"};
  for (ObjectiveKind kind : objectives.kinds) {
    header.push_back(objective_header(kind));
  }
  header.push_back("done");
  Table t(std::move(header));
  for (std::size_t rank = 0; rank < result.front.size(); ++rank) {
    const CandidateResult& c = result.candidates[result.front[rank]];
    std::vector<std::string> cells = {
        std::to_string(rank + 1),
        to_string(c.point.policy),
        Table::num(c.point.budget_fraction, 2),
        to_string(c.point.technology),
        to_string(c.point.scheme),
        c.point.adaptive_sensing ? "adaptive" : "fixed",
        std::to_string(c.tasks),
        std::to_string(c.commit_points)};
    for (std::size_t k = 0; k < objectives.size(); ++k) {
      cells.push_back(objective_cell(objectives.kinds[k], c.costs[k]));
    }
    cells.push_back(c.stats.workload_completed ? "yes" : "no");
    t.add_row(std::move(cells));
  }
  return t;
}

void write_search_csv(std::ostream& out, const SearchResult& result,
                      const SearchObjectives& objectives) {
  out << "candidate,policy,budget,nvm,scheme,sensing,status";
  for (ObjectiveKind kind : objectives.kinds) {
    out << ',' << to_string(kind);
  }
  out << ",instances,completed,makespan_s,energy_mJ,nvm_writes,fwd_progress\n";
  std::vector<char> on_front(result.candidates.size(), 0);
  for (std::size_t i : result.front) on_front[i] = 1;
  for (std::size_t i = 0; i < result.candidates.size(); ++i) {
    const CandidateResult& c = result.candidates[i];
    out << i << ',' << to_string(c.point.policy) << ','
        << c.point.budget_fraction << ',' << to_string(c.point.technology)
        << ',' << to_string(c.point.scheme) << ','
        << (c.point.adaptive_sensing ? "adaptive" : "fixed") << ','
        << (c.pruned ? "pruned" : on_front[i] ? "front" : "evaluated");
    for (std::size_t k = 0; k < objectives.size(); ++k) {
      out << ',';
      if (c.pruned) continue;  // no evaluation -> empty cells
      const double cost = c.costs[k];
      if (std::isnan(cost)) continue;
      out << objective_display(objectives.kinds[k], cost);
    }
    if (c.pruned) {
      out << ",,,,,,\n";  // the six trailing run-stat columns stay empty
      continue;
    }
    out << ',' << c.stats.instances_completed << ','
        << (c.stats.workload_completed ? 1 : 0) << ',' << c.stats.makespan
        << ',' << units::as_mJ(c.stats.energy_consumed) << ','
        << c.stats.nvm_writes << ',' << c.stats.forward_progress() << '\n';
  }
}

Table suite_inventory_table() {
  Table t({"circuit", "suite", "function", "#gates"});
  BenchmarkSuite last = BenchmarkSuite::kIscas89;
  for (const auto& spec : benchmark_suite()) {
    if (spec.suite != last) {
      t.add_rule();
      last = spec.suite;
    }
    t.add_row({spec.name, to_string(spec.suite), spec.function_class,
               std::to_string(spec.gate_count)});
  }
  return t;
}

}  // namespace diac
