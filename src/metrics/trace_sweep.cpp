#include "metrics/trace_sweep.hpp"

#include <stdexcept>

namespace diac {

ReplaySweepJobs::ReplaySweepJobs(const Netlist& nl, const CellLibrary& lib,
                                 const EvaluationOptions& options,
                                 const std::vector<ScenarioSpec>& scenarios) {
  // Synthesis is independent of the supply: once per scheme, shared by
  // every trace.
  const DiacSynthesizer synth(nl, lib, options.synthesis);
  for (Scheme s : kAllSchemes) {
    designs_[static_cast<std::size_t>(s)] = synth.synthesize_scheme(s);
  }

  // One job per (trace × scheme), pointing at the scenario's shared
  // in-memory trace — each file was read exactly once, at load time.
  jobs_.reserve(scenarios.size() * kSchemeCount);
  for (const ScenarioSpec& scenario : scenarios) {
    if (!scenario.trace) {
      throw std::invalid_argument("replay sweep: scenario '" +
                                  scenario.trace_path +
                                  "' has no loaded trace");
    }
    for (Scheme s : kAllSchemes) {
      // run_simulation clamps each replay to its trace's last sample.
      jobs_.push_back({&designs_[static_cast<std::size_t>(s)].design,
                       scenario, scenario.trace.get(), options.fsm,
                       options.simulator});
    }
  }
}

std::vector<BenchmarkResult> evaluate_trace_library(
    const Netlist& nl, const CellLibrary& lib,
    const EvaluationOptions& options, const TraceLibrary& library,
    ExperimentRunner& runner) {
  if (library.entries.empty()) {
    throw std::invalid_argument("evaluate_trace_library: empty library");
  }
  std::vector<ScenarioSpec> scenarios;
  scenarios.reserve(library.entries.size());
  for (const TraceLibrary::Entry& entry : library.entries) {
    scenarios.push_back(entry.scenario);
  }
  const ReplaySweepJobs sweep(nl, lib, options, scenarios);
  const std::vector<RunStats> stats = run_simulations(runner, sweep.jobs());

  std::vector<BenchmarkResult> results;
  results.reserve(library.entries.size());
  for (std::size_t e = 0; e < library.entries.size(); ++e) {
    BenchmarkResult res;
    res.name = library.entries[e].name;
    res.gate_count = nl.logic_gate_count();
    for (Scheme s : kAllSchemes) {
      const auto i = static_cast<std::size_t>(s);
      res.stats[i] = stats[e * kSchemeCount + i];
    }
    results.push_back(std::move(res));
  }
  return results;
}

}  // namespace diac
