#include "metrics/trace_sweep.hpp"

#include <stdexcept>

namespace diac {

std::vector<BenchmarkResult> evaluate_trace_library(
    const Netlist& nl, const CellLibrary& lib,
    const EvaluationOptions& options, const TraceLibrary& library,
    ExperimentRunner& runner) {
  if (library.entries.empty()) {
    throw std::invalid_argument("evaluate_trace_library: empty library");
  }

  // Synthesis is independent of the supply: once per scheme, shared by
  // every trace.
  const DiacSynthesizer synth(nl, lib, options.synthesis);
  std::array<SynthesisResult, kSchemeCount> designs;
  for (Scheme s : kAllSchemes) {
    designs[static_cast<std::size_t>(s)] = synth.synthesize_scheme(s);
  }

  // One job per (trace × scheme), pointing at the library's shared
  // in-memory trace — the files were read exactly once, at load time.
  std::vector<SimulationJob> jobs;
  jobs.reserve(library.entries.size() * kSchemeCount);
  for (const TraceLibrary::Entry& entry : library.entries) {
    if (!entry.scenario.trace) {
      throw std::invalid_argument("evaluate_trace_library: entry '" +
                                  entry.name + "' has no loaded trace");
    }
    for (Scheme s : kAllSchemes) {
      // run_simulation clamps each replay to its trace's last sample.
      jobs.push_back({&designs[static_cast<std::size_t>(s)].design,
                      entry.scenario, entry.scenario.trace.get(), options.fsm,
                      options.simulator});
    }
  }
  const std::vector<RunStats> stats = run_simulations(runner, jobs);

  std::vector<BenchmarkResult> results;
  results.reserve(library.entries.size());
  for (std::size_t e = 0; e < library.entries.size(); ++e) {
    BenchmarkResult res;
    res.name = library.entries[e].name;
    res.gate_count = nl.logic_gate_count();
    for (Scheme s : kAllSchemes) {
      const auto i = static_cast<std::size_t>(s);
      res.stats[i] = stats[e * kSchemeCount + i];
    }
    results.push_back(std::move(res));
  }
  return results;
}

}  // namespace diac
