#include "metrics/pdp.hpp"

#include <stdexcept>

namespace diac {

double BenchmarkResult::normalized_pdp(Scheme s) const {
  const double base = pdp(Scheme::kNvBased);
  if (base <= 0) return 0;
  return pdp(s) / base;
}

double BenchmarkResult::improvement(Scheme better, Scheme base) const {
  const double b = pdp(base);
  if (b <= 0) return 0;
  return 1.0 - pdp(better) / b;
}

BenchmarkResult evaluate_circuit(const Netlist& nl, const CellLibrary& lib,
                                 const EvaluationOptions& options,
                                 ExperimentRunner& runner) {
  BenchmarkResult result;
  result.name = nl.name();
  result.gate_count = nl.logic_gate_count();

  // Synthesis is deterministic and cheap relative to long simulations:
  // run it once per scheme up front, then fan the simulations out.  All
  // four schemes see the same trace, so they share one source.
  const DiacSynthesizer synth(nl, lib, options.synthesis);
  const std::unique_ptr<HarvestSource> source = make_source(
      clamp_scenario_horizon(options.scenario, options.simulator.max_time));
  std::array<SynthesisResult, kSchemeCount> designs;
  std::vector<SimulationJob> jobs;
  jobs.reserve(kSchemeCount);
  for (Scheme scheme : kAllSchemes) {
    const auto i = static_cast<std::size_t>(scheme);
    designs[i] = synth.synthesize_scheme(scheme);
    jobs.push_back({&designs[i].design, options.scenario, source.get(),
                    options.fsm, options.simulator});
  }
  const std::vector<RunStats> stats = run_simulations(runner, jobs);
  for (std::size_t i = 0; i < kSchemeCount; ++i) result.stats[i] = stats[i];
  return result;
}

BenchmarkResult evaluate_circuit(const Netlist& nl, const CellLibrary& lib,
                                 const EvaluationOptions& options) {
  ExperimentRunner serial(1);
  return evaluate_circuit(nl, lib, options, serial);
}

BenchmarkResult evaluate_benchmark(const BenchmarkSpec& spec,
                                   const CellLibrary& lib,
                                   const EvaluationOptions& options) {
  const Netlist nl = build_benchmark(spec);
  BenchmarkResult result = evaluate_circuit(nl, lib, options);
  result.name = spec.name;
  result.suite = spec.suite;
  result.gate_count = spec.gate_count;
  return result;
}

double average_improvement(const std::vector<BenchmarkResult>& results,
                           Scheme better, Scheme base) {
  if (results.empty()) return 0;
  double sum = 0;
  for (const auto& r : results) sum += r.improvement(better, base);
  return sum / static_cast<double>(results.size());
}

double average_improvement(const std::vector<BenchmarkResult>& results,
                           BenchmarkSuite suite, Scheme better, Scheme base) {
  double sum = 0;
  int n = 0;
  for (const auto& r : results) {
    if (r.suite != suite) continue;
    sum += r.improvement(better, base);
    ++n;
  }
  return n > 0 ? sum / n : 0;
}

}  // namespace diac
