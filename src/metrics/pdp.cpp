#include "metrics/pdp.hpp"

#include <stdexcept>

namespace diac {

double BenchmarkResult::normalized_pdp(Scheme s) const {
  const double base = pdp(Scheme::kNvBased);
  if (base <= 0) return 0;
  return pdp(s) / base;
}

double BenchmarkResult::improvement(Scheme better, Scheme base) const {
  const double b = pdp(base);
  if (b <= 0) return 0;
  return 1.0 - pdp(better) / b;
}

BenchmarkResult evaluate_circuit(const Netlist& nl, const CellLibrary& lib,
                                 const EvaluationOptions& options) {
  BenchmarkResult result;
  result.name = nl.name();
  result.gate_count = nl.logic_gate_count();

  const RfidBurstSource source(options.harvest_seed, options.harvest);
  const DiacSynthesizer synth(nl, lib, options.synthesis);
  for (Scheme scheme : kAllSchemes) {
    const SynthesisResult sr = synth.synthesize_scheme(scheme);
    SystemSimulator sim(sr.design, source, options.fsm, options.simulator);
    result.stats[static_cast<std::size_t>(scheme)] = sim.run();
  }
  return result;
}

BenchmarkResult evaluate_benchmark(const BenchmarkSpec& spec,
                                   const CellLibrary& lib,
                                   const EvaluationOptions& options) {
  const Netlist nl = build_benchmark(spec);
  BenchmarkResult result = evaluate_circuit(nl, lib, options);
  result.name = spec.name;
  result.suite = spec.suite;
  result.gate_count = spec.gate_count;
  return result;
}

double average_improvement(const std::vector<BenchmarkResult>& results,
                           Scheme better, Scheme base) {
  if (results.empty()) return 0;
  double sum = 0;
  for (const auto& r : results) sum += r.improvement(better, base);
  return sum / static_cast<double>(results.size());
}

double average_improvement(const std::vector<BenchmarkResult>& results,
                           BenchmarkSuite suite, Scheme better, Scheme base) {
  double sum = 0;
  int n = 0;
  for (const auto& r : results) {
    if (r.suite != suite) continue;
    sum += r.improvement(better, base);
    ++n;
  }
  return n > 0 ? sum / n : 0;
}

}  // namespace diac
