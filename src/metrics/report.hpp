// Report formatting for the benchmark harnesses: Fig. 5-style tables and
// per-run statistics summaries.
#pragma once

#include <string>
#include <vector>

#include "metrics/pdp.hpp"
#include "util/table.hpp"

namespace diac {

// Fig. 5: one row per circuit — normalized PDP of each scheme.
Table fig5_table(const std::vector<BenchmarkResult>& results);

// Per-suite and overall average improvements (the numbers quoted in
// SIV.B and the abstract).
Table improvement_summary(const std::vector<BenchmarkResult>& results);

// Detailed per-scheme statistics for one benchmark (NVM writes, backups,
// safe-zone saves, time breakdown).
Table scheme_detail_table(const BenchmarkResult& result);

// Trace-library replay: one row per replayed trace — normalized PDP of
// each scheme, the DIAC-Optimized improvement over NV-Based, and whether
// the workload completed under that supply.
Table trace_sweep_table(const std::vector<BenchmarkResult>& results);

// Benchmark inventory (the Fig. 5 header row: # gates / function / suite).
Table suite_inventory_table();

}  // namespace diac
