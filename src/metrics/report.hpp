// Report formatting for the benchmark harnesses: Fig. 5-style tables and
// per-run statistics summaries.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "metrics/pdp.hpp"
#include "search/engine.hpp"
#include "util/table.hpp"

namespace diac {

// Fig. 5: one row per circuit — normalized PDP of each scheme.
Table fig5_table(const std::vector<BenchmarkResult>& results);

// Per-suite and overall average improvements (the numbers quoted in
// SIV.B and the abstract).
Table improvement_summary(const std::vector<BenchmarkResult>& results);

// Detailed per-scheme statistics for one benchmark (NVM writes, backups,
// safe-zone saves, time breakdown).
Table scheme_detail_table(const BenchmarkResult& result);

// Trace-library replay: one row per replayed trace — normalized PDP of
// each scheme, the DIAC-Optimized improvement over NV-Based, and whether
// the workload completed under that supply.
Table trace_sweep_table(const std::vector<BenchmarkResult>& results);

// Benchmark inventory (the Fig. 5 header row: # gates / function / suite).
Table suite_inventory_table();

// Design-space search: the ranked Pareto front — one row per front
// member, ordered by the first objective, with the design axes and every
// objective in its natural reading ("n/a" for undefined outcomes).
Table search_front_table(const SearchResult& result,
                         const SearchObjectives& objectives);

// Machine-readable dump of the whole search: one row per candidate (in
// candidate order) with design axes, status (front/evaluated/pruned),
// objective values, and the headline run statistics.
void write_search_csv(std::ostream& out, const SearchResult& result,
                      const SearchObjectives& objectives);

}  // namespace diac
