// Monte-Carlo evaluation: repeats the scheme comparison over many seeded
// harvest traces and reports distribution statistics, so conclusions are
// robust to the stochastic supply rather than artifacts of one trace.
#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <vector>

#include "metrics/pdp.hpp"

namespace diac {

struct SampleStats {
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double max = 0;
  int n = 0;
};

SampleStats summarize(const std::vector<double>& samples);

struct MonteCarloResult {
  int runs = 0;
  // Normalized PDP (vs NV-Based) distribution per scheme.
  std::array<SampleStats, kSchemeCount> normalized_pdp{};
  // Improvement distributions for the paper's headline comparisons.
  SampleStats diac_vs_nv_based;
  SampleStats diac_vs_nv_clustering;
  SampleStats opt_vs_nv_based;
  SampleStats opt_vs_diac;
  // Per-run raw results for further analysis.
  std::vector<BenchmarkResult> samples;
};

// The (scheme × seed) job set for runs [first, first + count) of a
// Monte-Carlo sweep: all four schemes synthesized once, one shared
// harvest source per run, jobs in run-major kAllSchemes order.  Seeds
// derive from the *global* run index, so any contiguous range builds
// jobs identical to the same range of the full sweep — this single
// builder serves evaluate_monte_carlo and the mc shard worker, which
// makes sharded sweeps bit-identical with the in-process path by
// construction.  Non-copyable/non-movable: the jobs point into the
// designs and sources it owns.
class McSweepJobs {
 public:
  // Throws std::invalid_argument on a non-seeded scenario kind (a
  // deterministic trace would yield `count` identical samples).
  McSweepJobs(const Netlist& nl, const CellLibrary& lib,
              const EvaluationOptions& options, std::size_t first,
              std::size_t count, ExperimentRunner& runner);
  // Sparse form: jobs for exactly the listed global run indices (in list
  // order), sharing one synthesis.  This is how the cache-aware worker
  // evaluates only its misses — the k-th four-scheme job group equals
  // the contiguous builder's group for the same global run, so a sweep
  // assembled from cached and computed rows is bit-identical with a
  // fully computed one.
  McSweepJobs(const Netlist& nl, const CellLibrary& lib,
              const EvaluationOptions& options,
              const std::vector<std::size_t>& runs, ExperimentRunner& runner);
  McSweepJobs(const McSweepJobs&) = delete;
  McSweepJobs& operator=(const McSweepJobs&) = delete;

  const std::vector<SimulationJob>& jobs() const { return jobs_; }

 private:
  std::array<SynthesisResult, kSchemeCount> designs_;
  std::vector<std::unique_ptr<HarvestSource>> sources_;
  std::vector<SimulationJob> jobs_;
};

// Folds per-run four-scheme samples into the Monte-Carlo statistics.
// This is the single aggregation used by evaluate_monte_carlo and by
// the shard merge, so a sweep's report depends only on the sample set —
// not on which process computed each sample.  Throws on empty input.
MonteCarloResult summarize_monte_carlo(std::vector<BenchmarkResult> samples);

// Evaluates `nl` under all four schemes on `runs` independent harvest
// traces (seeds derived from options.scenario.seed via derive_seed).
// Synthesis happens once per scheme; the (scheme × seed) simulation jobs
// fan out over `runner`.  Statistics are bit-identical at any thread
// count: every job is independent and explicitly seeded, and results are
// assembled in job order.
MonteCarloResult evaluate_monte_carlo(const Netlist& nl,
                                      const CellLibrary& lib,
                                      const EvaluationOptions& options,
                                      int runs, ExperimentRunner& runner);

// Convenience overload: fans out over a default runner sized to the
// hardware concurrency.
MonteCarloResult evaluate_monte_carlo(const Netlist& nl,
                                      const CellLibrary& lib,
                                      const EvaluationOptions& options,
                                      int runs);

}  // namespace diac
