// Monte-Carlo evaluation: repeats the scheme comparison over many seeded
// harvest traces and reports distribution statistics, so conclusions are
// robust to the stochastic supply rather than artifacts of one trace.
#pragma once

#include <array>
#include <vector>

#include "metrics/pdp.hpp"

namespace diac {

struct SampleStats {
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double max = 0;
  int n = 0;
};

SampleStats summarize(const std::vector<double>& samples);

struct MonteCarloResult {
  int runs = 0;
  // Normalized PDP (vs NV-Based) distribution per scheme.
  std::array<SampleStats, kSchemeCount> normalized_pdp{};
  // Improvement distributions for the paper's headline comparisons.
  SampleStats diac_vs_nv_based;
  SampleStats diac_vs_nv_clustering;
  SampleStats opt_vs_nv_based;
  SampleStats opt_vs_diac;
  // Per-run raw results for further analysis.
  std::vector<BenchmarkResult> samples;
};

// Evaluates `nl` under all four schemes on `runs` independent harvest
// traces (seeds derived from options.scenario.seed via derive_seed).
// Synthesis happens once per scheme; the (scheme × seed) simulation jobs
// fan out over `runner`.  Statistics are bit-identical at any thread
// count: every job is independent and explicitly seeded, and results are
// assembled in job order.
MonteCarloResult evaluate_monte_carlo(const Netlist& nl,
                                      const CellLibrary& lib,
                                      const EvaluationOptions& options,
                                      int runs, ExperimentRunner& runner);

// Convenience overload: fans out over a default runner sized to the
// hardware concurrency.
MonteCarloResult evaluate_monte_carlo(const Netlist& nl,
                                      const CellLibrary& lib,
                                      const EvaluationOptions& options,
                                      int runs);

}  // namespace diac
