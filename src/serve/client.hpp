/// The client side of the serve protocol: one request, one validated
/// dense payload vector.
///
/// `run_remote_sweep` is the remote twin of the shard coordinator's
/// merge step — it returns rows in global job order, already shape-
/// checked, so the CLI report path downstream of it is byte-identical
/// to the standalone sweep by construction.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "serve/request.hpp"

namespace diac::serve {

/// Sends `request` to the server at `socket_path` and returns the dense
/// job-indexed payload vector (payloads[job] = that job's row tokens).
///
/// Throws std::runtime_error when the socket is unreachable, the server
/// answers with an error line, the response stream is truncated (server
/// died mid-request), or the row set does not cover exactly
/// `expected_jobs` jobs.
std::vector<std::vector<std::string>> run_remote_sweep(
    const std::string& socket_path, const SweepRequest& request,
    std::size_t expected_jobs);

}  // namespace diac::serve
