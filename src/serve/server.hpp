/// The long-lived sweep server behind `diac serve`.
///
/// One process owns a unix-domain listening socket, one
/// ExperimentRunner thread pool, and (optionally) one on-disk
/// ResultCache; every connection carries a single request line
/// (serve/request.*) and receives a single response stream.  Requests
/// are handled one at a time in accept order — determinism needs no
/// further care because each response is a pure function of its
/// request, and concurrent clients simply queue on the socket backlog.
///
/// Shutdown: SIGTERM/SIGINT set a flag checked between connections, so
/// an in-flight request always drains before the listener closes and
/// the socket path is unlinked; `run()` then returns 0.  SIGPIPE is
/// ignored — a client that disconnects mid-stream only fails its own
/// response writes.
#pragma once

#include <cstdint>
#include <string>

namespace diac::serve {

/// Configuration of one server process.
struct ServerOptions {
  std::string socket_path;  ///< unix-domain socket to listen on (required)
  std::string cache_dir;    ///< result-cache root; empty disables caching
  std::uint64_t cache_limit_bytes = 1024ULL << 20;  ///< LRU cap (0 = unbounded)
  int threads = 0;  ///< simulation threads (0 = all cores)
};

/// Listens on `options.socket_path` and serves sweep requests until a
/// SIGTERM/SIGINT arrives.  Returns 0 on clean shutdown; throws on
/// setup failure (bad socket path, unusable cache directory).
int serve_forever(const ServerOptions& options);

}  // namespace diac::serve
