#include "serve/cache.hpp"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>

#include "obs/build_info.hpp"
#include "obs/obs.hpp"
#include "shard/codec.hpp"

namespace diac::serve {

namespace fs = std::filesystem;

namespace {

// Entries below the cap survive pruning in recency order; the cache
// trims to this fraction of the cap so pruning doesn't re-trigger on
// the very next store.
constexpr double kPruneTargetFraction = 0.8;
constexpr std::uint64_t kPruneEvery = 64;  // stores between prune scans

}  // namespace

ResultCache::ResultCache(CacheConfig config) : config_(std::move(config)) {
  if (config_.dir.empty()) {
    throw std::invalid_argument("result cache: empty cache directory");
  }
  if (config_.build_hash.empty()) {
    config_.build_hash = obs::build_info().git_hash;
  }
}

std::string ResultCache::entry_path(const std::string& kind,
                                    const Hash128& key) const {
  const std::string hex = hash_hex(key);
  return (fs::path(config_.dir) / config_.build_hash / kind /
          hex.substr(0, 2) / (hex + ".row"))
      .string();
}

bool ResultCache::lookup(const std::string& kind, const Hash128& key,
                         std::vector<std::string>& tokens) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const fs::path path = entry_path(kind, key);
  std::ifstream in(path);
  if (!in) {
    DIAC_OBS_COUNT("serve.cache.miss", 1);
    return false;
  }
  try {
    const ShardFile entry = read_shard_stream(in, path.string());
    if (entry.header.kind != kind || entry.header.jobs != 1 ||
        entry.rows.size() != 1 || entry.rows[0].job != 0) {
      throw std::runtime_error("cache entry: wrong shape");
    }
    tokens = entry.rows[0].tokens;
  } catch (const std::exception&) {
    // Damaged (truncated, corrupted, foreign) entry: evict and report a
    // miss so the job is recomputed and the entry rewritten.
    in.close();
    std::error_code ec;
    fs::remove(path, ec);
    DIAC_OBS_COUNT("serve.cache.evict", 1);
    DIAC_OBS_COUNT("serve.cache.miss", 1);
    return false;
  }
  // LRU recency bump: mtime is cache metadata only — it never reaches
  // result bytes, so the filesystem clock is fine here.
  std::error_code ec;
  fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
  DIAC_OBS_COUNT("serve.cache.hit", 1);
  return true;
}

void ResultCache::store(const std::string& kind, const Hash128& key,
                        const std::vector<std::string>& tokens) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const fs::path path = entry_path(kind, key);
  std::error_code ec;
  fs::create_directories(path.parent_path(), ec);
  if (ec) return;  // best-effort: the computed result is already in hand

  // Atomic publish: write a per-process temp name, then rename into
  // place — concurrent writers of the same key race benignly (both
  // write identical bytes, rename is atomic either way).
  const fs::path tmp =
      path.string() + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp);
    if (!out) return;
    ShardHeader header;
    header.kind = kind;
    header.shards = 1;
    header.index = 0;
    header.jobs = 1;
    write_shard_header(out, header);
    write_shard_row(out, 0, tokens);
    write_shard_trailer(out, 1);
    out.flush();
    if (!out) {
      fs::remove(tmp, ec);
      return;
    }
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return;
  }
  DIAC_OBS_COUNT("serve.cache.store", 1);

  if (config_.limit_bytes != 0 && ++stores_since_prune_ >= kPruneEvery) {
    stores_since_prune_ = 0;
    prune();
  }
}

void ResultCache::prune() {
  if (config_.limit_bytes == 0) return;
  const fs::path root = fs::path(config_.dir) / config_.build_hash;
  std::error_code ec;
  if (!fs::is_directory(root, ec)) return;

  struct Entry {
    fs::path path;
    fs::file_time_type mtime;
    std::uint64_t size;
  };
  std::vector<Entry> entries;
  std::uint64_t total = 0;
  for (fs::recursive_directory_iterator it(root, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    Entry e;
    e.path = it->path();
    e.mtime = fs::last_write_time(e.path, ec);
    if (ec) continue;
    e.size = it->file_size(ec);
    if (ec) continue;
    total += e.size;
    entries.push_back(std::move(e));
  }
  if (total <= config_.limit_bytes) return;

  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.mtime < b.mtime; });
  const auto target = static_cast<std::uint64_t>(
      kPruneTargetFraction * static_cast<double>(config_.limit_bytes));
  for (const Entry& e : entries) {
    if (total <= target) break;
    if (fs::remove(e.path, ec)) {
      total -= e.size;
      DIAC_OBS_COUNT("serve.cache.prune", 1);
    }
  }
}

}  // namespace diac::serve
