#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <csignal>
#include <cstring>
#include <iostream>
#include <memory>
#include <ostream>
#include <stdexcept>
#include <streambuf>
#include <vector>

#include "cell/cell_library.hpp"
#include "exp/runner.hpp"
#include "obs/obs.hpp"
#include "serve/cache.hpp"
#include "serve/request.hpp"
#include "shard/plan.hpp"
#include "shard/worker.hpp"

namespace diac::serve {

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_stop_signal(int) { g_stop = 1; }

/// Buffered streambuf over a connected socket fd.  A failed write (the
/// client vanished) latches the failure: overflow/sync report EOF, the
/// ostream sets badbit, and the remaining response is discarded without
/// touching the worker's evaluation.
class FdStreambuf final : public std::streambuf {
 public:
  explicit FdStreambuf(int fd) : fd_(fd) {
    setp(buffer_, buffer_ + sizeof(buffer_));
  }

  bool failed() const { return failed_; }

 protected:
  int_type overflow(int_type ch) override {
    if (!flush_buffer()) return traits_type::eof();
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(ch);
      pbump(1);
    }
    return traits_type::not_eof(ch);
  }

  int sync() override { return flush_buffer() ? 0 : -1; }

 private:
  bool flush_buffer() {
    if (failed_) return false;
    const char* p = pbase();
    std::size_t left = static_cast<std::size_t>(pptr() - pbase());
    while (left > 0) {
      const ssize_t n = ::write(fd_, p, left);
      if (n <= 0) {
        failed_ = true;
        setp(buffer_, buffer_ + sizeof(buffer_));
        return false;
      }
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    setp(buffer_, buffer_ + sizeof(buffer_));
    return true;
  }

  int fd_;
  bool failed_ = false;
  char buffer_[1 << 16];
};

/// Reads the single request line (up to but excluding '\n').  Returns
/// false on EOF-before-newline or an oversized line.
bool read_request_line(int fd, std::string& line) {
  line.clear();
  constexpr std::size_t kMaxLine = 1 << 16;
  char chunk[4096];
  while (line.size() < kMaxLine) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) return false;
    for (ssize_t i = 0; i < n; ++i) {
      if (chunk[i] == '\n') {
        line.append(chunk, static_cast<std::size_t>(i));
        return true;
      }
    }
    line.append(chunk, static_cast<std::size_t>(n));
  }
  return false;
}

class Server {
 public:
  explicit Server(const ServerOptions& options)
      : options_(options), runner_(options.threads) {
    if (options_.socket_path.empty()) {
      throw std::invalid_argument("serve: empty socket path");
    }
    if (!options_.cache_dir.empty()) {
      CacheConfig config;
      config.dir = options_.cache_dir;
      config.limit_bytes = options_.cache_limit_bytes;
      cache_ = std::make_unique<ResultCache>(std::move(config));
    }
  }

  int run() {
    const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd < 0) throw std::runtime_error("serve: socket() failed");

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
      ::close(listen_fd);
      throw std::runtime_error("serve: socket path too long: " +
                               options_.socket_path);
    }
    std::strncpy(addr.sun_path, options_.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(options_.socket_path.c_str());  // replace a stale socket
    if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd, 64) != 0) {
      ::close(listen_fd);
      throw std::runtime_error("serve: cannot listen on " +
                               options_.socket_path);
    }

    std::signal(SIGPIPE, SIG_IGN);
    std::signal(SIGTERM, handle_stop_signal);
    std::signal(SIGINT, handle_stop_signal);

    std::cerr << "diac serve: listening on " << options_.socket_path << " ("
              << runner_.jobs() << " job(s)"
              << (cache_ ? ", cache " + options_.cache_dir : std::string())
              << ")\n";

    while (g_stop == 0) {
      pollfd pfd{};
      pfd.fd = listen_fd;
      pfd.events = POLLIN;
      const int ready = ::poll(&pfd, 1, 200);
      if (ready <= 0) continue;  // timeout or EINTR: re-check the flag
      const int conn_fd = ::accept(listen_fd, nullptr, nullptr);
      if (conn_fd < 0) continue;
      handle_connection(conn_fd);
      ::close(conn_fd);
    }

    ::close(listen_fd);
    ::unlink(options_.socket_path.c_str());
    std::cerr << "diac serve: shut down cleanly\n";
    return 0;
  }

 private:
  void handle_connection(int fd) {
    DIAC_TRACE_SPAN("serve.request", "serve");
    DIAC_OBS_COUNT("serve.request", 1);
    FdStreambuf buf(fd);
    std::ostream out(&buf);

    std::string line;
    if (!read_request_line(fd, line)) {
      DIAC_OBS_COUNT("serve.request.error", 1);
      out << error_line("missing request line") << "\n" << std::flush;
      return;
    }

    // Everything the sweep needs is built *before* the ok line, so any
    // bad request gets a clean single-line error.  After the ok line
    // the shard stream's `end` trailer is the integrity signal: a
    // worker exception leaves the stream truncated, which the client
    // rejects exactly like a killed shard worker.
    try {
      const SweepRequest request = parse_request(line);
      const Netlist nl = load_target(request.target);
      const CellLibrary lib = CellLibrary::nominal_45nm();
      ShardPlan plan;
      plan.shards = 1;
      plan.index = 0;

      if (request.kind == "mc") {
        const EvaluationOptions eo = mc_eval_options(request.options);
        const int runs = mc_runs(request.options);
        out << ok_line() << "\n";
        run_mc_shard(out, nl, lib, eo, runs, plan, runner_, cache_.get());
      } else if (request.kind == "replay") {
        const EvaluationOptions eo = replay_eval_options(request.options);
        const std::vector<std::string> traces =
            replay_trace_files(replay_trace_arg(request.options));
        if (traces.empty()) {
          throw std::runtime_error("trace library: no .csv traces");
        }
        out << ok_line() << "\n";
        run_replay_shard(out, nl, lib, eo, traces, plan, runner_,
                         cache_.get());
      } else {
        const SearchOptions so = search_options(request.options);
        const std::vector<DesignPoint> points = search_points(request.options);
        out << ok_line() << "\n";
        run_search_shard(out, nl, lib, points, so, plan, runner_,
                         cache_.get());
      }
      out.flush();
    } catch (const std::exception& e) {
      DIAC_OBS_COUNT("serve.request.error", 1);
      std::cerr << "diac serve: request failed: " << e.what() << "\n";
      // Harmless after the ok line: the ostream keeps appending, and
      // the truncated (trailer-less) stream is what marks the failure.
      out << error_line(e.what()) << "\n" << std::flush;
    }
  }

  ServerOptions options_;
  ExperimentRunner runner_;
  std::unique_ptr<ResultCache> cache_;
};

}  // namespace

int serve_forever(const ServerOptions& options) {
  g_stop = 0;
  Server server(options);
  return server.run();
}

}  // namespace diac::serve
