/// The content-addressed on-disk result cache.
///
/// Entries are result rows (shard-codec token sequences) addressed by
/// the canonical job digests of shard/job_key.*; the store is plain
/// files, so it is shared naturally by concurrent processes — shard
/// workers, serve daemons and one-shot CLI runs pointed at the same
/// `--cache-dir` all warm each other.
///
/// Layout:
///
///     <dir>/<build>/<kind>/<hh>/<digest32>.row
///
/// where `<build>` is the producing binary's git hash (obs/build_info)
/// — a new build gets a fresh namespace, so entries can never leak
/// across code versions — `<kind>` is the sweep kind, and `<hh>` is the
/// digest's first two hex digits (fan-out so no directory grows huge).
/// Each entry is a complete one-row shard file (header + row + `end`
/// trailer), written to a temp name and atomically renamed; the codec's
/// trailer check makes truncation and corruption detectable, and a
/// damaged entry is evicted and recomputed, never served.
///
/// Size capping is LRU by file mtime: every hit bumps its entry's
/// mtime (recency metadata is a deliberate side channel — it never
/// reaches result bytes, which is why the filesystem clock is
/// admissible here), and when the store grows past the configured
/// limit the oldest entries are pruned until it fits.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "shard/row_cache.hpp"

namespace diac::serve {

/// Where and how big: configuration of one ResultCache.
struct CacheConfig {
  /// Root directory (created on demand).
  std::string dir;
  /// Soft size cap in bytes; pruning runs after stores and trims the
  /// oldest entries until the store fits.  0 disables capping.
  std::uint64_t limit_bytes = 1024ULL << 20;  // 1 GiB
  /// Version namespace; defaults (when empty) to the running binary's
  /// git hash, so a rebuild invalidates by construction.
  std::string build_hash;
};

/// RowCache backed by the on-disk layout above.  Thread-safe; failures
/// to store or prune are swallowed (the cache is an accelerator, never
/// a correctness dependency).
class ResultCache final : public RowCache {
 public:
  /// Throws std::invalid_argument on an empty dir.
  explicit ResultCache(CacheConfig config);

  bool lookup(const std::string& kind, const Hash128& key,
              std::vector<std::string>& tokens) override;
  void store(const std::string& kind, const Hash128& key,
             const std::vector<std::string>& tokens) override;

  /// The entry path a (kind, key) pair maps to (exposed for tests that
  /// corrupt or truncate entries on purpose).
  std::string entry_path(const std::string& kind, const Hash128& key) const;

  /// Deletes oldest-first until the store is within the size cap; a
  /// no-op without a cap.  Runs automatically after stores.
  void prune();

 private:
  CacheConfig config_;
  std::mutex mutex_;
  std::uint64_t stores_since_prune_ = 0;
};

}  // namespace diac::serve
