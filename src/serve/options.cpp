#include "serve/options.hpp"

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "exp/trace_library.hpp"
#include "netlist/bench_format.hpp"
#include "netlist/blif_format.hpp"
#include "netlist/suite.hpp"
#include "netlist/transforms.hpp"
#include "netlist/verilog_format.hpp"

namespace diac::serve {

bool is_flag_option(const std::string& name) {
  return name == "grid" || name == "drc-only";
}

std::string option_or(const OptionMap& options, const std::string& key,
                      const std::string& dflt) {
  auto it = options.find(key);
  return it == options.end() ? dflt : it->second;
}

Netlist load_target(const std::string& target) {
  if (target.size() > 6 &&
      target.compare(target.size() - 6, 6, ".bench") == 0) {
    return cleanup(parse_bench_file(target));
  }
  if (target.size() > 5 && target.compare(target.size() - 5, 5, ".blif") == 0) {
    return cleanup(parse_blif_file(target));
  }
  if (target.size() > 2 && target.compare(target.size() - 2, 2, ".v") == 0) {
    std::ifstream in(target);
    if (!in) throw std::runtime_error("cannot open " + target);
    Netlist nl = parse_structural_verilog(in).netlist;
    if (nl.name() == "top" || nl.name().empty()) nl.set_name(target);
    return nl;
  }
  return build_benchmark(target);  // throws a clear error when unknown
}

SynthesisOptions synth_options(const OptionMap& options) {
  SynthesisOptions so;
  const std::string policy = option_or(options, "policy", "3");
  so.policy = policy == "1"   ? PolicyKind::kPolicy1
              : policy == "2" ? PolicyKind::kPolicy2
                              : PolicyKind::kPolicy3;
  so.budget_fraction = std::stod(option_or(options, "budget", "0.25"));
  const std::string nvm = option_or(options, "nvm", "mram");
  so.technology = nvm == "reram"   ? NvmTechnology::kReram
                  : nvm == "feram" ? NvmTechnology::kFeram
                  : nvm == "pcm"   ? NvmTechnology::kPcm
                                   : NvmTechnology::kMram;
  return so;
}

ScenarioSpec scenario_options(const OptionMap& options) {
  ScenarioSpec spec = scenario_from_name(option_or(options, "source", "rfid"));
  spec.seed = std::stoull(option_or(options, "seed", "60247"));
  return spec;
}

EvaluationOptions mc_eval_options(const OptionMap& options) {
  EvaluationOptions eo;
  eo.synthesis = synth_options(options);
  eo.simulator.target_instances =
      std::stoi(option_or(options, "instances", "6"));
  eo.simulator.max_time = 20000;
  // evaluate_monte_carlo / run_mc_shard reject non-seeded sources.
  eo.scenario = scenario_options(options);
  return eo;
}

int mc_runs(const OptionMap& options) {
  const int runs = std::stoi(option_or(options, "runs", "32"));
  if (runs <= 0) throw std::runtime_error("--runs must be positive");
  return runs;
}

EvaluationOptions replay_eval_options(const OptionMap& options) {
  EvaluationOptions eo;
  eo.synthesis = synth_options(options);
  eo.simulator.target_instances =
      std::stoi(option_or(options, "instances", "8"));
  return eo;
}

std::string replay_trace_arg(const OptionMap& options) {
  std::string trace = option_or(options, "trace", "");
  if (trace.empty()) {
    // `--source trace:<path>` is the flag-compatible spelling.
    const std::string source = option_or(options, "source", "");
    if (source.rfind("trace:", 0) == 0) trace = source.substr(6);
  }
  if (trace.empty()) {
    throw std::runtime_error("replay requires --trace <file|dir>");
  }
  return trace;
}

std::vector<std::string> replay_trace_files(const std::string& trace) {
  if (std::filesystem::is_directory(trace)) return list_trace_files(trace);
  return {trace};
}

SearchOptions search_options(const OptionMap& options) {
  SearchOptions so;
  so.synthesis = synth_options(options);  // base values under the swept axes
  so.scenario = scenario_options(options);
  so.simulator.target_instances =
      std::stoi(option_or(options, "instances", "6"));
  so.simulator.max_time = std::stod(option_or(options, "max-time", "30000"));
  so.objectives =
      SearchObjectives::parse(option_or(options, "objectives", "pdp,progress"));
  return so;
}

std::vector<DesignPoint> search_points(const OptionMap& options) {
  const CandidateSpace space;
  if (options.count("random") != 0) {
    if (options.count("grid") != 0) {
      throw std::runtime_error("--grid and --random are mutually exclusive");
    }
    const int n = std::stoi(option_or(options, "random", "8"));
    if (n <= 0) throw std::runtime_error("--random must be positive");
    return space.sample(static_cast<std::size_t>(n),
                        std::stoull(option_or(options, "sample-seed", "53715")));
  }
  return space.grid();  // --grid is the default
}

}  // namespace diac::serve
