/// The sweep option builders, shared verbatim by the CLI and the serve
/// protocol.
///
/// A serve request line carries the same `--key value` options as the
/// `diac` command line; both surfaces funnel through these builders, so
/// a served sweep and a standalone one can never disagree on what an
/// option means — which is the precondition for the cold/warm and
/// local/remote byte-identity guarantees.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "metrics/montecarlo.hpp"
#include "metrics/pdp.hpp"
#include "netlist/netlist.hpp"
#include "search/engine.hpp"

namespace diac::serve {

/// Parsed `--key value` options, keyed without the leading dashes.
using OptionMap = std::map<std::string, std::string>;

/// Options that are bare flags (no value); they parse as "1".
bool is_flag_option(const std::string& name);

/// `options[key]`, or `dflt` when absent.
std::string option_or(const OptionMap& options, const std::string& key,
                      const std::string& dflt);

/// Loads a sweep target: a bundled benchmark name, or a path ending in
/// .bench / .blif / .v.  Throws on unknown names/unreadable files.
Netlist load_target(const std::string& target);

/// --policy / --budget / --nvm -> synthesis recipe.
SynthesisOptions synth_options(const OptionMap& options);

/// --source / --seed -> harvest scenario (defaults to the paper's RFID
/// bursts under the historical default seed).
ScenarioSpec scenario_options(const OptionMap& options);

/// The full mc sweep configuration (instances, horizon, scenario).
EvaluationOptions mc_eval_options(const OptionMap& options);

/// --runs with validation (positive).
int mc_runs(const OptionMap& options);

/// The replay sweep configuration (scenarios come from the trace list).
EvaluationOptions replay_eval_options(const OptionMap& options);

/// The --trace <file|dir> argument (accepting --source trace:<path> as
/// the flag-compatible spelling); throws when neither is given.
std::string replay_trace_arg(const OptionMap& options);

/// The global replay job list: the sorted CSVs of a library directory,
/// or the single named file.  Every participant (CLI, worker, server)
/// derives the identical list, which is what addresses a row's global
/// job index.
std::vector<std::string> replay_trace_files(const std::string& trace);

/// The search configuration (--objectives, --max-time, ...).
SearchOptions search_options(const OptionMap& options);

/// The candidate list: the full grid (--grid, the default) or a seeded
/// --random sample, in canonical order.
std::vector<DesignPoint> search_points(const OptionMap& options);

}  // namespace diac::serve
