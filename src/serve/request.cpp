#include "serve/request.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace diac::serve {

namespace {

constexpr const char* kMagic = "diac-serve";

bool valid_kind(const std::string& kind) {
  return kind == "mc" || kind == "replay" || kind == "search";
}

}  // namespace

std::string format_request(const SweepRequest& request) {
  std::ostringstream out;
  out << kMagic << " " << kServeProtocolVersion << " run " << request.kind
      << " " << request.target;
  for (const auto& [key, value] : request.options) {
    out << " --" << key;
    if (!is_flag_option(key)) out << " " << value;
  }
  return out.str();
}

SweepRequest parse_request(const std::string& line) {
  std::istringstream in(line);
  std::string magic, verb;
  int version = 0;
  SweepRequest request;
  if (!(in >> magic >> version >> verb >> request.kind >> request.target) ||
      magic != kMagic) {
    throw std::runtime_error("malformed request (expected '" +
                             std::string(kMagic) +
                             " <version> run <kind> <target> ...')");
  }
  if (version != kServeProtocolVersion) {
    throw std::runtime_error(
        "protocol version " + std::to_string(version) + " (this server speaks " +
        std::to_string(kServeProtocolVersion) + ")");
  }
  if (verb != "run") {
    throw std::runtime_error("unknown verb '" + verb + "' (expected run)");
  }
  if (!valid_kind(request.kind)) {
    throw std::runtime_error("unknown sweep kind '" + request.kind +
                             "' (expected mc|replay|search)");
  }
  std::string token;
  while (in >> token) {
    if (token.rfind("--", 0) != 0 || token.size() <= 2) {
      throw std::runtime_error("expected option, got '" + token + "'");
    }
    const std::string key = token.substr(2);
    if (is_flag_option(key)) {
      request.options[key] = "1";
      continue;
    }
    std::string value;
    if (!(in >> value)) {
      throw std::runtime_error("option --" + key + " requires a value");
    }
    request.options[key] = value;
  }
  return request;
}

std::string ok_line() {
  return std::string(kMagic) + " " + std::to_string(kServeProtocolVersion) +
         " ok";
}

std::string error_line(const std::string& message) {
  std::string clean = message;
  std::replace(clean.begin(), clean.end(), '\n', ' ');
  return std::string(kMagic) + " " + std::to_string(kServeProtocolVersion) +
         " error " + clean;
}

}  // namespace diac::serve
