#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <sstream>
#include <stdexcept>

#include "obs/obs.hpp"
#include "shard/codec.hpp"

namespace diac::serve {

namespace {

/// Connects, sends the request line, and slurps the full response.
std::string exchange(const std::string& socket_path, const std::string& line) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("connect: socket() failed");

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    throw std::runtime_error("connect: socket path too long: " + socket_path);
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    throw std::runtime_error("cannot connect to serve socket " + socket_path +
                             " (is `diac serve --socket " + socket_path +
                             "` running?)");
  }

  const std::string request = line + "\n";
  const char* p = request.data();
  std::size_t left = request.size();
  while (left > 0) {
    const ssize_t n = ::send(fd, p, left, MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      throw std::runtime_error("connect: request write failed");
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  ::shutdown(fd, SHUT_WR);

  std::string response;
  char chunk[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      ::close(fd);
      throw std::runtime_error("connect: response read failed");
    }
    if (n == 0) break;
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

}  // namespace

std::vector<std::vector<std::string>> run_remote_sweep(
    const std::string& socket_path, const SweepRequest& request,
    std::size_t expected_jobs) {
  DIAC_TRACE_SPAN("serve.client.request", "serve");
  std::istringstream in(exchange(socket_path, format_request(request)));

  std::string status;
  if (!std::getline(in, status)) {
    throw std::runtime_error("serve: empty response (server died?)");
  }
  if (status != ok_line()) {
    const std::string error_prefix =
        error_line("");  // "diac-serve <v> error "
    if (status.rfind(error_prefix, 0) == 0) {
      throw std::runtime_error("serve: " + status.substr(error_prefix.size()));
    }
    throw std::runtime_error("serve: unrecognized response '" + status + "'");
  }

  // The response body is exactly a 1-shard worker file; its mandatory
  // `end` trailer is what catches a server killed mid-stream.
  const ShardFile file =
      read_shard_stream(in, "serve response from " + socket_path);
  if (file.header.kind != request.kind) {
    throw std::runtime_error("serve: response kind '" + file.header.kind +
                             "' for a " + request.kind + " request");
  }
  if (file.header.jobs != expected_jobs) {
    throw std::runtime_error(
        "serve: response covers " + std::to_string(file.header.jobs) +
        " job(s), expected " + std::to_string(expected_jobs));
  }

  std::vector<std::vector<std::string>> payloads(expected_jobs);
  std::vector<bool> seen(expected_jobs, false);
  for (const ShardRow& row : file.rows) {
    if (row.job >= expected_jobs || seen[row.job]) {
      throw std::runtime_error("serve: bad row index " +
                               std::to_string(row.job));
    }
    seen[row.job] = true;
    payloads[row.job] = row.tokens;
  }
  for (std::size_t j = 0; j < expected_jobs; ++j) {
    if (!seen[j]) {
      throw std::runtime_error("serve: response missing job " +
                               std::to_string(j));
    }
  }
  return payloads;
}

}  // namespace diac::serve
