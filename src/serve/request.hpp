/// The serve wire protocol: line-oriented, token-framed, versioned.
///
/// Request (one line):
///
///     diac-serve 1 run <kind> <target> [--key value | --flag]...
///
/// `<kind>` is mc | replay | search, `<target>` a benchmark name or
/// netlist path readable by the *server*, and the options are exactly
/// the sweep options of the corresponding CLI command (parsed by the
/// shared builders in serve/options.*).  Tokens are whitespace-split,
/// so option values must not contain whitespace.
///
/// Response: one status line, then — on success — a complete shard row
/// stream (shard-codec header + `row` lines + `end` trailer, identical
/// to a `--shards 1` worker file):
///
///     diac-serve 1 ok
///     diac-shard 1 <kind> 1 0 <jobs>
///     row 0 ...
///     end <jobs>
///
/// or a single error line:
///
///     diac-serve 1 error <message...>
///
/// The trailer makes a server that died mid-stream detectable on the
/// client, exactly like a killed shard worker.
#pragma once

#include <string>

#include "serve/options.hpp"

namespace diac::serve {

/// Protocol version; bumped with any change to the line grammar.
inline constexpr int kServeProtocolVersion = 1;

/// One parsed sweep request.
struct SweepRequest {
  std::string kind;  ///< "mc" | "replay" | "search"
  std::string target;
  OptionMap options;
};

/// Serializes a request to its wire line (no trailing newline).
std::string format_request(const SweepRequest& request);

/// Parses a wire line; throws std::runtime_error with a client-facing
/// message on bad magic, version, kind or option syntax.
SweepRequest parse_request(const std::string& line);

/// The success status line (no trailing newline).
std::string ok_line();

/// An error status line carrying `message` (newlines stripped).
std::string error_line(const std::string& message);

}  // namespace diac::serve
