// Ambient energy-harvesting sources.
//
// The paper simulates "an intermittent power source characterized by a
// predetermined sequence of voltage levels that cyclically repeat"
// (RFID-style bursts).  Sources here expose harvested *power* as a
// piecewise-constant function of time; the simulator integrates it into
// the storage capacitor.  All stochastic sources are seeded and
// precomputed, so runs are reproducible and every scheme sees the exact
// same trace.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/rng.hpp"

namespace diac {

class HarvestSource {
 public:
  virtual ~HarvestSource() = default;

  // Harvested power at absolute time t (s), in W.
  virtual double power_at(double t) const = 0;

  // Next time > t at which the power level may change (simulation steps
  // never need to subdivide below this).  Infinity for constant sources.
  virtual double next_change(double t) const = 0;

  // True when the power is exactly constant between next_change()
  // breakpoints — the contract the event-driven simulator exploits to
  // advance in closed form.  Sources with a continuously varying envelope
  // (SolarSource) return false; the event engine then advances them via
  // energy_between()/next_power_crossing() (or in bounded quanta when the
  // quantum path is selected for differential testing).
  virtual bool piecewise_constant() const { return true; }

  // Exact integral of harvested power over [t0, t1], in J.  The default
  // walks the piecewise-constant breakpoints (exact for every pwc
  // source); continuous-envelope sources override with their closed form.
  virtual double energy_between(double t0, double t1) const;

  // First time in (t, horizon] at which the power crosses `level` (from
  // either side), or infinity when it does not.  Piecewise-constant
  // sources only move at next_change() breakpoints — which the event
  // engine already treats as events — so the default returns infinity.
  // Continuous sources solve their envelope in closed form; the event
  // engine uses this to split an advance into net-sign-constant windows,
  // inside which the stored-energy trajectory is monotone.
  virtual double next_power_crossing(double t, double level,
                                     double horizon) const;
};

// Constant source.
class ConstantSource final : public HarvestSource {
 public:
  explicit ConstantSource(double watts);
  double power_at(double t) const override;
  double next_change(double t) const override;

 private:
  double watts_;
};

// Square wave: `on_power` for duty*period, 0 for the rest, repeating.
class SquareWaveSource final : public HarvestSource {
 public:
  SquareWaveSource(double on_power, double period, double duty);
  double power_at(double t) const override;
  double next_change(double t) const override;

 private:
  double on_power_, period_, duty_;
};

// Piecewise-constant trace: power is levels[i] on [times[i], times[i+1]),
// and `tail` after the last breakpoint.  Used for the scripted Fig. 4
// scenario and for replaying recorded traces.
class PiecewiseTrace final : public HarvestSource {
 public:
  struct Segment {
    double start;  // s
    double power;  // W
  };
  explicit PiecewiseTrace(std::vector<Segment> segments);

  double power_at(double t) const override;
  double next_change(double t) const override;

  const std::vector<Segment>& segments() const { return segments_; }

 private:
  std::vector<Segment> segments_;  // sorted by start
};

// RFID-style bursty source: alternating on/off intervals with random
// durations and random on-amplitudes, precomputed out to `horizon`
// seconds (constant 0 beyond).  Deterministic in the seed.
class RfidBurstSource final : public HarvestSource {
 public:
  // Defaults give a mean harvested power of ~1.8 mW against the ~3 mW
  // active draw — the energy-scarce regime the paper targets, with
  // frequent dips into the safe zone and occasional deep outages.
  struct Options {
    double mean_on = 3.0;       // s, mean burst length
    double mean_off = 3.5;      // s, mean gap length
    double min_power = 0.8e-3;  // W during a burst
    double max_power = 7.0e-3;
    double horizon = 50000.0;   // s of precomputed trace
  };
  explicit RfidBurstSource(std::uint64_t seed);  // default Options
  RfidBurstSource(std::uint64_t seed, Options options);

  double power_at(double t) const override;
  double next_change(double t) const override;

  const PiecewiseTrace& trace() const { return *trace_; }

 private:
  std::unique_ptr<PiecewiseTrace> trace_;
};

// Solar-profile source: a diurnal half-sine envelope (zero at night)
// modulated by seeded cloud attenuation events.  Gives experiments a
// second, qualitatively different ambient-source class (slow diurnal
// swings + minute-scale cloud dips) next to the bursty RFID source.
class SolarSource final : public HarvestSource {
 public:
  struct Options {
    double peak_power = 12.0e-3;   // W at solar noon, clear sky
    double day_length = 600.0;     // s of daylight per period (scaled day)
    double night_length = 600.0;   // s of darkness per period
    double cloud_rate = 0.01;      // expected cloud events per second
    double cloud_mean_duration = 20.0;  // s
    double cloud_attenuation = 0.15;    // fraction of power left under cloud
    double horizon = 50000.0;      // s of precomputed cloud trace
  };
  explicit SolarSource(std::uint64_t seed);
  SolarSource(std::uint64_t seed, Options options);

  double power_at(double t) const override;
  double next_change(double t) const override;
  bool piecewise_constant() const override { return false; }
  // Closed-form sine-envelope integral: exact over day/night boundaries
  // and cloud edges.
  double energy_between(double t0, double t1) const override;
  // Closed-form arcsin solve of peak*atten*sin(pi*phase/day) == level
  // within the current daylight/cloud segment.
  double next_power_crossing(double t, double level,
                             double horizon) const override;

 private:
  Options options_;
  // Cloud events as [start, end) intervals, sorted.
  std::vector<std::pair<double, double>> clouds_;
};

// The scripted charging-rate scenario of Fig. 4, covering all six regions:
//  (1) surplus charging (storage saturates at E_MAX),
//  (2) scarce charging (duty-cycled operation),
//  (3) sudden decline triggering a backup,
//  (4) sustained drought: shutdown below Th_Off, later restore,
//  (5) three brief dips into the safe zone (no backups needed),
//  (6) an interruption that causes a backup but recovers before shutdown.
PiecewiseTrace fig4_trace();

}  // namespace diac
