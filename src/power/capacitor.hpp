// Energy storage: the virtual battery of SIV.A.
//
// "a capacitance of 2 mF is considered, and an operational voltage of 5 V
//  is used.  Therefore, the system can store a maximum of E_MAX = 25 mJ."
//
// The capacitor accumulates harvested energy (clamped at E_MAX) and
// supplies the load; the simulator tracks both flows for the energy
// accounting the PDP metric needs.
#pragma once

namespace diac {

class Capacitor {
 public:
  // C in farads, V in volts; E_MAX = C V^2 / 2.
  Capacitor(double capacitance, double voltage);

  // The paper's storage: 2 mF @ 5 V -> 25 mJ.
  static Capacitor paper_default();

  // --- non-idealities (off by default) -----------------------------------
  // Charge-path efficiency: fraction of offered energy actually stored
  // (rectifier + regulator losses).  In (0, 1].
  void set_charge_efficiency(double eta);
  double charge_efficiency() const { return efficiency_; }
  // Self-discharge leakage in W; apply with self_discharge(dt).
  void set_leakage_power(double watts);
  double leakage_power() const { return leakage_; }
  // Advances self-discharge by dt seconds; returns the energy leaked.
  double self_discharge(double dt);

  double e_max() const { return e_max_; }
  double energy() const { return energy_; }
  bool full() const { return energy_ >= e_max_; }

  void set_energy(double joules);

  // Adds harvested energy; returns the amount actually stored (excess
  // beyond E_MAX is wasted, as in a real shunt regulator).
  double charge(double joules);

  // Draws energy from storage; the level floors at zero (the consumer is
  // responsible for checking thresholds first).  Returns the amount
  // actually drawn.
  double draw(double joules);

 private:
  double e_max_;
  double energy_ = 0;
  double efficiency_ = 1.0;
  double leakage_ = 0.0;
};

}  // namespace diac
