// Harvest-trace file I/O.
//
// Real deployments log their supply as timestamped power samples; this
// module loads such logs (two-column CSV: time_s, power_W — header
// optional) into a PiecewiseTrace for replay, and saves any HarvestSource
// by sampling it.  This is the drop-in path for users with measured RFID
// or solar traces.
#pragma once

#include <string>

#include "power/harvester.hpp"

namespace diac {

// Loads a two-column CSV (time, power) into a step-function trace.
// Accepts exactly one optional header row, '#' comment lines, and blank
// lines.  Times must be non-decreasing; a sample repeating the previous
// timestamp replaces it (last sample wins — loggers often emit a final
// reading twice on shutdown).  Any other malformed line throws
// std::runtime_error with its line number.
PiecewiseTrace load_trace_csv(const std::string& path);
PiecewiseTrace parse_trace_csv(std::istream& in);

// Samples `source` at t = i * interval over [0, horizon) and writes a CSV
// loadable by load_trace_csv.  Samples carry full double precision, so a
// save/load round trip reproduces power_at exactly on the grid.
void save_trace_csv(const std::string& path, const HarvestSource& source,
                    double horizon, double interval);

}  // namespace diac
