// Power-management unit: the threshold stack and zone classification of
// SIII.B / Fig. 4.
//
// Six thresholds partition the storage level (derived per scheme, because
// the backup reserve depends on how many bits a backup writes):
//
//   E_MAX
//    |  operate freely (enter any state whose Th_State is met)
//   Th_Tr  -- may enter Transmit
//   Th_Cp  -- may enter Compute
//   Th_Se  -- may enter Sense
//   Th_Safe = Th_Bk + safe_margin  -- active states exit below this
//   Th_Bk   = Th_Off + backup reserve -- the power interrupt fires here
//   Th_Off  -- volatile state is lost below this
//    0
#pragma once

namespace diac {

enum class PowerZone {
  kOff,       // below Th_Off: volatile state lost
  kBackup,    // [Th_Off, Th_Bk): power interrupt — must back up
  kSafeZone,  // [Th_Bk, Th_Safe): hold in Sleep, may recover
  kLow,       // [Th_Safe, Th_Se): can sleep safely, not enough to sense
  kOperate,   // >= Th_Se: at least sensing is possible
};

const char* to_string(PowerZone zone);

struct Thresholds {
  double off = 0;
  double backup = 0;
  double safe = 0;
  double sense = 0;
  double compute = 0;
  double transmit = 0;

  PowerZone classify(double energy) const;

  // True when `energy` admits entering the given operation (the
  // Energy > Th_State checks of Algorithm 1 lines 6-11).
  bool can_sense(double energy) const { return energy > sense; }
  bool can_compute(double energy) const { return energy > compute; }
  bool can_transmit(double energy) const { return energy > transmit; }

  // Validates the stack ordering; throws std::invalid_argument otherwise.
  void validate() const;
};

// Builds the stack for a scheme whose backup event costs `backup_energy`:
//   Th_Off  = off_floor
//   Th_Bk   = Th_Off + backup_margin * backup_energy
//   Th_Safe = Th_Bk + safe_margin                  (paper: +2 mJ)
//   Th_X    = Th_Safe + entry_margin * op_energy_X (X in {Se, Cp, Tr})
// Caps at e_max; throws when the stack cannot fit below e_max.
Thresholds make_thresholds(double e_max, double backup_energy,
                           double sense_energy, double compute_entry_energy,
                           double transmit_energy, double off_floor = 1.0e-3,
                           double backup_margin = 1.25,
                           double safe_margin = 2.0e-3,
                           double entry_margin = 1.2);

}  // namespace diac
