#include "power/trace_io.hpp"

#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace diac {

PiecewiseTrace parse_trace_csv(std::istream& in) {
  std::vector<PiecewiseTrace::Segment> segs;
  std::string line;
  int line_no = 0;
  bool header_seen = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    if (line.find_first_not_of(" \t\r\n") == std::string::npos) continue;
    std::stringstream ss(line);
    std::string t_str, p_str;
    if (!std::getline(ss, t_str, ',') || !std::getline(ss, p_str, ',')) {
      throw std::runtime_error("trace csv line " + std::to_string(line_no) +
                               ": expected two comma-separated columns");
    }
    double t, p;
    try {
      t = std::stod(t_str);
      p = std::stod(p_str);
    } catch (const std::exception&) {
      // Exactly one leading header row is tolerated; anything else
      // non-numeric is a malformed file, not a header.
      if (segs.empty() && !header_seen) {
        header_seen = true;
        continue;
      }
      throw std::runtime_error("trace csv line " + std::to_string(line_no) +
                               ": non-numeric sample");
    }
    if (p < 0) {
      throw std::runtime_error("trace csv line " + std::to_string(line_no) +
                               ": negative power");
    }
    if (!segs.empty()) {
      if (t < segs.back().start) {
        throw std::runtime_error("trace csv line " + std::to_string(line_no) +
                                 ": timestamps must be non-decreasing");
      }
      if (t == segs.back().start) {
        // Duplicate timestamp: the later sample wins; collapsing it here
        // avoids a zero-width segment whose earlier power is unreachable.
        segs.back().power = p;
        continue;
      }
    }
    segs.push_back({t, p});
  }
  if (segs.empty()) {
    throw std::runtime_error("trace csv: no samples");
  }
  return PiecewiseTrace(std::move(segs));
}

PiecewiseTrace load_trace_csv(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open trace file: " + path);
  return parse_trace_csv(f);
}

void save_trace_csv(const std::string& path, const HarvestSource& source,
                    double horizon, double interval) {
  if (horizon <= 0 || interval <= 0) {
    throw std::invalid_argument("save_trace_csv: horizon/interval must be positive");
  }
  CsvWriter csv(path, {"time_s", "power_W"});
  // Index-based grid: accumulating `t += interval` drifts after thousands
  // of additions and can emit or drop the sample nearest `horizon`.
  // Samples are written at max_digits10 so load_trace_csv reproduces the
  // source's power_at bit-exactly on the grid.
  for (std::int64_t i = 0;; ++i) {
    const double t = static_cast<double>(i) * interval;
    if (t >= horizon) break;
    csv.add_row(std::vector<double>{t, source.power_at(t)},
                std::numeric_limits<double>::max_digits10);
  }
}

}  // namespace diac
