#include "power/capacitor.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/units.hpp"

namespace diac {

Capacitor::Capacitor(double capacitance, double voltage)
    : e_max_(units::capacitor_energy(capacitance, voltage)) {
  if (capacitance <= 0 || voltage <= 0) {
    throw std::invalid_argument("Capacitor: capacitance and voltage must be positive");
  }
}

Capacitor Capacitor::paper_default() {
  using namespace units;
  return Capacitor(2.0 * mF, 5.0 * V);
}

void Capacitor::set_energy(double joules) {
  if (joules < 0 || joules > e_max_) {
    throw std::invalid_argument("Capacitor::set_energy: out of range");
  }
  energy_ = joules;
}

void Capacitor::set_charge_efficiency(double eta) {
  if (eta <= 0 || eta > 1) {
    throw std::invalid_argument("Capacitor: efficiency must be in (0, 1]");
  }
  efficiency_ = eta;
}

void Capacitor::set_leakage_power(double watts) {
  if (watts < 0) throw std::invalid_argument("Capacitor: negative leakage");
  leakage_ = watts;
}

double Capacitor::self_discharge(double dt) {
  if (dt < 0) throw std::invalid_argument("Capacitor::self_discharge: negative dt");
  const double leaked = std::min(leakage_ * dt, energy_);
  energy_ -= leaked;
  return leaked;
}

double Capacitor::charge(double joules) {
  if (joules < 0) throw std::invalid_argument("Capacitor::charge: negative");
  const double stored = std::min(joules * efficiency_, e_max_ - energy_);
  energy_ += stored;
  return stored;
}

double Capacitor::draw(double joules) {
  if (joules < 0) throw std::invalid_argument("Capacitor::draw: negative");
  const double drawn = std::min(joules, energy_);
  energy_ -= drawn;
  return drawn;
}

}  // namespace diac
