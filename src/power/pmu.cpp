#include "power/pmu.hpp"

#include <stdexcept>
#include <string>

#include "util/units.hpp"

namespace diac {

const char* to_string(PowerZone zone) {
  switch (zone) {
    case PowerZone::kOff: return "Off";
    case PowerZone::kBackup: return "Backup";
    case PowerZone::kSafeZone: return "SafeZone";
    case PowerZone::kLow: return "Low";
    case PowerZone::kOperate: return "Operate";
  }
  return "?";
}

PowerZone Thresholds::classify(double energy) const {
  if (energy < off) return PowerZone::kOff;
  if (energy < backup) return PowerZone::kBackup;
  if (energy < safe) return PowerZone::kSafeZone;
  if (energy < sense) return PowerZone::kLow;
  return PowerZone::kOperate;
}

void Thresholds::validate() const {
  if (!(0 <= off && off <= backup && backup <= safe && safe <= sense &&
        sense <= compute && compute <= transmit)) {
    throw std::invalid_argument("Thresholds: stack ordering violated");
  }
}

Thresholds make_thresholds(double e_max, double backup_energy,
                           double sense_energy, double compute_entry_energy,
                           double transmit_energy, double off_floor,
                           double backup_margin, double safe_margin,
                           double entry_margin) {
  if (e_max <= 0 || backup_energy < 0) {
    throw std::invalid_argument("make_thresholds: invalid arguments");
  }
  Thresholds th;
  th.off = off_floor;
  th.backup = th.off + backup_margin * backup_energy;
  th.safe = th.backup + safe_margin;
  th.sense = th.safe + entry_margin * sense_energy;
  th.compute = th.safe + entry_margin * compute_entry_energy;
  th.transmit = th.safe + entry_margin * transmit_energy;
  // Sense must not exceed compute/transmit ordering; normalize the stack so
  // classify() stays monotonic (Algorithm 1 checks each Th_State
  // independently, but the zone model wants ordering).
  if (th.compute < th.sense) th.compute = th.sense;
  if (th.transmit < th.compute) th.transmit = th.compute;
  if (th.transmit >= e_max) {
    throw std::invalid_argument(
        "make_thresholds: threshold stack (" +
        std::to_string(units::as_mJ(th.transmit)) +
        " mJ) does not fit below E_MAX (" +
        std::to_string(units::as_mJ(e_max)) + " mJ) — backup too expensive "
        "or storage too small");
  }
  th.validate();
  return th;
}

}  // namespace diac
