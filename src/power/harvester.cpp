#include "power/harvester.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/units.hpp"

namespace diac {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kPi = 3.14159265358979323846;

bool cloud_at(const std::vector<std::pair<double, double>>& clouds, double t) {
  auto it = std::upper_bound(
      clouds.begin(), clouds.end(), t,
      [](double v, const std::pair<double, double>& c) { return v < c.first; });
  return it != clouds.begin() && t < std::prev(it)->second;
}
}  // namespace

double HarvestSource::energy_between(double t0, double t1) const {
  // Exact for piecewise-constant sources: the power is power_at(t) on
  // every [breakpoint, breakpoint) span.
  double e = 0;
  double t = t0;
  while (t < t1) {
    const double end = std::min(next_change(t), t1);
    if (!(end > t)) break;  // defensive: next_change must advance
    e += power_at(t) * (end - t);
    t = end;
  }
  return e;
}

double HarvestSource::next_power_crossing(double, double, double) const {
  return kInf;  // pwc sources only move at next_change breakpoints
}

ConstantSource::ConstantSource(double watts) : watts_(watts) {
  if (watts < 0) throw std::invalid_argument("ConstantSource: negative power");
}

double ConstantSource::power_at(double) const { return watts_; }
double ConstantSource::next_change(double) const { return kInf; }

SquareWaveSource::SquareWaveSource(double on_power, double period, double duty)
    : on_power_(on_power), period_(period), duty_(duty) {
  if (on_power < 0 || period <= 0 || duty < 0 || duty > 1) {
    throw std::invalid_argument("SquareWaveSource: invalid parameters");
  }
}

double SquareWaveSource::power_at(double t) const {
  if (t < 0) return 0;
  const double phase = std::fmod(t, period_);
  return phase < duty_ * period_ ? on_power_ : 0.0;
}

double SquareWaveSource::next_change(double t) const {
  if (t < 0) return 0;
  const double cycle = std::floor(t / period_) * period_;
  const double edge = cycle + duty_ * period_;
  if (t < edge) return edge;
  return cycle + period_;
}

PiecewiseTrace::PiecewiseTrace(std::vector<Segment> segments)
    : segments_(std::move(segments)) {
  if (segments_.empty()) {
    throw std::invalid_argument("PiecewiseTrace: empty trace");
  }
  if (!std::is_sorted(segments_.begin(), segments_.end(),
                      [](const Segment& a, const Segment& b) {
                        return a.start < b.start;
                      })) {
    throw std::invalid_argument("PiecewiseTrace: segments must be sorted");
  }
  for (const Segment& s : segments_) {
    if (s.power < 0) throw std::invalid_argument("PiecewiseTrace: negative power");
  }
}

double PiecewiseTrace::power_at(double t) const {
  if (t < segments_.front().start) return 0.0;
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), t,
      [](double v, const Segment& s) { return v < s.start; });
  return std::prev(it)->power;
}

double PiecewiseTrace::next_change(double t) const {
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), t,
      [](double v, const Segment& s) { return v < s.start; });
  return it == segments_.end() ? kInf : it->start;
}

RfidBurstSource::RfidBurstSource(std::uint64_t seed)
    : RfidBurstSource(seed, Options{}) {}

RfidBurstSource::RfidBurstSource(std::uint64_t seed, Options options) {
  if (options.mean_on <= 0 || options.mean_off <= 0 || options.horizon <= 0 ||
      options.min_power < 0 || options.max_power < options.min_power) {
    throw std::invalid_argument("RfidBurstSource: invalid options");
  }
  SplitMix64 rng(seed);
  std::vector<PiecewiseTrace::Segment> segs;
  double t = 0;
  bool on = rng.chance(0.5);
  while (t < options.horizon) {
    const double mean = on ? options.mean_on : options.mean_off;
    // Exponential duration via inverse transform, clamped for sanity.
    const double u = std::max(1e-9, rng.uniform());
    double dur = std::clamp(-mean * std::log(u), 0.05 * mean, 8.0 * mean);
    // Occasional droughts: a reader moving out of range for much longer
    // than a burst gap.  These are what exercise backups, rollbacks, deep
    // outages and the safe zone.
    if (!on && rng.chance(0.12)) dur *= 5.0;
    const double p =
        on ? rng.uniform(options.min_power, options.max_power) : 0.0;
    segs.push_back({t, p});
    t += dur;
    on = !on;
  }
  segs.push_back({options.horizon, 0.0});
  trace_ = std::make_unique<PiecewiseTrace>(std::move(segs));
}

double RfidBurstSource::power_at(double t) const { return trace_->power_at(t); }
double RfidBurstSource::next_change(double t) const {
  return trace_->next_change(t);
}

SolarSource::SolarSource(std::uint64_t seed)
    : SolarSource(seed, Options{}) {}

SolarSource::SolarSource(std::uint64_t seed, Options options)
    : options_(options) {
  if (options_.peak_power < 0 || options_.day_length <= 0 ||
      options_.night_length < 0 || options_.cloud_rate < 0 ||
      options_.cloud_mean_duration <= 0 || options_.cloud_attenuation < 0 ||
      options_.cloud_attenuation > 1 || options_.horizon <= 0) {
    throw std::invalid_argument("SolarSource: invalid options");
  }
  SplitMix64 rng(seed);
  // Poisson-ish cloud arrivals via exponential gaps.
  double t = 0;
  while (t < options_.horizon) {
    const double gap = options_.cloud_rate > 0
                           ? -std::log(std::max(1e-9, rng.uniform())) /
                                 options_.cloud_rate
                           : options_.horizon;
    t += gap;
    if (t >= options_.horizon) break;
    const double dur = std::clamp(
        -options_.cloud_mean_duration * std::log(std::max(1e-9, rng.uniform())),
        1.0, 8.0 * options_.cloud_mean_duration);
    clouds_.emplace_back(t, t + dur);
    t += dur;
  }
}

double SolarSource::power_at(double t) const {
  if (t < 0) return 0;
  const double period = options_.day_length + options_.night_length;
  const double phase = std::fmod(t, period);
  if (phase >= options_.day_length) return 0.0;  // night
  const double envelope =
      options_.peak_power * std::sin(kPi * phase / options_.day_length);
  if (cloud_at(clouds_, t)) return envelope * options_.cloud_attenuation;
  return envelope;
}

double SolarSource::next_change(double t) const {
  // The envelope changes continuously; report the next cloud edge or
  // day/night boundary so simulators know the trace is "active".
  const double period = options_.day_length + options_.night_length;
  const double phase = std::fmod(std::max(t, 0.0), period);
  const double base = t - phase;
  double next = phase < options_.day_length ? base + options_.day_length
                                            : base + period;
  // Binary search over the sorted cloud intervals (this is on the
  // event-driven simulator's hot path).
  auto it = std::upper_bound(
      clouds_.begin(), clouds_.end(), t,
      [](double v, const std::pair<double, double>& c) { return v < c.first; });
  if (it != clouds_.end()) next = std::min(next, it->first);
  if (it != clouds_.begin()) {
    const auto& prev = *std::prev(it);
    if (prev.second > t) next = std::min(next, prev.second);
  }
  return next;
}

double SolarSource::energy_between(double t0, double t1) const {
  // Walk the envelope's own breakpoints (day/night boundaries and cloud
  // edges — exactly what next_change reports), integrating the sine in
  // closed form on each smooth piece:
  //   ∫ A·sin(π·p/L) dp over [p0, p1]  =  A·L/π · (cos(π·p0/L) − cos(π·p1/L))
  const double period = options_.day_length + options_.night_length;
  const double w = kPi / options_.day_length;
  double e = 0;
  double t = std::max(t0, 0.0);
  while (t < t1) {
    const double end = std::min(next_change(t), t1);
    if (!(end > t)) break;  // defensive: next_change must advance
    // Classify the piece at its midpoint: next_change stops at every
    // boundary, so the day/night and cloud state is constant on (t, end).
    const double mid = 0.5 * (t + end);
    const double phase = std::fmod(mid, period);
    if (phase < options_.day_length) {
      const double atten =
          cloud_at(clouds_, mid) ? options_.cloud_attenuation : 1.0;
      const double day_start = mid - phase;
      const double p0 = std::clamp(t - day_start, 0.0, options_.day_length);
      const double p1 = std::clamp(end - day_start, 0.0, options_.day_length);
      e += atten * options_.peak_power / w *
           (std::cos(w * p0) - std::cos(w * p1));
    }
    t = end;
  }
  return e;
}

double SolarSource::next_power_crossing(double t, double level,
                                        double horizon) const {
  if (level <= 0) return kInf;  // power never goes negative
  const double period = options_.day_length + options_.night_length;
  const double tt = std::max(t, 0.0);
  const double phase = std::fmod(tt, period);
  if (phase >= options_.day_length) return kInf;  // night: constant zero
  const double amp = options_.peak_power *
                     (cloud_at(clouds_, tt) ? options_.cloud_attenuation : 1.0);
  if (amp <= 0) return kInf;
  const double r = level / amp;
  if (r >= 1.0) return kInf;  // the envelope never reaches the level
  // A·sin(π·p/L) == level at p and L−p within this day; the amplitude is
  // constant until the next cloud edge / boundary, which next_change
  // already reports as an event.
  const double w = kPi / options_.day_length;
  const double p = std::asin(r) / w;
  const double day_start = tt - phase;
  const double seg_end = std::min(horizon, next_change(tt));
  for (const double cand :
       {day_start + p, day_start + (options_.day_length - p)}) {
    if (cand > tt && cand <= seg_end) return cand;
  }
  return kInf;
}

PiecewiseTrace fig4_trace() {
  using namespace units;
  // Charging rates chosen against the paper's system constants
  // (E_MAX = 25 mJ; sense/compute/transmit = 2/4/9 mJ; active drain ~3 mW):
  // the bottom panel of Fig. 4 swings between ~0 and ~50 (arbitrary
  // units); we map its qualitative shape onto mW levels.
  // Rates are chosen against the default FsmConfig (active 3 mW, retention
  // 0.1 mW, post-backup standby 5 uW) so each region exhibits exactly the
  // paper's narrated behaviour.
  std::vector<PiecewiseTrace::Segment> segs;
  // (1) 0-600 s: surplus (charging beats the duty-cycled load; storage
  //     periodically saturates at E_MAX).
  segs.push_back({0.0, 9.0 * mW});
  // (2) 600-1200 s: scarce (below the active draw; system duty-cycles,
  //     sleeping until E exceeds the compute entry level, then working
  //     back down to Th_Safe).
  segs.push_back({600.0, 1.1 * mW});
  // (3) 1200-1500 s: sudden decline far below the retention drain -> the
  //     storage walks down through Th_Safe into Th_Bk -> one backup.  The
  //     trickle that remains is too weak to climb back to the compute
  //     entry level, so the node stays parked on the post-backup standby.
  segs.push_back({1200.0, 0.01 * mW});
  // (4) 1500-2100 s: total drought -> even the post-backup standby drains
  //     the storage below Th_Off (shutdown); then a strong recharge ->
  //     restore from NVM.
  segs.push_back({1500.0, 0.0});
  segs.push_back({2100.0, 10.0 * mW});
  // (5) 2400-3000 s: three brief dips that reach the safe zone but recover
  //     before Th_Bk -> three safe-zone saves, zero NVM writes.  The dip
  //     level sits below the 0.1 mW retention drain so the storage slides
  //     *into* the zone, but the dips are short enough that it never
  //     reaches Th_Bk.
  segs.push_back({2400.0, 8.0 * mW});
  segs.push_back({2520.0, 0.05 * mW});  // dip 1
  segs.push_back({2560.0, 8.0 * mW});
  segs.push_back({2660.0, 0.05 * mW});  // dip 2
  segs.push_back({2700.0, 8.0 * mW});
  segs.push_back({2800.0, 0.05 * mW});  // dip 3
  segs.push_back({2840.0, 8.0 * mW});
  // (6) 3000-3600 s: interruption long enough to cross Th_Bk (backup),
  //     but the post-backup standby keeps the node above Th_Off until
  //     charging returns -> no shutdown, no restore needed.
  segs.push_back({3000.0, 0.0});
  segs.push_back({3100.0, 9.0 * mW});
  segs.push_back({3600.0, 6.0 * mW});
  return PiecewiseTrace(std::move(segs));
}

}  // namespace diac
