// E6: SIV.C — NVM-technology ablation.
//
// Re-runs the PDP comparison under MRAM, ReRAM (write ~4.4x MRAM), FeRAM
// and PCM.  Paper claim: "although varying NVM technology changes the
// enhancement, the overall improvement trend remains relatively stable";
// with more expensive writes (ReRAM) "the optimized DIAC exhibits higher
// efficiency than the other examined techniques".
#include <iostream>

#include "metrics/pdp.hpp"
#include "metrics/report.hpp"

int main() {
  using namespace diac;
  const CellLibrary lib = CellLibrary::nominal_45nm();
  const std::vector<std::string> circuits = {"s208", "s1238", "b10", "b12",
                                             "des_core", "sbc"};

  std::cout << "=== SIV.C: PDP improvement vs NVM technology ===\n\n";
  Table t({"technology", "write energy/bit", "DIAC vs NV-Based",
           "DIAC vs NV-Clust", "DIAC-Opt vs NV-Based", "DIAC-Opt vs DIAC"});
  for (int i = 0; i < kNvmTechnologyCount; ++i) {
    const auto tech = static_cast<NvmTechnology>(i);
    EvaluationOptions opt;
    opt.synthesis.technology = tech;
    opt.simulator.target_instances = 8;
    opt.simulator.max_time = 30000;

    std::vector<BenchmarkResult> results;
    for (const auto& name : circuits) {
      EvaluationOptions per = opt;
      per.scenario.seed = 0xEA57 + benchmark_spec(name).seed;
      results.push_back(evaluate_benchmark(benchmark_spec(name), lib, per));
    }
    const auto p = nvm_parameters(tech);
    t.add_row({to_string(tech),
               Table::num(p.write_energy_per_bit / nvm_parameters(
                              NvmTechnology::kMram).write_energy_per_bit,
                          2) + "x MRAM",
               Table::pct(average_improvement(results, Scheme::kDiac,
                                              Scheme::kNvBased)),
               Table::pct(average_improvement(results, Scheme::kDiac,
                                              Scheme::kNvClustering)),
               Table::pct(average_improvement(results, Scheme::kDiacOptimized,
                                              Scheme::kNvBased)),
               Table::pct(average_improvement(results, Scheme::kDiacOptimized,
                                              Scheme::kDiac))});
    std::cerr << "  evaluated " << to_string(tech) << "\n";
  }
  std::cout << t.str() << "\n";
  std::cout << "expectation: scheme ordering invariant across technologies; "
               "more expensive writes (ReRAM, PCM) amplify DIAC's "
               "advantage because it performs the fewest writes.\n";
  return 0;
}
