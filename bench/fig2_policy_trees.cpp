// E1: Fig. 2 — tree illustrations of the 8-input/1-output worked example
// under (a) the original grouping, (b) Policy1, (c) Policy2, (d) Policy3,
// with the paper's 25 mJ / 20 mJ per-operand limits.
//
// Expected shape (paper SIV.A): F2 exceeds the upper limit and splits into
// F9..F11; F5..F8 sit below the lower limit and merge into F13.
#include <iostream>

#include "diac/policy.hpp"
#include "tree/tree_generator.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

void print_tree(const char* title, const diac::TaskTree& tree, double scale) {
  using namespace diac;
  std::cout << title << " — " << tree.size() << " nodes, "
            << tree.max_level() + 1 << " levels\n";
  Table t({"node", "level", "gates", "fanin", "fanout", "energy [mJ]"});
  for (TaskId id : tree.schedule()) {
    const TaskNode& n = tree.node(id);
    t.add_row({n.label, std::to_string(n.dict.level),
               std::to_string(n.gates.size()), std::to_string(n.dict.fanin),
               std::to_string(n.dict.fanout),
               Table::num(units::as_mJ(scale * n.dict.energy()), 2)});
  }
  std::cout << t.str() << "\n";
}

}  // namespace

int main() {
  using namespace diac;
  const CellLibrary lib = CellLibrary::nominal_45nm();
  const Netlist nl = fig2_netlist();
  const TaskTree original = fig2_tree(nl, lib);

  PolicyLimits limits;
  limits.upper = 25.0e-3;  // the paper's worked-example limits
  limits.lower = 20.0e-3;
  limits.scale = fig2_energy_scale(original);
  limits.structural_only = true;  // Fig. 2 semantics: structure-preserving

  std::cout << "=== Fig. 2: tree illustrations (limits 25 / 20 mJ per "
               "operand) ===\n\n";
  print_tree("(a) original", original, limits.scale);
  print_tree("(b) Policy1 (split only — max resiliency)",
             apply_policy(original, PolicyKind::kPolicy1, limits),
             limits.scale);
  print_tree("(c) Policy2 (merge only — max efficiency)",
             apply_policy(original, PolicyKind::kPolicy2, limits),
             limits.scale);
  const TaskTree p3 = apply_policy(original, PolicyKind::kPolicy3, limits);
  print_tree("(d) Policy3 (balanced)", p3, limits.scale);

  // The paper's checks, verified programmatically.
  int split_children = static_cast<int>(p3.size()) + 0;
  std::cout << "paper checks:\n";
  std::cout << "  original nodes: " << original.size()
            << " (F1..F8 + output reduction)\n";
  std::cout << "  Policy3 nodes : " << p3.size()
            << " (expected 8: split F2 -> +2, merge F5..F8 -> -3)\n";
  (void)split_children;
  bool merged_f13 = false;
  for (const TaskNode& n : p3.nodes()) {
    if (n.gates.size() == 12) merged_f13 = true;
  }
  std::cout << "  F5..F8 merged into one operand (F13): "
            << (merged_f13 ? "yes" : "NO") << "\n";
  return 0;
}
