// E5: the benchmark inventory (Fig. 5 header row) — circuit, suite,
// function class, and gate count, plus measured structural statistics of
// the synthesized netlists to document what the experiments run on.
#include <iostream>

#include "metrics/report.hpp"
#include "netlist/analysis.hpp"
#include "netlist/suite.hpp"
#include "util/units.hpp"

int main() {
  using namespace diac;
  std::cout << "=== Table: benchmark suite (paper Fig. 5 header row) ===\n\n";
  std::cout << suite_inventory_table().str() << "\n";

  std::cout << "=== Measured structure of the synthesized netlists ===\n\n";
  const CellLibrary lib = CellLibrary::nominal_45nm();
  Table t({"circuit", "#gates", "inputs", "outputs", "DFFs", "depth",
           "CPD [ns]", "area [um^2]"});
  BenchmarkSuite last = BenchmarkSuite::kIscas89;
  for (const auto& spec : benchmark_suite()) {
    if (spec.suite != last) {
      t.add_rule();
      last = spec.suite;
    }
    const Netlist nl = build_benchmark(spec);
    const NetlistStats s = analyze(nl, lib);
    t.add_row({spec.name, std::to_string(s.gates), std::to_string(s.inputs),
               std::to_string(s.outputs), std::to_string(s.dffs),
               std::to_string(s.depth),
               Table::num(units::as_ns(s.critical_path), 2),
               Table::num(s.total_area / units::um2, 1)});
  }
  std::cout << t.str();
  return 0;
}
