// E3: Fig. 4 — stored energy (E_Batt, top panel) and charging rate
// (bottom panel) over the scripted 3600 s scenario, with the six annotated
// regions.  Emits the full time series to fig4_energy_trace.csv and prints
// a per-region behaviour summary that mirrors the paper's narration.
#include <iostream>

#include "diac/synthesizer.hpp"
#include "metrics/report.hpp"
#include "netlist/suite.hpp"
#include "runtime/simulator.hpp"
#include "util/csv.hpp"
#include "util/units.hpp"

int main() {
  using namespace diac;
  using namespace diac::units;

  const CellLibrary lib = CellLibrary::nominal_45nm();
  const Netlist nl = build_benchmark("s344");
  const auto sr = DiacSynthesizer(nl, lib)
                      .synthesize_scheme(Scheme::kDiacOptimized);

  const PiecewiseTrace trace = fig4_trace();
  SimulatorOptions opt;
  opt.target_instances = 1 << 20;  // run the whole scripted trace
  opt.max_time = 3600;
  opt.record_trace = true;
  opt.trace_interval = 1.0;
  SystemSimulator sim(sr.design, trace, FsmConfig{}, opt);
  const RunStats stats = sim.run();
  const Thresholds& th = sim.thresholds();

  std::cout << "=== Fig. 4: E_Batt and charging rate over the scripted "
               "scenario ===\n\n";
  std::cout << "thresholds [mJ]: Off=" << Table::num(as_mJ(th.off), 2)
            << " Bk=" << Table::num(as_mJ(th.backup), 2)
            << " Safe=" << Table::num(as_mJ(th.safe), 2)
            << " Se=" << Table::num(as_mJ(th.sense), 2)
            << " Cp=" << Table::num(as_mJ(th.compute), 2)
            << " Tr=" << Table::num(as_mJ(th.transmit), 2)
            << "  (E_MAX=25.00)\n\n";

  // CSV time series (the two panels of the figure).
  CsvWriter csv("fig4_energy_trace.csv",
                {"t_s", "e_batt_mJ", "charge_rate_mW", "state"});
  for (const TracePoint& p : sim.trace()) {
    csv.add_row({Table::num(p.t, 1), Table::num(as_mJ(p.energy), 4),
                 Table::num(as_mW(p.harvest_power), 4),
                 to_string(p.state)});
  }
  std::cout << "time series written to " << csv.path() << " ("
            << sim.trace().size() << " samples)\n\n";

  // Region summary.
  struct Region {
    const char* label;
    double t0, t1;
    const char* expectation;
  };
  const Region regions[] = {
      {"(1) surplus", 0, 600, "E saturates at E_MAX; peak performance"},
      {"(2) scarce", 600, 1200, "duty-cycling: sleep until E > Th_Cp"},
      {"(3) sudden decline", 1200, 1500, "one backup below Th_Bk"},
      {"(4) drought", 1500, 2400, "shutdown below Th_Off, later restore"},
      {"(5) three dips", 2400, 3000, "3 safe-zone saves, zero NVM writes"},
      {"(6) interruption", 3000, 3600, "backup, but restore not needed"},
  };
  Table t({"region", "window [s]", "expected", "backups", "saves",
           "shutdowns", "restores", "instances"});
  for (const Region& r : regions) {
    auto count = [&](SimEvent::Kind k) {
      int n = 0;
      for (const SimEvent& e : sim.events()) {
        if (e.kind == k && e.t >= r.t0 && e.t < r.t1) ++n;
      }
      return std::to_string(n);
    };
    t.add_row({r.label,
               Table::num(r.t0, 0) + "-" + Table::num(r.t1, 0),
               r.expectation, count(SimEvent::Kind::kBackup),
               count(SimEvent::Kind::kSafeZoneSave),
               count(SimEvent::Kind::kShutdown),
               count(SimEvent::Kind::kRestore),
               count(SimEvent::Kind::kInstanceDone)});
  }
  std::cout << t.str() << "\n";
  std::cout << "totals: instances=" << stats.instances_completed
            << " backups=" << stats.backups
            << " safe-zone saves=" << stats.safe_zone_saves
            << " deep outages=" << stats.deep_outages
            << " NVM writes=" << stats.nvm_writes << "\n";
  return 0;
}
