// Insertion-strategy ablation: the paper's three replacement criteria
// (SIII.A) made explicit.  Compares the default accumulate-to-budget
// insertion against the scored strategy under different criteria weights,
// reporting commit structure and end-to-end PDP.
#include <iostream>

#include "diac/synthesizer.hpp"
#include "metrics/pdp.hpp"
#include "netlist/suite.hpp"
#include "runtime/simulator.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace diac;
  using namespace diac::units;
  const CellLibrary lib = CellLibrary::nominal_45nm();

  struct Variant {
    const char* label;
    InsertionStrategy strategy;
    double w_level, w_power, w_fan;
  };
  const Variant variants[] = {
      {"accumulate (default)", InsertionStrategy::kAccumulate, 0, 0, 0},
      {"scored: balanced", InsertionStrategy::kScored, 1, 1, 1},
      {"scored: level only (I)", InsertionStrategy::kScored, 1, 0, 0},
      {"scored: power only (II)", InsertionStrategy::kScored, 0, 1, 0},
      {"scored: fan only (III)", InsertionStrategy::kScored, 0, 0, 1},
      {"optimal (DP baseline)", InsertionStrategy::kOptimalDp, 0, 0, 0},
  };

  for (const char* name : {"s1238", "b12"}) {
    const Netlist nl = build_benchmark(name);
    DiacSynthesizer synth(nl, lib);
    std::cout << "--- " << name << " ---\n";
    Table t({"strategy", "commits", "bits", "avg fan at commit",
             "exposure [mJ]", "PDP [mJ*s]"});
    for (const Variant& v : variants) {
      TaskTree tree = synth.transformed_tree();
      const double scale = 40.0e-3 / tree.total_energy();
      ReplacementOptions ro;
      ro.scale = scale;
      ro.budget = 6.25e-3;
      ro.strategy = v.strategy;
      ro.window = 6;
      ro.w_level = v.w_level;
      ro.w_power = v.w_power;
      ro.w_fan = v.w_fan;
      const auto plan = insert_nvm(tree, ro);

      double fan = 0;
      for (TaskId p : plan.points) {
        fan += tree.node(p).dict.fanin + tree.node(p).dict.fanout;
      }
      fan = plan.points.empty()
                ? 0
                : fan / static_cast<double>(plan.points.size());

      // Wrap the planned tree into a DIAC-Optimized design and simulate.
      IntermittentDesign d;
      d.scheme = Scheme::kDiacOptimized;
      d.technology = NvmTechnology::kMram;
      d.nvm = nvm_parameters(NvmTechnology::kMram);
      d.scale = scale;
      d.tree = std::move(tree);
      const RfidBurstSource source(0x1A5E + benchmark_spec(name).seed);
      SimulatorOptions opt;
      opt.target_instances = 8;
      opt.max_time = 30000;
      SystemSimulator sim(d, source, FsmConfig{}, opt);
      const RunStats s = sim.run();

      t.add_row({v.label, std::to_string(plan.points.size()),
                 std::to_string(plan.total_bits), Table::num(fan, 1),
                 Table::num(as_mJ(plan.max_exposed_energy), 2),
                 Table::num(as_mJ(s.pdp()), 1)});
    }
    std::cout << t.str() << "\n";
  }
  std::cout << "expectation: fan-weighted insertion (criterion III) commits "
               "at wider-boundary nodes (more consolidation per write); "
               "level/power weights shift commits later; all variants bound "
               "the exposed energy by the same budget.\n";
  return 0;
}
