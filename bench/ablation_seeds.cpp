// Trace-robustness check: the Fig. 5 conclusion must hold in
// distribution, not on one lucky harvest trace.  Monte-Carlo over many
// seeded RFID traces, reporting mean +/- stddev of the normalized PDP and
// the headline improvements.
#include <chrono>
#include <iostream>

#include "metrics/montecarlo.hpp"
#include "util/table.hpp"

int main() {
  using namespace diac;
  const CellLibrary lib = CellLibrary::nominal_45nm();
  const int runs = 12;
  ExperimentRunner runner;  // fan (scheme x seed) jobs over all cores
  const auto wall_start = std::chrono::steady_clock::now();

  std::cout << "=== Monte-Carlo over " << runs
            << " harvest traces per circuit (" << runner.jobs()
            << " jobs) ===\n\n";
  Table t({"circuit", "NVC norm PDP", "DIAC norm PDP", "Opt norm PDP",
           "DIAC vs NVB", "Opt vs DIAC"});
  auto pm = [](const SampleStats& s, int precision = 3) {
    return Table::num(s.mean, precision) + " +/- " +
           Table::num(s.stddev, precision);
  };
  for (const char* name : {"s344", "s1238", "b12", "sbc"}) {
    const Netlist nl = build_benchmark(name);
    EvaluationOptions opt;
    opt.simulator.target_instances = 6;
    opt.simulator.max_time = 20000;
    const MonteCarloResult mc = evaluate_monte_carlo(nl, lib, opt, runs, runner);
    t.add_row({name,
               pm(mc.normalized_pdp[static_cast<std::size_t>(
                   Scheme::kNvClustering)]),
               pm(mc.normalized_pdp[static_cast<std::size_t>(Scheme::kDiac)]),
               pm(mc.normalized_pdp[static_cast<std::size_t>(
                   Scheme::kDiacOptimized)]),
               pm(mc.diac_vs_nv_based), pm(mc.opt_vs_diac)});
    std::cerr << "  " << name << " done\n";
  }
  std::cout << t.str() << "\n";
  std::cout << "expectation: the scheme ordering (NVB > NVC > DIAC >= Opt) "
               "holds for the means with stddev well below the separation "
               "between schemes.\n";
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;
  std::cout << "wall time: " << Table::num(wall.count(), 2) << " s\n";
  return 0;
}
