// E2: Fig. 3 / Algorithm 1 — the intermittent-aware sensor node FSM.
//
// Runs the sensor-node state machine (sense 2 mJ, compute 4 mJ-scale task
// graph, transmit 9 mJ, +-10% uncertainty; C = 2 mF @ 5 V) on a bursty
// supply and reports the per-state behaviour: Reg_Flag pipeline progress,
// threshold stack, event counts and the time/energy breakdown.
#include <iostream>

#include "metrics/pdp.hpp"
#include "runtime/simulator.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace diac;
  using namespace diac::units;

  const CellLibrary lib = CellLibrary::nominal_45nm();
  const Netlist nl = build_benchmark("s344");
  DiacSynthesizer synth(nl, lib);

  std::cout << "=== Fig. 3: intermittent-aware sensor node (Algorithm 1) "
               "===\n\n";
  Table t({"metric", "NV-Based", "NV-Clustering", "DIAC", "DIAC-Optimized"});
  std::vector<std::vector<std::string>> rows;

  struct Row {
    const char* label;
    std::vector<std::string> cells;
  };
  std::vector<Row> grid = {
      {"Th_Off [mJ]", {}},        {"Th_Bk [mJ]", {}},
      {"Th_Safe [mJ]", {}},       {"Th_Se [mJ]", {}},
      {"Th_Cp [mJ]", {}},         {"Th_Tr [mJ]", {}},
      {"instances", {}},          {"power interrupts", {}},
      {"backups", {}},            {"safe-zone saves", {}},
      {"restores", {}},           {"time active [s]", {}},
      {"time sleep [s]", {}},     {"time off [s]", {}},
      {"energy [mJ]", {}},
  };

  const RfidBurstSource source(0xF16);
  for (Scheme scheme : kAllSchemes) {
    const auto sr = synth.synthesize_scheme(scheme);
    SimulatorOptions opt;
    opt.target_instances = 10;
    opt.max_time = 20000;
    SystemSimulator sim(sr.design, source, FsmConfig{}, opt);
    const RunStats s = sim.run();
    const Thresholds& th = sim.thresholds();
    std::size_t r = 0;
    grid[r++].cells.push_back(Table::num(as_mJ(th.off), 2));
    grid[r++].cells.push_back(Table::num(as_mJ(th.backup), 2));
    grid[r++].cells.push_back(Table::num(as_mJ(th.safe), 2));
    grid[r++].cells.push_back(Table::num(as_mJ(th.sense), 2));
    grid[r++].cells.push_back(Table::num(as_mJ(th.compute), 2));
    grid[r++].cells.push_back(Table::num(as_mJ(th.transmit), 2));
    grid[r++].cells.push_back(std::to_string(s.instances_completed));
    grid[r++].cells.push_back(std::to_string(s.power_interrupts));
    grid[r++].cells.push_back(std::to_string(s.backups));
    grid[r++].cells.push_back(std::to_string(s.safe_zone_saves));
    grid[r++].cells.push_back(std::to_string(s.restores));
    grid[r++].cells.push_back(Table::num(s.time_active, 1));
    grid[r++].cells.push_back(Table::num(s.time_sleep, 1));
    grid[r++].cells.push_back(Table::num(s.time_off, 1));
    grid[r++].cells.push_back(Table::num(as_mJ(s.energy_consumed), 1));
  }
  for (auto& row : grid) {
    std::vector<std::string> cells{row.label};
    cells.insert(cells.end(), row.cells.begin(), row.cells.end());
    t.add_row(std::move(cells));
  }
  std::cout << t.str() << "\n";
  std::cout << "Reg_Flag pipeline: Sp ->(timer, 0b100) Se ->(0b010) Cp "
               "->(0b001) Tr -> Sp; power interrupt at Th_Bk -> Bk.\n";
  return 0;
}
