// E4: Fig. 5 — normalized power-delay product for the full 24-circuit
// suite under all four schemes, plus the per-suite average improvements
// quoted in SIV.B and the abstract.
//
// Paper reference points (shape, not absolute values):
//   DIAC vs NV-Based:       36% (ISCAS-89), 41% (ITC-99), 34% (MCNC)
//   DIAC vs NV-Clustering:  25% (ISCAS-89), 33% (ITC-99), 28% (MCNC)
//   DIAC-Optimized vs NV-Based/NV-Clustering/DIAC on MCNC: 61/56/38%
#include <iostream>

#include "metrics/pdp.hpp"
#include "metrics/report.hpp"
#include "util/csv.hpp"

int main() {
  using namespace diac;
  const CellLibrary lib = CellLibrary::nominal_45nm();

  EvaluationOptions opt;
  opt.simulator.target_instances = 10;
  opt.simulator.max_time = 30000;

  std::cout << "=== Fig. 5: normalized PDP (NV-Based = 1.0), 24 circuits x "
               "4 schemes ===\n\n";
  std::vector<BenchmarkResult> results;
  CsvWriter csv("fig5_pdp.csv", {"circuit", "suite", "gates", "nv_based",
                                 "nv_clustering", "diac", "diac_optimized"});
  for (const auto& spec : benchmark_suite()) {
    // Per-circuit harvest seed: every scheme of one circuit shares the
    // trace; circuits differ so the suite average is trace-averaged.
    EvaluationOptions per = opt;
    per.scenario.seed = 0xEA57 + spec.seed;
    results.push_back(evaluate_benchmark(spec, lib, per));
    const auto& r = results.back();
    csv.add_row({r.name, to_string(r.suite), std::to_string(r.gate_count),
                 Table::num(r.normalized_pdp(Scheme::kNvBased), 4),
                 Table::num(r.normalized_pdp(Scheme::kNvClustering), 4),
                 Table::num(r.normalized_pdp(Scheme::kDiac), 4),
                 Table::num(r.normalized_pdp(Scheme::kDiacOptimized), 4)});
    std::cerr << "  evaluated " << r.name << "\n";
  }

  std::cout << fig5_table(results).str() << "\n";
  std::cout << "=== Average PDP improvements (paper SIV.B) ===\n\n";
  std::cout << improvement_summary(results).str() << "\n";
  std::cout << "paper reference: DIAC vs NV-Based 36/41/34%, vs "
               "NV-Clustering 25/33/28% (ISCAS/ITC/MCNC);\n"
               "DIAC-Optimized vs NV-Based/NV-Clustering/DIAC on MCNC: "
               "61/56/38%.\n";
  std::cout << "\nrows written to fig5_pdp.csv\n";
  return 0;
}
